#include <gtest/gtest.h>

#include "nets/nets.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/winograd.hpp"

namespace swatop::nets {
namespace {

TEST(Nets, TablesNonEmptyAndSane) {
  for (const auto& layers : {vgg16(), resnet(), yolo()}) {
    ASSERT_FALSE(layers.empty());
    for (const auto& l : layers) {
      EXPECT_GT(l.ni, 0);
      EXPECT_GT(l.no, 0);
      EXPECT_GT(l.out_hw, 0);
      EXPECT_TRUE(l.k == 1 || l.k == 3 || l.k == 7);
      EXPECT_FALSE(l.name.empty());
    }
  }
}

TEST(Nets, Vgg16HasThirteenConvs) { EXPECT_EQ(vgg16().size(), 13u); }

TEST(Nets, ToShapeGeometry) {
  const LayerDef l{"x", 64, 128, 56, 3};
  const auto s = to_shape(l, 32);
  EXPECT_EQ(s.batch, 32);
  EXPECT_EQ(s.ri, 58);
  EXPECT_EQ(s.ro(), 56);
  EXPECT_EQ(s.co(), 56);
}

TEST(Nets, DistinctDeduplicates) {
  const auto d = distinct(vgg16());
  EXPECT_LT(d.size(), vgg16().size());
  for (std::size_t i = 0; i < d.size(); ++i)
    for (std::size_t j = i + 1; j < d.size(); ++j)
      EXPECT_FALSE(d[i].ni == d[j].ni && d[i].no == d[j].no &&
                   d[i].out_hw == d[j].out_hw && d[i].k == d[j].k);
}

TEST(Nets, FirstLayersExcludedFromImplicit) {
  // Each network's first layer has Ni = 3: implicit CONV cannot handle it
  // (the paper's Fig. 5 footnote).
  EXPECT_FALSE(ops::ImplicitConvOp::applicable(to_shape(vgg16()[0], 32)));
  EXPECT_FALSE(ops::ImplicitConvOp::applicable(to_shape(yolo()[0], 32)));
  EXPECT_TRUE(ops::ImplicitConvOp::applicable(to_shape(vgg16()[1], 32)));
}

TEST(Nets, WinogradAppliesToThreeByThreeOnly) {
  int wino = 0, other = 0;
  for (const auto& l : resnet()) {
    if (ops::WinogradPlan::applicable(to_shape(l, 1)))
      ++wino;
    else
      ++other;
  }
  EXPECT_GT(wino, 0);
  EXPECT_GT(other, 0);
}

}  // namespace
}  // namespace swatop::nets
