// Tests for swatop::compile(), the fusion-aware front door: the CompiledOp
// and CompiledNet handles, journal ownership, report gating and the
// equivalence of the new surface with the low-level Optimizer it wraps.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/compile.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "tune/journal.hpp"

namespace swatop {
namespace {

SwatopConfig fast_cfg() {
  SwatopConfig cfg;
  cfg.max_candidates = 24;
  return cfg;
}

TEST(CompiledOp, RunCheckAndReport) {
  ops::MatmulOp op(48, 48, 48);
  CompiledOp compiled = compile(op, fast_cfg());

  // Tuned at construction: the low-level handle is already populated.
  EXPECT_GT(compiled.handle().predicted_cycles, 0.0);

  const rt::RunResult r = compiled.run();
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_LT(compiled.check(), 1e-4);

  const std::string rep = compiled.report();
  EXPECT_NE(rep.find(op.name()), std::string::npos);
  EXPECT_NE(rep.find("strategy"), std::string::npos);
  EXPECT_NE(rep.find("last run"), std::string::npos);
}

TEST(CompiledOp, CheckBeforeRunThrows) {
  ops::MatmulOp op(32, 32, 32);
  CompiledOp compiled = compile(op, fast_cfg());
  EXPECT_THROW(compiled.check(), CheckError);
}

TEST(CompiledOp, OwnsJournalWhenCallerDidNotProvideOne) {
  ops::MatmulOp op(32, 32, 32);
  CompiledOp compiled = compile(op, fast_cfg());
  // Tuning happened at compile() time, so the owned journal is already
  // populated without the caller wiring anything up.
  EXPECT_GT(compiled.journal().size(), 0u);
}

TEST(CompiledOp, UsesCallerJournalWhenProvided) {
  tune::Journal mine;
  SwatopConfig cfg = fast_cfg();
  cfg.journal = &mine;
  ops::MatmulOp op(32, 32, 32);
  CompiledOp compiled = compile(op, cfg);
  EXPECT_EQ(&compiled.journal(), &mine);
  EXPECT_GT(mine.size(), 0u);
}

TEST(CompiledOp, FusedEpilogueFlowsThroughTheHandle) {
  ops::ConvShape s;
  s.ri = s.ci = 8;
  s.ni = 32;
  s.no = 16;
  s.kr = s.kc = 3;
  s.batch = 1;
  dsl::EpilogueSpec epi;
  epi.bias = true;
  epi.relu = true;
  ops::ImplicitConvOp op(s, epi);

  CompiledOp compiled = compile(op, fast_cfg());
  compiled.run();
  // The fused store path is validated against the op's own (fused) host
  // reference.
  EXPECT_LT(compiled.check(), 1e-4);
}

graph::Graph tiny_graph() {
  graph::Graph g("tiny");
  // 32 input channels: the engine only fuses epilogues into convs that
  // resolve to the implicit-GEMM method.
  g.add_input("in", graph::TensorShape{8, 32});
  graph::Node conv;
  conv.kind = graph::NodeKind::Conv;
  conv.name = "conv";
  conv.inputs = {"in"};
  conv.output = "t:conv";
  conv.kernel = 3;
  conv.channels_out = 16;
  g.add(conv);
  graph::Node bias;
  bias.kind = graph::NodeKind::Bias;
  bias.name = "conv.bias";
  bias.inputs = {"t:conv"};
  bias.output = "t:bias";
  g.add(bias);
  graph::Node relu;
  relu.kind = graph::NodeKind::Relu;
  relu.name = "conv.relu";
  relu.inputs = {"t:bias"};
  relu.output = "t:relu";
  g.add(relu);
  return g;
}

TEST(CompiledNet, ReportBeforeRunThrows) {
  CompiledNet compiled = compile(tiny_graph(), fast_cfg());
  EXPECT_THROW(compiled.report(), CheckError);
  EXPECT_THROW(compiled.report_json(), CheckError);
  EXPECT_THROW(compiled.result(), CheckError);
}

TEST(CompiledNet, RunReportAndJournal) {
  CompiledNet compiled = compile(tiny_graph(), fast_cfg());
  EXPECT_EQ(compiled.graph().name(), "tiny");

  const graph::NetRunResult r = compiled.run(2);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  // The Conv/Bias/Relu chain fuses by default through compile().
  EXPECT_EQ(r.fusion.convs_fused, 1);

  EXPECT_GT(compiled.journal().size(), 0u);
  const std::string rep = compiled.report();
  EXPECT_NE(rep.find("network"), std::string::npos);
  EXPECT_NE(rep.find("fusion"), std::string::npos);
  EXPECT_EQ(&compiled.result(), &compiled.result());
}

TEST(CompiledNet, FusionCanBeForcedOffPerRun) {
  CompiledNet compiled = compile(tiny_graph(), fast_cfg());
  graph::NetOptions opts;
  opts.fusion = false;
  opts.residency = false;
  const graph::NetRunResult r = compiled.run(2, opts);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_EQ(r.fusion.convs_fused, 0);
  EXPECT_EQ(r.dma_bytes_elided, 0);
}

TEST(CompiledNet, UsesCallerJournalWhenProvided) {
  tune::Journal mine;
  SwatopConfig cfg = fast_cfg();
  cfg.journal = &mine;
  CompiledNet compiled = compile(tiny_graph(), cfg);
  EXPECT_EQ(&compiled.journal(), &mine);
  compiled.run(1);
  EXPECT_GT(mine.size(), 0u);
}

}  // namespace
}  // namespace swatop
