#include <gtest/gtest.h>

#include <algorithm>

#include "codegen/c_emitter.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "tune/tuner.hpp"

namespace swatop::codegen {
namespace {

sim::SimConfig cfg;

std::string emit_matmul(std::int64_t M, std::int64_t N, std::int64_t K) {
  ops::MatmulOp op(M, N, K);
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  const auto cand = tune::build_candidate(op, s, cfg);
  return emit_c(cand.program, {"test_kernel"});
}

TEST(CEmitter, BalancedBraces) {
  const std::string src = emit_matmul(128, 128, 64);
  EXPECT_EQ(std::count(src.begin(), src.end(), '{'),
            std::count(src.begin(), src.end(), '}'));
  EXPECT_EQ(std::count(src.begin(), src.end(), '('),
            std::count(src.begin(), src.end(), ')'));
}

TEST(CEmitter, DeclaresCoalescedSpmBuffers) {
  const std::string src = emit_matmul(128, 128, 64);
  EXPECT_NE(src.find("static __thread_local float spm_A["),
            std::string::npos);
  EXPECT_NE(src.find("static __thread_local float spm_B["),
            std::string::npos);
  EXPECT_NE(src.find("static __thread_local float spm_C["),
            std::string::npos);
  EXPECT_NE(src.find("coalesced SPM footprint"), std::string::npos);
}

TEST(CEmitter, EmitsPrimitiveCalls) {
  const std::string src = emit_matmul(128, 128, 64);
  EXPECT_NE(src.find("spm_gemm("), std::string::npos);
  EXPECT_NE(src.find("swDMA_get_2d("), std::string::npos);
  EXPECT_NE(src.find("swDMA_put_2d("), std::string::npos);
  EXPECT_NE(src.find("swDMAWait("), std::string::npos);
  EXPECT_NE(src.find("void test_kernel("), std::string::npos);
}

TEST(CEmitter, EmitsTensorArguments) {
  const std::string src = emit_matmul(128, 128, 64);
  EXPECT_NE(src.find("float *A = args->A;"), std::string::npos);
  EXPECT_NE(src.find("float *B = args->B;"), std::string::npos);
  EXPECT_NE(src.find("float *C = args->C;"), std::string::npos);
}

TEST(CEmitter, BoundaryMinMacros) {
  // Ragged shape: the emitted code must carry min() boundary expressions.
  const std::string src = emit_matmul(100, 128, 64);
  EXPECT_NE(src.find("SWATOP_MIN("), std::string::npos);
  EXPECT_NE(src.find("#define SWATOP_MIN"), std::string::npos);
}

TEST(CEmitter, DoubleBufferAnnotations) {
  const std::string src = emit_matmul(128, 128, 128);
  EXPECT_NE(src.find("/* double buffered */"), std::string::npos);
  EXPECT_NE(src.find("%"), std::string::npos);  // parity arithmetic
}

TEST(CEmitter, ConvKernelMentionsAllTensors) {
  ops::ConvShape shape;
  shape.batch = 32;  // Tco * batch feeds the vec-N constraint
  shape.ni = 32;
  shape.no = 32;
  shape.ri = 8;
  shape.ci = 8;
  ops::ImplicitConvOp op(shape);
  dsl::Strategy s;
  s.set_factor("Tno", 32);
  s.set_factor("Tni", 32);
  s.set_factor("Tco", 1);
  s.set_choice("wlayout", "no_major");
  s.set_choice("order", "rcouvi");
  s.set_choice("variant", "6");
  s.set_choice("boundary", "pad");
  const auto cand = tune::build_candidate(op, s, cfg);
  const std::string src = emit_c(cand.program);
  EXPECT_NE(src.find("args->in"), std::string::npos);
  EXPECT_NE(src.find("args->w"), std::string::npos);
  EXPECT_NE(src.find("args->out"), std::string::npos);
  EXPECT_NE(src.find("for (long r = 0;"), std::string::npos);
}

}  // namespace
}  // namespace swatop::codegen
