#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ir/analysis.hpp"
#include "ir/mutator.hpp"
#include "ir/printer.hpp"

namespace swatop::ir {
namespace {

TEST(Expr, ConstantFolding) {
  EXPECT_EQ(as_cst(add(cst(2), cst(3))), 5);
  EXPECT_EQ(as_cst(mul(cst(4), cst(5))), 20);
  EXPECT_EQ(as_cst(min2(cst(7), cst(3))), 3);
  EXPECT_EQ(as_cst(max2(cst(7), cst(3))), 7);
  EXPECT_EQ(as_cst(floordiv(cst(7), cst(2))), 3);
  EXPECT_EQ(as_cst(mod(cst(7), cst(2))), 1);
  EXPECT_EQ(as_cst(lt(cst(1), cst(2))), 1);
  EXPECT_EQ(as_cst(ge(cst(1), cst(2))), 0);
}

TEST(Expr, IdentityFolding) {
  const Expr x = var("x");
  EXPECT_EQ(add(x, cst(0)).get(), x.get());
  EXPECT_EQ(mul(x, cst(1)).get(), x.get());
  EXPECT_TRUE(is_const(mul(x, cst(0))));
  EXPECT_EQ(as_cst(mul(x, cst(0))), 0);
}

TEST(Expr, EvalWithEnvironment) {
  const Expr e = add(mul(var("i"), cst(8)), var("j"));
  Env env{{"i", 3}, {"j", 2}};
  EXPECT_EQ(eval(e, env), 26);
  env.erase("j");
  EXPECT_THROW(eval(e, env), CheckError);
}

TEST(Expr, SelectEval) {
  const Expr e = select(lt(var("i"), cst(4)), cst(10), cst(20));
  EXPECT_EQ(eval(e, {{"i", 2}}), 10);
  EXPECT_EQ(eval(e, {{"i", 5}}), 20);
}

TEST(Expr, UsesVar) {
  const Expr e = min2(cst(64), sub(cst(100), mul(var("m"), cst(64))));
  EXPECT_TRUE(uses_var(e, "m"));
  EXPECT_FALSE(uses_var(e, "n"));
}

TEST(Expr, Substitute) {
  const Expr e = add(mul(var("k"), cst(32)), cst(7));
  const Expr s = substitute(e, "k", add(var("k"), cst(1)));
  EXPECT_EQ(eval(s, {{"k", 0}}), 39);
  // Substituting with a constant folds completely.
  const Expr c = substitute(e, "k", cst(2));
  EXPECT_TRUE(is_const(c));
  EXPECT_EQ(as_cst(c), 71);
}

TEST(Expr, ToStringReadable) {
  const Expr e = min2(cst(64), sub(cst(100), mul(var("m"), cst(64))));
  EXPECT_EQ(to_string(e), "min(64, (100 - (m*64)))");
}

TEST(Stmt, BuildersValidate) {
  EXPECT_THROW(make_for("", cst(4), make_seq()), CheckError);
  EXPECT_THROW(make_spm_alloc("b", 0), CheckError);
  EXPECT_THROW(make_dma(StmtKind::Gemm, DmaAttrs{}), CheckError);
}

StmtPtr sample_program() {
  GemmAttrs g;
  g.M = cst(64);
  g.N = cst(64);
  g.K = cst(32);
  g.a = {"A", var("m_o"), 1, 64, cst(64), cst(32)};
  g.b = {"B", cst(0), 1, 32, cst(32), cst(64)};
  g.c = {"C", var("m_o"), 1, 64, cst(64), cst(64)};
  auto body = make_seq({make_gemm(g)});
  auto k = make_for("k_o", cst(4), body, /*reduction=*/true);
  auto root = make_seq({make_spm_alloc("spm_A", 256, true),
                        make_spm_alloc("spm_C", 512),
                        make_for("m_o", cst(2), make_seq({k}))});
  return root;
}

TEST(Analysis, SpmFootprintCountsDoubleBuffers) {
  const auto p = sample_program();
  // 256 doubled = 512, plus 512 = 1024.
  EXPECT_EQ(spm_footprint(p), 1024);
}

TEST(Analysis, LoopVarsOutermostFirst) {
  const auto p = sample_program();
  EXPECT_EQ(loop_vars(p), (std::vector<std::string>{"m_o", "k_o"}));
}

TEST(Analysis, FindGemmsAndStaticCount) {
  const auto p = sample_program();
  EXPECT_EQ(find_gemms(p).size(), 1u);
  EXPECT_EQ(static_gemm_count(p), 8);  // 2 * 4 iterations
}

TEST(Analysis, ContainsKind) {
  const auto p = sample_program();
  EXPECT_TRUE(contains_kind(p, StmtKind::Gemm));
  EXPECT_FALSE(contains_kind(p, StmtKind::DmaGet));
}

TEST(Mutator, DeepCopyIsIndependent) {
  const auto p = sample_program();
  const auto q = deep_copy(p);
  q->body[0]->buf_name = "renamed";
  EXPECT_EQ(p->body[0]->buf_name, "spm_A");
  EXPECT_EQ(print(p), print(deep_copy(p)));
}

TEST(Mutator, TransformDeletesInSeq) {
  auto p = sample_program();
  p = transform(p, [](StmtPtr s) -> StmtPtr {
    if (s->kind == StmtKind::SpmAlloc) return nullptr;
    return s;
  });
  EXPECT_FALSE(contains_kind(p, StmtKind::SpmAlloc));
  EXPECT_TRUE(contains_kind(p, StmtKind::Gemm));
}

TEST(Mutator, VisitReachesAllNodes) {
  int count = 0;
  visit(sample_program(), [&](const StmtPtr&) { ++count; });
  // Seq + 2 allocs + for + seq + for + seq + gemm = 8.
  EXPECT_EQ(count, 8);
}

TEST(Printer, ShowsStructure) {
  const std::string s = print(sample_program());
  EXPECT_NE(s.find("for m_o in [0, 2)"), std::string::npos);
  EXPECT_NE(s.find("double buffered"), std::string::npos);
  EXPECT_NE(s.find("gemm_op M=64"), std::string::npos);
}

}  // namespace
}  // namespace swatop::ir
