#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "ops/winograd.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "tune/tuner.hpp"

namespace swatop::ops {
namespace {

sim::SimConfig cfg;

ConvShape small_shape(std::int64_t batch = 4, std::int64_t ni = 32,
                      std::int64_t no = 32, std::int64_t hw = 8,
                      std::int64_t k = 3) {
  ConvShape s;
  s.batch = batch;
  s.ni = ni;
  s.no = no;
  s.ri = hw + k - 1;
  s.ci = hw + k - 1;
  s.kr = k;
  s.kc = k;
  return s;
}

double run_and_check(const dsl::OperatorDef& op, const dsl::Strategy& s) {
  const auto cand = tune::build_candidate(op, s, cfg);
  sim::CoreGroup cg(cfg);
  const auto bt = rt::bind_tensors(cg, op);
  op.fill_inputs(cg, bt, s);
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  interp.run(cand.program, bt);
  return op.check_output(cg, bt, s);
}

dsl::Strategy implicit_strategy(std::int64_t tno, std::int64_t tni,
                                std::int64_t tco, const std::string& layout,
                                const std::string& order,
                                const std::string& variant) {
  dsl::Strategy s;
  s.set_factor("Tno", tno);
  s.set_factor("Tni", tni);
  s.set_factor("Tco", tco);
  s.set_choice("wlayout", layout);
  s.set_choice("order", order);
  s.set_choice("variant", variant);
  s.set_choice("boundary", "pad");
  return s;
}

TEST(ConvShape, Geometry) {
  const ConvShape s = small_shape(2, 16, 32, 10, 3);
  EXPECT_EQ(s.ro(), 10);
  EXPECT_EQ(s.co(), 10);
  EXPECT_EQ(s.flops(), 2 * 2 * 16 * 32 * 10 * 10 * 9);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(ImplicitConv, Applicability) {
  EXPECT_TRUE(ImplicitConvOp::applicable(small_shape(1, 32, 32, 8)));
  EXPECT_FALSE(ImplicitConvOp::applicable(small_shape(1, 3, 64, 8)));
}

class ImplicitConvOrders : public ::testing::TestWithParam<const char*> {};

TEST_P(ImplicitConvOrders, AllOrdersCorrect) {
  ImplicitConvOp op(small_shape());
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 8, "no_major",
                                                GetParam(), "6")),
            2e-3);
}

INSTANTIATE_TEST_SUITE_P(Orders, ImplicitConvOrders,
                         ::testing::Values("rcouvi", "rcoiuv", "rcuvio",
                                           "rouvci"));

TEST(ImplicitConv, BothWeightLayoutsCorrect) {
  ImplicitConvOp op(small_shape());
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 8, "no_major",
                                                "rcouvi", "6")),
            2e-3);
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 8, "ni_major",
                                                "rcouvi", "6")),
            2e-3);
}

class ImplicitConvVariants : public ::testing::TestWithParam<int> {};

TEST_P(ImplicitConvVariants, SampleVariantsCorrect) {
  ImplicitConvOp op(small_shape(8, 32, 32, 8));
  EXPECT_LE(run_and_check(
                op, implicit_strategy(32, 32, 4, "no_major", "rcouvi",
                                      std::to_string(GetParam()))),
            2e-3);
}

INSTANTIATE_TEST_SUITE_P(Variants, ImplicitConvVariants,
                         ::testing::Values(0, 2, 4, 6, 7));

TEST(ImplicitConv, ColumnFusionEnlargesGemm) {
  // Tco = 4 fuses four output columns with the batch into one GEMM N dim.
  ImplicitConvOp op(small_shape(8, 32, 32, 8));
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "6")),
            2e-3);
}

TEST(ImplicitConv, RaggedChannelsAndColumns) {
  ConvShape s = small_shape(8, 48, 48, 7);  // Ni/No not multiples of 32
  ImplicitConvOp op(s);
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "6")),
            2e-3);
}

TEST(ImplicitConv, SpaceRespectsBatchConstraint) {
  // Batch 1: Tco * 1 must be a multiple of 8.
  ImplicitConvOp op(small_shape(1, 32, 32, 16));
  const dsl::ScheduleSpace sp = op.space();
  for (const auto& f : sp.factors()) {
    if (f.name != "Tco") continue;
    for (std::int64_t c : f.candidates) EXPECT_EQ(c % 8, 0);
  }
}

dsl::EpilogueSpec full_epilogue() {
  dsl::EpilogueSpec epi;
  epi.bias = true;
  epi.residual = true;
  epi.relu = true;
  return epi;
}

TEST(FusedImplicitConv, BiasReluMatchesReference) {
  dsl::EpilogueSpec epi;
  epi.bias = true;
  epi.relu = true;
  ImplicitConvOp op(small_shape(8, 32, 32, 8), epi);
  EXPECT_NE(op.name().find("+epi["), std::string::npos);
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "6")),
            2e-3);
}

TEST(FusedImplicitConv, ResidualAddMatchesReference) {
  ImplicitConvOp op(small_shape(8, 32, 32, 8), full_epilogue());
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "6")),
            2e-3);
}

TEST(FusedImplicitConv, VecMVariantSwapsTileOrientation) {
  // Variant 0 vectorizes M, so the C tile lands transposed in SPM; the
  // epilogue must follow the swapped orientation (channels on columns).
  ImplicitConvOp op(small_shape(8, 32, 32, 8), full_epilogue());
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "0")),
            2e-3);
}

TEST(FusedImplicitConv, RaggedChannelsAndColumns) {
  // Ni/No not multiples of 32: bias channel0 and the residual view must
  // track the ragged tile bases.
  ImplicitConvOp op(small_shape(8, 48, 48, 7), full_epilogue());
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "6")),
            2e-3);
}

TEST(FusedImplicitConv, OutPadInteriorMatchesReference) {
  dsl::EpilogueSpec epi;
  epi.bias = true;
  epi.relu = true;
  epi.out_pad = 1;  // absorbed downstream Pad: interior written at offset
  ImplicitConvOp op(small_shape(8, 32, 32, 8), epi);
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "6")),
            2e-3);
}

TEST(FusedImplicitConv, OutPadWithResidualMatchesReference) {
  dsl::EpilogueSpec epi = full_epilogue();
  epi.out_pad = 1;
  ImplicitConvOp op(small_shape(8, 32, 32, 8), epi);
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 4, "no_major",
                                                "rcouvi", "6")),
            2e-3);
}

TEST(FusedImplicitConv, ReductionOutsideStoreScopePruned) {
  // rcuvio keeps the r/c reduction loops outside the C tile's store scope,
  // so the put drains partial sums -- a compute epilogue there would apply
  // relu to an unfinished accumulator. DMA inference must prune it.
  ImplicitConvOp op(small_shape(8, 32, 32, 8), full_epilogue());
  EXPECT_THROW(tune::build_candidate(
                   op, implicit_strategy(32, 32, 8, "no_major", "rcuvio", "6"),
                   cfg),
               swatop::CheckError);
}

TEST(FusedImplicitConv, SpaceCarriesEpilogue) {
  ImplicitConvOp op(small_shape(8, 32, 32, 8), full_epilogue());
  const std::vector<dsl::Strategy> all = op.space().enumerate();
  ASSERT_FALSE(all.empty());
  for (const dsl::Strategy& s : all) EXPECT_EQ(s.epilogue(), op.epilogue());
}

TEST(ExplicitConv, Im2colMatchesDefinition) {
  const ConvShape s = small_shape(2, 4, 8, 4);
  sim::CoreGroup cg;
  const std::int64_t in_floats = s.ri * s.ni * s.ci * s.batch;
  const auto in = cg.mem().alloc(in_floats);
  Prng rng(3);
  for (std::int64_t i = 0; i < in_floats; ++i) cg.mem().write(in + i, rng.next());
  const std::int64_t K = s.ni * 9, N = s.batch * s.ro() * s.co();
  const auto dcol = cg.mem().alloc(K * N);
  ExplicitConvOp::im2col(cg, in, dcol, s);
  // Spot-check: element (kr=1, kc=2, ni=3) of pixel (b=1, ro=2, co=1).
  const std::int64_t j = (1 * s.ro() + 2) * s.co() + 1;
  const std::int64_t kk = (1 * 3 + 2) * s.ni + 3;
  const float expect =
      cg.mem().read(in + (((2 + 1) * s.ni + 3) * s.ci + (1 + 2)) * s.batch + 1);
  EXPECT_FLOAT_EQ(cg.mem().read(dcol + kk + j * K), expect);
}

TEST(ExplicitConv, PrePostCostGrowsWithKernelArea) {
  const double c3 = ExplicitConvOp::pre_post_cycles(small_shape(4, 32, 32, 8, 3), cfg);
  ConvShape s1 = small_shape(4, 32, 32, 8, 1);
  const double c1 = ExplicitConvOp::pre_post_cycles(s1, cfg);
  EXPECT_GT(c3, 2.0 * c1);  // 9x the im2col volume
}

TEST(Winograd, PlanGeometry) {
  const WinogradPlan p(small_shape(2, 16, 16, 8));
  EXPECT_EQ(p.tiles_r, 4);
  EXPECT_EQ(p.tiles_c, 4);
  EXPECT_EQ(p.P, 2 * 16);
  EXPECT_LT(p.gemm_flops(), p.shape.flops());  // arithmetic saving
}

TEST(Winograd, NotApplicableToOtherKernels) {
  EXPECT_FALSE(WinogradPlan::applicable(small_shape(1, 8, 8, 8, 1)));
  EXPECT_TRUE(WinogradPlan::applicable(small_shape(1, 8, 8, 8, 3)));
}

TEST(Winograd, TransformsInvertOnSingleTile) {
  // A full Winograd pass (transform, elementwise multiply via reference
  // GEMM per t, inverse) must equal the direct convolution on one tile.
  const ConvShape s = small_shape(1, 2, 2, 2);  // one 4x4 tile
  const WinogradPlan p(s);
  sim::CoreGroup cg;
  const auto in = cg.mem().alloc(s.ri * s.ni * s.ci * s.batch);
  const auto w = cg.mem().alloc(9 * s.ni * s.no);
  Prng rng(5);
  for (std::int64_t i = 0; i < cg.mem().size(); ++i) {}
  for (std::int64_t i = 0; i < s.ri * s.ni * s.ci; ++i)
    cg.mem().write(in + i, rng.next());
  for (std::int64_t i = 0; i < 9 * s.ni * s.no; ++i)
    cg.mem().write(w + i, rng.next());

  const auto U = cg.mem().alloc(16 * s.no * s.ni);
  const auto V = cg.mem().alloc(16 * s.ni * p.P);
  const auto Mt = cg.mem().alloc(16 * s.no * p.P);
  const auto out = cg.mem().alloc(s.ro() * s.no * s.co() * s.batch);
  WinogradGemmOp::transform_input(cg, in, V, p);
  WinogradGemmOp::transform_filter(cg, w, U, p);
  for (int t = 0; t < 16; ++t) {
    std::vector<float> u(static_cast<std::size_t>(s.no * s.ni));
    std::vector<float> v(static_cast<std::size_t>(s.ni * p.P));
    std::vector<float> m(static_cast<std::size_t>(s.no * p.P));
    cg.mem().copy_out(U + t * s.no * s.ni, u);
    cg.mem().copy_out(V + t * s.ni * p.P, v);
    reference_gemm(u.data(), v.data(), m.data(), s.no, p.P, s.ni);
    cg.mem().copy_in(Mt + t * s.no * p.P, m);
  }
  WinogradGemmOp::inverse_transform(cg, Mt, out, p);

  std::vector<float> hin(static_cast<std::size_t>(s.ri * s.ni * s.ci));
  std::vector<float> hw(static_cast<std::size_t>(9 * s.ni * s.no));
  cg.mem().copy_out(in, hin);
  cg.mem().copy_out(w, hw);
  std::vector<float> ref(static_cast<std::size_t>(s.ro() * s.no * s.co()));
  reference_conv(hin.data(), hw.data(), ref.data(), s);
  std::vector<float> got(ref.size());
  cg.mem().copy_out(out, got);
  EXPECT_LE(max_abs_diff(got.data(), ref.data(),
                         static_cast<std::int64_t>(ref.size())),
            1e-4);
}

TEST(Winograd, GemmOpSpaceAndTensors) {
  WinogradGemmOp op(small_shape(2, 32, 32, 8));
  const auto ts = op.tensors();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].name, "U");
  EXPECT_GT(op.space().size(), 50);
}

TEST(Winograd, PrePostCyclesPositiveAndScale) {
  const WinogradPlan p1(small_shape(1, 16, 16, 8));
  const WinogradPlan p2(small_shape(4, 16, 16, 8));
  const double c1 = WinogradGemmOp::pre_post_cycles(p1, cfg);
  const double c2 = WinogradGemmOp::pre_post_cycles(p2, cfg);
  EXPECT_GT(c1, 0.0);
  EXPECT_GT(c2, 2.0 * c1);
}

}  // namespace
}  // namespace swatop::ops

#include "ops/conv_backward.hpp"

namespace swatop::ops {
namespace {

TEST(ConvBackward, ReferencesAgreeWithFiniteDifferenceIdentity) {
  // Chain-rule sanity: sum(dout * conv(in, w)) ==
  //   sum(din * in) == sum(dw * w) for the same dout.
  const ConvShape s = small_shape(2, 8, 8, 4);
  std::vector<float> in(static_cast<std::size_t>(s.ri * s.ni * s.ci *
                                                 s.batch));
  std::vector<float> w(static_cast<std::size_t>(9 * s.ni * s.no));
  std::vector<float> dout(static_cast<std::size_t>(s.ro() * s.no * s.co() *
                                                   s.batch));
  Prng rng(77);
  for (float& x : in) x = rng.next();
  for (float& x : w) x = rng.next();
  for (float& x : dout) x = rng.next();

  std::vector<float> out(dout.size());
  reference_conv(in.data(), w.data(), out.data(), s);
  std::vector<float> din(in.size());
  reference_conv_bwd_data(dout.data(), w.data(), din.data(), s);
  std::vector<float> dw(w.size());
  reference_conv_bwd_filter(in.data(), dout.data(), dw.data(), s);

  double e_out = 0, e_din = 0, e_dw = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    e_out += static_cast<double>(out[i]) * dout[i];
  for (std::size_t i = 0; i < in.size(); ++i)
    e_din += static_cast<double>(din[i]) * in[i];
  for (std::size_t i = 0; i < w.size(); ++i)
    e_dw += static_cast<double>(dw[i]) * w[i];
  EXPECT_NEAR(e_din, e_out, 1e-2 * std::abs(e_out) + 1e-3);
  EXPECT_NEAR(e_dw, e_out, 1e-2 * std::abs(e_out) + 1e-3);
}

TEST(ConvBackward, BwdDataTunedMatchesReference) {
  ConvShape s = small_shape(8, 32, 32, 6);
  ConvBwdDataOp op(s);
  dsl::Strategy st;
  st.set_factor("Tm", 32);
  st.set_factor("Tk", 32);
  st.set_factor("Tc", 4);
  st.set_choice("order", "rcmuvk");
  st.set_choice("variant", "6");
  st.set_choice("boundary", "pad");
  EXPECT_LE(run_and_check(op, st), 3e-3);
}

TEST(ConvBackward, BwdDataReductionOutsideOrder) {
  ConvShape s = small_shape(8, 32, 32, 6);
  ConvBwdDataOp op(s);
  dsl::Strategy st;
  st.set_factor("Tm", 32);
  st.set_factor("Tk", 32);
  st.set_factor("Tc", 4);
  st.set_choice("order", "rcuvkm");  // reductions outside the M tile loop
  st.set_choice("variant", "6");
  st.set_choice("boundary", "pad");
  EXPECT_LE(run_and_check(op, st), 3e-3);
}

TEST(ConvBackward, BwdFilterTunedMatchesReference) {
  ConvShape s = small_shape(8, 32, 32, 6);
  ConvBwdFilterOp op(s);
  dsl::Strategy st;
  st.set_factor("Tni", 32);
  st.set_factor("Tno", 32);
  st.set_factor("Tc", 4);
  st.set_choice("order", "uvmnrc");
  st.set_choice("variant", "6");
  st.set_choice("boundary", "pad");
  EXPECT_LE(run_and_check(op, st), 5e-3);
}

TEST(ConvBackward, BwdFilterBigReductionOrder) {
  ConvShape s = small_shape(4, 32, 32, 8);
  ConvBwdFilterOp op(s);
  dsl::Strategy st;
  st.set_factor("Tni", 32);
  st.set_factor("Tno", 32);
  st.set_factor("Tc", 2);
  st.set_choice("order", "uvrcmn");  // r, c reductions outside m, n
  st.set_choice("variant", "6");
  st.set_choice("boundary", "pad");
  EXPECT_LE(run_and_check(op, st), 5e-3);
}

}  // namespace
}  // namespace swatop::ops

namespace swatop::ops {
namespace {

TEST(StridedConv, GeometryAndToString) {
  ConvShape s = small_shape(2, 16, 16, 13);
  s.stride = 2;
  s.ri = 15;
  s.ci = 15;
  EXPECT_EQ(s.ro(), 7);
  EXPECT_EQ(s.co(), 7);
  EXPECT_NE(s.to_string().find("s2"), std::string::npos);
}

TEST(StridedConv, ImplicitMatchesReference) {
  ConvShape s;
  s.batch = 8;
  s.ni = 32;
  s.no = 32;
  s.ri = 13;
  s.ci = 13;
  s.stride = 2;  // Ro = Co = 6
  ImplicitConvOp op(s);
  // Tco is locked to 1 when strided, so N = batch; use a vec-M variant.
  EXPECT_LE(run_and_check(op, implicit_strategy(32, 32, 1, "no_major",
                                                "rcouvi", "0")),
            2e-3);
}

TEST(StridedConv, SpaceRestrictsColumnFusion) {
  ConvShape s;
  s.batch = 8;
  s.ni = 32;
  s.no = 32;
  s.ri = 13;
  s.ci = 13;
  s.stride = 2;
  ImplicitConvOp op(s);
  const dsl::ScheduleSpace sp = op.space();
  for (const auto& f : sp.factors()) {
    if (f.name != "Tco") continue;
    EXPECT_EQ(f.candidates, (std::vector<std::int64_t>{1}));
  }
}

TEST(StridedConv, ExplicitIm2colMatchesReference) {
  ConvShape s;
  s.batch = 2;
  s.ni = 16;
  s.no = 32;
  s.ri = 9;
  s.ci = 9;
  s.stride = 2;
  ExplicitConvOp op(s);
  dsl::Strategy st;
  st.set_factor("Tm", 32);
  st.set_factor("Tn", 32);
  st.set_factor("Tk", 32);
  st.set_choice("order", "mnk");
  st.set_choice("variant", "0");
  st.set_choice("boundary", "pad");
  EXPECT_LE(run_and_check(op, st), 2e-3);
}

TEST(StridedConv, WinogradNotApplicable) {
  ConvShape s = small_shape(1, 8, 8, 8, 3);
  s.stride = 2;
  EXPECT_FALSE(WinogradPlan::applicable(s));
}

}  // namespace
}  // namespace swatop::ops

namespace swatop::ops {
namespace {

TEST(WinogradF4, PlanGeometry) {
  const WinogradPlan p(small_shape(2, 16, 16, 8), 4);
  EXPECT_EQ(p.tile(), 6);
  EXPECT_EQ(p.T(), 36);
  EXPECT_EQ(p.tiles_r, 2);
  EXPECT_EQ(p.P, 2 * 4);
  // F(4x4) does fewer GEMM flops per output than F(2x2).
  const WinogradPlan p2(small_shape(2, 16, 16, 8), 2);
  EXPECT_LT(p.gemm_flops(), p2.gemm_flops());
}

TEST(WinogradF4, TransformsInvertOnSingleTile) {
  const ConvShape s = small_shape(1, 2, 2, 4);  // one 6x6 tile
  const WinogradPlan p(s, 4);
  sim::CoreGroup cg;
  const auto in = cg.mem().alloc(s.ri * s.ni * s.ci * s.batch);
  const auto w = cg.mem().alloc(9 * s.ni * s.no);
  Prng rng(5);
  for (std::int64_t i = 0; i < s.ri * s.ni * s.ci; ++i)
    cg.mem().write(in + i, rng.next());
  for (std::int64_t i = 0; i < 9 * s.ni * s.no; ++i)
    cg.mem().write(w + i, rng.next());

  const auto U = cg.mem().alloc(p.T() * s.no * s.ni);
  const auto V = cg.mem().alloc(p.T() * s.ni * p.P);
  const auto Mt = cg.mem().alloc(p.T() * s.no * p.P);
  const auto out = cg.mem().alloc(s.ro() * s.no * s.co() * s.batch);
  WinogradGemmOp::transform_input(cg, in, V, p);
  WinogradGemmOp::transform_filter(cg, w, U, p);
  for (std::int64_t t = 0; t < p.T(); ++t) {
    std::vector<float> u(static_cast<std::size_t>(s.no * s.ni));
    std::vector<float> v(static_cast<std::size_t>(s.ni * p.P));
    std::vector<float> m(static_cast<std::size_t>(s.no * p.P));
    cg.mem().copy_out(U + t * s.no * s.ni, u);
    cg.mem().copy_out(V + t * s.ni * p.P, v);
    reference_gemm(u.data(), v.data(), m.data(), s.no, p.P, s.ni);
    cg.mem().copy_in(Mt + t * s.no * p.P, m);
  }
  WinogradGemmOp::inverse_transform(cg, Mt, out, p);

  std::vector<float> hin(static_cast<std::size_t>(s.ri * s.ni * s.ci));
  std::vector<float> hw(static_cast<std::size_t>(9 * s.ni * s.no));
  cg.mem().copy_out(in, hin);
  cg.mem().copy_out(w, hw);
  std::vector<float> ref(static_cast<std::size_t>(s.ro() * s.no * s.co()));
  reference_conv(hin.data(), hw.data(), ref.data(), s);
  std::vector<float> got(ref.size());
  cg.mem().copy_out(out, got);
  // F(4x4)'s larger transform constants lose more fp32 bits than F(2x2).
  EXPECT_LE(max_abs_diff(got.data(), ref.data(),
                         static_cast<std::int64_t>(ref.size())),
            1e-3);
}

TEST(WinogradF4, TunedEndToEndMatchesReference) {
  ConvShape s = small_shape(2, 16, 32, 8);
  WinogradGemmOp op(s, 4);
  dsl::Strategy st;
  st.set_factor("Tm", 32);
  st.set_factor("Tn", 32);
  st.set_factor("Tk", 16);
  st.set_choice("order", "mnk");
  st.set_choice("variant", "0");
  st.set_choice("boundary", "pad");
  EXPECT_LE(run_and_check(op, st), 1e-2);
}

TEST(WinogradF4, FewerGemmCallsThanDirectWork) {
  // The arithmetic saving must survive tiling: F(4x4) gemm flops < direct.
  const ConvShape s = small_shape(8, 64, 64, 16);
  const WinogradPlan p4(s, 4);
  EXPECT_LT(p4.gemm_flops(), s.flops());
  EXPECT_LT(static_cast<double>(p4.gemm_flops()),
            0.55 * static_cast<double>(s.flops()));
}

}  // namespace
}  // namespace swatop::ops
