#include <gtest/gtest.h>

#include "baseline/manual_explicit.hpp"
#include "common/check.hpp"
#include "baseline/manual_winograd.hpp"
#include "baseline/swdnn_conv.hpp"
#include "baseline/xmath_gemm.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "tune/tuner.hpp"

namespace swatop::baseline {
namespace {

sim::SimConfig cfg;

ops::ConvShape shape(std::int64_t batch, std::int64_t ni, std::int64_t no,
                     std::int64_t hw, std::int64_t k = 3) {
  ops::ConvShape s;
  s.batch = batch;
  s.ni = ni;
  s.no = no;
  s.ri = hw + k - 1;
  s.ci = hw + k - 1;
  s.kr = k;
  s.kc = k;
  return s;
}

TEST(XMath, FixedStrategyClampsIntoMenus) {
  ops::MatmulOp op(64, 64, 32);
  const auto s = XMathGemm::fixed_strategy(op);
  // Whatever the frozen square-DGEMM blocking is, it must be clamped into
  // this small operator's menus and stay a valid strategy.
  EXPECT_LE(s.factor("Tm"), 64);
  EXPECT_LE(s.factor("Tn"), 64);
  EXPECT_LE(s.factor("Tk"), 32);
  EXPECT_EQ(s.choice("boundary"), "pad");
  EXPECT_GT(tune::measure_strategy(op, s, cfg), 0.0);
}

TEST(XMath, FunctionalMatchesReferenceAligned) {
  const std::int64_t M = 64, N = 64, K = 32;
  XMathGemm gemm(cfg);
  sim::CoreGroup cg(cfg);
  const auto A = cg.mem().alloc(M * K);
  const auto B = cg.mem().alloc(K * N);
  const auto C = cg.mem().alloc(M * N);
  ops::Prng rng(11);
  for (std::int64_t i = 0; i < M * K; ++i) cg.mem().write(A + i, rng.next());
  for (std::int64_t i = 0; i < K * N; ++i) cg.mem().write(B + i, rng.next());
  gemm.run(cg, A, B, C, M, N, K);

  std::vector<float> a(static_cast<std::size_t>(M * K));
  std::vector<float> b(static_cast<std::size_t>(K * N));
  std::vector<float> ref(static_cast<std::size_t>(M * N));
  cg.mem().copy_out(A, a);
  cg.mem().copy_out(B, b);
  ops::reference_gemm(a.data(), b.data(), ref.data(), M, N, K);
  std::vector<float> got(ref.size());
  cg.mem().copy_out(C, got);
  EXPECT_LE(ops::max_abs_diff(got.data(), ref.data(), M * N), 2e-3);
}

TEST(XMath, FunctionalMatchesReferenceUnaligned) {
  const std::int64_t M = 50, N = 46, K = 25;
  XMathGemm gemm(cfg);
  sim::CoreGroup cg(cfg);
  const auto A = cg.mem().alloc(M * K);
  const auto B = cg.mem().alloc(K * N);
  const auto C = cg.mem().alloc(M * N);
  ops::Prng rng(12);
  for (std::int64_t i = 0; i < M * K; ++i) cg.mem().write(A + i, rng.next());
  for (std::int64_t i = 0; i < K * N; ++i) cg.mem().write(B + i, rng.next());
  gemm.run(cg, A, B, C, M, N, K);

  std::vector<float> a(static_cast<std::size_t>(M * K));
  std::vector<float> b(static_cast<std::size_t>(K * N));
  std::vector<float> ref(static_cast<std::size_t>(M * N));
  cg.mem().copy_out(A, a);
  cg.mem().copy_out(B, b);
  ops::reference_gemm(a.data(), b.data(), ref.data(), M, N, K);
  std::vector<float> got(ref.size());
  cg.mem().copy_out(C, got);
  EXPECT_LE(ops::max_abs_diff(got.data(), ref.data(), M * N), 2e-3);
}

TEST(XMath, AlignedPredicateAndPaddingCost) {
  XMathGemm gemm(cfg);
  EXPECT_TRUE(XMathGemm::aligned(256, 256, 256));
  EXPECT_FALSE(XMathGemm::aligned(200, 256, 256));
  EXPECT_DOUBLE_EQ(gemm.padding_cycles(256, 256, 256), 0.0);
  EXPECT_GT(gemm.padding_cycles(200, 200, 200), 0.0);
}

TEST(XMath, UnalignedPaysPaddingTax) {
  XMathGemm gemm(cfg);
  // Same padded problem, one starting unaligned: the unaligned one must
  // cost strictly more.
  const double aligned = gemm.cycles(512, 512, 512);
  const double unaligned = gemm.cycles(500, 500, 500);
  EXPECT_GT(unaligned, aligned * 0.999);
  EXPECT_GT(unaligned - aligned + gemm.padding_cycles(500, 500, 500),
            gemm.padding_cycles(500, 500, 500) * 0.5);
}

TEST(SwDnn, ApplicabilityEnvelope) {
  EXPECT_TRUE(SwDnnConv::applicable(shape(32, 64, 64, 14)));
  EXPECT_FALSE(SwDnnConv::applicable(shape(1, 64, 64, 14)));    // batch 1
  EXPECT_FALSE(SwDnnConv::applicable(shape(32, 48, 64, 14)));   // Ni % 32
  EXPECT_FALSE(SwDnnConv::applicable(shape(32, 32, 64, 14)));   // Ni < 64
}

TEST(SwDnn, FixedScheduleRunsAndCosts) {
  SwDnnConv conv(cfg);
  const double t = conv.cycles(shape(32, 64, 64, 14));
  EXPECT_GT(t, 0.0);
  EXPECT_THROW(conv.cycles(shape(1, 64, 64, 14)), CheckError);
}

TEST(SwDnn, CostGrowsWithWork) {
  SwDnnConv conv(cfg);
  EXPECT_GT(conv.cycles(shape(32, 128, 128, 14)),
            conv.cycles(shape(32, 64, 64, 14)));
}

TEST(ManualWinograd, SixteenCallsDominatePrePost) {
  ManualWinogradConv conv(cfg);
  const auto s = shape(32, 64, 64, 14);
  const double total = conv.cycles(s);
  const ops::WinogradPlan plan(s);
  const double pre_post = ops::WinogradGemmOp::pre_post_cycles(plan, cfg);
  EXPECT_GT(total, pre_post);
}

TEST(ManualExplicit, CostsImToColPlusGemm) {
  ManualExplicitConv conv(cfg);
  const auto s = shape(8, 32, 32, 8);
  const double total = conv.cycles(s);
  EXPECT_GT(total, ops::ExplicitConvOp::pre_post_cycles(s, cfg));
}

}  // namespace
}  // namespace swatop::baseline
