// Schedule-cache correctness: round-trip through memory and disk, key
// isolation across machines/shapes/knobs, version invalidation, corruption
// tolerance, thread safety, and the Optimizer's warm fast path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/swatop.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "tune/schedule_cache.hpp"

namespace swatop::tune {
namespace {

CacheConfig disk_cfg(const std::string& path, bool read_only = false) {
  CacheConfig c;
  c.enabled = true;
  c.path = path;
  c.read_only = read_only;
  return c;
}

std::string temp_cache_path(const std::string& name) {
  const std::filesystem::path p =
      std::filesystem::temp_directory_path() / ("swatop_" + name + ".cache");
  std::filesystem::remove(p);
  return p.string();
}

dsl::Strategy sample_strategy() {
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 128);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");  // numeric-looking choice: must stay a choice
  s.set_choice("boundary", "pad");
  return s;
}

TEST(StrategySerialize, RoundTripsAndKeepsKindTags) {
  const dsl::Strategy s = sample_strategy();
  const std::string text = s.serialize();
  // Deterministic, sorted, kind-tagged.
  EXPECT_EQ(text,
            "f:Tk=32 f:Tm=64 f:Tn=128 c:boundary=pad c:order=mnk "
            "c:variant=0");
  const auto back = dsl::Strategy::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  EXPECT_EQ(back->factor("Tn"), 128);
  EXPECT_EQ(back->choice("variant"), "0");
  EXPECT_FALSE(back->has_factor("variant"));  // not demoted to a factor
}

TEST(StrategySerialize, RejectsMalformedText) {
  EXPECT_FALSE(dsl::Strategy::parse("x:Tm=64").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("f:Tm").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("f:=64").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("f:Tm=abc").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("f:Tm=64 garbage").has_value());
  EXPECT_TRUE(dsl::Strategy::parse("f:Tm=abc").value_or(dsl::Strategy{}) ==
              dsl::Strategy{});  // value_or falls back on a failed parse
}

TEST(StrategySerialize, EpilogueRoundTrips) {
  dsl::Strategy s = sample_strategy();
  dsl::EpilogueSpec epi;
  epi.bias = true;
  epi.relu = true;
  epi.residual = true;
  epi.out_pad = 1;
  s.set_epilogue(epi);
  const std::string text = s.serialize();
  EXPECT_EQ(text,
            "f:Tk=32 f:Tm=64 f:Tn=128 c:boundary=pad c:order=mnk "
            "c:variant=0 e:bias=1 e:pad=1 e:relu=1 e:res=1");
  const auto back = dsl::Strategy::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  EXPECT_EQ(back->epilogue(), epi);
  // A partial epilogue serializes only its non-default fields.
  dsl::EpilogueSpec br;
  br.bias = true;
  br.relu = true;
  s.set_epilogue(br);
  const auto back2 = dsl::Strategy::parse(s.serialize());
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(back2->epilogue(), br);
  EXPECT_FALSE(back2->epilogue().residual);
  EXPECT_EQ(back2->epilogue().out_pad, 0);
}

TEST(StrategySerialize, RejectsMalformedEpilogue) {
  // Unknown field, default-valued flags (never serialized), bad pad.
  EXPECT_FALSE(dsl::Strategy::parse("e:pool=1").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("e:bias=0").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("e:relu=2").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("e:res=0").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("e:pad=0").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("e:pad=-1").has_value());
  EXPECT_FALSE(dsl::Strategy::parse("f:Tm=64 e:bias=yes").has_value());
}

TEST(ScheduleCache, EpilogueVersionBumpInvalidatesV1File) {
  // kVersion went 1 -> 2 when the banked strategy text gained epilogue
  // fields: a v1 cache (no e: tokens) must be ignored wholesale, never
  // reinterpreted as epilogue-free entries.
  const std::string path = temp_cache_path("v1");
  {
    std::ofstream out(path);
    out << "# swatop-schedule-cache v1\n";
    out << "v1-key\t100\t200\t1\tf:Tm=64 c:order=mnk\n";
  }
  ScheduleCache cache(disk_cfg(path));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("v1-key").has_value());
  std::filesystem::remove(path);
}

TEST(ScheduleCache, CorruptEpilogueFieldIsSkippedNotFatal) {
  const std::string path = temp_cache_path("epi-corrupt");
  dsl::Strategy fused = sample_strategy();
  dsl::EpilogueSpec epi;
  epi.bias = true;
  epi.relu = true;
  fused.set_epilogue(epi);
  {
    std::ofstream out(path);
    out << ScheduleCache::file_header() << "\n";
    out << "fused-key\t100\t200\t1\t" << fused.serialize() << "\n";
    out << "bad-epi-name\t1\t2\t0\tf:Tm=64 e:pool=1\n";
    out << "bad-epi-flag\t1\t2\t0\tf:Tm=64 e:bias=0\n";
    out << "bad-epi-pad\t1\t2\t0\tf:Tm=64 e:pad=-3\n";
  }
  ScheduleCache cache(disk_cfg(path));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.corrupt_entries_skipped(), 3);
  const auto got = cache.lookup("fused-key");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->strategy, fused);
  EXPECT_EQ(got->strategy.epilogue(), epi);
  std::filesystem::remove(path);
}

TEST(ScheduleCache, MemoryRoundTrip) {
  ScheduleCache cache(disk_cfg(""));
  CacheEntry e;
  e.strategy = sample_strategy();
  e.prefetch = true;
  e.predicted_cycles = 12345.5;
  e.measured_cycles = 13000.25;
  cache.store("key-a", e);
  const auto got = cache.lookup("key-a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->strategy, e.strategy);
  EXPECT_TRUE(got->prefetch);
  EXPECT_DOUBLE_EQ(got->predicted_cycles, 12345.5);
  EXPECT_DOUBLE_EQ(got->measured_cycles, 13000.25);
  EXPECT_FALSE(cache.lookup("key-b").has_value());
}

TEST(ScheduleCache, DiskRoundTripAcrossInstances) {
  const std::string path = temp_cache_path("roundtrip");
  CacheEntry e;
  e.strategy = sample_strategy();
  e.prefetch = true;
  e.predicted_cycles = 98765.0;
  e.measured_cycles = 0.0;
  {
    ScheduleCache cache(disk_cfg(path));
    cache.store("key-a", e);
    // Overwrites append; last one wins on reload.
    e.predicted_cycles = 55555.0;
    cache.store("key-a", e);
  }
  ScheduleCache reloaded(disk_cfg(path));
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.corrupt_entries_skipped(), 0);
  const auto got = reloaded.lookup("key-a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->strategy, e.strategy);
  EXPECT_DOUBLE_EQ(got->predicted_cycles, 55555.0);
  std::filesystem::remove(path);
}

TEST(ScheduleCache, FingerprintIsolatesMachinesShapesAndKnobs) {
  const TunerKnobs knobs;
  const ops::MatmulOp op_a(512, 512, 512);
  const ops::MatmulOp op_b(512, 512, 256);
  const std::string base = ScheduleCache::fingerprint(
      op_a.name(), sim::SimConfig::sw26010(), knobs);
  // Same inputs -> same key.
  EXPECT_EQ(base, ScheduleCache::fingerprint(
                      op_a.name(), sim::SimConfig::sw26010(), knobs));
  // Different machine (sw26010pro: bigger SPM, faster clock) never collides.
  EXPECT_NE(base, ScheduleCache::fingerprint(
                      op_a.name(), sim::SimConfig::sw26010pro(), knobs));
  // Different dims never collide.
  EXPECT_NE(base, ScheduleCache::fingerprint(
                      op_b.name(), sim::SimConfig::sw26010(), knobs));
  // Every tuner knob participates.
  TunerKnobs k2 = knobs;
  k2.prefetch = false;
  EXPECT_NE(base, ScheduleCache::fingerprint(op_a.name(),
                                             sim::SimConfig::sw26010(), k2));
  k2 = knobs;
  k2.spm_reserve_floats = 1024;
  EXPECT_NE(base, ScheduleCache::fingerprint(op_a.name(),
                                             sim::SimConfig::sw26010(), k2));
  k2 = knobs;
  k2.top_k = 8;
  EXPECT_NE(base, ScheduleCache::fingerprint(op_a.name(),
                                             sim::SimConfig::sw26010(), k2));
}

TEST(ScheduleCache, VersionBumpInvalidatesOldFile) {
  const std::string path = temp_cache_path("version");
  {
    std::ofstream out(path);
    out << "# swatop-schedule-cache v0\n";
    out << "some-key\t1\t2\t1\tf:Tm=64\n";
  }
  ScheduleCache cache(disk_cfg(path));
  EXPECT_EQ(cache.size(), 0u);  // stale version: every entry ignored
  EXPECT_FALSE(cache.lookup("some-key").has_value());
  // The first store rewrites the file in the current format.
  CacheEntry e;
  e.strategy = sample_strategy();
  cache.store("fresh-key", e);
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, ScheduleCache::file_header());
  ScheduleCache reloaded(disk_cfg(path));
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_FALSE(reloaded.lookup("some-key").has_value());
  EXPECT_TRUE(reloaded.lookup("fresh-key").has_value());
  std::filesystem::remove(path);
}

TEST(ScheduleCache, CorruptEntriesAreSkippedNotFatal) {
  const std::string path = temp_cache_path("corrupt");
  {
    std::ofstream out(path);
    out << ScheduleCache::file_header() << "\n";
    out << "good-key\t100\t200\t1\t" << sample_strategy().serialize()
        << "\n";
    out << "too-few-fields\t1\t2\n";
    out << "bad-double\tNOTANUMBER\t2\t0\tf:Tm=64\n";
    out << "bad-prefetch\t1\t2\t7\tf:Tm=64\n";
    out << "bad-strategy\t1\t2\t0\tf:Tm=sixty-four\n";
    out << "empty-strategy\t1\t2\t0\t\n";
    out << "\x01\x02 binary junk line without tabs\n";
  }
  ScheduleCache cache(disk_cfg(path));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.corrupt_entries_skipped(), 6);
  const auto got = cache.lookup("good-key");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->strategy, sample_strategy());
  // save() compacts: reload sees only the good entry and no corruption.
  EXPECT_TRUE(cache.save());
  ScheduleCache compacted(disk_cfg(path));
  EXPECT_EQ(compacted.size(), 1u);
  EXPECT_EQ(compacted.corrupt_entries_skipped(), 0);
  std::filesystem::remove(path);
}

TEST(ScheduleCache, NonFiniteCyclesAreRejected) {
  // strtod happily parses "nan"/"inf"; a corrupted (or hand-edited) cache
  // line must not inject non-finite cycles into the warm path, where every
  // comparison against NaN silently goes one way. Regression test for the
  // parse_double finiteness check.
  const std::string path = temp_cache_path("nonfinite");
  {
    std::ofstream out(path);
    out << ScheduleCache::file_header() << "\n";
    out << "good-key\t100\t200\t1\t" << sample_strategy().serialize()
        << "\n";
    out << "nan-pred\tnan\t200\t1\tf:Tm=64\n";
    out << "nan-meas\t100\tNaN\t0\tf:Tm=64\n";
    out << "inf-pred\tinf\t200\t1\tf:Tm=64\n";
    out << "neg-inf-meas\t100\t-inf\t0\tf:Tm=64\n";
    out << "overflow\t1e999\t200\t1\tf:Tm=64\n";
    out << "trailing-garbage\t100abc\t200\t1\tf:Tm=64\n";
  }
  ScheduleCache cache(disk_cfg(path));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.corrupt_entries_skipped(), 6);
  const auto got = cache.lookup("good-key");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->predicted_cycles, 100.0);
  EXPECT_FALSE(cache.lookup("nan-pred").has_value());
  EXPECT_FALSE(cache.lookup("inf-pred").has_value());
  std::filesystem::remove(path);
}

TEST(ScheduleCache, ReadOnlyNeverTouchesDisk) {
  const std::string path = temp_cache_path("readonly");
  {
    ScheduleCache writer(disk_cfg(path));
    CacheEntry e;
    e.strategy = sample_strategy();
    writer.store("banked", e);
  }
  const auto mtime = std::filesystem::last_write_time(path);
  ScheduleCache ro(
      disk_cfg(path, /*read_only=*/true));
  ASSERT_TRUE(ro.lookup("banked").has_value());
  CacheEntry e;
  e.strategy = sample_strategy();
  ro.store("new-key", e);          // updates memory...
  EXPECT_TRUE(ro.lookup("new-key").has_value());
  EXPECT_FALSE(ro.save());         // ...but never the file
  EXPECT_EQ(std::filesystem::last_write_time(path), mtime);
  ScheduleCache reloaded(disk_cfg(path));
  EXPECT_FALSE(reloaded.lookup("new-key").has_value());
  std::filesystem::remove(path);
}

TEST(ScheduleCache, ConcurrentStoreAndLookup) {
  const std::string path = temp_cache_path("threads");
  ScheduleCache cache(disk_cfg(path));
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        CacheEntry e;
        e.strategy = sample_strategy();
        e.predicted_cycles = t * 1000 + i;
        cache.store("shared-key", e);  // contended key
        cache.store("key-" + std::to_string(t) + "-" + std::to_string(i),
                    e);
        (void)cache.lookup("shared-key");
        (void)cache.lookup("key-0-0");
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(cache.size(), 1u + kThreads * kKeysPerThread);
  ScheduleCache reloaded(disk_cfg(path));
  EXPECT_EQ(reloaded.size(), 1u + kThreads * kKeysPerThread);
  EXPECT_EQ(reloaded.corrupt_entries_skipped(), 0);
  std::filesystem::remove(path);
}

// The serving-path access pattern: a pool of threads hammers *warm*
// lookups (shared locks -- they must all read the same banked entry,
// concurrently) while one tuner thread keeps missing on fresh keys and
// storing the results (exclusive lock). Readers assert the warm entry's
// content on every hit, so a torn read, a rehash-under-reader or a lost
// update shows up as a value mismatch here -- and as a data race under the
// TSan CI job, which runs this test.
TEST(ScheduleCache, ConcurrentWarmLookupsWhileOneThreadStores) {
  CacheConfig cfg;
  cfg.enabled = true;  // in-memory: the contention is on the map itself
  ScheduleCache cache(cfg);

  CacheEntry warm;
  warm.strategy = sample_strategy();
  warm.prefetch = true;
  warm.predicted_cycles = 123.0;
  warm.measured_cycles = 456.0;
  cache.store("warm-key", warm);

  constexpr int kReaders = 8;
  constexpr int kWarmLookups = 4000;
  constexpr int kFreshStores = 400;
  std::atomic<std::int64_t> hits{0};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&cache, &hits, &mismatch] {
      for (int i = 0; i < kWarmLookups; ++i) {
        const std::optional<CacheEntry> got = cache.lookup("warm-key");
        if (!got || got->predicted_cycles != 123.0 ||
            got->measured_cycles != 456.0 || !got->prefetch ||
            got->strategy.serialize() != sample_strategy().serialize()) {
          mismatch.store(true);
          return;
        }
        hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread tuner([&cache] {
    for (int i = 0; i < kFreshStores; ++i) {
      const std::string key = "fresh-" + std::to_string(i);
      if (!cache.lookup(key)) {  // miss...
        CacheEntry e;
        e.strategy = sample_strategy();
        e.predicted_cycles = i;
        cache.store(key, e);  // ...then store, racing the warm readers
      }
    }
  });
  for (std::thread& t : readers) t.join();
  tuner.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(hits.load(), static_cast<std::int64_t>(kReaders) * kWarmLookups);
  EXPECT_EQ(cache.size(), 1u + kFreshStores);
}

}  // namespace
}  // namespace swatop::tune

namespace swatop {
namespace {

TEST(OptimizerCache, WarmHitReturnsIdenticalStrategyWithoutSearch) {
  ops::MatmulOp op(96, 64, 40);
  SwatopConfig cfg;
  cfg.cache.enabled = true;  // in-memory cache shared within the Optimizer
  cfg.observability.enabled = true;
  const Optimizer optimizer(cfg);

  const OptimizedOperator cold = optimizer.optimize(op);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_GT(cold.stats.valid_candidates, 1);

  const OptimizedOperator warm = optimizer.optimize(op);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.candidate.strategy, cold.candidate.strategy);
  EXPECT_EQ(warm.candidate.prefetch, cold.candidate.prefetch);
  EXPECT_DOUBLE_EQ(warm.predicted_cycles, cold.predicted_cycles);
  // The warm path rebuilds exactly one candidate: the banked winner.
  EXPECT_EQ(warm.stats.valid_candidates, 1);
  EXPECT_EQ(warm.c_source, cold.c_source);
}

TEST(OptimizerCache, WarmResultIsFunctionallyCorrect) {
  ops::ConvShape s;
  s.batch = 4;
  s.ni = 32;
  s.no = 32;
  s.ri = 8;
  s.ci = 8;
  ops::ImplicitConvOp op(s);
  SwatopConfig cfg;
  cfg.cache.enabled = true;
  const Optimizer optimizer(cfg);
  (void)optimizer.optimize(op);  // cold: banks the winner
  OptimizedOperator warm = optimizer.optimize(op);
  ASSERT_TRUE(warm.from_cache);
  warm.execute(sim::ExecMode::Functional);
  EXPECT_LE(warm.check_output(), 2e-3);
}

TEST(OptimizerCache, PersistsAcrossOptimizers) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            "swatop_optimizer_persist.cache")
                               .string();
  std::filesystem::remove(path);
  ops::MatmulOp op(72, 56, 40);
  SwatopConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.path = path;

  const OptimizedOperator cold = Optimizer(cfg).optimize(op);
  EXPECT_FALSE(cold.from_cache);

  // A brand-new Optimizer (fresh process in real deployments) reloads the
  // banked winner from disk.
  const OptimizedOperator warm = Optimizer(cfg).optimize(op);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.candidate.strategy, cold.candidate.strategy);

  // A different machine misses: the key isolates sw26010 from sw26010pro.
  SwatopConfig pro = cfg;
  pro.machine = sim::SimConfig::sw26010pro();
  const OptimizedOperator pro_run = Optimizer(pro).optimize(op);
  EXPECT_FALSE(pro_run.from_cache);
  std::filesystem::remove(path);
}

TEST(OptimizerCache, ObservabilityCountsHitsMissesStores) {
  ops::MatmulOp op(64, 64, 32);
  SwatopConfig cfg;
  cfg.cache.enabled = true;
  cfg.observability.enabled = true;
  const Optimizer optimizer(cfg);

  OptimizedOperator cold = optimizer.optimize(op);
  const auto cold_run = cold.execute(sim::ExecMode::TimingOnly);
  ASSERT_TRUE(cold_run.profile.enabled);
  EXPECT_EQ(cold_run.profile.tune.cache_hits, 0);
  EXPECT_EQ(cold_run.profile.tune.cache_misses, 1);
  EXPECT_EQ(cold_run.profile.tune.cache_stores, 1);

  OptimizedOperator warm = optimizer.optimize(op);
  const auto warm_run = warm.execute(sim::ExecMode::TimingOnly);
  EXPECT_EQ(warm_run.profile.tune.cache_hits, 1);
  EXPECT_EQ(warm_run.profile.tune.cache_misses, 0);
  bool saw_hit_span = false;
  for (const auto& ev : warm_run.profile.events)
    if (ev.name == "cache hit (rebuild)") saw_hit_span = true;
  EXPECT_TRUE(saw_hit_span);
  // The report mentions the cache traffic.
  EXPECT_NE(warm_run.profile.report().find("schedule cache"),
            std::string::npos);
}

TEST(OptimizerCache, CorruptBankedStrategyFallsBackToTuning) {
  // An entry that parses but no longer lowers (e.g. hand-edited file) must
  // be treated as a miss, not a crash.
  const std::string path = (std::filesystem::temp_directory_path() /
                            "swatop_corrupt_entry.cache")
                               .string();
  std::filesystem::remove(path);
  ops::MatmulOp op(64, 64, 32);
  SwatopConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.path = path;
  const std::string key = tune::ScheduleCache::fingerprint(
      op.name(), cfg.machine, cfg.tuner_knobs());
  {
    std::ofstream out(path);
    out << tune::ScheduleCache::file_header() << "\n";
    // Valid line shape, nonsense schedule: lowering will throw.
    out << key << "\t1\t2\t1\tf:Tm=3 c:order=zzz\n";
  }
  const OptimizedOperator tuned = Optimizer(cfg).optimize(op);
  EXPECT_FALSE(tuned.from_cache);
  EXPECT_GT(tuned.stats.valid_candidates, 1);  // really searched
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace swatop
