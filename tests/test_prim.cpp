#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "prim/dma_primitive.hpp"
#include "prim/gemm_primitive.hpp"
#include "prim/pack.hpp"

namespace swatop::prim {
namespace {

/// Scatter a host column-major matrix into the cluster SPMs at `spm_addr`
/// with the distribution spm_gemm expects for a col-major operand: CPE
/// (r, c) holds row-block r x col-block c, stored col-major. When
/// `transposed`, store the tile row-major and swap the block mapping (what
/// DMA inference does for row-major kernel operands).
void scatter_host(sim::CoreGroup& cg, const std::vector<float>& m,
                  std::int64_t rows, std::int64_t cols, std::int64_t spm_addr,
                  bool transposed) {
  const auto& cfg = cg.config();
  const std::int64_t tr = rows / cfg.mesh_rows;
  const std::int64_t tc = cols / cfg.mesh_cols;
  for (int r = 0; r < cfg.mesh_rows; ++r) {
    for (int c = 0; c < cfg.mesh_cols; ++c) {
      sim::Spm& spm = cg.cluster().at(r, c).spm();
      for (std::int64_t i = 0; i < tr; ++i) {
        for (std::int64_t j = 0; j < tc; ++j) {
          const float v = m[static_cast<std::size_t>(
              (r * tr + i) + (c * tc + j) * rows)];
          const std::int64_t at =
              transposed ? spm_addr + j + i * tc : spm_addr + i + j * tr;
          spm.write(at, v);
        }
      }
    }
  }
}

/// Gather the C tile grid back into a host column-major matrix.
std::vector<float> gather_c(sim::CoreGroup& cg, std::int64_t rows,
                            std::int64_t cols, std::int64_t spm_addr,
                            bool row_major_tiles) {
  const auto& cfg = cg.config();
  const std::int64_t tr = rows / cfg.mesh_rows;
  const std::int64_t tc = cols / cfg.mesh_cols;
  std::vector<float> out(static_cast<std::size_t>(rows * cols));
  for (int r = 0; r < cfg.mesh_rows; ++r) {
    for (int c = 0; c < cfg.mesh_cols; ++c) {
      sim::Spm& spm = cg.cluster().at(r, c).spm();
      for (std::int64_t i = 0; i < tr; ++i) {
        for (std::int64_t j = 0; j < tc; ++j) {
          const std::int64_t at = row_major_tiles ? spm_addr + j + i * tc
                                                  : spm_addr + i + j * tr;
          out[static_cast<std::size_t>((r * tr + i) + (c * tc + j) * rows)] =
              spm.read(at);
        }
      }
    }
  }
  return out;
}

class SpmGemmVariants : public ::testing::TestWithParam<int> {};

TEST_P(SpmGemmVariants, MatchesReference) {
  const auto variant = isa::KernelVariant::from_index(GetParam());
  const std::int64_t M = 32, N = 32, K = 16;
  sim::CoreGroup cg;
  ops::Prng rng(GetParam() + 1);
  std::vector<float> A(static_cast<std::size_t>(M * K));
  std::vector<float> B(static_cast<std::size_t>(K * N));
  for (float& v : A) v = rng.next();
  for (float& v : B) v = rng.next();

  const auto fp = spm_gemm_footprint(M, N, K, cg.config());
  const std::int64_t a_spm = cg.cluster().spm_alloc(fp.a_floats, "A");
  const std::int64_t b_spm = cg.cluster().spm_alloc(fp.b_floats, "B");
  const std::int64_t c_spm = cg.cluster().spm_alloc(fp.c_floats, "C");

  scatter_host(cg, A, M, K, a_spm, !variant.a_col_major);
  scatter_host(cg, B, K, N, b_spm, !variant.b_col_major);

  SpmGemmArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.beta = 0.0f;
  args.a_spm = a_spm;
  args.b_spm = b_spm;
  args.c_spm = c_spm;
  args.variant = variant;
  spm_gemm(cg, args, sim::ExecMode::Functional);

  std::vector<float> ref(static_cast<std::size_t>(M * N));
  ops::reference_gemm(A.data(), B.data(), ref.data(), M, N, K);
  const auto got =
      gather_c(cg, M, N, c_spm, variant.vec == isa::VecDim::N);
  EXPECT_LE(ops::max_abs_diff(got.data(), ref.data(), M * N), 1e-4);
  EXPECT_GT(cg.now(), 0.0);
  EXPECT_EQ(cg.stats().flops, 2 * M * N * K);
}

INSTANTIATE_TEST_SUITE_P(AllEightVariants, SpmGemmVariants,
                         ::testing::Range(0, 8));

TEST(SpmGemm, AlphaBetaSemantics) {
  const std::int64_t M = 32, N = 32, K = 8;
  sim::CoreGroup cg;
  const auto fp = spm_gemm_footprint(M, N, K, cg.config());
  const auto a = cg.cluster().spm_alloc(fp.a_floats);
  const auto b = cg.cluster().spm_alloc(fp.b_floats);
  const auto c = cg.cluster().spm_alloc(fp.c_floats);
  std::vector<float> A(static_cast<std::size_t>(M * K), 1.0f);
  std::vector<float> B(static_cast<std::size_t>(K * N), 1.0f);
  scatter_host(cg, A, M, K, a, false);
  scatter_host(cg, B, K, N, b, false);
  // Pre-load C with 2.0 everywhere.
  for (int r = 0; r < 8; ++r)
    for (int cc = 0; cc < 8; ++cc)
      cg.cluster().at(r, cc).spm().fill(c, fp.c_floats, 2.0f);

  SpmGemmArgs args;
  args.M = M;
  args.N = N;
  args.K = K;
  args.alpha = 0.5f;
  args.beta = 3.0f;
  args.a_spm = a;
  args.b_spm = b;
  args.c_spm = c;
  args.variant = isa::KernelVariant::from_index(0);
  spm_gemm(cg, args, sim::ExecMode::Functional);
  // C = beta * 2 + alpha * K = 6 + 4 = 10 everywhere.
  const auto got = gather_c(cg, M, N, c, false);
  for (float v : got) EXPECT_FLOAT_EQ(v, 10.0f);
}

TEST(SpmGemm, RejectsInvalidDims) {
  sim::CoreGroup cg;
  SpmGemmArgs args;
  args.M = 30;  // not divisible by 8
  args.N = 32;
  args.K = 8;
  EXPECT_THROW(spm_gemm(cg, args, sim::ExecMode::TimingOnly), CheckError);
  args.M = 8;  // vec-M local dim 1, not a multiple of 4
  EXPECT_THROW(spm_gemm(cg, args, sim::ExecMode::TimingOnly), CheckError);
}

TEST(SpmGemm, ValidityPredicate) {
  sim::SimConfig cfg;
  const auto vm = isa::KernelVariant::from_index(0);  // vec-M
  const auto vn = isa::KernelVariant::from_index(4);  // vec-N
  EXPECT_TRUE(spm_gemm_valid(32, 8, 8, vm, cfg));
  EXPECT_FALSE(spm_gemm_valid(8, 32, 8, vm, cfg));
  EXPECT_TRUE(spm_gemm_valid(8, 32, 8, vn, cfg));
  EXPECT_FALSE(spm_gemm_valid(0, 32, 8, vn, cfg));
}

TEST(DmaPrimitive, Scatter2dMatchesPaperExample) {
  // Paper Sec. 4.5.1: col-major A(M, N), each CPE reads tile (rid, cid):
  // block = M/8, stride = M*7/8, offset = (cid*N/8)*M + rid*M/8.
  sim::SimConfig cfg;
  const std::int64_t M = 64, N = 128;
  const auto descs =
      scatter_2d(cfg, 0, M, N, M, 0, sim::DmaDir::MemToSpm);
  ASSERT_EQ(descs.size(), 64u);
  for (int rid = 0; rid < 8; ++rid) {
    for (int cid = 0; cid < 8; ++cid) {
      const auto& d = descs[static_cast<std::size_t>(rid * 8 + cid)];
      EXPECT_EQ(d.block, M / 8);
      EXPECT_EQ(d.stride, M * 7 / 8);
      EXPECT_EQ(d.mem_base, (cid * (N / 8)) * M + rid * (M / 8));
      EXPECT_EQ(d.total, (M / 8) * (N / 8));
    }
  }
}

TEST(DmaPrimitive, ScatterGatherRoundTrip) {
  sim::CoreGroup cg;
  const std::int64_t M = 32, N = 16;
  const auto src = cg.mem().alloc(M * N, "src");
  const auto dst = cg.mem().alloc(M * N, "dst");
  for (std::int64_t i = 0; i < M * N; ++i)
    cg.mem().write(src + i, static_cast<float>(i));
  const std::int64_t spm = cg.cluster().spm_alloc((M / 8) * (N / 8));

  auto get = scatter_2d(cg.config(), src, M, N, M, spm,
                        sim::DmaDir::MemToSpm);
  ReplyWord r1 = swdma(cg, get, sim::ExecMode::Functional);
  swdma_wait(cg, r1);
  auto put = scatter_2d(cg.config(), dst, M, N, M, spm,
                        sim::DmaDir::SpmToMem);
  ReplyWord r2 = swdma(cg, put, sim::ExecMode::Functional);
  swdma_wait(cg, r2);
  for (std::int64_t i = 0; i < M * N; ++i)
    EXPECT_FLOAT_EQ(cg.mem().read(dst + i), static_cast<float>(i));
}

TEST(DmaPrimitive, ReplicateLoadsSameDataEverywhere) {
  sim::CoreGroup cg;
  const auto src = cg.mem().alloc(16);
  cg.mem().write(src + 7, 3.5f);
  const std::int64_t spm = cg.cluster().spm_alloc(16);
  auto descs = replicate_1d(cg.config(), src, 16, spm);
  ReplyWord r = swdma(cg, descs, sim::ExecMode::Functional);
  swdma_wait(cg, r);
  EXPECT_FLOAT_EQ(cg.cluster().at(0, 0).spm().read(spm + 7), 3.5f);
  EXPECT_FLOAT_EQ(cg.cluster().at(7, 3).spm().read(spm + 7), 3.5f);
}

TEST(DmaPrimitive, Scatter2dRejectsBadGeometry) {
  sim::SimConfig cfg;
  EXPECT_THROW(scatter_2d(cfg, 0, 60, 64, 60, 0, sim::DmaDir::MemToSpm),
               CheckError);
  EXPECT_THROW(scatter_2d(cfg, 0, 64, 64, 32, 0, sim::DmaDir::MemToSpm),
               CheckError);
}

TEST(Pack, PadFullZeroExtends) {
  sim::CoreGroup cg;
  const std::int64_t M = 3, N = 2;
  const auto src = cg.mem().alloc(M * N);
  for (std::int64_t i = 0; i < M * N; ++i)
    cg.mem().write(src + i, static_cast<float>(i + 1));
  const auto dst = pad_full(cg, src, M, N, M, 5, 4, sim::ExecMode::Functional);
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 0), 1.0f);
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 2), 3.0f);
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 3), 0.0f);   // padded row
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 5), 4.0f);   // col 1 starts at ld=5
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 10), 0.0f);  // padded col
  EXPECT_GT(cg.now(), 0.0);
}

TEST(Pack, LightweightPadCopiesOnlyBoundary) {
  sim::CoreGroup cg;
  const std::int64_t rows = 10, cols = 6, tile_r = 4, tile_c = 4;
  const auto src = cg.mem().alloc(rows * cols);
  for (std::int64_t i = 0; i < rows * cols; ++i)
    cg.mem().write(src + i, 1.0f);
  const auto pad = pad_lightweight(cg, src, rows, cols, rows, tile_r, tile_c,
                                   sim::ExecMode::Functional);
  // Ragged: 2 rows at the bottom, 2 cols at the right.
  EXPECT_NE(pad.right, -1);
  EXPECT_NE(pad.bottom, -1);
  // Far less data copied than the full matrix.
  EXPECT_LT(pad.copied_floats, rows * cols);
  EXPECT_EQ(pad.copied_floats, rows * 2 + 2 * 4);
}

TEST(Pack, TransposeFunctional) {
  sim::CoreGroup cg;
  const std::int64_t M = 3, N = 4;
  const auto src = cg.mem().alloc(M * N);
  for (std::int64_t j = 0; j < N; ++j)
    for (std::int64_t i = 0; i < M; ++i)
      cg.mem().write(src + i + j * M, static_cast<float>(i * 10 + j));
  const auto dst = transpose(cg, src, M, N, sim::ExecMode::Functional);
  for (std::int64_t j = 0; j < N; ++j)
    for (std::int64_t i = 0; i < M; ++i)
      EXPECT_FLOAT_EQ(cg.mem().read(dst + j + i * N),
                      static_cast<float>(i * 10 + j));
}

TEST(Pack, CopyBlockRespectsLeadingDims) {
  sim::CoreGroup cg;
  const auto src = cg.mem().alloc(8 * 4);
  const auto dst = cg.mem().alloc(16 * 4);
  for (std::int64_t i = 0; i < 32; ++i)
    cg.mem().write(src + i, static_cast<float>(i));
  copy_block(cg, src, 8, dst, 16, 4, 3, sim::ExecMode::Functional);
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 0), 0.0f);
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 16), 8.0f);   // col 1
  EXPECT_FLOAT_EQ(cg.mem().read(dst + 32 + 3), 19.0f);
}

}  // namespace
}  // namespace swatop::prim
