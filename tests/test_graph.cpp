// Graph subsystem: IR validation, network builders, the memory planner's
// packing invariants, the naive reference kernels, and the engine running
// tiny networks end-to-end (functional check, multi-CG splits, schedule
// dedup / cache reuse, Winograd).
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "common/check.hpp"
#include "graph/build.hpp"
#include "graph/engine.hpp"
#include "graph/graph.hpp"
#include "graph/memory_plan.hpp"
#include "graph/reference.hpp"
#include "ops/reference.hpp"

namespace swatop::graph {
namespace {

Node node(NodeKind kind, std::string name, std::vector<std::string> inputs,
          std::string output) {
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.inputs = std::move(inputs);
  n.output = std::move(output);
  return n;
}

/// pad -> conv(3x3, 8 -> 16) -> bias -> relu -> pool on an 8x8 input, then
/// `extra_convs` identical-shape 3x3 16->16 blocks on the pooled 4x4 map.
/// All extents are tiny so tuning stays fast under max_candidates.
Graph make_tiny(int extra_convs) {
  Graph g("tiny");
  g.add_input("in", {8, 8});

  Node pad1 = node(NodeKind::Pad, "pad1", {"in"}, "t:pad1");
  pad1.pad = 1;
  g.add(pad1);
  Node conv1 = node(NodeKind::Conv, "conv1", {"t:pad1"}, "t:conv1");
  conv1.kernel = 3;
  conv1.channels_out = 16;
  g.add(conv1);
  g.add(node(NodeKind::Bias, "bias1", {"t:conv1"}, "t:bias1"));
  g.add(node(NodeKind::Relu, "relu1", {"t:bias1"}, "t:relu1"));
  g.add(node(NodeKind::MaxPool2x2, "pool1", {"t:relu1"}, "t:pool1"));

  std::string prev = "t:pool1";
  for (int i = 0; i < extra_convs; ++i) {
    const std::string tag = "c" + std::to_string(i + 2);
    Node pad = node(NodeKind::Pad, "pad" + tag, {prev}, "t:pad" + tag);
    pad.pad = 1;
    g.add(pad);
    Node conv = node(NodeKind::Conv, "conv" + tag, {"t:pad" + tag},
                     "t:conv" + tag);
    conv.kernel = 3;
    conv.channels_out = 16;
    g.add(conv);
    g.add(node(NodeKind::Bias, "bias" + tag, {"t:conv" + tag}, "t:bias" + tag));
    g.add(node(NodeKind::Relu, "relu" + tag, {"t:bias" + tag}, "t:out" + tag));
    prev = "t:out" + tag;
  }
  return g;
}

SwatopConfig fast_cfg() {
  SwatopConfig cfg;
  cfg.max_candidates = 24;  // bound the schedule space for test speed
  return cfg;
}

// ---------------------------------------------------------------- IR

TEST(Graph, ValidTinyNetHasNoProblems) {
  const Graph g = make_tiny(1);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.conv_count(), 2);
  EXPECT_EQ(g.topo_order().size(), g.nodes().size());
  const auto outs = g.outputs();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], "t:outc2");
  const auto shapes = g.shapes();
  EXPECT_EQ(shapes.at("t:pool1"), (TensorShape{4, 16}));
  EXPECT_EQ(shapes.at("t:outc2"), (TensorShape{4, 16}));
}

TEST(Graph, UnknownInputTensorIsReported) {
  Graph g;
  g.add(node(NodeKind::Relu, "r", {"ghost"}, "out"));
  const auto problems = g.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_THROW(g.topo_order(), CheckError);
  EXPECT_THROW(g.validate_or_throw(), CheckError);
}

TEST(Graph, DoubleProducerIsReported) {
  Graph g;
  g.add_input("in", {4, 4});
  g.add(node(NodeKind::Relu, "a", {"in"}, "t"));
  g.add(node(NodeKind::Relu, "b", {"in"}, "t"));
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, CycleIsReported) {
  Graph g;
  g.add(node(NodeKind::Relu, "a", {"y"}, "x"));
  g.add(node(NodeKind::Relu, "b", {"x"}, "y"));
  EXPECT_FALSE(g.validate().empty());
  EXPECT_THROW(g.topo_order(), CheckError);
}

TEST(Graph, AddShapeMismatchIsReported) {
  Graph g;
  g.add_input("a", {4, 8});
  g.add_input("b", {4, 16});
  g.add(node(NodeKind::Add, "sum", {"a", "b"}, "out"));
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, OddExtentPoolIsReported) {
  Graph g;
  g.add_input("in", {5, 8});
  g.add(node(NodeKind::MaxPool2x2, "p", {"in"}, "out"));
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, KernelLargerThanInputIsReported) {
  Graph g;
  g.add_input("in", {2, 8});
  Node c = node(NodeKind::Conv, "c", {"in"}, "out");
  c.kernel = 3;
  c.channels_out = 8;
  g.add(c);
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, ConvShapeAtBatch) {
  const Graph g = make_tiny(0);
  const Node& conv = g.nodes()[1];
  ASSERT_EQ(conv.kind, NodeKind::Conv);
  const ops::ConvShape s = g.conv_shape(conv, 4);
  EXPECT_EQ(s.batch, 4);
  EXPECT_EQ(s.ri, 10);  // 8 + 2*pad
  EXPECT_EQ(s.ci, 10);
  EXPECT_EQ(s.ni, 8);
  EXPECT_EQ(s.no, 16);
  EXPECT_EQ(s.kr, 3);
  EXPECT_EQ(s.kc, 3);
}

// ---------------------------------------------------------------- builders

TEST(Build, EvaluationNetworksValidate) {
  for (const char* net : {"vgg16", "resnet", "yolo"}) {
    const Graph g = build_net(net);
    EXPECT_TRUE(g.validate().empty()) << net;
    EXPECT_GT(g.conv_count(), 0) << net;
    EXPECT_FALSE(g.outputs().empty()) << net;
  }
  EXPECT_EQ(build_net("vgg16").conv_count(), 13);
  EXPECT_THROW(build_net("lenet"), CheckError);
}

TEST(Build, ResnetHasResidualAdds) {
  const Graph g = build_net("resnet");
  int adds = 0;
  for (const Node& n : g.nodes())
    if (n.kind == NodeKind::Add) ++adds;
  EXPECT_GT(adds, 0);
}

// ---------------------------------------------------------------- planner

/// Any two tensors whose lifetimes intersect must not overlap in the arena.
void expect_no_live_overlap(const MemoryPlan& plan) {
  const std::vector<std::pair<std::string, PlanEntry>> v(plan.entries.begin(),
                                                         plan.entries.end());
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      const PlanEntry& a = v[i].second;
      const PlanEntry& b = v[j].second;
      const bool live_together = a.first <= b.last && b.first <= a.last;
      if (!live_together) continue;
      const bool disjoint = a.offset + a.floats <= b.offset ||
                            b.offset + b.floats <= a.offset;
      EXPECT_TRUE(disjoint) << v[i].first << " overlaps " << v[j].first;
    }
  }
}

TEST(MemoryPlan, PacksWithoutLiveOverlap) {
  for (const char* net : {"vgg16", "resnet", "yolo"}) {
    const MemoryPlan plan = plan_memory(build_net(net), 2);
    EXPECT_GT(plan.peak_floats, 0) << net;
    EXPECT_LE(plan.peak_floats, plan.naive_floats) << net;
    expect_no_live_overlap(plan);
    for (const auto& [name, e] : plan.entries)
      EXPECT_EQ(e.offset % plan.alignment, 0) << net << " " << name;
  }
}

TEST(MemoryPlan, Vgg16ReusesWellUnderNaive) {
  // The acceptance bar: a 13-conv chain's planned peak must be at most 60%
  // of binding every inter-layer tensor separately.
  const MemoryPlan plan = plan_memory(build_net("vgg16"), 4);
  EXPECT_LE(plan.reuse_ratio(), 0.60);
}

TEST(MemoryPlan, TransientsArePlannedAtTheirStep) {
  const Graph g = make_tiny(0);
  const std::int64_t before = plan_memory(g, 1).naive_floats;
  std::vector<Transient> tr{{"conv1:dcol", 4096, 1}};
  const MemoryPlan plan = plan_memory(g, 1, tr);
  ASSERT_TRUE(plan.entries.count("conv1:dcol"));
  const PlanEntry& e = plan.entries.at("conv1:dcol");
  EXPECT_EQ(e.first, 1);
  EXPECT_EQ(e.last, 1);
  EXPECT_EQ(plan.naive_floats, before + 4096);
  expect_no_live_overlap(plan);
}

TEST(MemoryPlan, InvalidGraphThrows) {
  Graph g;
  g.add(node(NodeKind::Relu, "r", {"ghost"}, "out"));
  EXPECT_THROW(plan_memory(g, 1), CheckError);
}

// ---------------------------------------------------------------- kernels

TEST(RefKernels, BiasAddPerChannel) {
  // [rows=1][ch=2][cols=2][batch=1]
  std::vector<float> t{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> bias{10.0f, 20.0f};
  ops::reference_bias_add(t.data(), bias.data(), 1, 2, 2, 1);
  EXPECT_FLOAT_EQ(t[0], 11.0f);
  EXPECT_FLOAT_EQ(t[1], 12.0f);
  EXPECT_FLOAT_EQ(t[2], 23.0f);
  EXPECT_FLOAT_EQ(t[3], 24.0f);
}

TEST(RefKernels, ReluClampsNegatives) {
  std::vector<float> t{-1.0f, 0.0f, 2.5f, -0.5f};
  ops::reference_relu(t.data(), 4);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 0.0f);
  EXPECT_FLOAT_EQ(t[2], 2.5f);
  EXPECT_FLOAT_EQ(t[3], 0.0f);
}

TEST(RefKernels, MaxPool2x2TakesWindowMax) {
  // [rows=2][ch=1][cols=2][batch=1]: one 2x2 window.
  const std::vector<float> in{1.0f, 4.0f, 3.0f, 2.0f};
  std::vector<float> out(1, -1.0f);
  ops::reference_maxpool2x2(in.data(), out.data(), 2, 1, 2, 1);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(RefKernels, EltwiseAdd) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{10.0f, 20.0f};
  std::vector<float> out(2);
  ops::reference_eltwise_add(a.data(), b.data(), out.data(), 2);
  EXPECT_FLOAT_EQ(out[0], 11.0f);
  EXPECT_FLOAT_EQ(out[1], 22.0f);
}

TEST(RefKernels, PadZeroesTheBorder) {
  // 1x1 spatial, 1 channel, batch 1, pad 1 -> 3x3 with the value centered.
  const std::vector<float> in{7.0f};
  std::vector<float> out(9, -1.0f);
  ops::reference_pad(in.data(), out.data(), 1, 1, 1, 1, 1);
  for (int i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(out[i], i == 4 ? 7.0f : 0.0f) << i;
}

TEST(RefData, GroupFillMatchesFullBatchSlice) {
  // A core group filling images [2, 4) must produce bit-identical values
  // to the corresponding slice of a whole-batch fill.
  const TensorShape shape{4, 8};
  const std::int64_t full = 4, sub = 2, batch0 = 2;
  std::vector<float> whole(shape.floats(full));
  std::vector<float> part(shape.floats(sub));
  fill_input("in", shape, full, 0, whole.data());
  fill_input("in", shape, sub, batch0, part.data());
  const std::int64_t positions = shape.hw * shape.hw * shape.channels;
  for (std::int64_t p = 0; p < positions; ++p)
    for (std::int64_t b = 0; b < sub; ++b)
      ASSERT_EQ(part[p * sub + b], whole[p * full + batch0 + b]);
}

// ---------------------------------------------------------------- engine

TEST(Engine, TinyNetMatchesReference) {
  GraphEngine engine(fast_cfg());
  NetOptions opts;  // functional, check on
  const NetRunResult r = engine.run(make_tiny(1), 2, opts);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.flops, 0);
  EXPECT_EQ(r.groups_used, 1);
  EXPECT_DOUBLE_EQ(r.sync_cycles, 0.0);  // single group: no NoC barriers
  EXPECT_GT(r.planned_peak_floats, 0);
  EXPECT_LE(r.planned_peak_floats, r.naive_floats);
}

TEST(Engine, MultiGroupUnevenSplitMatchesReference) {
  // batch 3 over 2 groups: group 0 runs 2 images, group 1 runs 1. The
  // whole-net check covers every image, so a wrong slice offset fails.
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.groups = 2;
  const NetRunResult r = engine.run(make_tiny(1), 3, opts);
  EXPECT_EQ(r.groups_used, 2);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_GT(r.sync_cycles, 0.0);  // barriers priced per conv step
  EXPECT_LT(r.sync_cycles, r.cycles);
}

TEST(Engine, GroupsClampToBatch) {
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.groups = 4;
  const NetRunResult r = engine.run(make_tiny(0), 1, opts);
  EXPECT_EQ(r.groups_used, 1);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
}

TEST(Engine, RepeatedShapesTuneOnce) {
  // Three convs, two distinct (method, shape, sub-batch) keys: the two
  // identical 16->16 blocks share one tuned schedule.
  GraphEngine engine(fast_cfg());
  const NetRunResult r = engine.run(make_tiny(2), 1, NetOptions{});
  EXPECT_EQ(r.layers.size(), make_tiny(2).nodes().size());
  EXPECT_EQ(r.shapes_tuned, 2);
  EXPECT_LT(r.shapes_tuned, build_net("vgg16").conv_count());  // vgg dedups too
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
}

TEST(Engine, SecondRunHitsTheScheduleCache) {
  const char* path = "test_graph_engine.cache";
  std::remove(path);
  SwatopConfig cfg = fast_cfg();
  cfg.cache.enabled = true;
  cfg.cache.path = path;
  const Graph g = make_tiny(1);

  GraphEngine cold(cfg);
  const NetRunResult first = cold.run(g, 1, NetOptions{});
  EXPECT_EQ(first.cache_hits, 0);

  GraphEngine warm(cfg);
  const NetRunResult second = warm.run(g, 1, NetOptions{});
  EXPECT_EQ(second.shapes_tuned, first.shapes_tuned);
  EXPECT_EQ(second.cache_hits, second.shapes_tuned);
  // Identical schedules -> identical priced execution.
  EXPECT_DOUBLE_EQ(second.cycles, first.cycles);
  std::remove(path);
}

TEST(Engine, TimingOnlyMatchesFunctionalCycles) {
  GraphEngine engine(fast_cfg());
  NetOptions fun;
  const NetRunResult f = engine.run(make_tiny(1), 2, fun);
  NetOptions tim;
  tim.mode = sim::ExecMode::TimingOnly;
  const NetRunResult t = engine.run(make_tiny(1), 2, tim);
  EXPECT_FALSE(t.checked);
  EXPECT_DOUBLE_EQ(t.cycles, f.cycles);
  EXPECT_EQ(t.flops, f.flops);
}

TEST(Engine, WinogradRunsFunctionally) {
  // conv2's 16 input channels satisfy Winograd's ni % 8 == 0; conv1 falls
  // back. The whole-net check still has to pass end to end.
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.method = ConvMethod::Winograd;
  const NetRunResult r = engine.run(make_tiny(1), 1, opts);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
}

TEST(Engine, RejectsBadOptions) {
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.groups = 5;
  EXPECT_THROW(engine.run(make_tiny(0), 1, opts), CheckError);
  EXPECT_THROW(engine.run(make_tiny(0), 0, NetOptions{}), CheckError);
}

}  // namespace
}  // namespace swatop::graph
