// Graph subsystem: IR validation, network builders, the memory planner's
// packing invariants, the naive reference kernels, and the engine running
// tiny networks end-to-end (functional check, multi-CG splits, schedule
// dedup / cache reuse, Winograd).
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "common/check.hpp"
#include "graph/build.hpp"
#include "graph/engine.hpp"
#include "graph/fuse.hpp"
#include "graph/graph.hpp"
#include "graph/memory_plan.hpp"
#include "graph/reference.hpp"
#include "ops/reference.hpp"

namespace swatop::graph {
namespace {

Node node(NodeKind kind, std::string name, std::vector<std::string> inputs,
          std::string output) {
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.inputs = std::move(inputs);
  n.output = std::move(output);
  return n;
}

/// pad -> conv(3x3, 8 -> 16) -> bias -> relu -> pool on an 8x8 input, then
/// `extra_convs` identical-shape 3x3 16->16 blocks on the pooled 4x4 map.
/// All extents are tiny so tuning stays fast under max_candidates.
Graph make_tiny(int extra_convs) {
  Graph g("tiny");
  g.add_input("in", {8, 8});

  Node pad1 = node(NodeKind::Pad, "pad1", {"in"}, "t:pad1");
  pad1.pad = 1;
  g.add(pad1);
  Node conv1 = node(NodeKind::Conv, "conv1", {"t:pad1"}, "t:conv1");
  conv1.kernel = 3;
  conv1.channels_out = 16;
  g.add(conv1);
  g.add(node(NodeKind::Bias, "bias1", {"t:conv1"}, "t:bias1"));
  g.add(node(NodeKind::Relu, "relu1", {"t:bias1"}, "t:relu1"));
  g.add(node(NodeKind::MaxPool2x2, "pool1", {"t:relu1"}, "t:pool1"));

  std::string prev = "t:pool1";
  for (int i = 0; i < extra_convs; ++i) {
    const std::string tag = "c" + std::to_string(i + 2);
    Node pad = node(NodeKind::Pad, "pad" + tag, {prev}, "t:pad" + tag);
    pad.pad = 1;
    g.add(pad);
    Node conv = node(NodeKind::Conv, "conv" + tag, {"t:pad" + tag},
                     "t:conv" + tag);
    conv.kernel = 3;
    conv.channels_out = 16;
    g.add(conv);
    g.add(node(NodeKind::Bias, "bias" + tag, {"t:conv" + tag}, "t:bias" + tag));
    g.add(node(NodeKind::Relu, "relu" + tag, {"t:bias" + tag}, "t:out" + tag));
    prev = "t:out" + tag;
  }
  return g;
}

SwatopConfig fast_cfg() {
  SwatopConfig cfg;
  cfg.max_candidates = 24;  // bound the schedule space for test speed
  return cfg;
}

// ---------------------------------------------------------------- IR

TEST(Graph, ValidTinyNetHasNoProblems) {
  const Graph g = make_tiny(1);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.conv_count(), 2);
  EXPECT_EQ(g.topo_order().size(), g.nodes().size());
  const auto outs = g.outputs();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], "t:outc2");
  const auto shapes = g.shapes();
  EXPECT_EQ(shapes.at("t:pool1"), (TensorShape{4, 16}));
  EXPECT_EQ(shapes.at("t:outc2"), (TensorShape{4, 16}));
}

TEST(Graph, UnknownInputTensorIsReported) {
  Graph g;
  g.add(node(NodeKind::Relu, "r", {"ghost"}, "out"));
  const auto problems = g.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_THROW(g.topo_order(), CheckError);
  EXPECT_THROW(g.validate_or_throw(), CheckError);
}

TEST(Graph, DoubleProducerIsReported) {
  Graph g;
  g.add_input("in", {4, 4});
  g.add(node(NodeKind::Relu, "a", {"in"}, "t"));
  g.add(node(NodeKind::Relu, "b", {"in"}, "t"));
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, CycleIsReported) {
  Graph g;
  g.add(node(NodeKind::Relu, "a", {"y"}, "x"));
  g.add(node(NodeKind::Relu, "b", {"x"}, "y"));
  EXPECT_FALSE(g.validate().empty());
  EXPECT_THROW(g.topo_order(), CheckError);
}

TEST(Graph, AddShapeMismatchIsReported) {
  Graph g;
  g.add_input("a", {4, 8});
  g.add_input("b", {4, 16});
  g.add(node(NodeKind::Add, "sum", {"a", "b"}, "out"));
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, OddExtentPoolIsReported) {
  Graph g;
  g.add_input("in", {5, 8});
  g.add(node(NodeKind::MaxPool2x2, "p", {"in"}, "out"));
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, KernelLargerThanInputIsReported) {
  Graph g;
  g.add_input("in", {2, 8});
  Node c = node(NodeKind::Conv, "c", {"in"}, "out");
  c.kernel = 3;
  c.channels_out = 8;
  g.add(c);
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, ConvShapeAtBatch) {
  const Graph g = make_tiny(0);
  const Node& conv = g.nodes()[1];
  ASSERT_EQ(conv.kind, NodeKind::Conv);
  const ops::ConvShape s = g.conv_shape(conv, 4);
  EXPECT_EQ(s.batch, 4);
  EXPECT_EQ(s.ri, 10);  // 8 + 2*pad
  EXPECT_EQ(s.ci, 10);
  EXPECT_EQ(s.ni, 8);
  EXPECT_EQ(s.no, 16);
  EXPECT_EQ(s.kr, 3);
  EXPECT_EQ(s.kc, 3);
}

// ---------------------------------------------------------------- builders

TEST(Build, EvaluationNetworksValidate) {
  for (const char* net : {"vgg16", "resnet", "yolo"}) {
    const Graph g = build_net(net);
    EXPECT_TRUE(g.validate().empty()) << net;
    EXPECT_GT(g.conv_count(), 0) << net;
    EXPECT_FALSE(g.outputs().empty()) << net;
  }
  EXPECT_EQ(build_net("vgg16").conv_count(), 13);
  EXPECT_THROW(build_net("lenet"), CheckError);
}

TEST(Build, ResnetHasResidualAdds) {
  const Graph g = build_net("resnet");
  int adds = 0;
  for (const Node& n : g.nodes())
    if (n.kind == NodeKind::Add) ++adds;
  EXPECT_GT(adds, 0);
}

// ---------------------------------------------------------------- planner

/// Any two tensors whose lifetimes intersect must not overlap in the arena.
void expect_no_live_overlap(const MemoryPlan& plan) {
  const std::vector<std::pair<std::string, PlanEntry>> v(plan.entries.begin(),
                                                         plan.entries.end());
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      const PlanEntry& a = v[i].second;
      const PlanEntry& b = v[j].second;
      const bool live_together = a.first <= b.last && b.first <= a.last;
      if (!live_together) continue;
      const bool disjoint = a.offset + a.floats <= b.offset ||
                            b.offset + b.floats <= a.offset;
      EXPECT_TRUE(disjoint) << v[i].first << " overlaps " << v[j].first;
    }
  }
}

TEST(MemoryPlan, PacksWithoutLiveOverlap) {
  for (const char* net : {"vgg16", "resnet", "yolo"}) {
    const MemoryPlan plan = plan_memory(build_net(net), 2);
    EXPECT_GT(plan.peak_floats, 0) << net;
    EXPECT_LE(plan.peak_floats, plan.naive_floats) << net;
    expect_no_live_overlap(plan);
    for (const auto& [name, e] : plan.entries)
      EXPECT_EQ(e.offset % plan.alignment, 0) << net << " " << name;
  }
}

TEST(MemoryPlan, Vgg16ReusesWellUnderNaive) {
  // The acceptance bar: a 13-conv chain's planned peak must be at most 60%
  // of binding every inter-layer tensor separately.
  const MemoryPlan plan = plan_memory(build_net("vgg16"), 4);
  EXPECT_LE(plan.reuse_ratio(), 0.60);
}

TEST(MemoryPlan, TransientsArePlannedAtTheirStep) {
  const Graph g = make_tiny(0);
  const std::int64_t before = plan_memory(g, 1).naive_floats;
  std::vector<Transient> tr{{"conv1:dcol", 4096, 1}};
  const MemoryPlan plan = plan_memory(g, 1, tr);
  ASSERT_TRUE(plan.entries.count("conv1:dcol"));
  const PlanEntry& e = plan.entries.at("conv1:dcol");
  EXPECT_EQ(e.first, 1);
  EXPECT_EQ(e.last, 1);
  EXPECT_EQ(plan.naive_floats, before + 4096);
  expect_no_live_overlap(plan);
}

TEST(MemoryPlan, InvalidGraphThrows) {
  Graph g;
  g.add(node(NodeKind::Relu, "r", {"ghost"}, "out"));
  EXPECT_THROW(plan_memory(g, 1), CheckError);
}

// ---------------------------------------------------------------- kernels

TEST(RefKernels, BiasAddPerChannel) {
  // [rows=1][ch=2][cols=2][batch=1]
  std::vector<float> t{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> bias{10.0f, 20.0f};
  ops::reference_bias_add(t.data(), bias.data(), 1, 2, 2, 1);
  EXPECT_FLOAT_EQ(t[0], 11.0f);
  EXPECT_FLOAT_EQ(t[1], 12.0f);
  EXPECT_FLOAT_EQ(t[2], 23.0f);
  EXPECT_FLOAT_EQ(t[3], 24.0f);
}

TEST(RefKernels, ReluClampsNegatives) {
  std::vector<float> t{-1.0f, 0.0f, 2.5f, -0.5f};
  ops::reference_relu(t.data(), 4);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 0.0f);
  EXPECT_FLOAT_EQ(t[2], 2.5f);
  EXPECT_FLOAT_EQ(t[3], 0.0f);
}

TEST(RefKernels, MaxPool2x2TakesWindowMax) {
  // [rows=2][ch=1][cols=2][batch=1]: one 2x2 window.
  const std::vector<float> in{1.0f, 4.0f, 3.0f, 2.0f};
  std::vector<float> out(1, -1.0f);
  ops::reference_maxpool2x2(in.data(), out.data(), 2, 1, 2, 1);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(RefKernels, EltwiseAdd) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{10.0f, 20.0f};
  std::vector<float> out(2);
  ops::reference_eltwise_add(a.data(), b.data(), out.data(), 2);
  EXPECT_FLOAT_EQ(out[0], 11.0f);
  EXPECT_FLOAT_EQ(out[1], 22.0f);
}

TEST(RefKernels, PadZeroesTheBorder) {
  // 1x1 spatial, 1 channel, batch 1, pad 1 -> 3x3 with the value centered.
  const std::vector<float> in{7.0f};
  std::vector<float> out(9, -1.0f);
  ops::reference_pad(in.data(), out.data(), 1, 1, 1, 1, 1);
  for (int i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(out[i], i == 4 ? 7.0f : 0.0f) << i;
}

TEST(RefData, GroupFillMatchesFullBatchSlice) {
  // A core group filling images [2, 4) must produce bit-identical values
  // to the corresponding slice of a whole-batch fill.
  const TensorShape shape{4, 8};
  const std::int64_t full = 4, sub = 2, batch0 = 2;
  std::vector<float> whole(shape.floats(full));
  std::vector<float> part(shape.floats(sub));
  fill_input("in", shape, full, 0, whole.data());
  fill_input("in", shape, sub, batch0, part.data());
  const std::int64_t positions = shape.hw * shape.hw * shape.channels;
  for (std::int64_t p = 0; p < positions; ++p)
    for (std::int64_t b = 0; b < sub; ++b)
      ASSERT_EQ(part[p * sub + b], whole[p * full + batch0 + b]);
}

// ---------------------------------------------------------------- fusion

/// A fusible block: conv(3x3, 32 -> 32) -> bias -> relu on an 8x8 input
/// (ni = 32, so implicit GEMM applies and the engine fuses it). With
/// `residual`, a same-shape second input rides an Add between bias and
/// relu -- the resnet tail shape. With `tail_pad`, a Pad follows relu.
Graph make_fusible(bool residual, bool tail_pad = false) {
  Graph g("fusible");
  g.add_input("in", {8, 32});
  Node conv = node(NodeKind::Conv, "conv", {"in"}, "t:conv");
  conv.kernel = 3;
  conv.channels_out = 32;
  g.add(conv);
  g.add(node(NodeKind::Bias, "conv.bias", {"t:conv"}, "t:bias"));
  std::string cur = "t:bias";
  if (residual) {
    g.add_input("shortcut", {6, 32});
    g.add(node(NodeKind::Add, "conv.add", {cur, "shortcut"}, "t:sum"));
    cur = "t:sum";
  }
  g.add(node(NodeKind::Relu, "conv.relu", {cur}, "t:relu"));
  if (tail_pad) {
    Node pad = node(NodeKind::Pad, "conv.pad", {"t:relu"}, "t:pad");
    pad.pad = 1;
    g.add(pad);
  }
  return g;
}

TEST(Fuse, ChainCollapsesToSingleNode) {
  const Graph g = make_fusible(false);
  FusionStats st;
  const Graph f = fuse_epilogues(g, &st);
  EXPECT_TRUE(f.validate().empty());
  ASSERT_EQ(f.nodes().size(), 1u);
  const Node& n = f.nodes()[0];
  EXPECT_EQ(n.kind, NodeKind::Conv);
  EXPECT_TRUE(n.epilogue.bias);
  EXPECT_TRUE(n.epilogue.relu);
  EXPECT_FALSE(n.epilogue.residual);
  EXPECT_EQ(n.bias_name, "conv.bias");  // seeds the same bias vector
  EXPECT_EQ(n.output, "t:relu");        // the chain tail's tensor
  EXPECT_EQ(st.convs_fused, 1);
  EXPECT_EQ(st.bias_folded, 1);
  EXPECT_EQ(st.relu_folded, 1);
  EXPECT_EQ(st.nodes_removed(), 2);
}

TEST(Fuse, ResidualAddAndPadAreAbsorbed) {
  const Graph g = make_fusible(true, /*tail_pad=*/true);
  FusionStats st;
  const Graph f = fuse_epilogues(g, &st);
  EXPECT_TRUE(f.validate().empty());
  ASSERT_EQ(f.nodes().size(), 1u);
  const Node& n = f.nodes()[0];
  EXPECT_TRUE(n.epilogue.bias);
  EXPECT_TRUE(n.epilogue.residual);
  EXPECT_TRUE(n.epilogue.relu);
  EXPECT_EQ(n.epilogue.out_pad, 1);
  ASSERT_EQ(n.inputs.size(), 2u);
  EXPECT_EQ(n.inputs[1], "shortcut");  // the residual operand
  EXPECT_EQ(n.output, "t:pad");
  EXPECT_EQ(st.add_folded, 1);
  EXPECT_EQ(st.pad_folded, 1);
  // The padded output shape matches the unfused graph's.
  EXPECT_EQ(f.shapes().at("t:pad"), g.shapes().at("t:pad"));
}

TEST(Fuse, MultiConsumerIntermediateBlocksAbsorption) {
  // The conv output feeds bias AND a pool: absorbing bias would hide a
  // tensor the pool still needs, so nothing fuses.
  Graph g = make_fusible(false);
  g.add(node(NodeKind::MaxPool2x2, "pool", {"t:conv"}, "t:pool"));
  FusionStats st;
  const Graph f = fuse_epilogues(g, &st);
  EXPECT_TRUE(f.validate().empty());
  EXPECT_EQ(st.bias_folded, 0);
  EXPECT_EQ(st.convs_fused, 0);
  EXPECT_EQ(f.nodes().size(), g.nodes().size());
}

TEST(Fuse, PredicateGatesWhichConvsFuse) {
  const Graph g = make_fusible(false);
  FusionStats st;
  const Graph f =
      fuse_epilogues(g, &st, [](const Node&) { return false; });
  EXPECT_EQ(st.convs_fused, 0);
  EXPECT_EQ(f.nodes().size(), g.nodes().size());
}

TEST(Graph, FusedResidualShapeMismatchIsReported) {
  // A fused residual operand must match the conv's *raw* output shape
  // before the planner ever sees the graph (satellite of ISSUE 6).
  Graph g;
  g.add_input("in", {8, 32});
  g.add_input("shortcut", {4, 32});  // wrong: conv raw output is 6x6
  Node conv = node(NodeKind::Conv, "conv", {"in", "shortcut"}, "out");
  conv.kernel = 3;
  conv.channels_out = 32;
  conv.epilogue.bias = true;
  conv.epilogue.residual = true;
  conv.epilogue.relu = true;
  g.add(conv);
  const auto problems = g.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("residual"), std::string::npos);
  // Fixing the operand shape clears it.
  Graph ok;
  ok.add_input("in", {8, 32});
  ok.add_input("shortcut", {6, 32});
  ok.add(conv);
  EXPECT_TRUE(ok.validate().empty());
}

TEST(Residency, AdjacentMpePassesPinTheHandoverTensor) {
  // pool -> pad back to back: pool's output is consumed only by pad, so
  // the tiles hand over on-chip. Conv-adjacent edges need a budget.
  const Graph g = make_tiny(1);
  const ResidencyPlan rp = plan_residency(g);
  EXPECT_TRUE(rp.resident.count("t:pool1"));
  EXPECT_GT(rp.resident_floats_per_image, 0);
  // Conv operands stay materialized without a conv budget.
  EXPECT_FALSE(rp.resident.count("t:pad1"));
  EXPECT_FALSE(rp.resident.count("t:conv1"));
}

TEST(Residency, ConvEdgesNeedBudgetAndGate) {
  // conv -> bias adjacent edge: resident only when the tensor fits the
  // conv budget and the conv passes the gate.
  const Graph g = make_fusible(false);
  ResidencyOptions o;
  o.batch = 2;
  o.conv_budget_floats = g.shapes().at("t:conv").floats(2);
  const ResidencyPlan rp = plan_residency(g, o);
  EXPECT_TRUE(rp.resident.count("t:conv"));
  // One float short: the whole tensor no longer fits.
  o.conv_budget_floats -= 1;
  EXPECT_FALSE(plan_residency(g, o).resident.count("t:conv"));
  // The engine's gate (e.g. "implicit only") excludes the conv endpoint.
  o.conv_budget_floats += 1;
  o.conv_ok = [](const Node&) { return false; };
  EXPECT_FALSE(plan_residency(g, o).resident.count("t:conv"));
}

TEST(Engine, FusedBlockMatchesReferenceAndElidesTraffic) {
  // Functional equivalence of the fused implicit kernel against the
  // *unfused* host reference (the engine always checks the original
  // graph), plus the ablation: fusion off prices strictly more cycles.
  GraphEngine engine(fast_cfg());
  NetOptions fused;  // fusion + residency default on
  const NetRunResult r = engine.run(make_fusible(true), 2, fused);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_EQ(r.fusion.convs_fused, 1);
  EXPECT_EQ(r.fusion.add_folded, 1);
  ASSERT_FALSE(r.layers.empty());
  EXPECT_TRUE(r.layers[0].fused);

  NetOptions off;
  off.fusion = false;
  off.residency = false;
  const NetRunResult u = engine.run(make_fusible(true), 2, off);
  EXPECT_TRUE(u.checked);
  EXPECT_LT(u.max_rel_err, 1e-4);
  EXPECT_EQ(u.fusion.convs_fused, 0);
  EXPECT_EQ(u.dma_bytes_elided, 0);
  EXPECT_GT(u.layers.size(), r.layers.size());
  EXPECT_GT(u.cycles, r.cycles);
}

TEST(Engine, ResidencyElidesBytesOnFusibleChain) {
  // Two fusible convs back to back: the inter-conv tensor fits the SPM
  // budget, so its store + reload are elided and counted.
  Graph g("chain");
  g.add_input("in", {10, 32});
  Node c1 = node(NodeKind::Conv, "c1", {"in"}, "t:c1");
  c1.kernel = 3;
  c1.channels_out = 32;
  g.add(c1);
  g.add(node(NodeKind::Relu, "c1.relu", {"t:c1"}, "t:r1"));
  Node c2 = node(NodeKind::Conv, "c2", {"t:r1"}, "t:c2");
  c2.kernel = 3;
  c2.channels_out = 32;
  g.add(c2);

  GraphEngine engine(fast_cfg());
  const NetRunResult r = engine.run(g, 2, NetOptions{});
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_GT(r.resident_tensors, 0);
  EXPECT_GT(r.dma_bytes_elided, 0);
  std::int64_t layer_sum = 0;
  for (const LayerReport& lr : r.layers) layer_sum += lr.dma_bytes_elided;
  EXPECT_EQ(layer_sum, r.dma_bytes_elided);

  NetOptions noresidency;
  noresidency.residency = false;
  const NetRunResult n = engine.run(g, 2, noresidency);
  EXPECT_EQ(n.dma_bytes_elided, 0);
  EXPECT_GT(n.cycles, r.cycles);  // the elided DMA was real priced time
  EXPECT_TRUE(n.checked);
  EXPECT_LT(n.max_rel_err, 1e-4);
}

// Fused-vs-unfused functional equivalence on the evaluation networks'
// real layer geometry. Full-net functional runs take minutes each, so
// tier-1 uses the tail slice of each table (the full nets run checked in
// the CI e2e smoke and bench_net_e2e); both runs are validated against
// the host reference of the *unfused* graph, which is the equivalence
// statement -- the engine never checks against its own fused execution.
void expect_fused_equivalence(const Graph& g, bool expect_elided) {
  GraphEngine engine(fast_cfg());
  const NetRunResult r = engine.run(g, 1, NetOptions{});
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_GT(r.fusion.convs_fused, 0);
  if (expect_elided) {
    EXPECT_GT(r.dma_bytes_elided, 0);
  }

  NetOptions off;
  off.fusion = false;
  off.residency = false;
  const NetRunResult u = engine.run(g, 1, off);
  EXPECT_TRUE(u.checked);
  EXPECT_LT(u.max_rel_err, 1e-4);
  EXPECT_EQ(u.fusion.convs_fused, 0);
  EXPECT_LT(r.cycles, u.cycles);
}

TEST(Engine, Vgg16TailFusedMatchesReference) {
  const auto t = nets::vgg16();
  expect_fused_equivalence(
      build_chain("vgg16-tail", {t[t.size() - 2], t[t.size() - 1]}), true);
}

TEST(Engine, YoloTailFusedMatchesReference) {
  // conv15 (1x1) -> conv16 (3x3): the inter-layer Pad is absorbed as
  // conv15's out_pad, so this slice also covers pad folding end to end.
  const auto t = nets::yolo();
  expect_fused_equivalence(
      build_chain("yolo-tail", {t[t.size() - 2], t[t.size() - 1]}), true);
}

TEST(Engine, ResnetBottleneckTailFusedMatchesReference) {
  // The res5_3x3 tail of a ResNet-50 bottleneck at table geometry:
  // conv(3x3, 512 -> 512 @ 7) -> bias -> residual add -> relu, the
  // Conv+Bias+Add+Relu chain the fusion pass exists for.
  Graph g("res5-tail");
  g.add_input("in", {9, 512});
  g.add_input("shortcut", {7, 512});
  Node conv = node(NodeKind::Conv, "res5_3x3", {"in"}, "t:conv");
  conv.kernel = 3;
  conv.channels_out = 512;
  g.add(conv);
  g.add(node(NodeKind::Bias, "res5_3x3.bias", {"t:conv"}, "t:bias"));
  g.add(node(NodeKind::Add, "res5_add", {"t:bias", "shortcut"}, "t:sum"));
  g.add(node(NodeKind::Relu, "res5_relu", {"t:sum"}, "out"));
  expect_fused_equivalence(g, /*expect_elided=*/false);
}

// ---------------------------------------------------------------- engine

TEST(Engine, TinyNetMatchesReference) {
  GraphEngine engine(fast_cfg());
  NetOptions opts;  // functional, check on
  const NetRunResult r = engine.run(make_tiny(1), 2, opts);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.flops, 0);
  EXPECT_EQ(r.groups_used, 1);
  EXPECT_DOUBLE_EQ(r.sync_cycles, 0.0);  // single group: no NoC barriers
  EXPECT_GT(r.planned_peak_floats, 0);
  EXPECT_LE(r.planned_peak_floats, r.naive_floats);
}

TEST(Engine, MultiGroupUnevenSplitMatchesReference) {
  // batch 3 over 2 groups: group 0 runs 2 images, group 1 runs 1. The
  // whole-net check covers every image, so a wrong slice offset fails.
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.groups = 2;
  const NetRunResult r = engine.run(make_tiny(1), 3, opts);
  EXPECT_EQ(r.groups_used, 2);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
  EXPECT_GT(r.sync_cycles, 0.0);  // barriers priced per conv step
  EXPECT_LT(r.sync_cycles, r.cycles);
}

TEST(Engine, GroupsClampToBatch) {
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.groups = 4;
  const NetRunResult r = engine.run(make_tiny(0), 1, opts);
  EXPECT_EQ(r.groups_used, 1);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
}

TEST(Engine, RepeatedShapesTuneOnce) {
  // Three convs, two distinct (method, shape, sub-batch) keys: the two
  // identical 16->16 blocks share one tuned schedule.
  GraphEngine engine(fast_cfg());
  const NetRunResult r = engine.run(make_tiny(2), 1, NetOptions{});
  EXPECT_EQ(r.layers.size(), make_tiny(2).nodes().size());
  EXPECT_EQ(r.shapes_tuned, 2);
  EXPECT_LT(r.shapes_tuned, build_net("vgg16").conv_count());  // vgg dedups too
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
}

TEST(Engine, SecondRunHitsTheScheduleCache) {
  const char* path = "test_graph_engine.cache";
  std::remove(path);
  SwatopConfig cfg = fast_cfg();
  cfg.cache.enabled = true;
  cfg.cache.path = path;
  const Graph g = make_tiny(1);

  GraphEngine cold(cfg);
  const NetRunResult first = cold.run(g, 1, NetOptions{});
  EXPECT_EQ(first.cache_hits, 0);

  GraphEngine warm(cfg);
  const NetRunResult second = warm.run(g, 1, NetOptions{});
  EXPECT_EQ(second.shapes_tuned, first.shapes_tuned);
  EXPECT_EQ(second.cache_hits, second.shapes_tuned);
  // Identical schedules -> identical priced execution.
  EXPECT_DOUBLE_EQ(second.cycles, first.cycles);
  std::remove(path);
}

TEST(Engine, TimingOnlyMatchesFunctionalCycles) {
  GraphEngine engine(fast_cfg());
  NetOptions fun;
  const NetRunResult f = engine.run(make_tiny(1), 2, fun);
  NetOptions tim;
  tim.mode = sim::ExecMode::TimingOnly;
  const NetRunResult t = engine.run(make_tiny(1), 2, tim);
  EXPECT_FALSE(t.checked);
  EXPECT_DOUBLE_EQ(t.cycles, f.cycles);
  EXPECT_EQ(t.flops, f.flops);
}

TEST(Engine, WinogradRunsFunctionally) {
  // conv2's 16 input channels satisfy Winograd's ni % 8 == 0; conv1 falls
  // back. The whole-net check still has to pass end to end.
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.method = ConvMethod::Winograd;
  const NetRunResult r = engine.run(make_tiny(1), 1, opts);
  EXPECT_TRUE(r.checked);
  EXPECT_LT(r.max_rel_err, 1e-4);
}

TEST(Engine, RejectsBadOptions) {
  GraphEngine engine(fast_cfg());
  NetOptions opts;
  opts.groups = 5;
  EXPECT_THROW(engine.run(make_tiny(0), 1, opts), CheckError);
  EXPECT_THROW(engine.run(make_tiny(0), 0, NetOptions{}), CheckError);
}

}  // namespace
}  // namespace swatop::graph
