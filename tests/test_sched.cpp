#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ir/analysis.hpp"
#include "ops/matmul.hpp"
#include "sched/lower.hpp"
#include "sched/scheduler.hpp"

namespace swatop::sched {
namespace {

sim::SimConfig cfg;

TEST(Lower, BuildNestOrdersLoops) {
  std::vector<LoopSpec> loops = {{"a", ir::cst(2), false},
                                 {"b", ir::cst(3), true}};
  auto prog = build_nest(loops, ir::make_comment("body"));
  ASSERT_EQ(prog->kind, ir::StmtKind::Seq);
  const auto& outer = prog->body[0];
  EXPECT_EQ(outer->var, "a");
  EXPECT_FALSE(outer->reduction);
  const auto& inner = outer->for_body->body[0];
  EXPECT_EQ(inner->var, "b");
  EXPECT_TRUE(inner->reduction);
}

TEST(Lower, OrderLoopsPermutes) {
  const std::vector<std::pair<char, LoopSpec>> dims = {
      {'m', {"m", ir::cst(1), false}},
      {'n', {"n", ir::cst(1), false}},
      {'k', {"k", ir::cst(1), true}},
  };
  const auto out = order_loops("knm", dims);
  EXPECT_EQ(out[0].var, "k");
  EXPECT_EQ(out[1].var, "n");
  EXPECT_EQ(out[2].var, "m");
}

TEST(Lower, OrderLoopsRejectsBadStrings) {
  const std::vector<std::pair<char, LoopSpec>> dims = {
      {'m', {"m", ir::cst(1), false}},
      {'n', {"n", ir::cst(1), false}},
  };
  EXPECT_THROW(order_loops("mx", dims), CheckError);
  EXPECT_THROW(order_loops("m", dims), CheckError);
}

TEST(Scheduler, ProducesValidOptimizedCandidates) {
  ops::MatmulOp op(64, 64, 32);
  Scheduler sched(cfg);
  const auto cands = sched.candidates(op);
  ASSERT_FALSE(cands.empty());
  EXPECT_LT(static_cast<std::int64_t>(cands.size()), sched.space_size(op));
  for (const auto& c : cands) {
    // Every candidate went through DMA inference and fits the SPM.
    EXPECT_TRUE(ir::contains_kind(c.program, ir::StmtKind::DmaGet));
    EXPECT_LE(ir::spm_footprint(c.program), cfg.spm_floats());
  }
}

TEST(Scheduler, SpaceSizeMatchesDsl) {
  ops::MatmulOp op(64, 64, 32);
  Scheduler sched(cfg);
  EXPECT_EQ(sched.space_size(op), op.space().size());
}

TEST(Scheduler, MaxCandidatesCaps) {
  ops::MatmulOp op(64, 64, 32);
  Scheduler sched(cfg);
  SchedulerOptions opts;
  opts.max_candidates = 5;
  EXPECT_EQ(sched.candidates(op, opts).size(), 5u);
}

TEST(Scheduler, AlignedShapeDropsSwitchCandidates) {
  // With no ragged dims, boundary="switch" lowers to nullptr and only the
  // pad variants remain -- the space halves.
  ops::MatmulOp op(64, 64, 32);
  Scheduler sched(cfg);
  const auto cands = sched.candidates(op);
  for (const auto& c : cands)
    EXPECT_EQ(c.strategy.choice("boundary"), "pad");
}

TEST(Scheduler, UnalignedShapeKeepsLegalSwitch) {
  // 192 % 128 = 64: switch-legal remainder, both strategies survive.
  ops::MatmulOp op(192, 64, 32);
  Scheduler sched(cfg);
  const auto cands = sched.candidates(op);
  bool has_switch = false, has_pad = false;
  for (const auto& c : cands) {
    has_switch = has_switch || c.strategy.choice("boundary") == "switch";
    has_pad = has_pad || c.strategy.choice("boundary") == "pad";
  }
  EXPECT_TRUE(has_switch);
  EXPECT_TRUE(has_pad);
}

}  // namespace
}  // namespace swatop::sched
