// End-to-end tests: DSL -> scheduler -> IR optimizer -> runtime, checked
// functionally against naive references for every operator design.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/swatop.hpp"
#include "ir/analysis.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "ops/winograd.hpp"
#include "rt/bind.hpp"

namespace swatop {
namespace {

constexpr double kTol = 2e-3;  // fp32 accumulation over O(10^2..10^3) terms

/// Tune, run functionally, and compare against the reference -- through the
/// one-call API (the tuned handle owns core group, binding and input fill).
double optimize_and_check(const dsl::OperatorDef& op) {
  OptimizedOperator tuned = Optimizer().optimize(op);
  tuned.execute(sim::ExecMode::Functional);
  return tuned.check_output();
}

TEST(Integration, MatmulAlignedSmall) {
  ops::MatmulOp op(64, 64, 32);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, MatmulUnaligned) {
  ops::MatmulOp op(72, 56, 40);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, MatmulVeryUnaligned) {
  ops::MatmulOp op(50, 46, 25);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, MatmulTall) {
  ops::MatmulOp op(200, 40, 24);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, ImplicitConvBatch8) {
  ops::ConvShape s;
  s.batch = 8;
  s.ni = 32;
  s.no = 32;
  s.ri = 8;
  s.ci = 8;
  s.kr = 3;
  s.kc = 3;
  ops::ImplicitConvOp op(s);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, ImplicitConvBatch1) {
  // Inference case: no manual implementation exists, swATOP still covers it.
  ops::ConvShape s;
  s.batch = 1;
  s.ni = 32;
  s.no = 64;
  s.ri = 12;
  s.ci = 12;
  ops::ImplicitConvOp op(s);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, ImplicitConv1x1Kernel) {
  ops::ConvShape s;
  s.batch = 4;
  s.ni = 64;
  s.no = 32;
  s.ri = 6;
  s.ci = 6;
  s.kr = 1;
  s.kc = 1;
  ops::ImplicitConvOp op(s);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, ExplicitConvSmall) {
  ops::ConvShape s;
  s.batch = 2;
  s.ni = 16;
  s.no = 32;
  s.ri = 8;
  s.ci = 8;
  ops::ExplicitConvOp op(s);
  EXPECT_LE(optimize_and_check(op), kTol);
}

TEST(Integration, WinogradConvSmall) {
  ops::ConvShape s;
  s.batch = 2;
  s.ni = 16;
  s.no = 32;
  s.ri = 10;
  s.ci = 10;
  ops::WinogradGemmOp op(s);
  EXPECT_LE(optimize_and_check(op), 5e-3);
}

TEST(Integration, WinogradConvOddOutput) {
  ops::ConvShape s;
  s.batch = 1;
  s.ni = 8;
  s.no = 16;
  s.ri = 9;  // Ro = 7, odd: ragged Winograd tiles
  s.ci = 9;
  ops::WinogradGemmOp op(s);
  EXPECT_LE(optimize_and_check(op), 5e-3);
}

TEST(Integration, RepeatedExecuteDoesNotAccumulate) {
  // Regression: the handle reuses its core group between runs with memory
  // contents preserved, and the generated schedules *accumulate* into
  // their outputs (C += A*B). A re-run must not double the result --
  // execute() re-zeroes output tensors before each re-run rather than
  // relying on every schedule's first-pass SPM zero guard.
  ops::MatmulOp op(64, 64, 32);
  OptimizedOperator tuned = Optimizer().optimize(op);
  tuned.execute(sim::ExecMode::Functional);
  EXPECT_LE(tuned.check_output(), kTol);
  tuned.execute(sim::ExecMode::Functional);
  EXPECT_LE(tuned.check_output(), kTol);
  tuned.execute(sim::ExecMode::Functional);
  EXPECT_LE(tuned.check_output(), kTol);
}

TEST(Integration, RepeatedExecuteConvDoesNotAccumulate) {
  ops::ConvShape s;
  s.batch = 2;
  s.ni = 16;
  s.no = 16;
  s.ri = 6;
  s.ci = 6;
  ops::ImplicitConvOp op(s);
  OptimizedOperator tuned = Optimizer().optimize(op);
  tuned.execute(sim::ExecMode::Functional);
  EXPECT_LE(tuned.check_output(), kTol);
  tuned.execute(sim::ExecMode::Functional);
  EXPECT_LE(tuned.check_output(), kTol);
}

TEST(Integration, OuterReductionReRunDoesNotAccumulate) {
  // The riskiest re-run shape: order kmn with Tk < K places the reduction
  // loop outside the C tile's scope, so the program re-fetches C from main
  // memory and accumulates partial sums into it. Even through the
  // low-level path (no execute()-level re-zero), a re-run must be
  // idempotent: the first pass zeroes the SPM accumulator and the final
  // DmaPut overwrites the tile.
  ops::MatmulOp op(64, 64, 64);
  dsl::Strategy s;
  s.set_factor("Tm", 32);
  s.set_factor("Tn", 32);
  s.set_factor("Tk", 16);  // K = 64: four outer reduction passes
  s.set_choice("order", "kmn");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  const sim::SimConfig cfg;
  const sched::Candidate cand = tune::build_candidate(op, s, cfg);
  sim::CoreGroup cg(cfg);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  op.fill_inputs(cg, bt, s);
  rt::Interpreter(cg, sim::ExecMode::Functional).run(cand.program, bt);
  EXPECT_LE(op.check_output(cg, bt, s), kTol);
  rt::Interpreter(cg, sim::ExecMode::Functional).run(cand.program, bt);
  EXPECT_LE(op.check_output(cg, bt, s), kTol);
}

TEST(Integration, GeneratedCodeIsNonTrivial) {
  ops::MatmulOp op(64, 64, 32);
  Optimizer optimizer;
  const OptimizedOperator tuned = optimizer.optimize(op);
  EXPECT_NE(tuned.c_source.find("spm_gemm"), std::string::npos);
  EXPECT_NE(tuned.c_source.find("swDMA"), std::string::npos);
  EXPECT_GT(tuned.stats.valid_candidates, 10);
}

}  // namespace
}  // namespace swatop

#include "ops/conv_backward.hpp"

namespace swatop {
namespace {

TEST(Integration, ConvBackwardDataTuned) {
  ops::ConvShape s;
  s.batch = 8;
  s.ni = 32;
  s.no = 32;
  s.ri = 8;
  s.ci = 8;
  ops::ConvBwdDataOp op(s);
  EXPECT_LE(optimize_and_check(op), 3e-3);
}

TEST(Integration, ConvBackwardFilterTuned) {
  ops::ConvShape s;
  s.batch = 8;
  s.ni = 32;
  s.no = 32;
  s.ri = 8;
  s.ci = 8;
  ops::ConvBwdFilterOp op(s);
  EXPECT_LE(optimize_and_check(op), 5e-3);
}

}  // namespace
}  // namespace swatop

#include "core/chip_parallel.hpp"

namespace swatop {
namespace {

TEST(Integration, ChipDataParallelScales) {
  // A training batch large enough that the per-group sub-batch (32) keeps
  // its GEMM efficiency; smaller batches genuinely scale sub-linearly.
  ops::ConvShape s;
  s.batch = 128;
  s.ni = 64;
  s.no = 64;
  s.ri = 16;
  s.ci = 16;
  const sim::SimConfig cfg;
  const auto one = run_conv_data_parallel(s, 1, cfg);
  const auto four = run_conv_data_parallel(s, 4, cfg);
  EXPECT_EQ(four.groups_used, 4);
  // Near-linear: four groups at least 2.5x faster than one.
  EXPECT_LT(four.cycles, one.cycles / 2.5);
  EXPECT_GT(four.gflops, one.gflops * 2.5);
}

TEST(Integration, ChipBatchOneCannotSplit) {
  ops::ConvShape s;
  s.batch = 1;
  s.ni = 64;
  s.no = 64;
  s.ri = 16;
  s.ci = 16;
  const sim::SimConfig cfg;
  const auto r = run_conv_data_parallel(s, 4, cfg);
  EXPECT_EQ(r.groups_used, 1);
}

}  // namespace
}  // namespace swatop

namespace swatop {
namespace {

TEST(Integration, ChipUnevenSplit) {
  // Batch 5 over 3 groups: 2 + 2 + 1; the odd group finishes early, the
  // slowest one bounds the elapsed time.
  ops::ConvShape s;
  s.batch = 5;
  s.ni = 32;
  s.no = 32;
  s.ri = 10;
  s.ci = 10;
  const sim::SimConfig cfg;
  const auto r = run_conv_data_parallel(s, 3, cfg);
  EXPECT_EQ(r.groups_used, 3);
  ASSERT_EQ(r.per_group_cycles.size(), 3u);
  EXPECT_GE(r.per_group_cycles[0], r.per_group_cycles[2]);
}

}  // namespace
}  // namespace swatop

namespace swatop {
namespace {

TEST(Integration, PortsToSw26010Pro) {
  // Re-tuning the same operator against the successor machine: the 4x SPM
  // admits larger tiles, and the result must still be functionally correct
  // and strictly faster in wall-clock terms (higher clock + bandwidth).
  ops::MatmulOp op(512, 512, 256);
  const sim::SimConfig base = sim::SimConfig::sw26010();
  const sim::SimConfig pro = sim::SimConfig::sw26010pro();

  const tune::ModelTuner base_tuner(base);
  const tune::ModelTuner pro_tuner(pro);
  const auto base_pick = base_tuner.tune(op);
  const auto pro_pick = pro_tuner.tune(op);

  // The 4x SPM admits tile footprints the base machine must prune: a
  // 512x512x512 blocking fits the Pro's scratchpad only.
  {
    dsl::Strategy huge;
    huge.set_factor("Tm", 512);
    huge.set_factor("Tn", 512);
    huge.set_factor("Tk", 512);
    huge.set_choice("order", "mnk");
    huge.set_choice("variant", "0");
    huge.set_choice("boundary", "pad");
    ops::MatmulOp big(1024, 1024, 1024);
    EXPECT_THROW(tune::build_candidate(big, huge, base), CheckError);
    EXPECT_GT(tune::measure_strategy(big, huge, pro), 0.0);
  }
  (void)pro_pick;

  const double base_cycles =
      tune::measure_candidate(op, base_pick.candidate, base);
  const double pro_cycles =
      tune::measure_candidate(op, pro_pick.candidate, pro);
  const double base_s = base_cycles / base.clock_ghz;
  const double pro_s = pro_cycles / pro.clock_ghz;
  EXPECT_LT(pro_s, base_s);
}

TEST(Integration, ProTunedStillCorrect) {
  ops::MatmulOp op(72, 56, 40);
  SwatopConfig cfg;
  cfg.machine = sim::SimConfig::sw26010pro();
  auto [tuned, r] = optimize_and_run(cfg, op);
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_LE(tuned.check_output(), 2e-3);
}

TEST(Integration, LowLevelEntryPointsStillWork) {
  // Callers that manage the core group themselves keep working.
  ops::MatmulOp op(64, 64, 32);
  Optimizer optimizer;
  const OptimizedOperator tuned = optimizer.optimize(op);
  sim::CoreGroup cg(optimizer.machine());
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  op.fill_inputs(cg, bt, tuned.candidate.strategy);
  tuned.run(cg, bt, sim::ExecMode::Functional);
  EXPECT_LE(op.check_output(cg, bt, tuned.candidate.strategy), kTol);
}

}  // namespace
}  // namespace swatop
