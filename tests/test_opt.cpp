#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ir/analysis.hpp"
#include "ir/mutator.hpp"
#include "ir/printer.hpp"
#include "opt/boundary.hpp"
#include "opt/coalesce.hpp"
#include "opt/dma_inference.hpp"
#include "opt/double_buffer.hpp"
#include "opt/pass_manager.hpp"
#include "ops/matmul.hpp"

namespace swatop::opt {
namespace {

sim::SimConfig cfg;

dsl::Strategy matmul_strategy(std::int64_t tm, std::int64_t tn,
                              std::int64_t tk, const std::string& order,
                              const std::string& variant = "0",
                              const std::string& boundary = "pad") {
  dsl::Strategy s;
  s.set_factor("Tm", tm);
  s.set_factor("Tn", tn);
  s.set_factor("Tk", tk);
  s.set_choice("order", order);
  s.set_choice("variant", variant);
  s.set_choice("boundary", boundary);
  return s;
}

TEST(TiledDim, EvenSplit) {
  const TiledDim d = make_tiled("i", 128, 32);
  EXPECT_EQ(d.count, 4);
  EXPECT_FALSE(d.ragged);
  EXPECT_TRUE(ir::is_const(d.valid()));
  EXPECT_EQ(ir::as_cst(d.valid()), 32);
  EXPECT_EQ(ir::eval(d.base(), {{"i", 3}}), 96);
}

TEST(TiledDim, RaggedSplit) {
  const TiledDim d = make_tiled("i", 100, 32);
  EXPECT_EQ(d.count, 4);
  EXPECT_TRUE(d.ragged);
  EXPECT_EQ(d.remainder(), 4);
  EXPECT_EQ(ir::eval(d.valid(), {{"i", 0}}), 32);
  EXPECT_EQ(ir::eval(d.valid(), {{"i", 3}}), 4);
}

TEST(TiledDim, SwitchLegality) {
  // Remainder 64: divisible by 8, 64/8 = 8 divisible by 4 -> legal.
  EXPECT_TRUE(switch_legal(make_tiled("i", 192, 128), 8, 4));
  // Remainder 4: not divisible by mesh 8.
  EXPECT_FALSE(switch_legal(make_tiled("i", 100, 32), 8, 1));
  // Remainder 8: 8/8 = 1, not a multiple of 4 when vectorized.
  EXPECT_FALSE(switch_legal(make_tiled("i", 40, 32), 8, 4));
  EXPECT_TRUE(switch_legal(make_tiled("i", 40, 32), 8, 1));
  // Even splits are always legal.
  EXPECT_TRUE(switch_legal(make_tiled("i", 64, 32), 8, 4));
}

TEST(DmaInference, InjectsAllocsGetsAndPuts) {
  ops::MatmulOp op(128, 128, 64);
  auto prog = op.lower(matmul_strategy(64, 64, 32, "mnk"));
  ASSERT_NE(prog, nullptr);
  ASSERT_TRUE(infer_dma(prog, cfg));
  const auto dmas = ir::find_dmas(prog);
  // A get, B get, C put.
  int gets = 0, puts = 0;
  for (const auto* d : dmas) {
    if (d->kind == ir::StmtKind::DmaGet) ++gets;
    if (d->kind == ir::StmtKind::DmaPut) ++puts;
  }
  EXPECT_EQ(gets, 2);
  EXPECT_EQ(puts, 1);
  EXPECT_TRUE(ir::contains_kind(prog, ir::StmtKind::SpmAlloc));
  EXPECT_TRUE(ir::contains_kind(prog, ir::StmtKind::DmaWait));
  // Gemm is now bound to SPM buffers.
  const auto* g = ir::find_gemms(prog)[0];
  EXPECT_EQ(g->gemm.a_buf, "spm_A");
  EXPECT_EQ(g->gemm.c_buf, "spm_C");
}

TEST(DmaInference, HoistsInvariantTransfers) {
  // Order mnk: A depends on (m_o, k_o), B on (k_o, n_o), C on (m_o, n_o).
  // C's put must sit outside the k loop; A and B gets inside it.
  ops::MatmulOp op(128, 128, 64);
  auto prog = op.lower(matmul_strategy(64, 64, 32, "mnk"));
  ASSERT_TRUE(infer_dma(prog, cfg));
  const std::string text = ir::print(prog);
  // C put appears after the k loop closes: find positions.
  const auto kpos = text.find("for k_o");
  const auto cput = text.find("dma_put C");
  ASSERT_NE(kpos, std::string::npos);
  ASSERT_NE(cput, std::string::npos);
  EXPECT_GT(cput, kpos);
  // The C accumulator zero precedes the k loop.
  EXPECT_LT(text.find("spm_zero spm_C"), kpos);
}

TEST(DmaInference, OuterReductionRefetchesC) {
  // Order kmn: the reduction loop is outermost; C must be re-fetched and
  // accumulated on every pass after the first.
  ops::MatmulOp op(128, 128, 64);
  auto prog = op.lower(matmul_strategy(64, 64, 32, "kmn"));
  ASSERT_TRUE(infer_dma(prog, cfg));
  const std::string text = ir::print(prog);
  EXPECT_NE(text.find("dma_get C"), std::string::npos);
  EXPECT_NE(text.find("if ((k_o < 1))"), std::string::npos);
}

TEST(DmaInference, BoundaryZeroGuardsOnlyWhenRagged) {
  ops::MatmulOp aligned(128, 128, 64);
  auto p1 = aligned.lower(matmul_strategy(64, 64, 32, "mnk"));
  ASSERT_TRUE(infer_dma(p1, cfg));
  EXPECT_FALSE(ir::contains_kind(p1, ir::StmtKind::If));

  ops::MatmulOp ragged(100, 128, 64);
  auto p2 = ragged.lower(matmul_strategy(64, 64, 32, "mnk"));
  ASSERT_TRUE(infer_dma(p2, cfg));
  EXPECT_TRUE(ir::contains_kind(p2, ir::StmtKind::If));
}

TEST(DmaInference, RejectsInvalidPaddedDims) {
  // Tile N = 16 with a vec-N variant: 16/8 = 2, not a multiple of 4.
  ops::MatmulOp op(64, 16, 32);
  auto prog = op.lower(matmul_strategy(64, 16, 32, "mnk", "4"));
  ASSERT_NE(prog, nullptr);
  EXPECT_FALSE(infer_dma(prog, cfg));
}

TEST(DmaInference, RowMajorOperandSwapsDistribution) {
  // Variant 1: A row-major -- its DMA view is transposed and distributed
  // with view rows mapped to column ids.
  ops::MatmulOp op(64, 64, 32);
  auto prog = op.lower(matmul_strategy(64, 64, 32, "mnk", "1"));
  ASSERT_TRUE(infer_dma(prog, cfg));
  bool saw_swapped = false;
  ir::visit(prog, [&](const ir::StmtPtr& n) {
    if (n->kind == ir::StmtKind::DmaGet && n->dma.spm_buf == "spm_A")
      saw_swapped = !n->dma.rows_to_rid;
  });
  EXPECT_TRUE(saw_swapped);
}

TEST(DoubleBuffer, TransformsInnermostGetLoop) {
  ops::MatmulOp op(128, 128, 128);
  auto prog = op.lower(matmul_strategy(64, 64, 32, "mnk"));
  ASSERT_TRUE(infer_dma(prog, cfg));
  ASSERT_TRUE(apply_double_buffer(prog));
  const std::string text = ir::print(prog);
  EXPECT_NE(text.find("// prefetched"), std::string::npos);
  // A and B allocations doubled; C not.
  int doubled = 0;
  ir::visit(prog, [&](const ir::StmtPtr& n) {
    if (n->kind == ir::StmtKind::SpmAlloc && n->double_buffered) ++doubled;
  });
  EXPECT_EQ(doubled, 2);
  // Prefetch guard on the next iteration.
  EXPECT_NE(text.find("((k_o + 1) < 4)"), std::string::npos);
  // Gemm reads the current parity.
  EXPECT_NE(text.find("A=spm_A+((k_o%2)*"), std::string::npos);
}

TEST(DoubleBuffer, NoGetsNoTransform) {
  auto prog = ir::make_seq({ir::make_for(
      "i", ir::cst(4), ir::make_seq({ir::make_comment("empty")}))});
  EXPECT_FALSE(apply_double_buffer(prog));
}

TEST(Coalesce, MovesAllocsToTopAndSumsFootprint) {
  auto inner = ir::make_seq({ir::make_spm_alloc("b1", 100),
                             ir::make_comment("x")});
  auto prog = ir::make_seq(
      {ir::make_for("i", ir::cst(2), inner), ir::make_spm_alloc("b2", 50)});
  const auto total = coalesce_spm(prog);
  EXPECT_EQ(total, ir::spm_footprint(prog));
  EXPECT_EQ(prog->body[0]->kind, ir::StmtKind::SpmAlloc);
  EXPECT_EQ(prog->body[1]->kind, ir::StmtKind::SpmAlloc);
  // The loop body no longer allocates.
  EXPECT_FALSE(ir::contains_kind(prog->body[2], ir::StmtKind::SpmAlloc));
}

TEST(Coalesce, RejectsDuplicateBuffers) {
  auto prog = ir::make_seq(
      {ir::make_spm_alloc("b", 10), ir::make_spm_alloc("b", 20)});
  EXPECT_THROW(coalesce_spm(prog), CheckError);
}

TEST(Coalesce, FitsSpmBudget) {
  auto small = ir::make_seq({ir::make_spm_alloc("b", 1000)});
  EXPECT_TRUE(fits_spm(small, cfg));
  auto big = ir::make_seq({ir::make_spm_alloc("b", cfg.spm_floats())});
  EXPECT_FALSE(fits_spm(big, cfg));
}

TEST(PassManager, PrunesOverBudgetCandidates) {
  // 512x512 A/B/C tiles + double buffering cannot fit in 64 KB.
  ops::MatmulOp op(1024, 1024, 1024);
  auto prog = op.lower(matmul_strategy(512, 512, 512, "mnk"));
  ASSERT_NE(prog, nullptr);
  EXPECT_FALSE(optimize(prog, cfg));
}

TEST(PassManager, PrefetchCanBeDisabled) {
  ops::MatmulOp op(128, 128, 128);
  auto prog = op.lower(matmul_strategy(64, 64, 32, "mnk"));
  OptOptions o;
  o.prefetch = false;
  ASSERT_TRUE(optimize(prog, cfg, o));
  bool prefetched = false;
  ir::visit(prog, [&](const ir::StmtPtr& n) {
    prefetched = prefetched || n->prefetched;
  });
  EXPECT_FALSE(prefetched);
}

}  // namespace
}  // namespace swatop::opt

#include "opt/simplify.hpp"

namespace swatop::opt {
namespace {

TEST(Simplify, RemovesUnitLoopsAndSubstitutes) {
  // for i in [0,1): for j in [0,4): zero(buf + i*100 + j)
  auto inner = ir::make_seq({ir::make_spm_zero(
      "b", ir::add(ir::mul(ir::var("i"), ir::cst(100)), ir::var("j")),
      ir::cst(8))});
  auto j = ir::make_for("j", ir::cst(4), inner);
  auto i = ir::make_for("i", ir::cst(1), ir::make_seq({j}));
  auto root = ir::make_seq({ir::make_spm_alloc("b", 64), i});
  eliminate_unit_loops(root);
  // The i loop is gone; j remains; the offset folded i = 0.
  const auto vars = ir::loop_vars(root);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "j");
  bool found = false;
  ir::visit(root, [&](const ir::StmtPtr& n) {
    if (n->kind == ir::StmtKind::SpmZero) {
      found = true;
      EXPECT_FALSE(ir::uses_var(n->zero_off, "i"));
      EXPECT_EQ(ir::eval(n->zero_off, {{"j", 3}}), 3);
    }
  });
  EXPECT_TRUE(found);
}

TEST(Simplify, FlattensNestedSeqs) {
  auto root = ir::make_seq(
      {ir::make_for("u", ir::cst(1),
                    ir::make_seq({ir::make_comment("a"),
                                  ir::make_comment("b")})),
       ir::make_comment("c")});
  eliminate_unit_loops(root);
  ASSERT_EQ(root->kind, ir::StmtKind::Seq);
  EXPECT_EQ(root->body.size(), 3u);
  for (const auto& c : root->body)
    EXPECT_EQ(c->kind, ir::StmtKind::Comment);
}

TEST(Simplify, KeepsMultiIterationLoops) {
  auto root = ir::make_seq({ir::make_for(
      "i", ir::cst(2), ir::make_seq({ir::make_comment("x")}))});
  eliminate_unit_loops(root);
  EXPECT_EQ(ir::loop_vars(root).size(), 1u);
}

TEST(DoubleBuffer, MultiLevelPrefetch) {
  // Order kmn puts the k reduction outermost: A's get lands in the m loop,
  // B's in the n loop -- both levels must be double-buffered.
  ops::MatmulOp op(256, 256, 128);
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "kmn");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  auto prog = op.lower(s);
  ASSERT_TRUE(infer_dma(prog, cfg));
  eliminate_unit_loops(prog);
  ASSERT_TRUE(apply_double_buffer(prog));
  int prefetched_loops = 0;
  ir::visit(prog, [&](const ir::StmtPtr& n) {
    if (n->kind == ir::StmtKind::For && n->prefetched) ++prefetched_loops;
  });
  EXPECT_GE(prefetched_loops, 2);
}

}  // namespace
}  // namespace swatop::opt
