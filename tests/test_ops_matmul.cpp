#include <gtest/gtest.h>

#include "ops/matmul.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "tune/tuner.hpp"

namespace swatop::ops {
namespace {

sim::SimConfig cfg;

double run_and_check(const MatmulOp& op, const dsl::Strategy& s) {
  const auto cand = tune::build_candidate(op, s, cfg);
  sim::CoreGroup cg(cfg);
  const auto bt = rt::bind_tensors(cg, op);
  op.fill_inputs(cg, bt, s);
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  interp.run(cand.program, bt);
  return op.check_output(cg, bt, s);
}

dsl::Strategy strat(std::int64_t tm, std::int64_t tn, std::int64_t tk,
                    const std::string& order, const std::string& variant,
                    const std::string& boundary) {
  dsl::Strategy s;
  s.set_factor("Tm", tm);
  s.set_factor("Tn", tn);
  s.set_factor("Tk", tk);
  s.set_choice("order", order);
  s.set_choice("variant", variant);
  s.set_choice("boundary", boundary);
  return s;
}

TEST(MatmulOp, TileCandidatesFilterAndFallback) {
  EXPECT_EQ(MatmulOp::tile_candidates(100, 32, {32, 64, 128, 256}),
            (std::vector<std::int64_t>{32, 64, 128}));
  EXPECT_EQ(MatmulOp::tile_candidates(8, 8, {16, 32}),
            (std::vector<std::int64_t>{8}));  // fallback to align_up
}

TEST(MatmulOp, TensorsAndFlops) {
  MatmulOp op(10, 20, 30);
  const auto ts = op.tensors();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].floats, 300);
  EXPECT_EQ(ts[1].floats, 600);
  EXPECT_EQ(ts[2].floats, 200);
  EXPECT_TRUE(ts[2].is_output);
  EXPECT_EQ(op.flops(), 2 * 10 * 20 * 30);
}

TEST(MatmulOp, SpaceContainsAllAxes) {
  MatmulOp op(128, 128, 64);
  const auto sp = op.space();
  EXPECT_EQ(sp.factors().size(), 3u);
  EXPECT_EQ(sp.choices().size(), 3u);
  EXPECT_GT(sp.size(), 100);
}

class MatmulOrders : public ::testing::TestWithParam<const char*> {};

TEST_P(MatmulOrders, AllLoopOrdersCorrect) {
  MatmulOp op(64, 64, 64);
  EXPECT_LE(run_and_check(op, strat(32, 32, 16, GetParam(), "0", "pad")),
            2e-3);
}

INSTANTIATE_TEST_SUITE_P(Orders, MatmulOrders,
                         ::testing::Values("mnk", "nmk", "mkn", "kmn"));

class MatmulVariants : public ::testing::TestWithParam<int> {};

TEST_P(MatmulVariants, AllKernelVariantsCorrect) {
  MatmulOp op(64, 64, 32);
  EXPECT_LE(run_and_check(op, strat(32, 32, 16, "mnk",
                                    std::to_string(GetParam()), "pad")),
            2e-3);
}

INSTANTIATE_TEST_SUITE_P(Variants, MatmulVariants, ::testing::Range(0, 8));

TEST(MatmulOp, PadBoundaryCorrectOnRaggedShape) {
  MatmulOp op(72, 56, 40);
  EXPECT_LE(run_and_check(op, strat(32, 32, 16, "mnk", "0", "pad")), 2e-3);
}

TEST(MatmulOp, SwitchBoundaryCorrectWhenLegal) {
  // 96 % 64 = 32 (mesh- and vec-legal), 48 % 32 = 16 (mesh-legal for K).
  MatmulOp op(96, 96, 48);
  EXPECT_LE(run_and_check(op, strat(64, 64, 32, "mnk", "0", "switch")),
            2e-3);
}

TEST(MatmulOp, SwitchRejectedWhenIllegal) {
  // Remainder 72 % 32 = 8: vec-M needs 8/8 = 1 % 4 == 0 -> illegal.
  MatmulOp op(72, 64, 32);
  EXPECT_EQ(op.lower(strat(32, 64, 32, "mnk", "0", "switch")), nullptr);
}

TEST(MatmulOp, SwitchRejectedOnAlignedShape) {
  MatmulOp op(64, 64, 32);
  EXPECT_EQ(op.lower(strat(32, 32, 16, "mnk", "0", "switch")), nullptr);
}

TEST(MatmulOp, TileLargerThanExtentStillCorrect) {
  MatmulOp op(24, 24, 16);
  EXPECT_LE(run_and_check(op, strat(32, 32, 16, "mnk", "0", "pad")), 2e-3);
}

TEST(MatmulOp, SwitchComputesFewerFlopsThanPad) {
  // Parameter switching never computes on padded zeros, so its primitive
  // flop count is strictly lower (whether it is *faster* depends on the
  // DMA granularity tradeoff -- smaller boundary tiles mean smaller
  // per-CPE DMA blocks -- which is exactly what the tuner arbitrates).
  MatmulOp op(192, 192, 96);
  const auto cp = tune::build_candidate(
      op, strat(128, 128, 64, "mnk", "0", "pad"), cfg);
  const auto cs = tune::build_candidate(
      op, strat(128, 128, 64, "mnk", "0", "switch"), cfg);
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const auto bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  const auto rp = interp.run(cp.program, bt);
  const auto rs = interp.run(cs.program, bt);
  EXPECT_LT(rs.stats.flops, rp.stats.flops);
  EXPECT_EQ(rs.stats.flops, 2 * 192 * 192 * 96);  // exactly the useful work
}

}  // namespace
}  // namespace swatop::ops
