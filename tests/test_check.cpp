// The correctness layer: IR validator rejections, simulator sanitizer
// self-tests (deliberately corrupted programs must be caught by the
// sanitizers, not by the output diff), DMA cost-model cross-checks and a
// fixed-seed fuzz smoke.
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>

#include "check/fuzz.hpp"
#include "check/validate_ir.hpp"
#include "common/check.hpp"
#include "ops/matmul.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "sim/dma.hpp"
#include "tune/tuner.hpp"

namespace swatop {
namespace {

sim::SimConfig base_cfg;

sim::SimConfig sanitizing_cfg() {
  sim::SimConfig cfg;
  cfg.sanitize.enabled = true;
  return cfg;
}

// ---------------------------------------------------------------------------
// IR validator.

std::string joined(const std::vector<std::string>& errors) {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

TEST(ValidateIr, NullProgramIsRejected) {
  EXPECT_FALSE(check::validate_ir(nullptr, base_cfg).empty());
}

TEST(ValidateIr, BufferUseWithoutAlloc) {
  auto prog = ir::make_seq();
  ir::seq_push(prog, ir::make_spm_zero("c", ir::cst(0), ir::cst(64)));
  const auto errors = check::validate_ir(prog, base_cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(joined(errors).find("no preceding SpmAlloc"), std::string::npos)
      << joined(errors);
}

TEST(ValidateIr, DuplicateAndNonPositiveAlloc) {
  auto prog = ir::make_seq();
  // make_spm_alloc itself rejects non-positive sizes, so corrupt the node
  // after construction -- the validator must still catch hand-built IR.
  auto bad = ir::make_spm_alloc("a", 64);
  bad->buf_floats = 0;
  ir::seq_push(prog, bad);
  ir::seq_push(prog, ir::make_spm_alloc("a", 64));
  const auto errors = check::validate_ir(prog, base_cfg);
  const std::string all = joined(errors);
  EXPECT_NE(all.find("duplicate SpmAlloc"), std::string::npos) << all;
  EXPECT_NE(all.find("0 floats"), std::string::npos) << all;
}

TEST(ValidateIr, NonPositiveForExtent) {
  auto prog = ir::make_seq();
  ir::seq_push(prog, ir::make_for("i", ir::cst(0), ir::make_seq()));
  const auto errors = check::validate_ir(prog, base_cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(joined(errors).find("<= 0"), std::string::npos) << joined(errors);
}

TEST(ValidateIr, WaitOnNeverIssuedSlot) {
  auto prog = ir::make_seq();
  ir::seq_push(prog, ir::make_dma_wait(ir::cst(3)));
  const auto errors = check::validate_ir(prog, base_cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(joined(errors).find("no DMA in the program can issue"),
            std::string::npos)
      << joined(errors);
}

TEST(ValidateIr, WaitSlotOutsideReplyTable) {
  auto prog = ir::make_seq();
  ir::seq_push(prog, ir::make_dma_wait(ir::cst(ir::kMaxReplySlots)));
  const auto errors = check::validate_ir(prog, base_cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(joined(errors).find("outside the"), std::string::npos)
      << joined(errors);
}

TEST(ValidateIr, GemmWithoutBindings) {
  auto prog = ir::make_seq();
  ir::GemmAttrs g;
  g.M = ir::cst(8);
  g.N = ir::cst(8);
  g.K = ir::cst(8);
  ir::seq_push(prog, ir::make_gemm(g));
  const auto errors = check::validate_ir(prog, base_cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(joined(errors).find("DMA inference never ran"),
            std::string::npos)
      << joined(errors);
}

TEST(ValidateIr, TunedProgramsAreClean) {
  ops::MatmulOp op(72, 40, 24);
  const auto cand = tune::build_candidate(op, tune::ModelTuner(base_cfg)
                                                  .tune(op)
                                                  .candidate.strategy,
                                          base_cfg);
  EXPECT_TRUE(check::validate_ir(cand.program, base_cfg).empty());
}

// ---------------------------------------------------------------------------
// Sanitizer self-tests: corrupt a real lowered program and require the
// *sanitizers* to catch it (SanitizerError), not the output diff.

ir::StmtPtr find_first(const ir::StmtPtr& s, ir::StmtKind kind) {
  if (s == nullptr) return nullptr;
  if (s->kind == kind) return s;
  for (const auto& c : s->body)
    if (auto r = find_first(c, kind)) return r;
  if (auto r = find_first(s->for_body, kind)) return r;
  if (auto r = find_first(s->then_s, kind)) return r;
  return find_first(s->else_s, kind);
}

struct CorruptionResult {
  bool sanitizer = false;
  bool mismatch = false;
  std::string what;
  obs::SanitizerCounters trips;
};

CorruptionResult run_corrupted(
    const std::function<void(const ir::StmtPtr&)>& corrupt) {
  const sim::SimConfig cfg = sanitizing_cfg();
  ops::MatmulOp op(32, 32, 16);
  dsl::Strategy strat =
      tune::ModelTuner(cfg).tune(op).candidate.strategy;
  auto cand = tune::build_candidate(op, strat, cfg);
  ir::StmtPtr prog = ir::deep_copy(cand.program);
  corrupt(prog);
  sim::CoreGroup cg(cfg);
  const auto bt = rt::bind_tensors(cg, op);
  op.fill_inputs(cg, bt, strat);
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  CorruptionResult r;
  try {
    interp.run(prog, bt);
    r.mismatch = op.check_output(cg, bt, strat) > 2e-3;
  } catch (const SanitizerError& e) {
    r.sanitizer = true;
    r.what = e.what();
  }
  r.trips = cg.stats().sanitizer;
  return r;
}

TEST(SanitizerSelfTest, SkippedDmaWaitIsCaughtBySanitizer) {
  const CorruptionResult r = run_corrupted([](const ir::StmtPtr& prog) {
    ir::StmtPtr wait = find_first(prog, ir::StmtKind::DmaWait);
    ASSERT_NE(wait, nullptr);
    wait->kind = ir::StmtKind::Comment;
    wait->text = "corrupted: wait removed";
  });
  EXPECT_TRUE(r.sanitizer) << "skipped DmaWait escaped the sanitizers";
  EXPECT_FALSE(r.mismatch);
  EXPECT_GT(r.trips.total(), 0);
}

TEST(SanitizerSelfTest, OffByEightSpmOffsetIsCaughtBySanitizer) {
  // Shift the first DmaGet's SPM offset: the gemm then reads 8 floats that
  // the transfer no longer defines.
  const CorruptionResult r = run_corrupted([](const ir::StmtPtr& prog) {
    ir::StmtPtr get = find_first(prog, ir::StmtKind::DmaGet);
    ASSERT_NE(get, nullptr);
    get->dma.spm_off = ir::add(get->dma.spm_off, ir::cst(8));
  });
  EXPECT_TRUE(r.sanitizer) << "corrupted SPM offset escaped the sanitizers";
  EXPECT_FALSE(r.mismatch);
  EXPECT_GT(r.trips.total(), 0);
}

TEST(SanitizerSelfTest, WaitOnEmptySlotNamesContext) {
  const sim::SimConfig cfg = sanitizing_cfg();
  auto prog = ir::make_seq();
  ir::seq_push(prog, ir::make_dma_wait(ir::cst(5)));
  sim::CoreGroup cg(cfg);
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  try {
    interp.run(prog, {});
    FAIL() << "wait on empty slot did not trip";
  } catch (const SanitizerError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("empty reply slot 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("never issued"), std::string::npos) << msg;
  }
  EXPECT_EQ(cg.stats().sanitizer.reply_slot_trips, 1);
}

TEST(SanitizerSelfTest, CleanRunTripsNothing) {
  const sim::SimConfig cfg = sanitizing_cfg();
  ops::MatmulOp op(40, 33, 17);
  const auto tuned = tune::ModelTuner(cfg).tune(op);
  sim::CoreGroup cg(cfg);
  const auto bt = rt::bind_tensors(cg, op);
  op.fill_inputs(cg, bt, tuned.candidate.strategy);
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  interp.run(tuned.candidate.program, bt);
  EXPECT_LE(op.check_output(cg, bt, tuned.candidate.strategy), 2e-3);
  EXPECT_EQ(cg.stats().sanitizer.total(), 0);
}

// ---------------------------------------------------------------------------
// DmaEngine::cost period-multiplication fast path vs a brute-force
// per-block walk over random descriptors (including unaligned tails).

std::int64_t brute_force_transactions(const sim::DmaCpeDesc& d,
                                      const sim::SimConfig& cfg) {
  const std::int64_t txn =
      static_cast<std::int64_t>(cfg.dram_transaction_bytes);
  auto block_txns = [&](std::int64_t base, std::int64_t floats) {
    const std::int64_t lo = base * 4;
    const std::int64_t hi = (base + floats) * 4;
    return (hi + txn - 1) / txn - lo / txn;
  };
  std::int64_t total = 0;
  std::int64_t base = d.mem_base;
  std::int64_t left = d.total;
  while (left > 0) {
    const std::int64_t n = std::min(left, d.block);
    total += block_txns(base, n);
    base += d.block + d.stride;
    left -= n;
  }
  return total;
}

TEST(DmaCostRandomized, FastPathMatchesBruteForce) {
  sim::DmaEngine engine(base_cfg);
  std::mt19937_64 rng(12345);
  auto draw = [&](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };
  for (int i = 0; i < 2000; ++i) {
    sim::DmaCpeDesc d;
    d.mem_base = draw(0, 4096);
    d.block = draw(1, 96);
    d.stride = draw(0, 96);
    // Bias toward unaligned tails: ~half the draws are not block-multiples.
    d.total = draw(1, 12) * d.block + (i % 2 == 0 ? draw(0, d.block - 1) : 0);
    const sim::DmaCost c = engine.cost(d);
    EXPECT_EQ(c.transactions, brute_force_transactions(d, base_cfg))
        << "base=" << d.mem_base << " block=" << d.block
        << " stride=" << d.stride << " total=" << d.total;
    EXPECT_EQ(c.bytes_requested, d.total * 4);
    EXPECT_EQ(c.bytes_wasted,
              c.transactions *
                      static_cast<std::int64_t>(
                          base_cfg.dram_transaction_bytes) -
                  c.bytes_requested);
  }
}

// ---------------------------------------------------------------------------
// Fuzzer plumbing.

TEST(FuzzSpec, RoundTrips) {
  const auto spec = check::OpSpec::parse("matmul:72,40,24");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, "matmul");
  EXPECT_EQ(spec->to_string(), "matmul:72,40,24");
  EXPECT_NE(check::make_op(*spec), nullptr);
  EXPECT_FALSE(check::OpSpec::parse("matmul").has_value());
  EXPECT_FALSE(check::OpSpec::parse("matmul:1,x").has_value());
  // Applicability: implicit conv needs ni >= 32.
  EXPECT_EQ(check::make_op(
                *check::OpSpec::parse("implicit_conv:1,8,32,6,6,3,3,1")),
            nullptr);
}

TEST(FuzzSpec, FusedEpilogueTagRoundTrips) {
  const auto spec =
      check::OpSpec::parse("implicit_conv+bar,p1:1,32,32,6,6,3,3,1");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, "implicit_conv");
  EXPECT_TRUE(spec->epi.bias);
  EXPECT_TRUE(spec->epi.residual);
  EXPECT_TRUE(spec->epi.relu);
  EXPECT_EQ(spec->epi.out_pad, 1);
  EXPECT_EQ(spec->to_string(), "implicit_conv+bar,p1:1,32,32,6,6,3,3,1");
  EXPECT_NE(check::make_op(*spec), nullptr);
  // Pad-only and flags-only tags parse too.
  EXPECT_TRUE(check::OpSpec::parse("implicit_conv+p2:1,32,32,6,6,3,3,1"));
  EXPECT_TRUE(check::OpSpec::parse("implicit_conv+br:1,32,32,6,6,3,3,1"));
  // Malformed tags and fused non-implicit kinds are rejected.
  EXPECT_FALSE(check::OpSpec::parse("implicit_conv+x:1,32,32,6,6,3,3,1"));
  EXPECT_FALSE(check::OpSpec::parse("implicit_conv+rb:1,32,32,6,6,3,3,1"));
  EXPECT_FALSE(check::OpSpec::parse("implicit_conv+:1,32,32,6,6,3,3,1"));
  EXPECT_FALSE(check::OpSpec::parse("implicit_conv+bar,p0:1,32,32,6,6,3,3,1"));
  EXPECT_EQ(check::make_op(
                *check::OpSpec::parse("explicit_conv+b:1,32,32,6,6,3,3,1")),
            nullptr);
}

TEST(FuzzSmoke, FusedFixedSeedHasNoFailures) {
  // Epilogue candidates through the same sweep: sanitizers armed, every
  // fused store-path variant diffed against the fused host reference.
  check::FuzzOptions opts;
  opts.seed = 7;
  opts.cases = 30;
  opts.matmul = false;
  opts.fused = true;
  check::FuzzReport rep = check::fuzz_schedules(opts);
  EXPECT_GE(rep.cases_run, 30);
  for (const auto& f : rep.failures)
    ADD_FAILURE() << "[" << f.kind << "] " << f.detail << "\n  " << f.repro;
}

TEST(FuzzSmoke, FixedSeedHasNoFailures) {
  check::FuzzOptions opts;
  opts.seed = 11;
  opts.cases = 30;
  opts.max_dim = 48;
  check::FuzzReport rep = check::fuzz_schedules(opts);
  EXPECT_GE(rep.cases_run, 30);
  for (const auto& f : rep.failures)
    ADD_FAILURE() << "[" << f.kind << "] " << f.detail << "\n  " << f.repro;
}

TEST(FuzzReplay, KnownGoodPairPasses) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(32, 32, 8);
  const auto strat = tune::ModelTuner(cfg).tune(op).candidate.strategy;
  check::FuzzOptions opts;
  const auto rep =
      check::replay("matmul:32,32,8", strat.serialize(), opts);
  EXPECT_TRUE(rep.ok()) << (rep.failures.empty()
                                ? std::string()
                                : rep.failures.front().detail);
}

}  // namespace
}  // namespace swatop
