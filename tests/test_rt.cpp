#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ops/matmul.hpp"
#include "rt/bind.hpp"
#include "rt/dma_expand.hpp"
#include "rt/interpreter.hpp"
#include "tune/tuner.hpp"

namespace swatop::rt {
namespace {

sim::SimConfig cfg;

dsl::Strategy strat(std::int64_t tm, std::int64_t tn, std::int64_t tk,
                    const std::string& order = "mnk",
                    const std::string& variant = "0") {
  dsl::Strategy s;
  s.set_factor("Tm", tm);
  s.set_factor("Tn", tn);
  s.set_factor("Tk", tk);
  s.set_choice("order", order);
  s.set_choice("variant", variant);
  s.set_choice("boundary", "pad");
  return s;
}

TEST(DmaExpand, GeometryEvaluation) {
  ir::DmaAttrs d;
  d.view = {"A", ir::var("i"), 1, 100, ir::cst(40), ir::cst(16)};
  d.rows_p = ir::cst(64);
  d.cols_p = ir::cst(16);
  const DmaGeometry g = evaluate_dma(d, {{"i", 7}}, 1000, cfg);
  EXPECT_EQ(g.base, 1007);
  EXPECT_EQ(g.rows, 40);
  EXPECT_EQ(g.tr, 8);
  EXPECT_EQ(g.tc, 2);
}

TEST(DmaExpand, RejectsOversizedRegion) {
  ir::DmaAttrs d;
  d.view = {"A", ir::cst(0), 1, 100, ir::cst(80), ir::cst(16)};
  d.rows_p = ir::cst(64);
  d.cols_p = ir::cst(16);
  EXPECT_THROW(evaluate_dma(d, {}, 0, cfg), CheckError);
}

TEST(DmaExpand, PartialTilesClampPerCpe) {
  ir::DmaAttrs d;
  d.view = {"A", ir::cst(0), 1, 100, ir::cst(40), ir::cst(16)};
  d.rows_p = ir::cst(64);
  d.cols_p = ir::cst(16);
  const DmaGeometry g = evaluate_dma(d, {}, 0, cfg);
  const auto descs = expand_dma(d, g, 0, cfg);
  ASSERT_EQ(descs.size(), 64u);
  // Mesh row 0 holds rows [0, 8): full. Mesh row 5 holds rows [40, 48):
  // empty (only 40 valid rows).
  EXPECT_EQ(descs[0].total, 8 * 2);
  EXPECT_EQ(descs[5 * 8].total, 0);
}

TEST(DmaExpand, TransposedDistributionSwapsBlocks) {
  ir::DmaAttrs d;
  d.view = {"A", ir::cst(0), 1, 64, ir::cst(32), ir::cst(64)};
  d.rows_p = ir::cst(32);
  d.cols_p = ir::cst(64);
  d.rows_to_rid = false;
  std::int64_t br, bc;
  block_of(d, 2, 5, &br, &bc);
  EXPECT_EQ(br, 5);  // view rows follow the column id
  EXPECT_EQ(bc, 2);
}

TEST(Interpreter, FunctionalAndTimingAgreeOnCycles) {
  ops::MatmulOp op(64, 64, 32);
  const auto cand = tune::build_candidate(op, strat(32, 32, 16), cfg);

  sim::CoreGroup cg(cfg);
  const auto bt = bind_tensors(cg, op);
  op.fill_inputs(cg, bt, cand.strategy);
  Interpreter functional(cg, sim::ExecMode::Functional);
  const auto rf = functional.run(cand.program, bt);

  sim::CoreGroup cg2(cfg);
  cg2.mem().set_materialize(false);
  const auto bt2 = bind_tensors(cg2, op);
  Interpreter timing(cg2, sim::ExecMode::TimingOnly);
  const auto rt = timing.run(cand.program, bt2);

  EXPECT_NEAR(rf.cycles, rt.cycles, 1e-6);
  EXPECT_EQ(rf.stats.gemm_calls, rt.stats.gemm_calls);
  EXPECT_EQ(rf.stats.dma_transfers, rt.stats.dma_transfers);
}

TEST(Interpreter, DeterministicAcrossRuns) {
  ops::MatmulOp op(96, 64, 40);
  const auto cand = tune::build_candidate(op, strat(32, 32, 16), cfg);
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const auto bt = bind_tensors(cg, op);
  Interpreter interp(cg, sim::ExecMode::TimingOnly);
  const double t1 = interp.run(cand.program, bt).cycles;
  const double t2 = interp.run(cand.program, bt).cycles;
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Interpreter, PrefetchReducesCycles) {
  ops::MatmulOp op(128, 128, 128);
  const auto with = tune::build_candidate(op, strat(32, 32, 32), cfg, true);
  const auto without =
      tune::build_candidate(op, strat(32, 32, 32), cfg, false);
  const double t_with = tune::measure_candidate(op, with, cfg);
  const double t_without = tune::measure_candidate(op, without, cfg);
  EXPECT_LT(t_with, t_without);
}

TEST(Interpreter, StatsTrackDmaAndFlops) {
  ops::MatmulOp op(64, 64, 32);
  const auto cand = tune::build_candidate(op, strat(64, 64, 32), cfg);
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const auto bt = bind_tensors(cg, op);
  Interpreter interp(cg, sim::ExecMode::TimingOnly);
  const auto r = interp.run(cand.program, bt);
  EXPECT_EQ(r.stats.flops, 2 * 64 * 64 * 32);
  // A + B + C traffic at least once each.
  EXPECT_GE(r.stats.dma_transfers, 3);
  EXPECT_GE(r.stats.dma_bytes_requested, (64 * 32 + 32 * 64 + 64 * 64) * 4);
}

TEST(Interpreter, UnboundTensorThrows) {
  ops::MatmulOp op(64, 64, 32);
  const auto cand = tune::build_candidate(op, strat(64, 64, 32), cfg);
  sim::CoreGroup cg(cfg);
  Interpreter interp(cg, sim::ExecMode::TimingOnly);
  dsl::BoundTensors empty;
  EXPECT_THROW(interp.run(cand.program, empty), CheckError);
}

TEST(Interpreter, GflopsReporting) {
  RunResult r;
  r.cycles = 1000.0;
  // 1000 cycles at 1.45 GHz for 512000 flops = 742.4 GFLOPS.
  EXPECT_NEAR(r.gflops(512000, cfg), 742.4, 0.1);
}

TEST(BindTensors, AllocatesEveryTensor) {
  ops::MatmulOp op(64, 48, 32);
  sim::CoreGroup cg(cfg);
  const auto bt = bind_tensors(cg, op);
  EXPECT_EQ(bt.size(), 3u);
  EXPECT_TRUE(bt.count("A"));
  EXPECT_TRUE(bt.count("B"));
  EXPECT_TRUE(bt.count("C"));
  EXPECT_GE(cg.mem().size(), 64 * 32 + 32 * 48 + 64 * 48);
}

}  // namespace
}  // namespace swatop::rt

#include "ops/tensor.hpp"
#include "rt/expr_eval.hpp"

namespace swatop::rt {
namespace {

/// Random expression fuzz: the compiled evaluator must agree with the tree
/// walker on every expression shape it can encounter.
ir::Expr random_expr(ops::Prng& rng, int depth) {
  const auto pick = [&](int n) {
    return static_cast<int>((rng.next() + 1.0f) * 0.5f * n) % n;
  };
  if (depth == 0 || pick(4) == 0) {
    if (pick(2) == 0) return ir::cst(pick(100) - 50);
    return ir::var(std::string(1, static_cast<char>('a' + pick(4))));
  }
  const ir::Expr a = random_expr(rng, depth - 1);
  const ir::Expr b = random_expr(rng, depth - 1);
  switch (pick(9)) {
    case 0: return ir::add(a, b);
    case 1: return ir::sub(a, b);
    case 2: return ir::mul(a, b);
    case 3: return ir::min2(a, b);
    case 4: return ir::max2(a, b);
    case 5: return ir::lt(a, b);
    case 6: return ir::ge(a, b);
    case 7: return ir::select(a, b, random_expr(rng, depth - 1));
    default:
      // Keep divisors non-zero.
      return ir::floordiv(a, ir::add(ir::mul(b, b), ir::cst(1)));
  }
}

TEST(ExprEvaluator, FuzzAgainstTreeWalker) {
  ops::Prng rng(2024);
  ExprEvaluator ev;
  const int sa = ev.slot_of("a"), sb = ev.slot_of("b"),
            sc = ev.slot_of("c"), sd = ev.slot_of("d");
  for (int trial = 0; trial < 200; ++trial) {
    const ir::Expr e = random_expr(rng, 4);
    for (int vals = 0; vals < 5; ++vals) {
      const std::int64_t a = static_cast<std::int64_t>(rng.next() * 100);
      const std::int64_t b = static_cast<std::int64_t>(rng.next() * 100);
      const std::int64_t c = static_cast<std::int64_t>(rng.next() * 100);
      const std::int64_t d = static_cast<std::int64_t>(rng.next() * 100);
      ev.set(sa, a);
      ev.set(sb, b);
      ev.set(sc, c);
      ev.set(sd, d);
      const ir::Env env{{"a", a}, {"b", b}, {"c", c}, {"d", d}};
      EXPECT_EQ(ev.eval(e), ir::eval(e, env)) << ir::to_string(e);
    }
  }
}

TEST(ExprEvaluator, ReusesSlotsAcrossNames) {
  ExprEvaluator ev;
  EXPECT_EQ(ev.slot_of("x"), ev.slot_of("x"));
  EXPECT_NE(ev.slot_of("x"), ev.slot_of("y"));
}

}  // namespace
}  // namespace swatop::rt

namespace swatop::rt {
namespace {

TEST(InterpreterGuards, GemmWithoutInferenceThrows) {
  ops::MatmulOp op(64, 64, 32);
  dsl::Strategy s = strat(64, 64, 32);
  ir::StmtPtr raw = op.lower(s);  // no DMA inference: gemm unbound
  sim::CoreGroup cg(cfg);
  const auto bt = bind_tensors(cg, op);
  Interpreter interp(cg, sim::ExecMode::TimingOnly);
  EXPECT_THROW(interp.run(raw, bt), CheckError);
}

TEST(InterpreterGuards, DoubleWaitThrows) {
  auto prog = ir::make_seq({ir::make_dma_wait(ir::cst(0))});
  sim::CoreGroup cg(cfg);
  Interpreter interp(cg, sim::ExecMode::TimingOnly);
  dsl::BoundTensors bt;
  EXPECT_THROW(interp.run(prog, bt), CheckError);
}

TEST(InterpreterGuards, DanglingTransferDetected) {
  // A get with no wait must be flagged at program end.
  ir::DmaAttrs d;
  d.view = {"A", ir::cst(0), 1, 8, ir::cst(8), ir::cst(8)};
  d.rows_p = ir::cst(8);
  d.cols_p = ir::cst(8);
  d.spm_buf = "buf";
  d.spm_off = ir::cst(0);
  d.reply = ir::cst(0);
  auto prog = ir::make_seq(
      {ir::make_spm_alloc("buf", 16), ir::make_dma(ir::StmtKind::DmaGet, d)});
  sim::CoreGroup cg(cfg);
  cg.mem().alloc(64, "A");
  dsl::BoundTensors bt{{"A", 0}};
  Interpreter interp(cg, sim::ExecMode::TimingOnly);
  EXPECT_THROW(interp.run(prog, bt), CheckError);
}

}  // namespace
}  // namespace swatop::rt
