#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/check.hpp"
#include "isa/kernel_cache.hpp"
#include "isa/kernel_gen.hpp"
#include "isa/pipeline.hpp"

namespace swatop::isa {
namespace {

sim::SimConfig cfg;

TEST(Instr, PipeClassification) {
  EXPECT_EQ(pipe_of(Opcode::vmad), Pipe::P0);
  EXPECT_EQ(pipe_of(Opcode::vldd), Pipe::P1);
  EXPECT_EQ(pipe_of(Opcode::vlddr), Pipe::P1);
  EXPECT_EQ(pipe_of(Opcode::addi), Pipe::Either);
}

TEST(Instr, StoresDoNotTrackDestination) {
  EXPECT_FALSE(writes_register(Opcode::vstd));
  EXPECT_TRUE(writes_register(Opcode::vmad));
}

TEST(Instr, ToString) {
  Instr i{Opcode::vmad, 3, 1, 2, 3};
  EXPECT_EQ(i.to_string(), "vmad r3, r1, r2, r3");
}

TEST(Pipeline, IndependentOpsDualIssue) {
  // One P0 op and one P1 op with no dependencies issue in the same cycle.
  std::vector<Instr> code = {
      {Opcode::vmul, 10, 1, 2, -1},
      {Opcode::vldd, 11, -1, -1, -1},
  };
  PipelineSim sim(cfg);
  const auto r = sim.run(code);
  EXPECT_EQ(r.issued_p0, 1);
  EXPECT_EQ(r.issued_p1, 1);
  // Both issue at cycle 0; completion bounded by the slower latency.
  EXPECT_LE(r.cycles, std::max(latency_of(Opcode::vmul, cfg),
                               latency_of(Opcode::vldd, cfg)));
}

TEST(Pipeline, RawHazardStalls) {
  // Consumer must wait for the producer's latency.
  std::vector<Instr> code = {
      {Opcode::vldd, 5, -1, -1, -1},
      {Opcode::vmad, 6, 5, 5, 6},
  };
  PipelineSim sim(cfg);
  const auto r = sim.run(code);
  EXPECT_GE(r.cycles,
            latency_of(Opcode::vldd, cfg) + latency_of(Opcode::vmad, cfg));
  EXPECT_GT(r.stall_cycles, 0);
}

TEST(Pipeline, SamePipeSerializes) {
  std::vector<Instr> code = {
      {Opcode::vmul, 10, 1, 2, -1},
      {Opcode::vmul, 11, 3, 4, -1},
      {Opcode::vmul, 12, 5, 6, -1},
  };
  PipelineSim sim(cfg);
  const auto r = sim.run(code);
  // Three P0 ops need at least 3 issue cycles.
  EXPECT_GE(r.cycles, 3);
}

TEST(Pipeline, SteadyStateConverges) {
  // A self-contained body: its steady-state rate must be issue-bound.
  std::vector<Instr> body;
  for (int i = 0; i < 8; ++i) body.push_back({Opcode::vmul, 10 + i, 1, 2, -1});
  PipelineSim sim(cfg);
  const double per = sim.steady_state_cycles(body);
  EXPECT_NEAR(per, 8.0, 0.5);
}

TEST(KernelGen, SixteenVmadsInSixteenCycles) {
  // The paper's headline property: the favourable-layout 4x4 kernel
  // sustains 16 vmads per k-iteration in ~16 cycles.
  const KernelVariant v = KernelVariant::from_index(0);
  ASSERT_TRUE(v.vector_operand_contiguous());
  const auto body = emit_kernel_pair(v, RegBlock{4, 4}, cfg);
  PipelineSim sim(cfg);
  const double per_iter = sim.steady_state_cycles(body) / 2.0;
  EXPECT_NEAR(per_iter, 16.0, 1.0);
}

TEST(KernelGen, UnfavourableLayoutIsSlower) {
  // A row-major A under vec-M needs scalar lane assembly: more P1 traffic.
  const KernelVariant good = KernelVariant::from_index(0);
  const KernelVariant bad = KernelVariant::from_index(1);  // A row-major
  ASSERT_FALSE(bad.vector_operand_contiguous());
  PipelineSim sim(cfg);
  const double tg =
      sim.steady_state_cycles(emit_kernel_pair(good, {4, 4}, cfg));
  const double tb =
      sim.steady_state_cycles(emit_kernel_pair(bad, {4, 4}, cfg));
  EXPECT_GT(tb, tg * 1.2);
}

TEST(KernelGen, EightVariantsRoundTrip) {
  for (int i = 0; i < 8; ++i) {
    const KernelVariant v = KernelVariant::from_index(i);
    EXPECT_EQ(v.index(), i);
    EXPECT_FALSE(v.name().empty());
  }
  EXPECT_EQ(all_kernel_variants().size(), 8u);
}

TEST(KernelGen, PrologueEpilogueSizes) {
  EXPECT_EQ(emit_block_prologue({4, 4}).size(), 16u);
  EXPECT_EQ(emit_block_epilogue({4, 4}).size(), 16u);
  EXPECT_EQ(emit_block_prologue({2, 1}).size(), 2u);
}

TEST(KernelCostDb, SmallerBlocksLessEfficient) {
  const KernelCostDb db(cfg);
  const KernelVariant v = KernelVariant::from_index(0);
  // Per-MAC cost of a 1x1 block is worse than a 4x4 block (RAW on the
  // accumulator register cannot be hidden).
  const double c44 = db.per_iter_cycles(v, {4, 4}) / 16.0;
  const double c11 = db.per_iter_cycles(v, {1, 1}) / 1.0;
  EXPECT_GT(c11, 2.0 * c44);
}

TEST(KernelCostDb, LocalGemmScalesWithK) {
  const KernelCostDb db(cfg);
  const KernelVariant v = KernelVariant::from_index(0);
  const double t1 = db.local_gemm_cycles(v, 16, 16, 8);
  const double t2 = db.local_gemm_cycles(v, 16, 16, 16);
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 2.2 * t1);
}

TEST(KernelCostDb, LocalGemmHandlesRaggedScalarDim) {
  const KernelCostDb db(cfg);
  const KernelVariant v = KernelVariant::from_index(0);
  // n = 7 decomposes into 4 + 2 + 1 blocks; must cost more than n = 4 and
  // less than n = 12.
  const double t4 = db.local_gemm_cycles(v, 16, 4, 8);
  const double t7 = db.local_gemm_cycles(v, 16, 7, 8);
  const double t12 = db.local_gemm_cycles(v, 16, 12, 8);
  EXPECT_GT(t7, t4);
  EXPECT_LT(t7, t12);
}

TEST(KernelCostDb, VectorDimMustBeAligned) {
  const KernelCostDb db(cfg);
  const KernelVariant v = KernelVariant::from_index(0);  // vec-M
  EXPECT_THROW(db.local_gemm_cycles(v, 6, 4, 8), CheckError);
}

TEST(KernelCostDb, SpmGemmRequiresMeshDivisibility) {
  const KernelCostDb db(cfg);
  const KernelVariant v = KernelVariant::from_index(0);
  EXPECT_GT(db.spm_gemm_cycles(v, 64, 64, 32), 0.0);
  EXPECT_THROW(db.spm_gemm_cycles(v, 60, 64, 32), CheckError);
}

TEST(KernelCostDb, NearPeakThroughputOnBigTiles) {
  // A 256x256x256 spm_gemm at 16 cycles per 16 vmads on 64 CPEs should
  // approach peak: 2*M*N*K flops / cycles close to 512 flops/cycle.
  const KernelCostDb db(cfg);
  const KernelVariant v = KernelVariant::from_index(0);
  const double cycles = db.spm_gemm_cycles(v, 256, 256, 256);
  const double fpc = 2.0 * 256 * 256 * 256 / cycles;
  EXPECT_GT(fpc, 0.6 * cfg.peak_flops_per_cycle());
  EXPECT_LE(fpc, cfg.peak_flops_per_cycle() * 1.01);
}

TEST(KernelCostDbRegistry, ConcurrentFirstUseOfFreshKeys) {
  // Regression: kernel_cost_db() used to hold the global registry mutex
  // across the entire KernelCostDb construction, serializing every tuner
  // worker behind the first use of a new machine key. Hammer the registry
  // from many threads with two *fresh* keys (latencies no other test
  // uses): every thread must get the same database object per key, and
  // the build must not race (the ThreadSanitizer CI job checks this suite).
  sim::SimConfig fresh_a;
  fresh_a.vmad_latency = 6;
  fresh_a.vload_latency = 5;
  sim::SimConfig fresh_b;
  fresh_b.vmad_latency = 6;
  fresh_b.vload_latency = 6;

  constexpr int kThreads = 8;
  std::vector<const KernelCostDb*> got_a(kThreads, nullptr);
  std::vector<const KernelCostDb*> got_b(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Alternate which key each thread requests first so both
      // constructions really run concurrently with map churn.
      if (t % 2 == 0) {
        got_a[t] = &kernel_cost_db(fresh_a);
        got_b[t] = &kernel_cost_db(fresh_b);
      } else {
        got_b[t] = &kernel_cost_db(fresh_b);
        got_a[t] = &kernel_cost_db(fresh_a);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got_a[t], got_a[0]);
    EXPECT_EQ(got_b[t], got_b[0]);
  }
  EXPECT_NE(got_a[0], got_b[0]);
  // The databases are fully constructed and usable.
  const KernelVariant v = KernelVariant::from_index(0);
  EXPECT_GT(got_a[0]->per_iter_cycles(v, RegBlock{4, 4}), 0.0);
  EXPECT_GT(got_b[0]->per_iter_cycles(v, RegBlock{4, 4}), 0.0);
}

}  // namespace
}  // namespace swatop::isa
