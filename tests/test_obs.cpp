// Observability subsystem tests: counter determinism, the traced-DMA-bytes
// == priced-DMA-bytes contract (Eq. (1) accounting), trace-JSON
// well-formedness, and the disabled-by-default zero-profile behaviour.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "core/swatop.hpp"
#include "graph/build.hpp"
#include "graph/engine.hpp"
#include "graph/net_report.hpp"
#include "obs/attribution.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "tune/journal.hpp"
#include "tune/tuner.hpp"

namespace swatop {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON validator (objects, arrays, strings, numbers, literals) so
// the well-formedness check does not depend on an external parser.

class JsonValidator {
 public:
  explicit JsonValidator(std::string s) : s_(std::move(s)) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

/// A fixed, known matmul schedule (no tuner involved).
sched::Candidate fixed_matmul_candidate(const ops::MatmulOp& op,
                                        const sim::SimConfig& cfg) {
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  return tune::build_candidate(op, s, cfg);
}

/// Run one candidate on an observed core group and return the profile.
obs::Profile observed_run(const dsl::OperatorDef& op,
                          const sched::Candidate& cand,
                          const sim::SimConfig& cfg, sim::ExecMode mode,
                          rt::RunResult* out = nullptr) {
  obs::Options oo;
  oo.enabled = true;
  obs::Recorder rec(oo);
  sim::CoreGroup cg(cfg);
  cg.attach_observer(&rec);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  if (mode == sim::ExecMode::Functional)
    op.fill_inputs(cg, bt, cand.strategy);
  rt::Interpreter interp(cg, mode);
  const rt::RunResult r = interp.run(cand.program, bt);
  if (out) *out = r;
  return r.profile;
}

TEST(Obs, TraceBufferRingDropsOldest) {
  obs::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent ev;
    ev.name = "e" + std::to_string(i);
    buf.record(std::move(ev));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6);
  const auto evs = buf.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().name, "e6");  // oldest surviving
  EXPECT_EQ(evs.back().name, "e9");
}

TEST(Obs, DisabledByDefaultYieldsEmptyProfile) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(64, 64, 32);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  sim::CoreGroup cg(cfg);  // no recorder attached
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  const rt::RunResult r = interp.run(cand.program, bt);
  EXPECT_FALSE(r.profile.enabled);
  EXPECT_TRUE(r.profile.events.empty());
  EXPECT_EQ(r.profile.counters.dma.bytes_requested, 0);
  EXPECT_GT(r.cycles, 0.0);  // the run itself still happened
}

TEST(Obs, TracedDmaBytesEqualPricedBytes) {
  // The Eq. (1) cross-check: the aggregate DMA counters, the per-event
  // trace arguments and the run statistics must agree *exactly* -- they
  // are wired to the same booking sites, not re-derived.
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  rt::RunResult r;
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::TimingOnly, &r);
  ASSERT_TRUE(p.enabled);
  ASSERT_EQ(p.events_dropped, 0);

  std::int64_t ev_bytes = 0, ev_txn = 0, ev_wasted = 0;
  for (const obs::TraceEvent& ev : p.events) {
    if (ev.pid != 0 || ev.tid != obs::Track::kDmaEngine) continue;
    if (ev.name != "dma") continue;
    ev_bytes += ev.arg[0];
    ev_txn += ev.arg[1];
    ev_wasted += ev.arg[2];
  }
  EXPECT_GT(ev_bytes, 0);
  EXPECT_EQ(ev_bytes, p.counters.dma.bytes_requested);
  EXPECT_EQ(ev_txn, p.counters.dma.transactions);
  EXPECT_EQ(ev_wasted, p.counters.dma.bytes_wasted);
  EXPECT_EQ(p.counters.dma.bytes_requested, r.stats.dma_bytes_requested);
  EXPECT_EQ(p.counters.dma.bytes_wasted, r.stats.dma_bytes_wasted);
  EXPECT_EQ(p.counters.dma.transactions, r.stats.dma_transactions);
  EXPECT_EQ(p.counters.dma.transfers, r.stats.dma_transfers);
  EXPECT_DOUBLE_EQ(p.counters.total_cycles, r.cycles);
}

TEST(Obs, PerCpeDmaSumsToAggregate) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::TimingOnly);
  std::int64_t per_cpe = 0;
  for (const obs::CpeCounters& c : p.counters.per_cpe) per_cpe += c.dma_bytes;
  EXPECT_GT(per_cpe, 0);
  EXPECT_EQ(per_cpe, p.counters.dma.bytes_requested);
}

TEST(Obs, CountersAreDeterministic) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile a =
      observed_run(op, cand, cfg, sim::ExecMode::Functional);
  const obs::Profile b =
      observed_run(op, cand, cfg, sim::ExecMode::Functional);

  const obs::Counters& ca = a.counters;
  const obs::Counters& cb = b.counters;
  EXPECT_DOUBLE_EQ(ca.total_cycles, cb.total_cycles);
  EXPECT_DOUBLE_EQ(ca.compute_cycles, cb.compute_cycles);
  EXPECT_EQ(ca.flops, cb.flops);
  EXPECT_EQ(ca.gemm_calls, cb.gemm_calls);
  EXPECT_EQ(ca.dma.bytes_requested, cb.dma.bytes_requested);
  EXPECT_EQ(ca.dma.bytes_wasted, cb.dma.bytes_wasted);
  EXPECT_EQ(ca.dma.transactions, cb.dma.transactions);
  EXPECT_EQ(ca.dma.transfers, cb.dma.transfers);
  EXPECT_DOUBLE_EQ(ca.dma.queue_wait_cycles, cb.dma.queue_wait_cycles);
  EXPECT_DOUBLE_EQ(ca.dma.stall_cycles, cb.dma.stall_cycles);
  EXPECT_DOUBLE_EQ(ca.dma.busy_cycles, cb.dma.busy_cycles);
  EXPECT_DOUBLE_EQ(ca.pipe.issued_p0, cb.pipe.issued_p0);
  EXPECT_DOUBLE_EQ(ca.pipe.issued_p1, cb.pipe.issued_p1);
  EXPECT_DOUBLE_EQ(ca.pipe.raw_stall_cycles, cb.pipe.raw_stall_cycles);
  EXPECT_EQ(ca.reg_comm.row_messages, cb.reg_comm.row_messages);
  EXPECT_EQ(ca.reg_comm.col_messages, cb.reg_comm.col_messages);
  EXPECT_EQ(ca.spm_high_water_floats, cb.spm_high_water_floats);
  EXPECT_EQ(ca.spm_reads, cb.spm_reads);
  EXPECT_EQ(ca.spm_writes, cb.spm_writes);
  ASSERT_EQ(ca.per_cpe.size(), cb.per_cpe.size());
  for (std::size_t i = 0; i < ca.per_cpe.size(); ++i) {
    EXPECT_EQ(ca.per_cpe[i].dma_bytes, cb.per_cpe[i].dma_bytes) << i;
    EXPECT_EQ(ca.per_cpe[i].dma_transfers, cb.per_cpe[i].dma_transfers) << i;
  }
  // Same number of trace events, same simulated timestamps.
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].name, b.events[i].name) << i;
    EXPECT_DOUBLE_EQ(a.events[i].ts, b.events[i].ts) << i;
    EXPECT_DOUBLE_EQ(a.events[i].dur, b.events[i].dur) << i;
  }
}

TEST(Obs, FunctionalModeCountsRegCommAndSpmAccesses) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::Functional);
  // The distributed GEMM broadcasts panels over both buses.
  EXPECT_GT(p.counters.reg_comm.row_messages, 0);
  EXPECT_GT(p.counters.reg_comm.col_messages, 0);
  EXPECT_GT(p.counters.spm_reads, 0);
  EXPECT_GT(p.counters.spm_writes, 0);
  EXPECT_GT(p.counters.spm_high_water_floats, 0);
}

TEST(Obs, ChromeTraceIsWellFormedJson) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::TimingOnly);
  const std::string json = p.chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json.substr(0, 200);
}

TEST(Obs, TraceEscapesSpecialCharacters) {
  obs::TraceBuffer buf(4);
  obs::TraceEvent ev;
  ev.name = "weird \"name\"\\with\nnewline";
  ev.instant = true;
  buf.record(std::move(ev));
  std::ostringstream os;
  obs::write_chrome_trace(os, buf.snapshot());
  JsonValidator v(os.str());
  EXPECT_TRUE(v.valid()) << os.str();
}

TEST(Obs, DroppedEventsAreRecordedAsTraceMetadata) {
  obs::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent ev;
    ev.name = "e" + std::to_string(i);
    ev.instant = true;
    buf.record(std::move(ev));
  }
  ASSERT_EQ(buf.dropped(), 6);
  std::ostringstream os;
  obs::write_chrome_trace(os, buf.snapshot(), buf.dropped());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"trace_buffer_dropped_events\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":6"), std::string::npos);
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json.substr(0, 200);
  // A clean trace carries no dropped-event metadata.
  std::ostringstream clean;
  obs::write_chrome_trace(clean, buf.snapshot(), 0);
  EXPECT_EQ(clean.str().find("trace_buffer_dropped_events"),
            std::string::npos);
}

TEST(Obs, FlowEventsSerializeWithChromeFlowPhases) {
  obs::TraceBuffer buf(8);
  const char phases[3] = {'s', 't', 'f'};
  for (int i = 0; i < 3; ++i) {
    obs::TraceEvent ev;
    ev.name = "req";
    ev.cat = obs::Category::Serve;
    ev.pid = 2;
    ev.ts = 10.0 * (i + 1);
    ev.flow = phases[i];
    ev.flow_id = 42;
    buf.record(std::move(ev));
  }
  std::ostringstream os;
  obs::write_chrome_trace(os, buf.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  // Chrome's binding point: the flow end attaches to the enclosing slice.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json.substr(0, 200);
}

TEST(Obs, OneCallApiCarriesTuningHistory) {
  SwatopConfig cfg;
  cfg.observability.enabled = true;
  cfg.tune_top_k = 3;
  ops::MatmulOp op(128, 128, 64);
  auto [tuned, r] = optimize_and_run(cfg, op, sim::ExecMode::TimingOnly);
  ASSERT_TRUE(r.profile.enabled);
  EXPECT_EQ(r.profile.tune.candidates_measured, 3);
  EXPECT_GT(r.profile.tune.candidates_ranked, 0);
  EXPECT_GT(r.profile.tune.space_size, 0);
  ASSERT_EQ(r.profile.tune_samples.size(), 3u);
  for (const obs::TuneSample& s : r.profile.tune_samples) {
    EXPECT_GT(s.predicted_cycles, 0.0);
    EXPECT_GT(s.measured_cycles, 0.0);
    EXPECT_FALSE(s.strategy.empty());
  }
  // The execution winner is the measured-best shortlist entry.
  EXPECT_GT(tuned.measured_cycles, 0.0);
  EXPECT_GT(tuned.predicted_cycles, 0.0);
  // Tuner (pid 1) and execution (pid 0) events coexist in one trace.
  bool saw_tune = false, saw_run = false;
  for (const obs::TraceEvent& ev : r.profile.events) {
    saw_tune |= ev.pid == 1;
    saw_run |= ev.pid == 0;
  }
  EXPECT_TRUE(saw_tune);
  EXPECT_TRUE(saw_run);
}

TEST(Obs, ReportMentionsDmaShare) {
  SwatopConfig cfg;
  cfg.observability.enabled = true;
  ops::MatmulOp op(128, 128, 64);
  auto [tuned, r] = optimize_and_run(cfg, op, sim::ExecMode::TimingOnly);
  (void)tuned;
  const std::string rep = r.profile.report();
  EXPECT_NE(rep.find("DMA"), std::string::npos);
  EXPECT_NE(rep.find("wasted"), std::string::npos);
  EXPECT_NE(rep.find("cycles"), std::string::npos);
}

TEST(Obs, RepeatedExecuteResetsExecutionCounters) {
  SwatopConfig cfg;
  cfg.observability.enabled = true;
  ops::MatmulOp op(128, 128, 64);
  Optimizer optimizer(cfg);
  OptimizedOperator tuned = optimizer.optimize(op);
  const rt::RunResult r1 = tuned.execute(sim::ExecMode::TimingOnly);
  const rt::RunResult r2 = tuned.execute(sim::ExecMode::TimingOnly);
  // Counters describe one execution, not the accumulation of both.
  EXPECT_EQ(r1.profile.counters.dma.bytes_requested,
            r2.profile.counters.dma.bytes_requested);
  EXPECT_DOUBLE_EQ(r1.profile.counters.total_cycles,
                   r2.profile.counters.total_cycles);
  // The trace accumulates across runs (one timeline).
  EXPECT_GE(r2.profile.events.size(), r1.profile.events.size());
}

// ---------------------------------------------------------------------------
// Cycle attribution

TEST(Attribution, SyntheticDecompositionIsExact) {
  obs::AttributionInput in;
  in.elapsed = 100.0;
  in.groups = 1;
  in.group_cycles = 100.0;
  in.compute_cycles = 60.0;
  in.dma_stall_cycles = 40.0;
  in.dma_queue_wait_cycles = 15.0;
  in.gemm_cycles = 50.0;
  in.gemm_comm_cycles = 5.0;
  in.raw_stall_cycles = 10.0;
  const obs::Attribution a = obs::attribute(in);
  EXPECT_TRUE(a.balanced());
  EXPECT_DOUBLE_EQ(a.basis, 100.0);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::DmaQueueWait), 15.0);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::DmaWait), 25.0);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::RegComm), 5.0);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::KernelRawStall), 10.0);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::KernelIssue), 35.0);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::OtherCompute), 10.0);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::Residual), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(), a.basis);
}

TEST(Attribution, UnexplainedCyclesLandInResidual) {
  obs::AttributionInput in;
  in.elapsed = 100.0;
  in.groups = 1;
  in.group_cycles = 100.0;
  in.compute_cycles = 30.0;  // counters only explain 70 of 100
  in.dma_stall_cycles = 40.0;
  const obs::Attribution a = obs::attribute(in);
  EXPECT_TRUE(a.balanced());
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::Residual), 30.0);
  EXPECT_DOUBLE_EQ(a.sum(), a.basis);
}

TEST(Attribution, DoubleBufferedConvTracedBytesAndExactSum) {
  // The ISSUE's invariant audit, on a real double-buffered convolution:
  // traced DMA bytes equal priced DMA bytes, and the attribution categories
  // sum exactly to the elapsed cycles (residual 0 for a single-CG run whose
  // clock only ever advances through compute and DMA stalls).
  const sim::SimConfig cfg;
  ops::ConvShape s;
  s.batch = 2;
  s.ni = 64;
  s.no = 64;
  s.ri = 18;
  s.ci = 18;
  const ops::ImplicitConvOp op(s);
  const tune::ModelTuner tuner(cfg);
  const tune::Tuned t = tuner.tune(op);  // default options: prefetch on
  ASSERT_TRUE(t.candidate.prefetch);     // the schedule is double-buffered

  rt::RunResult r;
  const obs::Profile p =
      observed_run(op, t.candidate, cfg, sim::ExecMode::TimingOnly, &r);
  ASSERT_TRUE(p.enabled);
  ASSERT_EQ(p.events_dropped, 0);

  // Traced == priced, also under double buffering.
  std::int64_t ev_bytes = 0, ev_wasted = 0;
  for (const obs::TraceEvent& ev : p.events) {
    if (ev.pid != 0 || ev.tid != obs::Track::kDmaEngine) continue;
    if (ev.name != "dma") continue;
    ev_bytes += ev.arg[0];
    ev_wasted += ev.arg[2];
  }
  EXPECT_GT(ev_bytes, 0);
  EXPECT_EQ(ev_bytes, p.counters.dma.bytes_requested);
  EXPECT_EQ(ev_wasted, p.counters.dma.bytes_wasted);
  EXPECT_EQ(p.counters.dma.bytes_requested, r.stats.dma_bytes_requested);

  // Exact-sum attribution with zero residual.
  const obs::Attribution a = obs::attribute(p.counters);
  EXPECT_TRUE(a.balanced());
  EXPECT_DOUBLE_EQ(a.basis, r.cycles);
  EXPECT_DOUBLE_EQ(a.sum(), r.cycles);
  EXPECT_DOUBLE_EQ(a.at(obs::AttrCat::Residual), 0.0);
  // A double-buffered conv does real kernel work and overlaps some DMA.
  EXPECT_GT(a.at(obs::AttrCat::KernelIssue), 0.0);
}

// ---------------------------------------------------------------------------
// Roofline

TEST(Roofline, RidgeSeparatesBindingResource) {
  obs::RooflineMachine m;
  m.peak_flops_per_cycle = 32.0;
  m.dma_bytes_per_cycle = 2.0;
  EXPECT_DOUBLE_EQ(m.ridge(), 16.0);

  // Below the ridge: memory roof binds.
  const obs::RooflinePoint lo =
      obs::roofline_place("lo", /*flops=*/800, /*dram_bytes=*/100,
                          /*cycles=*/100.0, m);
  EXPECT_DOUBLE_EQ(lo.intensity, 8.0);
  EXPECT_FALSE(lo.compute_bound);
  EXPECT_STREQ(lo.binding(), "dma-bandwidth");
  EXPECT_DOUBLE_EQ(lo.roof, 16.0);  // 8 flop/B * 2 B/cy
  EXPECT_DOUBLE_EQ(lo.achieved, 8.0);
  EXPECT_DOUBLE_EQ(lo.utilization, 0.5);

  // Above the ridge: compute roof binds.
  const obs::RooflinePoint hi =
      obs::roofline_place("hi", /*flops=*/6400, /*dram_bytes=*/100,
                          /*cycles=*/400.0, m);
  EXPECT_DOUBLE_EQ(hi.intensity, 64.0);
  EXPECT_TRUE(hi.compute_bound);
  EXPECT_STREQ(hi.binding(), "compute");
  EXPECT_DOUBLE_EQ(hi.roof, 32.0);
  EXPECT_DOUBLE_EQ(hi.utilization, 0.5);
}

TEST(Roofline, ZeroByteSpanIsComputeBound) {
  obs::RooflineMachine m;
  m.peak_flops_per_cycle = 32.0;
  m.dma_bytes_per_cycle = 2.0;
  const obs::RooflinePoint p =
      obs::roofline_place("spm-only", 3200, 0, 100.0, m);
  EXPECT_TRUE(p.compute_bound);
  EXPECT_DOUBLE_EQ(p.roof, 32.0);
  EXPECT_DOUBLE_EQ(p.utilization, 1.0);
}

TEST(Roofline, CountersPlacementUsesTransactionBytes) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::TimingOnly);
  const obs::RooflineMachine m{cfg.peak_flops_per_cycle(),
                               cfg.dma_bytes_per_cycle()};
  const obs::RooflinePoint pt = obs::roofline_place("mm", p.counters, m);
  EXPECT_EQ(pt.dram_bytes,
            p.counters.dma.bytes_requested + p.counters.dma.bytes_wasted);
  EXPECT_EQ(pt.flops, p.counters.flops);
  EXPECT_GT(pt.utilization, 0.0);
  EXPECT_LE(pt.utilization, 1.0 + 1e-9);
  const std::string rep = obs::roofline_report({pt}, m);
  EXPECT_NE(rep.find("bound"), std::string::npos);
  JsonValidator v(obs::roofline_json({pt}, m));
  EXPECT_TRUE(v.valid());
}

// ---------------------------------------------------------------------------
// Tuning journal

TEST(Journal, ModelErrorAndRegretStatistics) {
  tune::Journal j;
  // Three measured entries (in journal order) + one pruned (excluded).
  j.append({"op", "model", "s0", 0, 2, 120.0, 100.0, false});
  j.append({"op", "model", "s1", 1, 0, 80.0, 90.0, false});
  j.append({"op", "model", "s2", 2, 1, 95.0, 95.0, true});
  j.append({"op", "model", "s3", 3, 3, 200.0, -1.0, false});  // pruned

  const tune::ModelErrorStats st = tune::model_error_stats(j.entries());
  EXPECT_EQ(st.samples, 3);
  // |120-100|/100 = .2, |80-90|/90 = .111..., |95-95|/95 = 0.
  EXPECT_NEAR(st.mean_rel_err, (0.2 + 1.0 / 9.0) / 3.0, 1e-12);
  EXPECT_NEAR(st.max_rel_err, 0.2, 1e-12);
  // Predicted order (80, 95, 120) matches measured order (90, 95, 100).
  EXPECT_NEAR(st.rank_corr, 1.0, 1e-12);

  const std::vector<double> regret = tune::regret_curve(j.entries());
  ASSERT_EQ(regret.size(), 3u);
  EXPECT_NEAR(regret[0], 100.0 / 90.0 - 1.0, 1e-12);  // best-so-far 100
  EXPECT_NEAR(regret[1], 0.0, 1e-12);                 // found the winner
  EXPECT_NEAR(regret[2], 0.0, 1e-12);

  const std::string sum = tune::journal_summary(j);
  EXPECT_NE(sum.find("model"), std::string::npos);
  JsonValidator v(tune::journal_summary_json(j));
  EXPECT_TRUE(v.valid());
}

TEST(Journal, RankCorrelationAllTies) {
  // Every prediction identical: frac_ranks assigns all entries the same
  // average rank, rank variance is zero, and the Spearman coefficient must
  // come out a defined 0.0 -- not NaN from a 0/0.
  tune::Journal j;
  j.append({"op", "model", "s0", 0, 0, 50.0, 100.0, false});
  j.append({"op", "model", "s1", 1, 1, 50.0, 90.0, false});
  j.append({"op", "model", "s2", 2, 2, 50.0, 95.0, true});
  const tune::ModelErrorStats st = tune::model_error_stats(j.entries());
  EXPECT_EQ(st.samples, 3);
  EXPECT_DOUBLE_EQ(st.rank_corr, 0.0);
  EXPECT_TRUE(std::isfinite(st.mean_rel_err));
}

TEST(Journal, RankCorrelationPartialTies) {
  // Tied predictions share the average of the ranks they span (the
  // standard Spearman tie treatment); with measured values ordered the
  // same way the coefficient is positive but below 1.
  tune::Journal j;
  j.append({"op", "model", "s0", 0, 0, 50.0, 10.0, false});
  j.append({"op", "model", "s1", 1, 1, 50.0, 20.0, false});
  j.append({"op", "model", "s2", 2, 2, 80.0, 30.0, false});
  j.append({"op", "model", "s3", 3, 3, 90.0, 40.0, true});
  const tune::ModelErrorStats st = tune::model_error_stats(j.entries());
  EXPECT_EQ(st.samples, 4);
  // Predicted ranks (avg on ties): 0.5, 0.5, 2, 3; measured: 0, 1, 2, 3.
  // Pearson over those rank vectors = 4.5 / sqrt(4.5 * 5) = sqrt(0.9).
  EXPECT_NEAR(st.rank_corr, std::sqrt(0.9), 1e-12);
  EXPECT_GT(st.rank_corr, 0.9);
  EXPECT_LT(st.rank_corr, 1.0);
}

TEST(Journal, NonFiniteSamplesAreExcluded) {
  // NaN passes `predicted < 0` / `measured <= 0` (every NaN comparison is
  // false); the stats must filter on finiteness or one poisoned entry
  // turns the means and the regret curve into NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  tune::Journal j;
  j.append({"op", "model", "s0", 0, 0, 100.0, 110.0, false});
  j.append({"op", "model", "s1", 1, 1, nan, 90.0, false});
  j.append({"op", "model", "s2", 2, 2, 95.0, nan, false});
  j.append({"op", "model", "s3", 3, 3, inf, 95.0, false});
  j.append({"op", "model", "s4", 4, 4, 120.0, 130.0, true});
  const tune::ModelErrorStats st = tune::model_error_stats(j.entries());
  EXPECT_EQ(st.samples, 2);
  EXPECT_TRUE(std::isfinite(st.mean_rel_err));
  EXPECT_TRUE(std::isfinite(st.rank_corr));
  // regret_curve filters on `measured` only: the NaN measurement drops,
  // the Inf-*predicted* (but finitely measured) entry stays.
  const std::vector<double> regret = tune::regret_curve(j.entries());
  ASSERT_EQ(regret.size(), 4u);
  for (double r : regret) EXPECT_TRUE(std::isfinite(r));
}

TEST(Journal, JsonlSerializesUnevaluatedAsNull) {
  tune::Journal j;
  j.append({"op \"x\"", "blackbox", "s", 0, 0, -1.0, 42.0, true});
  const std::string line = tune::journal_entry_json(j.entries()[0]);
  EXPECT_NE(line.find("\"predicted\": null"), std::string::npos);
  EXPECT_NE(line.find("42"), std::string::npos);
  JsonValidator v(line);
  EXPECT_TRUE(v.valid()) << line;
  // Every JSONL line of a real tuning run is valid JSON too.
  const sim::SimConfig cfg;
  ops::MatmulOp op(64, 64, 32);
  tune::Journal real;
  const tune::ModelTuner tuner(cfg);
  (void)tuner.tune(op, {}, nullptr, &real);
  ASSERT_GT(real.size(), 0u);
  std::istringstream lines(real.to_jsonl());
  std::string l;
  while (std::getline(lines, l)) {
    JsonValidator lv(l);
    EXPECT_TRUE(lv.valid()) << l;
  }
}

TEST(Journal, IdenticalAcrossRunsAndThreadCounts) {
  // The determinism contract: a tuning journal is byte-identical run to
  // run, including when the tuner's ranking fans out to worker threads.
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const tune::ModelTuner tuner(cfg);

  const auto journal_of = [&](int threads) {
    sched::SchedulerOptions opts;
    opts.num_threads = threads;
    tune::Journal j;
    (void)tuner.tune(op, opts, nullptr, &j);
    return j.to_jsonl();
  };
  const std::string serial_a = journal_of(1);
  const std::string serial_b = journal_of(1);
  const std::string parallel = journal_of(4);
  EXPECT_EQ(serial_a, serial_b);
  EXPECT_EQ(serial_a, parallel);
  EXPECT_FALSE(serial_a.empty());
}

TEST(Journal, OptimizerCacheHitIsJournaled) {
  SwatopConfig cfg;
  cfg.cache.enabled = true;  // in-memory (no path)
  tune::Journal j;
  cfg.journal = &j;
  Optimizer optimizer(cfg);
  ops::MatmulOp op(128, 128, 64);
  (void)optimizer.optimize(op);
  const std::size_t first = j.size();
  ASSERT_GT(first, 0u);
  (void)optimizer.optimize(op);  // in-memory cache hit
  ASSERT_GT(j.size(), first);
  const tune::JournalEntry& hit = j.entries().back();
  EXPECT_EQ(hit.phase, "cache");
  EXPECT_TRUE(hit.chosen);
}

TEST(Obs, ProfileTextIsDeterministic) {
  SwatopConfig cfg;
  cfg.observability.enabled = true;
  ops::MatmulOp op(128, 128, 64);
  // Every simulated quantity in the report is byte-identical run to run;
  // the single host-time line ("wall clock") is the only exception and is
  // stripped before comparing.
  const auto report_of = [&]() {
    auto [tuned, r] = optimize_and_run(cfg, op, sim::ExecMode::TimingOnly);
    (void)tuned;
    std::istringstream in(r.profile.report());
    std::string out, line;
    while (std::getline(in, line))
      if (line.find("wall clock") == std::string::npos) out += line + "\n";
    return out;
  };
  const std::string a = report_of();
  const std::string b = report_of();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// ---------------------------------------------------------------------------
// Whole-network attribution (graph engine)

TEST(NetAttribution, Vgg16PerLayerAttributionsSumToNetBasis) {
  const graph::Graph g = graph::build_net("vgg16");
  SwatopConfig cfg;
  graph::GraphEngine engine(cfg);
  graph::NetOptions opts;
  opts.groups = 2;
  opts.mode = sim::ExecMode::TimingOnly;
  opts.check = false;
  const graph::NetRunResult r = engine.run(g, /*batch=*/2, opts);
  ASSERT_FALSE(r.layers.empty());

  // NetOptions defaults leave fusion and residency ON, so this run prices
  // fused epilogues and elided DMA -- the attribution identities below must
  // survive both (elided transfers are invisible to the DMA observability,
  // keeping traced bytes equal to priced bytes).
  EXPECT_GT(r.fusion.convs_fused, 0);
  EXPECT_GT(r.dma_bytes_elided, 0);

  // Every layer's decomposition is exact over its own basis, and the layer
  // bases tile the network basis exactly (the per-step maxima sum to the
  // end-to-end cycle count).
  double layer_basis_sum = 0.0, layer_cycles_sum = 0.0;
  for (const graph::LayerReport& lr : r.layers) {
    const obs::Attribution a = graph::layer_attribution(lr);
    EXPECT_TRUE(a.balanced()) << lr.name;
    EXPECT_DOUBLE_EQ(a.sum(), a.basis) << lr.name;
    EXPECT_DOUBLE_EQ(a.basis, lr.cycles * lr.groups) << lr.name;
    layer_basis_sum += a.basis;
    layer_cycles_sum += lr.cycles;
  }
  EXPECT_DOUBLE_EQ(layer_cycles_sum, r.cycles);
  EXPECT_DOUBLE_EQ(layer_basis_sum, r.cycles * r.groups_used);

  // The whole-network decomposition is exact over the same basis.
  const obs::Attribution net = graph::net_attribution(r);
  EXPECT_TRUE(net.balanced());
  EXPECT_DOUBLE_EQ(net.basis, r.cycles * r.groups_used);
  EXPECT_DOUBLE_EQ(net.sum(), net.basis);
  // Multi-CG runs pay real NoC barriers.
  EXPECT_GT(net.at(obs::AttrCat::Barrier), 0.0);

  // The rendered reports carry the tables and are well-formed.
  const std::string text = graph::net_report(r, cfg.machine);
  EXPECT_NE(text.find("attribution"), std::string::npos);
  EXPECT_NE(text.find("roofline"), std::string::npos);
  JsonValidator v(graph::net_report_json(r, cfg.machine));
  EXPECT_TRUE(v.valid());
}

}  // namespace
}  // namespace swatop
