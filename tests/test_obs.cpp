// Observability subsystem tests: counter determinism, the traced-DMA-bytes
// == priced-DMA-bytes contract (Eq. (1) accounting), trace-JSON
// well-formedness, and the disabled-by-default zero-profile behaviour.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/swatop.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "ops/matmul.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "tune/tuner.hpp"

namespace swatop {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON validator (objects, arrays, strings, numbers, literals) so
// the well-formedness check does not depend on an external parser.

class JsonValidator {
 public:
  explicit JsonValidator(std::string s) : s_(std::move(s)) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

/// A fixed, known matmul schedule (no tuner involved).
sched::Candidate fixed_matmul_candidate(const ops::MatmulOp& op,
                                        const sim::SimConfig& cfg) {
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  return tune::build_candidate(op, s, cfg);
}

/// Run one candidate on an observed core group and return the profile.
obs::Profile observed_run(const dsl::OperatorDef& op,
                          const sched::Candidate& cand,
                          const sim::SimConfig& cfg, sim::ExecMode mode,
                          rt::RunResult* out = nullptr) {
  obs::Options oo;
  oo.enabled = true;
  obs::Recorder rec(oo);
  sim::CoreGroup cg(cfg);
  cg.attach_observer(&rec);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  if (mode == sim::ExecMode::Functional)
    op.fill_inputs(cg, bt, cand.strategy);
  rt::Interpreter interp(cg, mode);
  const rt::RunResult r = interp.run(cand.program, bt);
  if (out) *out = r;
  return r.profile;
}

TEST(Obs, TraceBufferRingDropsOldest) {
  obs::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent ev;
    ev.name = "e" + std::to_string(i);
    buf.record(std::move(ev));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6);
  const auto evs = buf.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().name, "e6");  // oldest surviving
  EXPECT_EQ(evs.back().name, "e9");
}

TEST(Obs, DisabledByDefaultYieldsEmptyProfile) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(64, 64, 32);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  sim::CoreGroup cg(cfg);  // no recorder attached
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  const rt::RunResult r = interp.run(cand.program, bt);
  EXPECT_FALSE(r.profile.enabled);
  EXPECT_TRUE(r.profile.events.empty());
  EXPECT_EQ(r.profile.counters.dma.bytes_requested, 0);
  EXPECT_GT(r.cycles, 0.0);  // the run itself still happened
}

TEST(Obs, TracedDmaBytesEqualPricedBytes) {
  // The Eq. (1) cross-check: the aggregate DMA counters, the per-event
  // trace arguments and the run statistics must agree *exactly* -- they
  // are wired to the same booking sites, not re-derived.
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  rt::RunResult r;
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::TimingOnly, &r);
  ASSERT_TRUE(p.enabled);
  ASSERT_EQ(p.events_dropped, 0);

  std::int64_t ev_bytes = 0, ev_txn = 0, ev_wasted = 0;
  for (const obs::TraceEvent& ev : p.events) {
    if (ev.pid != 0 || ev.tid != obs::Track::kDmaEngine) continue;
    if (ev.name != "dma") continue;
    ev_bytes += ev.arg[0];
    ev_txn += ev.arg[1];
    ev_wasted += ev.arg[2];
  }
  EXPECT_GT(ev_bytes, 0);
  EXPECT_EQ(ev_bytes, p.counters.dma.bytes_requested);
  EXPECT_EQ(ev_txn, p.counters.dma.transactions);
  EXPECT_EQ(ev_wasted, p.counters.dma.bytes_wasted);
  EXPECT_EQ(p.counters.dma.bytes_requested, r.stats.dma_bytes_requested);
  EXPECT_EQ(p.counters.dma.bytes_wasted, r.stats.dma_bytes_wasted);
  EXPECT_EQ(p.counters.dma.transactions, r.stats.dma_transactions);
  EXPECT_EQ(p.counters.dma.transfers, r.stats.dma_transfers);
  EXPECT_DOUBLE_EQ(p.counters.total_cycles, r.cycles);
}

TEST(Obs, PerCpeDmaSumsToAggregate) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::TimingOnly);
  std::int64_t per_cpe = 0;
  for (const obs::CpeCounters& c : p.counters.per_cpe) per_cpe += c.dma_bytes;
  EXPECT_GT(per_cpe, 0);
  EXPECT_EQ(per_cpe, p.counters.dma.bytes_requested);
}

TEST(Obs, CountersAreDeterministic) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile a =
      observed_run(op, cand, cfg, sim::ExecMode::Functional);
  const obs::Profile b =
      observed_run(op, cand, cfg, sim::ExecMode::Functional);

  const obs::Counters& ca = a.counters;
  const obs::Counters& cb = b.counters;
  EXPECT_DOUBLE_EQ(ca.total_cycles, cb.total_cycles);
  EXPECT_DOUBLE_EQ(ca.compute_cycles, cb.compute_cycles);
  EXPECT_EQ(ca.flops, cb.flops);
  EXPECT_EQ(ca.gemm_calls, cb.gemm_calls);
  EXPECT_EQ(ca.dma.bytes_requested, cb.dma.bytes_requested);
  EXPECT_EQ(ca.dma.bytes_wasted, cb.dma.bytes_wasted);
  EXPECT_EQ(ca.dma.transactions, cb.dma.transactions);
  EXPECT_EQ(ca.dma.transfers, cb.dma.transfers);
  EXPECT_DOUBLE_EQ(ca.dma.queue_wait_cycles, cb.dma.queue_wait_cycles);
  EXPECT_DOUBLE_EQ(ca.dma.stall_cycles, cb.dma.stall_cycles);
  EXPECT_DOUBLE_EQ(ca.dma.busy_cycles, cb.dma.busy_cycles);
  EXPECT_DOUBLE_EQ(ca.pipe.issued_p0, cb.pipe.issued_p0);
  EXPECT_DOUBLE_EQ(ca.pipe.issued_p1, cb.pipe.issued_p1);
  EXPECT_DOUBLE_EQ(ca.pipe.raw_stall_cycles, cb.pipe.raw_stall_cycles);
  EXPECT_EQ(ca.reg_comm.row_messages, cb.reg_comm.row_messages);
  EXPECT_EQ(ca.reg_comm.col_messages, cb.reg_comm.col_messages);
  EXPECT_EQ(ca.spm_high_water_floats, cb.spm_high_water_floats);
  EXPECT_EQ(ca.spm_reads, cb.spm_reads);
  EXPECT_EQ(ca.spm_writes, cb.spm_writes);
  ASSERT_EQ(ca.per_cpe.size(), cb.per_cpe.size());
  for (std::size_t i = 0; i < ca.per_cpe.size(); ++i) {
    EXPECT_EQ(ca.per_cpe[i].dma_bytes, cb.per_cpe[i].dma_bytes) << i;
    EXPECT_EQ(ca.per_cpe[i].dma_transfers, cb.per_cpe[i].dma_transfers) << i;
  }
  // Same number of trace events, same simulated timestamps.
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].name, b.events[i].name) << i;
    EXPECT_DOUBLE_EQ(a.events[i].ts, b.events[i].ts) << i;
    EXPECT_DOUBLE_EQ(a.events[i].dur, b.events[i].dur) << i;
  }
}

TEST(Obs, FunctionalModeCountsRegCommAndSpmAccesses) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::Functional);
  // The distributed GEMM broadcasts panels over both buses.
  EXPECT_GT(p.counters.reg_comm.row_messages, 0);
  EXPECT_GT(p.counters.reg_comm.col_messages, 0);
  EXPECT_GT(p.counters.spm_reads, 0);
  EXPECT_GT(p.counters.spm_writes, 0);
  EXPECT_GT(p.counters.spm_high_water_floats, 0);
}

TEST(Obs, ChromeTraceIsWellFormedJson) {
  const sim::SimConfig cfg;
  ops::MatmulOp op(128, 128, 64);
  const sched::Candidate cand = fixed_matmul_candidate(op, cfg);
  const obs::Profile p =
      observed_run(op, cand, cfg, sim::ExecMode::TimingOnly);
  const std::string json = p.chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json.substr(0, 200);
}

TEST(Obs, TraceEscapesSpecialCharacters) {
  obs::TraceBuffer buf(4);
  obs::TraceEvent ev;
  ev.name = "weird \"name\"\\with\nnewline";
  ev.instant = true;
  buf.record(std::move(ev));
  std::ostringstream os;
  obs::write_chrome_trace(os, buf.snapshot());
  JsonValidator v(os.str());
  EXPECT_TRUE(v.valid()) << os.str();
}

TEST(Obs, OneCallApiCarriesTuningHistory) {
  SwatopConfig cfg;
  cfg.observability.enabled = true;
  cfg.tune_top_k = 3;
  ops::MatmulOp op(128, 128, 64);
  auto [tuned, r] = optimize_and_run(cfg, op, sim::ExecMode::TimingOnly);
  ASSERT_TRUE(r.profile.enabled);
  EXPECT_EQ(r.profile.tune.candidates_measured, 3);
  EXPECT_GT(r.profile.tune.candidates_ranked, 0);
  EXPECT_GT(r.profile.tune.space_size, 0);
  ASSERT_EQ(r.profile.tune_samples.size(), 3u);
  for (const obs::TuneSample& s : r.profile.tune_samples) {
    EXPECT_GT(s.predicted_cycles, 0.0);
    EXPECT_GT(s.measured_cycles, 0.0);
    EXPECT_FALSE(s.strategy.empty());
  }
  // The execution winner is the measured-best shortlist entry.
  EXPECT_GT(tuned.measured_cycles, 0.0);
  EXPECT_GT(tuned.predicted_cycles, 0.0);
  // Tuner (pid 1) and execution (pid 0) events coexist in one trace.
  bool saw_tune = false, saw_run = false;
  for (const obs::TraceEvent& ev : r.profile.events) {
    saw_tune |= ev.pid == 1;
    saw_run |= ev.pid == 0;
  }
  EXPECT_TRUE(saw_tune);
  EXPECT_TRUE(saw_run);
}

TEST(Obs, ReportMentionsDmaShare) {
  SwatopConfig cfg;
  cfg.observability.enabled = true;
  ops::MatmulOp op(128, 128, 64);
  auto [tuned, r] = optimize_and_run(cfg, op, sim::ExecMode::TimingOnly);
  (void)tuned;
  const std::string rep = r.profile.report();
  EXPECT_NE(rep.find("DMA"), std::string::npos);
  EXPECT_NE(rep.find("wasted"), std::string::npos);
  EXPECT_NE(rep.find("cycles"), std::string::npos);
}

TEST(Obs, RepeatedExecuteResetsExecutionCounters) {
  SwatopConfig cfg;
  cfg.observability.enabled = true;
  ops::MatmulOp op(128, 128, 64);
  Optimizer optimizer(cfg);
  OptimizedOperator tuned = optimizer.optimize(op);
  const rt::RunResult r1 = tuned.execute(sim::ExecMode::TimingOnly);
  const rt::RunResult r2 = tuned.execute(sim::ExecMode::TimingOnly);
  // Counters describe one execution, not the accumulation of both.
  EXPECT_EQ(r1.profile.counters.dma.bytes_requested,
            r2.profile.counters.dma.bytes_requested);
  EXPECT_DOUBLE_EQ(r1.profile.counters.total_cycles,
                   r2.profile.counters.total_cycles);
  // The trace accumulates across runs (one timeline).
  EXPECT_GE(r2.profile.events.size(), r1.profile.events.size());
}

}  // namespace
}  // namespace swatop
