#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/core_group.hpp"

namespace swatop::sim {
namespace {

TEST(MainMemory, AllocAlignsToTransactions) {
  MainMemory m;
  const auto a = m.alloc(5, "a");
  const auto b = m.alloc(7, "b");
  EXPECT_EQ(a % 32, 0);
  EXPECT_EQ(b % 32, 0);
  EXPECT_GE(b, a + 5);
}

TEST(MainMemory, ReadWriteAndBounds) {
  MainMemory m;
  const auto a = m.alloc(16);
  m.write(a + 3, 1.5f);
  EXPECT_FLOAT_EQ(m.read(a + 3), 1.5f);
  EXPECT_THROW(m.read(m.size()), CheckError);
  EXPECT_THROW(m.view(a, m.size() + 1), CheckError);
}

TEST(MainMemory, CopyInOutRoundTrip) {
  MainMemory m;
  const auto a = m.alloc(8);
  std::vector<float> src = {1, 2, 3, 4, 5, 6, 7, 8};
  m.copy_in(a, src);
  std::vector<float> dst(8, 0.0f);
  m.copy_out(a, dst);
  EXPECT_EQ(src, dst);
}

TEST(MainMemory, NonMaterializedHandsOutAddressesOnly) {
  MainMemory m;
  m.set_materialize(false);
  const auto a = m.alloc(std::int64_t{1} << 28);  // 1 GiB of floats, no RAM
  EXPECT_GE(m.size(), std::int64_t{1} << 28);
  EXPECT_THROW(m.read(a), CheckError);
}

TEST(Spm, CapacityAndBounds) {
  SimConfig cfg;
  Spm spm(cfg);
  EXPECT_EQ(spm.capacity(), 16 * 1024);
  spm.write(0, 2.0f);
  spm.write(spm.capacity() - 1, 3.0f);
  EXPECT_FLOAT_EQ(spm.read(spm.capacity() - 1), 3.0f);
  EXPECT_THROW(spm.read(spm.capacity()), CheckError);
}

TEST(Dma, ContiguousCostMatchesBandwidth) {
  SimConfig cfg;
  DmaEngine e(cfg);
  DmaCpeDesc d;
  d.mem_base = 0;
  d.block = 1024;
  d.total = 1024;
  const DmaCost c = e.cost(d);
  EXPECT_EQ(c.transactions, 1024 * 4 / 128);
  EXPECT_EQ(c.bytes_wasted, 0);
  EXPECT_NEAR(c.transfer_cycles, 4096.0 / cfg.dma_bytes_per_cycle(), 1e-9);
  EXPECT_DOUBLE_EQ(c.latency_cycles, cfg.dma_latency_cycles);
}

TEST(Dma, StridedAccessPaysTransactionWaste) {
  SimConfig cfg;
  DmaEngine e(cfg);
  // 8-float blocks (32 B) on a 128-float stride.
  DmaCpeDesc d;
  d.mem_base = 0;
  d.block = 8;
  d.stride = 120;
  d.total = 64;
  const DmaCost c = e.cost(d);
  EXPECT_EQ(c.bytes_requested, 64 * 4);
  EXPECT_GE(c.transactions, 8);
  EXPECT_GT(c.bytes_wasted, 0);
  // Strided must never be cheaper than the same bytes contiguous.
  DmaCpeDesc contig;
  contig.block = 64;
  contig.total = 64;
  EXPECT_GE(c.transfer_cycles, e.cost(contig).transfer_cycles);
}

TEST(Dma, ElementGatherIsMuchWorseThanBlocks) {
  SimConfig cfg;
  DmaEngine e(cfg);
  DmaCpeDesc gather;
  gather.block = 1;
  gather.stride = 255;
  gather.total = 256;
  DmaCpeDesc block;
  block.block = 256;
  block.total = 256;
  EXPECT_GT(e.cost(gather).transfer_cycles,
            10.0 * e.cost(block).transfer_cycles);
}

TEST(Dma, EngineSerializesTransfers) {
  SimConfig cfg;
  DmaEngine e(cfg);
  DmaCost c;
  c.transfer_cycles = 100.0;
  const double d1 = e.issue(0.0, c);
  const double d2 = e.issue(0.0, c);
  EXPECT_DOUBLE_EQ(d1, 100.0);
  EXPECT_DOUBLE_EQ(d2, 200.0);
}

TEST(Dma, TransactionsForUnalignedBlock) {
  SimConfig cfg;
  DmaEngine e(cfg);
  // 32 floats (128 B) starting at float offset 1: straddles two txns.
  EXPECT_EQ(e.transactions_for_block(1, 32), 2);
  EXPECT_EQ(e.transactions_for_block(0, 32), 1);
}

TEST(Cluster, SpmAllocatorTracksAndOverflows) {
  SimConfig cfg;
  CpeCluster cl(cfg);
  const auto a = cl.spm_alloc(100, "a");
  const auto b = cl.spm_alloc(100, "b");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b % 8, 0);
  EXPECT_GT(cl.spm_used(), 200);
  EXPECT_THROW(cl.spm_alloc(cl.spm_capacity(), "huge"), CheckError);
  cl.spm_reset();
  EXPECT_EQ(cl.spm_used(), 0);
  EXPECT_GT(cl.spm_high_water(), 0);  // watermark survives reset
}

TEST(Cluster, MeshAddressing) {
  SimConfig cfg;
  CpeCluster cl(cfg);
  EXPECT_EQ(cl.at(3, 5).rid(), 3);
  EXPECT_EQ(cl.at(3, 5).cid(), 5);
  EXPECT_THROW(cl.at(8, 0), CheckError);
  EXPECT_THROW(cl.at(0, -1), CheckError);
}

TEST(RegComm, AccountsBroadcastBytes) {
  SimConfig cfg;
  RegCommBus bus(cfg);
  bus.record_row_broadcast(100);
  bus.record_col_broadcast(50);
  EXPECT_EQ(bus.row_bytes(), 100 * 4 * 7);
  EXPECT_EQ(bus.col_bytes(), 50 * 4 * 7);
  EXPECT_GT(bus.broadcast_cycles(64), cfg.reg_comm_latency);
}

TEST(CoreGroup, DmaWaitAdvancesClockAndRecordsStall) {
  CoreGroup cg;
  DmaCpeDesc d;
  d.mem_base = cg.mem().alloc(4096);
  d.block = 4096;
  d.total = 4096;
  const auto id =
      cg.dma_issue(std::span<const DmaCpeDesc>(&d, 1), ExecMode::TimingOnly);
  EXPECT_TRUE(cg.dma_pending(id));
  cg.dma_wait(id);
  EXPECT_FALSE(cg.dma_pending(id));
  EXPECT_GT(cg.now(), 0.0);
  EXPECT_GT(cg.stats().dma_stall_cycles, 0.0);
  EXPECT_THROW(cg.dma_wait(id), CheckError);
}

TEST(CoreGroup, ComputeOverlapsWithAsyncDma) {
  CoreGroup cg;
  DmaCpeDesc d;
  d.mem_base = cg.mem().alloc(4096);
  d.block = 4096;
  d.total = 4096;
  const auto id =
      cg.dma_issue(std::span<const DmaCpeDesc>(&d, 1), ExecMode::TimingOnly);
  const double transfer = cg.dma().cost(d).total_cycles();
  cg.advance_compute(transfer + 100.0);  // compute longer than the transfer
  cg.dma_wait(id);
  // Fully hidden: no stall beyond the compute time.
  EXPECT_DOUBLE_EQ(cg.now(), transfer + 100.0);
  EXPECT_DOUBLE_EQ(cg.stats().dma_stall_cycles, 0.0);
}

TEST(CoreGroup, FunctionalScatterMovesData) {
  CoreGroup cg;
  const SimConfig& cfg = cg.config();
  const auto base = cg.mem().alloc(64);
  for (int i = 0; i < 64; ++i)
    cg.mem().write(base + i, static_cast<float>(i));
  // One float per CPE.
  std::vector<DmaCpeDesc> descs;
  for (int i = 0; i < cfg.num_cpes(); ++i) {
    DmaCpeDesc d;
    d.mem_base = base + i;
    d.spm_addr = 5;
    d.block = 1;
    d.total = 1;
    descs.push_back(d);
  }
  const auto id = cg.dma_issue(descs, ExecMode::Functional);
  cg.dma_wait(id);
  EXPECT_FLOAT_EQ(cg.cluster().at(0, 0).spm().read(5), 0.0f);
  EXPECT_FLOAT_EQ(cg.cluster().at(1, 0).spm().read(5), 8.0f);
  EXPECT_FLOAT_EQ(cg.cluster().at(7, 7).spm().read(5), 63.0f);
}

TEST(CoreGroup, ResetExecutionPreservesMemory) {
  CoreGroup cg;
  const auto a = cg.mem().alloc(8);
  cg.mem().write(a, 9.0f);
  cg.advance_compute(50.0);
  cg.reset_execution();
  EXPECT_DOUBLE_EQ(cg.now(), 0.0);
  EXPECT_FLOAT_EQ(cg.mem().read(a), 9.0f);
}

TEST(SimConfig, DerivedQuantities) {
  SimConfig cfg;
  EXPECT_EQ(cfg.num_cpes(), 64);
  EXPECT_NEAR(cfg.peak_gflops(), 742.4, 0.1);
  EXPECT_EQ(cfg.spm_floats(), 16384);
  EXPECT_NEAR(cfg.dma_bytes_per_cycle(), 22.6 / 1.45, 1e-9);
}

}  // namespace
}  // namespace swatop::sim

namespace swatop::sim {
namespace {

/// Brute-force reference for the engine's periodic transaction math.
std::int64_t naive_transactions(const DmaEngine& e, const DmaCpeDesc& d) {
  std::int64_t txns = 0;
  std::int64_t remaining = d.total;
  MainMemory::Addr base = d.mem_base;
  while (remaining > 0) {
    const std::int64_t blk = std::min(remaining, d.block);
    txns += e.transactions_for_block(base, blk);
    remaining -= blk;
    base += d.block + d.stride;
  }
  return txns;
}

TEST(Dma, PeriodicCostMatchesBruteForce) {
  SimConfig cfg;
  DmaEngine e(cfg);
  for (std::int64_t base : {0, 1, 7, 31, 32, 100}) {
    for (std::int64_t block : {1, 3, 8, 17, 32, 100, 256}) {
      for (std::int64_t stride : {0, 1, 5, 24, 96, 120, 255}) {
        for (std::int64_t total : {1, 7, 64, 321, 4096}) {
          DmaCpeDesc d;
          d.mem_base = base;
          d.block = block;
          d.stride = stride;
          d.total = total;
          EXPECT_EQ(e.cost(d).transactions, naive_transactions(e, d))
              << "base=" << base << " block=" << block
              << " stride=" << stride << " total=" << total;
        }
      }
    }
  }
}

}  // namespace
}  // namespace swatop::sim

#include "sim/chip.hpp"

namespace swatop::sim {
namespace {

TEST(Chip, FourGroupsWithPrivateClocks) {
  Chip chip;
  EXPECT_EQ(chip.groups(), 4);
  chip.cg(0).advance_compute(100.0);
  chip.cg(2).advance_compute(300.0);
  EXPECT_DOUBLE_EQ(chip.elapsed(), 300.0);
  EXPECT_THROW(chip.cg(4), CheckError);
  EXPECT_THROW(Chip(SimConfig{}, 5), CheckError);
}

TEST(Chip, AggregatesStats) {
  Chip chip(SimConfig{}, 2);
  chip.cg(0).advance_compute(10.0);
  chip.cg(1).advance_compute(20.0);
  EXPECT_DOUBLE_EQ(chip.aggregate_stats().compute_cycles, 30.0);
  chip.reset_execution();
  EXPECT_DOUBLE_EQ(chip.elapsed(), 0.0);
}

TEST(Chip, AggregateStatsSumsEveryField) {
  // Every CgStats field must survive aggregation -- including the queue
  // wait and sanitizer counters that are only set on specific paths.
  Chip chip(SimConfig{}, 2);
  CgStats& a = chip.cg(0).stats();
  a.compute_cycles = 1.0;
  a.dma_stall_cycles = 2.0;
  a.dma_queue_wait_cycles = 3.0;
  a.dma_bytes_requested = 4;
  a.dma_bytes_wasted = 5;
  a.dma_transactions = 6;
  a.dma_transfers = 7;
  a.flops = 8;
  a.gemm_calls = 9;
  a.sanitizer.spm_poison_trips = 10;
  a.sanitizer.dma_bounds_trips = 11;
  a.sanitizer.dma_overlap_trips = 12;
  a.sanitizer.reply_slot_trips = 13;
  chip.cg(1).stats() = a;  // both groups carry the same block

  const CgStats s = chip.aggregate_stats();
  EXPECT_DOUBLE_EQ(s.compute_cycles, 2.0);
  EXPECT_DOUBLE_EQ(s.dma_stall_cycles, 4.0);
  EXPECT_DOUBLE_EQ(s.dma_queue_wait_cycles, 6.0);
  EXPECT_EQ(s.dma_bytes_requested, 8);
  EXPECT_EQ(s.dma_bytes_wasted, 10);
  EXPECT_EQ(s.dma_transactions, 12);
  EXPECT_EQ(s.dma_transfers, 14);
  EXPECT_EQ(s.flops, 16);
  EXPECT_EQ(s.gemm_calls, 18);
  EXPECT_EQ(s.sanitizer.spm_poison_trips, 20);
  EXPECT_EQ(s.sanitizer.dma_bounds_trips, 22);
  EXPECT_EQ(s.sanitizer.dma_overlap_trips, 24);
  EXPECT_EQ(s.sanitizer.reply_slot_trips, 26);
}

TEST(Chip, ResetExecutionClearsStatsAndClocks) {
  Chip chip(SimConfig{}, 3);
  for (int i = 0; i < 3; ++i) {
    chip.cg(i).advance_compute(10.0 * (i + 1));
    chip.cg(i).stats().dma_queue_wait_cycles = 5.0;
  }
  chip.reset_execution();
  EXPECT_DOUBLE_EQ(chip.elapsed(), 0.0);
  const CgStats s = chip.aggregate_stats();
  EXPECT_DOUBLE_EQ(s.compute_cycles, 0.0);
  EXPECT_DOUBLE_EQ(s.dma_queue_wait_cycles, 0.0);
}

TEST(Chip, ElapsedIsTheSlowestGroup) {
  Chip chip(SimConfig{}, 4);
  chip.cg(0).advance_compute(10.0);
  chip.cg(1).advance_compute(250.0);
  chip.cg(2).advance_compute(40.0);
  chip.cg(3).advance_compute(249.0);
  EXPECT_DOUBLE_EQ(chip.elapsed(), 250.0);
}

TEST(Chip, PeakScalesWithGroups) {
  SimConfig cfg;
  EXPECT_NEAR(Chip(cfg, 4).peak_gflops(), 4 * cfg.peak_gflops(), 1e-9);
}

}  // namespace
}  // namespace swatop::sim
