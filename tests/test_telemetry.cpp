// Flight-recorder tests: the latency histogram's quantile error bound
// against the exact oracle on adversarial distributions, window-boundary
// edge cases of the time-series recorder, serving-telemetry conservation
// and streaming-quantile accuracy, lifecycle flow-chain completeness, and
// byte-identical timeline exports across runs and tuner thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/swatop.hpp"
#include "obs/histogram.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/cost.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "serve/traffic.hpp"

namespace swatop {
namespace {

using obs::LatencyHistogram;
using obs::TimeSeries;

// --- Exact percentile oracle --------------------------------------------

TEST(ExactPercentile, CeilRankDefinition) {
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(obs::exact_percentile(s, 0.0), 1.0);   // rank clamps to 1
  EXPECT_EQ(obs::exact_percentile(s, 0.25), 1.0);  // ceil(1) = 1
  EXPECT_EQ(obs::exact_percentile(s, 0.26), 2.0);  // ceil(1.04) = 2
  EXPECT_EQ(obs::exact_percentile(s, 0.5), 2.0);
  EXPECT_EQ(obs::exact_percentile(s, 0.99), 4.0);
  EXPECT_EQ(obs::exact_percentile(s, 1.0), 4.0);
  EXPECT_EQ(obs::exact_percentile({}, 0.5), 0.0);
}

// --- Histogram error bound ----------------------------------------------

void expect_quantiles_within_bound(const std::vector<double>& samples,
                                   const char* label) {
  LatencyHistogram h;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double v : samples) h.add(v);
  ASSERT_EQ(h.count(), static_cast<std::int64_t>(samples.size()));
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.90, 0.99, 0.999}) {
    const double exact = obs::exact_percentile(sorted, q);
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx, exact, LatencyHistogram::kMaxRelError * exact)
        << label << " q=" << q;
  }
}

TEST(Histogram, ConstantDistributionIsExactWithinBound) {
  expect_quantiles_within_bound(std::vector<double>(1000, 3.7), "constant");
}

TEST(Histogram, BimodalDistributionStaysWithinBound) {
  // Two tight modes five orders of magnitude apart -- the classic case
  // where a fixed-width histogram would collapse.
  std::vector<double> s;
  serve::Rng rng(17);
  for (int i = 0; i < 4000; ++i) {
    const bool fast = rng.next_double() < 0.9;
    const double base = fast ? 0.05 : 5000.0;
    s.push_back(base * (1.0 + 0.2 * rng.next_double()));
  }
  expect_quantiles_within_bound(s, "bimodal");
}

TEST(Histogram, HeavyTailDistributionStaysWithinBound) {
  // Pareto-ish tail: u^-2 spans many octaves with a long right tail.
  std::vector<double> s;
  serve::Rng rng(23);
  for (int i = 0; i < 4000; ++i) {
    const double u = 1.0 - rng.next_double();  // (0, 1]
    s.push_back(1.0 / (u * u));
  }
  expect_quantiles_within_bound(s, "heavy-tail");
}

TEST(Histogram, MergeEqualsAddingEverySample) {
  serve::Rng rng(5);
  LatencyHistogram all, a, b, c;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.next_exponential(0.2);
    all.add(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(v);
  }
  LatencyHistogram merged;
  merged.merge(a);
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged.count(), all.count());
  // Sums accumulate in different orders; bucket counts are exactly equal.
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-9 * all.sum());
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
  EXPECT_EQ(merged.buckets(), all.buckets());
  for (double q : {0.01, 0.5, 0.99})
    EXPECT_EQ(merged.quantile(q), all.quantile(q));
}

TEST(Histogram, ZeroAndNegativeLandInTheZeroBucket) {
  LatencyHistogram h;
  h.add(0.0);
  h.add(-3.0);
  h.add(2.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.zero_count(), 2);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // rank 2 of 3 is still a zero
  EXPECT_GT(h.quantile(0.99), 0.0);
}

TEST(Histogram, ExtremeValuesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.add(1e-40);
  h.add(1e30);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e-40), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e30),
            LatencyHistogram::kNumOctaves * LatencyHistogram::kSubBuckets - 1);
  EXPECT_TRUE(std::isfinite(h.quantile(0.5)));
  EXPECT_TRUE(std::isfinite(h.quantile(0.99)));
}

TEST(Histogram, BucketIndexIsMonotoneAndEdgesAreConsistent) {
  serve::Rng rng(31);
  std::vector<double> vs;
  for (int i = 0; i < 2000; ++i) vs.push_back(rng.next_exponential(0.01));
  std::sort(vs.begin(), vs.end());
  int prev = -1;
  for (double v : vs) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
    EXPECT_LE(LatencyHistogram::bucket_lo(idx), v);
    EXPECT_GT(LatencyHistogram::bucket_mid(idx),
              LatencyHistogram::bucket_lo(idx));
  }
}

TEST(Histogram, ClearForgetsSamplesButStaysUsable) {
  LatencyHistogram h, fresh;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.add(7.0);
  fresh.add(7.0);
  EXPECT_EQ(h.quantile(0.5), fresh.quantile(0.5));
  EXPECT_EQ(h.buckets(), fresh.buckets());
}

// --- TimeSeries window semantics ----------------------------------------

TEST(TimeSeriesWindows, BoundaryEventBelongsToTheNextWindow) {
  TimeSeries ts(100.0, {"n"}, {});
  ts.count(0, 99.9999);
  ts.count(0, 100.0);  // exactly on the boundary -> window 1
  ts.finish(250.0);
  ASSERT_EQ(ts.windows().size(), 3u);
  EXPECT_EQ(ts.windows()[0].counters[0], 1.0);
  EXPECT_EQ(ts.windows()[1].counters[0], 1.0);
  EXPECT_EQ(ts.windows()[2].counters[0], 0.0);
}

TEST(TimeSeriesWindows, EmptyWindowsAreEmittedAndTileTheRun) {
  TimeSeries ts(100.0, {"n"}, {});
  ts.count(0, 320.0);
  ts.finish(350.0);
  ASSERT_EQ(ts.windows().size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(ts.windows()[k].index, static_cast<std::int64_t>(k));
    EXPECT_EQ(ts.windows()[k].start_us, 100.0 * static_cast<double>(k));
    if (k + 1 < 4) {
      EXPECT_EQ(ts.windows()[k].end_us, ts.windows()[k + 1].start_us);
    }
  }
  EXPECT_EQ(ts.windows().back().end_us, 350.0);  // final window truncated
  EXPECT_EQ(ts.totals()[0], 1.0);
}

TEST(TimeSeriesWindows, RunEndingOnBoundaryYieldsZeroWidthFinalWindow) {
  TimeSeries ts(100.0, {"n"}, {});
  ts.count(0, 200.0);  // dated exactly at the future end of the run
  ts.finish(200.0);
  ASSERT_EQ(ts.windows().size(), 3u);
  EXPECT_EQ(ts.windows()[2].start_us, 200.0);
  EXPECT_EQ(ts.windows()[2].end_us, 200.0);
  EXPECT_EQ(ts.windows()[2].counters[0], 1.0);
}

TEST(TimeSeriesWindows, FutureDatedCountsLandInTheirWindow) {
  TimeSeries ts(100.0, {"n"}, {});
  ts.count(0, 250.0);  // two windows ahead of the open one
  ts.count(0, 10.0);
  ts.advance(260.0);
  ts.finish(280.0);
  ASSERT_EQ(ts.windows().size(), 3u);
  EXPECT_EQ(ts.windows()[0].counters[0], 1.0);
  EXPECT_EQ(ts.windows()[1].counters[0], 0.0);
  EXPECT_EQ(ts.windows()[2].counters[0], 1.0);
  EXPECT_EQ(ts.totals()[0], 2.0);
}

TEST(TimeSeriesWindows, RejectsCountsBeforeTheOpenWindow) {
  TimeSeries ts(100.0, {"n"}, {});
  ts.advance(250.0);
  EXPECT_THROW(ts.count(0, 50.0), CheckError);
}

TEST(TimeSeriesWindows, RejectsCountsBeyondTheFinishTime) {
  TimeSeries ts(100.0, {"n"}, {});
  ts.count(0, 500.0);
  EXPECT_THROW(ts.finish(300.0), CheckError);
}

TEST(TimeSeriesWindows, GaugesSampleAtEveryWindowClose) {
  std::vector<double> close_times;
  TimeSeries ts(100.0, {"n"}, {"g"},
                [&](double t, std::vector<double>& g) {
                  close_times.push_back(t);
                  g[0] = t;  // the gauge records its own sample time
                });
  ts.finish(250.0);
  ASSERT_EQ(close_times.size(), 3u);
  EXPECT_EQ(close_times, (std::vector<double>{100.0, 200.0, 250.0}));
  EXPECT_EQ(ts.windows()[1].gauges[0], 200.0);
}

TEST(TimeSeriesWindows, OnCloseFiresPerWindowInOrder) {
  TimeSeries ts(100.0, {"n"}, {});
  std::vector<std::int64_t> closed;
  ts.set_on_close(
      [&](const TimeSeries::Window& w) { closed.push_back(w.index); });
  ts.count(0, 250.0);
  ts.finish(260.0);
  EXPECT_EQ(closed, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(TimeSeriesWindows, JsonlIsByteIdenticalForIdenticalStreams) {
  auto build = [] {
    TimeSeries ts(50.0, {"a", "b"}, {"g"},
                  [](double t, std::vector<double>& g) { g[0] = t * 2.0; });
    ts.count(0, 10.0, 3.0);
    ts.count(1, 120.0);
    ts.advance(130.0);
    ts.count(0, 130.0);
    ts.finish(170.0);
    return ts.jsonl();
  };
  const std::string a = build(), b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"window\":0"), std::string::npos);
  EXPECT_NE(a.find("\"a\":3"), std::string::npos);
}

// --- Deterministic request sampling -------------------------------------

TEST(Sampling, DeterministicMonotoneAndUnbiased) {
  int at_tenth = 0;
  for (std::int64_t id = 0; id < 10000; ++id) {
    EXPECT_FALSE(serve::sample_request(id, 0.0));
    EXPECT_TRUE(serve::sample_request(id, 1.0));
    const bool low = serve::sample_request(id, 0.1);
    if (low) {
      ++at_tenth;
      // The same hash is compared against a larger fraction: monotone.
      EXPECT_TRUE(serve::sample_request(id, 0.3));
    }
    EXPECT_EQ(low, serve::sample_request(id, 0.1));  // deterministic
  }
  EXPECT_NEAR(static_cast<double>(at_tenth), 1000.0, 100.0);
}

// --- Serving telemetry end-to-end (synthetic costs) ---------------------

serve::ServerConfig telemetry_config() {
  serve::ServerConfig cfg;
  cfg.fleet.chips = 4;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait_us = 2000.0;
  cfg.telemetry.enabled = true;
  cfg.telemetry.window_us = 100e3;
  return cfg;
}

std::vector<serve::Request> mixed_trace(std::uint64_t seed = 3) {
  serve::TrafficConfig t;
  t.seed = seed;
  t.duration_s = 1.0;
  t.rate_rps = 900.0;
  t.pattern = serve::ArrivalPattern::Bursty;
  t.mix = {{"resnet", 2.0, 8.0}, {"yolo", 1.0, 30.0}};
  t.sizes = {1, 2, 4};
  t.size_weights = {1.0, 1.0, 1.0};
  return serve::generate_trace(t);
}

TEST(ServeTelemetry, WindowsTileTheRunAndConserveTotals) {
  serve::SyntheticCostProvider cost;
  const serve::ServingReport rep =
      serve::Server(telemetry_config(), cost).run(mixed_trace());
  const serve::TelemetryResult& tel = rep.telemetry;
  ASSERT_TRUE(tel.enabled);
  ASSERT_FALSE(tel.windows.empty());
  std::int64_t arrivals = 0, admitted = 0, rejected = 0, shed = 0,
               completed = 0, images = 0, batches = 0;
  std::map<std::string, std::int64_t> net_offered, net_completed;
  for (std::size_t k = 0; k < tel.windows.size(); ++k) {
    const serve::TelemetryWindow& w = tel.windows[k];
    EXPECT_EQ(w.index, static_cast<std::int64_t>(k));
    EXPECT_EQ(w.start_us, tel.window_us * static_cast<double>(k));
    if (k + 1 < tel.windows.size()) {
      EXPECT_EQ(w.end_us, tel.windows[k + 1].start_us);
    }
    arrivals += w.arrivals;
    admitted += w.admitted;
    rejected += w.rejected;
    shed += w.shed;
    completed += w.completed;
    images += w.images_completed;
    batches += w.batches;
    EXPECT_EQ(w.lat_count, w.completed);
    for (const serve::WindowNetStats& n : w.nets) {
      net_offered[n.net] += n.offered;
      net_completed[n.net] += n.completed;
    }
  }
  EXPECT_EQ(arrivals, rep.offered);
  EXPECT_EQ(admitted + rejected, rep.offered);
  EXPECT_EQ(rejected, rep.rejected);
  EXPECT_EQ(shed, rep.shed);
  EXPECT_EQ(completed, rep.completed);
  EXPECT_EQ(images, rep.images_completed);
  EXPECT_EQ(batches, rep.batches);
  std::int64_t offered_by_net = 0;
  for (const auto& [net, n] : net_offered) offered_by_net += n;
  EXPECT_EQ(offered_by_net, rep.offered);
  for (const serve::NetStreamingStats& s : tel.per_net)
    EXPECT_EQ(s.completed, net_completed[s.net]);
}

TEST(ServeTelemetry, StreamingQuantilesMatchExactWithinDocumentedBound) {
  serve::SyntheticCostProvider cost;
  const serve::ServingReport rep =
      serve::Server(telemetry_config(), cost).run(mixed_trace());
  const serve::TelemetryResult& tel = rep.telemetry;
  // Exact per-window oracle: bucket every completed request's latency by
  // the window its finish time falls in (same half-open rule).
  std::vector<std::vector<double>> lat(tel.windows.size());
  std::map<std::string, std::vector<double>> net_lat;
  for (const serve::RequestRecord& r : rep.records) {
    if (r.outcome != serve::Outcome::Completed) continue;
    std::int64_t k = obs::window_index(r.finish_us, tel.window_us);
    if (k >= static_cast<std::int64_t>(tel.windows.size()))
      k = static_cast<std::int64_t>(tel.windows.size()) - 1;
    lat[static_cast<std::size_t>(k)].push_back(r.latency_us / 1e3);
    net_lat[r.req.net].push_back(r.latency_us / 1e3);
  }
  int checked = 0;
  for (std::size_t k = 0; k < tel.windows.size(); ++k) {
    std::sort(lat[k].begin(), lat[k].end());
    ASSERT_EQ(tel.windows[k].lat_count,
              static_cast<std::int64_t>(lat[k].size()));
    if (lat[k].empty()) continue;
    ++checked;
    const double e50 = obs::exact_percentile(lat[k], 0.50);
    const double e99 = obs::exact_percentile(lat[k], 0.99);
    EXPECT_NEAR(tel.windows[k].p50_ms, e50,
                obs::LatencyHistogram::kMaxRelError * e50);
    EXPECT_NEAR(tel.windows[k].p99_ms, e99,
                obs::LatencyHistogram::kMaxRelError * e99);
  }
  EXPECT_GT(checked, 0);
  // Whole-run per-net streaming quantiles (merged histograms) against the
  // exact per-net oracle.
  ASSERT_FALSE(tel.per_net.empty());
  for (const serve::NetStreamingStats& s : tel.per_net) {
    std::vector<double>& v = net_lat[s.net];
    std::sort(v.begin(), v.end());
    const double e50 = obs::exact_percentile(v, 0.50);
    const double e99 = obs::exact_percentile(v, 0.99);
    EXPECT_NEAR(s.p50_ms, e50, obs::LatencyHistogram::kMaxRelError * e50);
    EXPECT_NEAR(s.p99_ms, e99, obs::LatencyHistogram::kMaxRelError * e99);
  }
}

TEST(ServeTelemetry, TelemetryObservesWithoutChangingOutcomes) {
  serve::SyntheticCostProvider cost;
  const std::vector<serve::Request> trace = mixed_trace();
  serve::ServerConfig off = telemetry_config();
  off.telemetry.enabled = false;
  const serve::ServingReport with =
      serve::Server(telemetry_config(), cost).run(trace);
  const serve::ServingReport without = serve::Server(off, cost).run(trace);
  EXPECT_EQ(with.completed, without.completed);
  EXPECT_EQ(with.rejected, without.rejected);
  EXPECT_EQ(with.shed, without.shed);
  EXPECT_EQ(with.p99_ms, without.p99_ms);
  EXPECT_FALSE(without.telemetry.enabled);
  EXPECT_TRUE(without.timeline_jsonl().empty());
}

TEST(ServeTelemetry, TimelineJsonlIsByteIdenticalAcrossRuns) {
  serve::SyntheticCostProvider cost;
  const std::vector<serve::Request> trace = mixed_trace();
  const serve::ServingReport a =
      serve::Server(telemetry_config(), cost).run(trace);
  const serve::ServingReport b =
      serve::Server(telemetry_config(), cost).run(trace);
  EXPECT_EQ(a.timeline_jsonl(), b.timeline_jsonl());
  EXPECT_EQ(a.json(), b.json());
  EXPECT_FALSE(a.timeline_jsonl().empty());
}

TEST(ServeTelemetry, BurnAlertsFireOnRisingEdgesUnderOverload) {
  serve::TrafficConfig t;
  t.seed = 7;
  t.duration_s = 1.0;
  t.rate_rps = 4000.0;
  t.pattern = serve::ArrivalPattern::Bursty;
  t.mix = {{"resnet", 1.0, 10.0}};
  t.sizes = {1, 2, 4};
  t.size_weights = {1.0, 1.0, 1.0};
  serve::ServerConfig cfg = telemetry_config();
  cfg.fleet.chips = 2;
  serve::SyntheticCostProvider cost;
  const serve::ServingReport rep =
      serve::Server(cfg, cost).run(serve::generate_trace(t));
  const serve::TelemetryResult& tel = rep.telemetry;
  ASSERT_FALSE(tel.alerts.empty()) << "overload run should cross burn 2.0";
  for (const serve::BurnAlert& a : tel.alerts) {
    EXPECT_GE(a.burn, cfg.telemetry.burn_threshold);
    ASSERT_LT(a.window, static_cast<std::int64_t>(tel.windows.size()));
    const serve::TelemetryWindow& w =
        tel.windows[static_cast<std::size_t>(a.window)];
    EXPECT_EQ(a.t_us, w.end_us);  // stamped at the window close
    bool found = false;  // the alert names a net active in that window
    for (const serve::WindowNetStats& n : w.nets)
      if (n.net == a.net) {
        found = true;
        EXPECT_GE(n.burn, cfg.telemetry.burn_threshold);
      }
    EXPECT_TRUE(found);
  }
  // Rising edge only: consecutive above-threshold windows alert once.
  for (std::size_t i = 1; i < tel.alerts.size(); ++i) {
    if (tel.alerts[i].net == tel.alerts[i - 1].net) {
      EXPECT_GT(tel.alerts[i].window, tel.alerts[i - 1].window + 1);
    }
  }
  // The alert is embedded in its window's timeline line.
  const std::string jsonl = tel.jsonl();
  EXPECT_NE(jsonl.find("\"alerts\":[{\"net\":\""), std::string::npos);
}

TEST(ServeTelemetry, LifecycleFlowChainsAreComplete) {
  obs::Options oo;
  oo.enabled = true;
  obs::Recorder rec(oo);
  serve::ServerConfig cfg = telemetry_config();
  cfg.telemetry.trace_sample = 0.3;
  serve::SyntheticCostProvider cost;
  const serve::ServingReport rep =
      serve::Server(cfg, cost, &rec).run(mixed_trace());
  ASSERT_GT(rep.telemetry.sampled_requests, 0);
  std::map<std::int64_t, int> starts, steps, ends;
  std::map<std::int64_t, double> start_ts, end_ts;
  for (const obs::TraceEvent& e : rec.buffer().snapshot()) {
    if (e.flow == 's') {
      ++starts[e.flow_id];
      start_ts[e.flow_id] = e.ts;
    } else if (e.flow == 't') {
      ++steps[e.flow_id];
    } else if (e.flow == 'f') {
      ++ends[e.flow_id];
      end_ts[e.flow_id] = e.ts;
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(starts.size()),
            rep.telemetry.sampled_requests);
  EXPECT_EQ(starts.size(), ends.size());
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "request " << id;
    ASSERT_TRUE(ends.count(id)) << "request " << id << " never terminated";
    EXPECT_EQ(ends[id], 1);
    EXPECT_LE(start_ts[id], end_ts[id]);
  }
  for (const auto& [id, n] : steps) {
    EXPECT_TRUE(starts.count(id)) << "orphan flow step for " << id;
    EXPECT_GE(n, 1);
  }
}

TEST(ServeTelemetry, SamplingFractionEndpointsAreExact) {
  obs::Options oo;
  oo.enabled = true;
  serve::SyntheticCostProvider cost;
  const std::vector<serve::Request> trace = mixed_trace();
  serve::ServerConfig all = telemetry_config();
  all.telemetry.trace_sample = 1.0;
  serve::ServerConfig none = telemetry_config();
  none.telemetry.trace_sample = 0.0;
  obs::Recorder ra(oo), rn(oo);
  EXPECT_EQ(serve::Server(all, cost, &ra).run(trace)
                .telemetry.sampled_requests,
            static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(serve::Server(none, cost, &rn).run(trace)
                .telemetry.sampled_requests,
            0);
}

// --- Engine-backed determinism across tuner thread counts ---------------

TEST(ServeTelemetry, TimelineByteIdenticalAtAnyTunerThreadCount) {
  serve::TrafficConfig t;
  t.seed = 11;
  t.duration_s = 0.4;
  t.rate_rps = 60.0;
  t.mix = {{"resnet", 1.0, 200.0}};
  t.sizes = {1, 2};
  t.size_weights = {1.0, 1.0};
  const std::vector<serve::Request> trace = serve::generate_trace(t);
  SwatopConfig one;
  one.tune_threads = 1;
  SwatopConfig many;
  many.tune_threads = 0;  // hardware concurrency
  serve::EngineCostProvider c1(one), cn(many);
  serve::ServerConfig cfg;
  cfg.telemetry.enabled = true;
  cfg.telemetry.window_us = 50e3;
  const serve::ServingReport r1 = serve::Server(cfg, c1).run(trace);
  const serve::ServingReport rn = serve::Server(cfg, cn).run(trace);
  EXPECT_EQ(r1.timeline_jsonl(), rn.timeline_jsonl());
  EXPECT_EQ(r1.json(), rn.json());
  EXPECT_FALSE(r1.timeline_jsonl().empty());
}

}  // namespace
}  // namespace swatop
