#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "tune/cost_model.hpp"
#include "tune/gemm_model.hpp"
#include "tune/tuner.hpp"

namespace swatop::tune {
namespace {

sim::SimConfig cfg;

TEST(GemmModel, FitResidualIsSmall) {
  // Eq. (2) is a smooth surrogate for a genuinely stepped cost surface
  // (ragged register-block decomposition); a mean relative residual in the
  // low tens of percent per *single call* is expected -- what Fig. 9
  // validates is the end-to-end candidate ranking, tested separately.
  const GemmCostModel& m = gemm_cost_model(cfg);
  for (int v = 0; v < 8; ++v) {
    EXPECT_LT(m.residual(v), 0.15) << "variant " << v;
  }
}

TEST(GemmModel, PredictsMeasuredOrdering) {
  // The fitted Eq. (2) must preserve the ordering between a cheap and an
  // expensive variant at a representative shape.
  const GemmCostModel& m = gemm_cost_model(cfg);
  const auto& db = isa::kernel_cost_db(cfg);
  const double fast = db.spm_gemm_cycles(isa::KernelVariant::from_index(0),
                                         128, 128, 64);
  const double slow = db.spm_gemm_cycles(isa::KernelVariant::from_index(1),
                                         128, 128, 64);
  ASSERT_LT(fast, slow);
  EXPECT_LT(m.cycles(0, 128, 128, 64), m.cycles(1, 128, 128, 64));
}

TEST(GemmModel, GrowsWithEveryDim) {
  const GemmCostModel& m = gemm_cost_model(cfg);
  const double base = m.cycles(0, 64, 64, 32);
  EXPECT_GT(m.cycles(0, 128, 64, 32), base);
  EXPECT_GT(m.cycles(0, 64, 128, 32), base);
  EXPECT_GT(m.cycles(0, 64, 64, 64), base);
}

TEST(CostModel, TracksInterpreterWithinTolerance) {
  // The static estimate should land near the measured run for an aligned
  // shape (no boundary approximation error).
  ops::MatmulOp op(128, 128, 64);
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  const auto cand = build_candidate(op, s, cfg);
  const double measured = measure_candidate(op, cand, cfg);
  const CostModel model(cfg, gemm_cost_model(cfg));
  const double predicted = model.estimate(cand.program).total();
  EXPECT_NEAR(predicted, measured, 0.35 * measured);
}

TEST(CostModel, OverlapUsesMax) {
  ops::MatmulOp op(128, 128, 64);
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  const CostModel model(cfg, gemm_cost_model(cfg));
  const auto with = build_candidate(op, s, cfg, true);
  const auto without = build_candidate(op, s, cfg, false);
  const StaticCost cw = model.estimate(with.program);
  const StaticCost co = model.estimate(without.program);
  EXPECT_TRUE(cw.overlapped);
  EXPECT_FALSE(co.overlapped);
  EXPECT_LT(cw.total(), co.total());
  EXPECT_DOUBLE_EQ(cw.total(),
                   cw.dma_sync_cycles + std::max(cw.dma_overlapped_cycles,
                                                 cw.compute_cycles));
  EXPECT_DOUBLE_EQ(co.total(), co.dma_cycles() + co.compute_cycles);
}

TEST(ModelTuner, FindsACandidateAndReportsStats) {
  ops::MatmulOp op(96, 64, 40);
  const ModelTuner tuner(cfg);
  const Tuned t = tuner.tune(op);
  EXPECT_GT(t.cycles, 0.0);
  EXPECT_GT(t.stats.space_size, 0);
  EXPECT_GT(t.stats.valid_candidates, 0);
  EXPECT_LE(t.stats.valid_candidates, t.stats.space_size);
  EXPECT_GE(t.stats.seconds, 0.0);
}

TEST(BlackBoxTuner, MeasuresEveryCandidate) {
  ops::MatmulOp op(64, 64, 32);
  const BlackBoxTuner tuner(cfg);
  const auto res = tuner.tune(op);
  EXPECT_EQ(static_cast<std::int64_t>(res.all_measured.size()),
            res.best.stats.valid_candidates);
  for (double t : res.all_measured) EXPECT_GE(t, res.best.cycles);
}

TEST(Tuners, ModelLossIsBounded) {
  // The paper's Fig. 9 claim at small scale: the model-picked candidate is
  // within a modest factor of the brute-force best.
  for (std::int64_t m : {64, 96}) {
    ops::MatmulOp op(m, 64, 40);
    const ModelTuner mt(cfg);
    const BlackBoxTuner bb(cfg);
    const Tuned picked = mt.tune(op);
    const auto best = bb.tune(op);
    const double measured_pick =
        measure_candidate(op, picked.candidate, cfg);
    EXPECT_LE(measured_pick, 1.25 * best.best.cycles)
        << "model pick leaves too much on the table for M=" << m;
  }
}

TEST(Tuners, ModelTunerIsMuchFaster) {
  ops::MatmulOp op(256, 256, 128);
  const ModelTuner mt(cfg);
  const BlackBoxTuner bb(cfg);
  const Tuned fast = mt.tune(op);
  const auto slow = bb.tune(op);
  EXPECT_LT(fast.stats.seconds, slow.best.stats.seconds);
}

TEST(ModelTuner, ParallelPicksSameWinnerAsSerial) {
  // The worker-pool enumerate->lower->rank path must be bit-deterministic:
  // estimates are index-aligned and ties break by the first index, so any
  // thread count picks the serial winner.
  ops::ConvShape cs;
  cs.batch = 4;
  cs.ni = 32;
  cs.no = 32;
  cs.ri = 8;
  cs.ci = 8;
  ops::ImplicitConvOp conv(cs);
  ops::MatmulOp small(64, 64, 32);
  ops::MatmulOp odd(72, 56, 40);
  const dsl::OperatorDef* ops_[] = {&small, &odd, &conv};
  const ModelTuner tuner(cfg);
  for (const dsl::OperatorDef* op : ops_) {
    sched::SchedulerOptions serial;
    serial.num_threads = 1;
    sched::SchedulerOptions parallel;
    parallel.num_threads = 0;  // hardware concurrency
    const Tuned s = tuner.tune(*op, serial);
    const Tuned p = tuner.tune(*op, parallel);
    EXPECT_TRUE(p.candidate.strategy == s.candidate.strategy)
        << op->name() << ": parallel picked "
        << p.candidate.strategy.to_string() << " vs serial "
        << s.candidate.strategy.to_string();
    EXPECT_DOUBLE_EQ(p.cycles, s.cycles) << op->name();
    EXPECT_EQ(p.stats.valid_candidates, s.stats.valid_candidates);
    // Same for the top-k refinement (shortlist is rank-stable too).
    const Tuned sk = tuner.tune_top_k(*op, 4, serial);
    const Tuned pk = tuner.tune_top_k(*op, 4, parallel);
    EXPECT_TRUE(pk.candidate.strategy == sk.candidate.strategy)
        << op->name();
    EXPECT_DOUBLE_EQ(pk.cycles, sk.cycles) << op->name();
  }
}

TEST(BlackBoxTuner, RecordsTuningTrace) {
  // Black-box tuning is observable like ModelTuner (Tab. 3 both sides):
  // phases are spans on the tuner track, per-candidate results become tune
  // samples, all emitted after the measurement pool joins.
  ops::MatmulOp op(64, 64, 32);
  const BlackBoxTuner tuner(cfg);
  obs::Options oo;
  oo.enabled = true;
  obs::Recorder rec(oo);
  const auto res = tuner.tune(op, {}, &rec);
  EXPECT_EQ(rec.tune().candidates_measured,
            res.best.stats.valid_candidates);
  EXPECT_EQ(rec.tune().space_size, res.best.stats.space_size);
  EXPECT_GT(rec.tune().seconds, 0.0);
  EXPECT_EQ(static_cast<std::int64_t>(rec.tune_samples().size()),
            res.best.stats.valid_candidates);
  for (const obs::TuneSample& s : rec.tune_samples()) {
    EXPECT_LT(s.predicted_cycles, 0.0);  // no model estimate in black-box
    EXPECT_GT(s.measured_cycles, 0.0);
  }
  bool saw_enum = false, saw_measure = false;
  for (const obs::TraceEvent& ev : rec.buffer().snapshot()) {
    if (ev.name == "enumerate+lower") saw_enum = true;
    if (ev.name == "measure (parallel)") saw_measure = true;
  }
  EXPECT_TRUE(saw_enum);
  EXPECT_TRUE(saw_measure);
}

TEST(MeasureStrategy, ThrowsOnInvalidStrategy) {
  ops::MatmulOp op(64, 64, 32);
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "switch");  // aligned: switch is a no-op, invalid
  EXPECT_THROW(measure_strategy(op, s, cfg), CheckError);
}

}  // namespace
}  // namespace swatop::tune

namespace swatop::tune {
namespace {

TEST(ModelTuner, TopKNeverWorseThanTopOne) {
  ops::MatmulOp op(96, 64, 40);
  const ModelTuner tuner(cfg);
  const Tuned one = tuner.tune(op);
  const Tuned topk = tuner.tune_top_k(op, 8);
  const double measured_one = measure_candidate(op, one.candidate, cfg);
  // top-k returns a *measured* winner among the model's shortlist, which
  // includes the model's single pick.
  EXPECT_LE(topk.cycles, measured_one + 1e-6);
}

TEST(ModelTuner, TopKHandlesOversizedK) {
  ops::MatmulOp op(64, 64, 32);
  const ModelTuner tuner(cfg);
  const Tuned t = tuner.tune_top_k(op, 1 << 20);
  EXPECT_GT(t.cycles, 0.0);
  EXPECT_THROW(tuner.tune_top_k(op, 0), CheckError);
}

TEST(ModelTuner, TopKApproachesBruteForce) {
  ops::MatmulOp op(72, 56, 40);
  const ModelTuner tuner(cfg);
  const BlackBoxTuner bb(cfg);
  const auto best = bb.tune(op);
  const Tuned topk = tuner.tune_top_k(op, 16);
  EXPECT_LE(topk.cycles, 1.1 * best.best.cycles);
}

}  // namespace
}  // namespace swatop::tune

#include "ops/implicit_conv.hpp"

namespace swatop::tune {
namespace {

TEST(CostModel, PenalizesSynchronousAccumulatorTraffic) {
  // Regression for the Fig. 9 worst case: a schedule that places reduction
  // loops outside the output tile's scope re-fetches C synchronously every
  // pass; the model must price that above the overlap-friendly order.
  ops::ConvShape s;
  s.batch = 32;
  s.ni = 128;
  s.no = 128;
  s.ri = 18;
  s.ci = 18;
  ops::ImplicitConvOp op(s);
  auto strat = [](const char* order) {
    dsl::Strategy st;
    st.set_factor("Tno", 64);
    st.set_factor("Tni", 64);
    st.set_factor("Tco", 8);
    st.set_choice("wlayout", "ni_major");
    st.set_choice("order", order);
    st.set_choice("variant", "7");
    st.set_choice("boundary", "pad");
    return st;
  };
  const CostModel model(cfg, gemm_cost_model(cfg));
  const auto good = build_candidate(op, strat("rcouvi"), cfg);
  const auto bad = build_candidate(op, strat("rcuvio"), cfg);
  const StaticCost cg_ = model.estimate(good.program);
  const StaticCost cb = model.estimate(bad.program);
  // The reduction-outside order carries far more synchronous DMA...
  EXPECT_GT(cb.dma_sync_cycles, 2.0 * cg_.dma_sync_cycles);
  // ...and both the model and the interpreter agree on the ordering.
  EXPECT_GT(cb.total(), cg_.total());
  EXPECT_GT(measure_candidate(op, bad, cfg),
            measure_candidate(op, good, cfg));
}

}  // namespace
}  // namespace swatop::tune
