#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/least_squares.hpp"
#include "common/math_util.hpp"

namespace swatop {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_THROW(ceil_div(4, 0), CheckError);
  EXPECT_THROW(ceil_div(-1, 4), CheckError);
}

TEST(MathUtil, AlignUpDown) {
  EXPECT_EQ(align_up(0, 32), 0);
  EXPECT_EQ(align_up(1, 32), 32);
  EXPECT_EQ(align_up(32, 32), 32);
  EXPECT_EQ(align_up(33, 32), 64);
  EXPECT_EQ(align_down(33, 32), 32);
  EXPECT_EQ(align_down(31, 32), 0);
}

TEST(MathUtil, Divisors) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  EXPECT_THROW(divisors(0), CheckError);
}

TEST(MathUtil, SplitFactors) {
  const auto fs = split_factors(12);
  // Divisors of 12 plus powers of two up to 12, deduped, sorted.
  EXPECT_EQ(fs, (std::vector<std::int64_t>{1, 2, 3, 4, 6, 8, 12}));
  const auto capped = split_factors(12, 4);
  EXPECT_EQ(capped, (std::vector<std::int64_t>{1, 2, 3, 4}));
}

TEST(MathUtil, Gcd) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(0, 5), 5);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Check, ThrowsWithMessage) {
  try {
    SWATOP_CHECK(1 == 2) << "context " << 42;
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(LeastSquares, SolvesExactSystem) {
  // y = 2x + 3.
  std::vector<double> X = {1, 1, 2, 1, 3, 1, 4, 1};
  std::vector<double> y = {5, 7, 9, 11};
  const auto b = least_squares(X, y, 4, 2);
  EXPECT_NEAR(b[0], 2.0, 1e-9);
  EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(LeastSquares, MinimizesResidualOnNoisyData) {
  // y = 4x - 1 with symmetric perturbation: fit must recover the line.
  std::vector<double> X, y;
  for (int i = 0; i < 10; ++i) {
    X.push_back(i);
    X.push_back(1);
    y.push_back(4.0 * i - 1.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const auto b = least_squares(X, y, 10, 2);
  EXPECT_NEAR(b[0], 4.0, 0.05);
  EXPECT_NEAR(b[1], -1.0, 0.5);
}

TEST(LeastSquares, RejectsUnderdetermined) {
  std::vector<double> X = {1, 2};
  std::vector<double> y = {1};
  EXPECT_THROW(least_squares(X, y, 1, 2), CheckError);
}

TEST(SolveLinear, PivotsOnZeroDiagonal) {
  // [[0, 1], [1, 0]] x = [2, 3] -> x = [3, 2].
  const auto x = solve_linear({0, 1, 1, 0}, {2, 3}, 2);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, ThrowsOnSingular) {
  EXPECT_THROW(solve_linear({1, 2, 2, 4}, {1, 2}, 2), CheckError);
}

}  // namespace
}  // namespace swatop
