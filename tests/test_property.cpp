// Property-style parameterized sweeps over shapes, variants and strategies:
// every tensorized schedule must equal the naive reference, and the cost
// machinery must obey basic monotonicity/consistency invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "ops/matmul.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "sim/dma.hpp"
#include "tune/cost_model.hpp"
#include "tune/tuner.hpp"

namespace swatop {
namespace {

sim::SimConfig cfg;

// ---------------------------------------------------------------------------
// Functional equivalence across a shape grid.

class MatmulShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapeSweep, TunedEqualsReference) {
  const auto [M, N, K] = GetParam();
  ops::MatmulOp op(M, N, K);
  const tune::ModelTuner tuner(cfg);
  const auto tuned = tuner.tune(op);
  sim::CoreGroup cg(cfg);
  const auto bt = rt::bind_tensors(cg, op);
  op.fill_inputs(cg, bt, tuned.candidate.strategy);
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  interp.run(tuned.candidate.program, bt);
  EXPECT_LE(op.check_output(cg, bt, tuned.candidate.strategy), 2e-3)
      << "M=" << M << " N=" << N << " K=" << K;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, MatmulShapeSweep,
    ::testing::Values(std::tuple<int, int, int>{32, 32, 8},
                      std::tuple<int, int, int>{33, 32, 8},
                      std::tuple<int, int, int>{32, 33, 9},
                      std::tuple<int, int, int>{40, 56, 24},
                      std::tuple<int, int, int>{64, 32, 50},
                      std::tuple<int, int, int>{100, 100, 100},
                      std::tuple<int, int, int>{128, 96, 72},
                      std::tuple<int, int, int>{17, 65, 31}));

// ---------------------------------------------------------------------------
// Strategy sweep on one ragged shape: every valid candidate is correct.

TEST(StrategySweep, EveryValidCandidateIsCorrect) {
  ops::MatmulOp op(72, 40, 24);
  const sched::Scheduler sched(cfg);
  sched::SchedulerOptions opts;
  opts.max_candidates = 60;  // a broad slice of the space
  const auto cands = sched.candidates(op, opts);
  ASSERT_FALSE(cands.empty());
  sim::CoreGroup cg(cfg);
  const auto bt = rt::bind_tensors(cg, op);
  for (const auto& cand : cands) {
    op.fill_inputs(cg, bt, cand.strategy);
    rt::Interpreter interp(cg, sim::ExecMode::Functional);
    interp.run(cand.program, bt);
    EXPECT_LE(op.check_output(cg, bt, cand.strategy), 2e-3)
        << cand.strategy.to_string();
  }
}

// ---------------------------------------------------------------------------
// DMA cost properties.

TEST(DmaCostProperty, WasteIsBoundedByTransactions) {
  sim::DmaEngine e(cfg);
  for (std::int64_t block : {1, 3, 8, 17, 32, 100}) {
    for (std::int64_t stride : {0, 1, 13, 96}) {
      sim::DmaCpeDesc d;
      d.block = block;
      d.stride = stride;
      d.total = block * 7;
      const auto c = e.cost(d);
      EXPECT_GE(c.bytes_wasted, 0);
      EXPECT_EQ(c.bytes_wasted + c.bytes_requested,
                c.transactions *
                    static_cast<std::int64_t>(cfg.dram_transaction_bytes));
    }
  }
}

TEST(DmaCostProperty, MonotonicInSize) {
  sim::DmaEngine e(cfg);
  double prev = 0.0;
  for (std::int64_t total : {32, 64, 128, 256, 512}) {
    sim::DmaCpeDesc d;
    d.block = 32;
    d.stride = 32;
    d.total = total;
    const double t = e.cost(d).transfer_cycles;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(DmaCostProperty, BiggerBlocksNeverWorse) {
  sim::DmaEngine e(cfg);
  for (std::int64_t total : {64, 256, 1024}) {
    double prev = 1e18;
    for (std::int64_t block : {1, 4, 16, 64}) {
      sim::DmaCpeDesc d;
      d.block = block;
      d.stride = 64;
      d.total = total;
      const double t = e.cost(d).transfer_cycles;
      EXPECT_LE(t, prev * 1.0001);
      prev = t;
    }
  }
}

// ---------------------------------------------------------------------------
// Cost-model consistency: predictions rank candidates roughly like the
// interpreter does.

TEST(CostModelProperty, RankCorrelatesWithMeasurement) {
  ops::MatmulOp op(128, 128, 64);
  const sched::Scheduler sched(cfg);
  sched::SchedulerOptions opts;
  opts.max_candidates = 24;
  const auto cands = sched.candidates(op, opts);
  ASSERT_GE(cands.size(), 8u);
  const tune::CostModel model(cfg, tune::gemm_cost_model(cfg));
  std::vector<double> pred, meas;
  for (const auto& c : cands) {
    pred.push_back(model.estimate(c.program).total());
    meas.push_back(tune::measure_candidate(op, c, cfg));
  }
  // Spearman-lite: count concordant pairs.
  int concordant = 0, total = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    for (std::size_t j = i + 1; j < pred.size(); ++j) {
      if (pred[i] == pred[j] || meas[i] == meas[j]) continue;
      ++total;
      if ((pred[i] < pred[j]) == (meas[i] < meas[j])) ++concordant;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(concordant) / total, 0.7);
}

// ---------------------------------------------------------------------------
// Timing invariants.

TEST(TimingProperty, MoreWorkMoreCycles) {
  const tune::ModelTuner tuner(cfg);
  double prev = 0.0;
  for (std::int64_t n : {64, 128, 256}) {
    ops::MatmulOp op(n, n, n);
    const auto t = tuner.tune(op);
    const double measured = tune::measure_candidate(op, t.candidate, cfg);
    EXPECT_GT(measured, prev);
    prev = measured;
  }
}

TEST(TimingProperty, TunedNeverBeatsArithmeticPeak) {
  for (std::int64_t n : {64, 128, 256}) {
    ops::MatmulOp op(n, n, n);
    const tune::ModelTuner tuner(cfg);
    const auto t = tuner.tune(op);
    const double measured = tune::measure_candidate(op, t.candidate, cfg);
    const double min_cycles =
        2.0 * static_cast<double>(n) * static_cast<double>(n) *
        static_cast<double>(n) / cfg.peak_flops_per_cycle();
    EXPECT_GE(measured, min_cycles);
  }
}

}  // namespace
}  // namespace swatop

#include "ops/implicit_conv.hpp"

namespace swatop {
namespace {

TEST(StrategySweep, ImplicitConvCandidatesAllCorrect) {
  ops::ConvShape shape;
  shape.batch = 8;
  shape.ni = 32;
  shape.no = 32;
  shape.ri = 8;
  shape.ci = 8;
  ops::ImplicitConvOp op(shape);
  const sched::Scheduler sched(cfg);
  sched::SchedulerOptions opts;
  opts.max_candidates = 40;
  const auto cands = sched.candidates(op, opts);
  ASSERT_FALSE(cands.empty());
  sim::CoreGroup cg(cfg);
  const auto bt = rt::bind_tensors(cg, op);
  for (const auto& cand : cands) {
    op.fill_inputs(cg, bt, cand.strategy);
    rt::Interpreter interp(cg, sim::ExecMode::Functional);
    interp.run(cand.program, bt);
    EXPECT_LE(op.check_output(cg, bt, cand.strategy), 2e-3)
        << cand.strategy.to_string();
  }
}

TEST(TimingProperty, SyncDmaNeverHiddenByModel) {
  // Any estimate's total must be at least its synchronous-DMA share and at
  // least its compute share, across a slice of real candidates.
  ops::ConvShape shape;
  shape.batch = 32;
  shape.ni = 64;
  shape.no = 64;
  shape.ri = 16;
  shape.ci = 16;
  ops::ImplicitConvOp op(shape);
  const sched::Scheduler sched(cfg);
  sched::SchedulerOptions opts;
  opts.max_candidates = 32;
  const tune::CostModel model(cfg, tune::gemm_cost_model(cfg));
  for (const auto& cand : sched.candidates(op, opts)) {
    const tune::StaticCost c = model.estimate(cand.program);
    EXPECT_GE(c.total(), c.dma_sync_cycles);
    EXPECT_GE(c.total(), c.compute_cycles);
    EXPECT_LE(c.total(), c.dma_cycles() + c.compute_cycles + 1e-6);
  }
}

}  // namespace
}  // namespace swatop
