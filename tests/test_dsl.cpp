#include <gtest/gtest.h>

#include "common/check.hpp"
#include "dsl/dsl.hpp"

namespace swatop::dsl {
namespace {

ScheduleSpace sample_space() {
  ScheduleSpace sp;
  sp.add(FactorVar{"T", {16, 32, 64}});
  sp.add(ChoiceVar{"order", {"mnk", "nmk"}});
  sp.add(ChoiceVar{"variant", {"0", "1", "2", "3"}});
  return sp;
}

TEST(ScheduleSpace, SizeIsProduct) {
  EXPECT_EQ(sample_space().size(), 3 * 2 * 4);
}

TEST(ScheduleSpace, EnumerateCoversEverything) {
  const auto all = sample_space().enumerate();
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), sample_space().size());
  // Every strategy is distinct.
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_NE(all[i].to_string(), all[j].to_string());
}

TEST(ScheduleSpace, EnumerateWithPruning) {
  const auto pruned = sample_space().enumerate([](const Strategy& s) {
    return s.factor("T") != 32;
  });
  EXPECT_EQ(pruned.size(), 2u * 2 * 4);
  for (const auto& s : pruned) EXPECT_NE(s.factor("T"), 32);
}

TEST(ScheduleSpace, RejectsEmptyVariables) {
  ScheduleSpace sp;
  EXPECT_THROW(sp.add(FactorVar{"T", {}}), CheckError);
  EXPECT_THROW(sp.add(ChoiceVar{"c", {}}), CheckError);
}

TEST(Strategy, AccessorsAndErrors) {
  Strategy s;
  s.set_factor("T", 64);
  s.set_choice("order", "mnk");
  EXPECT_EQ(s.factor("T"), 64);
  EXPECT_EQ(s.choice("order"), "mnk");
  EXPECT_TRUE(s.has_factor("T"));
  EXPECT_FALSE(s.has_factor("U"));
  EXPECT_TRUE(s.has_choice("order"));
  EXPECT_THROW(s.factor("U"), CheckError);
  EXPECT_THROW(s.choice("layout"), CheckError);
}

TEST(Strategy, ToStringIsDeterministic) {
  Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  EXPECT_EQ(s.to_string(), "Tk=32 Tm=64 order=mnk");
}

class PrefetchChoiceOp : public OperatorDef {
 public:
  std::string name() const override { return "stub"; }
  ScheduleSpace space() const override { return {}; }
  ir::StmtPtr lower(const Strategy&) const override { return nullptr; }
  std::vector<TensorSpec> tensors() const override { return {}; }
  std::int64_t flops() const override { return 0; }
};

TEST(OperatorDef, PrefetchDefaultsOnAndHonoursChoice) {
  PrefetchChoiceOp op;
  Strategy none;
  EXPECT_TRUE(op.prefetch_enabled(none));
  Strategy off;
  off.set_choice("prefetch", "off");
  EXPECT_FALSE(op.prefetch_enabled(off));
  Strategy on;
  on.set_choice("prefetch", "on");
  EXPECT_TRUE(op.prefetch_enabled(on));
}

}  // namespace
}  // namespace swatop::dsl

#include "dsl/builder.hpp"
#include "ir/node.hpp"

namespace swatop::dsl {
namespace {

TEST(GemmOpBuilder, BuildsAWorkingOperator) {
  auto op = GemmOpBuilder("built")
                .tensor("X", 128)
                .tensor("Y", 128, true)
                .factor({"T", {16, 32}})
                .flops(42)
                .lower_with([](const Strategy&) {
                  return ir::make_seq({ir::make_comment("body")});
                })
                .build();
  EXPECT_EQ(op->name(), "built");
  EXPECT_EQ(op->flops(), 42);
  EXPECT_EQ(op->tensors().size(), 2u);
  EXPECT_TRUE(op->tensors()[1].is_output);
  EXPECT_EQ(op->space().size(), 2);
  EXPECT_NE(op->lower(Strategy{}), nullptr);
}

TEST(GemmOpBuilder, ValidatesRequiredPieces) {
  EXPECT_THROW(GemmOpBuilder("x").build(), CheckError);
  EXPECT_THROW(GemmOpBuilder("x").tensor("t", 1).build(), CheckError);
}

}  // namespace
}  // namespace swatop::dsl
