// Trace-replay executor + ranking pruner tests: the bit-identity contract
// (replayed cycles and statistics match the recording interpreter run
// exactly), key sensitivity, executor cache behaviour, the oracle mode, and
// the pruner's inert-until-trained guarantee that keeps the black-box
// tuner's argmin unchanged at default settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "sched/scheduler.hpp"
#include "tune/pruner.hpp"
#include "tune/replay.hpp"
#include "tune/tuner.hpp"

namespace swatop::tune {
namespace {

const sim::SimConfig cfg;

sched::Candidate matmul_candidate(const dsl::OperatorDef& op) {
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 64);
  s.set_factor("Tk", 32);
  s.set_choice("order", "mnk");
  s.set_choice("variant", "0");
  s.set_choice("boundary", "pad");
  return build_candidate(op, s, cfg);
}

/// Run `cand` once in TimingOnly mode with a trace recorded.
rt::RunResult record(const dsl::OperatorDef& op,
                     const sched::Candidate& cand, rt::ReplayTrace* trace) {
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  interp.set_trace_sink(trace);
  return interp.run(cand.program, bt);
}

TEST(ReplayTrace, BitIdenticalMatmul) {
  ops::MatmulOp op(96, 72, 40);
  const sched::Candidate cand = matmul_candidate(op);
  rt::ReplayTrace trace;
  const rt::RunResult run = record(op, cand, &trace);
  ASSERT_TRUE(trace.complete);
  ASSERT_FALSE(trace.events.empty());
  const rt::RunResult rep = replay_trace(trace);
  EXPECT_EQ(replay_diff(rep, run), "");
  // Spot-check exact (not approximate) equality on the headline fields.
  EXPECT_EQ(rep.cycles, run.cycles);
  EXPECT_EQ(rep.stats.compute_cycles, run.stats.compute_cycles);
  EXPECT_EQ(rep.stats.dma_stall_cycles, run.stats.dma_stall_cycles);
  EXPECT_EQ(rep.stats.dma_bytes_requested, run.stats.dma_bytes_requested);
  EXPECT_EQ(rep.stats.gemm_cycles, run.stats.gemm_cycles);
  EXPECT_EQ(rep.stats.flops, run.stats.flops);
}

TEST(ReplayTrace, BitIdenticalFusedConv) {
  // A fused epilogue exercises every recorded event kind: compute, DMA
  // issue/wait, the synchronous residual re-read and the bias fetch.
  ops::ConvShape s;
  s.batch = 2;
  s.ni = 32;
  s.no = 32;
  s.ri = 8;
  s.ci = 8;
  dsl::EpilogueSpec epi;
  epi.bias = true;
  epi.residual = true;
  epi.relu = true;
  epi.out_pad = 1;
  ASSERT_TRUE(ops::ImplicitConvOp::applicable(s));
  ops::ImplicitConvOp op(s, epi);
  const sched::Scheduler sched(cfg);
  const std::vector<sched::Candidate> cands = sched.candidates(op);
  ASSERT_FALSE(cands.empty());
  for (std::size_t i = 0; i < cands.size() && i < 4; ++i) {
    rt::ReplayTrace trace;
    const rt::RunResult run = record(op, cands[i], &trace);
    ASSERT_TRUE(trace.complete);
    EXPECT_EQ(replay_diff(replay_trace(trace), run), "")
        << "candidate " << i << ": " << cands[i].strategy.to_string();
  }
}

TEST(ReplayTrace, FunctionalModeDoesNotRecord) {
  // Functional GEMMs book through the primitive, which the flat event list
  // cannot capture; the sink must be ignored outside TimingOnly.
  ops::MatmulOp op(64, 64, 32);
  const sched::Candidate cand = matmul_candidate(op);
  sim::CoreGroup cg(cfg);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::ReplayTrace trace;
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  interp.set_trace_sink(&trace);
  (void)interp.run(cand.program, bt);
  EXPECT_FALSE(trace.complete);
  EXPECT_TRUE(trace.events.empty());
}

TEST(ReplayDiff, NamesTheFirstDifferingField) {
  rt::RunResult a, b;
  a.cycles = b.cycles = 100.0;
  EXPECT_EQ(replay_diff(a, b), "");
  b.cycles = 100.0000001;
  EXPECT_NE(replay_diff(a, b).find("cycles"), std::string::npos);
  b.cycles = a.cycles;
  b.stats.dma_transactions = 7;
  EXPECT_NE(replay_diff(a, b).find("dma_transactions"), std::string::npos);
}

TEST(ReplayKey, SensitiveToProgramBindingAndMachine) {
  ops::MatmulOp op(96, 72, 40);
  ops::MatmulOp op2(96, 72, 48);
  const sched::Candidate c1 = matmul_candidate(op);
  const sched::Candidate c1b = matmul_candidate(op);
  const sched::Candidate c2 = matmul_candidate(op2);
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  // Same structural measurement -> same key (stability under rebuild).
  EXPECT_EQ(replay_key(c1.program, bt, cfg), replay_key(c1b.program, bt, cfg));
  // Different program -> different key.
  EXPECT_NE(replay_key(c1.program, bt, cfg), replay_key(c2.program, bt, cfg));
  // Different machine -> different key, even for the same program.
  sim::SimConfig faster = cfg;
  faster.clock_ghz *= 2.0;
  EXPECT_NE(replay_key(c1.program, bt, cfg),
            replay_key(c1.program, bt, faster));
}

TEST(ReplayExecutor, SecondMeasurementIsACacheHit) {
  ops::MatmulOp op(96, 72, 40);
  const sched::Candidate cand = matmul_candidate(op);
  const double reference = measure_candidate(op, cand, cfg);
  ReplayOptions ro;
  ro.enabled = true;
  ReplayExecutor rx(ro);
  const double first = rx.measure(op, cand, cfg);
  const double second = rx.measure(op, cand, cfg);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(second, reference);
  const ReplayStats st = rx.stats();
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.fallbacks, 0);
  EXPECT_EQ(rx.cached(), 1);
}

TEST(ReplayExecutor, DisabledFallsThroughToInterpreter) {
  ops::MatmulOp op(64, 64, 32);
  const sched::Candidate cand = matmul_candidate(op);
  ReplayExecutor rx;  // enabled = false
  EXPECT_EQ(rx.measure(op, cand, cfg), measure_candidate(op, cand, cfg));
  const ReplayStats st = rx.stats();
  EXPECT_EQ(st.hits + st.misses + st.fallbacks, 0);
  EXPECT_EQ(rx.cached(), 0);
}

TEST(ReplayExecutor, OracleModeVerifiesEveryHit) {
  ops::MatmulOp op(96, 72, 40);
  const sched::Candidate cand = matmul_candidate(op);
  ReplayOptions ro;
  ro.enabled = true;
  ro.oracle = true;
  ReplayExecutor rx(ro);
  (void)rx.measure(op, cand, cfg);
  (void)rx.measure(op, cand, cfg);
  (void)rx.measure(op, cand, cfg);
  const ReplayStats st = rx.stats();
  EXPECT_EQ(st.hits, 2);
  EXPECT_EQ(st.oracle_checks, 2);
  EXPECT_EQ(st.oracle_mismatches, 0);
}

TEST(ReplayExecutor, OverBudgetTracesFallBack) {
  ops::MatmulOp op(96, 72, 40);
  const sched::Candidate cand = matmul_candidate(op);
  ReplayOptions ro;
  ro.enabled = true;
  ro.max_trace_events = 1;  // nothing real fits
  ReplayExecutor rx(ro);
  const double reference = measure_candidate(op, cand, cfg);
  EXPECT_EQ(rx.measure(op, cand, cfg), reference);
  EXPECT_EQ(rx.measure(op, cand, cfg), reference);
  const ReplayStats st = rx.stats();
  EXPECT_EQ(st.hits, 0);
  EXPECT_EQ(st.fallbacks, 2);
  EXPECT_EQ(rx.cached(), 0);
}

TEST(BlackBoxTuner, ReplayPreservesArgminBitExactly) {
  ops::MatmulOp op(64, 64, 32);
  const BlackBoxTuner plain(cfg);
  const auto base = plain.tune(op);

  ReplayOptions ro;
  ro.enabled = true;
  ro.oracle = true;  // every hit double-checked against the interpreter
  ReplayExecutor rx(ro);
  BlackBoxTuner with_replay(cfg);
  with_replay.set_replay(&rx);
  const auto fast = with_replay.tune(op);

  EXPECT_TRUE(fast.best.candidate.strategy == base.best.candidate.strategy);
  EXPECT_EQ(fast.best.cycles, base.best.cycles);
  ASSERT_EQ(fast.all_measured.size(), base.all_measured.size());
  for (std::size_t i = 0; i < base.all_measured.size(); ++i)
    EXPECT_EQ(fast.all_measured[i], base.all_measured[i]) << "candidate " << i;
  EXPECT_EQ(rx.stats().oracle_mismatches, 0);
}

// ---------------------------------------------------------------------------
// Ranking pruner

TEST(RankingPruner, FeaturesAreDeterministic) {
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  s.set_factor("Tn", 32);
  s.set_choice("order", "mnk");
  const std::vector<double> a = RankingPruner::features(s);
  const std::vector<double> b = RankingPruner::features(s);
  ASSERT_EQ(a.size(), RankingPruner::kDim);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], 1.0);  // bias term
  // A different strategy maps to a different feature vector.
  dsl::Strategy t = s;
  t.set_factor("Tm", 8);
  EXPECT_NE(RankingPruner::features(t), a);
}

TEST(RankingPruner, InertUntilTrained) {
  PrunerOptions po;
  po.enabled = true;
  po.min_train_samples = 16;
  RankingPruner p(po);
  ops::MatmulOp op(64, 64, 32);
  const sched::Scheduler sched(cfg);
  const std::vector<sched::Candidate> cands = sched.candidates(op);
  ASSERT_FALSE(cands.empty());
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  for (int i = 0; i < 15; ++i) p.observe(s, 100.0 + i);
  EXPECT_EQ(p.samples(), 15);
  EXPECT_FALSE(p.trained());
  EXPECT_FALSE(p.prune(cands).active);
}

TEST(RankingPruner, IgnoresNonFiniteAndNonPositiveSamples) {
  PrunerOptions po;
  po.enabled = true;
  RankingPruner p(po);
  dsl::Strategy s;
  s.set_factor("Tm", 64);
  p.observe(s, std::numeric_limits<double>::quiet_NaN());
  p.observe(s, std::numeric_limits<double>::infinity());
  p.observe(s, 0.0);
  p.observe(s, -5.0);
  EXPECT_EQ(p.samples(), 0);
  p.observe(s, 123.0);
  EXPECT_EQ(p.samples(), 1);
}

TEST(RankingPruner, PrunesDeterministicallyOnceTrained) {
  ops::MatmulOp op(96, 72, 40);
  const sched::Scheduler sched(cfg);
  const std::vector<sched::Candidate> cands = sched.candidates(op);
  ASSERT_GT(cands.size(), 4u);

  PrunerOptions po;
  po.enabled = true;
  po.min_train_samples = 8;
  po.keep_fraction = 0.5;
  po.min_keep = 2;
  RankingPruner p(po);
  for (const sched::Candidate& c : cands)
    p.observe(c.strategy, measure_candidate(op, c, cfg));
  ASSERT_GE(p.samples(), po.min_train_samples);
  EXPECT_TRUE(p.trained());

  const PruneDecision d = p.prune(cands);
  ASSERT_TRUE(d.active);
  ASSERT_EQ(d.keep.size(), cands.size());
  ASSERT_EQ(d.predicted.size(), cands.size());
  std::int64_t kept = 0;
  for (char k : d.keep) kept += k != 0 ? 1 : 0;
  EXPECT_EQ(kept, d.kept);
  EXPECT_GE(d.kept, po.min_keep);
  EXPECT_LT(d.kept, static_cast<std::int64_t>(cands.size()));
  for (double pr : d.predicted) {
    EXPECT_TRUE(std::isfinite(pr));
    EXPECT_GT(pr, 0.0);
  }
  // Deciding again on the same set is bit-identical.
  const PruneDecision d2 = p.prune(cands);
  EXPECT_EQ(d2.keep, d.keep);
  EXPECT_EQ(d2.predicted, d.predicted);
}

TEST(BlackBoxTuner, PrunerCutsMeasurementsAndMarksJournal) {
  ops::MatmulOp op(96, 72, 40);
  const sched::Scheduler sched(cfg);
  const std::vector<sched::Candidate> cands = sched.candidates(op);
  ASSERT_GT(cands.size(), 8u);

  PrunerOptions po;
  po.enabled = true;
  po.min_train_samples = 8;
  po.keep_fraction = 0.25;
  po.min_keep = 2;
  RankingPruner p(po);
  for (const sched::Candidate& c : cands)
    p.observe(c.strategy, measure_candidate(op, c, cfg));
  ASSERT_TRUE(p.trained());

  BlackBoxTuner tuner(cfg);
  tuner.set_pruner(&p);
  obs::Options oo;
  oo.enabled = true;
  obs::Recorder rec(oo);
  Journal journal;
  const auto res = tuner.tune(op, {}, &rec, &journal);

  EXPECT_GT(res.best.stats.pruned, 0);
  EXPECT_EQ(res.best.stats.pruned + static_cast<std::int64_t>(std::count_if(
                res.all_measured.begin(), res.all_measured.end(),
                [](double v) { return v >= 0.0; })),
            res.best.stats.valid_candidates);
  // Pruned slots are marked, never silently zero.
  std::int64_t marked = 0;
  for (double v : res.all_measured)
    if (v < 0.0) ++marked;
  EXPECT_EQ(marked, res.best.stats.pruned);
  // The winner is the measured minimum.
  double best = std::numeric_limits<double>::infinity();
  for (double v : res.all_measured)
    if (v >= 0.0) best = std::min(best, v);
  EXPECT_EQ(res.best.cycles, best);
  // Journal: one entry per candidate, pruned entries unmeasured.
  ASSERT_EQ(journal.size(), cands.size());
  std::int64_t journal_pruned = 0;
  for (const JournalEntry& e : journal.entries())
    if (e.measured < 0.0) ++journal_pruned;
  EXPECT_EQ(journal_pruned, res.best.stats.pruned);
  EXPECT_EQ(rec.tune().candidates_pruned, res.best.stats.pruned);
}

TEST(BlackBoxTuner, DefaultConfigurationIsUnpruned) {
  // The acceptance guarantee: with no pruner attached (the default) the
  // tuner measures everything, exactly as before this subsystem existed.
  ops::MatmulOp op(64, 64, 32);
  const BlackBoxTuner tuner(cfg);
  const auto res = tuner.tune(op);
  EXPECT_EQ(res.best.stats.pruned, 0);
  for (double v : res.all_measured) EXPECT_GE(v, 0.0);
}

}  // namespace
}  // namespace swatop::tune
