// Serving front-end tests: traffic determinism, batcher edge cases, fleet
// placement, SLO-aware admission, and the end-to-end serving guarantees
// (no silent drops, byte-identical reports, dynamic batching beating the
// batch-1 FIFO baseline).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/recorder.hpp"
#include "serve/batcher.hpp"
#include "serve/cost.hpp"
#include "serve/fleet.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

namespace swatop::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool same_trace(const std::vector<Request>& a, const std::vector<Request>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].net != b[i].net ||
        a[i].images != b[i].images || a[i].arrival_us != b[i].arrival_us ||
        a[i].slo_us != b[i].slo_us)
      return false;
  }
  return true;
}

// --- Traffic ------------------------------------------------------------

TEST(Traffic, FixedSeedIsByteIdentical) {
  TrafficConfig cfg;
  cfg.seed = 42;
  cfg.duration_s = 2.0;
  cfg.rate_rps = 200.0;
  cfg.mix = {{"resnet", 2.0, 50.0}, {"yolo", 1.0, 80.0}};
  cfg.sizes = {1, 2, 4};
  cfg.size_weights = {0.5, 0.3, 0.2};
  EXPECT_TRUE(same_trace(generate_trace(cfg), generate_trace(cfg)));
  TrafficConfig other = cfg;
  other.seed = 43;
  EXPECT_FALSE(same_trace(generate_trace(cfg), generate_trace(other)));
}

TEST(Traffic, PoissonMeanRateIsRespected) {
  TrafficConfig cfg;
  cfg.seed = 7;
  cfg.duration_s = 50.0;
  cfg.rate_rps = 100.0;
  const std::vector<Request> trace = generate_trace(cfg);
  const double expected = cfg.duration_s * cfg.rate_rps;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 0.1 * expected);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace[i - 1].arrival_us, trace[i].arrival_us);
}

TEST(Traffic, BurstyMeanMatchesFormula) {
  TrafficConfig cfg;
  cfg.seed = 9;
  cfg.duration_s = 50.0;
  cfg.rate_rps = 50.0;
  cfg.pattern = ArrivalPattern::Bursty;
  cfg.burst_factor = 6.0;
  cfg.burst_fraction = 0.25;
  const std::vector<Request> trace = generate_trace(cfg);
  const double mean_rate =
      cfg.rate_rps * (1.0 + (cfg.burst_factor - 1.0) * cfg.burst_fraction);
  const double expected = cfg.duration_s * mean_rate;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 0.12 * expected);
}

TEST(Traffic, RejectsMalformedConfigs) {
  TrafficConfig cfg;
  cfg.rate_rps = 0.0;
  EXPECT_THROW(generate_trace(cfg), CheckError);
  cfg = TrafficConfig{};
  cfg.mix.clear();
  EXPECT_THROW(generate_trace(cfg), CheckError);
  cfg = TrafficConfig{};
  cfg.sizes = {1, 2};  // mismatched with size_weights {1.0}
  EXPECT_THROW(generate_trace(cfg), CheckError);
}

// --- Batcher edge cases -------------------------------------------------

Request req(std::int64_t id, const std::string& net, std::int64_t images,
            double arrival_us, double slo_us = 1e9) {
  return Request{id, net, images, arrival_us, slo_us};
}

TEST(Batcher, EmptyQueueHasNoDeadlineAndNothingToPop) {
  DynamicBatcher b(BatcherConfig{});
  EXPECT_EQ(b.next_deadline_us(0.0), kInf);
  EXPECT_FALSE(b.ready(0.0, /*drain=*/false));
  EXPECT_FALSE(b.ready(0.0, /*drain=*/true));
  EXPECT_FALSE(b.pop(0.0, /*drain=*/true).has_value());
  EXPECT_TRUE(b.empty());
}

TEST(Batcher, LonelyRequestWaitsExactlyMaxWait) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 2000.0;
  DynamicBatcher b(cfg);
  b.enqueue(req(1, "resnet", 1, 100.0));
  EXPECT_FALSE(b.ready(100.0, false));
  EXPECT_EQ(b.next_deadline_us(100.0), 2100.0);
  EXPECT_FALSE(b.ready(2099.0, false));
  EXPECT_TRUE(b.ready(2100.0, false));
  const std::optional<SubBatch> sb = b.pop(2100.0, false);
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sb->images, 1);
  ASSERT_EQ(sb->slices.size(), 1u);
  EXPECT_TRUE(sb->slices[0].final_slice);
  EXPECT_TRUE(b.empty());
}

TEST(Batcher, CoalescesSmallRequestsUpToMaxBatch) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  DynamicBatcher b(cfg);
  for (int i = 0; i < 10; ++i) b.enqueue(req(i, "resnet", 1, 0.0));
  EXPECT_TRUE(b.ready(0.0, false));  // full batch, no waiting
  const std::optional<SubBatch> sb = b.pop(0.0, false);
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sb->images, 8);
  EXPECT_EQ(sb->slices.size(), 8u);  // FIFO head of the queue
  for (const auto& s : sb->slices) EXPECT_TRUE(s.final_slice);
  EXPECT_EQ(b.queued_images(), 2);
}

TEST(Batcher, OversizeRequestSplitsAcrossSubBatches) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  DynamicBatcher b(cfg);
  b.enqueue(req(5, "resnet", 20, 0.0));
  std::vector<std::int64_t> sizes;
  bool saw_final = false;
  while (!b.empty()) {
    const std::optional<SubBatch> sb = b.pop(0.0, /*drain=*/true);
    ASSERT_TRUE(sb.has_value());
    ASSERT_EQ(sb->slices.size(), 1u);
    EXPECT_EQ(sb->slices[0].request_id, 5);
    EXPECT_FALSE(saw_final);  // the final slice must be the last one
    saw_final = sb->slices[0].final_slice;
    sizes.push_back(sb->images);
  }
  EXPECT_TRUE(saw_final);
  ASSERT_EQ(sizes.size(), 3u);  // 8 + 8 + 4 on the default ladder
  EXPECT_EQ(sizes[0], 8);
  EXPECT_EQ(sizes[1], 8);
  EXPECT_EQ(sizes[2], 4);
}

TEST(Batcher, NeverMixesNetworksInOneSubBatch) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  DynamicBatcher b(cfg);
  for (int i = 0; i < 6; ++i)
    b.enqueue(req(i, i % 2 == 0 ? "resnet" : "yolo", 1, static_cast<double>(i)));
  while (!b.empty()) {
    const std::optional<SubBatch> sb = b.pop(10.0, /*drain=*/true);
    ASSERT_TRUE(sb.has_value());
    for (const auto& s : sb->slices) {
      const bool resnet_batch = sb->net == "resnet";
      EXPECT_EQ(s.request_id % 2 == 0, resnet_batch)
          << "request " << s.request_id << " in a " << sb->net << " batch";
    }
  }
}

TEST(Batcher, FifoModeIsStrictArrivalOrderAcrossNets) {
  BatcherConfig cfg;
  cfg.coalesce = false;
  cfg.max_batch = 8;  // forced down to 1 by coalesce=false
  DynamicBatcher b(cfg);
  b.enqueue(req(0, "resnet", 1, 0.0));
  b.enqueue(req(1, "yolo", 1, 1.0));
  b.enqueue(req(2, "resnet", 1, 2.0));
  std::vector<std::int64_t> order;
  while (!b.empty()) {
    const std::optional<SubBatch> sb = b.pop(100.0, false);
    ASSERT_TRUE(sb.has_value());
    EXPECT_EQ(sb->images, 1);
    order.push_back(sb->slices[0].request_id);
  }
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(Batcher, DropRemovesAllQueuedImagesOfARequest) {
  DynamicBatcher b(BatcherConfig{});
  b.enqueue(req(1, "resnet", 3, 0.0));
  b.enqueue(req(2, "resnet", 2, 0.0));
  EXPECT_EQ(b.drop(1), 3);
  EXPECT_EQ(b.drop(1), 0);  // already gone
  EXPECT_EQ(b.queued_images(), 2);
  EXPECT_EQ(b.queued_requests(), 1);
}

TEST(Batcher, RejectsMalformedLadders) {
  BatcherConfig cfg;
  cfg.ladder = {2, 4};  // must start at 1
  EXPECT_THROW(DynamicBatcher{cfg}, CheckError);
  cfg.ladder = {1, 4, 2};  // must ascend
  EXPECT_THROW(DynamicBatcher{cfg}, CheckError);
  cfg.ladder = {1, 16};  // exceeds max_batch 8
  EXPECT_THROW(DynamicBatcher{cfg}, CheckError);
}

// --- Fleet --------------------------------------------------------------

TEST(Fleet, PlacesOnLowestIdleChipAndTracksClocks) {
  Fleet f(FleetConfig{2, 4});
  EXPECT_EQ(f.idle_chip(0.0), 0);
  EXPECT_EQ(f.dispatch(0, 0.0, 100.0, 4), 100.0);
  EXPECT_EQ(f.idle_chip(0.0), 1);
  EXPECT_EQ(f.dispatch(1, 0.0, 50.0, 2), 50.0);
  EXPECT_EQ(f.idle_chip(0.0), -1);
  EXPECT_EQ(f.next_free_us(0.0), 50.0);
  EXPECT_EQ(f.earliest_start_us(0.0), 50.0);
  EXPECT_EQ(f.idle_chip(50.0), 1);
  EXPECT_EQ(f.next_free_us(200.0), kInf);
  EXPECT_EQ(f.total_busy_us(), 150.0);
}

// --- Server -------------------------------------------------------------

/// Overloaded single-net scenario on the synthetic cost model: offered
/// load well above fleet capacity, tight SLO.
TrafficConfig overload_traffic() {
  TrafficConfig t;
  t.seed = 3;
  t.duration_s = 1.0;
  t.rate_rps = 9000.0;
  t.mix = {{"resnet", 1.0, 20.0}};
  t.sizes = {1, 2, 4};
  t.size_weights = {0.5, 0.3, 0.2};
  return t;
}

TEST(Server, AdmissionKeepsEveryCompletedRequestWithinSlo) {
  SyntheticCostProvider cost(4);
  Server srv(ServerConfig{}, cost);
  const ServingReport rep = srv.run(generate_trace(overload_traffic()));
  EXPECT_GT(rep.shed + rep.rejected, 0);  // overload: something was dropped
  EXPECT_GT(rep.completed, 0);
  EXPECT_EQ(rep.slo_violations, 0);
  for (const RequestRecord& r : rep.records) {
    if (r.outcome == Outcome::Completed) {
      EXPECT_LE(r.latency_us, r.req.slo_us + 1e-6) << "request " << r.req.id;
    }
  }
  // No silent drops: every offered request has exactly one outcome.
  EXPECT_EQ(rep.completed + rep.rejected + rep.shed, rep.offered);
  EXPECT_GT(rep.shed_rate, 0.0);
}

TEST(Server, NoAdmissionAblationViolatesSloInsteadOfShedding) {
  SyntheticCostProvider cost(4);
  ServerConfig cfg;
  cfg.admission.enabled = false;
  Server srv(cfg, cost);
  const ServingReport rep = srv.run(generate_trace(overload_traffic()));
  EXPECT_EQ(rep.shed + rep.rejected, 0);  // everything admitted and served
  EXPECT_EQ(rep.completed, rep.offered);
  EXPECT_GT(rep.slo_violations, 0);  // ...late
}

TEST(Server, DeadlineExpiryMidCoalesceShedsHonestly) {
  // A request whose SLO (5 ms) expires while the batcher is still waiting
  // for company (max_wait 100 ms): it must be shed -- and reported -- when
  // its timeout finally forms the batch, not silently dropped. A second
  // arrival far in the future keeps the trace "live" through the wait (at
  // end-of-trace the batcher drains immediately instead of coalescing).
  SyntheticCostProvider cost(4);  // exec(1) = 1.3 ms < SLO: admission admits
  ServerConfig cfg;
  cfg.batcher.max_wait_us = 100e3;
  std::vector<Request> trace{req(0, "resnet", 1, 0.0, /*slo_us=*/5e3),
                             req(1, "resnet", 1, 500e3)};
  Server srv(cfg, cost);
  const ServingReport rep = srv.run(trace);
  EXPECT_EQ(rep.completed, 1);  // the sentinel
  EXPECT_EQ(rep.rejected, 0);
  EXPECT_EQ(rep.shed, 1);
  ASSERT_EQ(rep.records.size(), 2u);
  EXPECT_EQ(rep.records[0].outcome, Outcome::Shed);
  EXPECT_EQ(rep.records[1].outcome, Outcome::Completed);
  // Shed at batch-formation time (the head timeout), after the deadline.
  EXPECT_GE(rep.records[0].finish_us, trace[0].deadline_us());
}

TEST(Server, SplitRequestCompletesWhenItsLastSliceDoes) {
  SyntheticCostProvider cost(4);
  ServerConfig cfg;  // max_batch 8
  std::vector<Request> trace{req(0, "resnet", 20, 0.0)};
  Server srv(cfg, cost);
  const ServingReport rep = srv.run(trace);
  EXPECT_EQ(rep.completed, 1);
  EXPECT_EQ(rep.batches, 3);  // 8 + 8 + 4
  // All three parts start at t=0 on idle chips; completion is the slowest
  // part (a size-8 sub-batch: 300 us launch + 2 images/group * 1000 us).
  EXPECT_DOUBLE_EQ(rep.records[0].latency_us, 2300.0);
  EXPECT_EQ(rep.records[0].wasted_us, 0.0);
}

TEST(Server, DynamicBatchingSustainsAtLeastTwiceFifoThroughput) {
  // Equal offered load (same trace), saturating the FIFO baseline: the
  // batcher's 2x comes from amortizing launches and running every core
  // group, vs batch-1 FIFO's single-group single-image dispatches.
  const std::vector<Request> trace = generate_trace(overload_traffic());
  SyntheticCostProvider cost(4);
  Server dynamic(ServerConfig{}, cost);
  const ServingReport dyn = dynamic.run(trace);
  ServerConfig fifo_cfg;
  fifo_cfg.batcher.coalesce = false;
  Server fifo(fifo_cfg, cost);
  const ServingReport ff = fifo.run(trace);
  EXPECT_GT(ff.throughput_ips, 0.0);
  EXPECT_GE(dyn.throughput_ips, 2.0 * ff.throughput_ips)
      << "dynamic " << dyn.throughput_ips << " img/s vs fifo "
      << ff.throughput_ips;
}

TEST(Server, ReportsAreByteIdenticalAcrossRuns) {
  const std::vector<Request> trace = generate_trace(overload_traffic());
  SyntheticCostProvider c1(4), c2(4);
  Server s1(ServerConfig{}, c1), s2(ServerConfig{}, c2);
  EXPECT_EQ(s1.run(trace).json(), s2.run(trace).json());
}

TEST(Server, RejectsMalformedTraces) {
  SyntheticCostProvider cost(4);
  Server srv(ServerConfig{}, cost);
  std::vector<Request> unsorted{req(0, "resnet", 1, 10.0),
                                req(1, "resnet", 1, 5.0)};
  EXPECT_THROW(srv.run(unsorted), CheckError);
  std::vector<Request> dup{req(0, "resnet", 1, 0.0),
                           req(0, "resnet", 1, 1.0)};
  EXPECT_THROW(srv.run(dup), CheckError);
}

TEST(Server, EmitsServeCountersAndFleetTraceEvents) {
  obs::Options oo;
  oo.enabled = true;
  obs::Recorder rec(oo);
  SyntheticCostProvider cost(4);
  Server srv(ServerConfig{}, cost, &rec);
  const ServingReport rep = srv.run(generate_trace(overload_traffic()));
  const obs::ServeCounters& sc = rec.counters().serve;
  EXPECT_EQ(sc.requests_offered, rep.offered);
  EXPECT_EQ(sc.requests_completed, rep.completed);
  EXPECT_EQ(sc.requests_rejected, rep.rejected);
  EXPECT_EQ(sc.requests_shed, rep.shed);
  EXPECT_EQ(sc.batches_dispatched, rep.batches);
  EXPECT_GT(sc.busy_us, 0.0);
  bool saw_chip_span = false, saw_admission_instant = false;
  for (const obs::TraceEvent& e : rec.buffer().snapshot()) {
    if (e.pid != 2) continue;
    if (!e.instant && e.tid >= obs::Track::kServeChip0 &&
        e.tid < obs::Track::kServeChip0 + 4)
      saw_chip_span = true;
    if (e.instant && e.tid == obs::Track::kServeAdmission)
      saw_admission_instant = true;
  }
  EXPECT_TRUE(saw_chip_span);
  EXPECT_TRUE(saw_admission_instant);
}

// --- Engine-backed costs ------------------------------------------------

TEST(EngineCost, MemoizesAndSharesTheScheduleCacheAcrossProfiles) {
  EngineCostProvider cost;
  const ChipCost first = cost.cost("resnet", 2);
  EXPECT_TRUE(first.profiled_fresh);
  EXPECT_GT(first.cycles, 0.0);
  EXPECT_EQ(first.groups, 2);  // min(groups_per_chip, images)
  const ChipCost again = cost.cost("resnet", 2);
  EXPECT_FALSE(again.profiled_fresh);
  EXPECT_EQ(again.cycles, first.cycles);
  // A second profile at another sub-batch re-tunes only what the shared
  // (persistent-Optimizer) schedule cache has not seen.
  const ChipCost other = cost.cost("resnet", 1);
  EXPECT_TRUE(other.profiled_fresh);
  const CostProviderStats st = cost.stats();
  EXPECT_EQ(st.profiles, 2);
  EXPECT_EQ(st.memo_hits, 1);
  EXPECT_GT(st.cache_hits, 0) << "second profile should warm-hit the cache";
}

TEST(EngineCost, CostsAreInvariantToTunerThreadCount) {
  SwatopConfig one;
  one.tune_threads = 1;
  SwatopConfig four;
  four.tune_threads = 4;
  EngineCostProvider c1(one), c4(four);
  EXPECT_EQ(c1.cost("resnet", 2).cycles, c4.cost("resnet", 2).cycles);
}

TEST(EngineCost, ServingRunIsByteIdenticalAtAnyTunerThreadCount) {
  TrafficConfig t;
  t.seed = 11;
  t.duration_s = 0.4;
  t.rate_rps = 60.0;
  t.mix = {{"resnet", 1.0, 200.0}};
  t.sizes = {1, 2};
  t.size_weights = {1.0, 1.0};
  const std::vector<Request> trace = generate_trace(t);
  SwatopConfig one;
  one.tune_threads = 1;
  SwatopConfig many;
  many.tune_threads = 0;  // hardware concurrency
  EngineCostProvider c1(one), cn(many);
  Server s1(ServerConfig{}, c1), sn(ServerConfig{}, cn);
  EXPECT_EQ(s1.run(trace).json(), sn.run(trace).json());
}

}  // namespace
}  // namespace swatop::serve
