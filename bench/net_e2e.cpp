// End-to-end network benchmark on the graph engine: VGG16 / ResNet / YOLO
// executed whole (timing mode) with the batch split across the 4 core
// groups. Prints a table and writes BENCH_net_e2e.json (shared bench_util
// emitter) with the machine-readable series (GFLOPS, ms/image, planned peak
// bytes) so CI can track chip-level end-to-end performance, not just
// per-operator numbers.
//
// Quick mode runs batch 8; SWATOP_FULL=1 runs the paper's batch 32.
#include <cstdio>

#include "bench_util.hpp"
#include "graph/build.hpp"
#include "graph/engine.hpp"

using namespace swatop;

int main() {
  const std::int64_t batch = bench::full_scale() ? 32 : 8;
  bench::print_title("end-to-end networks on the graph engine (4 CGs, "
                     "batch " +
                     std::to_string(batch) + ")");
  bench::BenchJson bj("net_e2e");
  bench::print_row({"network", "layers", "shapes", "GFLOPS", "eff%",
                    "ms/image", "peak MB", "reuse%"});

  for (const char* net : {"vgg16", "resnet", "yolo"}) {
    const graph::Graph g = graph::build_net(net);
    SwatopConfig cfg;
    graph::GraphEngine engine(cfg);
    graph::NetOptions opts;
    opts.groups = 4;
    opts.mode = sim::ExecMode::TimingOnly;
    const graph::NetRunResult r = engine.run(g, batch, opts);

    const double planned_mb =
        static_cast<double>(r.planned_peak_floats) * 4.0 / 1e6;
    const double reuse = 100.0 * static_cast<double>(r.planned_peak_floats) /
                         static_cast<double>(r.naive_floats);
    bench::print_row({net, std::to_string(g.conv_count()),
                      std::to_string(r.shapes_tuned), bench::fmt(r.gflops, 1),
                      bench::fmt(100.0 * r.efficiency, 1),
                      bench::fmt(r.ms_per_image, 2), bench::fmt(planned_mb, 1),
                      bench::fmt(reuse, 0)});

    bj.add(net,
           {{"net", net},
            {"batch", std::to_string(batch)},
            {"groups", "4"}},
           {{"gflops", r.gflops},
            {"efficiency", r.efficiency},
            {"ms_per_image", r.ms_per_image},
            {"sync_cycles", r.sync_cycles},
            {"planned_peak_bytes",
             static_cast<double>(r.planned_peak_floats) * 4.0},
            {"naive_bytes", static_cast<double>(r.naive_floats) * 4.0},
            {"shapes_tuned", static_cast<double>(r.shapes_tuned)},
            {"tune_seconds", r.tune_seconds}},
           r.cycles);
  }
  return 0;
}
