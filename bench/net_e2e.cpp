// End-to-end network benchmark on the graph engine: VGG16 / ResNet / YOLO
// compiled through swatop::compile() (epilogue fusion + inter-layer SPM
// residency on by default) and executed whole (timing mode) with the batch
// split across the 4 core groups. Prints a table and writes two JSON series
// via the shared bench_util emitter:
//   BENCH_net_e2e.json            -- the fused defaults CI tracks,
//   BENCH_net_fusion_ablation.json -- the same nets with fusion and
//     residency forced off, plus the fused-over-unfused speedup, so the
//     bench-regression gate catches both a fused regression and a silent
//     loss of the fusion win itself.
//
// Quick mode runs batch 8; SWATOP_FULL=1 runs the paper's batch 32.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "graph/build.hpp"
#include "graph/compile.hpp"

using namespace swatop;

int main() {
  const std::int64_t batch = bench::full_scale() ? 32 : 8;
  bench::print_title("end-to-end networks on the graph engine (4 CGs, "
                     "batch " +
                     std::to_string(batch) + ")");
  bench::BenchJson bj("net_e2e");
  bench::BenchJson ablation("net_fusion_ablation");
  bench::print_row({"network", "layers", "shapes", "GFLOPS", "eff%",
                    "ms/image", "elided MB", "peak MB", "reuse%"});
  std::vector<std::vector<std::string>> ablation_rows;

  for (const char* net : {"vgg16", "resnet", "yolo"}) {
    CompiledNet compiled = compile(graph::build_net(net));
    graph::NetOptions opts;
    opts.groups = 4;
    opts.mode = sim::ExecMode::TimingOnly;
    const graph::NetRunResult r = compiled.run(batch, opts);

    const double planned_mb =
        static_cast<double>(r.planned_peak_floats) * 4.0 / 1e6;
    const double reuse = 100.0 * static_cast<double>(r.planned_peak_floats) /
                         static_cast<double>(r.naive_floats);
    const double elided_mb =
        static_cast<double>(r.dma_bytes_elided) / 1e6;
    bench::print_row({net,
                      std::to_string(compiled.graph().conv_count()),
                      std::to_string(r.shapes_tuned), bench::fmt(r.gflops, 1),
                      bench::fmt(100.0 * r.efficiency, 1),
                      bench::fmt(r.ms_per_image, 2), bench::fmt(elided_mb, 1),
                      bench::fmt(planned_mb, 1), bench::fmt(reuse, 0)});

    bj.add(net,
           {{"net", net},
            {"batch", std::to_string(batch)},
            {"groups", "4"}},
           {{"gflops", r.gflops},
            {"efficiency", r.efficiency},
            {"ms_per_image", r.ms_per_image},
            {"sync_cycles", r.sync_cycles},
            {"planned_peak_bytes",
             static_cast<double>(r.planned_peak_floats) * 4.0},
            {"naive_bytes", static_cast<double>(r.naive_floats) * 4.0},
            {"shapes_tuned", static_cast<double>(r.shapes_tuned)},
            {"convs_fused", static_cast<double>(r.fusion.convs_fused)},
            {"resident_tensors", static_cast<double>(r.resident_tensors)},
            {"dma_bytes_elided", static_cast<double>(r.dma_bytes_elided)},
            {"tune_seconds", r.tune_seconds}},
           r.cycles);

    // Ablation: the same network with the epilogue fusion pass and the SPM
    // residency pass disabled (run_network's --no-fusion/--no-residency).
    graph::NetOptions plain = opts;
    plain.fusion = false;
    plain.residency = false;
    const graph::NetRunResult u = compiled.run(batch, plain);
    ablation.add(net,
                 {{"net", net},
                  {"batch", std::to_string(batch)},
                  {"groups", "4"}},
                 {{"fused_gflops", r.gflops},
                  {"unfused_gflops", u.gflops},
                  {"fused_cycles", r.cycles},
                  {"unfused_cycles", u.cycles},
                  {"fusion_speedup", u.cycles / r.cycles},
                  {"convs_fused", static_cast<double>(r.fusion.convs_fused)},
                  {"dma_bytes_elided",
                   static_cast<double>(r.dma_bytes_elided)}},
                 0.0);
    ablation_rows.push_back({net, bench::fmt(r.gflops, 1),
                             bench::fmt(u.gflops, 1),
                             bench::fmt(u.cycles / r.cycles, 2) + "x"});
  }

  std::printf("\nfusion ablation (fusion + residency off)\n");
  bench::print_row({"network", "fused", "unfused", "speedup"});
  for (const auto& row : ablation_rows) bench::print_row(row);
  return 0;
}
