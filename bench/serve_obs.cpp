// Serving flight-recorder benchmark and overhead gate.
//
// Serves one fixed-seed synthetic trace (synthetic cost provider, so the
// wall time is the event loop itself, not engine pricing) three ways:
//   telemetry_off    -- the plain server: the wall-time baseline
//   telemetry_on     -- windowed timeline + histograms + burn monitor
//   lifecycle_trace  -- telemetry plus a tracing recorder with 10% of
//                       requests emitting lifecycle span chains
// and reports simulated outcomes (byte-stable, diffed by bench_compare)
// alongside wall-clock timings (metric names contain "seconds", which
// bench_compare skips).
//
// Self-gates, the flight recorder's contract:
//   - the windowed telemetry adds <= 5% wall time over the plain server,
//     OR stays within an absolute budget of 150 ns added per offered
//     request (off/on runs timed interleaved, min per side, so a host
//     load swing hits both sides alike). The absolute arm exists because this
//     microbench's baseline event loop is only ~0.5 us/request (synthetic
//     costs, no engine pricing) -- 5% of that is ~25 ns, below what any
//     real instrumentation can hit and below scheduler noise; against a
//     serving stack doing real per-request work the same recorder is
//     comfortably inside 5%. The map-based prototype recorder cost
//     ~310 ns/request and fails the 150 ns arm. Full tracing is reported
//     but not gated -- it allocates a name string per event by design,
//   - two telemetry runs export byte-identical timeline JSONL and report
//     JSON,
//   - telemetry changes no serving outcome (off/on reports agree),
//   - every sampled request's flow chain is complete ('s' and 'f' counts
//     match the sampled-request count).
//
// Quick mode serves a 20 s arrival window; SWATOP_FULL=1 serves 60 s.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/recorder.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

using namespace swatop;

namespace {

constexpr int kRepeats = 7;

/// Wall seconds of one run of `fn`.
template <typename Fn>
double wall_s(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Minimum wall seconds over kRepeats runs of `fn` (min, not mean: the
/// cleanest run is the best estimate of the code's cost on a noisy box).
template <typename Fn>
double min_wall_s(Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < kRepeats; ++i) {
    const double s = wall_s(fn);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  serve::TrafficConfig traffic;
  traffic.seed = 13;
  traffic.duration_s = bench::full_scale() ? 60.0 : 20.0;
  traffic.rate_rps = 900.0;
  traffic.mix = {{"resnet", 2.0, 30.0}, {"yolo", 1.0, 60.0}};
  traffic.sizes = {1, 2, 4};
  traffic.size_weights = {1.0, 1.0, 1.0};
  const std::vector<serve::Request> trace = serve::generate_trace(traffic);

  serve::ServerConfig base;
  base.fleet.chips = 4;
  base.batcher.max_batch = 8;
  base.batcher.max_wait_us = 2000.0;

  serve::ServerConfig telem = base;
  telem.telemetry.enabled = true;
  telem.telemetry.window_us = 100e3;

  serve::SyntheticCostProvider cost(base.fleet.groups_per_chip);

  bench::print_title(
      "serving flight recorder: telemetry overhead + determinism (" +
      std::string(bench::full_scale() ? "60" : "20") + " s window)");
  bench::BenchJson bj("serve_obs");
  bench::print_row({"case", "offered", "done", "windows", "alerts",
                    "wall_ms"});

  // The gated pair is timed interleaved -- one off run then one on run per
  // round, min per side -- so a sustained load swing on the host inflates
  // both sides alike instead of landing entirely on one of them.
  serve::ServingReport off_rep, on_rep;
  double off_s = 0.0, on_s = 0.0;
  for (int i = 0; i < kRepeats; ++i) {
    const double o = wall_s([&] {
      off_rep = serve::Server(base, cost).run(trace);
    });
    if (i == 0 || o < off_s) off_s = o;
    const double n = wall_s([&] {
      on_rep = serve::Server(telem, cost).run(trace);
    });
    if (i == 0 || n < on_s) on_s = n;
  }
  bj.add("telemetry_off",
         {{"pattern", "poisson"},
          {"rate_rps", bench::fmt(traffic.rate_rps, 0)},
          {"duration_s", bench::fmt(traffic.duration_s, 0)},
          {"seed", std::to_string(traffic.seed)}},
         {{"offered", static_cast<double>(off_rep.offered)},
          {"completed", static_cast<double>(off_rep.completed)},
          {"shed_rate", off_rep.shed_rate},
          {"p50_ms", off_rep.p50_ms},
          {"p99_ms", off_rep.p99_ms},
          {"wall_seconds", off_s}},
         0.0);
  bench::print_row({"telemetry_off", std::to_string(off_rep.offered),
                    std::to_string(off_rep.completed), "0", "0",
                    bench::fmt(off_s * 1e3, 1)});

  const std::string timeline = on_rep.timeline_jsonl();
  bj.add("telemetry_on", {{"window_ms", "100"}},
         {{"offered", static_cast<double>(on_rep.offered)},
          {"completed", static_cast<double>(on_rep.completed)},
          {"windows", static_cast<double>(on_rep.telemetry.windows.size())},
          {"alerts", static_cast<double>(on_rep.telemetry.alerts.size())},
          {"timeline_bytes", static_cast<double>(timeline.size())},
          {"wall_seconds", on_s}},
         0.0);
  bench::print_row({"telemetry_on", std::to_string(on_rep.offered),
                    std::to_string(on_rep.completed),
                    std::to_string(on_rep.telemetry.windows.size()),
                    std::to_string(on_rep.telemetry.alerts.size()),
                    bench::fmt(on_s * 1e3, 1)});

  serve::ServerConfig traced = telem;
  traced.telemetry.trace_sample = 0.1;
  obs::Options oo;
  oo.enabled = true;
  serve::ServingReport tr_rep;
  std::int64_t flow_s = 0, flow_f = 0, events = 0;
  const double tr_s = min_wall_s([&] {
    obs::Recorder rec(oo);
    tr_rep = serve::Server(traced, cost, &rec).run(trace);
    flow_s = flow_f = 0;
    const std::vector<obs::TraceEvent> evs = rec.buffer().snapshot();
    events = static_cast<std::int64_t>(evs.size()) + rec.buffer().dropped();
    for (const obs::TraceEvent& e : evs) {
      if (e.flow == 's') ++flow_s;
      if (e.flow == 'f') ++flow_f;
    }
  });
  bj.add("lifecycle_trace", {{"trace_sample", "0.1"}},
         {{"sampled_requests",
           static_cast<double>(tr_rep.telemetry.sampled_requests)},
          {"flow_starts", static_cast<double>(flow_s)},
          {"flow_ends", static_cast<double>(flow_f)},
          {"trace_events", static_cast<double>(events)},
          {"wall_seconds", tr_s}},
         0.0);
  bench::print_row({"lifecycle_trace", std::to_string(tr_rep.offered),
                    std::to_string(tr_rep.completed),
                    std::to_string(tr_rep.telemetry.windows.size()),
                    std::to_string(tr_rep.telemetry.alerts.size()),
                    bench::fmt(tr_s * 1e3, 1)});

  const double overhead =
      off_s > 0.0 ? (on_s - off_s) / off_s : 0.0;
  const double added_s_per_req =
      off_rep.offered > 0
          ? (on_s - off_s) / static_cast<double>(off_rep.offered)
          : 0.0;
  bj.add("summary", {},
         {{"telemetry_overhead_seconds_frac", overhead},
          {"telemetry_added_seconds_per_request", added_s_per_req},
          {"trace_overhead_seconds_frac",
           off_s > 0.0 ? (tr_s - off_s) / off_s : 0.0}},
         0.0);
  std::printf("\ntelemetry overhead: %.1f%% (%.1f vs %.1f ms, %.0f ns per "
              "request); full lifecycle tracing: %+.1f%%\n",
              100.0 * overhead, on_s * 1e3, off_s * 1e3,
              added_s_per_req * 1e9,
              off_s > 0.0 ? 100.0 * (tr_s - off_s) / off_s : 0.0);

  int failures = 0;
  // Gate 1: telemetry cost -- <= 5% relative, or within the absolute
  // per-request budget (see the header comment for why both arms exist).
  if (overhead > 0.05 && added_s_per_req > 150e-9) {
    std::fprintf(stderr,
                 "FAIL: telemetry added %.1f%% wall time and %.0f ns per "
                 "request (contract: <= 5%% or <= 150 ns/request)\n",
                 100.0 * overhead, added_s_per_req * 1e9);
    ++failures;
  }
  // Gate 2: byte-identical export across runs.
  const serve::ServingReport again = serve::Server(telem, cost).run(trace);
  if (again.timeline_jsonl() != timeline || again.json() != on_rep.json()) {
    std::fprintf(stderr,
                 "FAIL: telemetry export is not byte-identical across runs\n");
    ++failures;
  }
  // Gate 3: telemetry observes, never steers -- outcomes are unchanged.
  if (on_rep.completed != off_rep.completed ||
      on_rep.rejected != off_rep.rejected || on_rep.shed != off_rep.shed ||
      on_rep.p99_ms != off_rep.p99_ms) {
    std::fprintf(stderr, "FAIL: telemetry changed serving outcomes\n");
    ++failures;
  }
  // Gate 4: every sampled request's flow chain opens and closes.
  if (flow_s != tr_rep.telemetry.sampled_requests || flow_s != flow_f) {
    std::fprintf(stderr,
                 "FAIL: flow chains incomplete (%lld sampled, %lld starts, "
                 "%lld ends)\n",
                 static_cast<long long>(tr_rep.telemetry.sampled_requests),
                 static_cast<long long>(flow_s),
                 static_cast<long long>(flow_f));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
