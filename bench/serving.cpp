// Serving front-end benchmark: the dynamic batcher + SLO-aware fleet
// scheduler (src/serve/) on a 4-chip fleet with engine-priced costs.
//
// Four scenarios share one EngineCostProvider (one schedule cache, one
// memo), all driven by fixed-seed synthetic traffic over a resnet+yolo mix:
//   poisson_dynamic      -- dynamic batching + admission (the CI headline)
//   poisson_fifo         -- the *same trace* with coalescing off (batch-1
//                           FIFO): the dynamic-batching ablation
//   bursty_dynamic       -- square-wave bursts at the same mean load
//   bursty_no_admission  -- admission off on the bursty trace: p99 blows up
//                           instead of shedding
//
// Every reported metric is simulated (trace + cycle simulator), so the
// whole BENCH_serving.json is byte-identical run to run and CI diffs it
// against bench/baselines/ exactly like the cycle benches. The run itself
// is also a gate: it exits non-zero if dynamic batching sustains < 2x the
// FIFO image throughput, if an admission-on scenario completes a request
// past its SLO, or if the no-admission ablation sheds anything.
//
// Quick mode serves a 4 s arrival window; SWATOP_FULL=1 serves 12 s.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

using namespace swatop;

namespace {

serve::TrafficConfig base_traffic() {
  serve::TrafficConfig t;
  t.seed = 7;
  t.duration_s = bench::full_scale() ? 12.0 : 4.0;
  t.rate_rps = 120.0;  // ~280 img/s offered: well past FIFO capacity,
                       // comfortably under the dynamic-batching capacity
  t.mix = {{"resnet", 2.0, 150.0}, {"yolo", 1.0, 250.0}};
  t.sizes = {1, 2, 4};
  t.size_weights = {1.0, 1.0, 1.0};
  return t;
}

serve::ServerConfig base_server() {
  serve::ServerConfig s;
  s.fleet.chips = 4;
  s.fleet.groups_per_chip = 4;
  s.batcher.max_batch = 8;
  s.batcher.max_wait_us = 2000.0;
  return s;
}

void add_case(bench::BenchJson& bj, const std::string& name,
              const serve::TrafficConfig& t, const serve::ServingReport& r) {
  bj.add(name,
         {{"pattern", arrival_pattern_name(t.pattern)},
          {"rate_rps", bench::fmt(t.rate_rps, 0)},
          {"duration_s", bench::fmt(t.duration_s, 0)},
          {"chips", "4"},
          {"seed", std::to_string(t.seed)}},
         {{"offered", static_cast<double>(r.offered)},
          {"completed", static_cast<double>(r.completed)},
          {"shed_rate", r.shed_rate},
          {"p50_ms", r.p50_ms},
          {"p99_ms", r.p99_ms},
          {"throughput_rps", r.throughput_rps},
          {"throughput_ips", r.throughput_ips},
          {"slo_violations", static_cast<double>(r.slo_violations)},
          {"mean_batch_images", r.mean_batch_images},
          {"utilization", r.utilization}},
         0.0);
  bench::print_row({name, std::to_string(r.offered),
                    std::to_string(r.completed), bench::fmt(r.shed_rate, 3),
                    bench::fmt(r.p50_ms, 2), bench::fmt(r.p99_ms, 2),
                    bench::fmt(r.throughput_ips, 1),
                    std::to_string(r.slo_violations)});
}

}  // namespace

int main() {
  const serve::TrafficConfig poisson = base_traffic();
  serve::TrafficConfig bursty = base_traffic();
  bursty.pattern = serve::ArrivalPattern::Bursty;
  // Same *mean* load as the Poisson scenario:
  // rate * (1 + (factor-1) * fraction) = rate_rps.
  bursty.burst_factor = 6.0;
  bursty.burst_fraction = 0.25;
  bursty.rate_rps = poisson.rate_rps / 2.25;

  bench::print_title(
      "serving: dynamic batching + SLO admission, 4-chip fleet (" +
      std::string(bench::full_scale() ? "12" : "4") + " s window)");
  bench::BenchJson bj("serving");
  bench::print_row({"scenario", "offered", "done", "shed", "p50ms", "p99ms",
                    "img/s", "late"});

  // One engine across all scenarios: every (net, ladder size) prices once.
  serve::EngineCostProvider cost(SwatopConfig{});

  const std::vector<serve::Request> ptrace = serve::generate_trace(poisson);
  const std::vector<serve::Request> btrace = serve::generate_trace(bursty);

  serve::ServerConfig dyn = base_server();
  const serve::ServingReport rd = serve::Server(dyn, cost).run(ptrace);
  add_case(bj, "poisson_dynamic", poisson, rd);

  serve::ServerConfig fifo = base_server();
  fifo.batcher.coalesce = false;
  const serve::ServingReport rf = serve::Server(fifo, cost).run(ptrace);
  add_case(bj, "poisson_fifo", poisson, rf);

  const serve::ServingReport rb = serve::Server(dyn, cost).run(btrace);
  add_case(bj, "bursty_dynamic", bursty, rb);

  // Admission ablation on the *bursty* trace, whose peaks overload the
  // fleet: with admission on it sheds through the bursts and p99 stays
  // inside the SLO; with it off everything completes, however late.
  serve::ServerConfig noadm = base_server();
  noadm.admission.enabled = false;
  const serve::ServingReport rn = serve::Server(noadm, cost).run(btrace);
  add_case(bj, "bursty_no_admission", bursty, rn);

  const double speedup =
      rf.throughput_ips > 0.0 ? rd.throughput_ips / rf.throughput_ips : 0.0;
  const serve::CostProviderStats cs = cost.stats();
  bj.add("summary", {{"chips", "4"}},
         {{"dynamic_over_fifo_ips", speedup},
          {"profiles", static_cast<double>(cs.profiles)},
          {"memo_hits", static_cast<double>(cs.memo_hits)},
          {"shapes_tuned", static_cast<double>(cs.shapes_tuned)},
          {"schedule_cache_hits", static_cast<double>(cs.cache_hits)}},
         0.0);
  std::printf("\ndynamic over FIFO sustained throughput: %.2fx "
              "(%.1f vs %.1f img/s); %lld profiles, %lld memo hits\n",
              speedup, rd.throughput_ips, rf.throughput_ips,
              static_cast<long long>(cs.profiles),
              static_cast<long long>(cs.memo_hits));

  // Self-gates: these are the serving subsystem's contract, not tolerances.
  int failures = 0;
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: dynamic batching sustained only %.2fx FIFO "
                 "throughput (contract: >= 2x)\n",
                 speedup);
    ++failures;
  }
  for (const auto* r : {&rd, &rf, &rb}) {
    if (r->slo_violations != 0) {
      std::fprintf(stderr,
                   "FAIL: %lld completed requests missed their SLO with "
                   "admission control on\n",
                   static_cast<long long>(r->slo_violations));
      ++failures;
    }
  }
  if (rn.rejected + rn.shed != 0) {
    std::fprintf(stderr,
                 "FAIL: no-admission ablation shed %lld requests\n",
                 static_cast<long long>(rn.rejected + rn.shed));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
