// Ablation: the eight GEMM micro-kernel variants (layouts x vectorization
// dimension) across tile shapes -- the cost surface the scheduler's layout
// and vectorization transformations explore. Also uses google-benchmark to
// measure the real wall-clock cost of the pipeline simulation and model
// fitting machinery itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "isa/kernel_cache.hpp"
#include "tune/gemm_model.hpp"

using namespace swatop;

namespace {

const sim::SimConfig cfg;

void print_variant_table() {
  bench::print_title("Ablation -- the 8 GEMM micro-kernel variants");
  bench::BenchJson bj("ablation_kernel_variants");
  const auto& db = isa::kernel_cost_db(cfg);
  bench::print_row({"variant", "128^3 GF", "256x64x128 GF", "per-iter"},
                   20);
  for (const auto& v : isa::all_kernel_variants()) {
    const double c1 = db.spm_gemm_cycles(v, 128, 128, 128);
    const double gf1 =
        2.0 * 128 * 128 * 128 / c1 * cfg.clock_ghz;
    const double c2 = db.spm_gemm_cycles(v, 256, 64, 128);
    const double gf2 = 2.0 * 256 * 64 * 128 / c2 * cfg.clock_ghz;
    bench::print_row({v.name(), bench::fmt(gf1, 1), bench::fmt(gf2, 1),
                      bench::fmt(db.per_iter_cycles(v, {4, 4}), 2)},
                     20);
    bj.add(v.name(), {{"variant", v.name()}},
           {{"gflops_128c", gf1},
            {"gflops_256x64x128", gf2},
            {"per_iter_cycles", db.per_iter_cycles(v, {4, 4})}},
           c1);
  }
  std::printf("favourable layouts sustain 16 vmad / ~16 cycles; row-major "
              "vector operands pay scalar lane assembly on P1\n\n");
}

void BM_PipelineSteadyState(benchmark::State& state) {
  const isa::PipelineSim sim(cfg);
  const auto body = isa::emit_kernel_pair(
      isa::KernelVariant::from_index(static_cast<int>(state.range(0))),
      {4, 4}, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.steady_state_cycles(body));
  }
}
BENCHMARK(BM_PipelineSteadyState)->DenseRange(0, 7);

void BM_GemmModelFit(benchmark::State& state) {
  const auto& db = isa::kernel_cost_db(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tune::GemmCostModel::fit(db));
  }
}
BENCHMARK(BM_GemmModelFit);

}  // namespace

int main(int argc, char** argv) {
  print_variant_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
