// Fig. 7: explicit-GEMM (im2col) convolution, swATOP's tuned GEMM core vs
// the manual version (im2col + one xMath call), on the conv layers of the
// three networks.
#include <cstdio>

#include "bench_util.hpp"
#include "nets/nets.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Fig. 7 -- Explicit CONV: swATOP vs manual (xMath)");
  bench::BenchJson bj("fig7_explicit_conv");

  const std::vector<std::pair<std::string, std::vector<nets::LayerDef>>>
      networks = {{"VGG16", nets::vgg16()},
                  {"ResNet", nets::resnet()},
                  {"YOLO", nets::yolo()}};
  const std::vector<std::int64_t> batches =
      bench::full_scale() ? std::vector<std::int64_t>{1, 32, 128}
                          : std::vector<std::int64_t>{1, 32};

  int faster = 0, slower = 0;
  double best_speedup = 0.0;
  for (const auto& [net, all_layers] : networks) {
    const auto layers =
        bench::full_scale() ? all_layers : nets::distinct(all_layers);
    for (const std::int64_t b : batches) {
      std::printf("\n-- %s, batch %lld --\n", net.c_str(),
                  static_cast<long long>(b));
      bench::print_row({"layer", "swATOP(GF)", "manual(GF)", "speedup"});
      std::vector<double> speedups;
      for (const auto& l : layers) {
        const ops::ConvShape s = nets::to_shape(l, b);
        const bench::MethodResult r = bench::run_explicit(s, cfg);
        const double manual_gf = static_cast<double>(s.flops()) /
                                 r.manual_cycles * cfg.clock_ghz;
        bench::print_row({l.name, bench::fmt(r.gflops, 1),
                          bench::fmt(manual_gf, 1),
                          bench::fmt(r.speedup()) + "x"});
        speedups.push_back(r.speedup());
        bench::add_conv_case(bj, net, b, l.name, s, r);
        (r.speedup() >= 1.0 ? faster : slower) += 1;
        if (r.speedup() > best_speedup) best_speedup = r.speedup();
      }
      if (!speedups.empty())
        std::printf("average speedup over manual explicit: %.2fx\n",
                    bench::geomean(speedups));
    }
  }
  std::printf("\noverall: swATOP faster in %d cases, slower in %d; best "
              "speedup %.1fx (paper: faster in most cases, best 15.2x)\n",
              faster, slower, best_speedup);
  return 0;
}
