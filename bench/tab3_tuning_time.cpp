// Table 3: tuning time of the implicit CONV layers of the three CNNs --
// black-box autotuning (run every candidate through the timing interpreter,
// this reproduction's stand-in for executing on hardware) vs swATOP's
// performance-model-based autotuner.
#include <cstdio>

#include "bench_util.hpp"
#include "nets/nets.hpp"
#include "ops/implicit_conv.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Table 3 -- tuning time: black-box vs swATOP");
  bench::BenchJson bj("tab3_tuning_time");

  const std::vector<std::pair<std::string, std::vector<nets::LayerDef>>>
      networks = {{"VGG16", nets::vgg16()},
                  {"ResNet", nets::resnet()},
                  {"YOLO", nets::yolo()}};
  const std::int64_t batch = 32;
  const std::size_t max_layers = bench::full_scale() ? 64 : 3;

  bench::print_row({"network", "layers", "space", "blackbox(s)",
                    "swATOP(s)", "speedup"});
  for (const auto& [net, all_layers] : networks) {
    const auto distinct = nets::distinct(all_layers);
    std::int64_t total_space = 0;
    double bb_seconds = 0.0, model_seconds = 0.0;
    std::size_t used = 0;
    for (const auto& l : distinct) {
      if (used >= max_layers) break;
      // Brute-forcing the very large spatial layers takes hours even on
      // the simulator (that is Table 3's point); the quick sweep sticks to
      // the deeper layers.
      if (!bench::full_scale() && l.out_hw > 28) continue;
      const ops::ConvShape s = nets::to_shape(l, batch);
      if (!ops::ImplicitConvOp::applicable(s)) continue;
      const ops::ImplicitConvOp op(s);
      const tune::BlackBoxTuner bb(cfg);
      const auto bb_res = bb.tune(op);
      const tune::ModelTuner mt(cfg);
      const auto mt_res = mt.tune(op);
      total_space += bb_res.best.stats.space_size;
      bb_seconds += bb_res.best.stats.seconds;
      model_seconds += mt_res.stats.seconds;
      ++used;
    }
    bench::print_row({net, std::to_string(used), std::to_string(total_space),
                      bench::fmt(bb_seconds, 1),
                      bench::fmt(model_seconds, 1),
                      bench::fmt(bb_seconds / model_seconds, 0) + "x"});
    bj.add(net, {{"net", net}, {"layers", std::to_string(used)}},
           {{"space", static_cast<double>(total_space)},
            {"blackbox_seconds", bb_seconds},
            {"model_seconds", model_seconds},
            {"speedup",
             model_seconds > 0.0 ? bb_seconds / model_seconds : 0.0}},
           0.0);
  }
  std::printf("\npaper: 47h50m -> 6m21s (454x), 83h -> 14m (353x), "
              "60h -> 10m (365x); our black-box runs a simulator, not "
              "silicon, so absolute times differ while the ratio holds\n");
  return 0;
}
