// Fig. 8: absolute throughput (GFLOPS, normalized to direct-convolution
// flops) and fraction of peak for the three swATOP convolution methods over
// the Listing 1 sweep. Winograd may exceed 100% by construction.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/winograd.hpp"

using namespace swatop;

namespace {

struct Agg {
  std::vector<double> gflops, eff;
  void add(const bench::MethodResult& r) {
    gflops.push_back(r.gflops);
    eff.push_back(r.efficiency);
  }
  void add_case(bench::BenchJson& bj, const char* name,
                std::int64_t batch) const {
    if (gflops.empty()) return;
    bj.add(std::string(name) + "/b" + std::to_string(batch),
           {{"method", name}, {"batch", std::to_string(batch)}},
           {{"avg_gflops", bench::geomean(gflops)},
            {"avg_efficiency", bench::geomean(eff)},
            {"best_gflops", *std::max_element(gflops.begin(), gflops.end())},
            {"worst_gflops", *std::min_element(gflops.begin(), gflops.end())}},
           0.0);
  }
  void report(const char* name) const {
    if (gflops.empty()) return;
    std::printf("%-10s avg %7.1f GFLOPS (%5.1f%% of peak)   best %7.1f "
                "(%5.1f%%)   worst %7.1f (%5.1f%%)\n",
                name, bench::geomean(gflops),
                bench::geomean(eff) * 100.0,
                *std::max_element(gflops.begin(), gflops.end()),
                *std::max_element(eff.begin(), eff.end()) * 100.0,
                *std::min_element(gflops.begin(), gflops.end()),
                *std::min_element(eff.begin(), eff.end()) * 100.0);
  }
};

}  // namespace

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Fig. 8 -- throughput/efficiency of the 3 CONV methods");
  bench::BenchJson bj("fig8_efficiency");
  std::printf("peak (one core group): %.1f GFLOPS\n", cfg.peak_gflops());

  const std::vector<std::int64_t> batches =
      bench::full_scale() ? std::vector<std::int64_t>{1, 32, 128}
                          : std::vector<std::int64_t>{1, 32};
  for (const std::int64_t b : batches) {
    Agg implicit_a, winograd_a, explicit_a;
    for (const auto& s : bench::listing1_shapes(b)) {
      if (ops::ImplicitConvOp::applicable(s))
        implicit_a.add(bench::run_implicit(s, cfg));
      if (ops::WinogradPlan::applicable(s))
        winograd_a.add(bench::run_winograd(s, cfg));
      explicit_a.add(bench::run_explicit(s, cfg));
    }
    std::printf("\nbatch %lld:\n", static_cast<long long>(b));
    implicit_a.report("Implicit");
    winograd_a.report("Winograd");
    explicit_a.report("Explicit");
    implicit_a.add_case(bj, "Implicit", b);
    winograd_a.add_case(bj, "Winograd", b);
    explicit_a.add_case(bj, "Explicit", b);
  }
  std::printf("\npaper: Implicit ~70%% efficiency; Winograd best near 120%%; "
              "Explicit lowest (pre/post passes dominate)\n");
  return 0;
}
