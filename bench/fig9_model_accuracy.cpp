// Fig. 9: how much performance the performance-model-based autotuner leaves
// on the table vs brute force, over the Listing 1 implicit-CONV sweep:
// ratio of (measured time of the model-picked candidate) to (measured best
// over all candidates). Paper: < 2% average loss, < 8% worst case.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "ops/implicit_conv.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Fig. 9 -- model-based pick vs brute-force best");

  bench::BenchJson bj("fig9_model_accuracy");
  const std::int64_t batch = 32;
  std::vector<double> ratios, ratios_topk;
  bench::print_row({"Ni", "No", "Ro", "candidates", "best/picked",
                    "best/top8"});
  for (const auto& s : bench::listing1_shapes(batch)) {
    if (!ops::ImplicitConvOp::applicable(s)) continue;
    // Brute force walks every candidate through the interpreter; keep the
    // quick sweep to the small spatial sizes.
    if (!bench::full_scale() && s.ro() > 32) continue;
    const ops::ImplicitConvOp op(s);
    const tune::BlackBoxTuner bb(cfg);
    const auto best = bb.tune(op);
    const tune::ModelTuner mt(cfg);
    const auto picked = mt.tune(op);
    const double picked_measured =
        tune::measure_candidate(op, picked.candidate, cfg);
    const double ratio = best.best.cycles / picked_measured;  // <= 1
    ratios.push_back(ratio);
    // The paper's "(or top k)" refinement: measure the model's 8 best.
    const auto top8 = mt.tune_top_k(op, 8);
    const double ratio8 = best.best.cycles / top8.cycles;
    ratios_topk.push_back(ratio8);
    bench::print_row({std::to_string(s.ni), std::to_string(s.no),
                      std::to_string(s.ro()),
                      std::to_string(best.best.stats.valid_candidates),
                      bench::fmt(ratio, 3), bench::fmt(ratio8, 3)});
    bj.add("ni" + std::to_string(s.ni) + "/no" + std::to_string(s.no) +
               "/ro" + std::to_string(s.ro()),
           {{"ni", std::to_string(s.ni)},
            {"no", std::to_string(s.no)},
            {"ro", std::to_string(s.ro())}},
           {{"retained", ratio},
            {"retained_top8", ratio8},
            {"candidates",
             static_cast<double>(best.best.stats.valid_candidates)}},
           picked_measured);
  }
  const double avg = bench::geomean(ratios);
  const double worst = *std::min_element(ratios.begin(), ratios.end());
  std::printf("\naverage performance retained: %.1f%% (paper: > 98%%)\n",
              avg * 100.0);
  std::printf("worst case retained: %.1f%% (paper: > 92%%)\n",
              worst * 100.0);
  std::printf("with top-8 measurement: avg %.1f%%, worst %.1f%%\n",
              bench::geomean(ratios_topk) * 100.0,
              *std::min_element(ratios_topk.begin(), ratios_topk.end()) *
                  100.0);
  return 0;
}
