// Fig. 10: automatic memory-latency hiding -- the same tuned schedule with
// and without the double-buffering pass, on implicit-CONV configurations.
// Paper: +65.4% average improvement even on the baseline's best cases.
#include <cstdio>

#include "bench_util.hpp"
#include "ops/implicit_conv.hpp"
#include "sched/scheduler.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Fig. 10 -- auto-prefetch (double buffering) ablation");
  bench::BenchJson bj("fig10_prefetch");

  // Eight configurations, as in the paper.
  struct P {
    std::int64_t ni, no, ro, batch;
  };
  const std::vector<P> params = {
      {64, 64, 64, 32},  {128, 64, 64, 32},  {128, 128, 64, 32},
      {256, 128, 32, 32}, {256, 256, 32, 32}, {384, 256, 32, 32},
      {512, 256, 32, 32}, {512, 512, 32, 32},
  };

  bench::print_row({"Ni", "No", "Ro", "no-prefetch", "prefetch", "gain"});
  std::vector<double> gains;
  for (const P& p : params) {
    ops::ConvShape s;
    s.batch = p.batch;
    s.ni = p.ni;
    s.no = p.no;
    s.ri = p.ro + 2;
    s.ci = p.ro + 2;
    const ops::ImplicitConvOp op(s);

    // Tune *without* prefetch (the baseline's best schedule), then apply
    // double buffering to the same strategy.
    sched::SchedulerOptions no_pf;
    no_pf.opt.prefetch = false;
    const tune::ModelTuner tuner(cfg);
    const auto base = tuner.tune(op, no_pf);
    const double t_base = tune::measure_candidate(op, base.candidate, cfg);
    const double t_pf = tune::measure_strategy(
        op, base.candidate.strategy, cfg, /*prefetch=*/true);
    const double gain = t_base / t_pf - 1.0;
    gains.push_back(1.0 + gain);
    char gain_cell[32];
    std::snprintf(gain_cell, sizeof gain_cell, "+%.1f%%", gain * 100.0);
    bench::print_row({std::to_string(p.ni), std::to_string(p.no),
                      std::to_string(p.ro), bench::fmt(t_base, 0),
                      bench::fmt(t_pf, 0), std::string(gain_cell)});
    bj.add("ni" + std::to_string(p.ni) + "/no" + std::to_string(p.no) +
               "/ro" + std::to_string(p.ro),
           {{"ni", std::to_string(p.ni)},
            {"no", std::to_string(p.no)},
            {"ro", std::to_string(p.ro)}},
           {{"no_prefetch_cycles", t_base},
            {"prefetch_cycles", t_pf},
            {"gain", gain}},
           t_pf);
  }
  std::printf("\naverage improvement from auto-prefetching: +%.1f%% "
              "(paper: +65.4%%)\n",
              (bench::geomean(gains) - 1.0) * 100.0);
  return 0;
}
