// Table 1: the Listing 1 parameter sweep -- for every configuration and
// batch size, is swATOP faster or slower than the best manual version of
// each convolution method, and by how much on average.
#include <cstdio>

#include "bench_util.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/winograd.hpp"

using namespace swatop;

namespace {

struct Tally {
  int faster = 0, slower = 0, no_manual = 0;
  std::vector<double> up, down;
};

void account(Tally& t, const bench::MethodResult& r) {
  if (r.manual_cycles <= 0.0) {
    ++t.no_manual;
    return;
  }
  const double sp = r.speedup();
  if (sp >= 1.0) {
    ++t.faster;
    t.up.push_back(sp);
  } else {
    ++t.slower;
    t.down.push_back(sp);
  }
}

void add_case(bench::BenchJson& bj, const char* method, std::int64_t batch,
              const Tally& t) {
  bj.add(std::string(method) + "/b" + std::to_string(batch),
         {{"method", method}, {"batch", std::to_string(batch)}},
         {{"faster", static_cast<double>(t.faster)},
          {"slower", static_cast<double>(t.slower)},
          {"no_manual", static_cast<double>(t.no_manual)},
          {"avg_gain", t.up.empty() ? 0.0 : bench::geomean(t.up) - 1.0},
          {"avg_loss", t.down.empty() ? 0.0 : bench::geomean(t.down) - 1.0}},
         0.0);
}

void report(const char* method, std::int64_t batch, const Tally& t) {
  std::printf("%-10s batch=%-4lld faster: %3d (avg +%5.1f%%)   slower: %3d "
              "(avg %5.1f%%)   no-manual: %d\n",
              method, static_cast<long long>(batch), t.faster,
              t.up.empty() ? 0.0 : (bench::geomean(t.up) - 1.0) * 100.0,
              t.slower,
              t.down.empty() ? 0.0
                             : (bench::geomean(t.down) - 1.0) * 100.0,
              t.no_manual);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const sim::SimConfig cfg;
  bench::print_title(
      "Table 1 -- Listing 1 sweep: swATOP vs best manual, 3 methods");
  bench::BenchJson bj("tab1_sweep");

  const std::vector<std::int64_t> batches =
      bench::full_scale() ? std::vector<std::int64_t>{1, 32, 128}
                          : std::vector<std::int64_t>{1, 32};
  for (const std::int64_t b : batches) {
    Tally implicit_t, winograd_t, explicit_t;
    const auto shapes = bench::listing1_shapes(b);
    for (const auto& s : shapes) {
      if (ops::ImplicitConvOp::applicable(s))
        account(implicit_t, bench::run_implicit(s, cfg));
      if (ops::WinogradPlan::applicable(s))
        account(winograd_t, bench::run_winograd(s, cfg));
      account(explicit_t, bench::run_explicit(s, cfg));
    }
    std::printf("\n%zu configurations at batch %lld:\n", shapes.size(),
                static_cast<long long>(b));
    report("Implicit", b, implicit_t);
    report("Winograd", b, winograd_t);
    report("Explicit", b, explicit_t);
    add_case(bj, "Implicit", b, implicit_t);
    add_case(bj, "Winograd", b, winograd_t);
    add_case(bj, "Explicit", b, explicit_t);
  }
  std::printf("\npaper: Implicit/Winograd faster in 100%% of cases, "
              "Explicit in ~75%%; Winograd avg ~+300%%\n");
  return 0;
}
