// Schedule-cache warm-vs-cold tuning time on the VGG16 implicit CONV layer
// set: the cold pass compiles every layer from scratch (swatop::compile()
// appends each winner to the on-disk cache as it goes); the warm pass
// re-compiles the same layers and must serve every one from the banked
// entries, rebuilding only the strategy's IR. The warm pick must be the
// identical Strategy, and the warm pass is expected to be >= 10x faster.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "graph/compile.hpp"
#include "nets/nets.hpp"
#include "ops/implicit_conv.hpp"

using namespace swatop;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::print_title("schedule cache -- warm vs cold tuning time (VGG16)");

  const std::string cache_path =
      (std::filesystem::temp_directory_path() / "swatop_bench_tune.cache")
          .string();
  std::filesystem::remove(cache_path);

  SwatopConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.path = cache_path;

  const std::int64_t batch = 32;
  const std::size_t max_layers = bench::full_scale() ? 64 : 4;
  std::vector<ops::ImplicitConvOp> ops;
  for (const auto& l : nets::distinct(nets::vgg16())) {
    if (ops.size() >= max_layers) break;
    // The quick sweep sticks to the deeper layers, like bench_tab3.
    if (!bench::full_scale() && l.out_hw > 28) continue;
    const ops::ConvShape s = nets::to_shape(l, batch);
    if (!ops::ImplicitConvOp::applicable(s)) continue;
    ops.emplace_back(s);
  }

  bench::print_row({"pass", "layers", "hits", "seconds"});

  std::vector<dsl::Strategy> cold_picks;
  double cold_seconds = 0.0;
  {
    const double t0 = now_seconds();
    for (const auto& op : ops) {
      cold_picks.push_back(compile(op, cfg).handle().candidate.strategy);
    }
    cold_seconds = now_seconds() - t0;
  }
  bench::print_row({"cold", std::to_string(ops.size()), "0",
                    bench::fmt(cold_seconds, 2)});

  double warm_seconds = 0.0;
  std::size_t hits = 0, mismatches = 0;
  {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      // Fresh compile(): every banked strategy must come off the disk.
      const CompiledOp compiled = compile(ops[i], cfg);
      if (compiled.handle().from_cache) ++hits;
      if (!(compiled.handle().candidate.strategy == cold_picks[i]))
        ++mismatches;
    }
    warm_seconds = now_seconds() - t0;
  }
  bench::print_row({"warm", std::to_string(ops.size()), std::to_string(hits),
                    bench::fmt(warm_seconds, 2)});

  const double speedup = cold_seconds / warm_seconds;
  std::printf("\nwarm served %zu/%zu layers from cache, %zu strategy "
              "mismatches, speedup %sx (target >= 10x: %s)\n",
              hits, ops.size(), mismatches, bench::fmt(speedup, 1).c_str(),
              speedup >= 10.0 ? "PASS" : "FAIL");
  bench::BenchJson bj("tune_cache");
  bj.add("cold", {{"pass", "cold"}, {"layers", std::to_string(ops.size())}},
         {{"seconds", cold_seconds}, {"hits", 0.0}}, 0.0);
  bj.add("warm", {{"pass", "warm"}, {"layers", std::to_string(ops.size())}},
         {{"seconds", warm_seconds},
          {"hits", static_cast<double>(hits)},
          {"speedup", speedup}},
         0.0);
  std::filesystem::remove(cache_path);
  return (hits == ops.size() && mismatches == 0 && speedup >= 10.0) ? 0 : 1;
}
