// Fig. 5: swATOP vs swDNN (the hand-optimized manual implicit convolution)
// on the conv layers of VGG16, ResNet and YOLO at batch 1 / 32 / 128.
// First layers (Ni = 3) are excluded, as in the paper; at batch 1 no manual
// implementation exists, so only swATOP's achieved throughput is shown.
#include <cstdio>

#include "bench_util.hpp"
#include "nets/nets.hpp"
#include "ops/implicit_conv.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Fig. 5 -- Implicit CONV: swATOP vs swDNN");
  bench::BenchJson bj("fig5_implicit_conv");

  const std::vector<std::pair<std::string, std::vector<nets::LayerDef>>>
      networks = {{"VGG16", nets::vgg16()},
                  {"ResNet", nets::resnet()},
                  {"YOLO", nets::yolo()}};
  const std::vector<std::int64_t> batches =
      bench::full_scale() ? std::vector<std::int64_t>{1, 32, 128}
                          : std::vector<std::int64_t>{1, 32};

  for (const auto& [net, all_layers] : networks) {
    const auto layers =
        bench::full_scale() ? all_layers : nets::distinct(all_layers);
    for (const std::int64_t b : batches) {
      std::printf("\n-- %s, batch %lld --\n", net.c_str(),
                  static_cast<long long>(b));
      bench::print_row({"layer", "swATOP(GF)", "swDNN(GF)", "speedup"});
      std::vector<double> speedups;
      for (const auto& l : layers) {
        const ops::ConvShape s = nets::to_shape(l, b);
        if (!ops::ImplicitConvOp::applicable(s)) continue;
        const bench::MethodResult r = bench::run_implicit(s, cfg);
        const double manual_gf =
            r.manual_cycles > 0.0
                ? static_cast<double>(s.flops()) / r.manual_cycles *
                      cfg.clock_ghz
                : 0.0;
        bench::print_row(
            {l.name, bench::fmt(r.gflops, 1),
             r.manual_cycles > 0 ? bench::fmt(manual_gf, 1) : "n/a",
             r.manual_cycles > 0 ? bench::fmt(r.speedup()) + "x"
                                 : std::string("n/a")});
        if (r.manual_cycles > 0) speedups.push_back(r.speedup());
        bench::add_conv_case(bj, net, b, l.name, s, r);
      }
      if (!speedups.empty())
        std::printf("average speedup over swDNN: %.2fx (paper: 1.44/1.32 "
                    "at batch 32/128)\n",
                    bench::geomean(speedups));
      else
        std::printf("no manual implementation at this batch size "
                    "(the gap swATOP bridges)\n");
    }
  }
  return 0;
}
