// Tuning-speed ablation: trace-replay measurement vs the loop-by-loop
// timing interpreter on the Table 3 workload (implicit CONV layers of the
// three CNNs). Pass 1 measures a deterministic candidate subsample through
// the interpreter; pass 2 replays the recorded traces. The bench asserts
// the replayed cycles are bit-identical per candidate and the argmin over
// the subsample unchanged, then reports the wall-clock ratio (the whole
// point of the fast path).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "nets/nets.hpp"
#include "ops/implicit_conv.hpp"
#include "sched/scheduler.hpp"
#include "tune/replay.hpp"
#include "tune/tuner.hpp"

using namespace swatop;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Every candidate set is subsampled with a fixed stride so the bench stays
/// minutes, not hours (one interpreter measurement of a deep layer costs
/// ~0.1-1s and a full set is thousands of candidates). The subsample is
/// deterministic, so the gated JSON metrics are too.
std::vector<sched::Candidate> subsample(std::vector<sched::Candidate> cands,
                                        std::size_t cap) {
  if (cands.size() <= cap) return cands;
  std::vector<sched::Candidate> out;
  out.reserve(cap);
  const std::size_t stride = cands.size() / cap;
  for (std::size_t i = 0; i < cands.size() && out.size() < cap; i += stride)
    out.push_back(std::move(cands[i]));
  return out;
}

}  // namespace

int main() {
  const sim::SimConfig cfg;
  bench::print_title(
      "Tuning speedup -- trace replay vs timing interpreter (Tab. 3 layers)");
  bench::BenchJson bj("tuning_speedup");

  const std::vector<std::pair<std::string, std::vector<nets::LayerDef>>>
      networks = {{"VGG16", nets::vgg16()},
                  {"ResNet", nets::resnet()},
                  {"YOLO", nets::yolo()}};
  // Quick mode keeps the per-layer traces small (they live in memory, one
  // per cached candidate) and the interpreter pass under a minute: small
  // sub-batch, deep layers only, 12 candidates per layer. SWATOP_FULL=1
  // widens everything.
  const bool full = bench::full_scale();
  const std::int64_t batch = full ? 32 : 4;
  const std::size_t max_layers = full ? 8 : 2;
  const std::size_t cand_cap = full ? 64 : 12;
  const std::int64_t max_cost_proxy =
      full ? std::int64_t{1} << 62 : 20'000'000;
  std::printf("(candidate subsample cap %zu per layer, batch %lld)\n",
              cand_cap, static_cast<long long>(batch));

  const sched::Scheduler sched(cfg);
  bool all_identical = true;
  double total_interp = 0.0, total_replay = 0.0;

  bench::print_row({"network", "layer", "cands", "interp(s)", "replay(s)",
                    "speedup", "identical"});
  for (const auto& [net, all_layers] : networks) {
    const auto distinct = nets::distinct(all_layers);
    std::size_t used = 0;
    for (const auto& l : distinct) {
      if (used >= max_layers) break;
      if (l.out_hw > 14) continue;
      // Skip layers whose traces would not fit the bench's memory budget
      // (event count scales with this product; VGG's 512x512 @ 14x14
      // layers record >1M events per candidate).
      if (l.ni * l.no * l.out_hw * l.out_hw > max_cost_proxy) continue;
      const ops::ConvShape s = nets::to_shape(l, batch);
      if (!ops::ImplicitConvOp::applicable(s)) continue;
      const ops::ImplicitConvOp op(s);
      const std::vector<sched::Candidate> cands =
          subsample(sched.candidates(op), cand_cap);
      if (cands.empty()) continue;
      ++used;

      // Pass 1: every (subsampled) candidate through the interpreter.
      std::vector<double> interp_cycles;
      interp_cycles.reserve(cands.size());
      const auto t0 = std::chrono::steady_clock::now();
      for (const sched::Candidate& c : cands)
        interp_cycles.push_back(tune::measure_candidate(op, c, cfg));
      const double interp_s = seconds_since(t0);

      // Warm the trace cache (every candidate records once, off the clock),
      // then pass 2: the same measurements served by replay.
      tune::ReplayOptions ro;
      ro.enabled = true;
      tune::ReplayExecutor rx(ro);
      for (const sched::Candidate& c : cands) (void)rx.measure(op, c, cfg);
      std::vector<double> replay_cycles;
      replay_cycles.reserve(cands.size());
      const auto t1 = std::chrono::steady_clock::now();
      for (const sched::Candidate& c : cands)
        replay_cycles.push_back(rx.measure(op, c, cfg));
      const double replay_s = seconds_since(t1);
      const tune::ReplayStats rs = rx.stats();

      // The contract: bit-identical cycles, candidate by candidate, and
      // therefore the identical argmin.
      const bool identical = interp_cycles == replay_cycles;
      const std::size_t argmin_i = static_cast<std::size_t>(
          std::min_element(interp_cycles.begin(), interp_cycles.end()) -
          interp_cycles.begin());
      const std::size_t argmin_r = static_cast<std::size_t>(
          std::min_element(replay_cycles.begin(), replay_cycles.end()) -
          replay_cycles.begin());
      const bool argmin_match = argmin_i == argmin_r;
      all_identical = all_identical && identical && argmin_match;

      const double speedup = replay_s > 0.0 ? interp_s / replay_s : 0.0;
      total_interp += interp_s;
      total_replay += replay_s;

      bench::print_row({net, l.name, std::to_string(cands.size()),
                        bench::fmt(interp_s, 2), bench::fmt(replay_s, 3),
                        bench::fmt(speedup, 0) + "x",
                        identical && argmin_match ? "yes" : "NO"});
      // Deterministic metrics are gated by tools/bench_compare; wall-clock
      // metrics carry "seconds" in the name so the gate skips them.
      bj.add(net + "/" + l.name, {{"net", net}, {"layer", l.name}},
             {{"candidates", static_cast<double>(cands.size())},
              {"replay_hits", static_cast<double>(rs.hits)},
              {"replay_fallbacks", static_cast<double>(rs.fallbacks)},
              {"bit_identical", identical ? 1.0 : 0.0},
              {"argmin_match", argmin_match ? 1.0 : 0.0},
              {"interp_seconds", interp_s},
              {"replay_seconds", replay_s},
              {"speedup_seconds_ratio", speedup}},
             interp_cycles[argmin_i]);
    }
  }

  const double total_speedup =
      total_replay > 0.0 ? total_interp / total_replay : 0.0;
  std::printf("\ntotal: interpreter %.2fs, replay %.3fs -> %.0fx; "
              "replayed cycles %s\n",
              total_interp, total_replay, total_speedup,
              all_identical ? "bit-identical, argmin unchanged"
                            : "DIVERGED (bug)");
  return all_identical ? 0 : 1;
}
