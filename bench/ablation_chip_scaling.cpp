// Ablation: chip-level scaling -- one tuned implicit convolution,
// batch-split over 1..4 core groups. Each CG owns its memory channel, so
// training batches scale near-linearly toward the chip-level TFLOPS the
// paper reports (its 2.1 TFLOPS implicit CONV is a 4-CG figure; everything
// else in this repo is per-CG); inference (batch 1) cannot be split and is
// the scaling limit.
#include <cstdio>

#include "bench_util.hpp"
#include "core/chip_parallel.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Ablation -- data-parallel scaling over core groups");
  bench::BenchJson bj("ablation_chip_scaling");
  std::printf("chip peak (4 CGs): %.2f TFLOPS\n",
              4.0 * cfg.peak_gflops() / 1000.0);

  ops::ConvShape s;
  s.ni = 256;
  s.no = 256;
  s.ri = 30;
  s.ci = 30;

  bench::print_row({"batch", "groups", "used", "GFLOPS", "chip-eff"});
  for (const std::int64_t batch : {1, 32, 128}) {
    s.batch = batch;
    for (int groups : {1, 2, 4}) {
      const ChipRunResult r = run_conv_data_parallel(s, groups, cfg);
      bench::print_row({std::to_string(batch), std::to_string(groups),
                        std::to_string(r.groups_used),
                        bench::fmt(r.gflops, 1),
                        bench::fmt(r.efficiency * 100.0, 1) + "%"});
      bj.add("b" + std::to_string(batch) + "/g" + std::to_string(groups),
             {{"batch", std::to_string(batch)},
              {"groups", std::to_string(groups)},
              {"groups_used", std::to_string(r.groups_used)}},
             {{"gflops", r.gflops}, {"chip_efficiency", r.efficiency}},
             r.cycles);
    }
  }
  std::printf("\nlarge batches scale near-linearly (private memory channels "
              "per CG); batch 1 cannot be split\n");
  return 0;
}
