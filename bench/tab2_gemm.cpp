// Table 2: matrix multiplication, swATOP vs xMath on the Listing 2 shapes,
// split into aligned and unaligned regimes.
#include <cstdio>

#include "baseline/xmath_gemm.hpp"
#include "bench_util.hpp"
#include "ops/matmul.hpp"

using namespace swatop;

namespace {

struct Tally {
  int faster = 0, slower = 0;
  std::vector<double> up, down;
};

void sweep(const std::vector<bench::GemmShape>& shapes, const char* label,
           const sim::SimConfig& cfg, bench::BenchJson& bj) {
  const baseline::XMathGemm xmath(cfg);
  Tally t;
  for (const auto& g : shapes) {
    const ops::MatmulOp op(g.m, g.n, g.k);
    const double swatop_c = bench::tuned_cycles(op, cfg);
    const double xmath_c = xmath.cycles(g.m, g.n, g.k);
    const double sp = xmath_c / swatop_c;
    if (sp >= 1.0) {
      ++t.faster;
      t.up.push_back(sp);
    } else {
      ++t.slower;
      t.down.push_back(sp);
    }
  }
  std::printf("%-10s faster: %3d (avg +%5.1f%%)   slower: %3d (avg %5.1f%%)"
              "   of %zu shapes\n",
              label, t.faster,
              t.up.empty() ? 0.0 : (bench::geomean(t.up) - 1.0) * 100.0,
              t.slower,
              t.down.empty() ? 0.0 : (bench::geomean(t.down) - 1.0) * 100.0,
              shapes.size());
  std::fflush(stdout);
  bj.add(label, {{"regime", label}},
         {{"faster", static_cast<double>(t.faster)},
          {"slower", static_cast<double>(t.slower)},
          {"avg_gain", t.up.empty() ? 0.0 : bench::geomean(t.up) - 1.0},
          {"avg_loss", t.down.empty() ? 0.0 : bench::geomean(t.down) - 1.0}},
         0.0);
}

}  // namespace

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Table 2 -- GEMM: swATOP vs xMath (Listing 2)");
  bench::BenchJson bj("tab2_gemm");
  sweep(bench::listing2_aligned(), "Aligned", cfg, bj);
  sweep(bench::listing2_unaligned(), "Unaligned", cfg, bj);
  std::printf("\npaper: aligned +31.6%% avg (93 slower at -6.6%%); "
              "unaligned +49.8%% avg (9 slower at -4.3%%)\n");
  return 0;
}
