#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "baseline/manual_explicit.hpp"
#include "baseline/manual_winograd.hpp"
#include "baseline/swdnn_conv.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/winograd.hpp"

namespace swatop::bench {

bool full_scale() {
  const char* v = std::getenv("SWATOP_FULL");
  return v != nullptr && v[0] == '1';
}

std::vector<ops::ConvShape> listing1_shapes(std::int64_t batch) {
  const std::vector<std::int64_t> chans_full = {64, 128, 256, 384, 512};
  const std::vector<std::int64_t> ro_full = {32, 64, 128, 256};
  const std::vector<std::int64_t> chans_quick = {64, 256, 512};
  const std::vector<std::int64_t> ro_quick = {32, 128};
  const auto& chans = full_scale() ? chans_full : chans_quick;
  const auto& ros = full_scale() ? ro_full : ro_quick;

  std::vector<ops::ConvShape> out;
  for (std::int64_t ni : chans) {
    for (std::int64_t no : chans) {
      if (ni < no) continue;  // Listing 1's `if [$Ni >= $No]`
      for (std::int64_t ro : ros) {
        ops::ConvShape s;
        s.batch = batch;
        s.ni = ni;
        s.no = no;
        s.ri = ro + 2;
        s.ci = ro + 2;
        s.kr = 3;
        s.kc = 3;
        out.push_back(s);
      }
    }
  }
  return out;
}

std::vector<GemmShape> listing2_unaligned() {
  const std::vector<std::int64_t> full = {200, 500, 1000, 2000, 4000, 8000};
  const std::vector<std::int64_t> quick = {200, 1000, 8000};
  const auto& dims = full_scale() ? full : quick;
  std::vector<GemmShape> out;
  for (std::int64_t m : dims)
    for (std::int64_t n : dims)
      for (std::int64_t k : dims) out.push_back({m, n, k});
  return out;
}

std::vector<GemmShape> listing2_aligned() {
  const std::vector<std::int64_t> full = {256,  512,  768, 1024,
                                          2048, 4096, 8192};
  const std::vector<std::int64_t> quick = {256, 1024, 8192};
  const auto& dims = full_scale() ? full : quick;
  std::vector<GemmShape> out;
  for (std::int64_t m : dims)
    for (std::int64_t n : dims)
      for (std::int64_t k : dims) out.push_back({m, n, k});
  return out;
}

double tuned_cycles(const dsl::OperatorDef& op, const sim::SimConfig& cfg,
                    tune::TunerStats* stats) {
  const tune::ModelTuner tuner(cfg);
  const tune::Tuned t = tuner.tune(op);
  if (stats != nullptr) *stats = t.stats;
  return tune::measure_candidate(op, t.candidate, cfg);
}

MethodResult run_implicit(const ops::ConvShape& s,
                          const sim::SimConfig& cfg) {
  MethodResult r;
  const ops::ImplicitConvOp op(s);
  r.swatop_cycles = tuned_cycles(op, cfg);
  if (baseline::SwDnnConv::applicable(s))
    r.manual_cycles = baseline::SwDnnConv(cfg).cycles(s);
  r.gflops = static_cast<double>(s.flops()) / r.swatop_cycles * cfg.clock_ghz;
  r.efficiency = r.gflops / cfg.peak_gflops();
  return r;
}

MethodResult run_winograd(const ops::ConvShape& s,
                          const sim::SimConfig& cfg) {
  MethodResult r;
  const ops::WinogradPlan plan(s);
  const ops::WinogradGemmOp op(s);
  r.swatop_cycles = tuned_cycles(op, cfg) +
                    ops::WinogradGemmOp::pre_post_cycles(plan, cfg);
  r.manual_cycles = baseline::ManualWinogradConv(cfg).cycles(s);
  r.gflops = static_cast<double>(s.flops()) / r.swatop_cycles * cfg.clock_ghz;
  r.efficiency = r.gflops / cfg.peak_gflops();
  return r;
}

MethodResult run_explicit(const ops::ConvShape& s,
                          const sim::SimConfig& cfg) {
  MethodResult r;
  const ops::ExplicitConvOp op(s);
  r.swatop_cycles =
      tuned_cycles(op, cfg) + ops::ExplicitConvOp::pre_post_cycles(s, cfg);
  r.manual_cycles = baseline::ManualExplicitConv(cfg).cycles(s);
  r.gflops = static_cast<double>(s.flops()) / r.swatop_cycles * cfg.clock_ghz;
  r.efficiency = r.gflops / cfg.peak_gflops();
  return r;
}

namespace {

std::string js_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {}

BenchJson::~BenchJson() {
  if (!written_) write();
}

void BenchJson::add(const std::string& case_name, const Config& config,
                    const Metrics& metrics, double cycles) {
  cases_.push_back({case_name, config, metrics, cycles});
}

std::string BenchJson::json() const {
  std::ostringstream os;
  os << "{\"name\": \"" << js_escape(name_) << "\", \"full_scale\": "
     << (full_scale() ? "true" : "false") << ", \"cases\": [";
  bool first = true;
  for (const Case& c : cases_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << js_escape(c.name) << "\", \"config\": {";
    bool f2 = true;
    for (const auto& [k, v] : c.config) {
      if (!f2) os << ", ";
      f2 = false;
      os << '"' << js_escape(k) << "\": \"" << js_escape(v) << '"';
    }
    os << "}, \"metrics\": {";
    f2 = true;
    for (const auto& [k, v] : c.metrics) {
      if (!f2) os << ", ";
      f2 = false;
      os << '"' << js_escape(k) << "\": " << v;
    }
    os << "}, \"cycles\": " << c.cycles << "}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string BenchJson::write() {
  written_ = true;
  std::string dir;
  if (const char* d = std::getenv("SWATOP_BENCH_DIR")) dir = d;
  const std::string path =
      (dir.empty() ? std::string() : dir + "/") + "BENCH_" + name_ + ".json";
  std::ofstream f(path);
  if (!f) return "";
  f << json();
  if (!f) return "";
  std::printf("bench json: %s\n", path.c_str());
  return path;
}

void add_conv_case(BenchJson& bj, const std::string& net, std::int64_t batch,
                   const std::string& layer, const ops::ConvShape& s,
                   const MethodResult& r) {
  BenchJson::Metrics m = {{"gflops", r.gflops},
                          {"efficiency", r.efficiency}};
  if (r.manual_cycles > 0.0) {
    m.push_back({"manual_cycles", r.manual_cycles});
    m.push_back({"speedup", r.speedup()});
  }
  bj.add(net + "/" + layer + "/b" + std::to_string(batch),
         {{"net", net},
          {"layer", layer},
          {"batch", std::to_string(batch)},
          {"shape", s.to_string()}},
         m, r.swatop_cycles);
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!full_scale())
    std::printf("(reduced sweep; set SWATOP_FULL=1 for paper scale)\n");
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace swatop::bench
