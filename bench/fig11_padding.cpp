// Fig. 11: boundary-processing overhead on the unaligned Listing 2 GEMMs --
// traditional zero-padding (re-materialize whole matrices at aligned dims,
// the xMath approach) vs swATOP's lightweight scheme (DMA only the valid
// region, zero-fill the SPM tile at boundary iterations). Overheads are
// relative to the same tuned GEMM on the already-aligned problem.
// Paper: cases above 10% overhead drop below 5% with lightweight padding.
#include <cstdio>

#include "baseline/xmath_gemm.hpp"
#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "ops/matmul.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Fig. 11 -- lightweight vs traditional zero-padding");

  bench::BenchJson bj("fig11_padding");
  const baseline::XMathGemm xmath(cfg);
  std::vector<double> trad_over, light_over;
  bench::print_row({"M", "N", "K", "traditional", "lightweight"});
  for (const auto& g : bench::listing2_unaligned()) {
    const std::int64_t Mp = align_up(g.m, 32), Np = align_up(g.n, 32),
                       Kp = align_up(g.k, 8);
    // Ideal: the tuned aligned problem, no boundary at all.
    const ops::MatmulOp aligned_op(Mp, Np, Kp);
    const double ideal = bench::tuned_cycles(aligned_op, cfg);
    // Traditional: full-matrix padding passes + the aligned GEMM.
    const double trad = ideal + xmath.padding_cycles(g.m, g.n, g.k);
    // Lightweight: swATOP tunes the unaligned problem directly.
    const ops::MatmulOp ragged_op(g.m, g.n, g.k);
    const double light = bench::tuned_cycles(ragged_op, cfg);

    const double ot = (trad - ideal) / ideal;
    const double ol = (light - ideal) / ideal;
    if (ot <= 0.10) continue;  // the paper plots cases above 10%
    trad_over.push_back(ot);
    light_over.push_back(ol);
    char trad_cell[32], light_cell[32];
    std::snprintf(trad_cell, sizeof trad_cell, "+%.1f%%", ot * 100.0);
    std::snprintf(light_cell, sizeof light_cell, "%+.1f%%", ol * 100.0);
    bench::print_row({std::to_string(g.m), std::to_string(g.n),
                      std::to_string(g.k), std::string(trad_cell),
                      std::string(light_cell)});
    bj.add("m" + std::to_string(g.m) + "/n" + std::to_string(g.n) + "/k" +
               std::to_string(g.k),
           {{"m", std::to_string(g.m)},
            {"n", std::to_string(g.n)},
            {"k", std::to_string(g.k)}},
           {{"traditional_overhead", ot}, {"lightweight_overhead", ol}},
           light);
  }
  if (!trad_over.empty()) {
    double st = 0, sl = 0;
    for (double v : trad_over) st += v;
    for (double v : light_over) sl += v;
    std::printf("\ncases with traditional overhead > 10%%: %zu\n",
                trad_over.size());
    std::printf("average traditional overhead: +%.1f%%\n",
                st / trad_over.size() * 100.0);
    std::printf("average lightweight overhead: %+.1f%% (paper: < 5%%)\n",
                sl / light_over.size() * 100.0);
  } else {
    std::printf("no case exceeded 10%% traditional overhead in this sweep; "
                "run with SWATOP_FULL=1\n");
  }
  return 0;
}
