// Fig. 6: swATOP's tuned batched-GEMM Winograd convolution vs the manual
// version (transforms + 16 separate xMath GEMM calls), on the 3x3 layers of
// the three networks.
#include <cstdio>

#include "bench_util.hpp"
#include "nets/nets.hpp"
#include "ops/winograd.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  bench::print_title("Fig. 6 -- Winograd CONV: swATOP vs manual (xMath)");
  bench::BenchJson bj("fig6_winograd_conv");

  const std::vector<std::pair<std::string, std::vector<nets::LayerDef>>>
      networks = {{"VGG16", nets::vgg16()},
                  {"ResNet", nets::resnet()},
                  {"YOLO", nets::yolo()}};
  const std::vector<std::int64_t> batches =
      bench::full_scale() ? std::vector<std::int64_t>{1, 32, 128}
                          : std::vector<std::int64_t>{1, 32};

  for (const auto& [net, all_layers] : networks) {
    const auto layers =
        bench::full_scale() ? all_layers : nets::distinct(all_layers);
    for (const std::int64_t b : batches) {
      std::printf("\n-- %s, batch %lld --\n", net.c_str(),
                  static_cast<long long>(b));
      bench::print_row({"layer", "swATOP(GF)", "manual(GF)", "speedup"});
      std::vector<double> speedups;
      for (const auto& l : layers) {
        const ops::ConvShape s = nets::to_shape(l, b);
        if (!ops::WinogradPlan::applicable(s) || s.ni < 8 || s.ni % 8 != 0)
          continue;
        const bench::MethodResult r = bench::run_winograd(s, cfg);
        const double manual_gf = static_cast<double>(s.flops()) /
                                 r.manual_cycles * cfg.clock_ghz;
        bench::print_row({l.name, bench::fmt(r.gflops, 1),
                          bench::fmt(manual_gf, 1),
                          bench::fmt(r.speedup()) + "x"});
        speedups.push_back(r.speedup());
        bench::add_conv_case(bj, net, b, l.name, s, r);
      }
      if (!speedups.empty())
        std::printf("average speedup over manual Winograd: %.2fx "
                    "(paper: 2.20/2.35/2.33 at batch 1/32/128)\n",
                    bench::geomean(speedups));
    }
  }
  return 0;
}
