// Ablation: DMA access-mode pricing -- the transaction-granularity effects
// behind Eq. (1). Contiguous vs strided vs element-gather transfers, and
// the DMA vs global-load/store gap that motivates the whole design (Sec. 2).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/dma.hpp"

using namespace swatop;

int main() {
  const sim::SimConfig cfg;
  const sim::DmaEngine engine(cfg);
  bench::print_title("Ablation -- DMA access modes (Eq. 1)");
  bench::BenchJson bj("ablation_dma_modes");

  const std::int64_t total = 16384;  // one 64 KB tile worth of floats
  struct Mode {
    const char* name;
    std::int64_t block, stride;
  };
  const Mode modes[] = {
      {"contiguous", total, 0},   {"block 256", 256, 256},
      {"block 64", 64, 192},      {"block 32", 32, 224},
      {"block 8", 8, 248},        {"element gather", 1, 255},
  };
  bench::print_row({"mode", "cycles", "eff-BW(GB/s)", "waste%"}, 18);
  for (const Mode& m : modes) {
    sim::DmaCpeDesc d;
    d.block = m.block;
    d.stride = m.stride;
    d.total = total;
    const auto c = engine.cost(d);
    const double bw = static_cast<double>(total) * 4.0 /
                      c.total_cycles() * cfg.clock_ghz;
    const double waste =
        100.0 * static_cast<double>(c.bytes_wasted) /
        static_cast<double>(c.bytes_wasted + c.bytes_requested);
    bench::print_row({m.name, bench::fmt(c.total_cycles(), 0),
                      bench::fmt(bw, 2), bench::fmt(waste, 1)},
                     18);
    bj.add(m.name,
           {{"mode", m.name},
            {"block", std::to_string(m.block)},
            {"stride", std::to_string(m.stride)}},
           {{"effective_gbps", bw}, {"waste_pct", waste}},
           c.total_cycles());
  }

  const double dma_time =
      static_cast<double>(total) * 4.0 / cfg.dma_bytes_per_cycle();
  const double gls_time =
      static_cast<double>(total) * 4.0 / cfg.gls_bytes_per_cycle();
  std::printf("\nDMA vs GL/GS for the same %lld floats: %.0f vs %.0f cycles "
              "(%.1fx) -- why every swATOP transfer goes through the DMA "
              "engine\n",
              static_cast<long long>(total), dma_time, gls_time,
              gls_time / dma_time);
  return 0;
}
