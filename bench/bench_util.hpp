// Shared helpers for the paper-reproduction benches: the Listing 1 / 2
// parameter sweeps, tuned-vs-manual runners for the three convolution
// methods, and table printing.
//
// Every bench runs a reduced sweep by default so the whole bench/ directory
// completes in minutes; set SWATOP_FULL=1 for the paper-scale sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dsl/dsl.hpp"
#include "ops/conv_common.hpp"
#include "sim/config.hpp"
#include "tune/tuner.hpp"

namespace swatop::bench {

/// True when SWATOP_FULL=1: run the full paper-scale sweeps.
bool full_scale();

/// Listing 1: Ni, No in {64,128,256,384,512} with Ni >= No, Ro in
/// {32,64,128,256}, 3x3 kernels. Reduced mode subsamples the grid.
std::vector<ops::ConvShape> listing1_shapes(std::int64_t batch);

/// Listing 2 GEMM shapes.
struct GemmShape {
  std::int64_t m, n, k;
};
std::vector<GemmShape> listing2_unaligned();
std::vector<GemmShape> listing2_aligned();

/// Tune with the model-based autotuner and measure the picked candidate on
/// the timing interpreter; returns measured cycles (and optionally stats).
double tuned_cycles(const dsl::OperatorDef& op, const sim::SimConfig& cfg,
                    tune::TunerStats* stats = nullptr);

/// The three convolution methods, swATOP vs the best manual version.
/// manual_cycles < 0 means no manual implementation exists for the shape.
struct MethodResult {
  double swatop_cycles = 0.0;
  double manual_cycles = -1.0;
  double gflops = 0.0;      ///< swATOP achieved (direct-conv flops basis)
  double efficiency = 0.0;  ///< fraction of peak
  double speedup() const {
    return manual_cycles > 0.0 ? manual_cycles / swatop_cycles : 0.0;
  }
};
MethodResult run_implicit(const ops::ConvShape& s, const sim::SimConfig& cfg);
MethodResult run_winograd(const ops::ConvShape& s, const sim::SimConfig& cfg);
MethodResult run_explicit(const ops::ConvShape& s, const sim::SimConfig& cfg);

/// Geometric mean of positive values (0 if empty).
double geomean(const std::vector<double>& xs);

/// Unified machine-readable bench output: every bench binary owns one
/// BenchJson and adds a row per case; the destructor writes
/// `BENCH_<name>.json` into the working directory (or $SWATOP_BENCH_DIR).
/// Schema:
///   {"name": ..., "full_scale": ..., "cases": [
///     {"name": ..., "config": {str: str}, "metrics": {str: num},
///      "cycles": num}, ...]}
/// tools/bench_compare diffs two of these files metric by metric.
class BenchJson {
 public:
  using Config = std::vector<std::pair<std::string, std::string>>;
  using Metrics = std::vector<std::pair<std::string, double>>;

  explicit BenchJson(std::string name);
  ~BenchJson();  ///< best-effort write() if not already written

  /// One benchmark case. `cycles` is the headline cycle count (0 when the
  /// case has no single cycle number).
  void add(const std::string& case_name, const Config& config,
           const Metrics& metrics, double cycles);

  std::string json() const;
  /// Write BENCH_<name>.json; returns the path ("" on failure).
  std::string write();

 private:
  struct Case {
    std::string name;
    Config config;
    Metrics metrics;
    double cycles = 0.0;
  };
  std::string name_;
  std::vector<Case> cases_;
  bool written_ = false;
};

/// Shared row shape for the three conv-method benches (figs 5-7): one case
/// per (net, layer, batch) with the swATOP/manual cycle numbers.
void add_conv_case(BenchJson& bj, const std::string& net, std::int64_t batch,
                   const std::string& layer, const ops::ConvShape& s,
                   const MethodResult& r);

/// Simple fixed-width table printing.
void print_title(const std::string& title);
void print_row(const std::vector<std::string>& cells, int width = 12);
std::string fmt(double v, int prec = 2);

}  // namespace swatop::bench
