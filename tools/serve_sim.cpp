// Serving-front-end simulator: generate a synthetic arrival trace, run it
// through the dynamic batcher + SLO-aware fleet scheduler (src/serve/),
// and print the p50/p99/throughput/shed report.
//
//   serve_sim --duration 5 --rate 120 --net resnet:2:150 --net yolo:1:250
//   serve_sim --pattern bursty --chips 8 --no-admission --json report.json
//   serve_sim --synthetic --rate 400 --sizes 1,2,4
//
// Whole runs are deterministic: same flags => byte-identical --json output
// (simulated clocks only; see DESIGN.md §6). The --assert-* flags turn the
// binary into a CI smoke test: each prints PASS/FAIL and any failure makes
// the exit status 1.
//
// Exit status: 0 on success, 1 when an --assert-* check fails, 2 on usage
// errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli.hpp"
#include "common/check.hpp"
#include "obs/recorder.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

namespace {

void usage() {
  std::cerr <<
      "usage: serve_sim [traffic] [server] [output] [asserts]\n"
      "traffic:\n"
      "  --seed N              RNG seed (default 1)\n"
      "  --duration S          arrival window, seconds (default 5)\n"
      "  --rate R              mean arrival rate, requests/s (default 50)\n"
      "  --pattern P           poisson|bursty (default poisson)\n"
      "  --burst-factor X      bursty: rate multiplier in bursts (default 6)\n"
      "  --burst-fraction X    bursty: fraction of period bursting (0.25)\n"
      "  --burst-period S      bursty: burst cycle length (default 1)\n"
      "  --net N[:W[:SLO_MS]]  add network N with weight W and SLO (repeat;\n"
      "                        default resnet:1:50)\n"
      "  --sizes A,B,...       request image counts to draw from (default 1)\n"
      "  --size-weights ...    weights for --sizes (default uniform)\n"
      "server:\n"
      "  --chips N             fleet size (default 4)\n"
      "  --groups N            core groups per chip, 1-4 (default 4)\n"
      "  --max-batch N         dynamic batcher sub-batch cap (default 8)\n"
      "  --max-wait-ms X       coalescing deadline (default 2)\n"
      "  --no-coalesce         batch-1 FIFO baseline (ablation)\n"
      "  --no-admission        admit everything, never shed (ablation)\n"
      "  --headroom X          admission deadline scale (default 1)\n"
      "  --synthetic           analytic cost model instead of the engine\n"
      "  --cache FILE          persistent schedule cache for engine costs\n"
      "output:\n"
      "  --json FILE           write the report JSON\n"
      "  --trace FILE          write the Chrome trace (pid 2 = fleet)\n"
      "  --timeline FILE       write the flight-recorder timeline JSONL\n"
      "                        (one window per line; render with\n"
      "                        swatop_report serve-timeline FILE)\n"
      "  --window-ms X         timeline window width (default 100)\n"
      "  --trace-sample X      fraction of requests emitting lifecycle\n"
      "                        span chains into --trace (default 0)\n"
      "  --burn-budget X       per-window SLO error budget (default 0.05)\n"
      "  --burn-threshold X    burn-rate alert threshold (default 2)\n"
      "  --quiet               suppress the text report\n"
      "asserts (CI smoke):\n"
      "  --assert-slo          fail if any completed request missed its SLO\n"
      "  --assert-shed-below X fail if shed+rejected fraction >= X\n"
      "  --assert-shed-above X fail if shed+rejected fraction <= X\n"
      "  --assert-completed N  fail if fewer than N requests completed\n";
}

std::vector<std::int64_t> parse_int_list(const swatop::cli::Args& args,
                                         const std::string& what,
                                         const std::string& tok) {
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos <= tok.size()) {
    const std::size_t comma = tok.find(',', pos);
    const std::string field =
        tok.substr(pos, comma == std::string::npos ? tok.size() - pos
                                                   : comma - pos);
    out.push_back(args.int64(what, field, 1, 1 << 20));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<double> parse_double_list(const swatop::cli::Args& args,
                                      const std::string& what,
                                      const std::string& tok) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= tok.size()) {
    const std::size_t comma = tok.find(',', pos);
    const std::string field =
        tok.substr(pos, comma == std::string::npos ? tok.size() - pos
                                                   : comma - pos);
    out.push_back(args.real(what, field, /*require_positive=*/true));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// "name[:weight[:slo_ms]]" -> NetMix.
swatop::serve::NetMix parse_net(const swatop::cli::Args& args,
                                const std::string& tok) {
  swatop::serve::NetMix m;
  const std::size_t c1 = tok.find(':');
  m.net = tok.substr(0, c1);
  if (m.net.empty()) args.fail("empty network name in --net '" + tok + "'");
  if (c1 != std::string::npos) {
    const std::size_t c2 = tok.find(':', c1 + 1);
    m.weight = args.real("--net weight",
                         tok.substr(c1 + 1, c2 == std::string::npos
                                                ? std::string::npos
                                                : c2 - c1 - 1),
                         /*require_positive=*/true);
    if (c2 != std::string::npos)
      m.slo_ms = args.real("--net SLO", tok.substr(c2 + 1),
                           /*require_positive=*/true);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  swatop::cli::Args args(argc, argv, usage);

  swatop::serve::TrafficConfig traffic;
  traffic.mix.clear();
  swatop::serve::ServerConfig server;
  bool synthetic = false;
  std::string cache_path;
  std::string json_path;
  std::string trace_path;
  std::string timeline_path;
  bool quiet = false;
  bool assert_slo = false;
  double shed_below = -1.0, shed_above = -1.0;
  std::int64_t completed_min = -1;

  while (args.more()) {
    const std::string a = args.pop("option");
    if (a == "--seed") {
      traffic.seed = static_cast<std::uint64_t>(
          args.int64(a, args.value(a), 0));
    } else if (a == "--duration") {
      traffic.duration_s = args.real(a, args.value(a), true);
    } else if (a == "--rate") {
      traffic.rate_rps = args.real(a, args.value(a), true);
    } else if (a == "--pattern") {
      const std::string p = args.value(a);
      if (p == "poisson") {
        traffic.pattern = swatop::serve::ArrivalPattern::Poisson;
      } else if (p == "bursty") {
        traffic.pattern = swatop::serve::ArrivalPattern::Bursty;
      } else {
        args.fail("unknown pattern '" + p + "' (expected poisson or bursty)");
      }
    } else if (a == "--burst-factor") {
      traffic.burst_factor = args.real(a, args.value(a), true);
    } else if (a == "--burst-fraction") {
      traffic.burst_fraction = args.real(a, args.value(a), true);
    } else if (a == "--burst-period") {
      traffic.burst_period_s = args.real(a, args.value(a), true);
    } else if (a == "--net") {
      traffic.mix.push_back(parse_net(args, args.value(a)));
    } else if (a == "--sizes") {
      traffic.sizes = parse_int_list(args, a, args.value(a));
    } else if (a == "--size-weights") {
      traffic.size_weights = parse_double_list(args, a, args.value(a));
    } else if (a == "--chips") {
      server.fleet.chips =
          static_cast<int>(args.int64(a, args.value(a), 1, 1024));
    } else if (a == "--groups") {
      server.fleet.groups_per_chip =
          static_cast<int>(args.int64(a, args.value(a), 1, 4));
    } else if (a == "--max-batch") {
      server.batcher.max_batch = args.int64(a, args.value(a), 1, 4096);
    } else if (a == "--max-wait-ms") {
      server.batcher.max_wait_us = 1e3 * args.real(a, args.value(a), true);
    } else if (a == "--no-coalesce") {
      server.batcher.coalesce = false;
    } else if (a == "--no-admission") {
      server.admission.enabled = false;
    } else if (a == "--headroom") {
      server.admission.headroom = args.real(a, args.value(a), true);
    } else if (a == "--synthetic") {
      synthetic = true;
    } else if (a == "--cache") {
      cache_path = args.value(a);
    } else if (a == "--json") {
      json_path = args.value(a);
    } else if (a == "--trace") {
      trace_path = args.value(a);
    } else if (a == "--timeline") {
      timeline_path = args.value(a);
      server.telemetry.enabled = true;
    } else if (a == "--window-ms") {
      server.telemetry.enabled = true;
      server.telemetry.window_us = 1e3 * args.real(a, args.value(a), true);
    } else if (a == "--trace-sample") {
      server.telemetry.trace_sample = args.real(a, args.value(a));
      if (server.telemetry.trace_sample < 0.0 ||
          server.telemetry.trace_sample > 1.0)
        args.fail("--trace-sample must be in [0, 1]");
    } else if (a == "--burn-budget") {
      server.telemetry.enabled = true;
      server.telemetry.slo_budget = args.real(a, args.value(a), true);
    } else if (a == "--burn-threshold") {
      server.telemetry.enabled = true;
      server.telemetry.burn_threshold = args.real(a, args.value(a), true);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--assert-slo") {
      assert_slo = true;
    } else if (a == "--assert-shed-below") {
      shed_below = args.real(a, args.value(a), true);
    } else if (a == "--assert-shed-above") {
      shed_above = args.real(a, args.value(a));
    } else if (a == "--assert-completed") {
      completed_min = args.int64(a, args.value(a), 0);
    } else {
      args.fail("unknown option '" + a + "'");
    }
  }
  if (traffic.mix.empty()) traffic.mix.push_back({"resnet", 1.0, 50.0});
  if (traffic.size_weights.size() != traffic.sizes.size())
    traffic.size_weights.assign(traffic.sizes.size(), 1.0);  // uniform
  if (synthetic && !cache_path.empty())
    args.fail("--cache has no effect with --synthetic (no engine to cache)");
  if (!server.admission.enabled && assert_slo)
    args.fail("--assert-slo requires admission control (drop --no-admission)");
  if (server.telemetry.trace_sample > 0.0 && trace_path.empty())
    args.fail("--trace-sample needs --trace (nowhere to put the spans)");

  try {
    const std::vector<swatop::serve::Request> trace =
        swatop::serve::generate_trace(traffic);

    swatop::SwatopConfig cfg;
    if (!cache_path.empty()) {
      cfg.cache.enabled = true;
      cfg.cache.path = cache_path;
    }
    swatop::serve::SyntheticCostProvider synth(server.fleet.groups_per_chip);
    swatop::serve::EngineCostProvider::Options eco;
    eco.groups_per_chip = server.fleet.groups_per_chip;
    std::unique_ptr<swatop::serve::EngineCostProvider> engine_cost;
    swatop::serve::CostProvider* cost = &synth;
    if (!synthetic) {
      engine_cost = std::make_unique<swatop::serve::EngineCostProvider>(
          cfg, eco);
      cost = engine_cost.get();
    }

    std::unique_ptr<swatop::obs::Recorder> rec;
    if (!trace_path.empty()) {
      swatop::obs::Options oo;
      oo.enabled = true;
      rec = std::make_unique<swatop::obs::Recorder>(oo);
    }

    swatop::serve::Server srv(server, *cost, rec.get());
    const swatop::serve::ServingReport rep = srv.run(trace);

    if (!quiet) std::fputs(rep.text().c_str(), stdout);
    if (!json_path.empty()) {
      std::ofstream os(json_path);
      os << rep.json() << "\n";
      if (!os.good()) {
        std::cerr << "error: failed to write " << json_path << "\n";
        return 2;
      }
      std::printf("json:   %s\n", json_path.c_str());
    }
    if (!timeline_path.empty()) {
      std::ofstream os(timeline_path);
      os << rep.timeline_jsonl();
      if (!os.good()) {
        std::cerr << "error: failed to write " << timeline_path << "\n";
        return 2;
      }
      std::printf("timeline: %s (%zu windows)\n", timeline_path.c_str(),
                  rep.telemetry.windows.size());
    }
    if (rec != nullptr && !trace_path.empty()) {
      std::ofstream os(trace_path);
      swatop::obs::write_chrome_trace(os, rec->buffer().snapshot(),
                                      rec->buffer().dropped());
      std::printf("trace:  %s\n", trace_path.c_str());
    }

    bool ok = true;
    auto check = [&ok](bool cond, const std::string& what) {
      std::printf("%s: %s\n", cond ? "PASS" : "FAIL", what.c_str());
      ok = ok && cond;
    };
    if (assert_slo)
      check(rep.slo_violations == 0,
            "assert-slo (violations = " + std::to_string(rep.slo_violations) +
                ")");
    if (shed_below >= 0.0)
      check(rep.shed_rate < shed_below,
            "assert-shed-below " + std::to_string(shed_below) +
                " (shed rate = " + std::to_string(rep.shed_rate) + ")");
    if (shed_above >= 0.0)
      check(rep.shed_rate > shed_above,
            "assert-shed-above " + std::to_string(shed_above) +
                " (shed rate = " + std::to_string(rep.shed_rate) + ")");
    if (completed_min >= 0)
      check(rep.completed >= completed_min,
            "assert-completed " + std::to_string(completed_min) +
                " (completed = " + std::to_string(rep.completed) + ")");
    return ok ? 0 : 1;
  } catch (const swatop::CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
