// End-to-end network runner: build a CNN graph, tune every distinct layer
// once, plan the activation arena, and execute the whole network on the
// simulated SW26010 -- functionally (validated against the naive whole-net
// reference) or timing-only.
//
//   run_network vgg16 4
//   run_network resnet 8 --groups 4 --timing-only
//   run_network yolo 4 --method winograd --report trace.json
//
// Exit status: 0 on success, 1 when the functional check exceeds the
// tolerance, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "common/check.hpp"
#include "graph/build.hpp"
#include "graph/compile.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: run_network <vgg16|resnet|yolo> <batch>\n"
         "         [--groups N]        core groups to split the batch over "
         "(1-4, default 1)\n"
         "         [--method M]        auto|implicit|explicit|winograd "
         "(default auto)\n"
         "         [--timing-only]     price the run without moving data\n"
         "         [--no-check]        skip the whole-net reference check\n"
         "         [--no-fusion]       disable epilogue fusion (ablation)\n"
         "         [--no-residency]    disable inter-layer SPM residency\n"
         "         [--tol X]           check tolerance (default 1e-4)\n"
         "         [--cache FILE]      persistent schedule cache\n"
         "         [--report FILE]     write the Chrome trace JSON\n"
         "         [--full-report]     per-layer cycle attribution, "
         "roofline and\n"
         "                             tuning-journal summary after the "
         "run\n"
         "         [--journal FILE]    write the tuning journal (JSONL)\n";
}

swatop::graph::ConvMethod parse_method(const swatop::cli::Args& args,
                                       const std::string& s) {
  using swatop::graph::ConvMethod;
  if (s == "auto") return ConvMethod::Auto;
  if (s == "implicit") return ConvMethod::Implicit;
  if (s == "explicit") return ConvMethod::Explicit;
  if (s == "winograd") return ConvMethod::Winograd;
  args.fail("unknown method '" + s +
            "' (expected auto, implicit, explicit or winograd)");
}

}  // namespace

int main(int argc, char** argv) {
  swatop::cli::Args args(argc, argv, usage);
  const std::string net = args.pop("network name");
  if (net != "vgg16" && net != "resnet" && net != "yolo")
    args.fail("unknown network '" + net +
              "' (expected vgg16, resnet or yolo)");
  const std::int64_t batch =
      args.int64("batch", args.pop("batch size"), 1, 1 << 20);

  swatop::SwatopConfig cfg;
  swatop::graph::NetOptions opts;
  std::string report_path;
  std::string journal_path;
  bool full_report = false;
  bool tol_set = false;
  while (args.more()) {
    const std::string a = args.pop("option");
    if (a == "--groups") {
      opts.groups = static_cast<int>(args.int64(a, args.value(a), 1, 4));
    } else if (a == "--method") {
      opts.method = parse_method(args, args.value(a));
    } else if (a == "--timing-only") {
      opts.mode = swatop::sim::ExecMode::TimingOnly;
    } else if (a == "--no-check") {
      opts.check = false;
    } else if (a == "--no-fusion") {
      opts.fusion = false;
    } else if (a == "--no-residency") {
      opts.residency = false;
    } else if (a == "--tol") {
      opts.tolerance = args.real(a, args.value(a), /*require_positive=*/true);
      tol_set = true;
    } else if (a == "--cache") {
      cfg.cache.enabled = true;
      cfg.cache.path = args.value(a);
    } else if (a == "--report") {
      report_path = args.value(a);
      cfg.observability.enabled = true;
    } else if (a == "--full-report") {
      full_report = true;
    } else if (a == "--journal") {
      journal_path = args.value(a);
    } else {
      args.fail("unknown option '" + a + "'");
    }
  }
  // Flag-combination sanity: the tolerance only gates the functional
  // reference check, so pairing it with modes that skip the check would
  // silently do nothing -- reject instead.
  if (tol_set && !opts.check)
    args.fail("--tol has no effect with --no-check");
  if (tol_set && opts.mode == swatop::sim::ExecMode::TimingOnly)
    args.fail("--tol has no effect with --timing-only (no data to check)");

  try {
    // compile() is the fusion-aware front door: it owns the tuning journal
    // and keeps the report attached to the run that produced it.
    swatop::CompiledNet compiled =
        swatop::compile(swatop::graph::build_net(net), cfg);
    const swatop::graph::NetRunResult r = compiled.run(batch, opts);

    std::printf("== %s  batch %lld  groups %d  (%s) ==\n",
                compiled.graph().name().c_str(),
                static_cast<long long>(batch), r.groups_used,
                opts.mode == swatop::sim::ExecMode::Functional
                    ? "functional"
                    : "timing-only");
    std::printf("%-14s %-9s %22s %12s %10s\n", "layer", "method", "shape",
                "cycles", "GFLOPS");
    for (const auto& l : r.layers) {
      if (!l.conv) continue;
      char shape[64];
      std::snprintf(shape, sizeof(shape), "%lldx%lld ni%lld no%lld k%lld",
                    static_cast<long long>(l.shape.ri),
                    static_cast<long long>(l.shape.ci),
                    static_cast<long long>(l.shape.ni),
                    static_cast<long long>(l.shape.no),
                    static_cast<long long>(l.shape.kr));
      std::printf("%-14s %-9s %22s %12.0f %10.1f%s\n", l.name.c_str(),
                  l.kind.c_str(), shape, l.cycles, l.gflops,
                  l.from_cache ? "  (cached)" : "");
    }
    double mpe_cycles = 0.0;
    for (const auto& l : r.layers)
      if (!l.conv) mpe_cycles += l.cycles;
    std::printf("%-14s %-9s %22s %12.0f\n", "(mpe passes)", "-", "-",
                mpe_cycles);

    std::printf("\ntuning: %lld distinct shapes (%lld cache hits), %.1fs\n",
                static_cast<long long>(r.shapes_tuned),
                static_cast<long long>(r.cache_hits), r.tune_seconds);
    std::printf(
        "memory: planned peak %.1f MB vs no-reuse %.1f MB (%.0f%%)\n",
        static_cast<double>(r.planned_peak_floats) * 4.0 / 1e6,
        static_cast<double>(r.naive_floats) * 4.0 / 1e6,
        100.0 * static_cast<double>(r.planned_peak_floats) /
            static_cast<double>(r.naive_floats > 0 ? r.naive_floats : 1));
    std::printf(
        "chip:   %.3e cycles (%.2e sync), %.1f GFLOPS, %.1f%% of %d-CG "
        "peak\n",
        r.cycles, r.sync_cycles, r.gflops, 100.0 * r.efficiency,
        r.groups_used);
    std::printf("        %.2f ms/batch, %.2f ms/image\n", r.ms_per_batch,
                r.ms_per_image);
    if (r.checked)
      std::printf("check:  max rel err %.2e (tol %.0e)\n", r.max_rel_err,
                  opts.tolerance);

    if (full_report) {
      std::printf("\n%s", compiled.report().c_str());
    }
    if (!journal_path.empty()) {
      if (compiled.journal().write_jsonl(journal_path))
        std::printf("journal: %s (%zu entries)\n", journal_path.c_str(),
                    compiled.journal().size());
      else
        std::fprintf(stderr, "failed to write journal %s\n",
                     journal_path.c_str());
    }

    if (!report_path.empty() && r.profile.enabled) {
      std::ofstream os(report_path);
      r.profile.write_chrome_trace(os);
      std::printf("trace:  %s\n", report_path.c_str());
    }

    if (r.checked && r.max_rel_err > opts.tolerance) {
      std::printf("FAILED: functional check exceeded tolerance\n");
      return 1;
    }
    std::printf("OK\n");
    return 0;
  } catch (const swatop::CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
