// bench_compare: diff two BENCH_<name>.json files (written by the shared
// bench_util emitter) or two directories of them, metric by metric, with a
// relative-tolerance gate. CI runs the fast benches and compares against the
// checked-in baselines under bench/baselines/ so simulator-visible
// performance regressions fail the build instead of drifting silently.
//
// Usage:
//   bench_compare <baseline.json> <current.json> [options]
//   bench_compare --dir <baseline_dir> <current_dir> [options]
// Options:
//   --tol F             default relative tolerance (default 0.05)
//   --tol-metric M=F    per-metric tolerance override (repeatable)
//   --include-time      also gate wall-clock metrics (names containing
//                       "seconds"; skipped by default -- host-time is noisy)
//
// Cases are matched by name. A case or metric present in the baseline but
// missing from the current run is a failure; extra cases/metrics in the
// current run are reported but pass (they become part of the baseline when
// it is refreshed). Exit: 0 pass, 1 regression/missing data, 2 usage/IO.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON ----
// Minimal recursive-descent parser for the BenchJson subset (objects,
// arrays, strings, numbers, true/false/null). No dependencies.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::Bool;
      out.b = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::Bool;
      out.b = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::Null;
      return literal("null");
    }
    return number(out);
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = e; break;  // \" \\ \/ and anything else: literal
        }
      }
      out += c;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    out.kind = JsonValue::Kind::Number;
    out.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }
  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------- bench data ----
struct BenchCase {
  std::map<std::string, double> metrics;  // includes "cycles" when > 0
};

struct BenchFile {
  std::string name;
  std::map<std::string, BenchCase> cases;  // by case name; ordered
};

bool load_bench(const std::string& path, BenchFile& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  JsonValue root;
  if (!JsonParser(text).parse(root) ||
      root.kind != JsonValue::Kind::Object) {
    std::fprintf(stderr, "bench_compare: %s: parse error\n", path.c_str());
    return false;
  }
  if (const JsonValue* n = root.find("name")) out.name = n->str;
  const JsonValue* cases = root.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::Array) {
    std::fprintf(stderr, "bench_compare: %s: no \"cases\" array\n",
                 path.c_str());
    return false;
  }
  for (const JsonValue& c : cases->arr) {
    const JsonValue* cname = c.find("name");
    if (cname == nullptr) continue;
    BenchCase bc;
    if (const JsonValue* m = c.find("metrics"))
      for (const auto& [k, v] : m->obj)
        if (v.kind == JsonValue::Kind::Number) bc.metrics[k] = v.num;
    if (const JsonValue* cy = c.find("cycles"))
      if (cy->kind == JsonValue::Kind::Number && cy->num > 0.0)
        bc.metrics["cycles"] = cy->num;
    out.cases[cname->str] = std::move(bc);
  }
  return true;
}

// ------------------------------------------------------------- compare ----
struct Options {
  double tol = 0.05;
  std::map<std::string, double> metric_tol;
  bool include_time = false;
};

bool is_time_metric(const std::string& name) {
  return name.find("seconds") != std::string::npos;
}

double tol_for(const Options& opt, const std::string& metric) {
  const auto it = opt.metric_tol.find(metric);
  return it != opt.metric_tol.end() ? it->second : opt.tol;
}

/// Returns the number of failures (0 == pass for this pair of files).
int compare_files(const BenchFile& base, const BenchFile& cur,
                  const Options& opt) {
  int failures = 0;
  int checked = 0, skipped = 0;
  for (const auto& [case_name, bcase] : base.cases) {
    const auto cit = cur.cases.find(case_name);
    if (cit == cur.cases.end()) {
      std::printf("  FAIL %s: case missing from current run\n",
                  case_name.c_str());
      ++failures;
      continue;
    }
    for (const auto& [metric, bval] : bcase.metrics) {
      if (!opt.include_time && is_time_metric(metric)) {
        ++skipped;
        continue;
      }
      const auto mit = cit->second.metrics.find(metric);
      if (mit == cit->second.metrics.end()) {
        std::printf("  FAIL %s.%s: metric missing from current run\n",
                    case_name.c_str(), metric.c_str());
        ++failures;
        continue;
      }
      ++checked;
      const double cval = mit->second;
      const double tol = tol_for(opt, metric);
      // Non-finite values can never pass a tolerance gate silently: every
      // comparison against NaN is false, which would read as "within
      // tolerance" here.
      if (!std::isfinite(bval) || !std::isfinite(cval)) {
        std::printf("  FAIL %s.%s: non-finite value (baseline %g, "
                    "current %g)\n",
                    case_name.c_str(), metric.c_str(), bval, cval);
        ++failures;
        continue;
      }
      if (std::abs(bval) <= 1e-12) {
        // Zero-valued baseline (e.g. dma_bytes_elided in the fusion-off
        // ablation): a relative diff is meaningless -- dividing by a
        // stand-in denominator of 1.0 would compare an *absolute* diff
        // against the *relative* tolerance, silently passing huge
        // regressions on large-magnitude metrics and spuriously failing
        // tiny jitter on small ones. Gate absolutely instead: any value
        // distinguishable from zero is a change.
        if (std::abs(cval) > 1e-9) {
          std::printf("  FAIL %s.%s: zero baseline but current %g\n",
                      case_name.c_str(), metric.c_str(), cval);
          ++failures;
        }
        continue;
      }
      const double rel = (cval - bval) / std::abs(bval);
      if (std::abs(rel) > tol) {
        std::printf("  FAIL %s.%s: %g -> %g (%+.2f%%, tol %.2f%%)\n",
                    case_name.c_str(), metric.c_str(), bval, cval,
                    rel * 100.0, tol * 100.0);
        ++failures;
      }
    }
  }
  for (const auto& [case_name, ccase] : cur.cases) {
    (void)ccase;
    if (base.cases.find(case_name) == base.cases.end())
      std::printf("  note %s: new case (not in baseline)\n",
                  case_name.c_str());
  }
  std::printf("%s: %d metric(s) checked, %d time metric(s) skipped, "
              "%d failure(s)\n",
              base.name.empty() ? "(unnamed)" : base.name.c_str(), checked,
              skipped, failures);
  return failures;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare <baseline.json> <current.json> [options]\n"
      "       bench_compare --dir <baseline_dir> <current_dir> [options]\n"
      "options: --tol F | --tol-metric NAME=F | --include-time\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  Options opt;
  bool dir_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--dir") {
      dir_mode = true;
    } else if (a == "--tol" && i + 1 < argc) {
      opt.tol = std::strtod(argv[++i], nullptr);
    } else if (a == "--tol-metric" && i + 1 < argc) {
      const std::string kv = argv[++i];
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        usage();
        return 2;
      }
      opt.metric_tol[kv.substr(0, eq)] =
          std::strtod(kv.c_str() + eq + 1, nullptr);
    } else if (a == "--include-time") {
      opt.include_time = true;
    } else if (!a.empty() && a[0] == '-') {
      usage();
      return 2;
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) {
    usage();
    return 2;
  }

  int failures = 0;
  if (dir_mode) {
    // Compare every BENCH_*.json in the baseline dir against its namesake
    // in the current dir. Extra files in the current dir are fine.
    namespace fs = std::filesystem;
    std::vector<std::string> names;
    for (const auto& e : fs::directory_iterator(positional[0])) {
      const std::string fn = e.path().filename().string();
      if (fn.rfind("BENCH_", 0) == 0 &&
          fn.size() > 5 && fn.substr(fn.size() - 5) == ".json")
        names.push_back(fn);
    }
    if (names.empty()) {
      std::fprintf(stderr, "bench_compare: no BENCH_*.json in %s\n",
                   positional[0].c_str());
      return 2;
    }
    std::sort(names.begin(), names.end());
    for (const std::string& fn : names) {
      BenchFile base, cur;
      if (!load_bench(positional[0] + "/" + fn, base)) return 2;
      if (!load_bench(positional[1] + "/" + fn, cur)) {
        std::printf("  FAIL %s: missing from current directory\n",
                    fn.c_str());
        ++failures;
        continue;
      }
      failures += compare_files(base, cur, opt);
    }
  } else {
    BenchFile base, cur;
    if (!load_bench(positional[0], base) || !load_bench(positional[1], cur))
      return 2;
    failures += compare_files(base, cur, opt);
  }

  if (failures > 0) {
    std::printf("bench_compare: FAIL (%d)\n", failures);
    return 1;
  }
  std::printf("bench_compare: PASS\n");
  return 0;
}
