// Schedule fuzzer driver. Two modes:
//
//   fuzz_schedules --seed 1 --cases 500
//     Draw random shapes, enumerate every candidate strategy, execute each
//     functionally with the simulator sanitizers armed, diff against the
//     naive reference. Exit 0 iff zero mismatches and zero sanitizer trips.
//
//   fuzz_schedules --op matmul:72,40,24 --strategy 'f:Tm=8 ...'
//     Replay one (operator, strategy) pair -- the repro one-liner printed
//     for every failure.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: fuzz_schedules [--seed N] [--cases N] [--max-dim N]\n"
         "                      [--tol X] [--no-sanitize] [--matmul-only]\n"
         "                      [--conv-only] [--fused] [--replay-diff]\n"
         "                      [--quiet]\n"
         "       fuzz_schedules --op KIND:D1,D2,... [--strategy TEXT]\n"
         "                      [--tol X] [--no-sanitize] [--replay-diff]\n"
         "operator kinds: matmul:M,N,K | implicit_conv | explicit_conv |\n"
         "  bwd_data | bwd_filter (b,ni,no,ri,ci,kr,kc,stride) |\n"
         "  winograd (...,m)\n"
         "--fused stamps random epilogues onto implicit-conv draws; a fused\n"
         "  op spec carries the epilogue as a kind suffix, e.g.\n"
         "  implicit_conv+bar,p1:1,32,32,6,6,3,3,1\n"
         "--replay-diff additionally records a TimingOnly trace per passing\n"
         "  candidate and requires its replay to be bit-identical\n";
}

}  // namespace

int main(int argc, char** argv) {
  swatop::check::FuzzOptions opts;
  opts.cases = 200;
  std::string op_spec;
  std::string strategy;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--cases") {
      opts.cases = std::strtoll(next(), nullptr, 10);
    } else if (a == "--max-dim") {
      opts.max_dim = std::strtoll(next(), nullptr, 10);
    } else if (a == "--tol") {
      opts.tolerance = std::strtod(next(), nullptr);
    } else if (a == "--no-sanitize") {
      opts.sanitize = false;
    } else if (a == "--matmul-only") {
      opts.conv = false;
    } else if (a == "--conv-only") {
      opts.matmul = false;
    } else if (a == "--fused") {
      opts.fused = true;
    } else if (a == "--replay-diff") {
      opts.replay_diff = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--op") {
      op_spec = next();
    } else if (a == "--strategy") {
      strategy = next();
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      usage();
      return 2;
    }
  }

  if (!quiet)
    opts.log = [](const std::string& line) { std::cout << line << "\n"; };

  swatop::check::FuzzReport rep;
  if (!op_spec.empty()) {
    if (strategy.empty()) {
      std::cerr << "--op requires --strategy\n";
      usage();
      return 2;
    }
    rep = swatop::check::replay(op_spec, strategy, opts);
  } else {
    rep = swatop::check::fuzz_schedules(opts);
  }

  std::cout << "fuzz: " << rep.cases_run << " cases over " << rep.shapes
            << " shapes, " << rep.failures.size() << " failure"
            << (rep.failures.size() == 1 ? "" : "s") << "\n";
  for (const auto& f : rep.failures) {
    std::cout << "---\n[" << f.kind << "] " << f.op << "\n  strategy: "
              << f.strategy << "\n  " << f.detail << "\n  repro: " << f.repro
              << "\n";
  }
  return rep.ok() ? 0 : 1;
}
