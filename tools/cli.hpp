// Shared command-line parsing for the tools/ binaries (run_network,
// serve_sim).
//
// Everything here is *strict*: a numeric token must parse in its entirety
// ("4abc" and "" are errors, not 4 and 0), ranges are checked at the parse
// site, and every failure exits with status 2 after printing a clear
// message plus the tool's usage text. Tools share this so their flag
// behaviour -- and their failure behaviour -- stays uniform.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

namespace swatop::cli {

/// Strict base-10 integer parse: the whole token must be consumed and in
/// range. Returns false on any malformation ("", "12x", overflow).
inline bool parse_int64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Strict finite-double parse: whole token, no NaN/Inf spellings.
inline bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() ||
      !(v <= std::numeric_limits<double>::max() &&
        v >= std::numeric_limits<double>::lowest()))
    return false;
  *out = v;
  return true;
}

/// Argument cursor over argv with fail-fast helpers. Typical shape:
///
///   Args args(argc, argv, usage);
///   const std::string net = args.pop("network name");
///   const std::int64_t batch = args.int64("batch", args.pop("batch"), 1);
///   while (args.more()) {
///     const std::string a = args.pop("option");
///     if (a == "--groups") groups = (int)args.int64(a, args.value(a), 1, 4);
///     else args.fail("unknown option '" + a + "'");
///   }
class Args {
 public:
  using UsageFn = void (*)();

  Args(int argc, char** argv, UsageFn usage)
      : argc_(argc), argv_(argv), usage_(usage) {}

  /// Print "error: <msg>", the usage text, and exit 2.
  [[noreturn]] void fail(const std::string& msg) const {
    std::cerr << "error: " << msg << "\n";
    if (usage_ != nullptr) usage_();
    std::exit(2);
  }

  bool more() const { return i_ < argc_; }

  /// Next raw token; missing => usage error naming what was expected.
  std::string pop(const std::string& what) {
    if (i_ >= argc_) fail("missing " + what);
    return argv_[i_++];
  }

  /// The value token of a `--flag VALUE` pair.
  std::string value(const std::string& flag) {
    if (i_ >= argc_) fail("missing value for " + flag);
    return argv_[i_++];
  }

  /// Strictly parse `tok` as an integer in [lo, hi]; `what` names it in
  /// the error message ("--groups", "batch").
  std::int64_t int64(const std::string& what, const std::string& tok,
                     std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
                     std::int64_t hi = std::numeric_limits<std::int64_t>::max())
      const {
    std::int64_t v = 0;
    if (!parse_int64(tok, &v))
      fail("invalid integer '" + tok + "' for " + what);
    if (v < lo || v > hi)
      fail(what + " = " + tok + " out of range [" + std::to_string(lo) +
           ", " + std::to_string(hi) + "]");
    return v;
  }

  /// Strictly parse `tok` as a finite double, optionally requiring > lo.
  double real(const std::string& what, const std::string& tok,
              bool require_positive = false) const {
    double v = 0.0;
    if (!parse_double(tok, &v))
      fail("invalid number '" + tok + "' for " + what);
    if (require_positive && !(v > 0.0))
      fail(what + " must be positive, got " + tok);
    return v;
  }

 private:
  int argc_;
  char** argv_;
  UsageFn usage_;
  int i_ = 1;  ///< argv[0] is the program name
};

}  // namespace swatop::cli
