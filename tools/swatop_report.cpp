// swatop_report: one command that explains where the cycles went and what
// the tuner did. Runs a whole network (graph engine) or a single operator
// (optimizer + interpreter) with observability and the tuning journal on,
// then renders:
//   - the per-layer network breakdown with cycle-attribution shares,
//   - the exact whole-run cycle attribution (categories sum to elapsed),
//   - the roofline table naming every span's binding resource,
//   - the tuning-journal summary (model error, rank correlation, regret),
//   - (op mode) the observability profile report,
// as text (default) or one JSON object (--json).
//
//   swatop_report net vgg16 4 --groups 2
//   swatop_report net resnet 8 --json
//   swatop_report op matmul 512 512 512 --top-k 4
//   swatop_report op conv 56 56 128 128 3 8
//
// Exit status: 0 on success, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "graph/build.hpp"
#include "graph/compile.hpp"
#include "obs/attribution.hpp"
#include "obs/roofline.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "tune/journal.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: swatop_report net <vgg16|resnet|yolo> <batch>\n"
         "         [--groups N]     core groups (1-4, default 1)\n"
         "         [--method M]     auto|implicit|explicit|winograd\n"
         "       swatop_report op matmul <M> <N> <K>\n"
         "       swatop_report op conv <ri> <ci> <ni> <no> <k> <batch>\n"
         "         [--top-k K]      measure the K model-ranked best\n"
         "       swatop_report serve-timeline <timeline.jsonl>\n"
         "         render a serve_sim --timeline file as a table\n"
         "       common options:\n"
         "         [--json]         one JSON object instead of text\n"
         "         [--journal FILE] also write the journal JSONL\n";
}

std::int64_t parse_int(const char* s) {
  char* end = nullptr;
  const std::int64_t v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || v < 1) {
    std::cerr << "bad number '" << s << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

swatop::graph::ConvMethod parse_method(const std::string& s) {
  using swatop::graph::ConvMethod;
  if (s == "auto") return ConvMethod::Auto;
  if (s == "implicit") return ConvMethod::Implicit;
  if (s == "explicit") return ConvMethod::Explicit;
  if (s == "winograd") return ConvMethod::Winograd;
  std::cerr << "unknown method '" << s << "'\n";
  usage();
  std::exit(2);
}

struct CommonArgs {
  bool json = false;
  std::string journal_path;
};

int report_net(const std::string& net, std::int64_t batch, int argc,
               char** argv, int i0) {
  swatop::SwatopConfig cfg;
  swatop::graph::NetOptions opts;
  opts.mode = swatop::sim::ExecMode::TimingOnly;
  opts.check = false;
  CommonArgs c;
  for (int i = i0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--groups") {
      opts.groups = static_cast<int>(parse_int(next()));
    } else if (a == "--method") {
      opts.method = parse_method(next());
    } else if (a == "--json") {
      c.json = true;
    } else if (a == "--journal") {
      c.journal_path = next();
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      usage();
      return 2;
    }
  }

  swatop::CompiledNet compiled =
      swatop::compile(swatop::graph::build_net(net), cfg);
  compiled.run(batch, opts);

  if (c.json)
    std::printf("%s\n", compiled.report_json().c_str());
  else
    std::printf("%s", compiled.report().c_str());
  if (!c.journal_path.empty())
    compiled.journal().write_jsonl(c.journal_path);
  return 0;
}

int report_op(int argc, char** argv, int i0) {
  if (i0 >= argc) {
    usage();
    return 2;
  }
  const std::string kind = argv[i0++];
  std::unique_ptr<swatop::dsl::OperatorDef> op;
  if (kind == "matmul") {
    if (i0 + 3 > argc) {
      usage();
      return 2;
    }
    op = std::make_unique<swatop::ops::MatmulOp>(
        parse_int(argv[i0]), parse_int(argv[i0 + 1]),
        parse_int(argv[i0 + 2]));
    i0 += 3;
  } else if (kind == "conv") {
    if (i0 + 6 > argc) {
      usage();
      return 2;
    }
    swatop::ops::ConvShape s;
    s.ri = parse_int(argv[i0]);
    s.ci = parse_int(argv[i0 + 1]);
    s.ni = parse_int(argv[i0 + 2]);
    s.no = parse_int(argv[i0 + 3]);
    s.kr = s.kc = parse_int(argv[i0 + 4]);
    s.batch = parse_int(argv[i0 + 5]);
    i0 += 6;
    op = std::make_unique<swatop::ops::ImplicitConvOp>(s);
  } else {
    std::cerr << "unknown operator '" << kind << "'\n";
    usage();
    return 2;
  }

  swatop::SwatopConfig cfg;
  cfg.observability.enabled = true;
  cfg.measure_best = true;
  CommonArgs c;
  for (int i = i0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--top-k") {
      cfg.tune_top_k = static_cast<int>(parse_int(next()));
    } else if (a == "--json") {
      c.json = true;
    } else if (a == "--journal") {
      c.journal_path = next();
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      usage();
      return 2;
    }
  }

  swatop::CompiledOp compiled = swatop::compile(*op, cfg);
  const swatop::OptimizedOperator& tuned = compiled.handle();
  const swatop::rt::RunResult r =
      compiled.run(swatop::sim::ExecMode::TimingOnly);
  const swatop::obs::Counters& cnt = r.profile.counters;
  const swatop::obs::Attribution attr = swatop::obs::attribute(cnt);
  const swatop::obs::RooflineMachine m =
      swatop::graph::roofline_machine(cfg.machine);
  const std::vector<swatop::obs::RooflinePoint> pts = {
      swatop::obs::roofline_place(op->name(), cnt, m)};

  if (c.json) {
    std::printf(
        "{\"op\": \"%s\", \"strategy\": \"%s\", \"cycles\": %.0f, "
        "\"predicted_cycles\": %.0f, \"events_dropped\": %lld, "
        "\"attribution\": %s, \"roofline\": %s, "
        "\"journal\": %s}\n",
        op->name().c_str(), tuned.candidate.strategy.to_string().c_str(),
        r.cycles, tuned.predicted_cycles,
        static_cast<long long>(r.profile.events_dropped),
        swatop::obs::attribution_json(attr).c_str(),
        swatop::obs::roofline_json(pts, m).c_str(),
        swatop::tune::journal_summary_json(compiled.journal()).c_str());
  } else {
    std::printf("%s: picked %s, %.0f cycles (model predicted %.0f)\n\n",
                op->name().c_str(),
                tuned.candidate.strategy.to_string().c_str(), r.cycles,
                tuned.predicted_cycles);
    std::fputs(swatop::obs::attribution_report(attr).c_str(), stdout);
    std::printf("\n%s", swatop::obs::roofline_report(pts, m).c_str());
    std::printf("\n%s", swatop::tune::journal_summary(compiled.journal()).c_str());
    std::printf("\n%s", r.profile.report().c_str());
  }
  if (!c.journal_path.empty())
    compiled.journal().write_jsonl(c.journal_path);
  return 0;
}

/// Numeric value of a top-level `"key":` in one JSONL line (0 when
/// absent). The caller slices off nested arrays first so the scan cannot
/// land on a per-net field of the same name.
double num_field(const std::string& s, const char* key) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t pos = s.find(pat);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(s.c_str() + pos + pat.size(), nullptr);
}

/// Render a serve_sim --timeline JSONL as a table, one row per window.
/// Deliberately a key scanner, not a JSON parser: the emitter's field
/// order and spelling are part of its determinism contract, so scanning
/// for `"key":` is reliable here (and keeps the tool dependency-free).
int report_serve_timeline(int argc, char** argv, int i0) {
  if (i0 >= argc) {
    usage();
    return 2;
  }
  std::ifstream is(argv[i0]);
  if (!is) {
    std::cerr << "error: cannot open " << argv[i0] << "\n";
    return 2;
  }
  std::printf("== serving timeline ==\n");
  std::printf(
      "%6s %9s %7s %6s %4s %5s %5s %6s %5s %9s %9s  %s\n", "window", "t0[ms]",
      "arrive", "admit", "rej", "shed", "done", "queue", "busy", "p50[ms]",
      "p99[ms]", "alerts");
  std::string line;
  std::int64_t windows = 0, alerts_total = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    // Top-level fields live before the nested "nets" array.
    const std::size_t nets = line.find(",\"nets\":");
    const std::string head =
        nets == std::string::npos ? line : line.substr(0, nets);
    // Burn alerts are embedded in the window line that raised them.
    std::string alerts;
    const std::size_t ap = line.find("\"alerts\":[");
    if (ap != std::string::npos) {
      std::size_t p = ap;
      while ((p = line.find("{\"net\":\"", p)) != std::string::npos) {
        p += 8;
        const std::size_t e = line.find('"', p);
        if (e == std::string::npos) break;
        if (!alerts.empty()) alerts += ",";
        alerts += line.substr(p, e - p);
        ++alerts_total;
      }
      if (!alerts.empty()) alerts = "! " + alerts;
    }
    std::printf(
        "%6lld %9.1f %7lld %6lld %4lld %5lld %5lld %6lld %5lld %9.2f %9.2f"
        "  %s\n",
        static_cast<long long>(num_field(head, "window")),
        num_field(head, "start_us") / 1e3,
        static_cast<long long>(num_field(head, "arrivals")),
        static_cast<long long>(num_field(head, "admitted")),
        static_cast<long long>(num_field(head, "rejected")),
        static_cast<long long>(num_field(head, "shed")),
        static_cast<long long>(num_field(head, "completed")),
        static_cast<long long>(num_field(head, "queue_images")),
        static_cast<long long>(num_field(head, "busy_chips")),
        num_field(head, "p50_ms"), num_field(head, "p99_ms"),
        alerts.c_str());
    ++windows;
  }
  std::printf("%lld windows, %lld burn alerts\n",
              static_cast<long long>(windows),
              static_cast<long long>(alerts_total));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string mode = argv[1];
  try {
    if (mode == "net") {
      if (argc < 4) {
        usage();
        return 2;
      }
      return report_net(argv[2], parse_int(argv[3]), argc, argv, 4);
    }
    if (mode == "op") return report_op(argc, argv, 2);
    if (mode == "serve-timeline") return report_serve_timeline(argc, argv, 2);
    std::cerr << "unknown mode '" << mode << "'\n";
    usage();
    return 2;
  } catch (const swatop::CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
