// Persistent schedule cache: tune once per (operator, machine, knobs).
//
// The model-based autotuner makes per-shape tuning cheap (Tab. 3), but a
// serving workload re-optimizes the same layers run after run. Shipping
// auto-schedulers (TVM's tuning logs, swTVM) therefore bank the winning
// schedule keyed by operator and machine; on Sunway the per-layer choice is
// stable enough to reuse (swCaffe). This cache stores the winning
// dsl::Strategy -- in the human-readable serialize() form -- plus its
// predicted/measured cycles, in memory and optionally on disk, keyed by a
// *versioned fingerprint* of everything that can change the winner:
//
//   v<N> | operator signature (name + dims) | every SimConfig field |
//   tuner knobs (prefetch, SPM reserve, candidate cap, top-k)
//
// File format (one line per entry, tab-separated, '#' header):
//
//   # swatop-schedule-cache v<N>
//   <fingerprint>\t<predicted>\t<measured>\t<prefetch>\t<strategy>
//
// A file whose header names a different version is ignored wholesale (a
// format/key bump invalidates old entries); a line that fails to parse is
// skipped and counted, never fatal. Later duplicate keys win, so appending
// is a valid update protocol. All public methods are thread-safe; the warm
// path (lookup of a banked key) takes a shared lock, so any number of
// serving threads can hit the cache concurrently while a miss-and-store
// briefly takes the lock exclusively.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "dsl/dsl.hpp"
#include "sim/config.hpp"

namespace swatop::tune {

/// Cache behaviour block of SwatopConfig.
struct CacheConfig {
  bool enabled = false;
  /// On-disk location; empty = in-memory only (still deduplicates within
  /// one Optimizer's lifetime).
  std::string path;
  /// Read the file but never write it back (shared/CI caches). Lookups
  /// still populate the in-memory map.
  bool read_only = false;
};

/// The tuner knobs that participate in the cache key: any of these changes
/// the schedule space or the pick, so they must not collide.
struct TunerKnobs {
  bool prefetch = true;
  std::int64_t spm_reserve_floats = 512;
  std::int64_t max_candidates = 0;
  int top_k = 0;
};

/// One banked tuning result.
struct CacheEntry {
  dsl::Strategy strategy;
  bool prefetch = false;          ///< double buffering applied to the winner
  double predicted_cycles = 0.0;  ///< cost-model estimate
  double measured_cycles = 0.0;   ///< 0 unless measured during tuning
};

class ScheduleCache {
 public:
  /// Bump to invalidate every existing cache file (key semantics or file
  /// format change). v2: strategies carry an EpilogueSpec (`e:` tokens) and
  /// operator signatures include the epilogue tag, so v1 unfused winners
  /// must never be replayed against fused operators.
  static constexpr int kVersion = 2;

  /// Loads `cfg.path` when set; a missing, unreadable or version-mismatched
  /// file yields an empty cache, never an error.
  explicit ScheduleCache(CacheConfig cfg);

  /// The versioned key. `op_signature` should be dsl::OperatorDef::name(),
  /// which encodes the dims for every shipped operator.
  static std::string fingerprint(const std::string& op_signature,
                                 const sim::SimConfig& machine,
                                 const TunerKnobs& knobs);

  std::optional<CacheEntry> lookup(const std::string& key) const;

  /// Insert/overwrite; appends to the backing file unless read-only. A
  /// pre-existing file with a stale header is rewritten in the current
  /// format on first store.
  void store(const std::string& key, const CacheEntry& entry);

  /// Rewrite the backing file compacted (drops superseded duplicate lines).
  /// No-op (returning false) without a writable path.
  bool save() const;

  std::size_t size() const;
  /// Unparseable lines skipped across all loads (corruption diagnostics).
  std::int64_t corrupt_entries_skipped() const;

  const CacheConfig& config() const { return cfg_; }

  static std::string file_header();

 private:
  void load_file_locked();
  bool write_all_locked() const;

  CacheConfig cfg_;
  /// Reader-writer lock: lookup/size/corrupt_entries_skipped share, store
  /// and save are exclusive.
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, CacheEntry> map_;
  std::int64_t corrupt_ = 0;
  /// File on disk is current-version and append-safe.
  bool file_appendable_ = false;
};

}  // namespace swatop::tune
