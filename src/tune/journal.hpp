// Tuning journal: an append-only record of every schedule candidate a
// tuner considered -- strategy fingerprint, predicted cycles, simulated
// cycles, model rank, and whether the candidate was pruned (model only) or
// actually run -- plus the derived statistics the paper's evaluation needs:
// model error (Fig. 9), rank correlation (does the static model order
// candidates the way the simulator does), and the regret curve (how fast
// the search converged on its winner).
//
// Entries are appended from the tuner's calling thread in candidate-index
// order after any parallel ranking/measuring joins, so a journal is
// byte-identical across thread counts (see tests/test_obs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swatop::tune {

/// One candidate's row. Negative predicted/measured mean "never evaluated
/// that way": a model-phase entry with measured < 0 was pruned by the model
/// (never run); a black-box entry has predicted < 0 (never modeled).
struct JournalEntry {
  std::string op;        ///< operator name
  std::string phase;     ///< "model" | "top-k" | "blackbox" | "cache"
  std::string strategy;  ///< strategy fingerprint
  std::int64_t index = -1;  ///< candidate index in enumeration order
  std::int64_t rank = -1;   ///< rank by the phase's score (0 = best)
  double predicted = -1.0;  ///< cost-model cycles (< 0: not predicted)
  double measured = -1.0;   ///< simulated cycles (< 0: pruned, never run)
  bool chosen = false;      ///< the tuner's final pick for this op
};

/// The journal proper: an in-memory append-only log. Share one across
/// operators/layers to get a whole-network record.
class Journal {
 public:
  void append(JournalEntry e) { entries_.push_back(std::move(e)); }
  const std::vector<JournalEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// One JSON object per line (JSONL). Unevaluated predicted/measured
  /// serialize as null.
  std::string to_jsonl() const;

  /// Write the JSONL to a file. `append` adds to an existing log (the
  /// on-disk journal is append-only across runs). Returns false on I/O
  /// failure.
  bool write_jsonl(const std::string& path, bool append = false) const;

 private:
  std::vector<JournalEntry> entries_;
};

std::string journal_entry_json(const JournalEntry& e);

/// Model-vs-simulator statistics over the entries carrying both a
/// predicted and a measured value.
struct ModelErrorStats {
  std::int64_t samples = 0;
  double mean_rel_err = 0.0;  ///< mean |predicted - measured| / measured
  double max_rel_err = 0.0;
  /// Spearman rank correlation between predicted and measured cycles
  /// (average ranks on ties); 0 when fewer than 2 samples.
  double rank_corr = 0.0;
};
ModelErrorStats model_error_stats(const std::vector<JournalEntry>& entries);

/// Regret curve over the *measured* entries in journal order: point k is
/// best-measured-so-far after k+1 measurements relative to the overall
/// best (0 = the search has found its winner).
std::vector<double> regret_curve(const std::vector<JournalEntry>& entries);

/// Human-readable summary: entry counts by phase, model-error statistics,
/// and the regret curve's convergence point.
std::string journal_summary(const Journal& j);

/// The same summary as one JSON object (not the per-entry log).
std::string journal_summary_json(const Journal& j);

}  // namespace swatop::tune
