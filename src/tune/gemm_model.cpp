#include "tune/gemm_model.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/least_squares.hpp"

namespace swatop::tune {

GemmCostModel GemmCostModel::fit(const isa::KernelCostDb& db) {
  GemmCostModel m;
  const sim::SimConfig& cfg = db.config();
  // Sample grid: the tile sizes the scheduler actually deploys (power-of-two
  // menus), legal for every variant (both local dims multiples of the
  // vector width).
  const std::vector<std::int64_t> ms = {32, 64, 128, 256};
  const std::vector<std::int64_t> ns = {32, 64, 128, 256};
  const std::vector<std::int64_t> ks = {8, 16, 32, 64, 128, 256};
  for (int v = 0; v < 8; ++v) {
    const auto variant = isa::KernelVariant::from_index(v);
    std::vector<double> X, y;
    for (std::int64_t M : ms) {
      for (std::int64_t N : ns) {
        for (std::int64_t K : ks) {
          const double t = db.spm_gemm_cycles(variant, M, N, K);
          // Weight each sample by 1/t: the fit minimizes *relative* error,
          // so cheap small-tile calls are predicted as well as large ones.
          // The K * vec-dim feature follows the paper's vecM switch.
          const double w = 1.0 / t;
          const std::int64_t V = variant.vec == isa::VecDim::M ? M : N;
          X.push_back(static_cast<double>(K) * w);
          X.push_back(static_cast<double>(K * V) * w);
          X.push_back(static_cast<double>(K * M) * static_cast<double>(N) *
                      w);
          X.push_back(static_cast<double>(M * N) * w);
          X.push_back(w);
          y.push_back(1.0);
        }
      }
    }
    const std::size_t rows = y.size();
    const auto c = least_squares(X, y, rows, 5);
    for (int i = 0; i < 5; ++i)
      m.coef_[v][static_cast<std::size_t>(i)] = c[static_cast<std::size_t>(i)];
    // Mean relative residual.
    double rel = 0.0;
    for (std::int64_t M : ms) {
      for (std::int64_t N : ns) {
        for (std::int64_t K : ks) {
          const double pred = m.cycles(v, M, N, K);
          const double meas = db.spm_gemm_cycles(variant, M, N, K);
          rel += std::fabs(pred - meas) / meas;
        }
      }
    }
    m.residual_[v] = rel / static_cast<double>(rows);
  }
  (void)cfg;
  return m;
}

double GemmCostModel::cycles(int variant, std::int64_t M, std::int64_t N,
                             std::int64_t K) const {
  SWATOP_CHECK(variant >= 0 && variant < 8);
  const auto& c = coef_[static_cast<std::size_t>(variant)];
  const std::int64_t V =
      isa::KernelVariant::from_index(variant).vec == isa::VecDim::M ? M : N;
  const double t = c[0] * static_cast<double>(K) +
                   c[1] * static_cast<double>(K * V) +
                   c[2] * static_cast<double>(K * M) * static_cast<double>(N) +
                   c[3] * static_cast<double>(M * N) + c[4];
  return t > 0.0 ? t : 0.0;
}

const std::array<double, 5>& GemmCostModel::coefficients(int variant) const {
  SWATOP_CHECK(variant >= 0 && variant < 8);
  return coef_[static_cast<std::size_t>(variant)];
}

const GemmCostModel& gemm_cost_model(const sim::SimConfig& cfg) {
  // One fitted model per distinct kernel-cost database (see
  // isa::kernel_cost_db for the key fields). Same locking discipline as
  // that registry: the map mutex is never held across the expensive fit
  // (which itself builds the kernel cost database), only across the slot
  // lookup; a per-key once_flag serializes exactly the threads that need
  // the same key.
  using Key = std::tuple<int, int, int, int, int, int, int>;
  const Key key{cfg.vmad_latency,  cfg.vload_latency, cfg.vstore_latency,
                cfg.reg_comm_latency, cfg.vector_width, cfg.mesh_rows,
                cfg.mesh_cols};
  struct Slot {
    std::once_flag once;
    std::unique_ptr<GemmCostModel> model;
  };
  static std::mutex mu;
  static std::map<Key, Slot> registry;
  Slot* slot;
  {
    const std::lock_guard<std::mutex> lock(mu);
    slot = &registry[key];
  }
  std::call_once(slot->once, [&] {
    slot->model = std::make_unique<GemmCostModel>(
        GemmCostModel::fit(isa::kernel_cost_db(cfg)));
  });
  return *slot->model;
}

}  // namespace swatop::tune
