#include "tune/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "ir/node.hpp"
#include "rt/bind.hpp"

namespace swatop::tune {

namespace {

using rt::ReplayEvent;

/// Append one double bit-exactly (hexfloat: round-trips without rounding,
/// and two doubles with equal text are the same bits up to -0.0/NaN, which
/// never appear in the serialized fields).
void key_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out += buf;
  out += ';';
}

void key_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
  out += ';';
}

void key_str(std::string& out, const std::string& s) {
  out += s;
  out += ';';
}

void key_expr(std::string& out, const ir::Expr& e) {
  out += e ? ir::to_string(e) : "~";
  out += ';';
}

void key_view(std::string& out, const ir::ViewAttrs& v) {
  key_str(out, v.tensor);
  key_expr(out, v.base);
  key_int(out, v.stride_r);
  key_int(out, v.stride_c);
  key_expr(out, v.rows);
  key_expr(out, v.cols);
}

void key_epi(std::string& out, const ir::EpilogueAttrs& e) {
  key_int(out, (e.bias ? 1 : 0) | (e.residual ? 2 : 0) | (e.relu ? 4 : 0) |
                   (e.channels_on_rows ? 8 : 0));
  key_expr(out, e.channel0);
  key_view(out, e.res);
}

/// Canonical recursive serializer. Unlike ir::print (a human-readable
/// pretty-printer), this covers *every* field that can change what the
/// interpreter books: rows_to_rid, scatter, channels_on_rows, alpha, the
/// kernel variant, reduction/prefetched markers.
void key_stmt(std::string& out, const ir::StmtPtr& s) {
  if (s == nullptr) {
    out += "0;";
    return;
  }
  switch (s->kind) {
    case ir::StmtKind::Seq:
      out += "S(";
      for (const ir::StmtPtr& c : s->body) key_stmt(out, c);
      out += ')';
      return;
    case ir::StmtKind::For:
      out += "F(";
      key_str(out, s->var);
      key_expr(out, s->extent);
      key_int(out, (s->prefetched ? 1 : 0) | (s->reduction ? 2 : 0));
      key_stmt(out, s->for_body);
      out += ')';
      return;
    case ir::StmtKind::If:
      out += "I(";
      key_expr(out, s->cond);
      key_stmt(out, s->then_s);
      key_stmt(out, s->else_s);
      out += ')';
      return;
    case ir::StmtKind::SpmAlloc:
      out += "A(";
      key_str(out, s->buf_name);
      key_int(out, s->buf_floats);
      key_int(out, s->double_buffered ? 1 : 0);
      out += ')';
      return;
    case ir::StmtKind::SpmZero:
      out += "Z(";
      key_str(out, s->buf_name);
      key_expr(out, s->zero_off);
      key_expr(out, s->zero_floats);
      out += ')';
      return;
    case ir::StmtKind::DmaGet:
    case ir::StmtKind::DmaPut: {
      out += s->kind == ir::StmtKind::DmaGet ? "Dg(" : "Dp(";
      const ir::DmaAttrs& d = s->dma;
      key_view(out, d.view);
      key_expr(out, d.rows_p);
      key_expr(out, d.cols_p);
      key_str(out, d.spm_buf);
      key_expr(out, d.spm_off);
      key_expr(out, d.reply);
      key_int(out, (d.dir == ir::Direction::MemToSpm ? 1 : 0) |
                       (d.scatter ? 2 : 0) | (d.rows_to_rid ? 4 : 0));
      key_epi(out, d.epi);
      out += ')';
      return;
    }
    case ir::StmtKind::DmaWait:
      out += "W(";
      key_expr(out, s->wait_reply);
      out += ')';
      return;
    case ir::StmtKind::Gemm: {
      out += "G(";
      const ir::GemmAttrs& g = s->gemm;
      key_expr(out, g.M);
      key_expr(out, g.N);
      key_expr(out, g.K);
      key_num(out, static_cast<double>(g.alpha));
      key_int(out, g.variant);
      key_view(out, g.a);
      key_view(out, g.b);
      key_view(out, g.c);
      key_str(out, g.a_buf);
      key_str(out, g.b_buf);
      key_str(out, g.c_buf);
      key_expr(out, g.a_off);
      key_expr(out, g.b_off);
      key_expr(out, g.c_off);
      key_epi(out, g.epi);
      out += ')';
      return;
    }
    case ir::StmtKind::Comment:
      // No booking -- keep comments out of the key so annotation-only
      // differences still hit.
      return;
  }
}

}  // namespace

std::string replay_key(const ir::StmtPtr& program,
                       const dsl::BoundTensors& bt,
                       const sim::SimConfig& cfg) {
  std::string out;
  out.reserve(1024);
  // Machine: every parameter a booking can depend on.
  out += "m:";
  key_int(out, cfg.mesh_rows);
  key_int(out, cfg.mesh_cols);
  key_int(out, static_cast<std::int64_t>(cfg.spm_bytes));
  key_num(out, cfg.clock_ghz);
  key_num(out, cfg.dma_peak_bw_gbs);
  key_num(out, cfg.dma_latency_cycles);
  key_int(out, static_cast<std::int64_t>(cfg.dram_transaction_bytes));
  key_num(out, cfg.gls_bw_gbs);
  key_num(out, cfg.reg_comm_bw_gbs);
  key_int(out, cfg.vector_width);
  key_int(out, cfg.vmad_latency);
  key_int(out, cfg.vload_latency);
  key_int(out, cfg.vstore_latency);
  key_int(out, cfg.reg_comm_latency);
  key_int(out, cfg.sanitize.enabled ? 1 : 0);
  // Tensor binding: the resolved arena addresses (sorted by name -- the
  // map order is not canonical).
  out += "t:";
  std::vector<std::pair<std::string, sim::MainMemory::Addr>> sorted(
      bt.begin(), bt.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [name, addr] : sorted) {
    out += name;
    out += '=';
    key_int(out, addr);
  }
  // The lowered program.
  out += "p:";
  key_stmt(out, program);
  return out;
}

rt::RunResult replay_trace(const rt::ReplayTrace& t) {
  SWATOP_CHECK(t.complete) << "replay of an incomplete trace";
  // Local mirrors of the core group's clock, the DMA engine's free_at and
  // the reply table -- the replay loop performs the exact operations the
  // booking entry points perform (sim/core_group.cpp, sim/dma.cpp), in the
  // recorded order, so every double below matches bit-for-bit.
  double now = 0.0;
  double free_at = 0.0;
  sim::CgStats st;
  std::int64_t bytes_elided = 0;
  std::vector<double> reply(static_cast<std::size_t>(ir::kMaxReplySlots),
                            -1.0);

  // book_dma: queue-wait accounting, engine booking, transfer statistics.
  auto book = [&](const sim::DmaCost& c) -> double {
    st.dma_queue_wait_cycles += free_at > now ? free_at - now : 0.0;
    const double start = std::max(now, free_at);
    const double done = start + c.total_cycles();
    free_at = done;
    st.dma_bytes_requested += c.bytes_requested;
    st.dma_bytes_wasted += c.bytes_wasted;
    st.dma_transactions += c.transactions;
    st.dma_transfers += 1;
    return done;
  };
  // wait_until: stall accounting.
  auto wait_until = [&](double done) {
    if (done > now) {
      st.dma_stall_cycles += done - now;
      now = done;
    }
  };

  // Cursors over the per-kind side streams (see rt/replay_trace.hpp: the
  // base stream fixes the global order, the payloads are consumed in their
  // own streams' order).
  std::size_t dma_i = 0, elide_i = 0, gemm_i = 0;
  for (const ReplayEvent& e : t.events) {
    switch (e.kind) {
      case ReplayEvent::Kind::Compute:
        now += e.cycles;
        st.compute_cycles += e.cycles;
        break;
      case ReplayEvent::Kind::Gemm: {
        SWATOP_CHECK(gemm_i < t.gemm_extras.size())
            << "replay: gemm_extras stream exhausted";
        const rt::ReplayGemmExtra& gx = t.gemm_extras[gemm_i++];
        now += e.cycles;
        st.compute_cycles += e.cycles;
        st.gemm_calls += 1;
        st.flops += gx.flops;
        st.gemm_cycles += e.cycles;
        st.gemm_comm_cycles += gx.comm_cycles;
        st.pipe.issued_p0 += gx.pipe.issued_p0;
        st.pipe.issued_p1 += gx.pipe.issued_p1;
        st.pipe.raw_stall_cycles += gx.pipe.raw_stall_cycles;
        break;
      }
      case ReplayEvent::Kind::DmaIssue:
        SWATOP_CHECK(e.slot >= 0 && e.slot < ir::kMaxReplySlots)
            << "replay: reply slot " << e.slot << " out of range";
        SWATOP_CHECK(dma_i < t.dma_costs.size())
            << "replay: dma_costs stream exhausted";
        reply[static_cast<std::size_t>(e.slot)] = book(t.dma_costs[dma_i++]);
        break;
      case ReplayEvent::Kind::DmaElide:
        SWATOP_CHECK(e.slot >= 0 && e.slot < ir::kMaxReplySlots)
            << "replay: reply slot " << e.slot << " out of range";
        SWATOP_CHECK(elide_i < t.elided_bytes.size())
            << "replay: elided_bytes stream exhausted";
        bytes_elided += t.elided_bytes[elide_i++];
        reply[static_cast<std::size_t>(e.slot)] = now;
        break;
      case ReplayEvent::Kind::DmaSync:
        SWATOP_CHECK(dma_i < t.dma_costs.size())
            << "replay: dma_costs stream exhausted";
        wait_until(book(t.dma_costs[dma_i++]));
        break;
      case ReplayEvent::Kind::SyncElide:
        SWATOP_CHECK(elide_i < t.elided_bytes.size())
            << "replay: elided_bytes stream exhausted";
        bytes_elided += t.elided_bytes[elide_i++];
        break;
      case ReplayEvent::Kind::Wait: {
        SWATOP_CHECK(e.slot >= 0 && e.slot < ir::kMaxReplySlots)
            << "replay: reply slot " << e.slot << " out of range";
        const double done = reply[static_cast<std::size_t>(e.slot)];
        SWATOP_CHECK(done >= 0.0)
            << "replay: wait on empty reply slot " << e.slot;
        wait_until(done);
        reply[static_cast<std::size_t>(e.slot)] = -1.0;
        break;
      }
    }
  }

  rt::RunResult r;
  r.cycles = now;
  r.stats = st;
  r.bytes_elided = bytes_elided;
  return r;
}

std::string replay_diff(const rt::RunResult& a, const rt::RunResult& b) {
  std::ostringstream os;
  os.precision(17);
  auto num = [&](const char* field, double x, double y) -> bool {
    if (x == y) return false;
    os << field << ": " << x << " vs " << y;
    return true;
  };
  auto cnt = [&](const char* field, std::int64_t x, std::int64_t y) -> bool {
    if (x == y) return false;
    os << field << ": " << x << " vs " << y;
    return true;
  };
  const sim::CgStats& s = a.stats;
  const sim::CgStats& t = b.stats;
  if (num("cycles", a.cycles, b.cycles) ||
      num("compute_cycles", s.compute_cycles, t.compute_cycles) ||
      num("dma_stall_cycles", s.dma_stall_cycles, t.dma_stall_cycles) ||
      num("dma_queue_wait_cycles", s.dma_queue_wait_cycles,
          t.dma_queue_wait_cycles) ||
      cnt("dma_bytes_requested", s.dma_bytes_requested,
          t.dma_bytes_requested) ||
      cnt("dma_bytes_wasted", s.dma_bytes_wasted, t.dma_bytes_wasted) ||
      cnt("dma_transactions", s.dma_transactions, t.dma_transactions) ||
      cnt("dma_transfers", s.dma_transfers, t.dma_transfers) ||
      cnt("flops", s.flops, t.flops) ||
      cnt("gemm_calls", s.gemm_calls, t.gemm_calls) ||
      num("gemm_cycles", s.gemm_cycles, t.gemm_cycles) ||
      num("gemm_comm_cycles", s.gemm_comm_cycles, t.gemm_comm_cycles) ||
      num("pipe.issued_p0", s.pipe.issued_p0, t.pipe.issued_p0) ||
      num("pipe.issued_p1", s.pipe.issued_p1, t.pipe.issued_p1) ||
      num("pipe.raw_stall_cycles", s.pipe.raw_stall_cycles,
          t.pipe.raw_stall_cycles) ||
      cnt("bytes_elided", a.bytes_elided, b.bytes_elided)) {
    return os.str();
  }
  return std::string();
}

ReplayStats ReplayExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::int64_t ReplayExecutor::cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(cache_.size());
}

double ReplayExecutor::measure(const dsl::OperatorDef& op,
                               const sched::Candidate& cand,
                               const sim::SimConfig& cfg) {
  // Scratch core group on non-materialized memory, exactly like
  // tune::measure_candidate -- binding also resolves the tensor addresses
  // the key covers (arena allocation is deterministic per operator).
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  if (!opts_.enabled) {
    rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
    return interp.run(cand.program, bt).cycles;
  }

  const std::string key = replay_key(cand.program, bt, cfg);
  std::shared_ptr<const rt::ReplayTrace> trace;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      trace = it->second;
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }

  if (trace) {
    const rt::RunResult r = replay_trace(*trace);
    if (opts_.oracle) {
      rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
      const rt::RunResult ref = interp.run(cand.program, bt);
      const std::string diff = replay_diff(r, ref);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.oracle_checks;
        if (!diff.empty()) ++stats_.oracle_mismatches;
      }
      SWATOP_CHECK(diff.empty())
          << "replay oracle mismatch for " << op.name() << " / "
          << cand.strategy.to_string() << ": " << diff;
    }
    return r.cycles;
  }

  // Miss: measure through the interpreter, recording the event schedule.
  auto rec = std::make_shared<rt::ReplayTrace>();
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  interp.set_trace_sink(rec.get());
  const rt::RunResult run = interp.run(cand.program, bt);
  // Store-time self-check: replaying the fresh trace must reproduce the
  // recording run bit-for-bit. Costs one cheap replay per distinct key and
  // turns "replay drifted from the interpreter" into a fallback instead of
  // a wrong measurement.
  bool cacheable =
      rec->complete &&
      static_cast<std::int64_t>(rec->events.size()) <=
          opts_.max_trace_events &&
      replay_diff(replay_trace(*rec), run).empty();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cacheable &&
        static_cast<std::int64_t>(cache_.size()) < opts_.max_cached_traces) {
      cache_.emplace(key, std::move(rec));
    } else {
      ++stats_.fallbacks;
    }
  }
  return run.cycles;
}

}  // namespace swatop::tune
