// Trace-replay fast path, replay side (ROADMAP item 2; in the spirit of
// ONNXim's trace-driven measurement -- see rt/replay_trace.hpp for the
// recording side).
//
// Measuring a candidate through the timing interpreter walks every loop
// iteration and evaluates every extent/address expression. The first
// measurement of a structurally identical (program, tensor binding,
// machine) triple records the flat booking-event schedule; every later
// measurement replays that event list -- a tight loop over plain structs,
// no IR walk, no expression evaluation -- and reproduces the interpreter's
// clock and statistics *bit-identically* (each event carries the exact
// double-precision operands the interpreter handed the core group, and the
// replay loop performs the same floating-point operations in the same
// order).
//
// Legality: replay is valid only for a trace whose recording run finished
// normally in TimingOnly mode (ReplayTrace::complete), keyed on a canonical
// serialization of the lowered IR (every timing-relevant field), the bound
// tensor addresses, and the machine config. Anything else -- an incomplete
// trace, an over-budget event list, a full cache -- falls back to the
// interpreter and is counted (ReplayStats::fallbacks). The differential
// oracle mode re-runs the interpreter on every cache hit and checks the
// replayed result bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dsl/dsl.hpp"
#include "rt/interpreter.hpp"  // rt::RunResult, rt::ReplayTrace
#include "sched/scheduler.hpp"

namespace swatop::tune {

struct ReplayOptions {
  bool enabled = false;  ///< master switch: measure() interprets when off
  /// Differential oracle: on every cache hit, additionally re-run the
  /// loop-by-loop interpreter and SWATOP_CHECK the replayed cycles, every
  /// statistics field and the elided bytes bit-identical. For tests and
  /// the fuzzer -- it costs more than it saves.
  bool oracle = false;
  /// Traces longer than this are not cached (replaying them would not beat
  /// re-interpreting by much, and the memory is real).
  std::int64_t max_trace_events = std::int64_t{1} << 22;
  /// Cap on distinct cached traces (first-come; tuning sweeps re-measure
  /// the same shortlist, so early keys are the hot ones).
  std::int64_t max_cached_traces = 512;
};

/// Fast-path accounting, surfaced through obs::TuneCounters.
struct ReplayStats {
  std::int64_t hits = 0;        ///< measurements served by replay
  std::int64_t misses = 0;      ///< first-time measurements (recorded)
  std::int64_t fallbacks = 0;   ///< recorded but not cacheable
  std::int64_t oracle_checks = 0;
  std::int64_t oracle_mismatches = 0;
};

/// Replay a recorded event schedule; returns the run result the recording
/// interpreter run produced, bit-identically (cycles, CgStats,
/// bytes_elided; the profile member stays empty). The trace must be
/// complete.
rt::RunResult replay_trace(const rt::ReplayTrace& t);

/// "" when `a` and `b` agree bit-for-bit on cycles, every CgStats field
/// and bytes_elided; otherwise names the first differing field with both
/// values. Shared by the oracle mode, the fuzzer's differential smoke and
/// the unit tests.
std::string replay_diff(const rt::RunResult& a, const rt::RunResult& b);

/// Canonical structural key of a measurement: serializes every
/// timing-relevant field of the lowered IR (ir::print omits some, e.g.
/// DmaAttrs::rows_to_rid), the sorted bound-tensor addresses, and the
/// machine parameters. Two measurements with equal keys book identical
/// event schedules.
std::string replay_key(const ir::StmtPtr& program,
                       const dsl::BoundTensors& bt,
                       const sim::SimConfig& cfg);

/// The executor: a thread-safe trace cache fronting the timing
/// interpreter. Share one across a tuning run (the tuners take a non-owning
/// pointer); measurements of structurally identical candidates after the
/// first replay in microseconds.
class ReplayExecutor {
 public:
  explicit ReplayExecutor(ReplayOptions opts = {}) : opts_(opts) {}

  /// Measure one candidate: replay on a key hit, interpret-and-record on a
  /// miss. Drop-in for tune::measure_candidate (scratch core group,
  /// non-materialized memory). Safe to call concurrently.
  double measure(const dsl::OperatorDef& op, const sched::Candidate& cand,
                 const sim::SimConfig& cfg);

  const ReplayOptions& options() const { return opts_; }
  ReplayStats stats() const;
  /// Cached trace count (tests).
  std::int64_t cached() const;

 private:
  ReplayOptions opts_;
  mutable std::mutex mu_;
  ReplayStats stats_;
  std::unordered_map<std::string, std::shared_ptr<const rt::ReplayTrace>>
      cache_;
};

}  // namespace swatop::tune
