#include "tune/schedule_cache.hpp"

#include <cerrno>
#include <cmath>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace swatop::tune {

namespace {

/// Exact decimal form so a round-trip through the file compares equal.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool parse_double(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  // Reject trailing garbage ("123abc"), out-of-range values, and the
  // non-finite spellings strtod accepts ("nan", "inf"): a corrupted cache
  // line must not inject NaN/Inf cycles into the warm path, where every
  // comparison against them silently goes one way.
  if (errno != 0 || end == s.c_str() || *end != '\0' || !std::isfinite(v))
    return false;
  *out = v;
  return true;
}

/// Split a cache line into exactly `n` tab-separated fields.
bool split_fields(const std::string& line, std::size_t n,
                  std::vector<std::string>* out) {
  out->clear();
  std::size_t pos = 0;
  while (out->size() + 1 < n) {
    const std::size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) return false;
    out->push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
  const std::string last = line.substr(pos);
  if (last.find('\t') != std::string::npos) return false;
  out->push_back(last);
  return true;
}

}  // namespace

std::string ScheduleCache::file_header() {
  return "# swatop-schedule-cache v" + std::to_string(kVersion);
}

ScheduleCache::ScheduleCache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  if (!cfg_.path.empty()) load_file_locked();
}

std::string ScheduleCache::fingerprint(const std::string& op_signature,
                                       const sim::SimConfig& m,
                                       const TunerKnobs& k) {
  std::ostringstream os;
  os << "v" << kVersion << "|op=" << op_signature << "|machine="
     << m.mesh_rows << "x" << m.mesh_cols << ",spm=" << m.spm_bytes
     << ",clk=" << fmt_double(m.clock_ghz)
     << ",dmabw=" << fmt_double(m.dma_peak_bw_gbs)
     << ",dmalat=" << fmt_double(m.dma_latency_cycles)
     << ",txn=" << m.dram_transaction_bytes
     << ",glsbw=" << fmt_double(m.gls_bw_gbs)
     << ",rcbw=" << fmt_double(m.reg_comm_bw_gbs)
     << ",vw=" << m.vector_width << ",vmad=" << m.vmad_latency
     << ",vld=" << m.vload_latency << ",vst=" << m.vstore_latency
     << ",rcl=" << m.reg_comm_latency
     << "|knobs=pf=" << (k.prefetch ? 1 : 0)
     << ",reserve=" << k.spm_reserve_floats
     << ",maxc=" << k.max_candidates << ",topk=" << k.top_k;
  return os.str();
}

void ScheduleCache::load_file_locked() {
  std::ifstream in(cfg_.path);
  if (!in) {
    // No file yet: the first store creates it (header included).
    file_appendable_ = false;
    return;
  }
  std::string line;
  if (!std::getline(in, line) || line != file_header()) {
    // Foreign or stale-version file: ignore every entry; a later store
    // rewrites it in the current format.
    file_appendable_ = false;
    return;
  }
  file_appendable_ = true;
  std::vector<std::string> f;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    CacheEntry e;
    std::optional<dsl::Strategy> s;
    // Cheap field checks first; Strategy::parse (tokenizing, allocating)
    // runs last and only on lines whose other fields already validated --
    // in particular the empty-strategy check short-circuits *before* the
    // parse, which would otherwise accept "" as an empty strategy.
    if (!split_fields(line, 5, &f) || f[0].empty() || f[4].empty() ||
        !parse_double(f[1], &e.predicted_cycles) ||
        !parse_double(f[2], &e.measured_cycles) ||
        (f[3] != "0" && f[3] != "1") ||
        !(s = dsl::Strategy::parse(f[4]))) {
      ++corrupt_;  // skip, never crash: a corrupt cache only loses reuse
      continue;
    }
    e.prefetch = f[3] == "1";
    e.strategy = std::move(*s);
    map_[f[0]] = std::move(e);  // duplicate keys: last wins
  }
}

std::optional<CacheEntry> ScheduleCache::lookup(
    const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool ScheduleCache::write_all_locked() const {
  if (cfg_.path.empty() || cfg_.read_only) return false;
  std::ofstream out(cfg_.path, std::ios::trunc);
  if (!out) return false;
  out << file_header() << "\n";
  for (const auto& [key, e] : map_) {
    out << key << '\t' << fmt_double(e.predicted_cycles) << '\t'
        << fmt_double(e.measured_cycles) << '\t' << (e.prefetch ? 1 : 0)
        << '\t' << e.strategy.serialize() << "\n";
  }
  return out.good();
}

void ScheduleCache::store(const std::string& key, const CacheEntry& entry) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  map_[key] = entry;
  if (cfg_.path.empty() || cfg_.read_only) return;
  if (!file_appendable_) {
    // First store onto a missing/stale file: rewrite whole (tiny) map.
    file_appendable_ = write_all_locked();
    return;
  }
  std::ofstream out(cfg_.path, std::ios::app);
  if (!out) return;
  out << key << '\t' << fmt_double(entry.predicted_cycles) << '\t'
      << fmt_double(entry.measured_cycles) << '\t'
      << (entry.prefetch ? 1 : 0) << '\t' << entry.strategy.serialize()
      << "\n";
}

bool ScheduleCache::save() const {
  // Exclusive even though the map is not mutated: save() rewrites the
  // backing file, and two concurrent writers would interleave lines.
  const std::unique_lock<std::shared_mutex> lock(mu_);
  return write_all_locked();
}

std::size_t ScheduleCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

std::int64_t ScheduleCache::corrupt_entries_skipped() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return corrupt_;
}

}  // namespace swatop::tune
