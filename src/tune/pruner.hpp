// Journal-trained ranking pruner: an online least-squares model over
// strategy features that cuts the black-box tuner's measured set before the
// (already fast) trace-replay measurements.
//
// The paper's model-based autotuner ranks with a hand-built analytical
// model; this pruner is the data-driven complement: it trains on the
// (strategy, measured cycles) pairs the tuning journal records -- no
// hand-modeling, reusing common/least_squares -- and predicts log-cycles
// from hashed strategy features. Until enough samples accumulate the
// pruner is inert (every candidate is measured), so the tuner's argmin at
// default settings is unchanged; once trained it keeps the top
// keep_fraction of candidates by predicted cycles (never fewer than
// min_keep), and the journal's regret curve records what the cut cost.
//
// Training accumulates the normal equations incrementally (d x d with
// d = 33), so observe() is O(d^2) and no sample storage grows with the
// search space.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "dsl/dsl.hpp"
#include "sched/scheduler.hpp"

namespace swatop::tune {

struct PrunerOptions {
  bool enabled = false;  ///< master switch: prune() is inert when off
  /// Fraction of the candidate set kept for measurement once trained.
  double keep_fraction = 0.5;
  /// Never keep fewer candidates than this (a mis-trained model must not
  /// be able to prune the search to nothing).
  std::int64_t min_keep = 8;
  /// Observations required before the model is trusted to prune.
  std::int64_t min_train_samples = 32;
  /// Ridge regularizer added to the normal equations' diagonal (hashed
  /// features collide; plain least squares can go singular).
  double ridge = 1e-3;
};

/// The pruning verdict for one candidate set. `active == false` (pruner
/// off, still warming up, or a singular fit) means: measure everything,
/// the other members are empty.
struct PruneDecision {
  bool active = false;
  std::vector<double> predicted;  ///< predicted cycles, per candidate
  std::vector<char> keep;         ///< 1 = measure, 0 = pruned
  std::int64_t kept = 0;
};

class RankingPruner {
 public:
  explicit RankingPruner(PrunerOptions opts = {}) : opts_(opts) {}

  /// Feed one measurement (the tuners call this for every candidate they
  /// actually ran). Non-finite or non-positive cycles are ignored.
  /// Thread-safe.
  void observe(const dsl::Strategy& s, double measured_cycles);

  /// Decide which of `cands` to measure. Thread-safe; refits lazily when
  /// new observations arrived since the last fit.
  PruneDecision prune(const std::vector<sched::Candidate>& cands) const;

  std::int64_t samples() const;
  bool trained() const;

  /// Feature dimension: bias + 16 hashed factor buckets (magnitude
  /// log-scaled) + 16 hashed choice buckets (one-hot-ish).
  static constexpr std::size_t kDim = 33;

  /// Hashed feature vector of one strategy (exposed for tests).
  static std::vector<double> features(const dsl::Strategy& s);

 private:
  bool fit_locked() const;  ///< requires mu_; true when coef_ is usable

  PrunerOptions opts_;
  mutable std::mutex mu_;
  // Running normal equations: xtx_ += x x^T, xty_ += x * log(cycles).
  std::vector<double> xtx_ = std::vector<double>(kDim * kDim, 0.0);
  std::vector<double> xty_ = std::vector<double>(kDim, 0.0);
  std::int64_t samples_ = 0;
  mutable std::vector<double> coef_;  ///< empty until fitted
  mutable bool dirty_ = false;
};

}  // namespace swatop::tune
