// The static performance model of the autotuner (Sec. 4.6).
//
// Walks a candidate's IR without iterating data: loop costs are the
// first-iteration body cost times the trip count, DMA nodes are priced with
// Eq. (1) (transaction-granular transfer + start-up latency), gemm nodes
// with the fitted Eq. (2) linear model, and -- because prefetching overlaps
// transfers and computation -- the overall estimate is
// max(T_DMA, T_compute) for double-buffered programs and the sum otherwise.
// The first-iteration approximation of boundary tiles and the linear-fit
// residual are the model's (intentional, paper-faithful) error sources.
#pragma once

#include "ir/node.hpp"
#include "rt/dma_expand.hpp"
#include "sim/dma.hpp"
#include "tune/gemm_model.hpp"

namespace swatop::tune {

struct StaticCost {
  /// Transfers rewritten by double buffering: overlap with computation.
  double dma_overlapped_cycles = 0.0;
  /// Synchronous get;wait / put;wait transfers (the output accumulator
  /// traffic, un-prefetched gets): the cluster stalls on these.
  double dma_sync_cycles = 0.0;
  double compute_cycles = 0.0;
  bool overlapped = false;  ///< a prefetched loop was seen

  double dma_cycles() const {
    return dma_overlapped_cycles + dma_sync_cycles;
  }

  /// Sync transfers serialize with computation (and occupy the engine);
  /// prefetched transfers hide behind whichever side is longer.
  double total() const {
    if (!overlapped) return dma_cycles() + compute_cycles;
    return dma_sync_cycles +
           std::max(dma_overlapped_cycles, compute_cycles);
  }
};

class CostModel {
 public:
  CostModel(const sim::SimConfig& cfg, const GemmCostModel& gm)
      : cfg_(cfg), engine_(cfg_), gm_(gm) {}

  StaticCost estimate(const ir::StmtPtr& root) const;

 private:
  void walk(const ir::StmtPtr& s, ir::Env& env, StaticCost* acc,
            double scale) const;

  sim::SimConfig cfg_;
  sim::DmaEngine engine_;
  const GemmCostModel& gm_;
  mutable rt::DmaCostCache dma_cost_cache_;
};

}  // namespace swatop::tune
