#include "tune/cost_model.hpp"

#include "common/check.hpp"
#include "rt/dma_expand.hpp"

namespace swatop::tune {

namespace ir = swatop::ir;

StaticCost CostModel::estimate(const ir::StmtPtr& root) const {
  StaticCost acc;
  ir::Env env;
  walk(root, env, &acc, 1.0);
  return acc;
}

void CostModel::walk(const ir::StmtPtr& s, ir::Env& env, StaticCost* acc,
                     double scale) const {
  if (s == nullptr) return;
  switch (s->kind) {
    case ir::StmtKind::Seq:
      for (const ir::StmtPtr& c : s->body) walk(c, env, acc, scale);
      return;
    case ir::StmtKind::For: {
      const std::int64_t n = ir::eval(s->extent, env);
      if (n <= 0) return;
      if (s->prefetched) acc->overlapped = true;
      // (n-1) first-shape iterations plus the last iteration evaluated
      // separately: this prices ragged boundary tiles and the final
      // iteration's skipped prefetch exactly, while staying static.
      env[s->var] = 0;
      walk(s->for_body, env, acc, scale * static_cast<double>(n - 1));
      if (n > 1) {
        env[s->var] = n - 1;
        walk(s->for_body, env, acc, scale);
      } else {
        walk(s->for_body, env, acc, scale);
      }
      env.erase(s->var);
      return;
    }
    case ir::StmtKind::If:
      // Static approximation: follow the branch taken at the current
      // (first-iteration) environment.
      if (ir::eval(s->cond, env) != 0)
        walk(s->then_s, env, acc, scale);
      else
        walk(s->else_s, env, acc, scale);
      return;
    case ir::StmtKind::SpmZero: {
      const double n = static_cast<double>(ir::eval(s->zero_floats, env));
      acc->compute_cycles += scale * n / cfg_.vector_width;
      return;
    }
    case ir::StmtKind::DmaGet:
    case ir::StmtKind::DmaPut: {
      // Tensor bases are transaction-aligned; 0 is representative.
      const rt::DmaGeometry g = rt::evaluate_dma(s->dma, env, 0, cfg_);
      const double t =
          scale *
          dma_cost_cache_.get(s->dma, g, engine_, cfg_).total_cycles();
      // Double buffering remaps reply slots into [100, ...) (and makes
      // them parity expressions); anything still on a small constant slot
      // is a synchronous get;wait / put;wait the cluster stalls on.
      const bool synchronous =
          ir::is_const(s->dma.reply) && ir::as_cst(s->dma.reply) < 100;
      (synchronous ? acc->dma_sync_cycles : acc->dma_overlapped_cycles) += t;
      if (s->kind == ir::StmtKind::DmaPut && s->dma.epi.any()) {
        // Mirror the runtime's epilogue pricing: a synchronous residual
        // re-read of the same tile, plus the vector ops on the tile. The
        // once-per-run bias fetch is noise at this granularity and skipped.
        const ir::EpilogueAttrs& e = s->dma.epi;
        if (e.residual) {
          ir::DmaAttrs rd;
          rd.view = e.res;
          rd.dir = ir::Direction::MemToSpm;
          rd.scatter = s->dma.scatter;
          rd.rows_to_rid = s->dma.rows_to_rid;
          rt::DmaGeometry rg = g;
          rg.base = ir::eval(e.res.base, env);
          acc->dma_sync_cycles +=
              scale *
              dma_cost_cache_.get(rd, rg, engine_, cfg_).total_cycles();
        }
        const int nops =
            (e.bias ? 1 : 0) + (e.residual ? 1 : 0) + (e.relu ? 1 : 0);
        acc->compute_cycles += scale * static_cast<double>(nops) *
                               static_cast<double>(g.tr) *
                               static_cast<double>(g.tc) / cfg_.vector_width;
      }
      return;
    }
    case ir::StmtKind::Gemm: {
      const ir::GemmAttrs& gm = s->gemm;
      const std::int64_t M = ir::eval(gm.M, env);
      const std::int64_t N = ir::eval(gm.N, env);
      const std::int64_t K = ir::eval(gm.K, env);
      if (M > 0 && N > 0 && K > 0)
        acc->compute_cycles += scale * gm_.cycles(gm.variant, M, N, K);
      return;
    }
    case ir::StmtKind::SpmAlloc:
    case ir::StmtKind::DmaWait:
    case ir::StmtKind::Comment:
      return;
  }
  SWATOP_UNREACHABLE("bad stmt kind in cost model");
}

}  // namespace swatop::tune
