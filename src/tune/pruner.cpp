#include "tune/pruner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/least_squares.hpp"

namespace swatop::tune {

namespace {

/// FNV-1a, stable across platforms (feature buckets must not depend on
/// std::hash).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::size_t kFactorBuckets = 16;
constexpr std::size_t kChoiceBuckets = 16;

}  // namespace

std::vector<double> RankingPruner::features(const dsl::Strategy& s) {
  std::vector<double> x(kDim, 0.0);
  x[0] = 1.0;  // bias
  // Strategy exposes no iteration over its variables; its serialize() form
  // is the canonical, sorted, whitespace-free token list ("f:name=int",
  // "c:name=opt", "e:field=int") and tokenizes trivially.
  std::istringstream is(s.serialize());
  std::string tok;
  while (is >> tok) {
    if (tok.size() < 4 || tok[1] != ':') continue;
    const std::size_t eq = tok.find('=', 2);
    if (eq == std::string::npos || eq + 1 >= tok.size()) continue;
    const std::string name = tok.substr(2, eq - 2);
    const std::string value = tok.substr(eq + 1);
    if (tok[0] == 'f') {
      // Tiling factors: magnitude matters (cycles scale with tile sizes),
      // so the bucket carries 1 + log2(v) rather than a flat indicator.
      const std::int64_t v = std::strtoll(value.c_str(), nullptr, 10);
      const std::size_t b = 1 + fnv1a(name) % kFactorBuckets;
      x[b] += 1.0 + std::log2(static_cast<double>(std::max<std::int64_t>(
                        1, v)));
    } else {
      // Choices and epilogue flags: categorical; hash name=value so each
      // option gets its own bucket weight.
      const std::size_t b =
          1 + kFactorBuckets +
          fnv1a(name + "=" + value) % kChoiceBuckets;
      x[b] += 1.0;
    }
  }
  return x;
}

void RankingPruner::observe(const dsl::Strategy& s, double measured_cycles) {
  if (!opts_.enabled) return;
  if (!std::isfinite(measured_cycles) || measured_cycles <= 0.0) return;
  const std::vector<double> x = features(s);
  const double y = std::log(measured_cycles);
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < kDim; ++i) {
    xty_[i] += x[i] * y;
    for (std::size_t j = 0; j < kDim; ++j) xtx_[i * kDim + j] += x[i] * x[j];
  }
  ++samples_;
  dirty_ = true;
  coef_.clear();
}

bool RankingPruner::fit_locked() const {
  if (!dirty_ && !coef_.empty()) return true;
  if (samples_ < opts_.min_train_samples) return false;
  std::vector<double> a = xtx_;
  for (std::size_t i = 0; i < kDim; ++i) a[i * kDim + i] += opts_.ridge;
  try {
    coef_ = solve_linear(std::move(a), xty_, kDim);
  } catch (const CheckError&) {
    // Singular even with the ridge (degenerate feature set): stay inert
    // until more observations arrive.
    coef_.clear();
    return false;
  }
  dirty_ = false;
  return true;
}

std::int64_t RankingPruner::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

bool RankingPruner::trained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fit_locked();
}

PruneDecision RankingPruner::prune(
    const std::vector<sched::Candidate>& cands) const {
  PruneDecision d;
  if (!opts_.enabled || cands.empty()) return d;
  std::vector<double> coef;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!fit_locked()) return d;
    coef = coef_;
  }
  d.active = true;
  d.predicted.resize(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const std::vector<double> x = features(cands[i].strategy);
    double score = 0.0;
    for (std::size_t j = 0; j < kDim; ++j) score += coef[j] * x[j];
    d.predicted[i] = std::exp(score);
  }
  const std::int64_t n = static_cast<std::int64_t>(cands.size());
  std::int64_t kept = static_cast<std::int64_t>(
      std::ceil(opts_.keep_fraction * static_cast<double>(n)));
  kept = std::clamp<std::int64_t>(std::max(kept, opts_.min_keep), 1, n);
  // Keep the `kept` best predicted; ties break towards the lower index so
  // the decision is deterministic.
  std::vector<std::size_t> idx(cands.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return d.predicted[a] < d.predicted[b];
  });
  d.keep.assign(cands.size(), 0);
  for (std::int64_t r = 0; r < kept; ++r)
    d.keep[idx[static_cast<std::size_t>(r)]] = 1;
  d.kept = kept;
  return d;
}

}  // namespace swatop::tune
