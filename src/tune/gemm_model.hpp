// Eq. (2) of the paper: the compute cost of one spm_gemm primitive call is
// modelled as a linear function of the dims,
//     T = alpha*K + beta*K*M + gamma*K*M*N + epsilon*M*N + delta,
// with one coefficient set per kernel variant, fitted by least squares over
// measured primitive runs. (The epsilon*M*N term extends the paper's form:
// it captures the K-independent register-block prologue/epilogue overhead,
// without which the fit residual is tens of percent.) This reproduction
// measures through the pipeline simulator (KernelCostDb); the fitted model
// is what the model-based autotuner consults -- its residual versus the
// measured cost is one source of the small tuning loss in Fig. 9.
#pragma once

#include <array>
#include <cstdint>

#include "isa/kernel_cache.hpp"

namespace swatop::tune {

class GemmCostModel {
 public:
  /// Fit all eight variants against the kernel cost database.
  static GemmCostModel fit(const isa::KernelCostDb& db);

  /// Predicted cycles of spm_gemm(variant, M, N, K) (global dims).
  double cycles(int variant, std::int64_t M, std::int64_t N,
                std::int64_t K) const;

  /// Coefficients [alpha, beta, gamma, epsilon, delta] per variant.
  const std::array<double, 5>& coefficients(int variant) const;

  /// Mean relative fit residual per variant (diagnostic).
  double residual(int variant) const { return residual_[variant]; }

 private:
  std::array<std::array<double, 5>, 8> coef_{};
  std::array<double, 8> residual_{};
};

/// Process-wide fitted model for the default configuration.
const GemmCostModel& gemm_cost_model(const sim::SimConfig& cfg);

}  // namespace swatop::tune
