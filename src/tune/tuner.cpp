#include "tune/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <numeric>
#include <thread>

#include "common/check.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "tune/pruner.hpp"
#include "tune/replay.hpp"

namespace swatop::tune {

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

std::size_t resolve_threads(int requested, std::size_t work) {
  if (work < 2) return 1;
  std::size_t n = requested > 0
                      ? static_cast<std::size_t>(requested)
                      : static_cast<std::size_t>(
                            std::thread::hardware_concurrency());
  if (n == 0) n = 1;
  return n < work ? n : work;
}

/// Rank every candidate through the static cost model, fanning out across
/// a worker pool (each worker owns a CostModel: its DMA-cost memo is not
/// shareable). The returned estimates are index-aligned with `cands`, so
/// any reduction over them is deterministic regardless of thread count.
std::vector<double> rank_candidates(
    const std::vector<sched::Candidate>& cands, const sim::SimConfig& cfg,
    const GemmCostModel& gm, int num_threads) {
  std::vector<double> est(cands.size());
  const std::size_t nthreads = resolve_threads(num_threads, cands.size());
  if (nthreads <= 1) {
    const CostModel model(cfg, gm);
    for (std::size_t i = 0; i < cands.size(); ++i)
      est[i] = model.estimate(cands[i].program).total();
    return est;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(nthreads);
  for (std::size_t w = 0; w < nthreads; ++w) {
    workers.emplace_back([&] {
      const CostModel model(cfg, gm);
      for (std::size_t i = next.fetch_add(1); i < cands.size();
           i = next.fetch_add(1)) {
        est[i] = model.estimate(cands[i].program).total();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return est;
}

/// Rank positions (0 = best) implied by an index-aligned score vector;
/// ties break towards the lower index, so ranks are deterministic.
std::vector<std::int64_t> ranks_by_score(const std::vector<double>& score) {
  std::vector<std::size_t> idx(score.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return score[a] < score[b];
  });
  std::vector<std::int64_t> rank(score.size());
  for (std::size_t r = 0; r < idx.size(); ++r)
    rank[idx[r]] = static_cast<std::int64_t>(r);
  return rank;
}

/// Append one row per candidate (in index order, from the calling thread).
/// `predicted`/`measured` may be empty; missing values journal as -1.
void journal_candidates(Journal* journal, const dsl::OperatorDef& op,
                        const char* phase,
                        const std::vector<sched::Candidate>& cands,
                        const std::vector<double>& predicted,
                        const std::vector<double>& measured,
                        const std::vector<std::int64_t>& rank,
                        std::size_t chosen_i) {
  for (std::size_t i = 0; i < cands.size(); ++i) {
    JournalEntry e;
    e.op = op.name();
    e.phase = phase;
    e.strategy = cands[i].strategy.to_string();
    e.index = static_cast<std::int64_t>(i);
    e.rank = rank[i];
    e.predicted = i < predicted.size() ? predicted[i] : -1.0;
    e.measured = i < measured.size() ? measured[i] : -1.0;
    e.chosen = i == chosen_i;
    journal->append(std::move(e));
  }
}

}  // namespace

void tune_phase_span(obs::Recorder* rec, const char* name, double us0,
                     double us1, std::int64_t count) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = obs::Category::Tune;
  ev.pid = 1;
  ev.tid = obs::Track::kTuner;
  ev.ts = us0;
  ev.dur = us1 > us0 ? us1 - us0 : 0.0;
  if (count >= 0) {
    ev.arg_name[0] = "candidates";
    ev.arg[0] = count;
  }
  rec->trace_event(std::move(ev));
}

double measure_candidate(const dsl::OperatorDef& op,
                         const sched::Candidate& cand,
                         const sim::SimConfig& cfg) {
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  return interp.run(cand.program, bt).cycles;
}

sched::Candidate build_candidate(const dsl::OperatorDef& op,
                                 const dsl::Strategy& s,
                                 const sim::SimConfig& cfg,
                                 const opt::OptOptions& oo) {
  ir::StmtPtr prog = op.lower(s);
  SWATOP_CHECK(prog != nullptr)
      << "strategy " << s.to_string() << " invalid for " << op.name();
  opt::OptOptions o = oo;
  o.prefetch = oo.prefetch && op.prefetch_enabled(s);
  SWATOP_CHECK(opt::optimize(prog, cfg, o))
      << "strategy " << s.to_string() << " pruned for " << op.name();
  return {s, std::move(prog), o.prefetch};
}

sched::Candidate build_candidate(const dsl::OperatorDef& op,
                                 const dsl::Strategy& s,
                                 const sim::SimConfig& cfg, bool prefetch) {
  opt::OptOptions o;
  o.prefetch = prefetch;
  return build_candidate(op, s, cfg, o);
}

double measure_strategy(const dsl::OperatorDef& op, const dsl::Strategy& s,
                        const sim::SimConfig& cfg, bool prefetch) {
  return measure_candidate(op, build_candidate(op, s, cfg, prefetch), cfg);
}

ModelTuner::ModelTuner(const sim::SimConfig& cfg) : cfg_(cfg) {}

Tuned ModelTuner::tune(const dsl::OperatorDef& op,
                       const sched::SchedulerOptions& opts,
                       obs::Recorder* rec, Journal* journal) const {
  const double t0 = now_seconds();
  const double w0 = rec ? rec->wall_us() : 0.0;
  const sched::Scheduler sched(cfg_);
  const GemmCostModel& gm = gemm_cost_model(cfg_);
  std::vector<sched::Candidate> cands = sched.candidates(op, opts);
  SWATOP_CHECK(!cands.empty())
      << "no valid schedule candidate for " << op.name();
  const double w_enum = rec ? rec->wall_us() : 0.0;
  if (rec)
    tune_phase_span(rec, "enumerate+lower", w0, w_enum,
                    static_cast<std::int64_t>(cands.size()));
  const std::vector<double> est =
      rank_candidates(cands, cfg_, gm, opts.num_threads);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    if (est[i] < best) {
      best = est[i];
      best_i = i;
    }
  }
  if (journal)
    journal_candidates(journal, op, "model", cands, est, {},
                       ranks_by_score(est), best_i);
  Tuned out;
  out.candidate = std::move(cands[best_i]);
  out.cycles = best;
  out.stats.space_size = sched.space_size(op);
  out.stats.valid_candidates = static_cast<std::int64_t>(cands.size());
  out.stats.seconds = now_seconds() - t0;
  if (rec) {
    tune_phase_span(rec, "rank (cost model)", w_enum, rec->wall_us(),
                    static_cast<std::int64_t>(cands.size()));
    rec->tune().space_size += out.stats.space_size;
    rec->tune().candidates_ranked += out.stats.valid_candidates;
    rec->tune().seconds += out.stats.seconds;
    rec->record_tune_sample(
        {out.candidate.strategy.to_string(), best, -1.0});
  }
  return out;
}

Tuned ModelTuner::tune_top_k(const dsl::OperatorDef& op, int k,
                             const sched::SchedulerOptions& opts,
                             obs::Recorder* rec, Journal* journal) const {
  SWATOP_CHECK(k >= 1) << "tune_top_k with k=" << k;
  const double t0 = now_seconds();
  const double w0 = rec ? rec->wall_us() : 0.0;
  const sched::Scheduler sched(cfg_);
  const GemmCostModel& gm = gemm_cost_model(cfg_);
  std::vector<sched::Candidate> cands = sched.candidates(op, opts);
  SWATOP_CHECK(!cands.empty())
      << "no valid schedule candidate for " << op.name();
  const double w_enum = rec ? rec->wall_us() : 0.0;
  if (rec)
    tune_phase_span(rec, "enumerate+lower", w0, w_enum,
                    static_cast<std::int64_t>(cands.size()));

  // Rank by predicted cycles; keep the k best indices. The estimate vector
  // is index-aligned, so the shortlist is stable across thread counts
  // (ties break towards the lower index).
  const std::vector<double> est =
      rank_candidates(cands, cfg_, gm, opts.num_threads);
  std::vector<std::pair<double, std::size_t>> ranked;
  ranked.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i)
    ranked.emplace_back(est[i], i);
  const std::size_t keep =
      std::min<std::size_t>(static_cast<std::size_t>(k), ranked.size());
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                    ranked.end());
  const double w_rank = rec ? rec->wall_us() : 0.0;
  if (rec)
    tune_phase_span(rec, "rank (cost model)", w_enum, w_rank,
                    static_cast<std::int64_t>(cands.size()));

  // Measure the shortlist and keep the measured winner. With a replay
  // executor attached, repeat measurements of a structurally identical
  // candidate replay the recorded event schedule (bit-identical cycles)
  // instead of re-interpreting.
  sim::CoreGroup cg(cfg_);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  std::vector<double> measured(cands.size(), -1.0);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t r = 0; r < keep; ++r) {
    const std::size_t i = ranked[r].second;
    const double wm0 = rec ? rec->wall_us() : 0.0;
    const double t = replay_ != nullptr
                         ? replay_->measure(op, cands[i], cfg_)
                         : interp.run(cands[i].program, bt).cycles;
    if (pruner_ != nullptr) pruner_->observe(cands[i].strategy, t);
    measured[i] = t;
    if (rec) {
      tune_phase_span(rec, "measure candidate", wm0, rec->wall_us());
      rec->record_tune_sample(
          {cands[i].strategy.to_string(), ranked[r].first, t});
    }
    if (t < best) {
      best = t;
      best_i = i;
    }
  }
  if (journal)
    journal_candidates(journal, op, "top-k", cands, est, measured,
                       ranks_by_score(est), best_i);
  Tuned out;
  out.candidate = std::move(cands[best_i]);
  out.cycles = best;
  out.stats.space_size = sched.space_size(op);
  out.stats.valid_candidates = static_cast<std::int64_t>(cands.size());
  out.stats.seconds = now_seconds() - t0;
  if (rec) {
    rec->tune().space_size += out.stats.space_size;
    rec->tune().candidates_ranked += out.stats.valid_candidates;
    rec->tune().candidates_measured += static_cast<std::int64_t>(keep);
    rec->tune().seconds += out.stats.seconds;
  }
  return out;
}

BlackBoxTuner::Result BlackBoxTuner::tune(const dsl::OperatorDef& op,
                                          const sched::SchedulerOptions& opts,
                                          obs::Recorder* rec,
                                          Journal* journal) const {
  const double t0 = now_seconds();
  const double w0 = rec ? rec->wall_us() : 0.0;
  const sched::Scheduler sched(cfg_);
  std::vector<sched::Candidate> cands = sched.candidates(op, opts);
  SWATOP_CHECK(!cands.empty())
      << "no valid schedule candidate for " << op.name();
  const double w_enum = rec ? rec->wall_us() : 0.0;
  if (rec)
    tune_phase_span(rec, "enumerate+lower", w0, w_enum,
                    static_cast<std::int64_t>(cands.size()));

  // Rank-prune the measured set when a trained pruner is attached. Until
  // the pruner has enough training samples the decision is inactive and
  // every candidate is measured (so the default argmin is unchanged);
  // pruned candidates journal their model-predicted cycles with
  // measured = -1, and the journal's regret curve records what the cut
  // cost.
  const PruneDecision pd =
      pruner_ != nullptr ? pruner_->prune(cands) : PruneDecision{};
  std::vector<std::size_t> to_measure;
  to_measure.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (!pd.active || pd.keep[i] != 0) to_measure.push_back(i);

  // Candidates are measured independently; fan out across hardware
  // threads, one scratch core group per thread. (The machine under test is
  // simulated, so concurrent measurements do not perturb each other --
  // unlike the real black-box tuner this stands in for.) Workers touch
  // only their own all_measured slots; observability is emitted after the
  // join (see the header's aggregation note). With a replay executor
  // attached, measurements go through its trace cache (thread-safe) and
  // stay bit-identical to the interpreter.
  Result res;
  res.all_measured.assign(cands.size(), -1.0);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t nthreads = std::max<std::size_t>(
      1, std::min<std::size_t>(hw ? hw : 1, to_measure.size()));
  std::vector<std::thread> workers;
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < nthreads; ++w) {
    workers.emplace_back([&] {
      sim::CoreGroup cg(cfg_);
      cg.mem().set_materialize(false);
      const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
      rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
      for (std::size_t k = next.fetch_add(1); k < to_measure.size();
           k = next.fetch_add(1)) {
        const std::size_t i = to_measure[k];
        res.all_measured[i] =
            replay_ != nullptr
                ? replay_->measure(op, cands[i], cfg_)
                : interp.run(cands[i].program, bt).cycles;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  if (rec)
    tune_phase_span(rec, "measure (parallel)", w_enum, rec->wall_us(),
                    static_cast<std::int64_t>(to_measure.size()));

  // Every measurement taken trains the pruner for the next operator
  // (calling thread, index order: deterministic at any thread count).
  if (pruner_ != nullptr)
    for (const std::size_t i : to_measure)
      pruner_->observe(cands[i].strategy, res.all_measured[i]);

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (const std::size_t i : to_measure) {
    if (res.all_measured[i] < best) {
      best = res.all_measured[i];
      best_i = i;
    }
  }
  if (rec) {
    for (std::size_t i = 0; i < cands.size(); ++i)
      rec->record_tune_sample(
          {cands[i].strategy.to_string(),
           pd.active ? pd.predicted[i] : -1.0, res.all_measured[i]});
  }
  if (journal) {
    // Rank by measured cycles; pruned candidates sort last.
    std::vector<double> rank_score(cands.size());
    for (std::size_t i = 0; i < cands.size(); ++i)
      rank_score[i] = res.all_measured[i] >= 0.0
                          ? res.all_measured[i]
                          : std::numeric_limits<double>::infinity();
    journal_candidates(journal, op, "blackbox", cands,
                       pd.active ? pd.predicted : std::vector<double>{},
                       res.all_measured, ranks_by_score(rank_score), best_i);
  }
  res.best.candidate = std::move(cands[best_i]);
  res.best.cycles = best;
  res.best.stats.space_size = sched.space_size(op);
  res.best.stats.valid_candidates = static_cast<std::int64_t>(cands.size());
  res.best.stats.pruned =
      static_cast<std::int64_t>(cands.size() - to_measure.size());
  res.best.stats.seconds = now_seconds() - t0;
  if (rec) {
    rec->tune().space_size += res.best.stats.space_size;
    rec->tune().candidates_measured +=
        static_cast<std::int64_t>(to_measure.size());
    rec->tune().candidates_pruned += res.best.stats.pruned;
    rec->tune().seconds += res.best.stats.seconds;
  }
  return res;
}

}  // namespace swatop::tune
