#include "tune/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <limits>

#include "common/check.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"

namespace swatop::tune {

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Emit a tuner-phase span on the wall-clock track (pid 1).
void tune_span(obs::Recorder* rec, const char* name, double us0, double us1,
               std::int64_t count = -1) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = obs::Category::Tune;
  ev.pid = 1;
  ev.tid = obs::Track::kTuner;
  ev.ts = us0;
  ev.dur = us1 > us0 ? us1 - us0 : 0.0;
  if (count >= 0) {
    ev.arg_name[0] = "candidates";
    ev.arg[0] = count;
  }
  rec->trace_event(std::move(ev));
}

}  // namespace

double measure_candidate(const dsl::OperatorDef& op,
                         const sched::Candidate& cand,
                         const sim::SimConfig& cfg) {
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  return interp.run(cand.program, bt).cycles;
}

sched::Candidate build_candidate(const dsl::OperatorDef& op,
                                 const dsl::Strategy& s,
                                 const sim::SimConfig& cfg, bool prefetch) {
  ir::StmtPtr prog = op.lower(s);
  SWATOP_CHECK(prog != nullptr)
      << "strategy " << s.to_string() << " invalid for " << op.name();
  opt::OptOptions o;
  o.prefetch = prefetch && op.prefetch_enabled(s);
  SWATOP_CHECK(opt::optimize(prog, cfg, o))
      << "strategy " << s.to_string() << " pruned for " << op.name();
  return {s, std::move(prog), o.prefetch};
}

double measure_strategy(const dsl::OperatorDef& op, const dsl::Strategy& s,
                        const sim::SimConfig& cfg, bool prefetch) {
  return measure_candidate(op, build_candidate(op, s, cfg, prefetch), cfg);
}

ModelTuner::ModelTuner(const sim::SimConfig& cfg) : cfg_(cfg) {}

Tuned ModelTuner::tune(const dsl::OperatorDef& op,
                       const sched::SchedulerOptions& opts,
                       obs::Recorder* rec) const {
  const double t0 = now_seconds();
  const double w0 = rec ? rec->wall_us() : 0.0;
  const sched::Scheduler sched(cfg_);
  const CostModel model(cfg_, gemm_cost_model(cfg_));
  std::vector<sched::Candidate> cands = sched.candidates(op, opts);
  SWATOP_CHECK(!cands.empty())
      << "no valid schedule candidate for " << op.name();
  const double w_enum = rec ? rec->wall_us() : 0.0;
  if (rec)
    tune_span(rec, "enumerate+lower", w0, w_enum,
              static_cast<std::int64_t>(cands.size()));
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const double t = model.estimate(cands[i].program).total();
    if (t < best) {
      best = t;
      best_i = i;
    }
  }
  Tuned out;
  out.candidate = std::move(cands[best_i]);
  out.cycles = best;
  out.stats.space_size = sched.space_size(op);
  out.stats.valid_candidates = static_cast<std::int64_t>(cands.size());
  out.stats.seconds = now_seconds() - t0;
  if (rec) {
    tune_span(rec, "rank (cost model)", w_enum, rec->wall_us(),
              static_cast<std::int64_t>(cands.size()));
    rec->tune().space_size += out.stats.space_size;
    rec->tune().candidates_ranked += out.stats.valid_candidates;
    rec->tune().seconds += out.stats.seconds;
    rec->record_tune_sample(
        {out.candidate.strategy.to_string(), best, -1.0});
  }
  return out;
}

Tuned ModelTuner::tune_top_k(const dsl::OperatorDef& op, int k,
                             const sched::SchedulerOptions& opts,
                             obs::Recorder* rec) const {
  SWATOP_CHECK(k >= 1) << "tune_top_k with k=" << k;
  const double t0 = now_seconds();
  const double w0 = rec ? rec->wall_us() : 0.0;
  const sched::Scheduler sched(cfg_);
  const CostModel model(cfg_, gemm_cost_model(cfg_));
  std::vector<sched::Candidate> cands = sched.candidates(op, opts);
  SWATOP_CHECK(!cands.empty())
      << "no valid schedule candidate for " << op.name();
  const double w_enum = rec ? rec->wall_us() : 0.0;
  if (rec)
    tune_span(rec, "enumerate+lower", w0, w_enum,
              static_cast<std::int64_t>(cands.size()));

  // Rank by predicted cycles; keep the k best indices.
  std::vector<std::pair<double, std::size_t>> ranked;
  ranked.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i)
    ranked.emplace_back(model.estimate(cands[i].program).total(), i);
  const std::size_t keep =
      std::min<std::size_t>(static_cast<std::size_t>(k), ranked.size());
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                    ranked.end());
  const double w_rank = rec ? rec->wall_us() : 0.0;
  if (rec)
    tune_span(rec, "rank (cost model)", w_enum, w_rank,
              static_cast<std::int64_t>(cands.size()));

  // Measure the shortlist and keep the measured winner.
  sim::CoreGroup cg(cfg_);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t r = 0; r < keep; ++r) {
    const std::size_t i = ranked[r].second;
    const double wm0 = rec ? rec->wall_us() : 0.0;
    const double t = interp.run(cands[i].program, bt).cycles;
    if (rec) {
      tune_span(rec, "measure candidate", wm0, rec->wall_us());
      rec->record_tune_sample(
          {cands[i].strategy.to_string(), ranked[r].first, t});
    }
    if (t < best) {
      best = t;
      best_i = i;
    }
  }
  Tuned out;
  out.candidate = std::move(cands[best_i]);
  out.cycles = best;
  out.stats.space_size = sched.space_size(op);
  out.stats.valid_candidates = static_cast<std::int64_t>(cands.size());
  out.stats.seconds = now_seconds() - t0;
  if (rec) {
    rec->tune().space_size += out.stats.space_size;
    rec->tune().candidates_ranked += out.stats.valid_candidates;
    rec->tune().candidates_measured += static_cast<std::int64_t>(keep);
    rec->tune().seconds += out.stats.seconds;
  }
  return out;
}

BlackBoxTuner::Result BlackBoxTuner::tune(
    const dsl::OperatorDef& op, const sched::SchedulerOptions& opts) const {
  const double t0 = now_seconds();
  const sched::Scheduler sched(cfg_);
  std::vector<sched::Candidate> cands = sched.candidates(op, opts);
  SWATOP_CHECK(!cands.empty())
      << "no valid schedule candidate for " << op.name();

  // Candidates are measured independently; fan out across hardware
  // threads, one scratch core group per thread. (The machine under test is
  // simulated, so concurrent measurements do not perturb each other --
  // unlike the real black-box tuner this stands in for.)
  Result res;
  res.all_measured.assign(cands.size(), 0.0);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t nthreads =
      std::max<std::size_t>(1, std::min<std::size_t>(hw ? hw : 1,
                                                     cands.size()));
  std::vector<std::thread> workers;
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < nthreads; ++w) {
    workers.emplace_back([&] {
      sim::CoreGroup cg(cfg_);
      cg.mem().set_materialize(false);
      const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
      rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
      for (std::size_t i = next.fetch_add(1); i < cands.size();
           i = next.fetch_add(1)) {
        res.all_measured[i] = interp.run(cands[i].program, bt).cycles;
      }
    });
  }
  for (std::thread& t : workers) t.join();

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (res.all_measured[i] < best) {
      best = res.all_measured[i];
      best_i = i;
    }
  }
  res.best.candidate = std::move(cands[best_i]);
  res.best.cycles = best;
  res.best.stats.space_size = sched.space_size(op);
  res.best.stats.valid_candidates = static_cast<std::int64_t>(cands.size());
  res.best.stats.seconds = now_seconds() - t0;
  return res;
}

}  // namespace swatop::tune
