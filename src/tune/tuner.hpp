// The two autotuners of Sec. 4.6.
//
// The black-box autotuner is the baseline: it *runs* every schedule
// candidate (here: through the loop-by-loop timing interpreter, this
// reproduction's stand-in for executing on the SW26010) and keeps the
// fastest. The performance-model-based autotuner evaluates the static cost
// model on every candidate instead -- orders of magnitude cheaper per
// candidate -- and picks the predicted best. Table 3 measures the time
// ratio; Fig. 9 measures the performance the model-picked candidate leaves
// on the table.
#pragma once

#include <cstdint>
#include <vector>

#include "dsl/dsl.hpp"
#include "obs/recorder.hpp"
#include "sched/scheduler.hpp"
#include "tune/cost_model.hpp"
#include "tune/journal.hpp"

namespace swatop::tune {

class ReplayExecutor;  // tune/replay.hpp
class RankingPruner;   // tune/pruner.hpp

struct TunerStats {
  std::int64_t space_size = 0;        ///< raw schedule-space size
  std::int64_t valid_candidates = 0;  ///< survivors of validity pruning
  std::int64_t pruned = 0;  ///< cut by the ranking pruner (never measured)
  double seconds = 0.0;     ///< wall-clock tuning time
};

struct Tuned {
  sched::Candidate candidate;
  double cycles = 0.0;  ///< model-predicted (ModelTuner) or measured (BlackBox)
  TunerStats stats;
};

/// Measure one candidate with the timing interpreter on a scratch core
/// group (non-materialized memory, so huge workloads cost no RAM).
double measure_candidate(const dsl::OperatorDef& op,
                         const sched::Candidate& cand,
                         const sim::SimConfig& cfg);

/// Lower + optimize one explicit strategy (how a fixed manual schedule is
/// built) and measure it. Throws CheckError if the strategy is invalid for
/// the operator.
double measure_strategy(const dsl::OperatorDef& op, const dsl::Strategy& s,
                        const sim::SimConfig& cfg, bool prefetch = true);

/// Build the optimized candidate for one explicit strategy.
sched::Candidate build_candidate(const dsl::OperatorDef& op,
                                 const dsl::Strategy& s,
                                 const sim::SimConfig& cfg,
                                 bool prefetch = true);

/// Same, with full optimizer options (the schedule-cache rebuild path must
/// replicate the scheduler's SPM reserve, not just the prefetch flag).
sched::Candidate build_candidate(const dsl::OperatorDef& op,
                                 const dsl::Strategy& s,
                                 const sim::SimConfig& cfg,
                                 const opt::OptOptions& oo);

class ModelTuner {
 public:
  explicit ModelTuner(const sim::SimConfig& cfg);

  /// When `rec` is given, the tuning phases are traced (wall-clock track)
  /// and per-candidate model-vs-measured samples recorded. When `journal`
  /// is given, every candidate is appended (phase "model"; only the pick is
  /// ever measured). Journal entries are appended from the calling thread
  /// in candidate-index order, so the log is identical at any thread count.
  Tuned tune(const dsl::OperatorDef& op,
             const sched::SchedulerOptions& opts = {},
             obs::Recorder* rec = nullptr, Journal* journal = nullptr) const;

  /// The paper's "pick best (or top k)" refinement: rank candidates with
  /// the static model, then *measure* the k best through the timing
  /// interpreter and keep the measured winner. k times the measurement cost
  /// buys back most of the model's residual error (Fig. 9's tail).
  Tuned tune_top_k(const dsl::OperatorDef& op, int k,
                   const sched::SchedulerOptions& opts = {},
                   obs::Recorder* rec = nullptr,
                   Journal* journal = nullptr) const;

  /// Route top-k shortlist measurements through a trace-replay executor
  /// (non-owning; null reverts to the loop-by-loop interpreter). Cycle
  /// results are bit-identical either way -- see tune/replay.hpp.
  void set_replay(ReplayExecutor* r) { replay_ = r; }

  /// Feed every top-k measurement into a ranking pruner as a training
  /// sample (non-owning; the model tuner never prunes -- the static model
  /// already shortlists).
  void set_pruner(RankingPruner* p) { pruner_ = p; }

 private:
  sim::SimConfig cfg_;
  ReplayExecutor* replay_ = nullptr;
  RankingPruner* pruner_ = nullptr;
};

class BlackBoxTuner {
 public:
  explicit BlackBoxTuner(const sim::SimConfig& cfg) : cfg_(cfg) {}

  struct Result {
    Tuned best;
    /// Per candidate, scheduler order; -1 marks a candidate the ranking
    /// pruner cut (never measured -- only possible with set_pruner).
    std::vector<double> all_measured;
  };
  /// When `rec` is given, black-box tuning is traced like ModelTuner's
  /// phases, so Tab. 3 comparisons are observable on both sides. The
  /// measurement fan-out runs on worker threads and the Recorder is not
  /// thread-safe, so per-candidate results are *aggregated*: workers write
  /// only their own result slots, and all spans, counters and tune samples
  /// are emitted from the calling thread after the pool joins (one
  /// "measure (parallel)" span covers the whole fan-out window).
  Result tune(const dsl::OperatorDef& op,
              const sched::SchedulerOptions& opts = {},
              obs::Recorder* rec = nullptr, Journal* journal = nullptr) const;

  /// Route candidate measurements through a trace-replay executor
  /// (non-owning; null reverts to the loop-by-loop interpreter).
  void set_replay(ReplayExecutor* r) { replay_ = r; }

  /// Cut the measured set with a journal-trained ranking pruner
  /// (non-owning; null measures everything). Pruned candidates report
  /// measured = -1 in `all_measured` and in the journal; every measurement
  /// taken is fed back into the pruner as a training sample.
  void set_pruner(RankingPruner* p) { pruner_ = p; }

 private:
  sim::SimConfig cfg_;
  ReplayExecutor* replay_ = nullptr;
  RankingPruner* pruner_ = nullptr;
};

/// Emit one tuner-phase span on the wall-clock track (pid 1); shared by the
/// tuners and the Optimizer's cache fast-path. `us0`/`us1` come from
/// rec->wall_us(); `count` >= 0 adds a "candidates" argument.
void tune_phase_span(obs::Recorder* rec, const char* name, double us0,
                     double us1, std::int64_t count = -1);

}  // namespace swatop::tune
