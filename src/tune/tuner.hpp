// The two autotuners of Sec. 4.6.
//
// The black-box autotuner is the baseline: it *runs* every schedule
// candidate (here: through the loop-by-loop timing interpreter, this
// reproduction's stand-in for executing on the SW26010) and keeps the
// fastest. The performance-model-based autotuner evaluates the static cost
// model on every candidate instead -- orders of magnitude cheaper per
// candidate -- and picks the predicted best. Table 3 measures the time
// ratio; Fig. 9 measures the performance the model-picked candidate leaves
// on the table.
#pragma once

#include <cstdint>
#include <vector>

#include "dsl/dsl.hpp"
#include "obs/recorder.hpp"
#include "sched/scheduler.hpp"
#include "tune/cost_model.hpp"

namespace swatop::tune {

struct TunerStats {
  std::int64_t space_size = 0;        ///< raw schedule-space size
  std::int64_t valid_candidates = 0;  ///< survivors of validity pruning
  double seconds = 0.0;               ///< wall-clock tuning time
};

struct Tuned {
  sched::Candidate candidate;
  double cycles = 0.0;  ///< model-predicted (ModelTuner) or measured (BlackBox)
  TunerStats stats;
};

/// Measure one candidate with the timing interpreter on a scratch core
/// group (non-materialized memory, so huge workloads cost no RAM).
double measure_candidate(const dsl::OperatorDef& op,
                         const sched::Candidate& cand,
                         const sim::SimConfig& cfg);

/// Lower + optimize one explicit strategy (how a fixed manual schedule is
/// built) and measure it. Throws CheckError if the strategy is invalid for
/// the operator.
double measure_strategy(const dsl::OperatorDef& op, const dsl::Strategy& s,
                        const sim::SimConfig& cfg, bool prefetch = true);

/// Build the optimized candidate for one explicit strategy.
sched::Candidate build_candidate(const dsl::OperatorDef& op,
                                 const dsl::Strategy& s,
                                 const sim::SimConfig& cfg,
                                 bool prefetch = true);

class ModelTuner {
 public:
  explicit ModelTuner(const sim::SimConfig& cfg);

  /// When `rec` is given, the tuning phases are traced (wall-clock track)
  /// and per-candidate model-vs-measured samples recorded.
  Tuned tune(const dsl::OperatorDef& op,
             const sched::SchedulerOptions& opts = {},
             obs::Recorder* rec = nullptr) const;

  /// The paper's "pick best (or top k)" refinement: rank candidates with
  /// the static model, then *measure* the k best through the timing
  /// interpreter and keep the measured winner. k times the measurement cost
  /// buys back most of the model's residual error (Fig. 9's tail).
  Tuned tune_top_k(const dsl::OperatorDef& op, int k,
                   const sched::SchedulerOptions& opts = {},
                   obs::Recorder* rec = nullptr) const;

 private:
  sim::SimConfig cfg_;
};

class BlackBoxTuner {
 public:
  explicit BlackBoxTuner(const sim::SimConfig& cfg) : cfg_(cfg) {}

  struct Result {
    Tuned best;
    std::vector<double> all_measured;  ///< per candidate, scheduler order
  };
  Result tune(const dsl::OperatorDef& op,
              const sched::SchedulerOptions& opts = {}) const;

 private:
  sim::SimConfig cfg_;
};

}  // namespace swatop::tune
