#include "tune/journal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>

namespace swatop::tune {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Fractional (average-on-ties) ranks of `v`, 0-based.
std::vector<double> frac_ranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(n, 0.0);
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j < n && v[idx[j]] == v[idx[i]]) ++j;
    const double avg = static_cast<double>(i + j - 1) / 2.0;
    for (std::size_t k = i; k < j; ++k) r[idx[k]] = avg;
    i = j;
  }
  return r;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

void append_number_or_null(std::ostringstream& os, double x) {
  if (x < 0.0)
    os << "null";
  else
    os << x;
}

}  // namespace

std::string journal_entry_json(const JournalEntry& e) {
  std::ostringstream os;
  os << "{\"op\": \"" << json_escape(e.op) << "\", \"phase\": \""
     << json_escape(e.phase) << "\", \"strategy\": \""
     << json_escape(e.strategy) << "\", \"index\": " << e.index
     << ", \"rank\": " << e.rank << ", \"predicted\": ";
  append_number_or_null(os, e.predicted);
  os << ", \"measured\": ";
  append_number_or_null(os, e.measured);
  os << ", \"chosen\": " << (e.chosen ? "true" : "false") << "}";
  return os.str();
}

std::string Journal::to_jsonl() const {
  std::string out;
  for (const JournalEntry& e : entries_) {
    out += journal_entry_json(e);
    out += '\n';
  }
  return out;
}

bool Journal::write_jsonl(const std::string& path, bool append) const {
  std::ofstream f(path, append ? std::ios::app : std::ios::trunc);
  if (!f) return false;
  f << to_jsonl();
  return static_cast<bool>(f);
}

ModelErrorStats model_error_stats(const std::vector<JournalEntry>& entries) {
  ModelErrorStats s;
  std::vector<double> pred, meas;
  for (const JournalEntry& e : entries) {
    // Sign tests alone let NaN through (every NaN comparison is false),
    // which would poison the means and break frac_ranks' sort ordering;
    // require finite values explicitly.
    if (!std::isfinite(e.predicted) || !std::isfinite(e.measured)) continue;
    if (e.predicted < 0.0 || e.measured <= 0.0) continue;
    pred.push_back(e.predicted);
    meas.push_back(e.measured);
    const double rel = std::fabs(e.predicted - e.measured) / e.measured;
    s.mean_rel_err += rel;
    s.max_rel_err = std::max(s.max_rel_err, rel);
  }
  s.samples = static_cast<std::int64_t>(pred.size());
  if (s.samples > 0) s.mean_rel_err /= static_cast<double>(s.samples);
  if (s.samples >= 2) s.rank_corr = pearson(frac_ranks(pred), frac_ranks(meas));
  return s;
}

std::vector<double> regret_curve(const std::vector<JournalEntry>& entries) {
  std::vector<double> meas;
  for (const JournalEntry& e : entries)
    if (std::isfinite(e.measured) && e.measured >= 0.0)
      meas.push_back(e.measured);
  std::vector<double> curve;
  curve.reserve(meas.size());
  if (meas.empty()) return curve;
  const double best = *std::min_element(meas.begin(), meas.end());
  double so_far = meas.front();
  for (double m : meas) {
    so_far = std::min(so_far, m);
    curve.push_back(best > 0.0 ? so_far / best - 1.0 : 0.0);
  }
  return curve;
}

namespace {

struct Tallies {
  std::map<std::string, std::int64_t> by_phase;  // ordered -> deterministic
  std::int64_t measured = 0;
  std::int64_t chosen = 0;
  std::int64_t ops = 0;
};

Tallies tally(const std::vector<JournalEntry>& entries) {
  Tallies t;
  std::map<std::string, bool> ops;
  for (const JournalEntry& e : entries) {
    ++t.by_phase[e.phase];
    if (e.measured >= 0.0) ++t.measured;
    if (e.chosen) ++t.chosen;
    ops[e.op] = true;
  }
  t.ops = static_cast<std::int64_t>(ops.size());
  return t;
}

/// Index of the first regret-curve point at (numerical) zero, or -1.
std::int64_t converged_at(const std::vector<double>& curve) {
  for (std::size_t i = 0; i < curve.size(); ++i)
    if (curve[i] <= 1e-12) return static_cast<std::int64_t>(i);
  return -1;
}

}  // namespace

std::string journal_summary(const Journal& j) {
  const std::vector<JournalEntry>& es = j.entries();
  const Tallies t = tally(es);
  const ModelErrorStats err = model_error_stats(es);
  const std::vector<double> curve = regret_curve(es);
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "tuning journal: %zu candidates across %lld operator(s), "
                "%lld measured, %lld chosen\n",
                es.size(), static_cast<long long>(t.ops),
                static_cast<long long>(t.measured),
                static_cast<long long>(t.chosen));
  os << buf;
  for (const auto& [phase, n] : t.by_phase) {
    std::snprintf(buf, sizeof buf, "  %-10s %10lld\n", phase.c_str(),
                  static_cast<long long>(n));
    os << buf;
  }
  if (err.samples > 0) {
    std::snprintf(buf, sizeof buf,
                  "  model error: mean %.2f%%  max %.2f%%  rank corr %.3f  "
                  "(%lld samples)\n",
                  100.0 * err.mean_rel_err, 100.0 * err.max_rel_err,
                  err.rank_corr, static_cast<long long>(err.samples));
    os << buf;
  }
  if (!curve.empty()) {
    const std::int64_t conv = converged_at(curve);
    std::snprintf(buf, sizeof buf,
                  "  regret: start %.2f%%  final %.2f%%  converged at "
                  "measurement %lld/%zu\n",
                  100.0 * curve.front(), 100.0 * curve.back(),
                  static_cast<long long>(conv + 1), curve.size());
    os << buf;
  }
  return os.str();
}

std::string journal_summary_json(const Journal& j) {
  const std::vector<JournalEntry>& es = j.entries();
  const Tallies t = tally(es);
  const ModelErrorStats err = model_error_stats(es);
  const std::vector<double> curve = regret_curve(es);
  std::ostringstream os;
  os << "{\"entries\": " << es.size() << ", \"operators\": " << t.ops
     << ", \"measured\": " << t.measured << ", \"chosen\": " << t.chosen
     << ", \"phases\": {";
  bool first = true;
  for (const auto& [phase, n] : t.by_phase) {
    if (!first) os << ", ";
    first = false;
    os << '"' << json_escape(phase) << "\": " << n;
  }
  os << "}, \"model_error\": {\"samples\": " << err.samples
     << ", \"mean_rel_err\": " << err.mean_rel_err
     << ", \"max_rel_err\": " << err.max_rel_err
     << ", \"rank_corr\": " << err.rank_corr << "}, \"regret\": [";
  first = true;
  for (double r : curve) {
    if (!first) os << ", ";
    first = false;
    os << r;
  }
  os << "], \"converged_at\": " << converged_at(curve) << "}";
  return os.str();
}

}  // namespace swatop::tune
