// An xMath-like hand-optimized GEMM baseline [Jiang et al., ICPP'17].
//
// xMath ships one carefully tuned blocking scheme aimed at large square
// matrices; it does not retune per shape, and unaligned shapes go through
// traditional zero-padding (the whole matrix re-materialized at aligned
// dims). Both properties are what swATOP's Table 2 beats: per-shape
// autotuned schedules and lightweight boundary processing.
#pragma once

#include <cstdint>

#include "dsl/dsl.hpp"
#include "ops/matmul.hpp"
#include "sim/core_group.hpp"

namespace swatop::baseline {

class XMathGemm {
 public:
  explicit XMathGemm(const sim::SimConfig& cfg) : cfg_(cfg) {}

  /// Simulated cycles of C = A x B, including the traditional-padding
  /// passes when (M, N, K) is unaligned.
  double cycles(std::int64_t M, std::int64_t N, std::int64_t K) const;

  /// Cycles of the padding passes alone (0 when aligned).
  double padding_cycles(std::int64_t M, std::int64_t N,
                        std::int64_t K) const;

  /// The fixed manual schedule, clamped into the operator's menus:
  /// 128x128x64 blocking, mnk order, column-major kernels vectorized on M.
  static dsl::Strategy fixed_strategy(const ops::MatmulOp& op);

  /// Functional execution for tests: col-major A (M x K), B (K x N),
  /// C (M x N) at the given arena addresses.
  void run(sim::CoreGroup& cg, sim::MainMemory::Addr A,
           sim::MainMemory::Addr B, sim::MainMemory::Addr C, std::int64_t M,
           std::int64_t N, std::int64_t K) const;

  static bool aligned(std::int64_t M, std::int64_t N, std::int64_t K) {
    return M % 32 == 0 && N % 32 == 0 && K % 8 == 0;
  }

 private:
  sim::SimConfig cfg_;
};

}  // namespace swatop::baseline
