// A swDNN-like hand-optimized implicit convolution baseline [Fang et al.,
// IPDPS'17]. swDNN ships one fixed blocking scheme designed for training
// workloads: it requires large batch and channel counts (there is no manual
// batch-1 implementation at all -- the gap Fig. 5 notes) and does not adapt
// its tiles to the layer shape.
#pragma once

#include "dsl/dsl.hpp"
#include "ops/implicit_conv.hpp"
#include "sim/config.hpp"

namespace swatop::baseline {

class SwDnnConv {
 public:
  explicit SwDnnConv(const sim::SimConfig& cfg) : cfg_(cfg) {}

  /// swDNN's applicability envelope: batch >= 32 and channels in multiples
  /// of 32 with Ni >= 64.
  static bool applicable(const ops::ConvShape& s) {
    return s.stride == 1 && s.batch >= 32 && s.ni >= 64 && s.ni % 32 == 0 &&
           s.no >= 32 && s.no % 32 == 0;
  }

  /// The fixed manual schedule (64x64 channel blocking, batch as the GEMM N
  /// dimension, B-operand row-major vectorized-N kernel).
  static dsl::Strategy fixed_strategy(const ops::ImplicitConvOp& op);

  /// Simulated cycles on a shape (throws if not applicable).
  double cycles(const ops::ConvShape& s) const;

 private:
  sim::SimConfig cfg_;
};

}  // namespace swatop::baseline
