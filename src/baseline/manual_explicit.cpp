#include "baseline/manual_explicit.hpp"

namespace swatop::baseline {

double ManualExplicitConv::cycles(const ops::ConvShape& s) const {
  const double pre_post = ops::ExplicitConvOp::pre_post_cycles(s, cfg_);
  const XMathGemm gemm(cfg_);
  return pre_post +
         gemm.cycles(s.no, s.batch * s.ro() * s.co(), s.ni * s.kr * s.kc);
}

}  // namespace swatop::baseline
