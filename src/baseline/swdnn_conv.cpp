#include "baseline/swdnn_conv.hpp"

#include "common/check.hpp"
#include "tune/tuner.hpp"

namespace swatop::baseline {

namespace {

/// The schedule swDNN's authors hand-tuned: the best strategy for a
/// representative big training layer (batch 32, 256 channels, 14x14),
/// found once and frozen. Rigidity -- not bad blocking -- is what the
/// manual library loses by.
const dsl::Strategy& reference_training_strategy(const sim::SimConfig& cfg) {
  static const dsl::Strategy s = [&] {
    ops::ConvShape ref;
    ref.batch = 32;
    ref.ni = 256;
    ref.no = 256;
    ref.ri = 16;
    ref.ci = 16;
    const ops::ImplicitConvOp op(ref);
    const tune::ModelTuner tuner(cfg);
    return tuner.tune(op).candidate.strategy;
  }();
  return s;
}

}  // namespace

dsl::Strategy SwDnnConv::fixed_strategy(const ops::ImplicitConvOp& op) {
  (void)op;
  const sim::SimConfig cfg;
  const dsl::Strategy& ref = reference_training_strategy(cfg);
  // The frozen blocking is applied *as is* -- a hand-optimized library does
  // not re-tile per shape. Mismatched layers (small channels, narrow
  // outputs) run on padded tiles and pay the waste; that rigidity is the
  // gap Fig. 5 measures.
  dsl::Strategy s;
  s.set_factor("Tno", ref.factor("Tno"));
  s.set_factor("Tni", ref.factor("Tni"));
  s.set_factor("Tco", ref.factor("Tco"));
  s.set_choice("wlayout", ref.choice("wlayout"));
  s.set_choice("order", ref.choice("order"));
  s.set_choice("variant", ref.choice("variant"));
  s.set_choice("boundary", "pad");
  return s;
}

double SwDnnConv::cycles(const ops::ConvShape& s) const {
  SWATOP_CHECK(applicable(s))
      << "swDNN has no manual implementation for " << s.to_string();
  const ops::ImplicitConvOp op(s);
  return tune::measure_strategy(op, fixed_strategy(op), cfg_);
}

}  // namespace swatop::baseline
