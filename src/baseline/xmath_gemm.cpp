#include "baseline/xmath_gemm.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "prim/pack.hpp"
#include "rt/interpreter.hpp"
#include "tune/tuner.hpp"

namespace swatop::baseline {

namespace {

std::int64_t clamp_factor(const std::vector<std::int64_t>& menu,
                          std::int64_t want) {
  std::int64_t best = menu.front();
  for (std::int64_t f : menu)
    if (f <= want && f > best) best = f;
  // If every candidate exceeds `want`, take the smallest.
  if (best > want) best = *std::min_element(menu.begin(), menu.end());
  return best;
}

const dsl::FactorVar& find_factor(const dsl::ScheduleSpace& sp,
                                  const std::string& name) {
  for (const auto& f : sp.factors())
    if (f.name == name) return f;
  SWATOP_UNREACHABLE("factor not found: " + name);
}

}  // namespace

namespace {

/// The blocking scheme xMath's authors hand-tuned: the best schedule for a
/// large square DGEMM, found once and frozen (a hand-optimized library does
/// not retune per shape -- that rigidity is what Table 2 measures).
const dsl::Strategy& reference_square_strategy(const sim::SimConfig& cfg) {
  static const dsl::Strategy s = [&] {
    const ops::MatmulOp big(2048, 2048, 2048);
    const tune::ModelTuner tuner(cfg);
    return tuner.tune(big).candidate.strategy;
  }();
  return s;
}

}  // namespace

dsl::Strategy XMathGemm::fixed_strategy(const ops::MatmulOp& op) {
  const sim::SimConfig cfg;
  const dsl::Strategy& ref = reference_square_strategy(cfg);
  const dsl::ScheduleSpace sp = op.space();
  dsl::Strategy s;
  s.set_factor("Tm", clamp_factor(find_factor(sp, "Tm").candidates,
                                  ref.factor("Tm")));
  s.set_factor("Tn", clamp_factor(find_factor(sp, "Tn").candidates,
                                  ref.factor("Tn")));
  s.set_factor("Tk", clamp_factor(find_factor(sp, "Tk").candidates,
                                  ref.factor("Tk")));
  s.set_choice("order", ref.choice("order"));
  s.set_choice("variant", ref.choice("variant"));
  s.set_choice("boundary", "pad");
  return s;
}

double XMathGemm::padding_cycles(std::int64_t M, std::int64_t N,
                                 std::int64_t K) const {
  if (aligned(M, N, K)) return 0.0;
  const std::int64_t Mp = align_up(M, 32), Np = align_up(N, 32),
                     Kp = align_up(K, 8);
  sim::CoreGroup cg(cfg_);
  cg.mem().set_materialize(false);
  const auto a_src = cg.mem().alloc(M * K, "A");
  const auto b_src = cg.mem().alloc(K * N, "B");
  const auto c_dst = cg.mem().alloc(M * N, "C");
  // Traditional padding: re-materialize A and B at padded dims, and copy
  // the valid region of the padded C back out.
  prim::pad_full(cg, a_src, M, K, M, Mp, Kp, sim::ExecMode::TimingOnly);
  prim::pad_full(cg, b_src, K, N, K, Kp, Np, sim::ExecMode::TimingOnly);
  const auto cp = cg.mem().alloc(Mp * Np, "Cp");
  prim::copy_block(cg, cp, Mp, c_dst, M, M, N, sim::ExecMode::TimingOnly);
  return cg.now();
}

double XMathGemm::cycles(std::int64_t M, std::int64_t N,
                         std::int64_t K) const {
  const std::int64_t Mp = align_up(M, 32), Np = align_up(N, 32),
                     Kp = align_up(K, 8);
  const ops::MatmulOp op(Mp, Np, Kp);
  const double gemm = tune::measure_strategy(op, fixed_strategy(op), cfg_);
  return gemm + padding_cycles(M, N, K);
}

void XMathGemm::run(sim::CoreGroup& cg, sim::MainMemory::Addr A,
                    sim::MainMemory::Addr B, sim::MainMemory::Addr C,
                    std::int64_t M, std::int64_t N, std::int64_t K) const {
  const std::int64_t Mp = align_up(M, 32), Np = align_up(N, 32),
                     Kp = align_up(K, 8);
  const sim::MainMemory::Addr Ap =
      prim::pad_full(cg, A, M, K, M, Mp, Kp, sim::ExecMode::Functional);
  const sim::MainMemory::Addr Bp =
      prim::pad_full(cg, B, K, N, K, Kp, Np, sim::ExecMode::Functional);
  const sim::MainMemory::Addr Cp = cg.mem().alloc(Mp * Np, "xmath_Cp");

  const ops::MatmulOp op(Mp, Np, Kp);
  const sched::Candidate cand =
      tune::build_candidate(op, fixed_strategy(op), cg.config());
  dsl::BoundTensors bt{{"A", Ap}, {"B", Bp}, {"C", Cp}};
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  interp.run(cand.program, bt);
  prim::copy_block(cg, Cp, Mp, C, M, M, N, sim::ExecMode::Functional);
}

}  // namespace swatop::baseline
