#include "baseline/manual_winograd.hpp"

namespace swatop::baseline {

namespace {

/// Per-call marshalling: gather V_t out of the tile-interleaved transform
/// output (runs of `run` floats every 16 * run) into a dense matrix, and
/// scatter M_t back the same way.
double marshal_cycles(std::int64_t floats, std::int64_t run,
                      const sim::SimConfig& cfg) {
  const sim::DmaEngine engine(cfg);
  sim::DmaCpeDesc gather;
  gather.block = run;
  gather.stride = 15 * run;
  gather.total = floats;
  sim::DmaCpeDesc dense;
  dense.block = floats;
  dense.total = floats;
  return engine.cost(gather).total_cycles() +
         engine.cost(dense).total_cycles();
}

}  // namespace

double ManualWinogradConv::cycles(const ops::ConvShape& s) const {
  const ops::WinogradPlan plan(s);
  const double pre_post =
      ops::WinogradGemmOp::pre_post_cycles(plan, cfg_);
  const XMathGemm gemm(cfg_);
  // 16 separate library calls: M = No, N = P, K = Ni each, plus the
  // marshalling each call boundary forces.
  const double one = gemm.cycles(s.no, plan.P, s.ni) +
                     marshal_cycles(s.ni * plan.P, s.ni, cfg_) +
                     marshal_cycles(s.no * plan.P, s.no, cfg_);
  return pre_post + 16.0 * one;
}

}  // namespace swatop::baseline
