// The manual explicit-GEMM convolution baseline of Fig. 7: im2col plus one
// call into the hand-tuned GEMM library (xMath) on the resulting
// (No) x (Ni*Kr*Kc) x (B*Ro*Co) problem.
#pragma once

#include "baseline/xmath_gemm.hpp"
#include "ops/explicit_conv.hpp"

namespace swatop::baseline {

class ManualExplicitConv {
 public:
  explicit ManualExplicitConv(const sim::SimConfig& cfg) : cfg_(cfg) {}

  double cycles(const ops::ConvShape& s) const;

 private:
  sim::SimConfig cfg_;
};

}  // namespace swatop::baseline
