// The manual Winograd baseline of Fig. 6: the transforms are shared with
// swATOP's version, but the 16 element-wise-product GEMMs are dispatched as
// 16 *independent* calls into the hand-tuned GEMM library (xMath), each
// paying the library's fixed blocking, its own padding and its own
// memory round trips -- no cross-t schedule, no fusion.
//
// The library-call boundary also forces data marshalling: a straightforward
// transform produces tile-interleaved data ([p][t][ni] -- all 16 positions
// of one tile together), while a CBLAS-style GEMM needs each V_t / M_t as a
// dense column-major matrix, so every call gathers its input and scatters
// its output with stride 16 (priced at transaction granularity). swATOP's
// fused version instead *chooses* the t-major layout in the DSL (the layout
// transformation of Sec. 4.3.2), making the marshalling disappear.
#pragma once

#include "baseline/xmath_gemm.hpp"
#include "ops/winograd.hpp"

namespace swatop::baseline {

class ManualWinogradConv {
 public:
  explicit ManualWinogradConv(const sim::SimConfig& cfg) : cfg_(cfg) {}

  static bool applicable(const ops::ConvShape& s) {
    return ops::WinogradPlan::applicable(s);
  }

  double cycles(const ops::ConvShape& s) const;

 private:
  sim::SimConfig cfg_;
};

}  // namespace swatop::baseline
