#include "prim/gemm_primitive.hpp"

#include "common/check.hpp"

namespace swatop::prim {

namespace {

/// Index of element (i, j) in a tile with `rows` rows stored column-major
/// (leading dimension = rows) or row-major (leading dimension = cols).
inline std::int64_t tile_at(std::int64_t i, std::int64_t j, std::int64_t rows,
                            std::int64_t cols, bool col_major) {
  return col_major ? i + j * rows : j + i * cols;
}

}  // namespace

SpmGemmFootprint spm_gemm_footprint(std::int64_t M, std::int64_t N,
                                    std::int64_t K,
                                    const sim::SimConfig& cfg) {
  const std::int64_t m = M / cfg.mesh_rows;
  const std::int64_t n = N / cfg.mesh_cols;
  const std::int64_t k = K / cfg.mesh_rows;
  return {m * k, k * n, m * n};
}

bool spm_gemm_valid(std::int64_t M, std::int64_t N, std::int64_t K,
                    const isa::KernelVariant& v, const sim::SimConfig& cfg) {
  if (M <= 0 || N <= 0 || K <= 0) return false;
  if (M % cfg.mesh_rows != 0 || N % cfg.mesh_cols != 0 ||
      K % cfg.mesh_rows != 0)
    return false;
  const std::int64_t vec_local =
      v.vec == isa::VecDim::M ? M / cfg.mesh_rows : N / cfg.mesh_cols;
  return vec_local % cfg.vector_width == 0;
}

void spm_gemm(sim::CoreGroup& cg, const SpmGemmArgs& args, sim::ExecMode mode,
              const isa::KernelCostDb& db) {
  const sim::SimConfig& cfg = cg.config();
  SWATOP_CHECK(spm_gemm_valid(args.M, args.N, args.K, args.variant, cfg))
      << "invalid spm_gemm dims (" << args.M << "," << args.N << ","
      << args.K << ") for variant " << args.variant.name();

  const int R = cfg.mesh_rows;
  const int C = cfg.mesh_cols;
  const std::int64_t m = args.M / R;
  const std::int64_t n = args.N / C;
  const std::int64_t k = args.K / R;

  // Tiles must fit where the caller placed them; the Spm view() calls below
  // bounds-check every access, but validate the extents up front for a
  // clearer error.
  const SpmGemmFootprint fp = spm_gemm_footprint(args.M, args.N, args.K, cfg);
  for (std::int64_t off : {args.a_spm + fp.a_floats, args.b_spm + fp.b_floats,
                           args.c_spm + fp.c_floats}) {
    SWATOP_CHECK(off <= cfg.spm_floats())
        << "spm_gemm tile exceeds SPM capacity";
  }

  const double cycles =
      db.spm_gemm_cycles(args.variant, args.M, args.N, args.K);
  cg.advance_compute(cycles);
  sim::CgStats& st = cg.stats();
  st.gemm_calls += 1;
  st.flops += 2 * args.M * args.N * args.K;
  st.gemm_cycles += cycles;
  st.gemm_comm_cycles += db.spm_gemm_comm_cycles();
  const obs::PipeCounters pipe =
      db.spm_gemm_pipe(args.variant, args.M, args.N, args.K);
  st.pipe.issued_p0 += pipe.issued_p0;
  st.pipe.issued_p1 += pipe.issued_p1;
  st.pipe.raw_stall_cycles += pipe.raw_stall_cycles;

  if (mode != sim::ExecMode::Functional) return;

  const bool c_col_major = args.variant.vec == isa::VecDim::M;
  sim::CpeCluster& cl = cg.cluster();

  // beta scaling once, before accumulating panels.
  if (args.beta != 1.0f) {
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        auto cv = cl.at(r, c).spm().view(args.c_spm, m * n);
        for (float& x : cv) x *= args.beta;
      }
    }
  }

  for (int kb = 0; kb < R; ++kb) {
    // Row broadcast of A tiles in mesh column kb; column broadcast of B
    // tiles in mesh row kb.
    cl.bus().record_row_broadcast(m * k * R);
    cl.bus().record_col_broadcast(k * n * C);
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        const auto a = cl.at(r, kb).spm().view(args.a_spm, m * k);
        const auto b = cl.at(kb, c).spm().view(args.b_spm, k * n);
        auto cc = cl.at(r, c).spm().view(args.c_spm, m * n);
        for (std::int64_t i = 0; i < m; ++i) {
          for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk) {
              acc += a[static_cast<std::size_t>(tile_at(
                         i, kk, m, k, args.variant.a_col_major))] *
                     b[static_cast<std::size_t>(tile_at(
                         kk, j, k, n, args.variant.b_col_major))];
            }
            cc[static_cast<std::size_t>(tile_at(i, j, m, n, c_col_major))] +=
                args.alpha * acc;
          }
        }
      }
    }
  }
}

void spm_gemm(sim::CoreGroup& cg, const SpmGemmArgs& args,
              sim::ExecMode mode) {
  spm_gemm(cg, args, mode, isa::kernel_cost_db(cg.config()));
}

}  // namespace swatop::prim
