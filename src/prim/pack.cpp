#include "prim/pack.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace swatop::prim {

namespace {

/// Price one strided pass over a column-major (rows x cols) block.
void charge_pass(sim::CoreGroup& cg, sim::MainMemory::Addr base,
                 std::int64_t rows, std::int64_t cols, std::int64_t ld,
                 sim::DmaDir dir) {
  sim::DmaCpeDesc d;
  d.mem_base = base;
  d.spm_addr = 0;
  d.block = rows;
  d.stride = ld - rows;
  d.total = rows * cols;
  d.dir = dir;
  cg.charge_dma_sync(std::span<const sim::DmaCpeDesc>(&d, 1));
}

}  // namespace

void copy_block(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                std::int64_t src_ld, sim::MainMemory::Addr dst,
                std::int64_t dst_ld, std::int64_t rows, std::int64_t cols,
                sim::ExecMode mode) {
  SWATOP_CHECK(rows >= 0 && cols >= 0);
  if (rows == 0 || cols == 0) return;
  SWATOP_CHECK(src_ld >= rows && dst_ld >= rows)
      << "copy_block leading dims too small";
  charge_pass(cg, src, rows, cols, src_ld, sim::DmaDir::MemToSpm);
  charge_pass(cg, dst, rows, cols, dst_ld, sim::DmaDir::SpmToMem);
  if (mode != sim::ExecMode::Functional) return;
  for (std::int64_t j = 0; j < cols; ++j) {
    auto s = cg.mem().view(src + j * src_ld, rows);
    auto d = cg.mem().view(dst + j * dst_ld, rows);
    std::copy(s.begin(), s.end(), d.begin());
  }
}

sim::MainMemory::Addr pad_full(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                               std::int64_t rows, std::int64_t cols,
                               std::int64_t src_ld, std::int64_t new_rows,
                               std::int64_t new_cols, sim::ExecMode mode) {
  SWATOP_CHECK(new_rows >= rows && new_cols >= cols)
      << "pad_full target smaller than source";
  const sim::MainMemory::Addr dst =
      cg.mem().alloc(new_rows * new_cols, "pad_full");
  // The arena zero-initializes; in functional mode the copy fills the rest.
  copy_block(cg, src, src_ld, dst, new_rows, rows, cols, mode);
  // Writing the zero fringe costs a pass over the fringe area as well.
  const std::int64_t fringe =
      new_rows * new_cols - rows * cols;
  if (fringe > 0) {
    sim::DmaCpeDesc d;
    d.mem_base = dst;
    d.spm_addr = 0;
    d.block = std::min<std::int64_t>(fringe, new_rows);
    d.stride = 0;
    d.total = fringe;
    d.dir = sim::DmaDir::SpmToMem;
    cg.charge_dma_sync(std::span<const sim::DmaCpeDesc>(&d, 1));
  }
  return dst;
}

LightweightPad pad_lightweight(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                               std::int64_t rows, std::int64_t cols,
                               std::int64_t src_ld, std::int64_t tile_rows,
                               std::int64_t tile_cols, sim::ExecMode mode) {
  SWATOP_CHECK(tile_rows > 0 && tile_cols > 0);
  LightweightPad out;
  const std::int64_t ragged_rows = rows % tile_rows;
  const std::int64_t ragged_cols = cols % tile_cols;
  const std::int64_t rows_padded = align_up(rows, tile_rows);
  const std::int64_t cols_padded = align_up(cols, tile_cols);

  if (ragged_cols != 0) {
    // Right sliver: the last ragged column block, all rows, padded to a
    // whole tile_cols width and to rows_padded height so bottom-right is
    // covered too.
    out.right = cg.mem().alloc(rows_padded * tile_cols, "lw_pad_right");
    out.right_ld = rows_padded;
    const std::int64_t col0 = cols - ragged_cols;
    copy_block(cg, src + col0 * src_ld, src_ld, out.right, rows_padded, rows,
               ragged_cols, mode);
    out.copied_floats += rows * ragged_cols;
  }
  if (ragged_rows != 0) {
    // Bottom sliver: the last ragged row block across all *full* column
    // tiles (the bottom-right corner lives in the right sliver when both
    // are ragged).
    const std::int64_t covered_cols =
        ragged_cols != 0 ? cols - ragged_cols : cols;
    if (covered_cols > 0) {
      out.bottom = cg.mem().alloc(
          tile_rows * align_up(covered_cols, tile_cols), "lw_pad_bottom");
      out.bottom_ld = tile_rows;
      const std::int64_t row0 = rows - ragged_rows;
      copy_block(cg, src + row0, src_ld, out.bottom, tile_rows, ragged_rows,
                 covered_cols, mode);
      out.copied_floats += ragged_rows * covered_cols;
    }
  }
  (void)cols_padded;
  return out;
}

sim::MainMemory::Addr transpose(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                                std::int64_t rows, std::int64_t cols,
                                sim::ExecMode mode) {
  const sim::MainMemory::Addr dst = cg.mem().alloc(rows * cols, "transpose");
  charge_pass(cg, src, rows, cols, rows, sim::DmaDir::MemToSpm);
  // The write side is the expensive pass: element stride = cols.
  sim::DmaCpeDesc d;
  d.mem_base = dst;
  d.spm_addr = 0;
  d.block = cols;  // one output row at a time is contiguous
  d.stride = 0;
  d.total = rows * cols;
  d.dir = sim::DmaDir::SpmToMem;
  cg.charge_dma_sync(std::span<const sim::DmaCpeDesc>(&d, 1));
  if (mode == sim::ExecMode::Functional) {
    for (std::int64_t j = 0; j < cols; ++j)
      for (std::int64_t i = 0; i < rows; ++i)
        cg.mem().write(dst + j + i * cols, cg.mem().read(src + i + j * rows));
  }
  return dst;
}

}  // namespace swatop::prim
