// The spm_gemm tensorized primitive: C += alpha * A x B with A, B and C
// resident in the SPMs of the 8x8 CPE cluster (the paper's Sec. 4.1 and
// appendix).
//
// Matrices are partitioned uniformly into 8x8 tiles; CPE (r, c) holds tile
// (r, c) of each operand. Execution is a SUMMA-style sweep over 8 k-panels:
// in panel kb, the CPEs of mesh column kb broadcast their A tiles along the
// row bus and the CPEs of mesh row kb broadcast their B tiles along the
// column bus; every CPE then runs the register-blocked micro-kernel on the
// received tiles. Functional execution really performs the distributed
// arithmetic across the 64 simulated SPMs; timing comes from the
// pipeline-priced micro-kernel bodies (KernelCostDb).
#pragma once

#include <cstdint>

#include "isa/kernel_cache.hpp"
#include "sim/core_group.hpp"

namespace swatop::prim {

/// Arguments of the spm_gemm primitive (the paper's CBLAS-like interface
/// plus the vectorization-dimension parameter, carried inside `variant`).
struct SpmGemmArgs {
  std::int64_t M = 0;  ///< global rows of A/C; must be divisible by 8
  std::int64_t N = 0;  ///< global cols of B/C; must be divisible by 8
  std::int64_t K = 0;  ///< global depth; must be divisible by 8
  float alpha = 1.0f;
  float beta = 1.0f;
  std::int64_t a_spm = 0;  ///< SPM float offset of the local A tile
  std::int64_t b_spm = 0;  ///< SPM float offset of the local B tile
  std::int64_t c_spm = 0;  ///< SPM float offset of the local C tile
  isa::KernelVariant variant;
};

/// SPM floats needed per CPE by each operand of a (M, N, K) spm_gemm.
struct SpmGemmFootprint {
  std::int64_t a_floats = 0;
  std::int64_t b_floats = 0;
  std::int64_t c_floats = 0;
  std::int64_t total() const { return a_floats + b_floats + c_floats; }
};
SpmGemmFootprint spm_gemm_footprint(std::int64_t M, std::int64_t N,
                                    std::int64_t K,
                                    const sim::SimConfig& cfg);

/// True if (M, N, K) with this variant satisfies the primitive's
/// divisibility constraints (mesh distribution + vector alignment of the
/// vectorized dimension).
bool spm_gemm_valid(std::int64_t M, std::int64_t N, std::int64_t K,
                    const isa::KernelVariant& v, const sim::SimConfig& cfg);

/// Execute the primitive on a core group. Throws CheckError on invalid
/// arguments. Advances the CG clock; in Functional mode also computes.
void spm_gemm(sim::CoreGroup& cg, const SpmGemmArgs& args, sim::ExecMode mode,
              const isa::KernelCostDb& db);

/// Convenience overload using the process-wide cost database.
void spm_gemm(sim::CoreGroup& cg, const SpmGemmArgs& args, sim::ExecMode mode);

}  // namespace swatop::prim
