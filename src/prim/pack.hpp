// Packing primitives: layout transformation and zero-padding performed by
// the CPE cluster (data staged through SPM, priced as DMA traffic).
//
// These implement the two padding strategies of Sec. 4.5.3: traditional
// padding re-materializes the whole matrix into a padded buffer, while
// lightweight padding copies only the boundary slivers into small auxiliary
// buffers and lets the generated code switch buffers at the boundary.
#pragma once

#include <cstdint>

#include "sim/core_group.hpp"

namespace swatop::prim {

/// Copy a (rows x cols) column-major block from src (leading dim src_ld) to
/// dst (leading dim dst_ld), staging through SPM. Functional copy plus DMA
/// pricing for one read and one write of the block.
void copy_block(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                std::int64_t src_ld, sim::MainMemory::Addr dst,
                std::int64_t dst_ld, std::int64_t rows, std::int64_t cols,
                sim::ExecMode mode);

/// Traditional zero-padding: allocate a (new_rows x new_cols) column-major
/// matrix, copy the whole (rows x cols) source into it, zero elsewhere.
/// Returns the new allocation's base address.
sim::MainMemory::Addr pad_full(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                               std::int64_t rows, std::int64_t cols,
                               std::int64_t src_ld, std::int64_t new_rows,
                               std::int64_t new_cols, sim::ExecMode mode);

/// Lightweight zero-padding of a column-major matrix tiled by (tile_rows x
/// tile_cols): only the ragged right/bottom tile slivers are copied into
/// zero-filled auxiliary buffers sized to whole tiles.
struct LightweightPad {
  /// Aux buffer covering the ragged bottom rows, (tile_rows x full_cols_padded),
  /// column-major with ld = tile_rows. 0 if no ragged rows.
  sim::MainMemory::Addr bottom = -1;
  /// Aux buffer covering the ragged right columns, (rows_padded x tile_cols),
  /// column-major with ld = rows_padded. -1 if no ragged cols.
  sim::MainMemory::Addr right = -1;
  std::int64_t bottom_ld = 0;
  std::int64_t right_ld = 0;
  std::int64_t copied_floats = 0;  ///< how much data the padding touched
};
LightweightPad pad_lightweight(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                               std::int64_t rows, std::int64_t cols,
                               std::int64_t src_ld, std::int64_t tile_rows,
                               std::int64_t tile_cols, sim::ExecMode mode);

/// Out-of-place transpose (rows x cols, column-major, ld = rows) into a new
/// (cols x rows) column-major allocation; the layout transformation of
/// Sec. 4.3.2 when a schedule strategy wants the other orientation.
sim::MainMemory::Addr transpose(sim::CoreGroup& cg, sim::MainMemory::Addr src,
                                std::int64_t rows, std::int64_t cols,
                                sim::ExecMode mode);

}  // namespace swatop::prim
