#include "prim/dma_primitive.hpp"

#include "common/check.hpp"

namespace swatop::prim {

ReplyWord swdma(sim::CoreGroup& cg, const std::vector<sim::DmaCpeDesc>& descs,
                sim::ExecMode mode) {
  return ReplyWord{cg.dma_issue(descs, mode)};
}

void swdma_wait(sim::CoreGroup& cg, ReplyWord& reply) {
  cg.dma_wait(reply.id);
  reply.id = 0;
}

std::vector<sim::DmaCpeDesc> scatter_2d(const sim::SimConfig& cfg,
                                        sim::MainMemory::Addr base,
                                        std::int64_t rows, std::int64_t cols,
                                        std::int64_t ld,
                                        std::int64_t spm_addr,
                                        sim::DmaDir dir) {
  SWATOP_CHECK(rows > 0 && cols > 0) << "empty scatter_2d";
  SWATOP_CHECK(rows % cfg.mesh_rows == 0)
      << "scatter_2d rows " << rows << " not divisible by mesh";
  SWATOP_CHECK(cols % cfg.mesh_cols == 0)
      << "scatter_2d cols " << cols << " not divisible by mesh";
  SWATOP_CHECK(ld >= rows) << "leading dimension " << ld << " < rows " << rows;

  const std::int64_t tr = rows / cfg.mesh_rows;  // tile rows
  const std::int64_t tc = cols / cfg.mesh_cols;  // tile cols
  std::vector<sim::DmaCpeDesc> descs;
  descs.reserve(static_cast<std::size_t>(cfg.num_cpes()));
  for (int rid = 0; rid < cfg.mesh_rows; ++rid) {
    for (int cid = 0; cid < cfg.mesh_cols; ++cid) {
      sim::DmaCpeDesc d;
      d.mem_base = base + (static_cast<std::int64_t>(cid) * tc) * ld +
                   static_cast<std::int64_t>(rid) * tr;
      d.spm_addr = spm_addr;
      d.block = tr;
      d.stride = ld - tr;
      d.total = tr * tc;
      d.dir = dir;
      descs.push_back(d);
    }
  }
  return descs;
}

std::vector<sim::DmaCpeDesc> replicate_1d(const sim::SimConfig& cfg,
                                          sim::MainMemory::Addr base,
                                          std::int64_t count,
                                          std::int64_t spm_addr) {
  SWATOP_CHECK(count > 0) << "empty replicate_1d";
  std::vector<sim::DmaCpeDesc> descs(
      static_cast<std::size_t>(cfg.num_cpes()),
      sim::DmaCpeDesc{base, spm_addr, count, 0, count, sim::DmaDir::MemToSpm});
  return descs;
}

}  // namespace swatop::prim
