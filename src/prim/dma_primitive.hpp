// DMA tensorized primitives: the swDMA / swDMAWait pair of the paper's
// Sec. 4.1, plus the descriptor builders that expand a CG-level transfer
// into 64 per-CPE descriptors (the DMA inference rule of Sec. 4.5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/core_group.hpp"

namespace swatop::prim {

/// The paper's swReplyWord: a token identifying an in-flight transfer.
struct ReplyWord {
  sim::CoreGroup::ReplyId id = 0;
};

/// Launch an asynchronous CG-level DMA (descriptors in mesh order, one per
/// CPE, or a single descriptor for an MPE-side scalar transfer).
ReplyWord swdma(sim::CoreGroup& cg, const std::vector<sim::DmaCpeDesc>& descs,
                sim::ExecMode mode);

/// Block until the transfer completes.
void swdma_wait(sim::CoreGroup& cg, ReplyWord& reply);

/// Expand "distribute a (rows x cols) column-major matrix with leading
/// dimension ld, based at `base`, into per-CPE (rid, cid) tiles stored
/// contiguously at `spm_addr`" into 64 descriptors. rows must divide by the
/// mesh rows and cols by the mesh cols. Works for both directions (a
/// SpmToMem direction gathers the tiles back).
///
/// Per the paper's example: block = rows/8, stride = ld - rows/8, offset =
/// (cid * cols/8) * ld + rid * rows/8.
std::vector<sim::DmaCpeDesc> scatter_2d(const sim::SimConfig& cfg,
                                        sim::MainMemory::Addr base,
                                        std::int64_t rows, std::int64_t cols,
                                        std::int64_t ld,
                                        std::int64_t spm_addr,
                                        sim::DmaDir dir);

/// Every CPE transfers the same contiguous `count` floats (weight
/// broadcast). Only legal for MemToSpm.
std::vector<sim::DmaCpeDesc> replicate_1d(const sim::SimConfig& cfg,
                                          sim::MainMemory::Addr base,
                                          std::int64_t count,
                                          std::int64_t spm_addr);

}  // namespace swatop::prim
