#include "obs/trace.hpp"

#include <ostream>

#include "common/check.hpp"

namespace swatop::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::Run: return "run";
    case Category::Dma: return "dma";
    case Category::Compute: return "compute";
    case Category::Spm: return "spm";
    case Category::Tune: return "tune";
    case Category::Serve: return "serve";
  }
  SWATOP_UNREACHABLE("bad trace category");
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void TraceBuffer::record(TraceEvent ev) {
  if (!wrapped_ && ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  wrapped_ = true;
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::size_t TraceBuffer::size() const { return ring_.size(); }

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

void TraceBuffer::clear() {
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

namespace {

/// JSON string escaping for event names (names come from buffer names and
/// fixed literals, but stay safe for arbitrary input).
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_metadata(std::ostream& os, const char* what, int pid, int tid,
                    const char* name, bool thread) {
  os << "{\"ph\":\"M\",\"name\":\"" << what << "\",\"pid\":" << pid;
  if (thread) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& evs,
                        std::int64_t dropped) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  write_metadata(os, "process_name", 0, 0,
                 "simulated core group (ts = CPE cycles)", false);
  os << ",\n";
  write_metadata(os, "thread_name", 0, Track::kCluster, "cluster", true);
  os << ",\n";
  write_metadata(os, "thread_name", 0, Track::kDmaEngine, "dma-engine", true);
  for (int g = 0; g < 4; ++g) {
    os << ",\n";
    const std::string name = "net-cg" + std::to_string(g);
    write_metadata(os, "thread_name", 0, Track::kNetCg0 + g, name.c_str(),
                   true);
  }
  os << ",\n";
  write_metadata(os, "process_name", 1, 0, "tuner (ts = wall-clock us)",
                 false);
  os << ",\n";
  write_metadata(os, "process_name", 2, 0,
                 "serving fleet (ts = simulated us)", false);
  for (int c = 0; c < 4; ++c) {
    os << ",\n";
    const std::string name = "chip" + std::to_string(c);
    write_metadata(os, "thread_name", 2, Track::kServeChip0 + c, name.c_str(),
                   true);
  }
  os << ",\n";
  write_metadata(os, "thread_name", 2, Track::kServeAdmission, "admission",
                 true);
  for (int r = 0; r < Track::kServeRequestTracks; ++r) {
    os << ",\n";
    const std::string name = "requests-" + std::to_string(r);
    write_metadata(os, "thread_name", 2, Track::kServeRequest0 + r,
                   name.c_str(), true);
  }
  if (dropped > 0) {
    // Surfaced in the artifact itself: the ring buffer overwrote this many
    // events, so the exported window is the tail of the run.
    os << ",\n{\"ph\":\"M\",\"name\":\"trace_buffer_dropped_events\","
          "\"pid\":0,\"args\":{\"dropped\":"
       << dropped << "}}";
  }
  for (const TraceEvent& e : evs) {
    os << ",\n{\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":\"" << category_name(e.cat) << "\",\"ph\":\"";
    if (e.flow != 0)
      os << e.flow;
    else
      os << (e.instant ? 'i' : 'X');
    os << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"ts\":" << e.ts;
    if (e.flow != 0) {
      os << ",\"id\":" << e.flow_id;
      // Bind the flow end to the enclosing slice, not the next slice.
      if (e.flow == 'f') os << ",\"bp\":\"e\"";
      os << '}';
      continue;
    }
    if (!e.instant) os << ",\"dur\":" << e.dur;
    if (e.instant) os << ",\"s\":\"t\"";
    bool any = false;
    for (int i = 0; i < 3; ++i) {
      if (e.arg_name[i] == nullptr) continue;
      os << (any ? "," : ",\"args\":{") << '"' << e.arg_name[i]
         << "\":" << e.arg[i];
      any = true;
    }
    if (any) os << '}';
    os << '}';
  }
  os << "\n]}\n";
}

}  // namespace swatop::obs
