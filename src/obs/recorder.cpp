#include "obs/recorder.hpp"

#include <chrono>

namespace swatop::obs {

namespace {

double steady_us() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::micro>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace

Recorder::Recorder(const Options& opts)
    : opts_(opts), buffer_(opts.trace_capacity), t0_us_(steady_us()) {}

CpeCounters& Recorder::cpe(int cpe) {
  if (static_cast<std::size_t>(cpe) >= counters_.per_cpe.size())
    counters_.per_cpe.resize(static_cast<std::size_t>(cpe) + 1);
  return counters_.per_cpe[static_cast<std::size_t>(cpe)];
}

double Recorder::wall_us() const { return steady_us() - t0_us_; }

void Recorder::reset_execution() { counters_ = Counters{}; }

}  // namespace swatop::obs
