// A Profile is the immutable result of one observed execution: a snapshot
// of the counter registry, the trace events collected so far (tuning +
// execution), and formatting helpers -- Chrome trace-event JSON for
// chrome://tracing / Perfetto and a human-readable text report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace swatop::obs {

struct Profile {
  bool enabled = false;  ///< false: observability was off, all else empty
  Counters counters;
  TuneCounters tune;
  std::vector<TuneSample> tune_samples;
  std::vector<TraceEvent> events;
  std::int64_t events_dropped = 0;  ///< ring-buffer overwrites

  /// Snapshot a recorder (counters copied, events copied in record order).
  static Profile snapshot(const Recorder& rec);

  /// Chrome trace-event JSON document.
  void write_chrome_trace(std::ostream& os) const;
  std::string chrome_trace() const;

  /// Text report: where the cycles went, DMA efficiency, reg-comm traffic,
  /// SPM footprint, pipeline issue mix, tuner model-vs-measured table.
  std::string report() const;
};

}  // namespace swatop::obs
