#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace swatop::obs {

const char* attr_cat_name(AttrCat c) {
  switch (c) {
    case AttrCat::KernelIssue: return "kernel issue (P0/P1)";
    case AttrCat::KernelRawStall: return "kernel RAW stalls";
    case AttrCat::RegComm: return "reg-comm switches";
    case AttrCat::OtherCompute: return "other compute";
    case AttrCat::DmaQueueWait: return "dma queue wait";
    case AttrCat::DmaWait: return "dma wait";
    case AttrCat::Barrier: return "noc barrier";
    case AttrCat::Imbalance: return "group imbalance";
    case AttrCat::Residual: return "residual";
    case AttrCat::kCount: break;
  }
  return "?";
}

double Attribution::sum() const {
  double s = 0.0;
  for (double c : cycles) s += c;
  return s;
}

bool Attribution::balanced(double rel_tol) const {
  const double tol = std::max(1.0, basis) * rel_tol;
  if (std::fabs(sum() - basis) > tol) return false;
  for (double c : cycles)
    if (c < -tol) return false;
  return true;
}

Attribution attribute(const AttributionInput& in) {
  auto clamp0 = [](double x) { return x > 0.0 ? x : 0.0; };
  Attribution a;
  a.elapsed = in.elapsed;
  a.groups = in.groups > 0 ? in.groups : 1;
  a.basis = in.elapsed * static_cast<double>(a.groups);

  // DMA blocking: the share the engine queue delayed is felt as extra wait
  // time, so it is carved out of the stall, never double counted.
  const double queue =
      std::min(clamp0(in.dma_queue_wait_cycles), clamp0(in.dma_stall_cycles));
  const double wait = clamp0(in.dma_stall_cycles) - queue;

  // Kernel time: comm switches and RAW stalls are sub-shares of the priced
  // kernel cycles; whatever remains is issue time on the two pipes.
  const double gemm = clamp0(in.gemm_cycles);
  const double comm = std::min(clamp0(in.gemm_comm_cycles), gemm);
  const double raw = std::min(clamp0(in.raw_stall_cycles), gemm - comm);
  const double issue = gemm - comm - raw;
  const double other = clamp0(in.compute_cycles - gemm);

  const double barrier = clamp0(in.barrier_cycles);
  // Idle groups: chip time the span occupied on every group minus the
  // cycles the groups actually clocked (and the barrier, accounted above).
  const double imbalance = clamp0(a.basis - barrier - in.group_cycles);

  a.cycles[static_cast<int>(AttrCat::KernelIssue)] = issue;
  a.cycles[static_cast<int>(AttrCat::KernelRawStall)] = raw;
  a.cycles[static_cast<int>(AttrCat::RegComm)] = comm;
  a.cycles[static_cast<int>(AttrCat::OtherCompute)] = other;
  a.cycles[static_cast<int>(AttrCat::DmaQueueWait)] = queue;
  a.cycles[static_cast<int>(AttrCat::DmaWait)] = wait;
  a.cycles[static_cast<int>(AttrCat::Barrier)] = barrier;
  a.cycles[static_cast<int>(AttrCat::Imbalance)] = imbalance;
  // The exact remainder. Near zero when every clock-advance site books into
  // a counter above; anything else is wiring drift and shows up here.
  double attributed = 0.0;
  for (int i = 0; i < static_cast<int>(AttrCat::Residual); ++i)
    attributed += a.cycles[static_cast<std::size_t>(i)];
  a.cycles[static_cast<int>(AttrCat::Residual)] = a.basis - attributed;
  return a;
}

AttributionInput attribution_input(const Counters& c) {
  AttributionInput in;
  in.elapsed = c.total_cycles;
  in.groups = 1;
  in.group_cycles = c.total_cycles;
  in.compute_cycles = c.compute_cycles;
  in.dma_stall_cycles = c.dma.stall_cycles;
  in.dma_queue_wait_cycles = c.dma.queue_wait_cycles;
  in.gemm_cycles = c.gemm_cycles;
  in.gemm_comm_cycles = c.gemm_comm_cycles;
  in.raw_stall_cycles = c.pipe.raw_stall_cycles;
  return in;
}

Attribution attribute(const Counters& c) {
  return attribute(attribution_input(c));
}

std::string attribution_report(const Attribution& a) {
  std::ostringstream os;
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "cycle attribution (%.0f cycles x %d group%s)\n", a.elapsed,
                a.groups, a.groups == 1 ? "" : "s");
  os << buf;
  for (int i = 0; i < kAttrCats; ++i) {
    const AttrCat c = static_cast<AttrCat>(i);
    if (c == AttrCat::Residual && std::fabs(a.at(c)) < 0.5) continue;
    if ((c == AttrCat::Barrier || c == AttrCat::Imbalance) && a.groups == 1)
      continue;
    std::snprintf(buf, sizeof buf, "  %-22s%14.0f  (%5.1f%%)\n",
                  attr_cat_name(c), a.at(c), 100.0 * a.share(c));
    os << buf;
  }
  std::snprintf(buf, sizeof buf, "  %-22s%14.0f  (100.0%%)\n", "= total",
                a.sum());
  os << buf;
  return os.str();
}

std::string attribution_json(const Attribution& a) {
  std::ostringstream os;
  os << "{\"elapsed\": " << a.elapsed << ", \"groups\": " << a.groups
     << ", \"basis\": " << a.basis << ", \"categories\": {";
  for (int i = 0; i < kAttrCats; ++i) {
    if (i) os << ", ";
    os << '"' << attr_cat_name(static_cast<AttrCat>(i)) << "\": "
       << a.cycles[static_cast<std::size_t>(i)];
  }
  os << "}}";
  return os.str();
}

}  // namespace swatop::obs
