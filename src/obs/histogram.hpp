// Mergeable log-bucketed latency histogram with a bounded relative
// quantile error, plus the exact sorted-vector percentile it is validated
// against.
//
// Bucket layout is fixed and value-independent: every binary octave
// [2^e, 2^(e+1)) is divided into kSubBuckets equal-width linear buckets
// (the HDR-histogram scheme). Indexing uses only frexp/ldexp -- exact
// floating-point arithmetic, no libm log -- so the same sample lands in
// the same bucket on every platform and two histograms always merge by
// element-wise addition. A quantile query returns the midpoint of the
// bucket containing the exact ceil-rank sample, which is within half a
// bucket width of that sample; since bucket width is 2^e / kSubBuckets
// and the sample is >= 2^e, the relative error is bounded by
// kMaxRelError = 1 / (2 * kSubBuckets), about 0.78% at kSubBuckets = 64.
//
// Storage is octave-lazy: a binary octave's 64 counters are allocated as
// one flat block the first time a sample lands in it, so recording is an
// array increment (no per-sample allocation or tree walk -- this sits on
// the serving event loop's hot path) while an empty or narrow
// distribution still costs only the octaves it touches; count, sum, min
// and max are tracked exactly on the side.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace swatop::obs {

/// Exact ceil-rank percentile of an ascending-sorted sample: the smallest
/// element whose rank is >= q * n (rank clamped to [1, n]); 0 when empty.
/// This is the serving report's percentile definition and the test oracle
/// for LatencyHistogram's error bound.
double exact_percentile(const std::vector<double>& sorted, double q);

class LatencyHistogram {
 public:
  /// Linear sub-buckets per binary octave. 64 gives <= 0.79% relative
  /// quantile error at ~26 bytes per occupied bucket.
  static constexpr int kSubBuckets = 64;
  /// Documented relative error bound of quantile() vs exact_percentile()
  /// on the same sample, for values inside the representable range.
  static constexpr double kMaxRelError = 1.0 / (2.0 * kSubBuckets);
  /// Octave clamp: values below 2^kMinExp (in the caller's unit) collapse
  /// into the bottom bucket, values at or above 2^kMaxExp into the top one
  /// (the error bound does not apply to clamped samples). For latencies in
  /// microseconds the range spans ~1 ns to ~100 days.
  static constexpr int kMinExp = -10;
  static constexpr int kMaxExp = 47;
  static constexpr int kNumOctaves = kMaxExp - kMinExp;

  /// Record `n` samples of value `v`. Values <= 0 land in a dedicated
  /// zero bucket whose representative is 0. Inline: one add per served
  /// request on the serving event loop's hot path.
  void add(double v, std::int64_t n = 1) {
    SWATOP_CHECK(n >= 0) << "histogram add of " << n << " samples";
    if (n == 0) return;
    if (v > 0.0) {
      const int idx = bucket_index(v);
      const std::size_t oct = static_cast<std::size_t>(idx / kSubBuckets);
      if (octaves_.empty()) octaves_.resize(kNumOctaves);
      std::unique_ptr<Octave>& o = octaves_[oct];
      if (!o) o = std::make_unique<Octave>();
      o->c[idx % kSubBuckets] += n;
    } else {
      zeros_ += n;
      v = 0.0;
    }
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    count_ += n;
    sum_ += v * static_cast<double>(n);
  }

  /// Element-wise merge (the fixed layout makes this exact: merging then
  /// querying equals adding every sample to one histogram and querying).
  void merge(const LatencyHistogram& other);

  /// Forget every sample but keep the allocated octave blocks, so a
  /// scratch histogram can be reused across many merge-and-query rounds
  /// without reallocating.
  void clear();

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  bool empty() const { return count_ == 0; }

  /// Bucket-midpoint value at the exact_percentile ceil-rank; 0 when
  /// empty. |quantile(q) - exact_percentile(sorted, q)| <=
  /// kMaxRelError * exact_percentile(sorted, q) for unclamped samples.
  double quantile(double q) const;

  /// Fixed-layout bucket index of a positive value (clamped to the
  /// representable octave range). Public for tests.
  static int bucket_index(double v) {
    // v = m * 2^e with m in [0.5, 1): the octave is e - 1 and the
    // sub-bucket is the linear position of m within [0.5, 1). All exact
    // FP arithmetic.
    int e = 0;
    const double m = std::frexp(v, &e);
    const int octave = e - 1;
    if (octave < kMinExp) return 0;
    if (octave >= kMaxExp) return (kMaxExp - kMinExp) * kSubBuckets - 1;
    int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
    if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // m just below 1.0
    return (octave - kMinExp) * kSubBuckets + sub;
  }
  /// Lower edge / midpoint of a bucket. Public for tests.
  static double bucket_lo(int index);
  static double bucket_mid(int index);

  /// Occupied buckets in ascending index order (tests, serialization).
  std::map<int, std::int64_t> buckets() const;
  std::int64_t zero_count() const { return zeros_; }

 private:
  /// One binary octave's linear sub-bucket counters, allocated on first
  /// touch (value-initialized to zero).
  struct Octave {
    std::int64_t c[kSubBuckets] = {};
  };
  std::vector<std::unique_ptr<Octave>> octaves_;  ///< empty until first add
  std::int64_t zeros_ = 0;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace swatop::obs
