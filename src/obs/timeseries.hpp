// Windowed time-series recorder over a simulated clock.
//
// Time is carved into fixed-width half-open windows [k*W, (k+1)*W)
// anchored at t = 0; an event at exactly k*W belongs to window k. Counter
// channels are summed per window; gauge channels are sampled at each
// window close by a caller-supplied sampler (between discrete events the
// observed state is constant, so sampling at the boundary is exact).
// Windows tile the run: every window from 0 through the finish time is
// emitted, empty ones included, and the final window is truncated at the
// finish time -- per-window counter sums therefore equal the end-of-run
// totals by construction (totals() recomputes them for conservation
// checks).
//
// Counts may be dated in the future (a discrete-event loop often learns
// an outcome before its timestamp, e.g. a completion scheduled at
// dispatch time); each future window keeps its own accumulator in a ring
// that rotates into place as the clock passes it, so a future-dated count
// is one array add, not a heap operation -- this recorder sits on the
// serving event loop's hot path. Everything -- window boundaries,
// future-count attribution, the %.17g JSONL export -- is deterministic:
// the same event stream produces the byte-identical export.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace swatop::obs {

/// Half-open window index of time t: floor(t / W), corrected so a t
/// computed as k*W lands in window k even when t/W rounds unluckily.
inline std::int64_t window_index(double t_us, double window_us) {
  std::int64_t idx = static_cast<std::int64_t>(std::floor(t_us / window_us));
  if (t_us < static_cast<double>(idx) * window_us) --idx;
  if (t_us >= static_cast<double>(idx + 1) * window_us) ++idx;
  return idx;
}

class TimeSeries {
 public:
  /// Invoked once per window close with the close time (the window
  /// boundary, or the finish time for the final window); fills `gauges`
  /// (pre-sized to the gauge channel count, zero-initialized).
  using GaugeSampler = std::function<void(double t_us,
                                          std::vector<double>& gauges)>;

  TimeSeries(double window_us, std::vector<std::string> counter_names,
             std::vector<std::string> gauge_names,
             GaugeSampler sampler = nullptr);

  double window_us() const { return window_us_; }
  const std::vector<std::string>& counter_names() const { return cnames_; }
  const std::vector<std::string>& gauge_names() const { return gnames_; }

  /// Add `delta` to counter `channel` at time `t_us`. `t_us` must not
  /// precede the current (open) window; later times are buffered until
  /// advance()/finish() reaches them.
  void count(std::size_t channel, double t_us, double delta = 1.0) {
    count_at(window_index(t_us, window_us_), channel, delta);
  }

  /// count() with the window index precomputed -- for wrappers that also
  /// bucket their own per-window state and index once per event. Inline:
  /// the open-window case (the overwhelming majority) is an array add.
  void count_at(std::int64_t idx, std::size_t channel, double delta = 1.0) {
    SWATOP_CHECK(!finished_) << "count() after finish()";
    SWATOP_CHECK(channel < counters_.size())
        << "counter channel " << channel << " of " << counters_.size();
    SWATOP_CHECK(idx >= cur_)
        << "count in window " << idx << " precedes the open window " << cur_;
    if (idx == cur_) {
      counters_[channel] += delta;
      return;
    }
    count_future(idx, channel, delta);
  }

  std::int64_t open_window() const { return cur_; }
  std::int64_t index_of(double t_us) const {
    return window_index(t_us, window_us_);
  }

  /// Move the clock to `t_us`, closing every window whose end <= t_us.
  /// Inline no-op while t stays inside the open window.
  void advance(double t_us) {
    SWATOP_CHECK(!finished_) << "advance() after finish()";
    if (static_cast<double>(cur_ + 1) * window_us_ > t_us) return;
    advance_slow(t_us);
  }

  /// Close the final window, truncated at `end_us` (>= the current window
  /// start; a run ending exactly on a boundary yields a zero-width final
  /// window so events dated on that boundary still have a home). All
  /// buffered future counts must be <= end_us. Idempotent-terminal: no
  /// recording after finish().
  void finish(double end_us);
  bool finished() const { return finished_; }

  struct Window {
    std::int64_t index = 0;
    double start_us = 0.0;
    double end_us = 0.0;
    std::vector<double> counters;
    std::vector<double> gauges;
  };
  const std::vector<Window>& windows() const { return windows_; }

  /// Invoked at the end of every window close with the just-archived
  /// window (after the gauge sample). Lets a wrapper rotate its own
  /// per-window state in lockstep without duplicating boundary logic.
  void set_on_close(std::function<void(const Window&)> fn) {
    on_close_ = std::move(fn);
  }

  /// Per-counter sums over every closed window (the conservation check:
  /// equals the totals the event loop reports).
  std::vector<double> totals() const;

  /// One JSON object per line per window, fixed field order, %.17g
  /// numbers: {"window":k,"start_us":...,"end_us":...,"<counter>":...,
  /// ...,"<gauge>":...}. Byte-identical for identical event streams.
  std::string jsonl() const;

 private:
  void count_future(std::int64_t idx, std::size_t channel, double delta);
  void advance_slow(double t_us);
  void close_window(double end_us);

  double window_us_;
  std::vector<std::string> cnames_;
  std::vector<std::string> gnames_;
  GaugeSampler sampler_;
  std::function<void(const Window&)> on_close_;
  std::int64_t cur_ = 0;  ///< index of the open window
  std::vector<double> counters_;  ///< open window's accumulation
  /// future_[d] accumulates counts dated in window cur_ + 1 + d; the
  /// front rotates into counters_ at each window close.
  std::deque<std::vector<double>> future_;
  std::vector<Window> windows_;
  bool finished_ = false;
};

}  // namespace swatop::obs
