#include "obs/roofline.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace swatop::obs {

RooflinePoint roofline_place(std::string name, std::int64_t flops,
                             std::int64_t dram_bytes, double cycles,
                             const RooflineMachine& m) {
  RooflinePoint p;
  p.name = std::move(name);
  p.flops = flops;
  p.dram_bytes = dram_bytes;
  p.cycles = cycles;
  p.intensity = dram_bytes > 0
                    ? static_cast<double>(flops) /
                          static_cast<double>(dram_bytes)
                    : 0.0;
  p.achieved =
      cycles > 0.0 ? static_cast<double>(flops) / cycles : 0.0;
  const double mem_roof = p.intensity * m.dma_bytes_per_cycle;
  if (dram_bytes <= 0) {
    // No DRAM traffic: only the compute roof applies.
    p.roof = m.peak_flops_per_cycle;
    p.compute_bound = true;
  } else {
    p.compute_bound = p.intensity >= m.ridge();
    p.roof = std::min(m.peak_flops_per_cycle, mem_roof);
  }
  p.utilization = p.roof > 0.0 ? p.achieved / p.roof : 0.0;
  return p;
}

RooflinePoint roofline_place(std::string name, const Counters& c,
                             const RooflineMachine& m) {
  return roofline_place(std::move(name), c.flops,
                        c.dma.bytes_requested + c.dma.bytes_wasted,
                        c.total_cycles, m);
}

std::string roofline_report(const std::vector<RooflinePoint>& pts,
                            const RooflineMachine& m) {
  std::ostringstream os;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "roofline (per CG: compute roof %.0f flop/cy, dma roof "
                "%.2f B/cy, ridge %.1f flop/B)\n",
                m.peak_flops_per_cycle, m.dma_bytes_per_cycle, m.ridge());
  os << buf;
  std::snprintf(buf, sizeof buf, "  %-16s %10s %10s %10s %6s  %s\n", "span",
                "flop/B", "flop/cy", "roof", "util%", "bound by");
  os << buf;
  for (const RooflinePoint& p : pts) {
    std::snprintf(buf, sizeof buf, "  %-16s %10.2f %10.1f %10.1f %6.1f  %s\n",
                  p.name.c_str(), p.intensity, p.achieved, p.roof,
                  100.0 * p.utilization, p.binding());
    os << buf;
  }
  return os.str();
}

std::string roofline_json(const std::vector<RooflinePoint>& pts,
                          const RooflineMachine& m) {
  std::ostringstream os;
  os << "{\"peak_flops_per_cycle\": " << m.peak_flops_per_cycle
     << ", \"dma_bytes_per_cycle\": " << m.dma_bytes_per_cycle
     << ", \"ridge\": " << m.ridge() << ", \"points\": [";
  bool first = true;
  for (const RooflinePoint& p : pts) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << p.name << "\", \"flops\": " << p.flops
       << ", \"dram_bytes\": " << p.dram_bytes << ", \"cycles\": " << p.cycles
       << ", \"intensity\": " << p.intensity
       << ", \"achieved\": " << p.achieved << ", \"roof\": " << p.roof
       << ", \"utilization\": " << p.utilization << ", \"bound\": \""
       << p.binding() << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace swatop::obs
