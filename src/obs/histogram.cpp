#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace swatop::obs {

double exact_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

double LatencyHistogram::bucket_lo(int index) {
  const int octave = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double LatencyHistogram::bucket_mid(int index) {
  const int octave = kMinExp + index / kSubBuckets;
  const double width = std::ldexp(1.0, octave) / kSubBuckets;
  return bucket_lo(index) + width / 2.0;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (!other.octaves_.empty()) {
    if (octaves_.empty()) octaves_.resize(kNumOctaves);
    for (std::size_t oct = 0; oct < other.octaves_.size(); ++oct) {
      const std::unique_ptr<Octave>& theirs = other.octaves_[oct];
      if (!theirs) continue;
      std::unique_ptr<Octave>& ours = octaves_[oct];
      if (!ours) ours = std::make_unique<Octave>();
      for (int s = 0; s < kSubBuckets; ++s) ours->c[s] += theirs->c[s];
    }
  }
  zeros_ += other.zeros_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::clear() {
  for (std::unique_ptr<Octave>& o : octaves_)
    if (o) *o = Octave{};
  zeros_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  std::int64_t rank =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  // The zero bucket sorts below every positive bucket.
  if (rank <= zeros_) return 0.0;
  std::int64_t seen = zeros_;
  for (std::size_t oct = 0; oct < octaves_.size(); ++oct) {
    const std::unique_ptr<Octave>& o = octaves_[oct];
    if (!o) continue;
    for (int s = 0; s < kSubBuckets; ++s) {
      seen += o->c[s];
      if (seen >= rank)
        return bucket_mid(static_cast<int>(oct) * kSubBuckets + s);
    }
  }
  SWATOP_UNREACHABLE("histogram rank walked past every bucket");
}

std::map<int, std::int64_t> LatencyHistogram::buckets() const {
  std::map<int, std::int64_t> out;
  for (std::size_t oct = 0; oct < octaves_.size(); ++oct) {
    const std::unique_ptr<Octave>& o = octaves_[oct];
    if (!o) continue;
    for (int s = 0; s < kSubBuckets; ++s)
      if (o->c[s] != 0) out[static_cast<int>(oct) * kSubBuckets + s] = o->c[s];
  }
  return out;
}

}  // namespace swatop::obs
