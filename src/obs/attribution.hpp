// Cycle attribution: decompose an observed execution's elapsed cycles into
// non-overlapping causes -- where did the time go, in the terms the paper's
// evaluation uses (Eq. (1) DMA accounting, the Eq. (2) kernel pipeline, the
// NoC barrier of multi-CG runs).
//
// The invariant is exactness: the categories always sum to the accounted
// basis (elapsed cycles times the core groups that elapsed them). The
// decomposition is built only from counters the booking sites themselves
// increment; anything the counters cannot explain lands in `residual`, so a
// non-zero residual *is* the drift detector for counter wiring (see
// tests/test_obs).
#pragma once

#include <array>
#include <string>

#include "obs/counters.hpp"

namespace swatop::obs {

/// Attribution categories, in report order. Each elapsed cycle belongs to
/// exactly one.
enum class AttrCat : int {
  KernelIssue = 0,   ///< GEMM kernels issuing on P0/P1 (useful work)
  KernelRawStall,    ///< GEMM kernels stalled on RAW dependences
  RegComm,           ///< inter-panel register-communication switches
  OtherCompute,      ///< zero-fills, packing, transforms, MPE passes
  DmaQueueWait,      ///< blocking attributable to a busy DMA engine queue
  DmaWait,           ///< blocking on in-flight DMA transfers (dma_wait)
  Barrier,           ///< NoC synchronization between core groups
  Imbalance,         ///< core groups idle while the slowest finishes a step
  Residual,          ///< elapsed cycles no counter explains (should be ~0)
  kCount,
};

constexpr int kAttrCats = static_cast<int>(AttrCat::kCount);

const char* attr_cat_name(AttrCat c);

/// Everything the decomposition needs. Cycle quantities are *summed over
/// core groups*; `elapsed` is the wall (chip) cycle count of the span. For
/// a single-CG run, groups = 1 and group_cycles == elapsed.
struct AttributionInput {
  double elapsed = 0.0;       ///< chip-level elapsed cycles of the span
  int groups = 1;             ///< core groups that elapsed them
  double group_cycles = 0.0;  ///< sum over groups of busy (clocked) cycles
  double compute_cycles = 0.0;
  double dma_stall_cycles = 0.0;
  double dma_queue_wait_cycles = 0.0;
  double gemm_cycles = 0.0;       ///< of compute: GEMM kernel share
  double gemm_comm_cycles = 0.0;  ///< of gemm: reg-comm pattern switches
  double raw_stall_cycles = 0.0;  ///< of gemm: pipeline RAW stalls
  double barrier_cycles = 0.0;    ///< NoC sync, summed over groups
};

/// The decomposition. `basis` = elapsed * groups: every core group is
/// accountable for the whole span, so idle groups show up as Imbalance
/// instead of silently shrinking the denominator.
struct Attribution {
  std::array<double, kAttrCats> cycles{};
  double basis = 0.0;
  double elapsed = 0.0;
  int groups = 1;

  double at(AttrCat c) const { return cycles[static_cast<int>(c)]; }
  double sum() const;
  double share(AttrCat c) const { return basis > 0.0 ? at(c) / basis : 0.0; }

  /// True when the categories sum to the basis within `rel_tol` and no
  /// category is meaningfully negative -- the exactness contract.
  bool balanced(double rel_tol = 1e-9) const;
};

/// Decompose a span. All categories are clamped non-negative; the exact
/// remainder (basis minus everything attributed) is Residual.
Attribution attribute(const AttributionInput& in);

/// Convenience: attribute one observed single-core-group execution from its
/// counter registry (elapsed = total_cycles, groups = 1).
Attribution attribute(const Counters& c);

/// Assemble the attribution input from a counter registry (single CG).
AttributionInput attribution_input(const Counters& c);

/// Human-readable table: one line per category with cycles and share.
std::string attribution_report(const Attribution& a);

/// JSON object ({"elapsed": ..., "groups": ..., "categories": {...}}).
std::string attribution_json(const Attribution& a);

}  // namespace swatop::obs
