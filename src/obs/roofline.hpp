// Roofline placement: arithmetic intensity from the already-wired byte
// counters against the simulated machine's two roofs -- the CPE cluster's
// peak issue rate and the DMA engine's DRAM bandwidth -- naming, for every
// operator or layer, the resource that bounds it.
//
// The byte basis is *transaction* bytes (requested + wasted): that is what
// the DMA engine actually moves, so a padding-wasteful schedule is honestly
// charged with a lower arithmetic intensity (the Fig. 11 effect).
//
// obs/ cannot depend on sim/, so the roofs arrive as plain rates; callers
// with a sim::SimConfig pass cfg.peak_flops_per_cycle() and
// cfg.dma_bytes_per_cycle().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"

namespace swatop::obs {

/// The two roofs of one machine, in per-cycle units.
struct RooflineMachine {
  double peak_flops_per_cycle = 0.0;  ///< compute roof
  double dma_bytes_per_cycle = 0.0;   ///< memory roof (DMA bandwidth)

  /// Ridge point: the arithmetic intensity (flops / DRAM byte) above which
  /// the compute roof binds.
  double ridge() const {
    return dma_bytes_per_cycle > 0.0
               ? peak_flops_per_cycle / dma_bytes_per_cycle
               : 0.0;
  }
};

/// One placed point.
struct RooflinePoint {
  std::string name;
  std::int64_t flops = 0;
  std::int64_t dram_bytes = 0;  ///< transaction bytes (requested + wasted)
  double cycles = 0.0;          ///< core-group cycles accounted to the span

  double intensity = 0.0;  ///< flops per DRAM byte
  double achieved = 0.0;   ///< achieved flops per cycle
  double roof = 0.0;       ///< min(compute roof, intensity * memory roof)
  double utilization = 0.0;  ///< achieved / roof
  bool compute_bound = false;

  /// The binding resource by name ("compute" or "dma-bandwidth").
  const char* binding() const {
    return compute_bound ? "compute" : "dma-bandwidth";
  }
};

/// Place one span. `cycles` is the per-group cycle basis (for multi-group
/// spans pass elapsed * groups so the roofs, which are per core group,
/// stay comparable).
RooflinePoint roofline_place(std::string name, std::int64_t flops,
                             std::int64_t dram_bytes, double cycles,
                             const RooflineMachine& m);

/// Place a whole observed execution from its counter registry.
RooflinePoint roofline_place(std::string name, const Counters& c,
                             const RooflineMachine& m);

/// Text table: AI, achieved vs roof, utilization, binding resource.
std::string roofline_report(const std::vector<RooflinePoint>& pts,
                            const RooflineMachine& m);

/// JSON array of placed points (plus the machine roofs).
std::string roofline_json(const std::vector<RooflinePoint>& pts,
                          const RooflineMachine& m);

}  // namespace swatop::obs
