#include "obs/timeseries.hpp"

#include <cstdio>

namespace swatop::obs {

namespace {

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

TimeSeries::TimeSeries(double window_us, std::vector<std::string> cnames,
                       std::vector<std::string> gnames, GaugeSampler sampler)
    : window_us_(window_us),
      cnames_(std::move(cnames)),
      gnames_(std::move(gnames)),
      sampler_(std::move(sampler)),
      counters_(cnames_.size(), 0.0) {
  SWATOP_CHECK(window_us_ > 0.0) << "window width " << window_us_ << " us";
}

void TimeSeries::count_future(std::int64_t idx, std::size_t channel,
                              double delta) {
  const std::size_t d = static_cast<std::size_t>(idx - cur_ - 1);
  while (future_.size() <= d)
    future_.emplace_back(cnames_.size(), 0.0);
  future_[d][channel] += delta;
}

void TimeSeries::close_window(double end_us) {
  Window w;
  w.index = cur_;
  w.start_us = static_cast<double>(cur_) * window_us_;
  w.end_us = end_us;
  w.counters = std::move(counters_);
  w.gauges.assign(gnames_.size(), 0.0);
  if (sampler_) sampler_(end_us, w.gauges);
  // Rotate the next window's buffered future counts into place.
  if (future_.empty()) {
    counters_.assign(cnames_.size(), 0.0);
  } else {
    counters_ = std::move(future_.front());
    future_.pop_front();
  }
  ++cur_;
  windows_.push_back(std::move(w));
  if (on_close_) on_close_(windows_.back());
}

void TimeSeries::advance_slow(double t_us) {
  while (static_cast<double>(cur_ + 1) * window_us_ <= t_us)
    close_window(static_cast<double>(cur_ + 1) * window_us_);
}

void TimeSeries::finish(double end_us) {
  SWATOP_CHECK(!finished_) << "finish() twice";
  advance(end_us);
  SWATOP_CHECK(end_us >= static_cast<double>(cur_) * window_us_)
      << "finish at t=" << end_us << " us precedes the open window";
  // Any buffered window beyond the open one would hold a count dated past
  // the declared end of the run.
  SWATOP_CHECK(future_.empty())
      << "buffered counts beyond the finish time " << end_us;
  close_window(end_us);
  finished_ = true;
}

std::vector<double> TimeSeries::totals() const {
  std::vector<double> sums(cnames_.size(), 0.0);
  for (const Window& w : windows_)
    for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += w.counters[i];
  return sums;
}

std::string TimeSeries::jsonl() const {
  std::string out;
  for (const Window& w : windows_) {
    out += "{\"window\":" + std::to_string(w.index);
    out += ",\"start_us\":";
    append_num(out, w.start_us);
    out += ",\"end_us\":";
    append_num(out, w.end_us);
    for (std::size_t i = 0; i < cnames_.size(); ++i) {
      out += ",\"" + cnames_[i] + "\":";
      append_num(out, w.counters[i]);
    }
    for (std::size_t i = 0; i < gnames_.size(); ++i) {
      out += ",\"" + gnames_[i] + "\":";
      append_num(out, w.gauges[i]);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace swatop::obs
