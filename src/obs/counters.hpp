// The counter registry of the observability layer: every cycle- and
// byte-level quantity the paper's analysis needs (Eq. (1) DMA accounting,
// Figs. 8-11), per execution, split per CPE where the hardware is per-CPE.
//
// Counters are *wired into* the code paths that price the run -- the DMA
// aggregates are incremented at the very sites that book time on the
// simulated engine (sim::CoreGroup), so traced bytes equal priced bytes by
// construction, never by re-derivation.
#pragma once

#include <cstdint>
#include <vector>

namespace swatop::obs {

/// DMA engine counters (the Eq. (1) quantities plus engine occupancy).
struct DmaCounters {
  std::int64_t bytes_requested = 0;  ///< payload bytes the program asked for
  std::int64_t bytes_wasted = 0;     ///< transaction padding around blocks
  /// DRAM bytes the graph engine's fusion + SPM-residency passes removed
  /// from the run (stores/loads an unfused execution would have priced).
  std::int64_t bytes_elided = 0;
  std::int64_t transactions = 0;     ///< 128 B DRAM transactions touched
  std::int64_t transfers = 0;        ///< CG-level DMA operations issued
  double queue_wait_cycles = 0.0;    ///< issue delayed by a busy engine
  double stall_cycles = 0.0;         ///< cluster blocked in dma_wait
  double busy_cycles = 0.0;          ///< engine occupied (latency + transfer)
};

/// Dual-pipeline issue estimate for the GEMM kernels executed by a run,
/// per CPE (execution is SPMD: all 64 CPEs run the identical stream).
/// Derived from the same pipeline-simulator fits that price the kernels.
struct PipeCounters {
  double issued_p0 = 0.0;        ///< instructions issued to P0 (arithmetic)
  double issued_p1 = 0.0;        ///< instructions issued to P1 (memory)
  double raw_stall_cycles = 0.0; ///< cycles with nothing issued (RAW waits)
};

/// Register-communication traffic over the row/column buses.
struct RegCommCounters {
  std::int64_t row_messages = 0;
  std::int64_t col_messages = 0;
  std::int64_t row_bytes = 0;
  std::int64_t col_bytes = 0;
};

/// Simulator sanitizer trips (SimConfig::sanitize). Every trip also throws
/// swatop::SanitizerError; the counters record *which* check fired so a
/// profile of a failed run says what went wrong without parsing the error.
struct SanitizerCounters {
  std::int64_t spm_poison_trips = 0;  ///< read of a never-defined SPM float
  std::int64_t dma_bounds_trips = 0;  ///< DMA outside the owning tensor
  std::int64_t dma_overlap_trips = 0; ///< touched an in-flight DMA range
  std::int64_t reply_slot_trips = 0;  ///< slot reuse / wait-on-empty / leak

  std::int64_t total() const {
    return spm_poison_trips + dma_bounds_trips + dma_overlap_trips +
           reply_slot_trips;
  }
};

/// One CPE's share of the run.
struct CpeCounters {
  std::int64_t dma_bytes = 0;      ///< payload bytes moved to/from this SPM
  std::int64_t dma_transfers = 0;  ///< transfers this CPE participated in
};

/// Serving front-end counters (src/serve/): request outcomes and dispatch
/// traffic of one Server::run. Times are simulated microseconds.
struct ServeCounters {
  std::int64_t requests_offered = 0;
  std::int64_t requests_completed = 0;
  std::int64_t requests_rejected = 0;  ///< admission refused on arrival
  std::int64_t requests_shed = 0;      ///< dropped after queueing
  std::int64_t images_completed = 0;
  std::int64_t batches_dispatched = 0;
  std::int64_t slo_violations = 0;  ///< completed late (admission off)
  double busy_us = 0.0;             ///< fleet chip-time executed
  double wasted_us = 0.0;           ///< chip-time on parts of shed requests
};

/// The full counter set of one observed execution.
struct Counters {
  double total_cycles = 0.0;
  double compute_cycles = 0.0;
  /// Of compute_cycles: GEMM kernel time, and within it the inter-panel
  /// register-communication pattern-switch latency (Eq. (2)'s comm term).
  /// Mirrored from the CgStats accumulators the booking sites increment.
  double gemm_cycles = 0.0;
  double gemm_comm_cycles = 0.0;
  std::int64_t flops = 0;
  std::int64_t gemm_calls = 0;
  DmaCounters dma;
  PipeCounters pipe;
  RegCommCounters reg_comm;
  SanitizerCounters sanitizer;
  std::int64_t spm_high_water_floats = 0;
  std::int64_t spm_capacity_floats = 0;
  std::int64_t spm_reads = 0;   ///< functional-mode SPM element reads
  std::int64_t spm_writes = 0;  ///< functional-mode SPM element writes
  /// Graph-engine memory plan (0 unless a whole network ran): the packed
  /// activation arena's peak versus binding every tensor separately.
  std::int64_t arena_planned_bytes = 0;
  std::int64_t arena_naive_bytes = 0;
  ServeCounters serve;  ///< serving front-end traffic (src/serve/)
  std::vector<CpeCounters> per_cpe;  ///< sized num_cpes when observed
};

}  // namespace swatop::obs
