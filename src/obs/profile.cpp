#include "obs/profile.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace swatop::obs {

Profile Profile::snapshot(const Recorder& rec) {
  Profile p;
  p.enabled = true;
  p.counters = rec.counters();
  p.tune = rec.tune();
  p.tune_samples = rec.tune_samples();
  p.events = rec.buffer().snapshot();
  p.events_dropped = rec.buffer().dropped();
  return p;
}

void Profile::write_chrome_trace(std::ostream& os) const {
  obs::write_chrome_trace(os, events, events_dropped);
}

std::string Profile::chrome_trace() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

namespace {

double pct(double part, double whole) {
  return whole > 0.0 ? part / whole * 100.0 : 0.0;
}

std::string mb(std::int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

void line(std::ostringstream& os, const char* label, const std::string& v) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-22s%s\n", label, v.c_str());
  os << buf;
}

std::string fmt(const char* f, ...)
    __attribute__((format(printf, 1, 2)));

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

}  // namespace

std::string Profile::report() const {
  std::ostringstream os;
  if (!enabled) {
    os << "== swATOP profile ==\n(observability disabled)\n";
    return os.str();
  }
  const Counters& c = counters;
  const double total = c.total_cycles;
  const double other =
      std::max(0.0, total - c.compute_cycles - c.dma.stall_cycles);

  os << "== swATOP profile ==\n";
  os << fmt("DMA %.0f%% of cycles (stall), %.0f%% wasted transaction "
            "bytes\n",
            pct(c.dma.stall_cycles, total),
            pct(static_cast<double>(c.dma.bytes_wasted),
                static_cast<double>(c.dma.bytes_requested +
                                    c.dma.bytes_wasted)));
  os << "cycles\n";
  line(os, "total", fmt("%.0f", total));
  line(os, "compute",
       fmt("%.0f  (%.1f%%)", c.compute_cycles, pct(c.compute_cycles, total)));
  line(os, "dma stall",
       fmt("%.0f  (%.1f%%)", c.dma.stall_cycles,
           pct(c.dma.stall_cycles, total)));
  line(os, "other", fmt("%.0f  (%.1f%%)", other, pct(other, total)));
  os << "dma engine\n";
  line(os, "busy",
       fmt("%.0f cycles  (%.1f%% of run)", c.dma.busy_cycles,
           pct(c.dma.busy_cycles, total)));
  line(os, "queue wait", fmt("%.0f cycles", c.dma.queue_wait_cycles));
  line(os, "transfers",
       fmt("%" PRId64 "  (%" PRId64 " transactions)", c.dma.transfers,
           c.dma.transactions));
  line(os, "bytes requested", mb(c.dma.bytes_requested));
  line(os, "bytes wasted",
       fmt("%s  (%.1f%% of transaction bytes)",
           mb(c.dma.bytes_wasted).c_str(),
           pct(static_cast<double>(c.dma.bytes_wasted),
               static_cast<double>(c.dma.bytes_requested +
                                   c.dma.bytes_wasted))));
  os << "reg-comm\n";
  line(os, "row",
       fmt("%" PRId64 " msgs, %s", c.reg_comm.row_messages,
           mb(c.reg_comm.row_bytes).c_str()));
  line(os, "col",
       fmt("%" PRId64 " msgs, %s", c.reg_comm.col_messages,
           mb(c.reg_comm.col_bytes).c_str()));
  os << "spm (per CPE)\n";
  line(os, "high water",
       fmt("%.1f / %.1f KB  (%.1f%%)",
           static_cast<double>(c.spm_high_water_floats) * 4.0 / 1024.0,
           static_cast<double>(c.spm_capacity_floats) * 4.0 / 1024.0,
           pct(static_cast<double>(c.spm_high_water_floats),
               static_cast<double>(c.spm_capacity_floats))));
  if (c.spm_reads + c.spm_writes > 0)
    line(os, "element accesses",
         fmt("%" PRId64 " reads, %" PRId64 " writes", c.spm_reads,
             c.spm_writes));
  if (c.arena_naive_bytes > 0) {
    os << "memory plan (activation arena)\n";
    line(os, "planned peak",
         fmt("%s  (%.1f%% of no-reuse %s)", mb(c.arena_planned_bytes).c_str(),
             pct(static_cast<double>(c.arena_planned_bytes),
                 static_cast<double>(c.arena_naive_bytes)),
             mb(c.arena_naive_bytes).c_str()));
  }
  if (c.serve.requests_offered > 0) {
    os << "serving (simulated time)\n";
    line(os, "requests",
         fmt("%" PRId64 " offered: %" PRId64 " completed, %" PRId64
             " rejected, %" PRId64 " shed",
             c.serve.requests_offered, c.serve.requests_completed,
             c.serve.requests_rejected, c.serve.requests_shed));
    line(os, "dispatch",
         fmt("%" PRId64 " batches, %" PRId64 " images completed",
             c.serve.batches_dispatched, c.serve.images_completed));
    line(os, "fleet time",
         fmt("%.1f ms busy, %.1f ms wasted on shed splits",
             c.serve.busy_us / 1e3, c.serve.wasted_us / 1e3));
    if (c.serve.slo_violations > 0)
      line(os, "slo violations", fmt("%" PRId64, c.serve.slo_violations));
  }
  if (c.sanitizer.total() > 0) {
    os << "sanitizer trips\n";
    if (c.sanitizer.spm_poison_trips > 0)
      line(os, "spm poison", fmt("%" PRId64, c.sanitizer.spm_poison_trips));
    if (c.sanitizer.dma_bounds_trips > 0)
      line(os, "dma bounds", fmt("%" PRId64, c.sanitizer.dma_bounds_trips));
    if (c.sanitizer.dma_overlap_trips > 0)
      line(os, "dma overlap", fmt("%" PRId64, c.sanitizer.dma_overlap_trips));
    if (c.sanitizer.reply_slot_trips > 0)
      line(os, "reply slots", fmt("%" PRId64, c.sanitizer.reply_slot_trips));
  }
  os << "pipeline (per CPE, est. from kernel-cost fits)\n";
  line(os, "P0 issued", fmt("%.0f", c.pipe.issued_p0));
  line(os, "P1 issued", fmt("%.0f", c.pipe.issued_p1));
  line(os, "RAW stalls", fmt("%.0f cycles", c.pipe.raw_stall_cycles));
  line(os, "gemm calls",
       fmt("%" PRId64 "  (%.2f GFLOP)", c.gemm_calls,
           static_cast<double>(c.flops) / 1e9));

  if (!c.per_cpe.empty()) {
    std::int64_t lo = c.per_cpe.front().dma_bytes;
    std::int64_t hi = lo, sum = 0;
    for (const CpeCounters& p : c.per_cpe) {
      lo = std::min(lo, p.dma_bytes);
      hi = std::max(hi, p.dma_bytes);
      sum += p.dma_bytes;
    }
    os << "per-CPE dma payload\n";
    line(os, "min / mean / max",
         fmt("%s / %s / %s", mb(lo).c_str(),
             mb(sum / static_cast<std::int64_t>(c.per_cpe.size())).c_str(),
             mb(hi).c_str()));
  }

  if (tune.candidates_ranked > 0 || tune.candidates_measured > 0 ||
      tune.cache_hits + tune.cache_misses > 0) {
    os << "tuning\n";
    line(os, "space",
         fmt("%" PRId64 " strategies, %" PRId64 " ranked, %" PRId64
             " measured",
             tune.space_size, tune.candidates_ranked,
             tune.candidates_measured));
    if (tune.cache_hits + tune.cache_misses > 0)
      line(os, "schedule cache",
           fmt("%" PRId64 " hits, %" PRId64 " misses, %" PRId64 " stores",
               tune.cache_hits, tune.cache_misses, tune.cache_stores));
    if (tune.candidates_pruned > 0)
      line(os, "rank pruner", fmt("%" PRId64 " candidates cut before "
                                  "measurement",
                                  tune.candidates_pruned));
    if (tune.replay_hits + tune.replay_misses + tune.replay_fallbacks > 0) {
      std::string replay =
          fmt("%" PRId64 " hits, %" PRId64 " misses, %" PRId64 " fallbacks",
              tune.replay_hits, tune.replay_misses, tune.replay_fallbacks);
      if (tune.replay_oracle_checks > 0)
        replay += fmt(", %" PRId64 " oracle checks",
                      tune.replay_oracle_checks);
      line(os, "trace replay", replay);
    }
    line(os, "wall clock", fmt("%.3f s", tune.seconds));
    if (!tune_samples.empty()) {
      os << "  model vs measured:\n";
      for (const TuneSample& s : tune_samples) {
        if (s.measured_cycles < 0.0) {
          os << fmt("    %-40s predicted %12.0f\n", s.strategy.c_str(),
                    s.predicted_cycles);
        } else if (s.predicted_cycles < 0.0) {
          // Black-box samples: measured only, no model estimate.
          os << fmt("    %-40s measured  %12.0f\n", s.strategy.c_str(),
                    s.measured_cycles);
        } else {
          os << fmt("    %-40s predicted %12.0f  measured %12.0f  "
                    "(err %+.1f%%)\n",
                    s.strategy.c_str(), s.predicted_cycles,
                    s.measured_cycles,
                    pct(s.predicted_cycles - s.measured_cycles,
                        s.measured_cycles));
        }
      }
    }
  }

  os << fmt("trace: %zu events", events.size());
  if (events_dropped > 0)
    os << fmt(" (%" PRId64 " dropped by the ring buffer)", events_dropped);
  os << "\n";
  return os.str();
}

}  // namespace swatop::obs
