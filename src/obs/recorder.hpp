// The Recorder is the attachment point of the observability layer: the
// simulator, runtime and tuner all hold a nullable Recorder pointer and, at
// the exact code sites where they book time or traffic, mirror the numbers
// here and (optionally) emit trace events. With no recorder attached every
// instrumentation site is a single pointer test -- the disabled-by-default
// near-zero-overhead contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace swatop::obs {

struct Options {
  bool enabled = false;  ///< master switch: no Recorder is created when off
  bool trace = true;     ///< collect trace events (counters are always on)
  std::size_t trace_capacity = 1 << 16;  ///< ring-buffer entries
};

/// One tuner candidate's model-predicted vs interpreter-measured cycles
/// (measured < 0 means the candidate was ranked but not measured;
/// predicted < 0 means black-box measured without a model estimate).
struct TuneSample {
  std::string strategy;
  double predicted_cycles = 0.0;
  double measured_cycles = -1.0;
};

/// Tuning-phase counters.
struct TuneCounters {
  std::int64_t space_size = 0;
  std::int64_t candidates_ranked = 0;
  std::int64_t candidates_measured = 0;
  double seconds = 0.0;
  /// Schedule-cache traffic for this Optimizer (a hit skips enumerating
  /// and ranking the space entirely; stores may trail misses when the
  /// cache is disabled mid-flight or the entry was unusable).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_stores = 0;
  /// Candidates the journal-trained ranking pruner cut before measurement.
  std::int64_t candidates_pruned = 0;
  /// Trace-replay fast path (tune/replay.hpp): measurements served from a
  /// recorded event schedule / recorded fresh / recorded but not cacheable,
  /// plus the differential-oracle checks run (mismatches abort).
  std::int64_t replay_hits = 0;
  std::int64_t replay_misses = 0;
  std::int64_t replay_fallbacks = 0;
  std::int64_t replay_oracle_checks = 0;
};

class Recorder {
 public:
  explicit Recorder(const Options& opts);

  const Options& options() const { return opts_; }
  bool tracing() const { return opts_.trace; }

  /// Mutable counter registry; instrumentation sites increment in place.
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  /// Per-CPE slot, growing the registry to `cpe + 1` entries on demand.
  CpeCounters& cpe(int cpe);

  TuneCounters& tune() { return tune_; }
  const TuneCounters& tune() const { return tune_; }

  void record_tune_sample(TuneSample s) { samples_.push_back(std::move(s)); }
  const std::vector<TuneSample>& tune_samples() const { return samples_; }

  /// Record a trace event; no-op unless tracing is on.
  void trace_event(TraceEvent ev) {
    if (opts_.trace) buffer_.record(std::move(ev));
  }

  /// Microseconds of wall clock since this recorder was created (the time
  /// base of pid-1 tuner events).
  double wall_us() const;

  const TraceBuffer& buffer() const { return buffer_; }

  /// Reset the execution counters for a fresh run (called when the core
  /// group's own statistics reset, so the mirrored values stay equal).
  /// Trace events and tuning history accumulate across runs; attach a
  /// fresh Recorder for a fully isolated observation.
  void reset_execution();

 private:
  Options opts_;
  Counters counters_;
  TuneCounters tune_;
  std::vector<TuneSample> samples_;
  TraceBuffer buffer_;
  double t0_us_ = 0.0;
};

}  // namespace swatop::obs
