// Structured event tracing for the observability layer.
//
// Events are scoped (begin cycle + duration) or instant, carry a category
// and a track id, and land in a fixed-capacity ring buffer so tracing a
// long run costs bounded memory: when the buffer is full the oldest events
// are overwritten and the drop is reported. The export format is the Chrome
// trace-event JSON ("chrome://tracing" / Perfetto): simulated-time tracks
// use ts = CPE cycles (displayed as if microseconds), wall-clock tracks
// (the tuner) use real microseconds under a separate pid.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace swatop::obs {

/// Event categories, used for Chrome's "cat" field and report grouping.
enum class Category : std::uint8_t {
  Run,      ///< whole-program execution spans
  Dma,      ///< DMA transfers and waits
  Compute,  ///< GEMM / zero-fill primitives
  Spm,      ///< scratch-pad allocations
  Tune,     ///< tuner phases (wall-clock time base)
  Serve,    ///< serving fleet events (simulated-microsecond time base)
};

const char* category_name(Category c);

/// Well-known track ids within the simulated-time process (pid 0).
struct Track {
  static constexpr int kCluster = 0;    ///< SPMD cluster clock
  static constexpr int kDmaEngine = 1;  ///< the shared DMA engine
  static constexpr int kTuner = 0;      ///< pid 1: tuner wall clock
  /// Whole-network timeline, one track per core group (kNetCg0 + g): the
  /// graph engine's per-layer spans with ts = accumulated network cycles.
  static constexpr int kNetCg0 = 8;
  /// Serving-fleet process (pid 2, ts = simulated microseconds): one track
  /// per chip (kServeChip0 + chip) carrying sub-batch spans, plus an
  /// admission track for reject/shed instants.
  static constexpr int kServeChip0 = 0;
  static constexpr int kServeAdmission = 64;
  /// Request-lifecycle tracks (pid 2): sampled requests spread their span
  /// chains over kServeRequestTracks tracks (kServeRequest0 + id % N) so
  /// concurrent requests rarely overlap on one line.
  static constexpr int kServeRequest0 = 1 << 20;
  static constexpr int kServeRequestTracks = 4;
};

struct TraceEvent {
  std::string name;
  Category cat = Category::Run;
  int pid = 0;  ///< 0 = sim time (cycles), 1 = wall clock (us), 2 = serving
                ///< fleet (simulated us)
  int tid = 0;       ///< track within the process
  double ts = 0.0;   ///< begin, cycles (pid 0) or microseconds (pid 1/2)
  double dur = 0.0;  ///< duration; 0 with instant=true means instant event
  bool instant = false;
  /// Flow linkage (Chrome flow events): 0 = not a flow event; 's'/'t'/'f'
  /// = flow start / step / end at (pid, tid, ts), causally chaining the
  /// events that share one flow_id. A well-formed chain is one 's',
  /// zero or more 't's, one 'f' (ts non-decreasing along the chain).
  char flow = 0;
  std::int64_t flow_id = 0;
  /// Up to three numeric arguments (bytes, transactions, dims, ...); the
  /// names give the Chrome "args" keys. Unused slots have a null name.
  const char* arg_name[3] = {nullptr, nullptr, nullptr};
  std::int64_t arg[3] = {0, 0, 0};
};

/// Fixed-capacity ring buffer of trace events.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void record(TraceEvent ev);

  /// Events in record order (oldest surviving first).
  std::vector<TraceEvent> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::int64_t dropped() const { return dropped_; }

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;     ///< insertion cursor once the ring wrapped
  bool wrapped_ = false;
  std::int64_t dropped_ = 0;
};

/// Serialize events as a Chrome trace-event JSON document (the
/// {"traceEvents": [...]} object form), including process/thread metadata
/// naming the cycle-time and wall-clock tracks. `dropped` is the ring
/// buffer's overwrite count (TraceBuffer::dropped()); when non-zero it is
/// recorded as a metadata event so a truncated trace is diagnosable from
/// the artifact alone.
void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& evs,
                        std::int64_t dropped = 0);

}  // namespace swatop::obs
