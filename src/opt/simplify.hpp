// IR simplification: eliminate unit-extent loops (substitute the variable
// with 0 and splice the body into the parent). Running this between DMA
// inference and double buffering matters: a DMA get sitting in a
// one-iteration loop would otherwise be "prefetched" across a loop that
// never advances, hiding nothing.
#pragma once

#include "ir/node.hpp"

namespace swatop::opt {

/// Remove every For with a constant extent of 1. Returns the new root.
void eliminate_unit_loops(ir::StmtPtr& root);

}  // namespace swatop::opt
