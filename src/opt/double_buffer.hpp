// Automatic memory-latency hiding (Sec. 4.5.2): software prefetching via
// double buffering. The pass finds the innermost loop that issues DMA gets,
// allocates a second half for each fetched SPM buffer, hoists iteration-0
// gets in front of the loop, and rewrites the loop so iteration i issues the
// gets of iteration i+1 (guarded by i+1 < extent, the paper's generated
// if-then-else address inference) before waiting on the data of iteration i.
// Addresses are inferred by substituting var -> var+1 into the DMA address
// expressions, which are functions of the enclosing loop variables.
#pragma once

#include "ir/node.hpp"

namespace swatop::opt {

/// Apply double buffering in place. Returns true if a loop was transformed
/// (false when the IR has no DMA get inside any loop).
bool apply_double_buffer(ir::StmtPtr& root);

}  // namespace swatop::opt
