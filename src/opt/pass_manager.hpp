// The IR optimizer pipeline (Sec. 4.5): DMA inference, memory-latency
// hiding, SPM coalescing and validity checking, applied to each schedule
// strategy the scheduler lowers.
#pragma once

#include "ir/node.hpp"
#include "sim/config.hpp"

namespace swatop::opt {

struct OptOptions {
  bool prefetch = true;  ///< run the double-buffering pass
  std::int64_t spm_reserve_floats = 512;
};

/// Run the optimizer pipeline in place. Returns false when the candidate is
/// invalid (primitive constraints violated or SPM over budget); the IR is
/// then unspecified and the scheduler must drop the candidate.
bool optimize(ir::StmtPtr& root, const sim::SimConfig& cfg,
              const OptOptions& opts = {});

}  // namespace swatop::opt
