#include "opt/double_buffer.hpp"

#include <vector>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "ir/analysis.hpp"
#include "ir/mutator.hpp"

namespace swatop::opt {

namespace ir = swatop::ir;

namespace {

using ir::kPrefetchReplyBase;

/// A DMA get directly inside the target loop body, with its trailing wait
/// and optional preceding zero-fill guard.
struct GetGroup {
  std::size_t zero_idx = SIZE_MAX;  ///< If guard index, SIZE_MAX if none
  std::size_t get_idx = 0;
  std::size_t wait_idx = 0;
};

/// True if `s` is an If whose then-branch zero-fills `buf`.
bool is_zero_guard_for(const ir::StmtPtr& s, const std::string& buf) {
  if (s == nullptr || s->kind != ir::StmtKind::If || s->then_s == nullptr)
    return false;
  const ir::StmtPtr& t = s->then_s;
  if (t->kind == ir::StmtKind::SpmZero) return t->buf_name == buf;
  if (t->kind == ir::StmtKind::Seq && t->body.size() == 1 &&
      t->body[0]->kind == ir::StmtKind::SpmZero)
    return t->body[0]->buf_name == buf;
  return false;
}

/// A get already rewritten by a previous double-buffering round (its reply
/// slot was remapped into the prefetch range) must not be transformed again.
bool already_prefetched(const ir::StmtPtr& get) {
  return !ir::is_const(get->dma.reply) ||
         ir::as_cst(get->dma.reply) >= kPrefetchReplyBase;
}

std::vector<GetGroup> collect_gets(const ir::StmtPtr& body) {
  std::vector<GetGroup> out;
  for (std::size_t i = 0; i < body->body.size(); ++i) {
    if (body->body[i]->kind != ir::StmtKind::DmaGet) continue;
    if (already_prefetched(body->body[i])) continue;
    GetGroup g;
    g.get_idx = i;
    SWATOP_CHECK(i + 1 < body->body.size() &&
                 body->body[i + 1]->kind == ir::StmtKind::DmaWait)
        << "DMA get without trailing wait";
    g.wait_idx = i + 1;
    if (i > 0 &&
        is_zero_guard_for(body->body[i - 1], body->body[i]->dma.spm_buf))
      g.zero_idx = i - 1;
    out.push_back(g);
  }
  return out;
}

/// Substitute `v -> repl` through all expressions of a statement subtree.
void subst_stmt(const ir::StmtPtr& s, const std::string& v,
                const ir::Expr& repl) {
  ir::visit(s, [&](const ir::StmtPtr& n) {
    auto sub = [&](ir::Expr& e) {
      if (e != nullptr) e = ir::substitute(e, v, repl);
    };
    sub(n->extent);
    sub(n->cond);
    sub(n->zero_off);
    sub(n->zero_floats);
    sub(n->dma.view.base);
    sub(n->dma.view.rows);
    sub(n->dma.view.cols);
    sub(n->dma.rows_p);
    sub(n->dma.cols_p);
    sub(n->dma.spm_off);
    sub(n->dma.reply);
    sub(n->dma.epi.channel0);
    sub(n->dma.epi.res.base);
    sub(n->dma.epi.res.rows);
    sub(n->dma.epi.res.cols);
    sub(n->wait_reply);
    sub(n->gemm.M);
    sub(n->gemm.N);
    sub(n->gemm.K);
    sub(n->gemm.a_off);
    sub(n->gemm.b_off);
    sub(n->gemm.c_off);
  });
}

/// Find the deepest For whose direct body contains a DmaGet; returns the
/// parent Seq and child index, or false.
bool find_target(const ir::StmtPtr& s, ir::Stmt** parent_seq,
                 std::size_t* idx) {
  bool found = false;
  std::function<void(const ir::StmtPtr&)> rec = [&](const ir::StmtPtr& n) {
    if (n == nullptr) return;
    if (n->kind == ir::StmtKind::Seq) {
      for (std::size_t i = 0; i < n->body.size(); ++i) {
        const ir::StmtPtr& c = n->body[i];
        if (c->kind == ir::StmtKind::For) {
          // Depth-first: deeper matches overwrite shallower ones.
          const ir::StmtPtr& b = c->for_body;
          bool direct = false;
          if (b->kind == ir::StmtKind::Seq) {
            for (const ir::StmtPtr& bc : b->body)
              direct = direct || (bc->kind == ir::StmtKind::DmaGet &&
                                  !already_prefetched(bc));
          }
          if (direct) {
            *parent_seq = n.get();
            *idx = i;
            found = true;
          }
          rec(b);
        } else {
          rec(c);
        }
      }
    } else {
      for (const ir::StmtPtr& c : n->body) rec(c);
      rec(n->for_body);
      rec(n->then_s);
      rec(n->else_s);
    }
  };
  rec(s);
  return found;
}

ir::Stmt* find_alloc(const ir::StmtPtr& root, const std::string& buf) {
  ir::Stmt* out = nullptr;
  ir::visit(root, [&](const ir::StmtPtr& n) {
    if (n->kind == ir::StmtKind::SpmAlloc && n->buf_name == buf)
      out = n.get();
  });
  return out;
}

}  // namespace

namespace {

bool apply_one(ir::StmtPtr& root) {
  ir::Stmt* parent = nullptr;
  std::size_t loop_idx = 0;
  if (!find_target(root, &parent, &loop_idx)) return false;

  const ir::StmtPtr loop = parent->body[loop_idx];
  const std::string v = loop->var;
  const ir::Expr extent = loop->extent;
  ir::StmtPtr body = loop->for_body;
  SWATOP_CHECK(body->kind == ir::StmtKind::Seq);

  const std::vector<GetGroup> groups = collect_gets(body);
  SWATOP_CHECK(!groups.empty());

  const ir::Expr parity_cur = ir::mod(ir::var(v), ir::cst(2));
  const ir::Expr vnext = ir::add(ir::var(v), ir::cst(1));
  const ir::Expr parity_next = ir::mod(vnext, ir::cst(2));

  std::vector<ir::StmtPtr> prologue;      // before the loop
  std::vector<ir::StmtPtr> new_head;      // start of the new body
  std::vector<bool> remove(body->body.size(), false);
  std::vector<std::string> db_bufs;

  for (const GetGroup& g : groups) {
    const ir::StmtPtr get = body->body[g.get_idx];
    const std::string buf = get->dma.spm_buf;
    ir::Stmt* alloc = find_alloc(root, buf);
    SWATOP_CHECK(alloc != nullptr) << "no SPM alloc for '" << buf << "'";
    alloc->double_buffered = true;
    const std::int64_t half = align_up(alloc->buf_floats, 8);
    const std::int64_t slot = ir::as_cst(get->dma.reply);
    SWATOP_CHECK(kPrefetchReplyBase + 2 * slot + 1 < ir::kMaxReplySlots)
        << "prefetch reply slot for stream " << slot
        << " exceeds the reply table (" << ir::kMaxReplySlots << " slots)";
    const ir::Expr reply_cur =
        ir::add(ir::cst(kPrefetchReplyBase + 2 * slot), parity_cur);
    const ir::Expr reply_next =
        ir::add(ir::cst(kPrefetchReplyBase + 2 * slot), parity_next);
    db_bufs.push_back(buf);

    // Prologue: the iteration-0 transfer into half 0.
    {
      ir::StmtPtr pg = ir::deep_copy(get);
      pg->dma.spm_off = ir::cst(0);
      pg->dma.reply = ir::cst(kPrefetchReplyBase + 2 * slot);
      subst_stmt(pg, v, ir::cst(0));
      if (g.zero_idx != SIZE_MAX) {
        ir::StmtPtr z = ir::deep_copy(body->body[g.zero_idx]);
        subst_stmt(z, v, ir::cst(0));
        prologue.push_back(std::move(z));
      }
      prologue.push_back(std::move(pg));
    }

    // In-loop: prefetch of iteration v+1 into the other half. Substitute
    // the loop variable through the copied addresses *before* installing
    // the parity expressions (which reference the un-substituted v).
    {
      ir::StmtPtr pf = ir::deep_copy(get);
      subst_stmt(pf, v, vnext);
      pf->dma.spm_off = ir::mul(parity_next, ir::cst(half));
      pf->dma.reply = reply_next;
      std::vector<ir::StmtPtr> guarded;
      if (g.zero_idx != SIZE_MAX) {
        ir::StmtPtr z = ir::deep_copy(body->body[g.zero_idx]);
        subst_stmt(z, v, vnext);
        // Zero the half being fetched into.
        ir::StmtPtr zz = z->then_s->kind == ir::StmtKind::Seq
                             ? z->then_s->body[0]
                             : z->then_s;
        zz->zero_off = ir::mul(parity_next, ir::cst(half));
        guarded.push_back(std::move(z));
      }
      guarded.push_back(std::move(pf));
      new_head.push_back(
          ir::make_if(ir::lt(vnext, extent), ir::make_seq(std::move(guarded)),
                      ir::make_seq({})));
    }

    // The wait for this iteration's data replaces the original wait.
    new_head.push_back(ir::make_dma_wait(reply_cur));

    if (g.zero_idx != SIZE_MAX) remove[g.zero_idx] = true;
    remove[g.get_idx] = true;
    remove[g.wait_idx] = true;
  }

  // Consumers of double-buffered data select the current half.
  ir::visit(body, [&](const ir::StmtPtr& n) {
    if (n->kind != ir::StmtKind::Gemm) return;
    auto fix = [&](const std::string& buf, ir::Expr& off) {
      for (const std::string& b : db_bufs) {
        if (b == buf) {
          ir::Stmt* alloc = find_alloc(root, buf);
          off = ir::mul(parity_cur, ir::cst(align_up(alloc->buf_floats, 8)));
        }
      }
    };
    fix(n->gemm.a_buf, n->gemm.a_off);
    fix(n->gemm.b_buf, n->gemm.b_off);
    fix(n->gemm.c_buf, n->gemm.c_off);
  });

  // Rebuild the body: prefetches + waits first, then the untouched rest.
  std::vector<ir::StmtPtr> rebuilt = std::move(new_head);
  for (std::size_t i = 0; i < body->body.size(); ++i)
    if (!remove[i]) rebuilt.push_back(body->body[i]);
  body->body = std::move(rebuilt);
  loop->prefetched = true;

  // Insert the prologue right before the loop.
  parent->body.insert(parent->body.begin() +
                          static_cast<std::ptrdiff_t>(loop_idx),
                      prologue.begin(), prologue.end());
  return true;
}

}  // namespace

bool apply_double_buffer(ir::StmtPtr& root) {
  // Transform every loop that directly issues DMA gets, innermost first:
  // gets hoisted to outer levels get their own double buffers, so transfer
  // latency is hidden at every level of the nest.
  bool any = false;
  while (apply_one(root)) any = true;
  return any;
}

}  // namespace swatop::opt
