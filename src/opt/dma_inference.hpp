// DMA inference (Sec. 4.5.1): the DSL never mentions DMA; this pass finds
// the GEMM node's memory views, decides each operand's SPM tile orientation
// from the kernel variant, sizes and allocates the SPM buffers, and injects
// DmaGet/DmaPut/DmaWait (plus boundary zero-fill guards) as far from the
// gemm_op as legality allows -- i.e. hoisted to the outermost loop level
// whose variables the operand's address does not use.
#pragma once

#include "ir/node.hpp"
#include "sim/config.hpp"

namespace swatop::opt {

/// Run DMA inference in place. Returns false (leaving the IR unusable) when
/// the gemm's padded tile dims violate the primitive's divisibility
/// constraints -- the scheduler drops such candidates.
bool infer_dma(ir::StmtPtr& root, const sim::SimConfig& cfg);

}  // namespace swatop::opt
