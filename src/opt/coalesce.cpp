#include "opt/coalesce.hpp"

#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "ir/analysis.hpp"
#include "ir/mutator.hpp"

namespace swatop::opt {

namespace ir = swatop::ir;

std::int64_t coalesce_spm(ir::StmtPtr& root) {
  SWATOP_CHECK(root != nullptr && root->kind == ir::StmtKind::Seq)
      << "coalesce_spm expects a Seq root";
  std::vector<ir::StmtPtr> allocs;
  std::unordered_set<std::string> names;
  root = ir::transform(root, [&](ir::StmtPtr s) -> ir::StmtPtr {
    if (s->kind == ir::StmtKind::SpmAlloc) {
      SWATOP_CHECK(names.insert(s->buf_name).second)
          << "duplicate SPM buffer '" << s->buf_name << "'";
      allocs.push_back(s);
      return nullptr;  // removed; re-inserted at the top below
    }
    return s;
  });
  SWATOP_CHECK(root != nullptr && root->kind == ir::StmtKind::Seq);
  root->body.insert(root->body.begin(), allocs.begin(), allocs.end());
  return ir::spm_footprint(root);
}

bool fits_spm(const ir::StmtPtr& root, const sim::SimConfig& cfg,
              std::int64_t reserve_floats) {
  return ir::spm_footprint(root) <= cfg.spm_floats() - reserve_floats;
}

}  // namespace swatop::opt
