// Boundary processing support (Sec. 4.5.3).
//
// When a split factor does not divide a loop extent, the last tile is
// ragged. swATOP supports two strategies:
//  * parameter switching -- the gemm primitive is called with min()-sized
//    dims at the boundary (legal only when every remainder still satisfies
//    the primitive's divisibility constraints);
//  * lightweight zero padding -- the primitive always runs on full padded
//    tiles; DMA moves only the valid region and the SPM tile is zero-filled
//    at boundary iterations (the guards are injected by DMA inference).
// This header provides the tiled-dimension algebra both the lowering helpers
// and the benches use.
#pragma once

#include <cstdint>
#include <string>

#include "ir/expr.hpp"

namespace swatop::opt {

/// A loop dimension of `extent` split by `tile`: `count` iterations of the
/// loop variable `var`, the last one possibly ragged.
struct TiledDim {
  std::string var;
  std::int64_t extent = 0;
  std::int64_t tile = 0;
  std::int64_t count = 0;
  bool ragged = false;

  /// Element base of the current tile: var * tile.
  ir::Expr base() const;

  /// Valid elements of the current tile: min(tile, extent - base), folded
  /// to the constant tile when the split divides evenly.
  ir::Expr valid() const;

  /// Size of the ragged last tile (0 when the split divides evenly).
  std::int64_t remainder() const { return extent % tile; }
};

TiledDim make_tiled(std::string var, std::int64_t extent, std::int64_t tile);

/// True if parameter switching is legal for this dim: the ragged remainder
/// itself satisfies "divisible by `mesh`" and, when this dim is vectorized,
/// "remainder/mesh divisible by `vec`" (pass vec = 1 otherwise).
bool switch_legal(const TiledDim& d, std::int64_t mesh, std::int64_t vec);

}  // namespace swatop::opt
