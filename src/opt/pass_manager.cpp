#include "opt/pass_manager.hpp"

#include "opt/coalesce.hpp"
#include "opt/dma_inference.hpp"
#include "opt/double_buffer.hpp"
#include "opt/simplify.hpp"

namespace swatop::opt {

bool optimize(ir::StmtPtr& root, const sim::SimConfig& cfg,
              const OptOptions& opts) {
  if (!infer_dma(root, cfg)) return false;
  eliminate_unit_loops(root);
  if (opts.prefetch) apply_double_buffer(root);
  coalesce_spm(root);
  return fits_spm(root, cfg, opts.spm_reserve_floats);
}

}  // namespace swatop::opt
