#include "opt/boundary.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace swatop::opt {

namespace ir = swatop::ir;

ir::Expr TiledDim::base() const { return ir::mul(ir::var(var), ir::cst(tile)); }

ir::Expr TiledDim::valid() const {
  if (!ragged) return ir::cst(tile);
  return ir::min2(ir::cst(tile), ir::sub(ir::cst(extent), base()));
}

TiledDim make_tiled(std::string var, std::int64_t extent, std::int64_t tile) {
  SWATOP_CHECK(extent > 0 && tile > 0)
      << "make_tiled(" << extent << ", " << tile << ")";
  TiledDim d;
  d.var = std::move(var);
  d.extent = extent;
  d.tile = tile;
  d.count = ceil_div(extent, tile);
  d.ragged = extent % tile != 0;
  return d;
}

bool switch_legal(const TiledDim& d, std::int64_t mesh, std::int64_t vec) {
  if (!d.ragged) return true;
  const std::int64_t r = d.remainder();
  if (r % mesh != 0) return false;
  return (r / mesh) % vec == 0;
}

}  // namespace swatop::opt
