// SPM buffer coalescing: hoist every SPM allocation to the top of the
// program so the runtime's bump allocator lays all buffers out in one
// coalesced region (the code generator's memory optimization, Sec. 4.7),
// and validate the footprint against the 64 KB budget.
#pragma once

#include <cstdint>

#include "ir/node.hpp"
#include "sim/config.hpp"

namespace swatop::opt {

/// Move all SpmAlloc nodes to the front of the root Seq (stable order,
/// duplicates by name rejected). Returns the total per-CPE footprint in
/// floats, double-buffered allocations counted twice.
std::int64_t coalesce_spm(ir::StmtPtr& root);

/// True if the program's SPM footprint fits the per-CPE capacity minus a
/// reserve (stack/runtime slack).
bool fits_spm(const ir::StmtPtr& root, const sim::SimConfig& cfg,
              std::int64_t reserve_floats = 512);

}  // namespace swatop::opt
