#include "opt/simplify.hpp"

#include "ir/mutator.hpp"

namespace swatop::opt {

namespace ir = swatop::ir;

namespace {

/// Substitute var -> 0 through every expression of a subtree.
void subst_zero(const ir::StmtPtr& s, const std::string& v) {
  const ir::Expr zero = ir::cst(0);
  ir::visit(s, [&](const ir::StmtPtr& n) {
    auto sub = [&](ir::Expr& e) {
      if (e != nullptr) e = ir::substitute(e, v, zero);
    };
    sub(n->extent);
    sub(n->cond);
    sub(n->zero_off);
    sub(n->zero_floats);
    sub(n->dma.view.base);
    sub(n->dma.view.rows);
    sub(n->dma.view.cols);
    sub(n->dma.rows_p);
    sub(n->dma.cols_p);
    sub(n->dma.spm_off);
    sub(n->dma.epi.channel0);
    sub(n->dma.epi.res.base);
    sub(n->dma.epi.res.rows);
    sub(n->dma.epi.res.cols);
    sub(n->dma.reply);
    sub(n->wait_reply);
    sub(n->gemm.M);
    sub(n->gemm.N);
    sub(n->gemm.K);
    sub(n->gemm.a.base);
    sub(n->gemm.a.rows);
    sub(n->gemm.a.cols);
    sub(n->gemm.b.base);
    sub(n->gemm.b.rows);
    sub(n->gemm.b.cols);
    sub(n->gemm.c.base);
    sub(n->gemm.c.rows);
    sub(n->gemm.c.cols);
    sub(n->gemm.a_off);
    sub(n->gemm.b_off);
    sub(n->gemm.c_off);
  });
}

}  // namespace

void eliminate_unit_loops(ir::StmtPtr& root) {
  root = ir::transform(root, [](ir::StmtPtr s) -> ir::StmtPtr {
    if (s->kind != ir::StmtKind::For) return s;
    if (!ir::is_const(s->extent) || ir::as_cst(s->extent) != 1) return s;
    subst_zero(s->for_body, s->var);
    return s->for_body;
  });
  // Splice nested Seqs so later passes (double buffering scans for DMA gets
  // as *direct* loop-body children) see a flat statement list.
  root = ir::transform(root, [](ir::StmtPtr s) -> ir::StmtPtr {
    if (s->kind != ir::StmtKind::Seq) return s;
    bool nested = false;
    for (const ir::StmtPtr& c : s->body)
      nested = nested || c->kind == ir::StmtKind::Seq;
    if (!nested) return s;
    std::vector<ir::StmtPtr> flat;
    for (ir::StmtPtr& c : s->body) {
      if (c->kind == ir::StmtKind::Seq)
        flat.insert(flat.end(), c->body.begin(), c->body.end());
      else
        flat.push_back(std::move(c));
    }
    s->body = std::move(flat);
    return s;
  });
}

}  // namespace swatop::opt
