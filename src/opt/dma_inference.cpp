#include "opt/dma_inference.hpp"

#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "ir/analysis.hpp"
#include "isa/kernel_gen.hpp"

namespace swatop::opt {

namespace ir = swatop::ir;

namespace {

/// One level of the loop chain from the root to the gemm: the Seq, the index
/// of the child leading deeper, and the loop variable that scopes this Seq
/// (empty at the root).
struct PathEntry {
  ir::Stmt* seq;
  std::size_t child_idx;
  std::string loop_var;
  bool reduction = false;  ///< the scoping loop accumulates into the output
};

bool contains_gemm(const ir::StmtPtr& s) {
  return ir::contains_kind(s, ir::StmtKind::Gemm);
}

/// Build the Seq/For chain leading to the unique gemm node. The lowering
/// emits a strict chain (Seq of [comments..., For [Seq ... ]] ... [gemm]).
bool build_path(const ir::StmtPtr& root, std::vector<PathEntry>& path,
                ir::Stmt** gemm_out) {
  ir::StmtPtr cur = root;
  std::string scope_var;
  bool scope_red = false;
  while (true) {
    if (cur->kind != ir::StmtKind::Seq) return false;
    std::optional<std::size_t> hit;
    for (std::size_t i = 0; i < cur->body.size(); ++i) {
      if (contains_gemm(cur->body[i])) {
        if (hit.has_value()) return false;  // more than one gemm path
        hit = i;
      }
    }
    if (!hit.has_value()) return false;
    path.push_back({cur.get(), *hit, scope_var, scope_red});
    const ir::StmtPtr child = cur->body[*hit];
    if (child->kind == ir::StmtKind::Gemm) {
      *gemm_out = child.get();
      return true;
    }
    if (child->kind != ir::StmtKind::For) return false;
    scope_var = child->var;
    scope_red = child->reduction;
    // Normalize: For bodies are always Seq after lowering.
    if (child->for_body->kind != ir::StmtKind::Seq)
      child->for_body = ir::make_seq({child->for_body});
    cur = child->for_body;
  }
}

/// Deepest path index whose loop variable appears in any of the exprs.
std::size_t hoist_level(const std::vector<PathEntry>& path,
                        std::initializer_list<ir::Expr> exprs) {
  std::size_t level = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const ir::Expr& e : exprs) {
      if (e != nullptr && ir::uses_var(e, path[i].loop_var)) level = i;
    }
  }
  return level;
}

/// Padded (tile) value of a gemm dim: its value with every loop variable at
/// zero, where boundary min() expressions take their full-tile value.
std::int64_t padded_dim(const ir::Expr& e,
                        const std::vector<PathEntry>& path) {
  ir::Env env;
  for (const PathEntry& p : path)
    if (!p.loop_var.empty()) env[p.loop_var] = 0;
  return ir::eval(e, env);
}

struct OperandPlan {
  ir::DmaAttrs dma;
  std::string buf;
  std::int64_t buf_floats = 0;
  std::size_t level = 0;
};

/// Build the DMA plan of one operand. `natural` is the view in gemm-dim
/// orientation (rows = first gemm dim of the operand); `tile_rows/cols` are
/// the corresponding gemm dim expressions (the tile grid); `col_major` says
/// whether the kernel variant wants that orientation in SPM; swapping the
/// view feeds the row-major kernels and flips the mesh distribution.
OperandPlan plan_operand(const ir::ViewAttrs& natural, bool col_major,
                         ir::Expr tile_rows, ir::Expr tile_cols,
                         std::int64_t rows_pad, std::int64_t cols_pad,
                         const std::string& buf,
                         const std::vector<PathEntry>& path,
                         const sim::SimConfig& cfg) {
  OperandPlan p;
  ir::ViewAttrs v = natural;
  ir::Expr rp = std::move(tile_rows), cp = std::move(tile_cols);
  bool rows_to_rid = true;
  if (!col_major) {
    std::swap(v.rows, v.cols);
    std::swap(v.stride_r, v.stride_c);
    std::swap(rp, cp);
    std::swap(rows_pad, cols_pad);
    rows_to_rid = false;
  }
  p.dma.view = v;
  p.dma.rows_p = rp;
  p.dma.cols_p = cp;
  p.dma.spm_buf = buf;
  p.dma.spm_off = ir::cst(0);
  p.dma.rows_to_rid = rows_to_rid;
  p.buf = buf;
  p.buf_floats =
      (rows_pad / cfg.mesh_rows) * (cols_pad / cfg.mesh_cols);
  p.level = hoist_level(path, {v.base, v.rows, v.cols, p.dma.rows_p,
                               p.dma.cols_p});
  return p;
}

/// True when the view may move fewer elements than the tile grid at some
/// iteration (lightweight-padding boundary), requiring a zero-fill before
/// the get. Under parameter switching the grid shrinks with the valid
/// region (the grid dims are non-constant), so no zeroing is needed.
bool needs_zero(const ir::DmaAttrs& d) {
  if (!ir::is_const(d.rows_p) || !ir::is_const(d.cols_p)) return false;
  const bool rows_full =
      ir::is_const(d.view.rows) &&
      ir::as_cst(d.view.rows) == ir::as_cst(d.rows_p);
  const bool cols_full =
      ir::is_const(d.view.cols) &&
      ir::as_cst(d.view.cols) == ir::as_cst(d.cols_p);
  return !(rows_full && cols_full);
}

/// Guard condition: this iteration's tile is partial.
ir::Expr partial_cond(const ir::DmaAttrs& d) {
  return ir::add(ir::lt(d.view.rows, d.rows_p),
                 ir::lt(d.view.cols, d.cols_p));
}

}  // namespace

bool infer_dma(ir::StmtPtr& root, const sim::SimConfig& cfg) {
  std::vector<PathEntry> path;
  ir::Stmt* gemm = nullptr;
  SWATOP_CHECK(build_path(root, path, &gemm))
      << "DMA inference expects a single-gemm loop chain";
  ir::GemmAttrs& g = gemm->gemm;
  SWATOP_CHECK(g.a_buf.empty()) << "DMA inference ran twice";

  const auto variant = isa::KernelVariant::from_index(g.variant);
  const std::int64_t Mp = padded_dim(g.M, path);
  const std::int64_t Np = padded_dim(g.N, path);
  const std::int64_t Kp = padded_dim(g.K, path);

  // Primitive validity of the padded tile.
  if (Mp % cfg.mesh_rows != 0 || Np % cfg.mesh_cols != 0 ||
      Kp % cfg.mesh_rows != 0)
    return false;
  const std::int64_t vec_local = variant.vec == isa::VecDim::M
                                     ? Mp / cfg.mesh_rows
                                     : Np / cfg.mesh_cols;
  if (vec_local % cfg.vector_width != 0) return false;

  OperandPlan pa = plan_operand(g.a, variant.a_col_major, g.M, g.K, Mp, Kp,
                                "spm_A", path, cfg);
  OperandPlan pb = plan_operand(g.b, variant.b_col_major, g.K, g.N, Kp, Np,
                                "spm_B", path, cfg);
  OperandPlan pc = plan_operand(g.c, variant.vec == isa::VecDim::M, g.M, g.N,
                                Mp, Np, "spm_C", path, cfg);

  // Reply slots: one per operand stream.
  pa.dma.reply = ir::cst(0);
  pb.dma.reply = ir::cst(1);
  pc.dma.reply = ir::cst(2);
  pa.dma.dir = ir::Direction::MemToSpm;
  pb.dma.dir = ir::Direction::MemToSpm;
  pc.dma.dir = ir::Direction::SpmToMem;

  // Bind the gemm to the SPM buffers.
  g.a_buf = pa.buf;
  g.b_buf = pb.buf;
  g.c_buf = pc.buf;
  g.a_off = ir::cst(0);
  g.b_off = ir::cst(0);
  g.c_off = ir::cst(0);

  // Inject, deepest level first so recorded child indices stay valid; within
  // one level, inserts before child_idx shift it.
  auto insert_before = [&](std::size_t level, std::vector<ir::StmtPtr> ns) {
    ir::Stmt* seq = path[level].seq;
    seq->body.insert(
        seq->body.begin() + static_cast<std::ptrdiff_t>(path[level].child_idx),
        ns.begin(), ns.end());
    path[level].child_idx += ns.size();
  };
  auto insert_after = [&](std::size_t level, std::vector<ir::StmtPtr> ns) {
    ir::Stmt* seq = path[level].seq;
    seq->body.insert(seq->body.begin() + static_cast<std::ptrdiff_t>(
                                             path[level].child_idx + 1),
                     ns.begin(), ns.end());
  };

  // Input operands: optional zero-fill guard, then get + wait.
  for (OperandPlan* p : {&pa, &pb}) {
    std::vector<ir::StmtPtr> ns;
    if (needs_zero(p->dma)) {
      ns.push_back(ir::make_if(
          partial_cond(p->dma),
          ir::make_seq({ir::make_spm_zero(p->buf, p->dma.spm_off,
                                          ir::cst(p->buf_floats))})));
    }
    ns.push_back(ir::make_dma(ir::StmtKind::DmaGet, p->dma));
    ns.push_back(ir::make_dma_wait(p->dma.reply));
    insert_before(p->level, std::move(ns));
  }

  // Output operand. Usually every reduction loop sits inside the C tile's
  // scope: zero the accumulator before, write it back after. When the
  // schedule places a reduction loop *outside* C's scope, the tile is
  // revisited once per outer reduction iteration; it must then be re-fetched
  // (accumulating partial sums from memory) on every pass but the first.
  std::vector<std::string> outer_reductions;
  for (std::size_t i = 1; i <= pc.level && i < path.size(); ++i)
    if (path[i].reduction) outer_reductions.push_back(path[i].loop_var);

  // Fused epilogue: apply it on the C store. Legal only when every put
  // writes finished sums -- a reduction loop outside C's scope puts the
  // tile once per pass, and the epilogue would bias/clamp partial sums.
  if (g.epi.any()) {
    if (!outer_reductions.empty()) return false;
    pc.dma.epi = g.epi;
    if (variant.vec != isa::VecDim::M) {
      // plan_operand transposed the C view for a row-major kernel; keep the
      // residual view and the bias index in the same orientation as the put.
      ir::EpilogueAttrs& e = pc.dma.epi;
      std::swap(e.res.rows, e.res.cols);
      std::swap(e.res.stride_r, e.res.stride_c);
      e.channels_on_rows = !e.channels_on_rows;
    }
    g.epi = ir::EpilogueAttrs{};
  }

  if (outer_reductions.empty()) {
    insert_before(pc.level,
                  {ir::make_spm_zero(pc.buf, ir::cst(0),
                                     ir::cst(pc.buf_floats))});
  } else {
    ir::Expr pass_sum = ir::cst(0);
    for (const std::string& v : outer_reductions)
      pass_sum = ir::add(pass_sum, ir::var(v));
    ir::DmaAttrs cget = pc.dma;
    cget.dir = ir::Direction::MemToSpm;
    cget.reply = ir::cst(3);
    insert_before(
        pc.level,
        {ir::make_if(
            ir::lt(pass_sum, ir::cst(1)),
            ir::make_seq({ir::make_spm_zero(pc.buf, ir::cst(0),
                                            ir::cst(pc.buf_floats))}),
            ir::make_seq({ir::make_dma(ir::StmtKind::DmaGet, cget),
                          ir::make_dma_wait(cget.reply)}))});
  }
  insert_after(pc.level, {ir::make_dma(ir::StmtKind::DmaPut, pc.dma),
                          ir::make_dma_wait(pc.dma.reply)});

  // Allocations at the root, ahead of everything else.
  std::vector<ir::StmtPtr> allocs = {
      ir::make_spm_alloc(pa.buf, pa.buf_floats),
      ir::make_spm_alloc(pb.buf, pb.buf_floats),
      ir::make_spm_alloc(pc.buf, pc.buf_floats),
  };
  path[0].seq->body.insert(path[0].seq->body.begin(), allocs.begin(),
                           allocs.end());
  return true;
}

}  // namespace swatop::opt
