// One computing processing element (CPE): mesh coordinates plus its SPM.
// Instruction-level behaviour (pipelines, vector registers) is modelled by
// src/isa; data-level behaviour by the primitives operating on the SPM.
#pragma once

#include "sim/config.hpp"
#include "sim/spm.hpp"

namespace swatop::sim {

class Cpe {
 public:
  Cpe(const SimConfig& cfg, int rid, int cid)
      : rid_(rid), cid_(cid), spm_(cfg) {}

  int rid() const { return rid_; }
  int cid() const { return cid_; }

  Spm& spm() { return spm_; }
  const Spm& spm() const { return spm_; }

 private:
  int rid_;
  int cid_;
  Spm spm_;
};

}  // namespace swatop::sim
