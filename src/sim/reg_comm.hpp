// Register-communication mesh of the CPE cluster.
//
// The 8x8 CPEs share data over row and column buses; a producer broadcasts a
// 256-bit register to every CPE in its row (or column) with small latency and
// very high aggregate bandwidth (647.25 GB/s measured). The GEMM micro-kernel
// is the main user; this module provides the functional broadcast buffers
// plus byte accounting so the primitive and the ablation benches can report
// communication volume.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace swatop::sim {

class RegCommBus {
 public:
  explicit RegCommBus(const SimConfig& cfg);

  /// Account a row broadcast of `floats` floats (one producer to the other
  /// 7 CPEs in the row).
  void record_row_broadcast(std::int64_t floats);
  void record_col_broadcast(std::int64_t floats);

  std::int64_t row_bytes() const { return row_bytes_; }
  std::int64_t col_bytes() const { return col_bytes_; }
  std::int64_t total_bytes() const { return row_bytes_ + col_bytes_; }

  /// Broadcast operations recorded, by bus direction.
  std::int64_t row_messages() const { return row_msgs_; }
  std::int64_t col_messages() const { return col_msgs_; }

  /// Cycles to broadcast `floats` floats over one bus, i.e. latency plus the
  /// bandwidth term at the per-bus share of aggregate bandwidth. The GEMM
  /// kernels hide this inside the pipeline, so this standalone price is used
  /// only by diagnostics and the communication ablation bench.
  double broadcast_cycles(std::int64_t floats) const;

  void reset();

 private:
  const SimConfig& cfg_;
  std::int64_t row_bytes_ = 0;
  std::int64_t col_bytes_ = 0;
  std::int64_t row_msgs_ = 0;
  std::int64_t col_msgs_ = 0;
};

}  // namespace swatop::sim
