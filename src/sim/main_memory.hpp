// Simulated main memory of one core group: a growable float arena with
// named, 128-byte-aligned allocations and bounds-checked access.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace swatop::sim {

class MainMemory {
 public:
  /// Addresses are float indices into the arena (byte address = 4 * Addr).
  using Addr = std::int64_t;

  MainMemory() = default;

  /// Timing-only executions on large workloads only need addresses, not
  /// storage; with materialization off, alloc() hands out addresses without
  /// resizing the arena and data access throws.
  void set_materialize(bool on) { materialize_ = on; }
  bool materialize() const { return materialize_; }

  /// Allocate `nfloats` zero-initialized floats, aligned to a DRAM
  /// transaction boundary. `name` is kept for diagnostics.
  Addr alloc(std::int64_t nfloats, std::string name = "");

  /// Release every allocation and reset the arena.
  void reset();

  /// Number of floats currently allocated (including alignment padding).
  std::int64_t size() const { return top_; }

  float read(Addr a) const;
  void write(Addr a, float v);

  /// Bounds-checked span over [a, a + n).
  std::span<float> view(Addr a, std::int64_t n);
  std::span<const float> view(Addr a, std::int64_t n) const;

  /// Copy a host buffer into the arena / out of the arena.
  void copy_in(Addr dst, std::span<const float> src);
  void copy_out(Addr src, std::span<float> dst) const;

  /// Fill [a, a+n) with a value.
  void fill(Addr a, std::int64_t n, float v);

  struct Allocation {
    Addr base;
    std::int64_t size;
    std::string name;
  };
  const std::vector<Allocation>& allocations() const { return allocs_; }

 private:
  void check_range(Addr a, std::int64_t n) const;

  bool materialize_ = true;
  Addr top_ = 0;
  std::vector<float> data_;
  std::vector<Allocation> allocs_;
};

}  // namespace swatop::sim
