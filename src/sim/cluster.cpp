#include "sim/cluster.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace swatop::sim {

CpeCluster::CpeCluster(const SimConfig& cfg) : cfg_(cfg), bus_(cfg_) {
  cpes_.reserve(static_cast<std::size_t>(cfg_.num_cpes()));
  for (int r = 0; r < cfg_.mesh_rows; ++r)
    for (int c = 0; c < cfg_.mesh_cols; ++c) cpes_.emplace_back(cfg_, r, c);
}

Cpe& CpeCluster::at(int rid, int cid) {
  SWATOP_CHECK(rid >= 0 && rid < cfg_.mesh_rows && cid >= 0 &&
               cid < cfg_.mesh_cols)
      << "CPE (" << rid << "," << cid << ") out of mesh";
  return cpes_[static_cast<std::size_t>(rid * cfg_.mesh_cols + cid)];
}

const Cpe& CpeCluster::at(int rid, int cid) const {
  return const_cast<CpeCluster*>(this)->at(rid, cid);
}

std::int64_t CpeCluster::spm_alloc(std::int64_t nfloats, std::string name) {
  SWATOP_CHECK(nfloats > 0) << "SPM alloc of " << nfloats;
  // Keep buffers 32-byte aligned so vector loads are aligned.
  const std::int64_t offset = align_up(spm_top_, 8);
  SWATOP_CHECK(offset + nfloats <= spm_capacity())
      << "SPM overflow: need " << offset + nfloats << " floats, capacity "
      << spm_capacity() << " (allocating '" << name << "')";
  spm_top_ = offset + nfloats;
  spm_high_water_ = std::max(spm_high_water_, spm_top_);
  spm_allocs_.push_back({offset, nfloats, std::move(name)});
  return offset;
}

void CpeCluster::spm_reset() {
  spm_top_ = 0;
  spm_allocs_.clear();
}

}  // namespace swatop::sim
