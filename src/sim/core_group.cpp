#include "sim/core_group.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop::sim {

CoreGroup::CoreGroup(const SimConfig& cfg)
    : cfg_(cfg), cluster_(cfg_), dma_(cfg_) {}

void CoreGroup::advance_compute(double cycles) {
  SWATOP_CHECK(cycles >= 0.0);
  now_ += cycles;
  stats_.compute_cycles += cycles;
}

CoreGroup::ReplyId CoreGroup::dma_issue(std::span<const DmaCpeDesc> descs,
                                        ExecMode mode) {
  const DmaCost c = dma_.cost(descs);
  const double done = dma_.issue(now_, c);
  const ReplyId id = next_reply_++;
  inflight_[id] = done;
  stats_.dma_bytes_requested += c.bytes_requested;
  stats_.dma_bytes_wasted += c.bytes_wasted;
  stats_.dma_transactions += c.transactions;
  stats_.dma_transfers += 1;

  if (mode == ExecMode::Functional) {
    // Descriptors are expected in mesh order: one per CPE (or a single
    // descriptor when only CPE (0,0) participates, e.g. scalars).
    const int n = static_cast<int>(descs.size());
    SWATOP_CHECK(n == cfg_.num_cpes() || n == 1)
        << "functional DMA expects 1 or " << cfg_.num_cpes()
        << " descriptors, got " << n;
    for (int i = 0; i < n; ++i) {
      const DmaCpeDesc& d = descs[static_cast<std::size_t>(i)];
      if (d.total == 0) continue;
      Spm& spm = cluster_.at(i / cfg_.mesh_cols, i % cfg_.mesh_cols).spm();
      std::int64_t remaining = d.total;
      MainMemory::Addr mem = d.mem_base;
      std::int64_t spm_at = d.spm_addr;
      while (remaining > 0) {
        const std::int64_t blk = std::min(remaining, d.block);
        if (d.dir == DmaDir::MemToSpm) {
          auto src = mem_.view(mem, blk);
          auto dst = spm.view(spm_at, blk);
          std::copy(src.begin(), src.end(), dst.begin());
        } else {
          auto src = spm.view(spm_at, blk);
          auto dst = mem_.view(mem, blk);
          std::copy(src.begin(), src.end(), dst.begin());
        }
        remaining -= blk;
        mem += d.block + d.stride;
        spm_at += blk;
      }
    }
  }
  return id;
}

double CoreGroup::dma_issue_cost_at(const DmaCost& c) {
  const double done = dma_.issue(now_, c);
  stats_.dma_bytes_requested += c.bytes_requested;
  stats_.dma_bytes_wasted += c.bytes_wasted;
  stats_.dma_transactions += c.transactions;
  stats_.dma_transfers += 1;
  return done;
}

void CoreGroup::wait_until(double t) {
  if (t > now_) {
    stats_.dma_stall_cycles += t - now_;
    now_ = t;
  }
}

CoreGroup::ReplyId CoreGroup::dma_issue_cost(const DmaCost& c) {
  const double done = dma_.issue(now_, c);
  const ReplyId id = next_reply_++;
  inflight_[id] = done;
  stats_.dma_bytes_requested += c.bytes_requested;
  stats_.dma_bytes_wasted += c.bytes_wasted;
  stats_.dma_transactions += c.transactions;
  stats_.dma_transfers += 1;
  return id;
}

void CoreGroup::dma_wait(ReplyId id) {
  auto it = inflight_.find(id);
  SWATOP_CHECK(it != inflight_.end()) << "dma_wait on unknown reply " << id;
  if (it->second > now_) {
    stats_.dma_stall_cycles += it->second - now_;
    now_ = it->second;
  }
  inflight_.erase(it);
}

bool CoreGroup::dma_pending(ReplyId id) const {
  return inflight_.count(id) > 0;
}

void CoreGroup::charge_dma_sync(std::span<const DmaCpeDesc> descs) {
  const ReplyId id = dma_issue(descs, ExecMode::TimingOnly);
  dma_wait(id);
}

void CoreGroup::charge_dma_cost_sync(const DmaCost& c) {
  const double done = dma_.issue(now_, c);
  stats_.dma_bytes_requested += c.bytes_requested;
  stats_.dma_bytes_wasted += c.bytes_wasted;
  stats_.dma_transactions += c.transactions;
  stats_.dma_transfers += 1;
  if (done > now_) {
    stats_.dma_stall_cycles += done - now_;
    now_ = done;
  }
}

void CoreGroup::reset_execution() {
  now_ = 0.0;
  dma_.reset();
  inflight_.clear();
  stats_ = CgStats{};
  cluster_.spm_reset();
  cluster_.bus().reset();
}

void CoreGroup::reset_all() {
  reset_execution();
  mem_.reset();
}

}  // namespace swatop::sim
