#include "sim/core_group.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop::sim {

CoreGroup::CoreGroup(const SimConfig& cfg)
    : cfg_(cfg), cluster_(cfg_), dma_(cfg_) {}

void CoreGroup::advance_compute(double cycles) {
  SWATOP_CHECK(cycles >= 0.0);
  now_ += cycles;
  stats_.compute_cycles += cycles;
}

double CoreGroup::book_dma(const DmaCost& c) {
  stats_.dma_queue_wait_cycles += dma_.queue_wait(now_);
  const double done = dma_.issue(now_, c);
  stats_.dma_bytes_requested += c.bytes_requested;
  stats_.dma_bytes_wasted += c.bytes_wasted;
  stats_.dma_transactions += c.transactions;
  stats_.dma_transfers += 1;
  if (obs_ != nullptr && obs_->tracing()) {
    obs::TraceEvent ev;
    ev.name = "dma";
    ev.cat = obs::Category::Dma;
    ev.tid = obs::Track::kDmaEngine;
    ev.ts = done - c.total_cycles();
    ev.dur = c.total_cycles();
    ev.arg_name[0] = "bytes";
    ev.arg[0] = c.bytes_requested;
    ev.arg_name[1] = "transactions";
    ev.arg[1] = c.transactions;
    ev.arg_name[2] = "bytes_wasted";
    ev.arg[2] = c.bytes_wasted;
    obs_->trace_event(std::move(ev));
  }
  return done;
}

CoreGroup::ReplyId CoreGroup::dma_issue(std::span<const DmaCpeDesc> descs,
                                        ExecMode mode) {
  const DmaCost c = dma_.cost(descs);
  const double done = book_dma(c);
  const ReplyId id = next_reply_++;
  inflight_[id] = done;
  if (obs_ != nullptr) {
    // Per-CPE attribution: descriptors are in mesh order (or a single
    // descriptor for CPE (0,0)-only transfers).
    for (std::size_t i = 0; i < descs.size(); ++i) {
      if (descs[i].total == 0) continue;
      obs::CpeCounters& pc = obs_->cpe(static_cast<int>(i));
      pc.dma_bytes +=
          descs[i].total * static_cast<std::int64_t>(sizeof(float));
      pc.dma_transfers += 1;
    }
  }

  if (mode == ExecMode::Functional) {
    // Descriptors are expected in mesh order: one per CPE (or a single
    // descriptor when only CPE (0,0) participates, e.g. scalars).
    const int n = static_cast<int>(descs.size());
    SWATOP_CHECK(n == cfg_.num_cpes() || n == 1)
        << "functional DMA expects 1 or " << cfg_.num_cpes()
        << " descriptors, got " << n;
    for (int i = 0; i < n; ++i) {
      const DmaCpeDesc& d = descs[static_cast<std::size_t>(i)];
      if (d.total == 0) continue;
      Spm& spm = cluster_.at(i / cfg_.mesh_cols, i % cfg_.mesh_cols).spm();
      std::int64_t remaining = d.total;
      MainMemory::Addr mem = d.mem_base;
      std::int64_t spm_at = d.spm_addr;
      while (remaining > 0) {
        const std::int64_t blk = std::min(remaining, d.block);
        if (d.dir == DmaDir::MemToSpm) {
          auto src = mem_.view(mem, blk);
          auto dst = spm.view(spm_at, blk);
          std::copy(src.begin(), src.end(), dst.begin());
        } else {
          auto src = spm.view(spm_at, blk);
          auto dst = mem_.view(mem, blk);
          std::copy(src.begin(), src.end(), dst.begin());
        }
        remaining -= blk;
        mem += d.block + d.stride;
        spm_at += blk;
      }
    }
  }
  return id;
}

double CoreGroup::dma_issue_cost_at(const DmaCost& c) { return book_dma(c); }

void CoreGroup::wait_until(double t) {
  if (t > now_) {
    stats_.dma_stall_cycles += t - now_;
    now_ = t;
  }
}

CoreGroup::ReplyId CoreGroup::dma_issue_cost(const DmaCost& c) {
  const double done = book_dma(c);
  const ReplyId id = next_reply_++;
  inflight_[id] = done;
  return id;
}

void CoreGroup::dma_wait(ReplyId id) {
  auto it = inflight_.find(id);
  SWATOP_CHECK(it != inflight_.end()) << "dma_wait on unknown reply " << id;
  if (it->second > now_) {
    stats_.dma_stall_cycles += it->second - now_;
    now_ = it->second;
  }
  inflight_.erase(it);
}

bool CoreGroup::dma_pending(ReplyId id) const {
  return inflight_.count(id) > 0;
}

void CoreGroup::charge_dma_sync(std::span<const DmaCpeDesc> descs) {
  const ReplyId id = dma_issue(descs, ExecMode::TimingOnly);
  dma_wait(id);
}

void CoreGroup::charge_dma_cost_sync(const DmaCost& c) {
  const double done = book_dma(c);
  if (done > now_) {
    stats_.dma_stall_cycles += done - now_;
    now_ = done;
  }
}

void CoreGroup::reset_execution() {
  now_ = 0.0;
  dma_.reset();
  inflight_.clear();
  stats_ = CgStats{};
  cluster_.spm_reset();
  cluster_.bus().reset();
  for (int r = 0; r < cfg_.mesh_rows; ++r)
    for (int c = 0; c < cfg_.mesh_cols; ++c)
      cluster_.at(r, c).spm().reset_access_counts();
  // Mirror the reset so an attached recorder's counters stay equal to the
  // execution statistics they are assembled from.
  if (obs_ != nullptr) obs_->reset_execution();
}

obs::Counters CoreGroup::counters_snapshot() const {
  // Start from the recorder's registry so observer-only values (per-CPE
  // attribution, pipeline estimates accumulated by the runtime) survive.
  obs::Counters c =
      obs_ != nullptr ? obs_->counters() : obs::Counters{};
  c.total_cycles = now_;
  c.compute_cycles = stats_.compute_cycles;
  c.flops = stats_.flops;
  c.gemm_calls = stats_.gemm_calls;
  c.dma.bytes_requested = stats_.dma_bytes_requested;
  c.dma.bytes_wasted = stats_.dma_bytes_wasted;
  c.dma.transactions = stats_.dma_transactions;
  c.dma.transfers = stats_.dma_transfers;
  c.dma.stall_cycles = stats_.dma_stall_cycles;
  c.dma.queue_wait_cycles = stats_.dma_queue_wait_cycles;
  c.dma.busy_cycles = dma_.busy_cycles();
  c.gemm_cycles = stats_.gemm_cycles;
  c.gemm_comm_cycles = stats_.gemm_comm_cycles;
  c.pipe = stats_.pipe;
  const RegCommBus& bus = cluster_.bus();
  c.reg_comm.row_messages = bus.row_messages();
  c.reg_comm.col_messages = bus.col_messages();
  c.reg_comm.row_bytes = bus.row_bytes();
  c.reg_comm.col_bytes = bus.col_bytes();
  c.sanitizer = stats_.sanitizer;
  c.spm_high_water_floats = cluster_.spm_high_water();
  c.spm_capacity_floats = cluster_.spm_capacity();
  c.spm_reads = 0;
  c.spm_writes = 0;
  for (int r = 0; r < cfg_.mesh_rows; ++r) {
    for (int col = 0; col < cfg_.mesh_cols; ++col) {
      const Spm& spm = cluster_.at(r, col).spm();
      c.spm_reads += spm.element_reads();
      c.spm_writes += spm.element_writes();
    }
  }
  return c;
}

void CoreGroup::reset_all() {
  reset_execution();
  mem_.reset();
}

}  // namespace swatop::sim
