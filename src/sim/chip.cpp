#include "sim/chip.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop::sim {

Chip::Chip(const SimConfig& cfg, int groups) : cfg_(cfg) {
  SWATOP_CHECK(groups >= 1 && groups <= 4)
      << "SW26010 has 4 core groups; asked for " << groups;
  for (int i = 0; i < groups; ++i)
    cgs_.push_back(std::make_unique<CoreGroup>(cfg_));
}

CoreGroup& Chip::cg(int i) {
  SWATOP_CHECK(i >= 0 && i < groups()) << "core group " << i << " of "
                                       << groups();
  return *cgs_[static_cast<std::size_t>(i)];
}

double Chip::elapsed() const {
  double m = 0.0;
  for (const auto& cg : cgs_) m = std::max(m, cg->now());
  return m;
}

CgStats Chip::aggregate_stats() const {
  CgStats s;
  for (const auto& cg : cgs_) s.add(cg->stats());
  return s;
}

void Chip::reset_execution() {
  for (auto& cg : cgs_) cg->reset_execution();
}

}  // namespace swatop::sim
