// The whole SW26010: four core groups on a network-on-chip. Each CG owns a
// private memory controller and DDR3 channel, so data-parallel work scales
// near-linearly; the NoC contributes a synchronization cost at kernel
// boundaries. (The paper's absolute TFLOPS numbers -- e.g. 2.1 TFLOPS
// implicit CONV against the 3.06 TFLOPS chip peak -- are chip-level; the
// per-CG machinery in CoreGroup is where all scheduling happens.)
#pragma once

#include <memory>
#include <vector>

#include "sim/core_group.hpp"

namespace swatop::sim {

class Chip {
 public:
  explicit Chip(const SimConfig& cfg = SimConfig{}, int groups = 4);

  int groups() const { return static_cast<int>(cgs_.size()); }
  CoreGroup& cg(int i);

  const SimConfig& config() const { return cfg_; }

  /// Chip-level elapsed time: the slowest core group.
  double elapsed() const;

  /// NoC barrier cost charged once per kernel launch when work spans
  /// multiple groups.
  double sync_cycles() const { return 2000.0; }

  /// Chip peak throughput (all CPE clusters).
  double peak_gflops() const {
    return cfg_.peak_gflops() * static_cast<double>(groups());
  }

  /// Summed statistics across groups.
  CgStats aggregate_stats() const;

  void reset_execution();

 private:
  SimConfig cfg_;
  std::vector<std::unique_ptr<CoreGroup>> cgs_;
};

}  // namespace swatop::sim
