#include "sim/reg_comm.hpp"

namespace swatop::sim {

RegCommBus::RegCommBus(const SimConfig& cfg) : cfg_(cfg) {}

void RegCommBus::record_row_broadcast(std::int64_t floats) {
  row_bytes_ += floats * static_cast<std::int64_t>(sizeof(float)) *
                (cfg_.mesh_cols - 1);
  row_msgs_ += 1;
}

void RegCommBus::record_col_broadcast(std::int64_t floats) {
  col_bytes_ += floats * static_cast<std::int64_t>(sizeof(float)) *
                (cfg_.mesh_rows - 1);
  col_msgs_ += 1;
}

double RegCommBus::broadcast_cycles(std::int64_t floats) const {
  // One bus owns 1/16 of the aggregate bandwidth (8 row + 8 column buses).
  const double per_bus_bytes_per_cycle =
      cfg_.reg_comm_bw_gbs / cfg_.clock_ghz / 16.0;
  const double bytes =
      static_cast<double>(floats) * static_cast<double>(sizeof(float));
  return static_cast<double>(cfg_.reg_comm_latency) +
         bytes / per_bus_bytes_per_cycle;
}

void RegCommBus::reset() {
  row_bytes_ = 0;
  col_bytes_ = 0;
  row_msgs_ = 0;
  col_msgs_ = 0;
}

}  // namespace swatop::sim
