// One SW26010 core group: main memory, the CPE cluster, the DMA engine, and
// the simulation clock.
//
// Time model: execution is SPMD at primitive granularity, so the CG keeps a
// single `now` cycle counter that compute primitives advance. DMA transfers
// are asynchronous: issuing one books it on the engine and records its
// completion time under a reply id; waiting advances `now` to the completion
// time (the stall the paper's double buffering removes).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "sim/cluster.hpp"
#include "sim/config.hpp"
#include "sim/dma.hpp"
#include "sim/main_memory.hpp"

namespace swatop::sim {

/// What the runtime should do when executing primitives.
enum class ExecMode {
  Functional,  ///< move data and compute, and account time
  TimingOnly,  ///< account time only (the stand-in for hardware runs)
};

/// Aggregate counters for one execution. The observability layer's counter
/// registry (obs::Counters) is a superset assembled from these exact
/// accumulators -- see CoreGroup::counters_snapshot().
struct CgStats {
  double compute_cycles = 0.0;    ///< cycles spent in compute primitives
  double dma_stall_cycles = 0.0;  ///< cycles the cluster waited on DMA
  double dma_queue_wait_cycles = 0.0;  ///< issue delayed by a busy engine
  std::int64_t dma_bytes_requested = 0;
  std::int64_t dma_bytes_wasted = 0;
  std::int64_t dma_transactions = 0;
  std::int64_t dma_transfers = 0;
  std::int64_t flops = 0;  ///< useful MACs * 2 executed by GEMM primitives
  std::int64_t gemm_calls = 0;
  /// Of compute_cycles: cycles booked by GEMM kernels (the rest is
  /// zero-fills, packing and MPE-priced passes). Both GEMM booking sites
  /// (prim::spm_gemm, the timing interpreter's fast path) record these so
  /// the attribution layer can decompose kernel time without re-pricing.
  double gemm_cycles = 0.0;
  /// Of gemm_cycles: inter-panel register-communication pattern switches
  /// (the Sec. 4.6 latency term of Eq. (2)).
  double gemm_comm_cycles = 0.0;
  /// Per-CPE dual-pipeline issue/stall estimate for the GEMM kernels, from
  /// the same pipeline-simulator fits that price them (SPMD: one CPE's
  /// stream stands for all 64).
  obs::PipeCounters pipe;
  /// Sanitizer trips (SimConfig::sanitize); accumulated at the throw sites
  /// so counters_snapshot() can surface them in the profile.
  obs::SanitizerCounters sanitizer;

  /// Accumulate another stats block (every field). Chip::aggregate_stats
  /// and the graph engine's per-node accumulation both go through here so
  /// a new CgStats field can't be summed in one place and dropped in the
  /// other.
  void add(const CgStats& o) {
    compute_cycles += o.compute_cycles;
    dma_stall_cycles += o.dma_stall_cycles;
    dma_queue_wait_cycles += o.dma_queue_wait_cycles;
    dma_bytes_requested += o.dma_bytes_requested;
    dma_bytes_wasted += o.dma_bytes_wasted;
    dma_transactions += o.dma_transactions;
    dma_transfers += o.dma_transfers;
    flops += o.flops;
    gemm_calls += o.gemm_calls;
    gemm_cycles += o.gemm_cycles;
    gemm_comm_cycles += o.gemm_comm_cycles;
    pipe.issued_p0 += o.pipe.issued_p0;
    pipe.issued_p1 += o.pipe.issued_p1;
    pipe.raw_stall_cycles += o.pipe.raw_stall_cycles;
    sanitizer.spm_poison_trips += o.sanitizer.spm_poison_trips;
    sanitizer.dma_bounds_trips += o.sanitizer.dma_bounds_trips;
    sanitizer.dma_overlap_trips += o.sanitizer.dma_overlap_trips;
    sanitizer.reply_slot_trips += o.sanitizer.reply_slot_trips;
  }
};

class CoreGroup {
 public:
  using ReplyId = std::int64_t;

  explicit CoreGroup(const SimConfig& cfg = SimConfig{});

  const SimConfig& config() const { return cfg_; }
  MainMemory& mem() { return mem_; }
  const MainMemory& mem() const { return mem_; }
  CpeCluster& cluster() { return cluster_; }
  const CpeCluster& cluster() const { return cluster_; }
  DmaEngine& dma() { return dma_; }

  double now() const { return now_; }

  /// Advance the cluster clock by `cycles` of computation.
  void advance_compute(double cycles);

  /// Issue a CG-level DMA (per-CPE descriptors). In Functional mode the data
  /// moves immediately (legal because SPMD code always waits before use and
  /// double buffering never reuses an in-flight buffer). Returns a reply id.
  ReplyId dma_issue(std::span<const DmaCpeDesc> descs, ExecMode mode);

  /// Issue an asynchronous transfer whose cost was computed (and possibly
  /// memoized) by the caller; books timing and statistics only.
  ReplyId dma_issue_cost(const DmaCost& c);

  /// Hot-path variant: books the transfer and returns its completion time
  /// directly; pair with wait_until (no reply bookkeeping).
  double dma_issue_cost_at(const DmaCost& c);

  /// Stall until the given completion time (no-op if already past).
  void wait_until(double t);

  /// Block until the transfer behind `id` completes (advances the clock).
  void dma_wait(ReplyId id);

  /// True if the reply id has an in-flight transfer.
  bool dma_pending(ReplyId id) const;

  /// Price and book a synchronous CG-level transfer without functional data
  /// movement. Used by packing helpers that stage arena-to-arena copies
  /// through SPM: the data is moved directly by the caller, the time and
  /// transaction statistics are accounted here.
  void charge_dma_sync(std::span<const DmaCpeDesc> descs);

  /// Book a synchronous transfer whose cost the caller computed analytically
  /// (bulk re-layout passes such as im2col or the Winograd transforms).
  void charge_dma_cost_sync(const DmaCost& c);

  CgStats& stats() { return stats_; }
  const CgStats& stats() const { return stats_; }

  /// Attach (or detach, with nullptr) an observability recorder. While
  /// attached, DMA bookings additionally emit trace events and per-CPE
  /// attributions; every site is a single pointer test when detached.
  void attach_observer(obs::Recorder* rec) { obs_ = rec; }
  obs::Recorder* observer() const { return obs_; }

  /// Assemble the observability counter registry for the execution so far.
  /// Aggregates are copied from the very accumulators the booking paths
  /// increment (stats(), the DMA engine, the reg-comm bus, the SPM
  /// allocator), so they equal the priced quantities by construction.
  obs::Counters counters_snapshot() const;

  /// Reset clock, engine, statistics and SPM allocator -- memory contents
  /// and allocations are preserved (so one can re-run on the same buffers).
  void reset_execution();

  /// Full reset including main memory.
  void reset_all();

 private:
  /// Shared DMA booking: queue-wait accounting, statistics, and (when an
  /// observer is attached) the engine-track trace event.
  double book_dma(const DmaCost& c);

  SimConfig cfg_;
  MainMemory mem_;
  CpeCluster cluster_;
  DmaEngine dma_;
  double now_ = 0.0;
  ReplyId next_reply_ = 1;
  std::unordered_map<ReplyId, double> inflight_;
  CgStats stats_;
  obs::Recorder* obs_ = nullptr;
};

}  // namespace swatop::sim
