// Machine parameters of one SW26010 core group (CG).
//
// Numbers follow the paper (Sec. 2) and the benchmarking study it cites
// [Xu, Lin, Matsuoka, IPDPSW'17]: 8x8 CPE mesh, 64 KB SPM per CPE, 22.6 GB/s
// effective DMA bandwidth per CG, 647.25 GB/s aggregated register
// communication bandwidth, 1.45 GHz clock, 128-byte DRAM transactions.
#pragma once

#include <cstddef>
#include <cstdint>

namespace swatop::sim {

/// Simulator sanitizers: correctness instrumentation for lowered schedules.
/// Off by default (zero overhead on the hot paths); the schedule fuzzer and
/// the correctness tests switch them on. Each check, when it fires,
/// increments a trip counter in the run's profile and throws
/// swatop::SanitizerError with the offending buffer / slot / loop context.
struct SanitizerConfig {
  bool enabled = false;  ///< master switch: no checks run when false

  /// SPM poison tracking: every SpmAlloc poisons its range; DMA writes,
  /// zero-fills and GEMM stores define floats; reading a float never
  /// defined traps with buffer name + offset. Functional mode only (timing
  /// mode moves no data).
  bool spm_poison = true;

  /// DMA regions must stay inside the owning main-memory tensor (catches
  /// schedules whose address arithmetic walks into a neighbouring tensor
  /// -- invisible to arena bounds checks).
  bool dma_bounds = true;

  /// In-flight overlap detection: a GEMM, zero-fill or second DMA touching
  /// an SPM range whose reply slot is still pending traps (the race the
  /// functional interpreter's eager data movement would otherwise hide).
  bool dma_overlap = true;

  bool poison_on() const { return enabled && spm_poison; }
  bool bounds_on() const { return enabled && dma_bounds; }
  bool overlap_on() const { return enabled && dma_overlap; }
};

struct SimConfig {
  int mesh_rows = 8;
  int mesh_cols = 8;

  /// Scratch pad memory per CPE, bytes.
  std::size_t spm_bytes = 64 * 1024;

  /// CPE clock. All simulator times are in CPE cycles.
  double clock_ghz = 1.45;

  /// Effective DMA bandwidth of one CG (stream-triad measured, GB/s).
  double dma_peak_bw_gbs = 22.6;

  /// DMA start-up overhead (the T_latency term of Eq. (1)), cycles.
  double dma_latency_cycles = 270.0;

  /// DRAM transaction granularity: even a 1-byte touch moves a whole
  /// transaction (Sec. 4.6).
  std::size_t dram_transaction_bytes = 128;

  /// Global load/store bandwidth (GB/s) -- only used to demonstrate why DMA
  /// is the right transfer mechanism (bench_dma_modes ablation).
  double gls_bw_gbs = 1.48;

  /// Aggregated register-communication bandwidth per CPE cluster (GB/s).
  double reg_comm_bw_gbs = 647.25;

  /// Vector width in floats (256-bit vectors).
  int vector_width = 4;

  /// Simulator sanitizers (off by default; see SanitizerConfig).
  SanitizerConfig sanitize{};

  /// Pipeline latencies in cycles (P0 = float/vector arithmetic,
  /// P1 = memory / load-store).
  int vmad_latency = 7;   ///< vector multiply-add result latency
  int vload_latency = 4;  ///< SPM vector load latency
  int vstore_latency = 1; ///< store issue cost (no consumer)
  int reg_comm_latency = 11;  ///< row/column broadcast receive latency

  int num_cpes() const { return mesh_rows * mesh_cols; }

  /// DMA bandwidth in bytes per CPE cycle for the whole CG.
  double dma_bytes_per_cycle() const { return dma_peak_bw_gbs / clock_ghz; }

  /// GL/GS bandwidth in bytes per cycle.
  double gls_bytes_per_cycle() const { return gls_bw_gbs / clock_ghz; }

  /// Peak floating point throughput of the CPE cluster, flops per cycle
  /// (4-wide fused multiply-add on every CPE).
  double peak_flops_per_cycle() const {
    return static_cast<double>(num_cpes()) * vector_width * 2.0;
  }

  /// Peak throughput in GFLOPS, for efficiency reporting.
  double peak_gflops() const { return peak_flops_per_cycle() * clock_ghz; }

  /// SPM capacity in floats.
  std::int64_t spm_floats() const {
    return static_cast<std::int64_t>(spm_bytes / sizeof(float));
  }

  /// The machine the paper targets (all defaults).
  static SimConfig sw26010() { return SimConfig{}; }

  /// The successor processor (SW26010-Pro, as in the Sunway OceanLight
  /// system): 4x the scratchpad, higher clock and per-CG DRAM bandwidth.
  /// The paper's closing claim -- that the tensorized-primitive +
  /// autotuning split ports to new hardware -- is exercised by re-tuning
  /// against this preset (the tuner picks much larger tiles; see
  /// test_integration). The Pro's 512-bit SIMD is not modelled; kernels
  /// keep 256-bit vectors.
  static SimConfig sw26010pro() {
    SimConfig c;
    c.spm_bytes = 256 * 1024;
    c.clock_ghz = 2.1;
    c.dma_peak_bw_gbs = 51.2;
    return c;
  }
};

}  // namespace swatop::sim
