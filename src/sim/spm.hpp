// Scratch pad memory (SPM / LDM) of a single CPE: 64 KB of software-managed
// storage. swATOP's runtime addresses SPM by float offset; a bump allocator
// (mirrored uniformly across all CPEs of a cluster, because execution is
// SPMD) lives in CpeCluster.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/config.hpp"

namespace swatop::sim {

class Spm {
 public:
  explicit Spm(const SimConfig& cfg);

  std::int64_t capacity() const {
    return static_cast<std::int64_t>(data_.size());
  }

  float read(std::int64_t a) const;
  void write(std::int64_t a, float v);

  /// Bounds-checked span over [a, a + n).
  std::span<float> view(std::int64_t a, std::int64_t n);
  std::span<const float> view(std::int64_t a, std::int64_t n) const;

  void fill(std::int64_t a, std::int64_t n, float v);

  /// Zero the whole SPM (used between operator executions).
  void clear();

  // -- poison tracking (SimConfig::sanitize.spm_poison) ---------------------
  // The SPM only provides the mechanism: a per-float "defined" bitmap that
  // write()/fill() clear. Policy -- *when* a poisoned read is an error, and
  // with which buffer/loop diagnostics -- lives in the runtime and the GEMM
  // primitive, which know the buffer names.

  /// True when the bitmap is maintained (set from cfg.sanitize at
  /// construction; every write path pays one branch when on).
  bool poison_tracking() const { return !poison_.empty(); }

  /// Mark [a, a+n) undefined (fresh allocation).
  void poison(std::int64_t a, std::int64_t n);

  /// Mark [a, a+n) defined without writing (bulk producers that store
  /// through view() spans, e.g. the GEMM primitive's output tile).
  void unpoison(std::int64_t a, std::int64_t n);

  /// Lowest poisoned offset in [a, a+n), or -1 when the whole range is
  /// defined (always -1 when tracking is off).
  std::int64_t first_poisoned(std::int64_t a, std::int64_t n) const;

  /// Element accesses through read()/write()/fill() -- the functional-mode
  /// scalar access paths (bulk view() spans are not counted). Feeds the
  /// observability layer's SPM traffic counters.
  std::int64_t element_reads() const { return reads_; }
  std::int64_t element_writes() const { return writes_; }
  void reset_access_counts() {
    reads_ = 0;
    writes_ = 0;
  }

 private:
  void check_range(std::int64_t a, std::int64_t n) const;
  std::vector<float> data_;
  /// Per-float poison bits (1 = undefined); empty when tracking is off.
  std::vector<std::uint8_t> poison_;
  mutable std::int64_t reads_ = 0;
  std::int64_t writes_ = 0;
};

}  // namespace swatop::sim
