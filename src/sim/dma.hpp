// DMA engine model of one core group.
//
// Pricing follows Eq. (1) of the paper: a start-up latency plus a transfer
// term at transaction granularity -- CPEs access DRAM in 128-byte
// transactions, so a strided access pattern pays for the *transactions it
// touches*, not the bytes it requests. The engine is a shared resource:
// concurrent transfers serialize, which is what bounds the benefit of
// double buffering at the bandwidth limit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/config.hpp"
#include "sim/main_memory.hpp"

namespace swatop::sim {

enum class DmaDir { MemToSpm, SpmToMem };

/// One CPE's DMA descriptor (the paper's DMA_CPE node, Sec. 4.5.1): starting
/// at main-memory float offset `mem_base`, move `total` floats in contiguous
/// blocks of `block` floats, skipping `stride` floats between blocks, to/from
/// SPM float offset `spm_addr` (SPM side is contiguous).
struct DmaCpeDesc {
  MainMemory::Addr mem_base = 0;
  std::int64_t spm_addr = 0;
  std::int64_t block = 0;
  std::int64_t stride = 0;
  std::int64_t total = 0;
  DmaDir dir = DmaDir::MemToSpm;
};

/// Cost breakdown of one CG-level DMA (all participating CPEs together).
struct DmaCost {
  double latency_cycles = 0.0;
  double transfer_cycles = 0.0;
  std::int64_t bytes_requested = 0;
  std::int64_t bytes_wasted = 0;  ///< transaction padding around blocks
  std::int64_t transactions = 0;

  double total_cycles() const { return latency_cycles + transfer_cycles; }
};

class DmaEngine {
 public:
  explicit DmaEngine(const SimConfig& cfg) : cfg_(cfg) {}

  /// Price a CG-level DMA made of per-CPE descriptors (Eq. (1)).
  DmaCost cost(std::span<const DmaCpeDesc> descs) const;

  /// Price a single descriptor.
  DmaCost cost(const DmaCpeDesc& d) const;

  /// Book an asynchronous transfer issued at `now`; returns its completion
  /// time. Transfers serialize on the engine.
  double issue(double now, const DmaCost& c);

  /// Time at which the engine becomes idle.
  double free_at() const { return free_at_; }

  /// Cycles a transfer issued at `now` waits for the engine to drain
  /// earlier transfers before its own latency+transfer time starts.
  double queue_wait(double now) const {
    return free_at_ > now ? free_at_ - now : 0.0;
  }

  /// Total cycles the engine has been occupied since the last reset
  /// (latency + transfer terms of every booked transfer).
  double busy_cycles() const { return busy_cycles_; }

  void reset() {
    free_at_ = 0.0;
    busy_cycles_ = 0.0;
  }

  /// Number of DRAM transactions touched by one contiguous block of
  /// `block_floats` floats starting at float offset `mem_base`.
  std::int64_t transactions_for_block(MainMemory::Addr mem_base,
                                      std::int64_t block_floats) const;

 private:
  const SimConfig& cfg_;
  double free_at_ = 0.0;
  double busy_cycles_ = 0.0;
};

}  // namespace swatop::sim
