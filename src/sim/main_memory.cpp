#include "sim/main_memory.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace swatop::sim {

namespace {
constexpr std::int64_t kAlignFloats = 32;  // 128 bytes / 4
}

MainMemory::Addr MainMemory::alloc(std::int64_t nfloats, std::string name) {
  SWATOP_CHECK(nfloats > 0) << "alloc of " << nfloats << " floats";
  Addr base = align_up(top_, kAlignFloats);
  top_ = base + nfloats;
  if (materialize_) data_.resize(static_cast<std::size_t>(top_), 0.0f);
  allocs_.push_back({base, nfloats, std::move(name)});
  return base;
}

void MainMemory::reset() {
  data_.clear();
  allocs_.clear();
  top_ = 0;
}

void MainMemory::check_range(Addr a, std::int64_t n) const {
  SWATOP_CHECK(a >= 0 && n >= 0 &&
               a + n <= static_cast<Addr>(data_.size()))
      << "main memory access [" << a << ", " << a + n << ") out of "
      << (materialize_ ? "arena of " : "non-materialized arena of ")
      << data_.size() << " materialized floats";
}

float MainMemory::read(Addr a) const {
  check_range(a, 1);
  return data_[static_cast<std::size_t>(a)];
}

void MainMemory::write(Addr a, float v) {
  check_range(a, 1);
  data_[static_cast<std::size_t>(a)] = v;
}

std::span<float> MainMemory::view(Addr a, std::int64_t n) {
  check_range(a, n);
  return {data_.data() + a, static_cast<std::size_t>(n)};
}

std::span<const float> MainMemory::view(Addr a, std::int64_t n) const {
  check_range(a, n);
  return {data_.data() + a, static_cast<std::size_t>(n)};
}

void MainMemory::copy_in(Addr dst, std::span<const float> src) {
  auto v = view(dst, static_cast<std::int64_t>(src.size()));
  std::copy(src.begin(), src.end(), v.begin());
}

void MainMemory::copy_out(Addr src, std::span<float> dst) const {
  auto v = view(src, static_cast<std::int64_t>(dst.size()));
  std::copy(v.begin(), v.end(), dst.begin());
}

void MainMemory::fill(Addr a, std::int64_t n, float v) {
  auto s = view(a, n);
  std::fill(s.begin(), s.end(), v);
}

}  // namespace swatop::sim
