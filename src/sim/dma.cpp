#include "sim/dma.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace swatop::sim {

std::int64_t DmaEngine::transactions_for_block(MainMemory::Addr mem_base,
                                               std::int64_t block_floats)
    const {
  const std::int64_t txn =
      static_cast<std::int64_t>(cfg_.dram_transaction_bytes);
  const std::int64_t byte_lo = mem_base * static_cast<std::int64_t>(
                                              sizeof(float));
  const std::int64_t byte_hi =
      (mem_base + block_floats) * static_cast<std::int64_t>(sizeof(float));
  return (align_up(byte_hi, txn) - align_down(byte_lo, txn)) / txn;
}

DmaCost DmaEngine::cost(const DmaCpeDesc& d) const {
  DmaCpeDesc one = d;
  return cost(std::span<const DmaCpeDesc>(&one, 1));
}

DmaCost DmaEngine::cost(std::span<const DmaCpeDesc> descs) const {
  DmaCost c;
  c.latency_cycles = cfg_.dma_latency_cycles;
  const std::int64_t txn_floats =
      static_cast<std::int64_t>(cfg_.dram_transaction_bytes / sizeof(float));
  for (const DmaCpeDesc& d : descs) {
    SWATOP_CHECK(d.total >= 0 && d.block >= 0 && d.stride >= 0)
        << "negative DMA descriptor field";
    if (d.total == 0) continue;
    SWATOP_CHECK(d.block > 0) << "DMA with zero block size";
    c.bytes_requested += d.total * static_cast<std::int64_t>(sizeof(float));
    const std::int64_t full_blocks = d.total / d.block;
    const std::int64_t tail = d.total % d.block;
    // The per-block transaction count only depends on the block's start
    // alignment within a transaction, which advances by (block + stride)
    // modulo the transaction size -- a cycle of period at most txn_floats.
    // Price one period and multiply instead of walking every block.
    const std::int64_t step = (d.block + d.stride) % txn_floats;
    std::int64_t txns_full = 0;
    if (full_blocks > 0) {
      const std::int64_t period =
          step == 0 ? 1 : txn_floats / gcd(step, txn_floats);
      const std::int64_t reps = std::min(full_blocks, period);
      std::int64_t period_txns = 0;
      MainMemory::Addr base = d.mem_base;
      for (std::int64_t i = 0; i < reps; ++i) {
        period_txns += transactions_for_block(base, d.block);
        base += d.block + d.stride;
      }
      if (full_blocks <= period) {
        txns_full = period_txns;
      } else {
        const std::int64_t whole = full_blocks / reps;
        const std::int64_t rem = full_blocks % reps;
        txns_full = whole * period_txns;
        base = d.mem_base;
        for (std::int64_t i = 0; i < rem; ++i) {
          txns_full += transactions_for_block(base, d.block);
          base += d.block + d.stride;
        }
      }
    }
    c.transactions += txns_full;
    if (tail > 0) {
      const MainMemory::Addr tail_base =
          d.mem_base + full_blocks * (d.block + d.stride);
      c.transactions += transactions_for_block(tail_base, tail);
    }
  }
  c.bytes_wasted =
      c.transactions * static_cast<std::int64_t>(cfg_.dram_transaction_bytes) -
      c.bytes_requested;
  // Effective throughput is bounded by the bytes the DRAM actually moves,
  // i.e. whole transactions (Eq. (1)'s block + waste numerator).
  const double moved_bytes = static_cast<double>(
      c.transactions * static_cast<std::int64_t>(cfg_.dram_transaction_bytes));
  c.transfer_cycles = moved_bytes / cfg_.dma_bytes_per_cycle();
  return c;
}

double DmaEngine::issue(double now, const DmaCost& c) {
  const double start = std::max(now, free_at_);
  const double done = start + c.total_cycles();
  free_at_ = done;
  busy_cycles_ += c.total_cycles();
  return done;
}

}  // namespace swatop::sim
