#include "sim/spm.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop::sim {

Spm::Spm(const SimConfig& cfg) : data_(cfg.spm_floats(), 0.0f) {
  // Everything starts poisoned: SPM contents are uninitialized until a DMA,
  // zero-fill or store defines them, so even reads outside any allocated
  // buffer (a corrupted offset) are caught.
  if (cfg.sanitize.poison_on()) poison_.assign(data_.size(), 1);
}

void Spm::poison(std::int64_t a, std::int64_t n) {
  if (poison_.empty()) return;
  check_range(a, n);
  std::fill(poison_.begin() + a, poison_.begin() + a + n, std::uint8_t{1});
}

void Spm::unpoison(std::int64_t a, std::int64_t n) {
  if (poison_.empty()) return;
  check_range(a, n);
  std::fill(poison_.begin() + a, poison_.begin() + a + n, std::uint8_t{0});
}

std::int64_t Spm::first_poisoned(std::int64_t a, std::int64_t n) const {
  if (poison_.empty()) return -1;
  check_range(a, n);
  for (std::int64_t i = a; i < a + n; ++i)
    if (poison_[static_cast<std::size_t>(i)]) return i;
  return -1;
}

void Spm::check_range(std::int64_t a, std::int64_t n) const {
  SWATOP_CHECK(a >= 0 && n >= 0 &&
               a + n <= static_cast<std::int64_t>(data_.size()))
      << "SPM access [" << a << ", " << a + n << ") exceeds capacity "
      << data_.size() << " floats";
}

float Spm::read(std::int64_t a) const {
  check_range(a, 1);
  ++reads_;
  return data_[static_cast<std::size_t>(a)];
}

void Spm::write(std::int64_t a, float v) {
  check_range(a, 1);
  ++writes_;
  if (!poison_.empty()) poison_[static_cast<std::size_t>(a)] = 0;
  data_[static_cast<std::size_t>(a)] = v;
}

std::span<float> Spm::view(std::int64_t a, std::int64_t n) {
  check_range(a, n);
  return {data_.data() + a, static_cast<std::size_t>(n)};
}

std::span<const float> Spm::view(std::int64_t a, std::int64_t n) const {
  check_range(a, n);
  return {data_.data() + a, static_cast<std::size_t>(n)};
}

void Spm::fill(std::int64_t a, std::int64_t n, float v) {
  auto s = view(a, n);
  std::fill(s.begin(), s.end(), v);
  writes_ += n;
  unpoison(a, n);
}

void Spm::clear() {
  std::fill(data_.begin(), data_.end(), 0.0f);
  // A cleared SPM models a fresh core: contents are again uninitialized.
  if (!poison_.empty()) std::fill(poison_.begin(), poison_.end(), 1);
}

}  // namespace swatop::sim
