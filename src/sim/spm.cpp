#include "sim/spm.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop::sim {

Spm::Spm(const SimConfig& cfg) : data_(cfg.spm_floats(), 0.0f) {}

void Spm::check_range(std::int64_t a, std::int64_t n) const {
  SWATOP_CHECK(a >= 0 && n >= 0 &&
               a + n <= static_cast<std::int64_t>(data_.size()))
      << "SPM access [" << a << ", " << a + n << ") exceeds capacity "
      << data_.size() << " floats";
}

float Spm::read(std::int64_t a) const {
  check_range(a, 1);
  ++reads_;
  return data_[static_cast<std::size_t>(a)];
}

void Spm::write(std::int64_t a, float v) {
  check_range(a, 1);
  ++writes_;
  data_[static_cast<std::size_t>(a)] = v;
}

std::span<float> Spm::view(std::int64_t a, std::int64_t n) {
  check_range(a, n);
  return {data_.data() + a, static_cast<std::size_t>(n)};
}

std::span<const float> Spm::view(std::int64_t a, std::int64_t n) const {
  check_range(a, n);
  return {data_.data() + a, static_cast<std::size_t>(n)};
}

void Spm::fill(std::int64_t a, std::int64_t n, float v) {
  auto s = view(a, n);
  std::fill(s.begin(), s.end(), v);
  writes_ += n;
}

void Spm::clear() { std::fill(data_.begin(), data_.end(), 0.0f); }

}  // namespace swatop::sim
