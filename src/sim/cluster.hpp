// The 8x8 CPE cluster of one core group: the CPEs, the register
// communication bus, and the SPMD scratch-pad allocator.
//
// swATOP executes SPMD code: all 64 CPEs run the same schedule, so SPM
// layout is identical everywhere and a single bump allocator (with
// watermarking so the scheduler can reject over-budget strategies) is
// maintained at cluster level.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/cpe.hpp"
#include "sim/reg_comm.hpp"

namespace swatop::sim {

class CpeCluster {
 public:
  explicit CpeCluster(const SimConfig& cfg);

  const SimConfig& config() const { return cfg_; }

  Cpe& at(int rid, int cid);
  const Cpe& at(int rid, int cid) const;
  int num_cpes() const { return cfg_.num_cpes(); }

  RegCommBus& bus() { return bus_; }
  const RegCommBus& bus() const { return bus_; }

  /// Allocate `nfloats` floats of SPM on every CPE (same offset everywhere).
  /// Throws CheckError if the cluster SPM budget is exceeded.
  std::int64_t spm_alloc(std::int64_t nfloats, std::string name = "");

  /// Release all SPM allocations (the storage itself is zeroed lazily by the
  /// runtime between operator executions).
  void spm_reset();

  std::int64_t spm_used() const { return spm_top_; }
  std::int64_t spm_capacity() const { return cfg_.spm_floats(); }
  std::int64_t spm_high_water() const { return spm_high_water_; }

  struct SpmAllocation {
    std::int64_t offset;
    std::int64_t size;
    std::string name;
  };
  const std::vector<SpmAllocation>& spm_allocations() const {
    return spm_allocs_;
  }

 private:
  SimConfig cfg_;
  std::vector<Cpe> cpes_;
  RegCommBus bus_;
  std::int64_t spm_top_ = 0;
  std::int64_t spm_high_water_ = 0;
  std::vector<SpmAllocation> spm_allocs_;
};

}  // namespace swatop::sim
