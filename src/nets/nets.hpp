// Convolution layer tables of the three CNNs the paper evaluates on
// (VGG16, ResNet, YOLO). Shapes are the stride-1 convolutions with inputs
// already padded ('same' padding materialized), so ro = ri - kr + 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ops/conv_common.hpp"

namespace swatop::nets {

struct LayerDef {
  std::string name;
  std::int64_t ni = 0;
  std::int64_t no = 0;
  std::int64_t out_hw = 0;  ///< square output spatial size
  std::int64_t k = 3;       ///< square kernel size
};

std::vector<LayerDef> vgg16();
std::vector<LayerDef> resnet();
std::vector<LayerDef> yolo();

/// Instantiate a layer at a batch size.
ops::ConvShape to_shape(const LayerDef& l, std::int64_t batch);

/// Layers with distinct (ni, no, out_hw, k) only, keeping first names.
std::vector<LayerDef> distinct(const std::vector<LayerDef>& layers);

}  // namespace swatop::nets
