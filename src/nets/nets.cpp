#include "nets/nets.hpp"

namespace swatop::nets {

std::vector<LayerDef> vgg16() {
  return {
      {"conv1_1", 3, 64, 224, 3},   {"conv1_2", 64, 64, 224, 3},
      {"conv2_1", 64, 128, 112, 3}, {"conv2_2", 128, 128, 112, 3},
      {"conv3_1", 128, 256, 56, 3}, {"conv3_2", 256, 256, 56, 3},
      {"conv3_3", 256, 256, 56, 3}, {"conv4_1", 256, 512, 28, 3},
      {"conv4_2", 512, 512, 28, 3}, {"conv4_3", 512, 512, 28, 3},
      {"conv5_1", 512, 512, 14, 3}, {"conv5_2", 512, 512, 14, 3},
      {"conv5_3", 512, 512, 14, 3},
  };
}

std::vector<LayerDef> resnet() {
  // The stride-1 convolutions of ResNet-50's bottleneck stages.
  return {
      {"res2_1x1a", 64, 64, 56, 1},    {"res2_3x3", 64, 64, 56, 3},
      {"res2_1x1b", 64, 256, 56, 1},   {"res2_proj", 256, 64, 56, 1},
      {"res3_1x1a", 256, 128, 28, 1},  {"res3_3x3", 128, 128, 28, 3},
      {"res3_1x1b", 128, 512, 28, 1},  {"res3_proj", 512, 128, 28, 1},
      {"res4_1x1a", 512, 256, 14, 1},  {"res4_3x3", 256, 256, 14, 3},
      {"res4_1x1b", 256, 1024, 14, 1}, {"res4_proj", 1024, 256, 14, 1},
      {"res5_1x1a", 1024, 512, 7, 1},  {"res5_3x3", 512, 512, 7, 3},
      {"res5_1x1b", 512, 2048, 7, 1},  {"res5_proj", 2048, 512, 7, 1},
  };
}

std::vector<LayerDef> yolo() {
  // Darknet-19 backbone (YOLOv2) at 224 input scale.
  return {
      {"conv1", 3, 32, 224, 3},    {"conv2", 32, 64, 112, 3},
      {"conv3", 64, 128, 56, 3},   {"conv4", 128, 64, 56, 1},
      {"conv5", 64, 128, 56, 3},   {"conv6", 128, 256, 28, 3},
      {"conv7", 256, 128, 28, 1},  {"conv8", 128, 256, 28, 3},
      {"conv9", 256, 512, 14, 3},  {"conv10", 512, 256, 14, 1},
      {"conv11", 256, 512, 14, 3}, {"conv12", 512, 256, 14, 1},
      {"conv13", 256, 512, 14, 3}, {"conv14", 512, 1024, 7, 3},
      {"conv15", 1024, 512, 7, 1}, {"conv16", 512, 1024, 7, 3},
  };
}

ops::ConvShape to_shape(const LayerDef& l, std::int64_t batch) {
  ops::ConvShape s;
  s.batch = batch;
  s.ni = l.ni;
  s.no = l.no;
  s.kr = l.k;
  s.kc = l.k;
  s.ri = l.out_hw + l.k - 1;
  s.ci = l.out_hw + l.k - 1;
  return s;
}

std::vector<LayerDef> distinct(const std::vector<LayerDef>& layers) {
  std::vector<LayerDef> out;
  for (const LayerDef& l : layers) {
    bool seen = false;
    for (const LayerDef& o : out)
      seen = seen || (o.ni == l.ni && o.no == l.no && o.out_hw == l.out_hw &&
                      o.k == l.k);
    if (!seen) out.push_back(l);
  }
  return out;
}

}  // namespace swatop::nets
