// The code generator (Sec. 4.7): lowers optimized IR into the C source a
// SW26010 toolchain would compile for the CPE cluster -- athread-style SPMD
// code calling the swDMA / swDMAWait / spm_gemm primitives, with all SPM
// buffers laid out in one coalesced static region.
//
// On this reproduction the emitted source is the deliverable artifact (there
// is no sw5cc to feed it to); tests validate its structure and the runtime
// executes the same IR directly.
#pragma once

#include <string>

#include "ir/node.hpp"

namespace swatop::codegen {

struct EmitOptions {
  std::string kernel_name = "swatop_kernel";
};

/// Emit the full C translation unit for one optimized program.
std::string emit_c(const ir::StmtPtr& root, const EmitOptions& opts = {});

}  // namespace swatop::codegen
