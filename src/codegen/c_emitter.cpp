#include "codegen/c_emitter.hpp"

#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "ir/mutator.hpp"

namespace swatop::codegen {

namespace ir = swatop::ir;

namespace {

std::string emit_expr(const ir::Expr& e) {
  SWATOP_CHECK(e != nullptr);
  std::ostringstream os;
  switch (e->kind) {
    case ir::ExprKind::Const:
      os << e->value << "L";
      break;
    case ir::ExprKind::Var:
      os << e->name;
      break;
    case ir::ExprKind::Add:
      os << "(" << emit_expr(e->a) << " + " << emit_expr(e->b) << ")";
      break;
    case ir::ExprKind::Sub:
      os << "(" << emit_expr(e->a) << " - " << emit_expr(e->b) << ")";
      break;
    case ir::ExprKind::Mul:
      os << "(" << emit_expr(e->a) << " * " << emit_expr(e->b) << ")";
      break;
    case ir::ExprKind::FloorDiv:
      os << "(" << emit_expr(e->a) << " / " << emit_expr(e->b) << ")";
      break;
    case ir::ExprKind::Mod:
      os << "(" << emit_expr(e->a) << " % " << emit_expr(e->b) << ")";
      break;
    case ir::ExprKind::Min:
      os << "SWATOP_MIN(" << emit_expr(e->a) << ", " << emit_expr(e->b)
         << ")";
      break;
    case ir::ExprKind::Max:
      os << "SWATOP_MAX(" << emit_expr(e->a) << ", " << emit_expr(e->b)
         << ")";
      break;
    case ir::ExprKind::Select:
      os << "((" << emit_expr(e->a) << ") ? (" << emit_expr(e->b) << ") : ("
         << emit_expr(e->c) << "))";
      break;
    case ir::ExprKind::Lt:
      os << "(" << emit_expr(e->a) << " < " << emit_expr(e->b) << ")";
      break;
    case ir::ExprKind::Ge:
      os << "(" << emit_expr(e->a) << " >= " << emit_expr(e->b) << ")";
      break;
  }
  return os.str();
}

class Emitter {
 public:
  explicit Emitter(std::ostringstream& os) : os_(os) {}

  void stmt(const ir::StmtPtr& s, int depth) {
    if (s == nullptr) return;
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (s->kind) {
      case ir::StmtKind::Seq:
        for (const ir::StmtPtr& c : s->body) stmt(c, depth);
        return;
      case ir::StmtKind::For:
        os_ << pad << "for (long " << s->var << " = 0; " << s->var << " < "
            << emit_expr(s->extent) << "; ++" << s->var << ") {"
            << (s->prefetched ? "  /* double buffered */" : "") << "\n";
        stmt(s->for_body, depth + 1);
        os_ << pad << "}\n";
        return;
      case ir::StmtKind::If:
        os_ << pad << "if (" << emit_expr(s->cond) << ") {\n";
        stmt(s->then_s, depth + 1);
        if (s->else_s != nullptr &&
            !(s->else_s->kind == ir::StmtKind::Seq &&
              s->else_s->body.empty())) {
          os_ << pad << "} else {\n";
          stmt(s->else_s, depth + 1);
        }
        os_ << pad << "}\n";
        return;
      case ir::StmtKind::SpmAlloc:
        // Allocations were coalesced; emitted in the prologue.
        return;
      case ir::StmtKind::SpmZero:
        os_ << pad << "spm_zero(" << s->buf_name << " + "
            << emit_expr(s->zero_off) << ", " << emit_expr(s->zero_floats)
            << ");\n";
        return;
      case ir::StmtKind::DmaGet:
      case ir::StmtKind::DmaPut: {
        const ir::DmaAttrs& d = s->dma;
        if (s->kind == ir::StmtKind::DmaPut && d.epi.any()) {
          // Fused elementwise tail on the SPM tile before it drains.
          os_ << pad << "spm_epilogue(" << d.spm_buf << " + "
              << emit_expr(d.spm_off) << ", /*tile=*/" << emit_expr(d.rows_p)
              << ", " << emit_expr(d.cols_p) << ",\n"
              << pad << "    /*bias=*/"
              << (d.epi.bias ? "bias + " + emit_expr(d.epi.channel0)
                             : std::string("0"))
              << ", /*channels_on_rows=*/"
              << (d.epi.channels_on_rows ? 1 : 0) << ",\n"
              << pad << "    /*res=*/"
              << (d.epi.residual
                      ? d.epi.res.tensor + " + " + emit_expr(d.epi.res.base)
                      : std::string("0"))
              << ", /*res_stride_r=*/" << d.epi.res.stride_r
              << ", /*res_stride_c=*/" << d.epi.res.stride_c
              << ", /*relu=*/" << (d.epi.relu ? 1 : 0) << ");\n";
        }
        const char* fn =
            s->kind == ir::StmtKind::DmaGet ? "swDMA_get_2d" : "swDMA_put_2d";
        os_ << pad << fn << "(" << d.view.tensor << " + "
            << emit_expr(d.view.base) << ", " << d.spm_buf << " + "
            << emit_expr(d.spm_off) << ",\n"
            << pad << "    /*rows=*/" << emit_expr(d.view.rows)
            << ", /*cols=*/" << emit_expr(d.view.cols) << ", /*stride_r=*/"
            << d.view.stride_r << ", /*stride_c=*/" << d.view.stride_c
            << ",\n"
            << pad << "    /*tile=*/" << emit_expr(d.rows_p) << ", "
            << emit_expr(d.cols_p) << ", /*rows_to_rid=*/"
            << (d.rows_to_rid ? 1 : 0) << ", &reply["
            << emit_expr(d.reply) << "]);\n";
        return;
      }
      case ir::StmtKind::DmaWait:
        os_ << pad << "swDMAWait(&reply[" << emit_expr(s->wait_reply)
            << "], 1);\n";
        return;
      case ir::StmtKind::Gemm: {
        const ir::GemmAttrs& g = s->gemm;
        os_ << pad << "spm_gemm(/*M=*/" << emit_expr(g.M) << ", /*N=*/"
            << emit_expr(g.N) << ", /*K=*/" << emit_expr(g.K) << ", "
            << g.alpha << "f,\n"
            << pad << "    " << g.a_buf << " + " << emit_expr(g.a_off)
            << ", " << g.b_buf << " + " << emit_expr(g.b_off) << ", 1.0f, "
            << g.c_buf << " + " << emit_expr(g.c_off) << ",\n"
            << pad << "    /*variant=*/SWATOP_GEMM_VARIANT_" << g.variant
            << ");\n";
        return;
      }
      case ir::StmtKind::Comment:
        os_ << pad << "/* " << s->text << " */\n";
        return;
    }
    SWATOP_UNREACHABLE("bad stmt kind in emitter");
  }

 private:
  std::ostringstream& os_;
};

}  // namespace

std::string emit_c(const ir::StmtPtr& root, const EmitOptions& opts) {
  std::ostringstream os;
  os << "/* Generated by swATOP -- SW26010 CPE kernel (SPMD, athread). */\n"
     << "#include \"swatop_runtime.h\"\n\n"
     << "#define SWATOP_MIN(a, b) ((a) < (b) ? (a) : (b))\n"
     << "#define SWATOP_MAX(a, b) ((a) > (b) ? (a) : (b))\n\n";

  // Coalesced SPM region: one static buffer per allocation, 32-byte aligned.
  std::vector<const ir::Stmt*> allocs;
  ir::visit(root, [&](const ir::StmtPtr& n) {
    if (n->kind == ir::StmtKind::SpmAlloc) allocs.push_back(n.get());
  });
  std::int64_t total = 0;
  for (const ir::Stmt* a : allocs) {
    const std::int64_t one = align_up(a->buf_floats, 8);
    const std::int64_t sz = a->double_buffered ? 2 * one : one;
    os << "static __thread_local float " << a->buf_name << "[" << sz
       << "] __attribute__((aligned(32)));"
       << (a->double_buffered ? "  /* double buffered */" : "") << "\n";
    total += sz;
  }
  os << "/* coalesced SPM footprint: " << total * 4 << " bytes */\n\n";

  os << "void " << opts.kernel_name
     << "(const swatop_args_t *args) {\n"
     << "  swReplyWord reply[" << ir::kMaxReplySlots << "];\n";
  // Tensor pointers: every tensor mentioned by a DMA node.
  std::vector<std::string> tensors;
  auto add_tensor = [&](const std::string& t) {
    if (t.empty()) return;
    for (const std::string& seen : tensors)
      if (seen == t) return;
    tensors.push_back(t);
  };
  ir::visit(root, [&](const ir::StmtPtr& n) {
    if (n->kind == ir::StmtKind::DmaGet || n->kind == ir::StmtKind::DmaPut) {
      add_tensor(n->dma.view.tensor);
      if (n->dma.epi.bias) add_tensor("bias");
      if (n->dma.epi.residual) add_tensor(n->dma.epi.res.tensor);
    }
  });
  for (const std::string& t : tensors)
    os << "  float *" << t << " = args->" << t << ";\n";
  os << "\n";

  Emitter em(os);
  em.stmt(root, 1);
  os << "}\n";
  return os.str();
}

}  // namespace swatop::codegen
