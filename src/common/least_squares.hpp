// Dense linear least squares via normal equations, sized for the small
// regression problems swATOP solves (fitting the 4-coefficient GEMM cost
// model of Eq. (2) in the paper).
#pragma once

#include <cstddef>
#include <vector>

namespace swatop {

/// Solve min ||X b - y||^2 for b, where X is rows x cols (row-major) and
/// y has `rows` entries. Returns the `cols` coefficients.
///
/// Uses normal equations with partial-pivot Gaussian elimination; fine for
/// the well-conditioned small systems swATOP fits. Throws CheckError on a
/// singular system.
std::vector<double> least_squares(const std::vector<double>& X,
                                  const std::vector<double>& y,
                                  std::size_t rows, std::size_t cols);

/// Solve the square linear system A x = b (A is n x n row-major) with
/// partial-pivot Gaussian elimination.
std::vector<double> solve_linear(std::vector<double> A, std::vector<double> b,
                                 std::size_t n);

}  // namespace swatop
