#include "common/least_squares.hpp"

#include <cmath>

#include "common/check.hpp"

namespace swatop {

std::vector<double> solve_linear(std::vector<double> A, std::vector<double> b,
                                 std::size_t n) {
  SWATOP_CHECK(A.size() == n * n);
  SWATOP_CHECK(b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(A[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(A[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    SWATOP_CHECK(best > 1e-12) << "singular system in solve_linear";
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(A[pivot * n + c], A[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      double f = A[r * n + col] / A[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) A[r * n + c] -= f * A[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= A[ri * n + c] * x[c];
    x[ri] = acc / A[ri * n + ri];
  }
  return x;
}

std::vector<double> least_squares(const std::vector<double>& X,
                                  const std::vector<double>& y,
                                  std::size_t rows, std::size_t cols) {
  SWATOP_CHECK(X.size() == rows * cols);
  SWATOP_CHECK(y.size() == rows);
  SWATOP_CHECK(rows >= cols) << "underdetermined least squares";
  // Normal equations: (X^T X) b = X^T y.
  std::vector<double> XtX(cols * cols, 0.0), Xty(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < cols; ++i) {
      Xty[i] += X[r * cols + i] * y[r];
      for (std::size_t j = 0; j < cols; ++j)
        XtX[i * cols + j] += X[r * cols + i] * X[r * cols + j];
    }
  }
  return solve_linear(std::move(XtX), std::move(Xty), cols);
}

}  // namespace swatop
