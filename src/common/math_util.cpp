#include "common/math_util.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  SWATOP_CHECK(b > 0) << "ceil_div by non-positive " << b;
  SWATOP_CHECK(a >= 0) << "ceil_div of negative " << a;
  return (a + b - 1) / b;
}

std::int64_t align_up(std::int64_t v, std::int64_t align) {
  SWATOP_CHECK(align > 0);
  return ceil_div(v, align) * align;
}

std::int64_t align_down(std::int64_t v, std::int64_t align) {
  SWATOP_CHECK(align > 0);
  SWATOP_CHECK(v >= 0);
  return (v / align) * align;
}

std::vector<std::int64_t> divisors(std::int64_t n) {
  SWATOP_CHECK(n > 0) << "divisors of non-positive " << n;
  std::vector<std::int64_t> lo, hi;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      lo.push_back(d);
      if (d != n / d) hi.push_back(n / d);
    }
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

std::vector<std::int64_t> split_factors(std::int64_t n,
                                        std::int64_t max_factor) {
  std::vector<std::int64_t> fs = divisors(n);
  for (std::int64_t p = 1; p <= n; p *= 2) fs.push_back(p);
  std::sort(fs.begin(), fs.end());
  fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
  if (max_factor > 0) {
    fs.erase(std::remove_if(fs.begin(), fs.end(),
                            [&](std::int64_t f) { return f > max_factor; }),
             fs.end());
  }
  return fs;
}

std::int64_t gcd(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace swatop
