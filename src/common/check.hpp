// Checked-assertion machinery used across swATOP.
//
// SWATOP_CHECK is always on (it guards simulator invariants that, if broken,
// would silently corrupt results -- e.g. SPM overflow, DMA out of bounds).
// Failures throw swatop::CheckError so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace swatop {

/// Thrown when an internal invariant is violated. Carries the failing
/// condition text and source location.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by the simulator sanitizers (SimConfig::sanitize): a lowered
/// schedule performed an operation that is well-defined in the simulator
/// but would be wrong or racy on the real hardware (reading undefined SPM,
/// touching an in-flight DMA range, walking out of the owning tensor).
/// Distinct from CheckError so the fuzzer and tests can tell "the sanitizer
/// caught it" apart from "an internal invariant broke".
class SanitizerError : public CheckError {
 public:
  explicit SanitizerError(const std::string& what) : CheckError(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "swATOP check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw CheckError(os.str());
}

/// Stream-capture helper so SWATOP_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* cond, const char* file, int line)
      : cond_(cond), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(cond_, file_, line_, os_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* cond_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace swatop

#define SWATOP_CHECK(cond)                                       \
  if (cond) {                                                    \
  } else                                                         \
    ::swatop::detail::CheckMessage(#cond, __FILE__, __LINE__)

#define SWATOP_UNREACHABLE(msg)                                            \
  ::swatop::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
