// Small integer-math helpers used by the scheduler, the DMA cost model and
// the boundary-processing passes.
#pragma once

#include <cstdint>
#include <vector>

namespace swatop {

/// ceil(a / b) for positive integers.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// Smallest multiple of `align` that is >= `v`.
std::int64_t align_up(std::int64_t v, std::int64_t align);

/// Largest multiple of `align` that is <= `v`.
std::int64_t align_down(std::int64_t v, std::int64_t align);

/// All positive divisors of n, ascending.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Candidate split factors for a loop of extent `n`: every divisor plus the
/// powers of two up to `n` (non-divisor factors imply boundary processing).
/// Result is deduplicated and ascending, capped at `max_factor` if > 0.
std::vector<std::int64_t> split_factors(std::int64_t n,
                                        std::int64_t max_factor = 0);

/// Greatest common divisor.
std::int64_t gcd(std::int64_t a, std::int64_t b);

/// True if v is a power of two (v > 0).
bool is_pow2(std::int64_t v);

}  // namespace swatop
