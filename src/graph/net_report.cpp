#include "graph/net_report.hpp"

#include <cstdio>
#include <sstream>

namespace swatop::graph {

namespace {

obs::AttributionInput input_from(double elapsed, int groups,
                                 double group_cycles, double sync,
                                 const sim::CgStats& st) {
  obs::AttributionInput in;
  in.elapsed = elapsed;
  in.groups = groups;
  in.group_cycles = group_cycles;
  in.barrier_cycles = sync * static_cast<double>(groups);
  in.compute_cycles = st.compute_cycles;
  in.dma_stall_cycles = st.dma_stall_cycles;
  in.dma_queue_wait_cycles = st.dma_queue_wait_cycles;
  in.gemm_cycles = st.gemm_cycles;
  in.gemm_comm_cycles = st.gemm_comm_cycles;
  in.raw_stall_cycles = st.pipe.raw_stall_cycles;
  return in;
}

}  // namespace

obs::AttributionInput layer_attribution_input(const LayerReport& lr) {
  return input_from(lr.cycles, lr.groups, lr.group_cycles, lr.sync_cycles,
                    lr.stats);
}

obs::Attribution layer_attribution(const LayerReport& lr) {
  return obs::attribute(layer_attribution_input(lr));
}

obs::AttributionInput net_attribution_input(const NetRunResult& r) {
  double group_cycles = 0.0;
  for (const LayerReport& lr : r.layers) group_cycles += lr.group_cycles;
  return input_from(r.cycles, r.groups_used, group_cycles, r.sync_cycles,
                    r.chip_stats);
}

obs::Attribution net_attribution(const NetRunResult& r) {
  return obs::attribute(net_attribution_input(r));
}

obs::RooflineMachine roofline_machine(const sim::SimConfig& machine) {
  return {machine.peak_flops_per_cycle(), machine.dma_bytes_per_cycle()};
}

std::vector<obs::RooflinePoint> net_roofline(const NetRunResult& r,
                                             const sim::SimConfig& machine) {
  const obs::RooflineMachine m = roofline_machine(machine);
  std::vector<obs::RooflinePoint> pts;
  for (const LayerReport& lr : r.layers) {
    if (!lr.conv) continue;
    pts.push_back(obs::roofline_place(
        lr.name, lr.flops,
        lr.stats.dma_bytes_requested + lr.stats.dma_bytes_wasted,
        lr.cycles * static_cast<double>(lr.groups), m));
  }
  pts.push_back(obs::roofline_place(
      "network", r.flops,
      r.chip_stats.dma_bytes_requested + r.chip_stats.dma_bytes_wasted,
      r.cycles * static_cast<double>(r.groups_used), m));
  // With SPM residency active, also place the network at the traffic it
  // would have paid without the elided transfers: the gap between the two
  // points is the arithmetic-intensity gain residency bought.
  if (r.dma_bytes_elided > 0)
    pts.push_back(obs::roofline_place(
        "network+elided", r.flops,
        r.chip_stats.dma_bytes_requested + r.chip_stats.dma_bytes_wasted +
            r.dma_bytes_elided,
        r.cycles * static_cast<double>(r.groups_used), m));
  return pts;
}

std::string net_report(const NetRunResult& r, const sim::SimConfig& machine,
                       const NetReportOptions& o) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "network: %.3e cycles on %d group(s), %.1f GFLOPS (%.1f%% "
                "of peak), %.2f ms/batch\n",
                r.cycles, r.groups_used, r.gflops, 100.0 * r.efficiency,
                r.ms_per_batch);
  os << buf;
  if (r.fusion.convs_fused > 0) {
    std::snprintf(buf, sizeof buf,
                  "fusion:  %d conv(s) fused (bias %d, add %d, relu %d, pad "
                  "%d), %d node(s) removed\n",
                  r.fusion.convs_fused, r.fusion.bias_folded,
                  r.fusion.add_folded, r.fusion.relu_folded,
                  r.fusion.pad_folded, r.fusion.nodes_removed());
    os << buf;
  }
  if (r.resident_tensors > 0 || r.dma_bytes_elided > 0) {
    std::snprintf(buf, sizeof buf,
                  "residency: %lld tensor(s) pinned on-chip, %.1f MB DMA "
                  "elided\n",
                  static_cast<long long>(r.resident_tensors),
                  static_cast<double>(r.dma_bytes_elided) / (1024.0 * 1024.0));
    os << buf;
  }

  if (o.layers) {
    std::snprintf(buf, sizeof buf, "\n  %-14s %-9s %12s %6s %7s %6s %6s %6s  %s\n",
                  "layer", "kind", "cycles", "%net", "GFLOPS", "kern%",
                  "dma%", "idle%", "bound by");
    os << buf;
    const obs::RooflineMachine m = roofline_machine(machine);
    for (const LayerReport& lr : r.layers) {
      const obs::Attribution a = layer_attribution(lr);
      const double kern = a.share(obs::AttrCat::KernelIssue) +
                          a.share(obs::AttrCat::KernelRawStall) +
                          a.share(obs::AttrCat::RegComm) +
                          a.share(obs::AttrCat::OtherCompute);
      const double dma = a.share(obs::AttrCat::DmaQueueWait) +
                         a.share(obs::AttrCat::DmaWait);
      const double idle = a.share(obs::AttrCat::Barrier) +
                          a.share(obs::AttrCat::Imbalance);
      const char* bound = "-";
      if (lr.conv) {
        const obs::RooflinePoint p = obs::roofline_place(
            lr.name, lr.flops,
            lr.stats.dma_bytes_requested + lr.stats.dma_bytes_wasted,
            lr.cycles * static_cast<double>(lr.groups), m);
        bound = p.binding();
      }
      std::snprintf(buf, sizeof buf,
                    "  %-14s %-9s %12.0f %5.1f%% %7.1f %5.1f%% %5.1f%% "
                    "%5.1f%%  %s%s%s\n",
                    lr.name.c_str(), lr.kind.c_str(), lr.cycles,
                    r.cycles > 0.0 ? 100.0 * lr.cycles / r.cycles : 0.0,
                    lr.gflops, 100.0 * kern, 100.0 * dma, 100.0 * idle,
                    bound, lr.fused ? " (fused)" : "",
                    lr.from_cache ? " (cached)" : "");
      os << buf;
    }
  }

  if (o.attribution) {
    os << '\n' << obs::attribution_report(net_attribution(r));
  }

  if (o.roofline) {
    os << '\n'
       << obs::roofline_report(net_roofline(r, machine),
                               roofline_machine(machine));
  }

  if (o.journal != nullptr) {
    os << '\n' << tune::journal_summary(*o.journal);
  }
  return os.str();
}

std::string net_report_json(const NetRunResult& r,
                            const sim::SimConfig& machine,
                            const NetReportOptions& o) {
  std::ostringstream os;
  os << "{\"cycles\": " << r.cycles << ", \"sync_cycles\": " << r.sync_cycles
     << ", \"groups\": " << r.groups_used << ", \"batch\": " << r.batch
     << ", \"flops\": " << r.flops << ", \"gflops\": " << r.gflops
     << ", \"efficiency\": " << r.efficiency
     << ", \"ms_per_batch\": " << r.ms_per_batch
     << ", \"fusion\": {\"convs_fused\": " << r.fusion.convs_fused
     << ", \"bias_folded\": " << r.fusion.bias_folded
     << ", \"add_folded\": " << r.fusion.add_folded
     << ", \"relu_folded\": " << r.fusion.relu_folded
     << ", \"pad_folded\": " << r.fusion.pad_folded
     << ", \"nodes_removed\": " << r.fusion.nodes_removed() << "}"
     << ", \"resident_tensors\": " << r.resident_tensors
     << ", \"dma_bytes_elided\": " << r.dma_bytes_elided;
  if (o.layers) {
    os << ", \"layers\": [";
    bool first = true;
    for (const LayerReport& lr : r.layers) {
      if (!first) os << ", ";
      first = false;
      os << "{\"name\": \"" << lr.name << "\", \"kind\": \"" << lr.kind
         << "\", \"conv\": " << (lr.conv ? "true" : "false")
         << ", \"fused\": " << (lr.fused ? "true" : "false")
         << ", \"from_cache\": " << (lr.from_cache ? "true" : "false")
         << ", \"dma_bytes_elided\": " << lr.dma_bytes_elided
         << ", \"cycles\": " << lr.cycles << ", \"flops\": " << lr.flops
         << ", \"gflops\": " << lr.gflops << ", \"attribution\": "
         << obs::attribution_json(layer_attribution(lr)) << "}";
    }
    os << "]";
  }
  if (o.attribution)
    os << ", \"attribution\": " << obs::attribution_json(net_attribution(r));
  if (o.roofline)
    os << ", \"roofline\": "
       << obs::roofline_json(net_roofline(r, machine),
                             roofline_machine(machine));
  if (o.journal != nullptr)
    os << ", \"journal\": " << tune::journal_summary_json(*o.journal);
  os << "}";
  return os.str();
}

}  // namespace swatop::graph
