// Network-level observability rendering: per-layer and whole-network cycle
// attribution (obs/attribution.hpp over the engine-captured per-step
// statistics), roofline placement of every convolution layer, and the
// combined text/JSON report swatop_report and `run_network --full-report`
// print.
//
// The attribution basis of a step is its chip-level cycles times the core
// groups that ran it, so the per-layer attributions sum exactly to
// NetRunResult::cycles * groups -- the invariant tests/test_obs asserts.
#pragma once

#include <string>
#include <vector>

#include "graph/engine.hpp"
#include "obs/attribution.hpp"
#include "obs/roofline.hpp"
#include "tune/journal.hpp"

namespace swatop::graph {

/// Attribution input for one layer step (basis = step cycles x groups).
obs::AttributionInput layer_attribution_input(const LayerReport& lr);
obs::Attribution layer_attribution(const LayerReport& lr);

/// Whole-network attribution (basis = net cycles x groups used).
obs::AttributionInput net_attribution_input(const NetRunResult& r);
obs::Attribution net_attribution(const NetRunResult& r);

/// The simulated machine's two roofs, from its configuration.
obs::RooflineMachine roofline_machine(const sim::SimConfig& machine);

/// One roofline point per convolution layer plus a final "network" total.
/// Cycle bases are chip cycles x groups (the roofs are per core group).
std::vector<obs::RooflinePoint> net_roofline(const NetRunResult& r,
                                             const sim::SimConfig& machine);

struct NetReportOptions {
  bool layers = true;       ///< per-layer breakdown with attribution shares
  bool attribution = true;  ///< whole-network attribution table
  bool roofline = true;     ///< per-layer + network roofline table
  /// When set, the journal summary is appended (text) / embedded (JSON).
  const tune::Journal* journal = nullptr;
};

/// The full human-readable report.
std::string net_report(const NetRunResult& r, const sim::SimConfig& machine,
                       const NetReportOptions& o = {});

/// The same content as one JSON object.
std::string net_report_json(const NetRunResult& r,
                            const sim::SimConfig& machine,
                            const NetReportOptions& o = {});

}  // namespace swatop::graph
