#include "graph/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "graph/reference.hpp"
#include "obs/recorder.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/reference.hpp"
#include "ops/winograd.hpp"
#include "sim/chip.hpp"

namespace swatop::graph {

const char* conv_method_name(ConvMethod m) {
  switch (m) {
    case ConvMethod::Auto: return "auto";
    case ConvMethod::Implicit: return "implicit";
    case ConvMethod::Explicit: return "explicit";
    case ConvMethod::Winograd: return "winograd";
  }
  SWATOP_UNREACHABLE("bad conv method");
}

namespace {

/// The MPE (management core) runs the elementwise passes: one core with
/// 256-bit vectors, so a handful of flops per cycle -- these passes are
/// bandwidth-bound anyway.
constexpr double kMpeFlopsPerCycle = 4.0;

/// Resolve the per-layer convolution design. Winograd is opt-in and falls
/// back to the Auto rule on layers it cannot run (non-3x3 kernels, input
/// channels not a multiple of the vector width granularity).
ConvMethod resolve_method(ConvMethod req, const ops::ConvShape& s) {
  if (req == ConvMethod::Winograd && ops::WinogradPlan::applicable(s) &&
      s.ni % 8 == 0)
    return ConvMethod::Winograd;
  if (req == ConvMethod::Implicit) {
    SWATOP_CHECK(ops::ImplicitConvOp::applicable(s))
        << "implicit CONV forced but not applicable to " << s.to_string()
        << " (needs ni >= 32)";
    return ConvMethod::Implicit;
  }
  if (req == ConvMethod::Explicit) return ConvMethod::Explicit;
  return ops::ImplicitConvOp::applicable(s) ? ConvMethod::Implicit
                                            : ConvMethod::Explicit;
}

/// One tuned convolution kernel, shared by every node/group with the same
/// (method, shape, sub-batch). The operator definition is kept alive with
/// the handle.
struct TunedConv {
  ConvMethod method = ConvMethod::Implicit;
  std::unique_ptr<dsl::OperatorDef> op;
  OptimizedOperator handle;
};

std::string shape_key(ConvMethod m, const ops::ConvShape& s,
                      const dsl::EpilogueSpec& epi = {}) {
  std::string key = std::string(conv_method_name(m)) + "|" + s.to_string();
  if (epi.any()) key += "|epi[" + epi.tag() + "]";
  return key;
}

/// Price an MPE-side elementwise pass: streaming DMA traffic (Eq. (1)
/// accounting, contiguous floats) plus scalar compute on the MPE.
void charge_mpe_pass(sim::CoreGroup& cg, std::int64_t read_floats,
                     std::int64_t write_floats, double ops) {
  const sim::SimConfig& cfg = cg.config();
  const std::int64_t txn =
      static_cast<std::int64_t>(cfg.dram_transaction_bytes);
  sim::DmaCost c;
  c.latency_cycles = cfg.dma_latency_cycles;
  c.bytes_requested = (read_floats + write_floats) * 4;
  c.transactions =
      ceil_div(read_floats * 4, txn) + ceil_div(write_floats * 4, txn);
  c.bytes_wasted = c.transactions * txn - c.bytes_requested;
  if (c.bytes_wasted < 0) c.bytes_wasted = 0;
  c.transfer_cycles =
      static_cast<double>(c.transactions * txn) / cfg.dma_bytes_per_cycle();
  cg.charge_dma_cost_sync(c);
  cg.advance_compute(ops / kMpeFlopsPerCycle);
}

/// Per-core-group run state: its sub-batch, its arena plan, and its
/// long-lived weight allocations (parameters live outside the activation
/// arena -- a deployment keeps them resident for the network's lifetime).
struct GroupState {
  std::int64_t batch = 0;
  std::int64_t batch0 = 0;  ///< first logical batch index of this group
  MemoryPlan plan;
  sim::MainMemory::Addr arena = 0;
  std::unordered_map<std::string, sim::MainMemory::Addr> waddr;
  std::unordered_map<std::string, sim::MainMemory::Addr> uaddr;  // winograd
  std::unordered_map<std::string, sim::MainMemory::Addr> baddr;  // fused bias
  sim::CgStats agg;
};

}  // namespace

GraphEngine::GraphEngine(SwatopConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.cache.enabled = true;
  optimizer_ = std::make_unique<Optimizer>(cfg_);
}

NetRunResult GraphEngine::run(const Graph& g, std::int64_t batch,
                              const NetOptions& opts) {
  SWATOP_CHECK(batch >= 1) << "GraphEngine::run batch " << batch;
  SWATOP_CHECK(opts.groups >= 1 && opts.groups <= 4)
      << "SW26010 has 4 core groups; asked for " << opts.groups;
  g.validate_or_throw();
  const bool functional = opts.mode == sim::ExecMode::Functional;

  NetRunResult res;

  // Epilogue fusion: rewrite the graph before tuning. Only layers the
  // implicit-GEMM design applies to are fused (the in-kernel epilogue is a
  // store-path feature of that lowering); the reference check below always
  // runs on the *original* graph, so fusion is verified end-to-end.
  Graph fused_graph("");
  const Graph* gp = &g;
  if (opts.fusion) {
    fused_graph = fuse_epilogues(g, &res.fusion, [&](const Node& n) {
      return resolve_method(opts.method, g.conv_shape(n, batch)) ==
             ConvMethod::Implicit;
    });
    gp = &fused_graph;
  }
  const Graph& fg = *gp;

  const std::vector<int> order = fg.topo_order();
  const auto shapes = fg.shapes();
  const int steps = static_cast<int>(order.size());

  res.batch = batch;
  const int G = static_cast<int>(
      std::min<std::int64_t>(opts.groups, batch));
  res.groups_used = G;

  std::vector<GroupState> gs(static_cast<std::size_t>(G));
  {
    std::int64_t done = 0;
    for (int gi = 0; gi < G; ++gi) {
      gs[gi].batch = batch / G + (gi < batch % G ? 1 : 0);
      gs[gi].batch0 = done;
      done += gs[gi].batch;
    }
  }

  // Inter-layer SPM residency: pin qualifying tensors on-chip between
  // adjacent steps. Conv-adjacent tensors must fit half a core group's
  // aggregate SPM (the other half stays with the kernels' tile buffers)
  // at the largest sub-batch, and only implicit-GEMM layers qualify --
  // their get/put paths are what the elision models.
  ResidencyPlan rplan;
  if (opts.residency) {
    ResidencyOptions ro;
    ro.batch = gs[0].batch;
    ro.conv_budget_floats = cfg_.machine.spm_floats() *
                            cfg_.machine.mesh_rows *
                            cfg_.machine.mesh_cols / 2;
    ro.conv_ok = [&](const Node& n) {
      return resolve_method(opts.method, fg.conv_shape(n, gs[0].batch)) ==
             ConvMethod::Implicit;
    };
    rplan = plan_residency(fg, ro);
  }
  res.resident_tensors = static_cast<std::int64_t>(rplan.resident.size());

  // --- Tune every distinct (method, shape, sub-batch) exactly once, warm
  // through the schedule cache. The Optimizer persists across run() calls,
  // so shapes this engine tuned for *any* earlier graph or batch are cache
  // hits here. ---
  Optimizer& optimizer = *optimizer_;
  std::unordered_map<std::string, TunedConv> tuned;
  const auto tune_t0 = std::chrono::steady_clock::now();
  for (int idx : order) {
    const Node& n = fg.nodes()[static_cast<std::size_t>(idx)];
    if (n.kind != NodeKind::Conv) continue;
    for (const GroupState& st : gs) {
      const ops::ConvShape s = fg.conv_shape(n, st.batch);
      const ConvMethod m = resolve_method(opts.method, s);
      SWATOP_CHECK(!n.epilogue.any() || m == ConvMethod::Implicit)
          << "fused conv '" << n.name << "' resolved to "
          << conv_method_name(m);
      const std::string key = shape_key(m, s, n.epilogue);
      if (tuned.count(key)) continue;
      TunedConv tc;
      tc.method = m;
      switch (m) {
        case ConvMethod::Implicit:
          tc.op = std::make_unique<ops::ImplicitConvOp>(s, n.epilogue);
          break;
        case ConvMethod::Explicit:
          tc.op = std::make_unique<ops::ExplicitConvOp>(s);
          break;
        case ConvMethod::Winograd:
          tc.op = std::make_unique<ops::WinogradGemmOp>(s);
          break;
        case ConvMethod::Auto: SWATOP_UNREACHABLE("unresolved method");
      }
      tc.handle = optimizer.optimize(*tc.op);
      if (tc.handle.from_cache) ++res.cache_hits;
      ++res.shapes_tuned;
      tuned.emplace(key, std::move(tc));
    }
  }
  res.tune_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    tune_t0)
          .count();
  if (const tune::ReplayExecutor* rx = optimizer.replay_executor()) {
    // The executor is shared across run() calls; report this run's share.
    const tune::ReplayStats rs = rx->stats();
    res.replay_hits = rs.hits - replay_hits_seen_;
    res.replay_misses = rs.misses - replay_misses_seen_;
    res.replay_fallbacks = rs.fallbacks - replay_fallbacks_seen_;
    replay_hits_seen_ = rs.hits;
    replay_misses_seen_ = rs.misses;
    replay_fallbacks_seen_ = rs.fallbacks;
  }

  // --- Memory plan + per-group setup (arena, weights, input fill). ---
  sim::Chip chip(cfg_.machine, G);
  for (int gi = 0; gi < G; ++gi) {
    GroupState& st = gs[static_cast<std::size_t>(gi)];
    std::vector<Transient> tr;
    for (int stp = 0; stp < steps; ++stp) {
      const Node& n = fg.nodes()[static_cast<std::size_t>(order[stp])];
      if (n.kind != NodeKind::Conv) continue;
      const ops::ConvShape s = fg.conv_shape(n, st.batch);
      const ConvMethod m = resolve_method(opts.method, s);
      if (m == ConvMethod::Explicit) {
        const std::int64_t K = s.ni * s.kr * s.kc;
        const std::int64_t N = s.batch * s.ro() * s.co();
        tr.push_back({n.name + ":dcol", K * N, stp});
        tr.push_back({n.name + ":outmat", s.no * N, stp});
      } else if (m == ConvMethod::Winograd) {
        const ops::WinogradPlan p(s);
        tr.push_back({n.name + ":V", p.T() * s.ni * p.P, stp});
        tr.push_back({n.name + ":Mt", p.T() * s.no * p.P, stp});
      }
    }
    st.plan = plan_memory(fg, st.batch, tr);
    res.planned_peak_floats += st.plan.peak_floats;
    res.naive_floats += st.plan.naive_floats;

    sim::CoreGroup& cg = chip.cg(gi);
    if (!functional) cg.mem().set_materialize(false);
    st.arena = cg.mem().alloc(st.plan.peak_floats, "net:arena");

    for (int idx : order) {
      const Node& n = fg.nodes()[static_cast<std::size_t>(idx)];
      if (n.kind != NodeKind::Conv) continue;
      const ops::ConvShape s = fg.conv_shape(n, st.batch);
      const ConvMethod m = resolve_method(opts.method, s);
      const std::int64_t Ni = s.ni, No = s.no;
      const std::int64_t K = Ni * s.kr * s.kc;
      if (m == ConvMethod::Explicit) {
        st.waddr[n.name] = cg.mem().alloc(No * K, n.name + ":wmat");
      } else {
        st.waddr[n.name] = cg.mem().alloc(K * No, n.name + ":w");
        if (m == ConvMethod::Winograd) {
          const ops::WinogradPlan p(s);
          st.uaddr[n.name] = cg.mem().alloc(p.T() * No * Ni, n.name + ":U");
        }
      }
      if (n.epilogue.bias) {
        st.baddr[n.name] = cg.mem().alloc(No, n.name + ":bvec");
        // Seeded by the *folded Bias node's* name: identical to the bias
        // vector the unfused graph (and the host reference) applies.
        if (functional)
          cg.mem().copy_in(st.baddr.at(n.name), make_bias(n.bias_name, No));
      }
      if (!functional) continue;
      const std::vector<float> w = make_weights(n.name, s);
      const TunedConv& tc = tuned.at(shape_key(m, s, n.epilogue));
      if (m == ConvMethod::Implicit) {
        // Written in the tuned strategy's weight layout.
        const dsl::Strategy& str = tc.handle.candidate.strategy;
        const bool ni_major =
            str.has_choice("wlayout") && str.choice("wlayout") == "ni_major";
        auto v = cg.mem().view(st.waddr.at(n.name), K * No);
        for (std::int64_t kr = 0; kr < s.kr; ++kr)
          for (std::int64_t kc = 0; kc < s.kc; ++kc)
            for (std::int64_t ni = 0; ni < Ni; ++ni)
              for (std::int64_t no = 0; no < No; ++no) {
                const std::int64_t base = (kr * s.kc + kc) * Ni * No;
                const std::int64_t off =
                    ni_major ? base + no * Ni + ni : base + ni * No + no;
                v[static_cast<std::size_t>(off)] =
                    w[static_cast<std::size_t>(base + ni * No + no)];
              }
      } else if (m == ConvMethod::Explicit) {
        // wmat: column-major No x K, from canonical [kk][no].
        auto v = cg.mem().view(st.waddr.at(n.name), No * K);
        for (std::int64_t kk = 0; kk < K; ++kk)
          for (std::int64_t no = 0; no < No; ++no)
            v[static_cast<std::size_t>(no + kk * No)] =
                w[static_cast<std::size_t>(kk * No + no)];
      } else {
        cg.mem().copy_in(st.waddr.at(n.name), w);
        ops::WinogradGemmOp::transform_filter(
            cg, st.waddr.at(n.name), st.uaddr.at(n.name),
            ops::WinogradPlan(s));
      }
    }

    if (functional) {
      for (const auto& [t, shape] : fg.inputs()) {
        auto v = cg.mem().view(st.arena + st.plan.entries.at(t).offset,
                               shape.floats(st.batch));
        fill_input(t, shape, st.batch, st.batch0, v.data());
      }
    }
  }

  std::unique_ptr<obs::Recorder> rec;
  if (cfg_.observability.enabled)
    rec = std::make_unique<obs::Recorder>(cfg_.observability);

  // --- Execute the schedule: tensors flow through the arena, the chip
  // timeline advances by the slowest group per step plus the NoC barrier
  // per multi-group convolution launch. ---
  double net_time = 0.0;
  const bool multi = G > 1;
  for (int stp = 0; stp < steps; ++stp) {
    const Node& n = fg.nodes()[static_cast<std::size_t>(order[stp])];
    double step_max = 0.0;
    std::int64_t step_flops = 0;
    LayerReport lr;
    lr.name = n.name;
    lr.kind = node_kind_name(n.kind);
    lr.groups = G;
    for (int gi = 0; gi < G; ++gi) {
      sim::CoreGroup& cg = chip.cg(gi);
      GroupState& st = gs[static_cast<std::size_t>(gi)];
      auto addr = [&](const std::string& t) {
        return st.arena + st.plan.entries.at(t).offset;
      };
      double cycles = 0.0;
      if (n.kind == NodeKind::Conv) {
        const ops::ConvShape s = fg.conv_shape(n, st.batch);
        const ConvMethod m = resolve_method(opts.method, s);
        const TunedConv& tc = tuned.at(shape_key(m, s, n.epilogue));
        if (gi == 0) {
          lr.conv = true;
          lr.fused = n.epilogue.any();
          lr.kind = conv_method_name(m);
          lr.from_cache = tc.handle.from_cache;
          lr.shape = s;
        }
        step_flops += s.flops();
        const sim::MainMemory::Addr in = addr(n.inputs[0]);
        const sim::MainMemory::Addr out = addr(n.output);
        dsl::BoundTensors bt;
        if (m == ConvMethod::Implicit) {
          if (functional)
            cg.mem().fill(out, shapes.at(n.output).floats(st.batch), 0.0f);
          bt = {{"in", in}, {"w", st.waddr.at(n.name)}, {"out", out}};
          if (n.epilogue.bias) bt["bias"] = st.baddr.at(n.name);
          if (n.epilogue.residual) bt["res"] = addr(n.inputs[1]);
        } else if (m == ConvMethod::Explicit) {
          const std::int64_t N = s.batch * s.ro() * s.co();
          const sim::MainMemory::Addr dcol = addr(n.name + ":dcol");
          const sim::MainMemory::Addr outmat = addr(n.name + ":outmat");
          if (functional) {
            ops::ExplicitConvOp::im2col(cg, in, dcol, s);
            cg.mem().fill(outmat, s.no * N, 0.0f);
          }
          bt = {{"wmat", st.waddr.at(n.name)},
                {"dcol", dcol},
                {"outmat", outmat}};
        } else {
          const ops::WinogradPlan p(s);
          const sim::MainMemory::Addr V = addr(n.name + ":V");
          const sim::MainMemory::Addr Mt = addr(n.name + ":Mt");
          if (functional) {
            ops::WinogradGemmOp::transform_input(cg, in, V, p);
            cg.mem().fill(Mt, p.T() * s.no * p.P, 0.0f);
          }
          bt = {{"U", st.uaddr.at(n.name)}, {"V", V}, {"Mt", Mt}};
        }
        // Inter-layer residency: operands the plan pinned on-chip, by the
        // operator's own tensor names (implicit GEMM only -- the planner
        // gates conv edges on the method).
        rt::ResidentSet rs;
        if (m == ConvMethod::Implicit) {
          if (rplan.resident.count(n.inputs[0])) rs.tensors.insert("in");
          if (rplan.resident.count(n.output)) rs.tensors.insert("out");
          if (n.epilogue.residual && rplan.resident.count(n.inputs[1]))
            rs.tensors.insert("res");
        }
        // Interpreter::run resets the CG clock and statistics, so the
        // node's cycles are cg.now() afterwards and the pre/post charges
        // must come after the run.
        const rt::RunResult rr =
            tc.handle.run(cg, bt, opts.mode, rs.empty() ? nullptr : &rs);
        lr.dma_bytes_elided += rr.bytes_elided;
        if (m == ConvMethod::Explicit) {
          if (functional) {
            const std::int64_t Ro = s.ro(), Co = s.co(), B = s.batch;
            const std::int64_t No = s.no;
            auto om = cg.mem().view(addr(n.name + ":outmat"),
                                    No * B * Ro * Co);
            auto ov = cg.mem().view(out, Ro * No * Co * B);
            for (std::int64_t b = 0; b < B; ++b)
              for (std::int64_t ro = 0; ro < Ro; ++ro)
                for (std::int64_t co = 0; co < Co; ++co) {
                  const std::int64_t j = (b * Ro + ro) * Co + co;
                  for (std::int64_t no = 0; no < No; ++no)
                    ov[static_cast<std::size_t>(((ro * No + no) * Co + co) *
                                                    B +
                                                b)] =
                        om[static_cast<std::size_t>(no + j * No)];
                }
          }
          ops::ExplicitConvOp::charge_pre_post(cg, s);
        } else if (m == ConvMethod::Winograd) {
          const ops::WinogradPlan p(s);
          if (functional)
            ops::WinogradGemmOp::inverse_transform(cg, addr(n.name + ":Mt"),
                                                   out, p);
          ops::WinogradGemmOp::charge_pre_post(cg, p);
        }
        if (n.epilogue.out_pad > 0) {
          // The fused kernel writes only the interior; the zero border is
          // written once per run (an absorbed Pad's remaining cost).
          const TensorShape& os2 = shapes.at(n.output);
          const std::int64_t raw_hw = os2.hw - 2 * n.epilogue.out_pad;
          const std::int64_t border =
              (os2.hw * os2.hw - raw_hw * raw_hw) * os2.channels * st.batch;
          charge_mpe_pass(cg, 0, border, 0.0);
        }
        cycles = cg.now();
      } else {
        const double t0 = cg.now();
        const TensorShape& is = shapes.at(n.inputs[0]);
        const TensorShape& os = shapes.at(n.output);
        const std::int64_t b = st.batch;
        const std::int64_t nin = is.floats(b), nout = os.floats(b);
        // SPM residency: a resident operand's reload and a resident
        // output's store never touch DRAM -- the tiles stay on-chip
        // between this pass and its neighbour.
        std::int64_t elide_read = 0, elide_write = 0;
        for (const std::string& t : n.inputs)
          if (rplan.resident.count(t)) elide_read += shapes.at(t).floats(b);
        if (rplan.resident.count(n.output)) elide_write = nout;
        lr.dma_bytes_elided += (elide_read + elide_write) * 4;
        auto charge = [&](std::int64_t read_f, std::int64_t write_f,
                          double mops) {
          charge_mpe_pass(cg, read_f - elide_read, write_f - elide_write,
                          mops);
        };
        switch (n.kind) {
          case NodeKind::Bias: {
            if (functional) {
              auto src = cg.mem().view(addr(n.inputs[0]), nin);
              auto dst = cg.mem().view(addr(n.output), nout);
              std::copy(src.begin(), src.end(), dst.begin());
              const std::vector<float> bias = make_bias(n.name, os.channels);
              ops::reference_bias_add(dst.data(), bias.data(), os.hw,
                                      os.channels, os.hw, b);
            }
            charge(nin, nout, static_cast<double>(nout));
            break;
          }
          case NodeKind::Relu: {
            if (functional) {
              auto src = cg.mem().view(addr(n.inputs[0]), nin);
              auto dst = cg.mem().view(addr(n.output), nout);
              std::copy(src.begin(), src.end(), dst.begin());
              ops::reference_relu(dst.data(), nout);
            }
            charge(nin, nout, static_cast<double>(nout));
            break;
          }
          case NodeKind::MaxPool2x2: {
            if (functional) {
              auto src = cg.mem().view(addr(n.inputs[0]), nin);
              auto dst = cg.mem().view(addr(n.output), nout);
              ops::reference_maxpool2x2(src.data(), dst.data(), is.hw,
                                        is.channels, is.hw, b);
            }
            charge(nin, nout, 3.0 * static_cast<double>(nout));
            break;
          }
          case NodeKind::Pad: {
            if (functional) {
              auto src = cg.mem().view(addr(n.inputs[0]), nin);
              auto dst = cg.mem().view(addr(n.output), nout);
              ops::reference_pad(src.data(), dst.data(), is.hw, is.channels,
                                 is.hw, b, n.pad);
            }
            charge(nin, nout, 0.0);
            break;
          }
          case NodeKind::Add: {
            if (functional) {
              auto a = cg.mem().view(addr(n.inputs[0]), nin);
              auto b2 = cg.mem().view(addr(n.inputs[1]), nin);
              auto dst = cg.mem().view(addr(n.output), nout);
              ops::reference_eltwise_add(a.data(), b2.data(), dst.data(),
                                         nout);
            }
            charge(2 * nin, nout, static_cast<double>(nout));
            break;
          }
          case NodeKind::Conv: SWATOP_UNREACHABLE("handled above");
        }
        cycles = cg.now() - t0;
      }
      lr.stats.add(cg.stats());
      lr.group_cycles += cycles;
      st.agg.add(cg.stats());
      cg.stats() = sim::CgStats{};
      if (rec && rec->tracing()) {
        obs::TraceEvent ev;
        ev.name = n.name;
        ev.cat = n.kind == NodeKind::Conv ? obs::Category::Compute
                                          : obs::Category::Run;
        ev.tid = obs::Track::kNetCg0 + gi;
        ev.ts = net_time;
        ev.dur = cycles;
        ev.arg_name[0] = "sub_batch";
        ev.arg[0] = st.batch;
        rec->trace_event(std::move(ev));
      }
      step_max = std::max(step_max, cycles);
    }
    const double sync =
        (multi && n.kind == NodeKind::Conv) ? chip.sync_cycles() : 0.0;
    res.sync_cycles += sync;
    net_time += step_max + sync;
    res.flops += step_flops;
    lr.cycles = step_max + sync;
    lr.sync_cycles = sync;
    lr.flops = step_flops;
    if (lr.cycles > 0.0 && step_flops > 0)
      lr.gflops = static_cast<double>(step_flops) / lr.cycles *
                  cfg_.machine.clock_ghz;
    res.dma_bytes_elided += lr.dma_bytes_elided;
    res.layers.push_back(std::move(lr));
  }
  res.cycles = net_time;
  for (const GroupState& st : gs) res.chip_stats.add(st.agg);

  if (res.cycles > 0.0)
    res.gflops = static_cast<double>(res.flops) / res.cycles *
                 cfg_.machine.clock_ghz;
  res.ms_per_batch = res.cycles / (cfg_.machine.clock_ghz * 1e6);
  res.ms_per_image = res.ms_per_batch / static_cast<double>(batch);
  const double peak = cfg_.machine.peak_gflops() * static_cast<double>(G);
  if (peak > 0.0) res.efficiency = res.gflops / peak;

  // --- Functional check against the naive whole-net reference. ---
  if (functional && opts.check) {
    res.checked = true;
    const auto ref = reference_forward(g, batch);
    double max_rel = 0.0;
    for (const std::string& t : g.outputs()) {
      const TensorShape& shp = shapes.at(t);
      const std::vector<float>& rv = ref.at(t);
      double ref_max = 0.0;
      for (float x : rv) ref_max = std::max(ref_max, std::fabs(double(x)));
      double diff = 0.0;
      for (int gi = 0; gi < G; ++gi) {
        const GroupState& st = gs[static_cast<std::size_t>(gi)];
        auto v = chip.cg(gi).mem().view(
            st.arena + st.plan.entries.at(t).offset, shp.floats(st.batch));
        const std::int64_t pos_count = shp.hw * shp.hw * shp.channels;
        for (std::int64_t pos = 0; pos < pos_count; ++pos)
          for (std::int64_t b = 0; b < st.batch; ++b)
            diff = std::max(
                diff, std::fabs(double(
                          v[static_cast<std::size_t>(pos * st.batch + b)] -
                          rv[static_cast<std::size_t>(pos * batch +
                                                      st.batch0 + b)])));
      }
      max_rel = std::max(max_rel, diff / (ref_max + 1e-30));
    }
    res.max_rel_err = max_rel;
  }

  if (rec) {
    obs::Counters& c = rec->counters();
    c.total_cycles = res.cycles;
    c.compute_cycles = res.chip_stats.compute_cycles;
    c.gemm_cycles = res.chip_stats.gemm_cycles;
    c.gemm_comm_cycles = res.chip_stats.gemm_comm_cycles;
    c.pipe = res.chip_stats.pipe;
    c.flops = res.chip_stats.flops;
    c.gemm_calls = res.chip_stats.gemm_calls;
    c.dma.stall_cycles = res.chip_stats.dma_stall_cycles;
    c.dma.queue_wait_cycles = res.chip_stats.dma_queue_wait_cycles;
    c.dma.bytes_requested = res.chip_stats.dma_bytes_requested;
    c.dma.bytes_wasted = res.chip_stats.dma_bytes_wasted;
    c.dma.bytes_elided = res.dma_bytes_elided;
    c.dma.transactions = res.chip_stats.dma_transactions;
    c.dma.transfers = res.chip_stats.dma_transfers;
    c.arena_planned_bytes = res.planned_peak_floats * 4;
    c.arena_naive_bytes = res.naive_floats * 4;
    rec->tune().seconds = res.tune_seconds;
    rec->tune().cache_hits = res.cache_hits;
    rec->tune().cache_misses = res.shapes_tuned - res.cache_hits;
    rec->tune().replay_hits = res.replay_hits;
    rec->tune().replay_misses = res.replay_misses;
    rec->tune().replay_fallbacks = res.replay_fallbacks;
    res.profile = obs::Profile::snapshot(*rec);
  }
  return res;
}

}  // namespace swatop::graph
