#include "graph/fuse.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace swatop::graph {

namespace {

/// Index of the sole consumer of `t`, or -1 when `t` has any other fate
/// (multiple consumers, none, or it is a network output).
int sole_consumer(const std::string& t,
                  const std::unordered_map<std::string, std::vector<int>>&
                      consumers,
                  const std::unordered_set<std::string>& outputs) {
  if (outputs.count(t)) return -1;
  auto it = consumers.find(t);
  if (it == consumers.end() || it->second.size() != 1) return -1;
  return it->second.front();
}

}  // namespace

Graph fuse_epilogues(const Graph& g, FusionStats* stats,
                     const FusePredicate& fusible) {
  g.validate_or_throw();
  const auto shapes = g.shapes();
  const std::vector<Node>& nodes = g.nodes();

  std::unordered_map<std::string, std::vector<int>> consumers;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (const std::string& t : nodes[i].inputs)
      consumers[t].push_back(static_cast<int>(i));
  std::unordered_set<std::string> outputs;
  for (const std::string& t : g.outputs()) outputs.insert(t);

  FusionStats st;
  st.nodes_before = static_cast<int>(nodes.size());

  Graph out(g.name());
  for (const auto& [t, shape] : g.inputs()) out.add_input(t, shape);

  std::vector<bool> absorbed(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (absorbed[i]) continue;
    const Node& n = nodes[i];
    if (n.kind != NodeKind::Conv || n.epilogue.any() ||
        (fusible && !fusible(n))) {
      out.add(n);
      continue;
    }

    Node fused = n;
    std::vector<int> chain;
    std::string cur = n.output;
    auto next_is = [&](NodeKind k) {
      const int j = sole_consumer(cur, consumers, outputs);
      return (j >= 0 && nodes[static_cast<std::size_t>(j)].kind == k &&
              !absorbed[static_cast<std::size_t>(j)])
                 ? j
                 : -1;
    };
    auto absorb = [&](int j) {
      chain.push_back(j);
      cur = nodes[static_cast<std::size_t>(j)].output;
    };

    if (int j = next_is(NodeKind::Bias); j >= 0) {
      fused.epilogue.bias = true;
      fused.bias_name = nodes[static_cast<std::size_t>(j)].name;
      absorb(j);
      ++st.bias_folded;
    }
    if (int j = next_is(NodeKind::Add); j >= 0) {
      const Node& add = nodes[static_cast<std::size_t>(j)];
      // The shortcut operand: whichever Add input isn't this chain. x + x
      // (both inputs the chain) has no independent operand -- skip.
      const std::string& other =
          add.inputs[0] == cur ? add.inputs[1] : add.inputs[0];
      if (other != cur && shapes.at(other) == shapes.at(n.output)) {
        fused.epilogue.residual = true;
        fused.inputs.push_back(other);
        absorb(j);
        ++st.add_folded;
      }
    }
    if (int j = next_is(NodeKind::Relu); j >= 0) {
      fused.epilogue.relu = true;
      absorb(j);
      ++st.relu_folded;
    }
    if (int j = next_is(NodeKind::Pad); j >= 0) {
      const Node& pad = nodes[static_cast<std::size_t>(j)];
      if (pad.pad > 0) {
        fused.epilogue.out_pad = pad.pad;
        absorb(j);
        ++st.pad_folded;
      }
    }

    if (chain.empty()) {
      out.add(n);
      continue;
    }
    for (int j : chain) absorbed[static_cast<std::size_t>(j)] = true;
    fused.output = cur;  // the chain tail's tensor, downstream unchanged
    out.add(std::move(fused));
    ++st.convs_fused;
  }

  st.nodes_after = static_cast<int>(out.nodes().size());
  if (stats) *stats = st;
  return out;
}

}  // namespace swatop::graph
