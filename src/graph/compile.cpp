#include "graph/compile.hpp"

#include <cstdio>
#include <utility>

#include "common/check.hpp"

namespace swatop {

// ---------------------------------------------------------------- CompiledOp

CompiledOp::CompiledOp(const dsl::OperatorDef& op, SwatopConfig cfg)
    : op_(&op) {
  if (!cfg.journal) {
    owned_journal_ = std::make_unique<tune::Journal>();
    cfg.journal = owned_journal_.get();
  }
  journal_ = cfg.journal;
  optimizer_ = std::make_unique<Optimizer>(std::move(cfg));
  opt_ = optimizer_->optimize(op);
}

rt::RunResult CompiledOp::run(sim::ExecMode mode) {
  last_ = opt_.execute(mode);
  ran_ = true;
  return last_;
}

double CompiledOp::check() {
  SWATOP_CHECK(ran_) << "CompiledOp::check() before the first run()";
  return opt_.check_output();
}

std::string CompiledOp::report() const {
  char buf[256];
  std::string s;
  s += "== " + op_->name() + " ==\n";
  s += "strategy:  " + opt_.candidate.strategy.serialize() + "\n";
  std::snprintf(buf, sizeof(buf), "predicted: %.0f cycles%s\n",
                opt_.predicted_cycles,
                opt_.from_cache ? "  (schedule cache hit)" : "");
  s += buf;
  if (opt_.measured_cycles > 0.0) {
    std::snprintf(buf, sizeof(buf), "measured:  %.0f cycles (tuning)\n",
                  opt_.measured_cycles);
    s += buf;
  }
  if (ran_) {
    std::snprintf(buf, sizeof(buf),
                  "last run:  %.0f cycles, %.1f GFLOPS\n", last_.cycles,
                  last_.gflops(opt_.flops(), config().machine));
    s += buf;
  }
  std::snprintf(buf, sizeof(buf), "journal:   %zu candidate rows\n",
                journal_->size());
  s += buf;
  return s;
}

CompiledOp compile(const dsl::OperatorDef& op, SwatopConfig cfg) {
  return CompiledOp(op, std::move(cfg));
}

// --------------------------------------------------------------- CompiledNet

CompiledNet::CompiledNet(graph::Graph g, SwatopConfig cfg)
    : graph_(std::move(g)) {
  if (!cfg.journal) {
    owned_journal_ = std::make_unique<tune::Journal>();
    cfg.journal = owned_journal_.get();
  }
  journal_ = cfg.journal;
  engine_ = std::make_unique<graph::GraphEngine>(std::move(cfg));
}

graph::NetRunResult CompiledNet::run(std::int64_t batch,
                                     const graph::NetOptions& opts) {
  last_ = engine_->run(graph_, batch, opts);
  ran_ = true;
  return last_;
}

const graph::NetRunResult& CompiledNet::result() const {
  SWATOP_CHECK(ran_) << "CompiledNet::result() before the first run()";
  return last_;
}

std::string CompiledNet::report(graph::NetReportOptions o) const {
  SWATOP_CHECK(ran_) << "CompiledNet::report() before the first run()";
  if (!o.journal) o.journal = journal_;
  return graph::net_report(last_, config().machine, o);
}

std::string CompiledNet::report_json(graph::NetReportOptions o) const {
  SWATOP_CHECK(ran_) << "CompiledNet::report_json() before the first run()";
  if (!o.journal) o.journal = journal_;
  return graph::net_report_json(last_, config().machine, o);
}

CompiledNet compile(graph::Graph g, SwatopConfig cfg) {
  return CompiledNet(std::move(g), std::move(cfg));
}

}  // namespace swatop
