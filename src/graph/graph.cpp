#include "graph/graph.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/check.hpp"

namespace swatop::graph {

const char* node_kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::Conv: return "conv";
    case NodeKind::Bias: return "bias";
    case NodeKind::Relu: return "relu";
    case NodeKind::MaxPool2x2: return "maxpool";
    case NodeKind::Pad: return "pad";
    case NodeKind::Add: return "add";
  }
  return "?";
}

void Graph::add_input(const std::string& tensor, TensorShape shape) {
  inputs_.emplace_back(tensor, shape);
}

int Graph::add(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

namespace {

/// Expected input arity of a node: Add and fused residual convs take two.
std::size_t arity(const Node& n) {
  if (n.kind == NodeKind::Add) return 2;
  if (n.kind == NodeKind::Conv && n.epilogue.residual) return 2;
  return 1;
}

}  // namespace

bool Graph::infer(const Node& n, const std::vector<TensorShape>& in,
                  TensorShape* out, std::vector<std::string>* problems)
    const {
  auto fail = [&](const std::string& what) {
    problems->push_back("node '" + n.name + "' (" + node_kind_name(n.kind) +
                        "): " + what);
    return false;
  };
  switch (n.kind) {
    case NodeKind::Conv: {
      if (n.kernel <= 0 || n.channels_out <= 0)
        return fail("kernel and channels_out must be positive");
      if (in[0].hw < n.kernel) {
        std::ostringstream os;
        os << "kernel " << n.kernel << " larger than input extent "
           << in[0].hw;
        return fail(os.str());
      }
      if (n.epilogue.out_pad < 0) return fail("negative fused output pad");
      const TensorShape raw = {in[0].hw - n.kernel + 1, n.channels_out};
      if (n.epilogue.residual) {
        // The fused residual-add must see a same-shape operand *here*,
        // before the planner sizes arenas from the inferred shapes --
        // otherwise the mismatch surfaces as an arena assert mid-run.
        if (in.size() < 2)
          return fail("fused residual epilogue without a second input");
        if (in[1] != raw) {
          std::ostringstream os;
          os << "fused residual operand shape " << in[1].hw << "^2x"
             << in[1].channels << " does not match the conv output "
             << raw.hw << "^2x" << raw.channels;
          return fail(os.str());
        }
      }
      *out = {raw.hw + 2 * n.epilogue.out_pad, n.channels_out};
      return true;
    }
    case NodeKind::Bias:
    case NodeKind::Relu:
      *out = in[0];
      return true;
    case NodeKind::MaxPool2x2:
      if (in[0].hw % 2 != 0) {
        std::ostringstream os;
        os << "2x2 pool needs an even spatial extent, got " << in[0].hw;
        return fail(os.str());
      }
      *out = {in[0].hw / 2, in[0].channels};
      return true;
    case NodeKind::Pad:
      if (n.pad < 0) return fail("negative pad");
      *out = {in[0].hw + 2 * n.pad, in[0].channels};
      return true;
    case NodeKind::Add:
      if (in[0] != in[1]) {
        std::ostringstream os;
        os << "operand shapes differ: " << in[0].hw << "^2x" << in[0].channels
           << " vs " << in[1].hw << "^2x" << in[1].channels;
        return fail(os.str());
      }
      *out = in[0];
      return true;
  }
  return fail("unknown node kind");
}

std::vector<std::string> Graph::validate() const {
  std::vector<std::string> problems;

  // Producer map: every tensor has exactly one producer (a node or a graph
  // input declaration).
  std::unordered_map<std::string, int> producer;  // -1 = graph input
  for (const auto& [t, shape] : inputs_) {
    if (shape.hw <= 0 || shape.channels <= 0)
      problems.push_back("input tensor '" + t + "' has non-positive shape");
    if (!producer.emplace(t, -1).second)
      problems.push_back("input tensor '" + t + "' declared twice");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.output.empty())
      problems.push_back("node '" + n.name + "' has no output tensor");
    else if (!producer.emplace(n.output, static_cast<int>(i)).second)
      problems.push_back("tensor '" + n.output + "' produced more than once");
    if (n.inputs.size() != arity(n)) {
      std::ostringstream os;
      os << "node '" << n.name << "' (" << node_kind_name(n.kind)
         << ") expects " << arity(n) << " input(s), has "
         << n.inputs.size();
      problems.push_back(os.str());
    }
  }
  for (const Node& n : nodes_)
    for (const std::string& t : n.inputs)
      if (!producer.count(t))
        problems.push_back("node '" + n.name + "' consumes tensor '" + t +
                           "' that nothing produces");
  if (!problems.empty()) return problems;  // later checks assume these hold

  // Kahn's algorithm over tensor availability: shape-infer each node as it
  // becomes ready; nodes never ready form a dependency cycle.
  std::unordered_map<std::string, TensorShape> shape;
  for (const auto& [t, s] : inputs_) shape[t] = s;
  std::vector<bool> done(nodes_.size(), false);
  bool progress = true;
  std::size_t remaining = nodes_.size();
  while (progress && remaining > 0) {
    progress = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (done[i]) continue;
      const Node& n = nodes_[i];
      std::vector<TensorShape> in;
      bool ready = true;
      for (const std::string& t : n.inputs) {
        auto it = shape.find(t);
        if (it == shape.end()) {
          ready = false;
          break;
        }
        in.push_back(it->second);
      }
      if (!ready) continue;
      TensorShape out;
      if (infer(n, in, &out, &problems)) shape[n.output] = out;
      // Even on a shape problem, mark done so one bad node doesn't also
      // report everything downstream as a cycle.
      shape.emplace(n.output, TensorShape{});
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    std::ostringstream os;
    os << "dependency cycle through node(s):";
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      if (!done[i]) os << " '" << nodes_[i].name << "'";
    problems.push_back(os.str());
  }
  return problems;
}

void Graph::validate_or_throw() const {
  const std::vector<std::string> problems = validate();
  if (problems.empty()) return;
  std::ostringstream os;
  os << "graph '" << name_ << "' is invalid:";
  for (const std::string& p : problems) os << "\n  - " << p;
  throw CheckError(os.str());
}

std::vector<int> Graph::topo_order() const {
  validate_or_throw();
  std::unordered_map<std::string, bool> avail;
  for (const auto& [t, s] : inputs_) avail[t] = true;
  std::vector<int> order;
  std::vector<bool> done(nodes_.size(), false);
  while (order.size() < nodes_.size()) {
    bool progress = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (done[i]) continue;
      const Node& n = nodes_[i];
      const bool ready = std::all_of(
          n.inputs.begin(), n.inputs.end(),
          [&](const std::string& t) { return avail.count(t) > 0; });
      if (!ready) continue;
      avail[n.output] = true;
      order.push_back(static_cast<int>(i));
      done[i] = true;
      progress = true;
    }
    SWATOP_CHECK(progress) << "topo_order on a cyclic graph";
  }
  return order;
}

std::unordered_map<std::string, TensorShape> Graph::shapes() const {
  std::unordered_map<std::string, TensorShape> shape;
  for (const auto& [t, s] : inputs_) shape[t] = s;
  std::vector<std::string> problems;
  for (int i : topo_order()) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    std::vector<TensorShape> in;
    for (const std::string& t : n.inputs) in.push_back(shape.at(t));
    TensorShape out;
    SWATOP_CHECK(infer(n, in, &out, &problems))
        << (problems.empty() ? "shape inference failed" : problems.back());
    shape[n.output] = out;
  }
  return shape;
}

std::vector<std::string> Graph::outputs() const {
  std::unordered_map<std::string, bool> consumed;
  for (const Node& n : nodes_)
    for (const std::string& t : n.inputs) consumed[t] = true;
  std::vector<std::string> out;
  for (const auto& [t, s] : inputs_)
    if (!consumed.count(t)) out.push_back(t);
  for (const Node& n : nodes_)
    if (!consumed.count(n.output)) out.push_back(n.output);
  return out;
}

ops::ConvShape Graph::conv_shape(const Node& n, std::int64_t batch) const {
  SWATOP_CHECK(n.kind == NodeKind::Conv)
      << "conv_shape on a " << node_kind_name(n.kind) << " node";
  const auto shape = shapes();
  const TensorShape in = shape.at(n.inputs[0]);
  ops::ConvShape s;
  s.batch = batch;
  s.ni = in.channels;
  s.no = n.channels_out;
  s.ri = in.hw;
  s.ci = in.hw;
  s.kr = n.kernel;
  s.kc = n.kernel;
  return s;
}

std::int64_t Graph::conv_count() const {
  return std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) {
    return n.kind == NodeKind::Conv;
  });
}

}  // namespace swatop::graph
