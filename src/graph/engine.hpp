// GraphEngine: run a whole network end-to-end on the simulated SW26010.
//
// The engine tunes every *distinct* (conv geometry, sub-batch) once --
// through the schedule cache, so repeated layers and repeated runs never
// re-enumerate a schedule space -- plans all inter-layer activations into
// one best-fit arena per core group, and then executes the graph in
// topological order with tensors actually flowing layer to layer:
// convolutions run their tuned programs through the interpreter on the
// arena, the elementwise passes (bias / relu / pool / pad / residual add)
// run as priced MPE-side passes. With groups > 1 the batch is split across
// core groups (batch is the innermost dimension of every activation
// layout, so each group simply owns a contiguous sub-batch) and a NoC
// barrier is charged per convolution launch -- the chip-level latency is
// the per-step maximum over groups plus those barriers, which is what an
// honest data-parallel deployment pays.
//
// NOTE: GraphEngine is the implementation layer underneath
// swatop::compile(graph, cfg) (graph/compile.hpp), which is the preferred
// front door for new code -- the CompiledNet handle owns the tuning
// journal and glues report()/report_json() to the run that produced them.
// Constructing a GraphEngine directly remains supported for callers that
// re-run many graphs through one engine instance.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/swatop.hpp"
#include "graph/fuse.hpp"
#include "graph/graph.hpp"
#include "graph/memory_plan.hpp"
#include "obs/profile.hpp"
#include "ops/conv_common.hpp"
#include "sim/core_group.hpp"

namespace swatop::graph {

/// Convolution design selection. Auto picks implicit GEMM whenever the
/// layer has enough input channels to feed the K dimension (the paper's
/// preferred method) and falls back to explicit GEMM otherwise (first
/// layers); Winograd is opt-in and silently falls back to Auto on layers
/// it does not apply to (non-3x3, thin channels).
enum class ConvMethod { Auto, Implicit, Explicit, Winograd };

const char* conv_method_name(ConvMethod m);

struct NetOptions {
  int groups = 1;  ///< core groups to data-parallel the batch over (1..4)
  ConvMethod method = ConvMethod::Auto;
  sim::ExecMode mode = sim::ExecMode::Functional;
  /// Validate the engine's outputs against the naive whole-net host
  /// forward pass (Functional mode only).
  bool check = true;
  /// Max relative error (|diff| / max|ref| per output tensor) the check
  /// reports against; the result records the measured error either way.
  double tolerance = 1e-4;
  /// Rewrite Conv -> Bias -> Add -> Relu -> Pad chains into fused conv
  /// nodes (graph/fuse.hpp) before tuning; only layers the implicit-GEMM
  /// design applies to are fused, the rest keep their MPE passes.
  bool fusion = true;
  /// Keep qualifying inter-layer tensors on-chip between adjacent MPE
  /// passes (memory_plan.hpp plan_residency), eliding their DRAM
  /// store/reload from the priced traffic.
  bool residency = true;
};

/// One graph node's share of the network run.
struct LayerReport {
  std::string name;
  std::string kind;  ///< operator name (conv) or node kind (MPE passes)
  bool conv = false;
  bool fused = false;       ///< conv carrying a fused epilogue
  bool from_cache = false;  ///< schedule served from the cache
  ops::ConvShape shape;     ///< conv only; batch = group 0's sub-batch
  double cycles = 0.0;      ///< slowest group's cycles, incl. NoC barrier
  std::int64_t flops = 0;   ///< whole-batch useful flops
  double gflops = 0.0;      ///< chip-level, for this step

  // Attribution inputs for this step (see graph/net_report.hpp): the
  // engine-captured simulator statistics, summed over the groups that ran
  // it, plus the clock quantities the basis needs.
  int groups = 1;            ///< core groups this step ran on
  double sync_cycles = 0.0;  ///< NoC barrier share of `cycles` (chip-level)
  double group_cycles = 0.0; ///< sum over groups of busy (clocked) cycles
  sim::CgStats stats;        ///< summed over groups, this step only
  /// DRAM bytes this step did NOT move thanks to SPM residency (summed
  /// over groups); fused epilogues additionally shrink stats itself.
  std::int64_t dma_bytes_elided = 0;
};

struct NetRunResult {
  // Chip-level end-to-end numbers.
  double cycles = 0.0;       ///< sum over steps of the slowest group
  double sync_cycles = 0.0;  ///< NoC barrier share of `cycles`
  std::int64_t flops = 0;
  double gflops = 0.0;
  double ms_per_batch = 0.0;
  double ms_per_image = 0.0;
  double efficiency = 0.0;  ///< gflops / peak of the groups used
  int groups_used = 1;
  std::int64_t batch = 0;

  // Functional check vs. the naive whole-net reference.
  bool checked = false;
  double max_rel_err = 0.0;

  // Memory plan, summed over groups.
  std::int64_t planned_peak_floats = 0;
  std::int64_t naive_floats = 0;

  // Fusion + residency: what the passes rewrote and what traffic the
  // residency elisions removed (fused epilogues shrink chip_stats itself).
  FusionStats fusion;
  std::int64_t resident_tensors = 0;
  std::int64_t dma_bytes_elided = 0;

  // Tuning.
  std::int64_t shapes_tuned = 0;  ///< distinct (method, shape) tuned
  std::int64_t cache_hits = 0;    ///< of those, served from the cache
  double tune_seconds = 0.0;
  /// Trace-replay fast path over the whole tuning phase (all zero unless
  /// SwatopConfig::replay.enabled) -- see tune/replay.hpp.
  std::int64_t replay_hits = 0;
  std::int64_t replay_misses = 0;
  std::int64_t replay_fallbacks = 0;

  sim::CgStats chip_stats;  ///< summed over groups (all fields)
  std::vector<LayerReport> layers;
  /// Network timeline (per-layer spans on the net-cg tracks) + aggregated
  /// counters; enabled iff SwatopConfig::observability is.
  obs::Profile profile;
};

class GraphEngine {
 public:
  /// The schedule cache is forced on (in memory at minimum): layer
  /// deduplication is the engine's contract, not an option.
  explicit GraphEngine(SwatopConfig cfg = {});

  const SwatopConfig& config() const { return cfg_; }

  /// Tune, plan and execute the whole graph at a batch size. Throws
  /// swatop::CheckError on an invalid graph or options.
  NetRunResult run(const Graph& g, std::int64_t batch,
                   const NetOptions& opts = {});

  /// The engine's Optimizer. Persistent across run() calls, so one
  /// engine's schedule cache, trace-replay executor and ranking pruner
  /// warm every graph it ever runs -- the serving path (src/serve/) prices
  /// many (net, sub-batch) combinations through one engine and re-tunes a
  /// layer shape only the first time any of them needs it. Per-run replay
  /// numbers in NetRunResult are deltas against this shared state.
  const Optimizer& optimizer() const { return *optimizer_; }

 private:
  SwatopConfig cfg_;
  std::unique_ptr<Optimizer> optimizer_;
  /// Replay-executor totals already attributed to previous run() calls.
  std::int64_t replay_hits_seen_ = 0;
  std::int64_t replay_misses_seen_ = 0;
  std::int64_t replay_fallbacks_seen_ = 0;
};

}  // namespace swatop::graph
