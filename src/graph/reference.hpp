// Deterministic network data and a naive whole-net forward pass. The fill
// helpers are shared by the engine (which writes the same values into
// simulated main memory) and the host reference below, so "engine output ==
// reference output" is a real end-to-end functional check, not a tautology.
//
// Weights are scaled ~sqrt(6 / fan_in) (He-style uniform) so activations
// neither explode nor vanish across the 13+ conv layers of the evaluation
// networks; everything is a pure hash of (name, indices) -- no RNG state,
// so a core group filling only its sub-batch produces bit-identical values
// to a whole-batch fill.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "ops/conv_common.hpp"

namespace swatop::graph {

/// Canonical [kr][kc][ni][no] conv weights for a Conv node, seeded by the
/// node's name, scaled sqrt(6 / (kr*kc*ni)).
std::vector<float> make_weights(const std::string& node_name,
                                const ops::ConvShape& s);

/// Per-channel bias for a Bias node, seeded by the node's name, in
/// [-0.1, 0.1].
std::vector<float> make_bias(const std::string& node_name,
                             std::int64_t channels);

/// Fill a graph-input activation tensor [hw][ch][hw][batch] with values
/// seeded by (tensor name, row, channel, col, batch0 + b). `batch0` offsets
/// the batch index so a core group running images [batch0, batch0 + batch)
/// fills exactly its slice of the logical batch.
void fill_input(const std::string& tensor, const TensorShape& shape,
                std::int64_t batch, std::int64_t batch0, float* dst);

/// Naive host forward pass over the whole graph: returns the network output
/// tensors (name -> [hw][ch][hw][batch] data). Intermediate tensors are
/// freed as soon as their last consumer ran, bounding host memory to the
/// live set. Throws swatop::CheckError when the graph is invalid.
std::unordered_map<std::string, std::vector<float>> reference_forward(
    const Graph& g, std::int64_t batch, std::int64_t batch0 = 0);

}  // namespace swatop::graph
