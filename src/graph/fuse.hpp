// Graph-level epilogue fusion: rewrite Conv -> Bias -> Add -> Relu -> Pad
// chains into a single Conv node carrying a dsl::EpilogueSpec, so the
// elementwise tail runs inside the convolution kernel's store path instead
// of as separate DRAM-streaming MPE passes. The pass is purely structural
// -- the engine decides how a fused node executes -- and conservative:
//
//   * only the stages present are absorbed, in the fixed application order
//     bias -> residual-add -> relu (a Relu already absorbed blocks a later
//     Add, which would need add-after-relu semantics);
//   * every absorbed intermediate tensor must have exactly one consumer and
//     must not be a network output (other consumers would observe a tensor
//     that no longer exists);
//   * a residual Add is only absorbed when the shortcut operand's shape
//     equals the conv's raw output shape (Graph::validate re-checks this on
//     the fused node);
//   * a downstream Pad is absorbed as EpilogueSpec::out_pad: the fused conv
//     writes its interior directly at the padded offsets and takes over the
//     Pad node's output tensor.
//
// The fused node keeps the conv's name (its deterministic weights stay
// identical) and records the folded Bias node's name in Node::bias_name so
// the engine seeds the same deterministic bias vector.
#pragma once

#include <functional>
#include <string>

#include "graph/graph.hpp"

namespace swatop::graph {

struct FusionStats {
  int convs_fused = 0;   ///< conv nodes that absorbed at least one stage
  int bias_folded = 0;
  int add_folded = 0;
  int relu_folded = 0;
  int pad_folded = 0;
  int nodes_before = 0;
  int nodes_after = 0;

  int nodes_removed() const { return nodes_before - nodes_after; }
};

/// Which Conv nodes the caller can execute fused (e.g. the engine fuses
/// only layers the implicit-GEMM design applies to). Null = every conv.
using FusePredicate = std::function<bool(const Node&)>;

/// Rewrite the graph with epilogues fused into their convolutions. The
/// input graph must be valid; the result is valid by construction (and
/// re-validated by the engine before running). Tensors other than absorbed
/// single-consumer intermediates keep their names, so memory planning and
/// reference checking line up with the unfused graph.
Graph fuse_epilogues(const Graph& g, FusionStats* stats = nullptr,
                     const FusePredicate& fusible = nullptr);

}  // namespace swatop::graph
