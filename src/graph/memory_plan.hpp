// Static memory planner for graph execution: computes every inter-layer
// tensor's lifetime over the topological schedule and packs them into one
// shared main-memory arena with best-fit free-block reuse -- the inter-layer
// memory optimization swCaffe-class runtimes do above per-operator codegen.
// The report compares the planned peak against the naive no-reuse sum (what
// binding every tensor separately would allocate).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"

namespace swatop::graph {

/// A per-step scratch tensor a node needs while executing (im2col column
/// matrices, Winograd transform buffers): live only during its step.
struct Transient {
  std::string name;
  std::int64_t floats = 0;
  int step = 0;  ///< position in the graph's topo order
};

struct PlanEntry {
  std::int64_t offset = 0;  ///< floats from the arena base
  std::int64_t floats = 0;  ///< unaligned logical size
  int first = 0;            ///< step producing the tensor (-1: graph input)
  int last = 0;             ///< last consuming step (num_steps: graph output)
};

struct MemoryPlan {
  /// Arena placement per tensor (graph tensors + transients).
  std::unordered_map<std::string, PlanEntry> entries;
  /// Arena floats needed (the high-water mark of the packing).
  std::int64_t peak_floats = 0;
  /// No-reuse sum: every planned tensor allocated separately.
  std::int64_t naive_floats = 0;
  /// Block alignment in floats (one DRAM transaction).
  std::int64_t alignment = 32;

  double reuse_ratio() const {
    return naive_floats > 0
               ? static_cast<double>(peak_floats) /
                     static_cast<double>(naive_floats)
               : 1.0;
  }
};

/// Plan the graph's tensors (inputs, every node output, the given
/// transients) at a batch size. Graph inputs are live from before the first
/// step; tensors nothing consumes (network outputs) stay live to the end.
/// Throws swatop::CheckError when the graph is invalid.
MemoryPlan plan_memory(const Graph& g, std::int64_t batch,
                       const std::vector<Transient>& transients = {});

/// Inter-layer SPM residency: tensors that stay on-chip between the step
/// that produces them and the *immediately following* step that consumes
/// them, so their DRAM store (by the producer) and reload (by the
/// consumer) are elided from the priced traffic. Two edge classes qualify,
/// both requiring a single consumer and not a network output:
///
///  - MPE pass -> MPE pass: the passes stream tiles in lockstep, so any
///    size qualifies (tiles hand over on-chip, never the whole tensor).
///  - Edges touching a convolution: a tuned conv kernel addresses its
///    operands tile-by-tile in arbitrary order, so the *whole* tensor must
///    be pinned, distributed across the mesh's 64 SPMs, for the duration
///    of both steps. Such an edge qualifies only when the tensor's
///    per-group footprint fits `conv_budget_floats` (the engine passes
///    half the aggregate SPM of a core group, leaving the other half to
///    the kernels' tile buffers) and every conv endpoint passes `conv_ok`
///    (the engine admits only implicit-GEMM layers, whose get/put paths
///    the elision models).
struct ResidencyPlan {
  std::unordered_set<std::string> resident;
  /// Per-batch-element floats of all resident tensors (reporting).
  std::int64_t resident_floats_per_image = 0;
};

struct ResidencyOptions {
  /// Aggregate-SPM floats (per core group) a conv-adjacent tensor may
  /// occupy; 0 disables conv-edge pinning (MPE->MPE streaming only).
  std::int64_t conv_budget_floats = 0;
  /// Per-group sub-batch the footprints are evaluated at.
  std::int64_t batch = 1;
  /// Extra gate on conv endpoints (null: every conv qualifies).
  std::function<bool(const Node&)> conv_ok;
};

ResidencyPlan plan_residency(const Graph& g, const ResidencyOptions& o = {});

}  // namespace swatop::graph
