#include "graph/reference.hpp"

#include <cmath>

#include "common/check.hpp"
#include "ops/reference.hpp"

namespace swatop::graph {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Uniform in [-1, 1) from a hash.
float unit(std::uint64_t h) {
  return static_cast<float>(h >> 11) * (2.0f / 9007199254740992.0f) - 1.0f;
}

}  // namespace

std::vector<float> make_weights(const std::string& node_name,
                                const ops::ConvShape& s) {
  const std::int64_t n = s.kr * s.kc * s.ni * s.no;
  const float scale = std::sqrt(
      6.0f / static_cast<float>(s.kr * s.kc * s.ni));
  const std::uint64_t seed = name_seed(node_name);
  std::vector<float> w(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    w[static_cast<std::size_t>(i)] =
        scale * unit(mix(seed ^ static_cast<std::uint64_t>(i)));
  return w;
}

std::vector<float> make_bias(const std::string& node_name,
                             std::int64_t channels) {
  const std::uint64_t seed = name_seed(node_name);
  std::vector<float> b(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c)
    b[static_cast<std::size_t>(c)] =
        0.1f * unit(mix(seed ^ static_cast<std::uint64_t>(c)));
  return b;
}

void fill_input(const std::string& tensor, const TensorShape& shape,
                std::int64_t batch, std::int64_t batch0, float* dst) {
  const std::uint64_t seed = name_seed(tensor);
  std::int64_t i = 0;
  for (std::int64_t r = 0; r < shape.hw; ++r)
    for (std::int64_t ch = 0; ch < shape.channels; ++ch)
      for (std::int64_t c = 0; c < shape.hw; ++c)
        for (std::int64_t b = 0; b < batch; ++b) {
          // 16 bits per index keeps keys collision-free for every network
          // geometry we build (hw <= 1024, channels <= 4096, batch < 65536).
          const std::uint64_t key =
              (static_cast<std::uint64_t>(r) << 48) |
              (static_cast<std::uint64_t>(ch) << 32) |
              (static_cast<std::uint64_t>(c) << 16) |
              static_cast<std::uint64_t>(batch0 + b);
          dst[i++] = unit(mix(seed ^ key));
        }
}

std::unordered_map<std::string, std::vector<float>> reference_forward(
    const Graph& g, std::int64_t batch, std::int64_t batch0) {
  SWATOP_CHECK(batch >= 1) << "reference_forward batch " << batch;
  const std::vector<int> order = g.topo_order();
  const auto shapes = g.shapes();

  std::unordered_map<std::string, int> uses;
  for (int idx : order)
    for (const std::string& t : g.nodes()[static_cast<std::size_t>(idx)].inputs)
      ++uses[t];

  std::unordered_map<std::string, std::vector<float>> live;
  for (const auto& [t, shape] : g.inputs()) {
    std::vector<float> v(static_cast<std::size_t>(shape.floats(batch)));
    fill_input(t, shape, batch, batch0, v.data());
    live.emplace(t, std::move(v));
  }

  for (int idx : order) {
    const Node& n = g.nodes()[static_cast<std::size_t>(idx)];
    const TensorShape& in_s = shapes.at(n.inputs[0]);
    const TensorShape& out_s = shapes.at(n.output);
    const std::vector<float>& in = live.at(n.inputs[0]);
    std::vector<float> out(static_cast<std::size_t>(out_s.floats(batch)));
    switch (n.kind) {
      case NodeKind::Conv: {
        const ops::ConvShape s = g.conv_shape(n, batch);
        const std::vector<float> w = make_weights(n.name, s);
        ops::reference_conv(in.data(), w.data(), out.data(), s);
        break;
      }
      case NodeKind::Bias: {
        out = in;
        const std::vector<float> b = make_bias(n.name, out_s.channels);
        ops::reference_bias_add(out.data(), b.data(), out_s.hw,
                                out_s.channels, out_s.hw, batch);
        break;
      }
      case NodeKind::Relu:
        out = in;
        ops::reference_relu(out.data(), out_s.floats(batch));
        break;
      case NodeKind::MaxPool2x2:
        ops::reference_maxpool2x2(in.data(), out.data(), in_s.hw,
                                  in_s.channels, in_s.hw, batch);
        break;
      case NodeKind::Pad:
        ops::reference_pad(in.data(), out.data(), in_s.hw, in_s.channels,
                           in_s.hw, batch, n.pad);
        break;
      case NodeKind::Add:
        ops::reference_eltwise_add(in.data(), live.at(n.inputs[1]).data(),
                                   out.data(), out_s.floats(batch));
        break;
    }
    for (const std::string& t : n.inputs)
      if (--uses.at(t) == 0) live.erase(t);
    live.emplace(n.output, std::move(out));
  }
  return live;
}

}  // namespace swatop::graph
