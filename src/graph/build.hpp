// CNN graph builders over the nets/ layer tables: conv + bias + relu
// chains with Pad nodes materializing 'same' padding and 2x2 max-pools
// inserted wherever the table's spatial extent halves; ResNet builds real
// bottleneck stages with a residual Add (the shortcut edge is what gives
// the memory planner a long-lived tensor to keep alive).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "nets/nets.hpp"

namespace swatop::graph {

/// A plain conv(+bias+relu) chain from a layer table (VGG16 / YOLO style).
/// The graph input is the first layer's unpadded input activation.
Graph build_chain(const std::string& name,
                  const std::vector<nets::LayerDef>& layers);

/// ResNet-50's stride-1 bottleneck stages from nets::resnet(): per stage,
/// one entry block (1x1 reduce, 3x3, 1x1 expand) and one identity block
/// (1x1 'proj' reduce, 3x3, 1x1 expand, residual Add with the entry
/// block's output), 2x2 pools standing in for the stride-2 transitions.
Graph build_resnet();

/// "vgg16" | "resnet" | "yolo" -> graph; throws swatop::CheckError on an
/// unknown name.
Graph build_net(const std::string& net);

}  // namespace swatop::graph
