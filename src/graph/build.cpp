#include "graph/build.hpp"

#include "common/check.hpp"

namespace swatop::graph {

namespace {

/// Append pad (when k > 1) + conv + bias + (optionally) relu reading
/// `in`; returns the produced tensor name. `layer` names the conv node;
/// helper node names derive from it.
std::string add_conv_block(Graph& g, const std::string& layer,
                           const std::string& in, std::int64_t k,
                           std::int64_t channels_out, bool relu = true) {
  std::string cur = in;
  if (k > 1) {
    g.add({NodeKind::Pad, layer + ".pad", {cur}, layer + ":pad", 0, 0,
           (k - 1) / 2});
    cur = layer + ":pad";
  }
  g.add({NodeKind::Conv, layer, {cur}, layer + ":conv", k, channels_out, 0});
  g.add({NodeKind::Bias, layer + ".bias", {layer + ":conv"}, layer + ":bias",
         0, 0, 0});
  cur = layer + ":bias";
  if (relu) {
    g.add({NodeKind::Relu, layer + ".relu", {cur}, layer + ":out", 0, 0, 0});
    cur = layer + ":out";
  }
  return cur;
}

/// Insert a 2x2 pool when the table's next spatial extent is half the
/// current one; returns the (possibly pooled) tensor and updates hw.
std::string maybe_pool(Graph& g, const std::string& in, std::int64_t& hw,
                       std::int64_t next_hw, int* pool_idx) {
  if (hw == next_hw) return in;
  SWATOP_CHECK(hw == 2 * next_hw)
      << "layer table spatial step " << hw << " -> " << next_hw
      << " is not a 2x2 pool";
  const std::string name = "pool" + std::to_string((*pool_idx)++);
  g.add({NodeKind::MaxPool2x2, name, {in}, name + ":out", 0, 0, 0});
  hw = next_hw;
  return name + ":out";
}

}  // namespace

Graph build_chain(const std::string& name,
                  const std::vector<nets::LayerDef>& layers) {
  SWATOP_CHECK(!layers.empty()) << "empty layer table";
  Graph g(name);
  g.add_input("input", {layers[0].out_hw, layers[0].ni});
  std::string cur = "input";
  std::int64_t hw = layers[0].out_hw;
  std::int64_t ch = layers[0].ni;
  int pool_idx = 1;
  for (const nets::LayerDef& l : layers) {
    cur = maybe_pool(g, cur, hw, l.out_hw, &pool_idx);
    SWATOP_CHECK(ch == l.ni)
        << "layer table channel mismatch at " << l.name << ": have " << ch
        << ", table expects " << l.ni;
    cur = add_conv_block(g, l.name, cur, l.k, l.no);
    ch = l.no;
  }
  return g;
}

Graph build_resnet() {
  // nets::resnet() lists, per stage, the 1x1 reduce of the entry block, the
  // 3x3, the 1x1 expand, and the 1x1 reduce ('proj') of the following
  // identity blocks.
  const std::vector<nets::LayerDef> t = nets::resnet();
  SWATOP_CHECK(t.size() % 4 == 0) << "resnet table is not 4 rows per stage";

  Graph g("resnet");
  g.add_input("input", {t[0].out_hw, t[0].ni});
  std::string cur = "input";
  std::int64_t hw = t[0].out_hw;
  int pool_idx = 1;
  for (std::size_t st = 0; st * 4 < t.size(); ++st) {
    const nets::LayerDef& a1 = t[st * 4 + 0];   // entry 1x1 reduce
    const nets::LayerDef& a3 = t[st * 4 + 1];   // 3x3
    const nets::LayerDef& ae = t[st * 4 + 2];   // 1x1 expand
    const nets::LayerDef& proj = t[st * 4 + 3]; // identity-block reduce
    cur = maybe_pool(g, cur, hw, a1.out_hw, &pool_idx);

    // Entry block: reduce, 3x3, expand. Its expanded output is both the
    // identity block's input and its residual shortcut.
    std::string x = add_conv_block(g, a1.name, cur, a1.k, a1.no);
    x = add_conv_block(g, a3.name, x, a3.k, a3.no);
    const std::string shortcut = add_conv_block(g, ae.name, x, ae.k, ae.no);

    // Identity block: reduce (proj), 3x3, expand, then the residual Add
    // and the post-add relu.
    std::string y = add_conv_block(g, proj.name, shortcut, proj.k, proj.no);
    y = add_conv_block(g, a3.name + "b", y, a3.k, a3.no);
    y = add_conv_block(g, ae.name + "b", y, ae.k, ae.no,
                       /*relu=*/false);
    const std::string stage = "stage" + std::to_string(st + 2);
    g.add({NodeKind::Add, stage + ".add", {y, shortcut}, stage + ":sum", 0,
           0, 0});
    g.add({NodeKind::Relu, stage + ".relu", {stage + ":sum"},
           stage + ":out", 0, 0, 0});
    cur = stage + ":out";
  }
  return g;
}

Graph build_net(const std::string& net) {
  if (net == "vgg16") return build_chain("vgg16", nets::vgg16());
  if (net == "resnet") return build_resnet();
  if (net == "yolo") return build_chain("yolo", nets::yolo());
  throw CheckError("unknown network '" + net +
                   "' (expected vgg16, resnet or yolo)");
}

}  // namespace swatop::graph
