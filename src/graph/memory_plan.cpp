#include "graph/memory_plan.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace swatop::graph {

namespace {

/// Best-fit arena allocator over [0, inf): free blocks keyed by offset,
/// coalesced on release; allocations past every block grow the high-water
/// mark.
class Arena {
 public:
  explicit Arena(std::int64_t align) : align_(align) {}

  std::int64_t alloc(std::int64_t floats) {
    const std::int64_t need = align_up(floats, align_);
    // Best fit: the smallest free block that holds `need`.
    auto best = free_.end();
    for (auto it = free_.begin(); it != free_.end(); ++it)
      if (it->second >= need &&
          (best == free_.end() || it->second < best->second))
        best = it;
    if (best != free_.end()) {
      const std::int64_t off = best->first;
      const std::int64_t left = best->second - need;
      free_.erase(best);
      if (left > 0) free_.emplace(off + need, left);
      return off;
    }
    const std::int64_t off = top_;
    top_ += need;
    peak_ = std::max(peak_, top_);
    return off;
  }

  void release(std::int64_t off, std::int64_t floats) {
    std::int64_t size = align_up(floats, align_);
    // Coalesce with the neighbouring free blocks, and with the arena top so
    // a released tail shrinks `top_` instead of lingering as a block.
    auto next = free_.lower_bound(off);
    if (next != free_.end() && off + size == next->first) {
      size += next->second;
      next = free_.erase(next);
    }
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == off) {
        off = prev->first;
        size += prev->second;
        free_.erase(prev);
      }
    }
    if (off + size == top_)
      top_ = off;
    else
      free_.emplace(off, size);
  }

  std::int64_t peak() const { return peak_; }

 private:
  std::int64_t align_;
  std::map<std::int64_t, std::int64_t> free_;  ///< offset -> size
  std::int64_t top_ = 0;
  std::int64_t peak_ = 0;
};

}  // namespace

MemoryPlan plan_memory(const Graph& g, std::int64_t batch,
                       const std::vector<Transient>& transients) {
  SWATOP_CHECK(batch >= 1) << "plan_memory batch " << batch;
  const std::vector<int> order = g.topo_order();
  const auto shapes = g.shapes();
  const int steps = static_cast<int>(order.size());

  MemoryPlan plan;

  // Lifetimes: producer step and last consumer step per tensor.
  for (const auto& [t, shape] : g.inputs())
    plan.entries[t] = {0, shape.floats(batch), -1, -1};
  for (int step = 0; step < steps; ++step) {
    const Node& n = g.nodes()[static_cast<std::size_t>(order[step])];
    plan.entries[n.output] = {0, shapes.at(n.output).floats(batch), step,
                              step};
    for (const std::string& t : n.inputs) {
      auto it = plan.entries.find(t);
      SWATOP_CHECK(it != plan.entries.end()) << "unplanned tensor " << t;
      it->second.last = std::max(it->second.last, step);
    }
  }
  // Network outputs (and an unconsumed input) survive to the end.
  for (auto& [t, e] : plan.entries)
    if (e.last < e.first || (e.first == -1 && e.last == -1)) e.last = steps;
  for (const std::string& t : g.outputs()) plan.entries[t].last = steps;

  for (const Transient& t : transients) {
    SWATOP_CHECK(t.step >= 0 && t.step < steps)
        << "transient '" << t.name << "' at step " << t.step << " of "
        << steps;
    SWATOP_CHECK(!plan.entries.count(t.name))
        << "transient '" << t.name << "' collides with a graph tensor";
    plan.entries[t.name] = {0, t.floats, t.step, t.step};
  }

  for (const auto& [t, e] : plan.entries)
    plan.naive_floats += align_up(e.floats, plan.alignment);

  // Pack: walk the schedule; before each step release everything whose
  // last use is behind, then place the tensors born at this step.
  std::vector<std::pair<std::string, PlanEntry*>> by_birth;
  for (auto& [t, e] : plan.entries) by_birth.emplace_back(t, &e);
  // Deterministic placement order: birth step, then larger first (classic
  // size-ordered packing beats insertion order), then name.
  std::sort(by_birth.begin(), by_birth.end(), [](const auto& a,
                                                 const auto& b) {
    if (a.second->first != b.second->first)
      return a.second->first < b.second->first;
    if (a.second->floats != b.second->floats)
      return a.second->floats > b.second->floats;
    return a.first < b.first;
  });

  Arena arena(plan.alignment);
  std::size_t next_birth = 0;
  for (int step = -1; step < steps; ++step) {
    for (auto& [t, e] : by_birth)
      if (e->last == step - 1 && e->first < step)
        arena.release(e->offset, e->floats);
    while (next_birth < by_birth.size() &&
           by_birth[next_birth].second->first == step) {
      PlanEntry* e = by_birth[next_birth].second;
      e->offset = arena.alloc(e->floats);
      ++next_birth;
    }
  }
  plan.peak_floats = arena.peak();
  return plan;
}

ResidencyPlan plan_residency(const Graph& g, const ResidencyOptions& o) {
  ResidencyPlan rp;
  const std::vector<int> order = g.topo_order();
  const auto shapes = g.shapes();
  const std::vector<Node>& nodes = g.nodes();

  std::unordered_map<std::string, int> consumer_count;
  for (const Node& n : nodes)
    for (const std::string& t : n.inputs) ++consumer_count[t];
  std::unordered_set<std::string> outputs;
  for (const std::string& t : g.outputs()) outputs.insert(t);

  for (std::size_t stp = 0; stp + 1 < order.size(); ++stp) {
    const Node& p = nodes[static_cast<std::size_t>(order[stp])];
    const Node& c = nodes[static_cast<std::size_t>(order[stp + 1])];
    if (outputs.count(p.output) || consumer_count[p.output] != 1) continue;
    if (std::find(c.inputs.begin(), c.inputs.end(), p.output) ==
        c.inputs.end())
      continue;
    const bool conv_edge =
        p.kind == NodeKind::Conv || c.kind == NodeKind::Conv;
    if (conv_edge) {
      // The whole tensor is pinned across both steps: it must fit the SPM
      // budget and every conv endpoint must pass the engine's gate.
      if (o.conv_budget_floats <= 0) continue;
      if (shapes.at(p.output).floats(o.batch) > o.conv_budget_floats)
        continue;
      if (o.conv_ok) {
        if (p.kind == NodeKind::Conv && !o.conv_ok(p)) continue;
        if (c.kind == NodeKind::Conv && !o.conv_ok(c)) continue;
      }
    }
    rp.resident.insert(p.output);
    rp.resident_floats_per_image += shapes.at(p.output).floats(1);
  }
  return rp;
}

}  // namespace swatop::graph
