// swatop::compile -- the fusion-aware front door of the library. One call
// turns a thing-to-run (a single dsl::OperatorDef, or a whole
// graph::Graph) plus one SwatopConfig into a compiled handle:
//
//   auto net = swatop::compile(swatop::graph::build_net("vgg16"), cfg);
//   auto r = net.run(/*batch=*/4, opts);   // tune + plan + execute
//   std::cout << net.report();             // attribution, roofline, fusion
//   net.journal().write_jsonl("tune.jsonl");
//
//   auto op = swatop::compile(conv, cfg);  // single-operator flavour
//   auto rr = op.run();
//
// compile(graph) is where the graph-level optimizations live: epilogue
// fusion (graph/fuse.hpp) and inter-layer SPM residency
// (graph/memory_plan.hpp) run inside CompiledNet::run under
// NetOptions::fusion / NetOptions::residency, so callers of the new API
// get fused candidates and elided DMA traffic without touching the
// tuner, IR validator or fuzzer.
//
// The pre-existing entry points (swatop::Optimizer +
// OptimizedOperator::execute, graph::GraphEngine) remain as the
// implementation layer underneath and keep working, but new code should
// come through compile(): it is the only surface that owns the tuning
// journal for you and keeps the report glued to the run that produced it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/swatop.hpp"
#include "graph/engine.hpp"
#include "graph/net_report.hpp"
#include "tune/journal.hpp"

namespace swatop {

/// A compiled single operator: tuned schedule + generated code + the
/// simulated core group to run it on. Obtained from compile(op, cfg); the
/// operator definition must outlive the handle (same contract as
/// Optimizer::optimize). Move-only.
class CompiledOp {
 public:
  CompiledOp(CompiledOp&&) = default;
  CompiledOp& operator=(CompiledOp&&) = default;

  /// Execute the tuned schedule (repeat runs reuse the bound core group).
  rt::RunResult run(sim::ExecMode mode = sim::ExecMode::Functional);

  /// Max |computed - reference| over the outputs of the last run().
  /// Throws swatop::CheckError before the first run().
  double check();

  /// One-paragraph text summary: strategy, predicted/measured cycles,
  /// cache status, and the last run's numbers when available.
  std::string report() const;

  /// Every candidate the tuner considered compiling this operator (plus
  /// any the caller's own SwatopConfig::journal had recorded before).
  const tune::Journal& journal() const { return *journal_; }

  /// The underlying tuned handle, for callers that need the low-level
  /// surface (generated C source, caller-owned core groups, ...).
  OptimizedOperator& handle() { return opt_; }
  const OptimizedOperator& handle() const { return opt_; }

  const SwatopConfig& config() const { return optimizer_->config(); }

 private:
  friend CompiledOp compile(const dsl::OperatorDef& op, SwatopConfig cfg);
  CompiledOp(const dsl::OperatorDef& op, SwatopConfig cfg);

  const dsl::OperatorDef* op_ = nullptr;
  std::unique_ptr<tune::Journal> owned_journal_;  ///< null if caller's
  tune::Journal* journal_ = nullptr;
  std::unique_ptr<Optimizer> optimizer_;
  OptimizedOperator opt_;
  rt::RunResult last_{};
  bool ran_ = false;
};

/// A compiled network: the graph, the engine that tunes/plans/executes it,
/// and the journal + last result that report() renders. Obtained from
/// compile(graph, cfg). Copyable graphs make the handle self-contained;
/// the handle itself is move-only.
class CompiledNet {
 public:
  CompiledNet(CompiledNet&&) = default;
  CompiledNet& operator=(CompiledNet&&) = default;

  /// Tune every distinct layer (through the schedule cache), run the
  /// fusion + residency passes per `opts`, plan the activation arena and
  /// execute the whole graph at `batch`. The result is returned and kept
  /// for report(). Throws swatop::CheckError on an invalid graph/options.
  graph::NetRunResult run(std::int64_t batch,
                          const graph::NetOptions& opts = {});

  /// The last run's result. Throws swatop::CheckError before the first
  /// run().
  const graph::NetRunResult& result() const;

  /// The full per-layer attribution / roofline / fusion report of the
  /// last run, with this net's journal attached (text or JSON). Throws
  /// before the first run().
  std::string report(graph::NetReportOptions o = {}) const;
  std::string report_json(graph::NetReportOptions o = {}) const;

  /// Every candidate the engine's tuners considered across all runs.
  const tune::Journal& journal() const { return *journal_; }

  const graph::Graph& graph() const { return graph_; }
  const SwatopConfig& config() const { return engine_->config(); }

 private:
  friend CompiledNet compile(graph::Graph g, SwatopConfig cfg);
  CompiledNet(graph::Graph g, SwatopConfig cfg);

  graph::Graph graph_;
  std::unique_ptr<tune::Journal> owned_journal_;  ///< null if caller's
  tune::Journal* journal_ = nullptr;
  std::unique_ptr<graph::GraphEngine> engine_;
  graph::NetRunResult last_{};
  bool ran_ = false;
};

/// Compile a whole network. The graph is copied into the handle. When
/// cfg.journal is unset the handle owns a journal (journal() returns it);
/// when set, tuning appends to the caller's journal and journal() views
/// it.
CompiledNet compile(graph::Graph g, SwatopConfig cfg = {});

/// Compile a single operator: tune + codegen now, execute via run().
/// `op` must outlive the returned handle.
CompiledOp compile(const dsl::OperatorDef& op, SwatopConfig cfg = {});

}  // namespace swatop
