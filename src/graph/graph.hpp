// Graph IR for whole-network execution: nodes are layer operations (tuned
// CPE convolutions plus lightweight MPE-side elementwise passes), edges are
// named activation tensors. The IR is deliberately small -- exactly what the
// paper's evaluation networks (VGG16 / ResNet / YOLO, Table 4) need -- and
// validated in the spirit of src/check/: unknown or doubly-produced
// tensors, dependency cycles and shape mismatches are all reported before
// anything executes.
//
// Batch size is a run-time parameter of the engine, not part of the graph:
// every tensor shape is per-batch-element (square spatial extent x
// channels), laid out [row][channel][col][batch] like the operator
// subsystem's canonical activation tensors.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsl/epilogue.hpp"
#include "ops/conv_common.hpp"

namespace swatop::graph {

enum class NodeKind {
  Conv,        ///< tuned convolution over an already-padded input
  Bias,        ///< += bias[channel] (MPE-side)
  Relu,        ///< max(x, 0) (MPE-side)
  MaxPool2x2,  ///< 2x2/stride-2 spatial max (MPE-side)
  Pad,         ///< materialize a zero border (MPE-side)
  Add,         ///< elementwise sum of two tensors (residual shortcuts)
};

const char* node_kind_name(NodeKind k);

/// Per-batch-element geometry of one tensor edge.
struct TensorShape {
  std::int64_t hw = 0;        ///< square spatial extent
  std::int64_t channels = 0;

  std::int64_t floats(std::int64_t batch) const {
    return hw * hw * channels * batch;
  }
  friend bool operator==(const TensorShape& a, const TensorShape& b) {
    return a.hw == b.hw && a.channels == b.channels;
  }
  friend bool operator!=(const TensorShape& a, const TensorShape& b) {
    return !(a == b);
  }
};

struct Node {
  NodeKind kind = NodeKind::Relu;
  std::string name;
  std::vector<std::string> inputs;  ///< consumed tensor names
  std::string output;               ///< produced tensor name
  /// Conv parameters (kind == Conv). The input is expected pre-padded (a
  /// Pad node upstream), so out_hw = in_hw - kernel + 1 (plus the fused
  /// epilogue's output border when set).
  std::int64_t kernel = 0;
  std::int64_t channels_out = 0;
  /// Pad parameter (kind == Pad): zero border width on each side.
  std::int64_t pad = 0;
  /// Fused elementwise tail (kind == Conv, written by fuse_epilogues):
  /// bias / residual-add / relu applied in the conv's store path, plus an
  /// absorbed output border. With epilogue.residual the node takes a second
  /// input -- the residual operand, shaped like the *raw* conv output.
  dsl::EpilogueSpec epilogue;
  /// Name of the folded Bias node (seeds its deterministic weights).
  std::string bias_name;
};

/// A directed network of Nodes over named tensors. Build with add_input /
/// add, then validate() (or let topo_order()/shapes() throw).
class Graph {
 public:
  explicit Graph(std::string name = "net") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declare a graph input tensor (no producing node).
  void add_input(const std::string& tensor, TensorShape shape);

  /// Append a node; returns its index.
  int add(Node n);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::pair<std::string, TensorShape>>& inputs() const {
    return inputs_;
  }

  /// Every problem found (empty = valid): inputs nobody produces, tensors
  /// produced twice, dependency cycles, per-kind shape violations
  /// (mismatched Add operands, odd-extent pools, kernels larger than the
  /// input, non-positive extents).
  std::vector<std::string> validate() const;

  /// Throws swatop::CheckError listing every problem when invalid.
  void validate_or_throw() const;

  /// Topological execution order (node indices); throws on a cycle or any
  /// other validation failure.
  std::vector<int> topo_order() const;

  /// Inferred shape of every tensor (graph inputs + node outputs); throws
  /// when the graph is invalid.
  std::unordered_map<std::string, TensorShape> shapes() const;

  /// Tensors produced (or declared input) but never consumed -- the network
  /// outputs, in first-production order.
  std::vector<std::string> outputs() const;

  /// The operator-subsystem ConvShape of a Conv node at a batch size
  /// (channels and padded spatial extent from the inferred input shape).
  ops::ConvShape conv_shape(const Node& n, std::int64_t batch) const;

  /// Number of Conv nodes (the tuned layers).
  std::int64_t conv_count() const;

 private:
  /// Shape inference for one node given resolved input shapes; appends
  /// problems instead of throwing. Returns false when the output shape
  /// could not be inferred.
  bool infer(const Node& n, const std::vector<TensorShape>& in,
             TensorShape* out, std::vector<std::string>* problems) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::pair<std::string, TensorShape>> inputs_;
};

}  // namespace swatop::graph
