// Epilogue fusion descriptor (graph-level fusion, ROADMAP item 1).
//
// Whole-net traffic is dominated by the elementwise passes between convs:
// bias, relu and residual-add each re-read and re-write the full activation
// through priced DRAM DMA (swCaffe/swTVM close exactly this gap on Sunway
// by fusing them into the producing kernel). An EpilogueSpec describes the
// elementwise tail a conv/GEMM schedule absorbs into its C store path:
// the CPE already holds the output tile in SPM, so applying
// bias -> residual-add -> relu there costs a handful of vector ops instead
// of three full-tensor round trips.
//
// The spec rides on dsl::Strategy (so fused candidates flow through the
// scheduler, tuner, IR validator and fuzzer unchanged) and on the fused
// graph::Node. `out_pad` additionally absorbs a following Pad node by
// storing the tile at the padded offsets of a pre-zeroed output.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace swatop::dsl {

struct EpilogueSpec {
  bool bias = false;       ///< add per-output-channel bias
  bool residual = false;   ///< add a same-shape residual tensor ("res")
  bool relu = false;       ///< max(x, 0) last
  std::int64_t out_pad = 0;  ///< store into a zero-padded output border

  /// Any fusion at all (including pad-only).
  bool any() const { return bias || residual || relu || out_pad > 0; }
  /// Elementwise compute on the stored tile (pad-only changes addressing,
  /// not values).
  bool compute() const { return bias || residual || relu; }

  /// Compact tag for operator names / cache keys, e.g. "bar,p1" for
  /// bias+add+relu with pad 1; empty when no fusion.
  std::string tag() const {
    if (!any()) return {};
    std::string t;
    if (bias) t += 'b';
    if (residual) t += 'a';
    if (relu) t += 'r';
    if (out_pad > 0) {
      if (!t.empty()) t += ',';
      t += 'p' + std::to_string(out_pad);
    }
    return t;
  }

  friend bool operator==(const EpilogueSpec& x, const EpilogueSpec& y) {
    return x.bias == y.bias && x.residual == y.residual &&
           x.relu == y.relu && x.out_pad == y.out_pad;
  }
  friend bool operator!=(const EpilogueSpec& x, const EpilogueSpec& y) {
    return !(x == y);
  }
};

}  // namespace swatop::dsl
