// The embedded DSL of Sec. 4.2: an operator is described by a *schedule
// seed* (its computation, lowered by the op definition into IR) plus a
// *schedule space* built from factor variables (split factors the scheduler
// traverses automatically) and choice variables (explicit candidates: loop
// orders, layouts, vectorization dimensions, boundary strategies). Every
// assignment of the variables is a *schedule strategy*; lowering a strategy
// yields one IR candidate.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsl/epilogue.hpp"
#include "ir/node.hpp"
#include "sim/core_group.hpp"

namespace swatop::dsl {

/// A split-factor variable: swATOP traverses all candidates automatically
/// (paper Fig. 4's FactorVar).
struct FactorVar {
  std::string name;
  std::vector<std::int64_t> candidates;
};

/// An enumerated choice: reorderings require explicit candidates (there are
/// too many permutations to traverse blindly); layouts, vectorization
/// dimensions and boundary strategies use the same mechanism.
struct ChoiceVar {
  std::string name;
  std::vector<std::string> options;
};

/// One point of the schedule space: an assignment of every variable.
class Strategy {
 public:
  void set_factor(const std::string& name, std::int64_t v) {
    factors_[name] = v;
  }
  void set_choice(const std::string& name, std::string v) {
    choices_[name] = std::move(v);
  }

  std::int64_t factor(const std::string& name) const;
  const std::string& choice(const std::string& name) const;
  bool has_choice(const std::string& name) const {
    return choices_.count(name) > 0;
  }
  bool has_factor(const std::string& name) const {
    return factors_.count(name) > 0;
  }

  /// The elementwise tail fused into the store path (default: none). Set by
  /// ScheduleSpace::enumerate on every strategy of a fused operator so the
  /// epilogue participates in the cache key and the serialize round-trip.
  void set_epilogue(const EpilogueSpec& e) { epilogue_ = e; }
  const EpilogueSpec& epilogue() const { return epilogue_; }

  std::string to_string() const;

  /// Round-trippable text form for the schedule cache: sorted
  /// `f:<name>=<int>` / `c:<name>=<option>` tokens separated by single
  /// spaces (variable names and options never contain whitespace, ':' or
  /// '='), followed by `e:<field>=<int>` tokens for any non-default
  /// epilogue field (bias/res/relu/pad). Unlike to_string(), the kind tag
  /// makes factors and choices unambiguous -- a choice option may itself
  /// look numeric ("variant=0").
  std::string serialize() const;

  /// Inverse of serialize(). Returns nullopt on malformed input (unknown
  /// kind tag, missing '=', non-integer factor value) so corrupted cache
  /// entries can be skipped instead of aborting.
  static std::optional<Strategy> parse(const std::string& text);

  friend bool operator==(const Strategy& a, const Strategy& b) {
    return a.factors_ == b.factors_ && a.choices_ == b.choices_ &&
           a.epilogue_ == b.epilogue_;
  }
  friend bool operator!=(const Strategy& a, const Strategy& b) {
    return !(a == b);
  }

 private:
  std::unordered_map<std::string, std::int64_t> factors_;
  std::unordered_map<std::string, std::string> choices_;
  EpilogueSpec epilogue_;
};

class ScheduleSpace {
 public:
  void add(FactorVar f);
  void add(ChoiceVar c);

  /// Stamp every enumerated strategy with a fused epilogue (fused operators
  /// call this from space() so the epilogue is part of each candidate).
  void set_epilogue(const EpilogueSpec& e) { epilogue_ = e; }
  const EpilogueSpec& epilogue() const { return epilogue_; }

  const std::vector<FactorVar>& factors() const { return factors_; }
  const std::vector<ChoiceVar>& choices() const { return choices_; }

  /// Number of raw assignments (before validity pruning).
  std::int64_t size() const;

  /// Enumerate all assignments; `valid`, when given, prunes.
  std::vector<Strategy> enumerate(
      const std::function<bool(const Strategy&)>& valid = nullptr) const;

 private:
  std::vector<FactorVar> factors_;
  std::vector<ChoiceVar> choices_;
  EpilogueSpec epilogue_;
};

/// A main-memory tensor the operator reads or writes.
struct TensorSpec {
  std::string name;
  std::int64_t floats = 0;
  bool is_output = false;
};

/// Tensor name -> arena address, established by the runtime.
using BoundTensors = std::unordered_map<std::string, sim::MainMemory::Addr>;

/// The interface every operator definition implements: its schedule space,
/// the lowering of a strategy into IR, and functional hooks for end-to-end
/// validation.
class OperatorDef {
 public:
  virtual ~OperatorDef() = default;

  virtual std::string name() const = 0;
  virtual ScheduleSpace space() const = 0;

  /// Lower one strategy to pre-optimization IR (no DMA nodes yet; GEMM
  /// nodes carry memory views). Returns nullptr when the assignment is
  /// structurally invalid (the scheduler skips it).
  virtual ir::StmtPtr lower(const Strategy& s) const = 0;

  virtual std::vector<TensorSpec> tensors() const = 0;

  /// Useful floating point work (2*M*N*K-style), for GFLOPS reporting.
  virtual std::int64_t flops() const = 0;

  /// Whether the double-buffering pass should run for this strategy
  /// (the "prefetch" choice when present; on by default).
  virtual bool prefetch_enabled(const Strategy& s) const;

  /// Fill input tensors with deterministic pseudo-random data, honouring
  /// the strategy's layout choices.
  virtual void fill_inputs(sim::CoreGroup& cg, const BoundTensors& bt,
                           const Strategy& s) const;

  /// Max |computed - reference| over the outputs; used by tests.
  virtual double check_output(sim::CoreGroup& cg, const BoundTensors& bt,
                              const Strategy& s) const;
};

}  // namespace swatop::dsl
