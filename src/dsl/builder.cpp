#include "dsl/builder.hpp"

#include "common/check.hpp"

namespace swatop::dsl {

namespace {

class BuiltOp final : public OperatorDef {
 public:
  BuiltOp(std::string name, ScheduleSpace space,
          std::vector<TensorSpec> tensors, std::int64_t flops,
          GemmOpBuilder::LowerFn lower, GemmOpBuilder::FillFn fill,
          GemmOpBuilder::CheckFn check)
      : name_(std::move(name)),
        space_(std::move(space)),
        tensors_(std::move(tensors)),
        flops_(flops),
        lower_(std::move(lower)),
        fill_(std::move(fill)),
        check_(std::move(check)) {}

  std::string name() const override { return name_; }
  ScheduleSpace space() const override { return space_; }
  ir::StmtPtr lower(const Strategy& s) const override { return lower_(s); }
  std::vector<TensorSpec> tensors() const override { return tensors_; }
  std::int64_t flops() const override { return flops_; }

  void fill_inputs(sim::CoreGroup& cg, const BoundTensors& bt,
                   const Strategy& s) const override {
    if (fill_) fill_(cg, bt, s);
  }
  double check_output(sim::CoreGroup& cg, const BoundTensors& bt,
                      const Strategy& s) const override {
    return check_ ? check_(cg, bt, s) : 0.0;
  }

 private:
  std::string name_;
  ScheduleSpace space_;
  std::vector<TensorSpec> tensors_;
  std::int64_t flops_;
  GemmOpBuilder::LowerFn lower_;
  GemmOpBuilder::FillFn fill_;
  GemmOpBuilder::CheckFn check_;
};

}  // namespace

std::unique_ptr<OperatorDef> GemmOpBuilder::build() {
  SWATOP_CHECK(!name_.empty()) << "operator needs a name";
  SWATOP_CHECK(!tensors_.empty()) << "operator '" << name_
                                  << "' declares no tensors";
  SWATOP_CHECK(lower_ != nullptr)
      << "operator '" << name_ << "' has no lowering rule";
  return std::make_unique<BuiltOp>(std::move(name_), std::move(space_),
                                   std::move(tensors_), flops_,
                                   std::move(lower_), std::move(fill_),
                                   std::move(check_));
}

}  // namespace swatop::dsl
