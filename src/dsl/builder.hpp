// User-facing operator construction (the embedded-DSL usage of Fig. 4):
// declare tensors, factor/choice variables and a lowering rule, and get an
// OperatorDef the scheduler and tuners accept -- no subclassing.
//
//   auto op = dsl::GemmOpBuilder("saxpy_gemm")
//       .tensor("A", m * k)
//       .tensor("B", k * n)
//       .tensor("C", m * n, /*is_output=*/true)
//       .factor({"Tm", {32, 64}})
//       .choice({"variant", {"0", "6"}})
//       .flops(2 * m * n * k)
//       .lower_with([=](const dsl::Strategy& s) { ... return nest; })
//       .build();
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dsl/dsl.hpp"

namespace swatop::dsl {

class GemmOpBuilder {
 public:
  using LowerFn = std::function<ir::StmtPtr(const Strategy&)>;
  using FillFn =
      std::function<void(sim::CoreGroup&, const BoundTensors&, const Strategy&)>;
  using CheckFn =
      std::function<double(sim::CoreGroup&, const BoundTensors&, const Strategy&)>;

  explicit GemmOpBuilder(std::string name) : name_(std::move(name)) {}

  GemmOpBuilder& tensor(std::string tname, std::int64_t floats,
                        bool is_output = false) {
    tensors_.push_back({std::move(tname), floats, is_output});
    return *this;
  }
  GemmOpBuilder& factor(FactorVar f) {
    space_.add(std::move(f));
    return *this;
  }
  GemmOpBuilder& choice(ChoiceVar c) {
    space_.add(std::move(c));
    return *this;
  }
  GemmOpBuilder& flops(std::int64_t f) {
    flops_ = f;
    return *this;
  }
  GemmOpBuilder& lower_with(LowerFn fn) {
    lower_ = std::move(fn);
    return *this;
  }
  GemmOpBuilder& fill_with(FillFn fn) {
    fill_ = std::move(fn);
    return *this;
  }
  GemmOpBuilder& check_with(CheckFn fn) {
    check_ = std::move(fn);
    return *this;
  }

  /// Validates that a name, tensors and a lowering rule were provided.
  std::unique_ptr<OperatorDef> build();

 private:
  std::string name_;
  ScheduleSpace space_;
  std::vector<TensorSpec> tensors_;
  std::int64_t flops_ = 0;
  LowerFn lower_;
  FillFn fill_;
  CheckFn check_;
};

}  // namespace swatop::dsl
