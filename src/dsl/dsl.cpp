#include "dsl/dsl.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace swatop::dsl {

std::int64_t Strategy::factor(const std::string& name) const {
  auto it = factors_.find(name);
  SWATOP_CHECK(it != factors_.end()) << "unknown factor '" << name << "'";
  return it->second;
}

const std::string& Strategy::choice(const std::string& name) const {
  auto it = choices_.find(name);
  SWATOP_CHECK(it != choices_.end()) << "unknown choice '" << name << "'";
  return it->second;
}

std::string Strategy::to_string() const {
  // Deterministic order for goldens: sort keys.
  std::vector<std::string> keys;
  for (const auto& [k, v] : factors_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  std::ostringstream os;
  for (const auto& k : keys) os << k << "=" << factors_.at(k) << " ";
  keys.clear();
  for (const auto& [k, v] : choices_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (const auto& k : keys) os << k << "=" << choices_.at(k) << " ";
  if (epilogue_.any()) os << "epi=" << epilogue_.tag() << " ";
  std::string s = os.str();
  if (!s.empty()) s.pop_back();
  return s;
}

std::string Strategy::serialize() const {
  std::vector<std::string> keys;
  for (const auto& [k, v] : factors_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  std::ostringstream os;
  for (const auto& k : keys) os << "f:" << k << "=" << factors_.at(k) << " ";
  keys.clear();
  for (const auto& [k, v] : choices_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (const auto& k : keys) os << "c:" << k << "=" << choices_.at(k) << " ";
  // Epilogue fields, only when non-default, in a fixed (sorted) order.
  if (epilogue_.bias) os << "e:bias=1 ";
  if (epilogue_.out_pad > 0) os << "e:pad=" << epilogue_.out_pad << " ";
  if (epilogue_.relu) os << "e:relu=1 ";
  if (epilogue_.residual) os << "e:res=1 ";
  std::string s = os.str();
  if (!s.empty()) s.pop_back();
  return s;
}

std::optional<Strategy> Strategy::parse(const std::string& text) {
  Strategy out;
  std::istringstream is(text);
  std::string tok;
  while (is >> tok) {
    // Token shape: ("f:"|"c:"|"e:") name "=" value.
    if (tok.size() < 4 || tok[1] != ':' ||
        (tok[0] != 'f' && tok[0] != 'c' && tok[0] != 'e'))
      return std::nullopt;
    const std::size_t eq = tok.find('=', 2);
    if (eq == std::string::npos || eq == 2 || eq + 1 >= tok.size())
      return std::nullopt;
    const std::string name = tok.substr(2, eq - 2);
    const std::string value = tok.substr(eq + 1);
    if (tok[0] == 'c') {
      out.set_choice(name, value);
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(value.c_str(), &end, 10);
    if (errno != 0 || end == value.c_str() || *end != '\0')
      return std::nullopt;
    if (tok[0] == 'f') {
      out.set_factor(name, static_cast<std::int64_t>(v));
      continue;
    }
    // Epilogue field: known names only, flags must be exactly 1 (a default
    // value is never serialized), pad must be positive.
    if (name == "bias" && v == 1) {
      out.epilogue_.bias = true;
    } else if (name == "relu" && v == 1) {
      out.epilogue_.relu = true;
    } else if (name == "res" && v == 1) {
      out.epilogue_.residual = true;
    } else if (name == "pad" && v > 0) {
      out.epilogue_.out_pad = v;
    } else {
      return std::nullopt;
    }
  }
  return out;
}

void ScheduleSpace::add(FactorVar f) {
  SWATOP_CHECK(!f.candidates.empty())
      << "factor '" << f.name << "' with no candidates";
  factors_.push_back(std::move(f));
}

void ScheduleSpace::add(ChoiceVar c) {
  SWATOP_CHECK(!c.options.empty())
      << "choice '" << c.name << "' with no options";
  choices_.push_back(std::move(c));
}

std::int64_t ScheduleSpace::size() const {
  std::int64_t n = 1;
  for (const auto& f : factors_)
    n *= static_cast<std::int64_t>(f.candidates.size());
  for (const auto& c : choices_)
    n *= static_cast<std::int64_t>(c.options.size());
  return n;
}

std::vector<Strategy> ScheduleSpace::enumerate(
    const std::function<bool(const Strategy&)>& valid) const {
  std::vector<Strategy> out;
  Strategy cur;
  cur.set_epilogue(epilogue_);
  // Recursive cartesian product over factors then choices.
  std::function<void(std::size_t)> rec_choice = [&](std::size_t ci) {
    if (ci == choices_.size()) {
      if (!valid || valid(cur)) out.push_back(cur);
      return;
    }
    for (const std::string& opt : choices_[ci].options) {
      cur.set_choice(choices_[ci].name, opt);
      rec_choice(ci + 1);
    }
  };
  std::function<void(std::size_t)> rec_factor = [&](std::size_t fi) {
    if (fi == factors_.size()) {
      rec_choice(0);
      return;
    }
    for (std::int64_t f : factors_[fi].candidates) {
      cur.set_factor(factors_[fi].name, f);
      rec_factor(fi + 1);
    }
  };
  rec_factor(0);
  return out;
}

bool OperatorDef::prefetch_enabled(const Strategy& s) const {
  return !s.has_choice("prefetch") || s.choice("prefetch") == "on";
}

void OperatorDef::fill_inputs(sim::CoreGroup&, const BoundTensors&,
                              const Strategy&) const {}

double OperatorDef::check_output(sim::CoreGroup&, const BoundTensors&,
                                 const Strategy&) const {
  return 0.0;
}

}  // namespace swatop::dsl
