#include "check/validate_ir.hpp"

#include <set>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "ir/analysis.hpp"

namespace swatop::check {

namespace ir = swatop::ir;

namespace {

struct Ctx {
  const sim::SimConfig* cfg = nullptr;
  std::vector<std::string> errors;
  std::set<std::string> allocated;
  std::vector<std::string> loops;  ///< in scope, outermost first
  std::set<std::int64_t> issued;   ///< reply slots some DMA can produce
  std::vector<std::pair<std::int64_t, std::string>> waited;

  void error(std::string msg) { errors.push_back(std::move(msg)); }
};

/// Every value `e` can take with the in-scope loop variables restricted to
/// {0, 1} -- reply expressions are affine in at most the double-buffer
/// parity `v % 2`, so this enumeration is exact for them. Empty on
/// evaluation failure (unbound variable, division by zero), which is
/// reported separately by the caller.
std::vector<std::int64_t> parity_values(const ir::Expr& e, const Ctx& c) {
  std::vector<std::string> used;
  for (const std::string& v : c.loops)
    if (ir::uses_var(e, v)) used.push_back(v);
  if (used.size() > 10) return {};  // 2^10 cap; lowering never gets close
  std::vector<std::int64_t> out;
  const std::size_t combos = std::size_t{1} << used.size();
  for (std::size_t m = 0; m < combos; ++m) {
    ir::Env env;
    for (const std::string& v : c.loops) env[v] = 0;
    for (std::size_t i = 0; i < used.size(); ++i)
      env[used[i]] = static_cast<std::int64_t>((m >> i) & 1);
    try {
      out.push_back(ir::eval(e, env));
    } catch (const CheckError&) {
      return {};
    }
  }
  return out;
}

void check_buffer(Ctx& c, const std::string& buf, const std::string& who) {
  if (buf.empty()) {
    c.error(who + " references an empty SPM buffer name");
    return;
  }
  if (c.allocated.count(buf) == 0)
    c.error(who + " references SPM buffer '" + buf +
            "' with no preceding SpmAlloc");
}

void walk(const ir::StmtPtr& s, Ctx& c) {
  if (s == nullptr) return;
  switch (s->kind) {
    case ir::StmtKind::Seq:
      for (const ir::StmtPtr& ch : s->body) walk(ch, c);
      return;
    case ir::StmtKind::For: {
      ir::Env env0;
      for (const std::string& v : c.loops) env0[v] = 0;
      try {
        const std::int64_t n = ir::eval(s->extent, env0);
        if (n <= 0) {
          std::ostringstream os;
          os << "For " << s->var << " extent " << ir::to_string(s->extent)
             << " evaluates to " << n << " <= 0 (outer variables at 0)";
          c.error(os.str());
        }
      } catch (const CheckError&) {
        c.error("For " + s->var + " extent " + ir::to_string(s->extent) +
                " references a variable not bound by an enclosing loop");
      }
      c.loops.push_back(s->var);
      walk(s->for_body, c);
      c.loops.pop_back();
      return;
    }
    case ir::StmtKind::If:
      walk(s->then_s, c);
      walk(s->else_s, c);
      return;
    case ir::StmtKind::SpmAlloc:
      if (s->buf_floats <= 0)
        c.error("SpmAlloc '" + s->buf_name + "' of " +
                std::to_string(s->buf_floats) + " floats");
      if (!c.allocated.insert(s->buf_name).second)
        c.error("duplicate SpmAlloc for buffer '" + s->buf_name + "'");
      return;
    case ir::StmtKind::SpmZero:
      check_buffer(c, s->buf_name, "SpmZero");
      return;
    case ir::StmtKind::DmaGet:
    case ir::StmtKind::DmaPut: {
      const char* who =
          s->kind == ir::StmtKind::DmaGet ? "DmaGet" : "DmaPut";
      check_buffer(c, s->dma.spm_buf, who);
      if (s->dma.view.tensor.empty())
        c.error(std::string(who) + " of buffer '" + s->dma.spm_buf +
                "' has no main-memory tensor");
      if (s->dma.epi.any()) {
        if (s->kind == ir::StmtKind::DmaGet)
          c.error("DmaGet of buffer '" + s->dma.spm_buf +
                  "' carries a fused epilogue (only a GEMM output put may)");
        if (s->dma.epi.bias && s->dma.epi.channel0 == nullptr)
          c.error("epilogue bias on buffer '" + s->dma.spm_buf +
                  "' without a channel0 expression");
        if (s->dma.epi.residual && s->dma.epi.res.tensor.empty())
          c.error("epilogue residual on buffer '" + s->dma.spm_buf +
                  "' without a residual tensor view");
      }
      if (s->dma.reply == nullptr) {
        c.error(std::string(who) + " of buffer '" + s->dma.spm_buf +
                "' has no reply slot expression");
        return;
      }
      const std::vector<std::int64_t> slots = parity_values(s->dma.reply, c);
      if (slots.empty())
        c.error(std::string(who) + " reply expression " +
                ir::to_string(s->dma.reply) + " is not evaluable");
      for (std::int64_t v : slots) {
        if (v < 0 || v >= ir::kMaxReplySlots) {
          std::ostringstream os;
          os << who << " of buffer '" << s->dma.spm_buf << "' reply slot "
             << v << " outside the " << ir::kMaxReplySlots
             << "-entry reply table";
          c.error(os.str());
        }
        c.issued.insert(v);
      }
      return;
    }
    case ir::StmtKind::DmaWait: {
      if (s->wait_reply == nullptr) {
        c.error("DmaWait with no reply slot expression");
        return;
      }
      const std::vector<std::int64_t> slots =
          parity_values(s->wait_reply, c);
      if (slots.empty())
        c.error("DmaWait reply expression " + ir::to_string(s->wait_reply) +
                " is not evaluable");
      for (std::int64_t v : slots)
        c.waited.emplace_back(v, ir::to_string(s->wait_reply));
      return;
    }
    case ir::StmtKind::Gemm: {
      const ir::GemmAttrs& g = s->gemm;
      if (g.a_buf.empty() && g.b_buf.empty() && g.c_buf.empty()) {
        c.error("gemm without SPM bindings -- DMA inference never ran");
        return;
      }
      check_buffer(c, g.a_buf, "gemm operand A");
      check_buffer(c, g.b_buf, "gemm operand B");
      check_buffer(c, g.c_buf, "gemm operand C");
      return;
    }
    case ir::StmtKind::Comment:
      return;
  }
  c.error("unknown statement kind");
}

}  // namespace

std::vector<std::string> validate_ir(const ir::StmtPtr& root,
                                     const sim::SimConfig& cfg) {
  Ctx c;
  c.cfg = &cfg;
  if (root == nullptr) return {"program is null"};
  walk(root, c);

  for (const auto& [slot, text] : c.waited) {
    if (slot < 0 || slot >= ir::kMaxReplySlots) {
      std::ostringstream os;
      os << "DmaWait slot " << slot << " (" << text << ") outside the "
         << ir::kMaxReplySlots << "-entry reply table";
      c.error(os.str());
    } else if (c.issued.count(slot) == 0) {
      std::ostringstream os;
      os << "DmaWait on reply slot " << slot << " (" << text
         << ") that no DMA in the program can issue";
      c.error(os.str());
    }
  }

  const std::int64_t footprint = ir::spm_footprint(root);
  if (footprint > cfg.spm_floats()) {
    std::ostringstream os;
    os << "SPM footprint " << footprint << " floats exceeds capacity "
       << cfg.spm_floats();
    c.error(os.str());
  }
  return std::move(c.errors);
}

void validate_ir_or_throw(const ir::StmtPtr& root,
                          const sim::SimConfig& cfg) {
  const std::vector<std::string> errors = validate_ir(root, cfg);
  if (errors.empty()) return;
  std::ostringstream os;
  os << "IR validation failed with " << errors.size() << " problem"
     << (errors.size() == 1 ? "" : "s") << ":";
  for (const std::string& e : errors) os << "\n  - " << e;
  throw CheckError(os.str());
}

}  // namespace swatop::check
