// Schedule fuzzer: draws seeded-random GEMM / convolution shapes,
// enumerates every candidate strategy the scheduler produces, runs each one
// functionally through the interpreter with the simulator sanitizers armed,
// and diffs the output against the naive reference. Any mismatch is
// minimized (dimensions shrunk while the same strategy keeps failing) and
// reported with a repro one-liner for tools/fuzz_schedules.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsl/dsl.hpp"
#include "sim/config.hpp"

namespace swatop::check {

/// A fuzzable operator instance: a family tag plus its integer dimensions.
///   matmul        d = {M, N, K}
///   implicit_conv, explicit_conv, bwd_data, bwd_filter
///                 d = {batch, ni, no, ri, ci, kr, kc, stride}
///   winograd      d = {batch, ni, no, ri, ci, kr, kc, stride, m}
/// An implicit conv may additionally carry a fused epilogue, written as a
/// `+tag` suffix on the kind ("implicit_conv+bar,p1" = bias + residual +
/// relu with output pad 1 -- dsl::EpilogueSpec::tag()).
struct OpSpec {
  std::string kind;
  std::vector<std::int64_t> d;
  dsl::EpilogueSpec epi;  ///< implicit_conv only; default = unfused

  /// "matmul:72,40,24" -- the --op argument of tools/fuzz_schedules.
  std::string to_string() const;
  static std::optional<OpSpec> parse(const std::string& text);
};

/// Instantiate the operator an OpSpec describes, or nullptr when the spec is
/// malformed or the family's applicability test rejects the dimensions.
std::unique_ptr<dsl::OperatorDef> make_op(const OpSpec& spec);

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Budget in *cases*: one case = one candidate executed functionally. The
  /// fuzzer keeps drawing shapes (enumerating every candidate of each)
  /// until the budget is spent.
  std::int64_t cases = 200;
  std::int64_t max_dim = 96;  ///< cap on random matmul dimensions
  double tolerance = 2e-3;    ///< max |computed - reference| allowed
  bool sanitize = true;       ///< arm the simulator sanitizers
  bool matmul = true;         ///< draw GEMM shapes
  bool conv = true;           ///< draw convolution shapes
  /// Stamp a random fused epilogue (bias / residual / relu / out_pad) onto
  /// every implicit-conv draw, so fused candidates sweep the same schedule
  /// space, sanitizers and reference diff as unfused ones.
  bool fused = false;
  /// Differential trace-replay smoke: additionally run every passing
  /// candidate in TimingOnly mode with a replay trace recorded, replay the
  /// trace (tune/replay.hpp) and require the replayed cycles and simulator
  /// statistics to be bit-identical to the recording run. Divergence is
  /// reported as failure kind "replay" with the first differing field.
  bool replay_diff = false;
  /// Optional progress sink (one line per shape); null = silent.
  std::function<void(const std::string&)> log;
};

struct FuzzFailure {
  /// "mismatch" (output diff over tolerance), "sanitizer" (SanitizerError),
  /// "check" (internal invariant tripped), "validator" (the scheduler's
  /// IR validator rejected a lowered program), or "replay" (trace replay
  /// diverged from the recording run; only with FuzzOptions::replay_diff).
  std::string kind;
  std::string op;        ///< OpSpec::to_string() of the (minimized) shape
  std::string strategy;  ///< Strategy::serialize(); empty for validator
  std::string detail;    ///< error text or the observed max |diff|
  std::string repro;     ///< tools/fuzz_schedules one-liner
};

struct FuzzReport {
  std::int64_t cases_run = 0;  ///< candidates executed functionally
  std::int64_t shapes = 0;     ///< shapes drawn
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Run the fuzz loop until `opts.cases` candidate executions.
FuzzReport fuzz_schedules(const FuzzOptions& opts);

/// Replay one (op, strategy) pair -- the repro path. The strategy text is
/// Strategy::serialize() output; the program is rebuilt with the same
/// lower+optimize+validate pipeline the scheduler uses.
FuzzReport replay(const std::string& op_spec, const std::string& strategy,
                  const FuzzOptions& opts);

}  // namespace swatop::check
