#include "check/fuzz.hpp"

#include <algorithm>
#include <random>
#include <sstream>

#include "check/validate_ir.hpp"
#include "common/check.hpp"
#include "ops/conv_backward.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/matmul.hpp"
#include "ops/winograd.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "sched/scheduler.hpp"
#include "tune/replay.hpp"
#include "tune/tuner.hpp"

namespace swatop::check {

namespace {

ops::ConvShape shape_of(const std::vector<std::int64_t>& d) {
  ops::ConvShape s;
  s.batch = d[0];
  s.ni = d[1];
  s.no = d[2];
  s.ri = d[3];
  s.ci = d[4];
  s.kr = d[5];
  s.kc = d[6];
  s.stride = d[7];
  return s;
}

bool conv_dims_sane(const ops::ConvShape& s) {
  return s.batch > 0 && s.ni > 0 && s.no > 0 && s.kr > 0 && s.kc > 0 &&
         s.stride > 0 && s.ri >= s.kr && s.ci >= s.kc && s.ro() > 0 &&
         s.co() > 0;
}

std::string repro_line(const OpSpec& spec, const std::string& strategy) {
  std::string line = "tools/fuzz_schedules --op " + spec.to_string();
  if (!strategy.empty()) line += " --strategy '" + strategy + "'";
  return line;
}

/// Scribble a marker over every output tensor so a schedule that fails to
/// write part of its output cannot pass by inheriting the previous
/// candidate's (correct) results from the shared arena.
void poison_outputs(sim::CoreGroup& cg, const dsl::OperatorDef& op,
                    const dsl::BoundTensors& bt) {
  for (const dsl::TensorSpec& t : op.tensors()) {
    if (!t.is_output) continue;
    auto it = bt.find(t.name);
    if (it == bt.end()) continue;
    std::span<float> v = cg.mem().view(it->second, t.floats);
    std::fill(v.begin(), v.end(), -12345.5f);
  }
}

struct Outcome {
  std::string kind;  ///< empty = pass
  std::string detail;
};

Outcome run_one(const dsl::OperatorDef& op, const dsl::Strategy& s,
                const ir::StmtPtr& prog, sim::CoreGroup& cg,
                const dsl::BoundTensors& bt, double tol) {
  op.fill_inputs(cg, bt, s);
  poison_outputs(cg, op, bt);
  rt::Interpreter interp(cg, sim::ExecMode::Functional);
  try {
    interp.run(prog, bt);
  } catch (const SanitizerError& e) {
    return {"sanitizer", e.what()};
  } catch (const CheckError& e) {
    return {"check", e.what()};
  }
  const double diff = op.check_output(cg, bt, s);
  if (!(diff <= tol)) {
    std::ostringstream os;
    os << "max |computed - reference| = " << diff;
    return {"mismatch", os.str()};
  }
  return {};
}

/// Differential trace-replay check: record a TimingOnly run's event trace,
/// replay it through the standalone booking mirror, and require cycles and
/// every CgStats field to be bit-identical. Returns the pass/fail outcome
/// (kind "replay" on divergence). Uses a fresh core group so the timing
/// run's charges never leak into the caller's functional statistics.
Outcome replay_diff_one(const dsl::OperatorDef& op, const ir::StmtPtr& prog,
                        const sim::SimConfig& cfg) {
  sim::CoreGroup cg(cfg);
  cg.mem().set_materialize(false);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, op);
  rt::ReplayTrace trace;
  rt::Interpreter interp(cg, sim::ExecMode::TimingOnly);
  interp.set_trace_sink(&trace);
  rt::RunResult run;
  try {
    run = interp.run(prog, bt);
  } catch (const SanitizerError& e) {
    return {"sanitizer", std::string("timing run: ") + e.what()};
  } catch (const CheckError& e) {
    return {"check", std::string("timing run: ") + e.what()};
  }
  if (!trace.complete) return {"replay", "recorded trace is incomplete"};
  const std::string diff = tune::replay_diff(tune::replay_trace(trace), run);
  if (!diff.empty()) return {"replay", diff};
  return {};
}

/// Whether `s` is a member of the operator's schedule space. Exact but
/// O(space); skipped (returns true) for outsized spaces so minimization
/// stays cheap.
bool strategy_in_space(const dsl::OperatorDef& op, const dsl::Strategy& s) {
  const dsl::ScheduleSpace space = op.space();
  if (space.size() > 20000) return true;
  const std::vector<dsl::Strategy> all = space.enumerate();
  return std::find(all.begin(), all.end(), s) != all.end();
}

/// Re-lower `strat` for the shape `spec` describes and check it still fails
/// with the same kind. Used by the minimizer.
bool still_fails(const OpSpec& spec, const dsl::Strategy& strat,
                 const std::string& kind, const sim::SimConfig& cfg,
                 double tol, std::string* detail) {
  const std::unique_ptr<dsl::OperatorDef> op = make_op(spec);
  if (op == nullptr) return false;
  if (!strategy_in_space(*op, strat)) return false;
  sched::Candidate cand;
  try {
    cand = tune::build_candidate(*op, strat, cfg);
  } catch (const CheckError&) {
    return false;  // strategy invalid or pruned at this shape
  }
  sim::CoreGroup cg(cfg);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, *op);
  const Outcome o = run_one(*op, strat, cand.program, cg, bt, tol);
  if (o.kind != kind) return false;
  if (detail != nullptr) *detail = o.detail;
  return true;
}

/// Greedily shrink the failing shape's dimensions (halving, one at a time)
/// while the same strategy still lowers, validates and fails the same way.
/// Bounded work: at most a few dozen re-runs, each on a smaller shape.
void minimize(OpSpec& spec, const dsl::Strategy& strat,
              const std::string& kind, const sim::SimConfig& cfg, double tol,
              std::string* detail) {
  int attempts = 0;
  bool shrunk = true;
  while (shrunk && attempts < 48) {
    shrunk = false;
    for (std::size_t i = 0; i < spec.d.size() && attempts < 48; ++i) {
      const std::int64_t v = spec.d[i];
      std::int64_t smaller = v / 2;
      if (spec.kind == "matmul") {
        // Keep 8-alignment when present so the same tiling stays valid.
        if (v % 8 == 0) smaller = (smaller / 8) * 8;
        if (smaller < 8) continue;
      } else {
        if (i >= 5) continue;  // never touch kr/kc/stride (or winograd m)
        if (smaller < 1) continue;
      }
      if (smaller >= v) continue;
      OpSpec trial = spec;
      trial.d[i] = smaller;
      ++attempts;
      if (still_fails(trial, strat, kind, cfg, tol, detail)) {
        spec = trial;
        shrunk = true;
      }
    }
  }
}

std::int64_t draw_dim8(std::mt19937_64& rng, std::int64_t max_dim) {
  const std::int64_t hi = std::max<std::int64_t>(1, max_dim / 8);
  std::int64_t v = 8 * std::uniform_int_distribution<std::int64_t>(1, hi)(rng);
  switch (std::uniform_int_distribution<int>(0, 5)(rng)) {
    case 0: v -= 1; break;  // ragged edges exercise boundary handling
    case 1: v += 1; break;
    default: break;
  }
  return std::max<std::int64_t>(8, v);
}

std::int64_t pick(std::mt19937_64& rng,
                  std::initializer_list<std::int64_t> opts) {
  const std::vector<std::int64_t> v(opts);
  return v[std::uniform_int_distribution<std::size_t>(0, v.size() - 1)(rng)];
}

OpSpec draw_spec(std::mt19937_64& rng, const FuzzOptions& opts) {
  const bool do_conv =
      opts.conv &&
      (!opts.matmul || std::uniform_int_distribution<int>(0, 1)(rng) == 1);
  if (!do_conv) {
    return OpSpec{"matmul",
                  {draw_dim8(rng, opts.max_dim), draw_dim8(rng, opts.max_dim),
                   draw_dim8(rng, opts.max_dim)}};
  }
  // Convolution: modest spatial dims (the functional GEMM is simulated in
  // software), channel counts around the 32/64 sweet spots with ragged
  // variants, occasional stride 2.
  const std::int64_t k = pick(rng, {1, 3, 3, 5});
  const std::int64_t stride =
      k == 1 ? 1 : pick(rng, {1, 1, 1, 2});
  const std::int64_t ro = std::uniform_int_distribution<std::int64_t>(2, 8)(rng);
  const std::int64_t co = std::uniform_int_distribution<std::int64_t>(2, 8)(rng);
  const std::int64_t b = std::uniform_int_distribution<std::int64_t>(1, 4)(rng);
  const std::int64_t ni = pick(rng, {8, 16, 32, 32, 33, 40, 64});
  const std::int64_t no = pick(rng, {32, 32, 33, 40, 48, 64});
  std::vector<std::int64_t> d = {b,  ni, no, k + stride * (ro - 1),
                                 k + stride * (co - 1), k, k, stride};
  const ops::ConvShape s = shape_of(d);
  std::vector<std::string> kinds = {"explicit_conv"};
  if (ops::ImplicitConvOp::applicable(s)) kinds.push_back("implicit_conv");
  if (ops::WinogradPlan::applicable(s)) kinds.push_back("winograd");
  if (s.stride == 1 && ops::ConvBwdDataOp::applicable(s))
    kinds.push_back("bwd_data");
  if (s.stride == 1 && ops::ConvBwdFilterOp::applicable(s))
    kinds.push_back("bwd_filter");
  OpSpec spec;
  spec.kind =
      kinds[std::uniform_int_distribution<std::size_t>(0, kinds.size() - 1)(
          rng)];
  spec.d = std::move(d);
  if (spec.kind == "winograd") spec.d.push_back(2);  // F(2x2) tile
  if (opts.fused && spec.kind == "implicit_conv") {
    // A non-empty random epilogue: any of the 15 bias/residual/relu/pad
    // combinations, so every fused store-path variant gets swept.
    const int mask = std::uniform_int_distribution<int>(1, 15)(rng);
    spec.epi.bias = (mask & 1) != 0;
    spec.epi.residual = (mask & 2) != 0;
    spec.epi.relu = (mask & 4) != 0;
    spec.epi.out_pad = (mask & 8) != 0 ? pick(rng, {1, 1, 2}) : 0;
  }
  return spec;
}

}  // namespace

std::string OpSpec::to_string() const {
  std::string out = kind;
  if (epi.any()) out += "+" + epi.tag();
  out += ":";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(d[i]);
  }
  return out;
}

namespace {

/// Decode dsl::EpilogueSpec::tag() ("bar", "p1", "bar,p2", ...). Strict:
/// flags must appear in tag order, the pad token last.
std::optional<dsl::EpilogueSpec> parse_epi_tag(const std::string& tag) {
  dsl::EpilogueSpec e;
  std::size_t i = 0;
  if (i < tag.size() && tag[i] == 'b') { e.bias = true; ++i; }
  if (i < tag.size() && tag[i] == 'a') { e.residual = true; ++i; }
  if (i < tag.size() && tag[i] == 'r') { e.relu = true; ++i; }
  if (i < tag.size()) {
    if (e.compute()) {
      if (tag[i] != ',') return std::nullopt;
      ++i;
    }
    if (i >= tag.size() || tag[i] != 'p') return std::nullopt;
    try {
      std::size_t used = 0;
      e.out_pad = std::stoll(tag.substr(i + 1), &used);
      if (i + 1 + used != tag.size() || e.out_pad <= 0) return std::nullopt;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (!e.any()) return std::nullopt;
  return e;
}

}  // namespace

std::optional<OpSpec> OpSpec::parse(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  OpSpec spec;
  spec.kind = text.substr(0, colon);
  if (const std::size_t plus = spec.kind.find('+');
      plus != std::string::npos) {
    const auto epi = parse_epi_tag(spec.kind.substr(plus + 1));
    if (!epi || plus == 0) return std::nullopt;
    spec.epi = *epi;
    spec.kind = spec.kind.substr(0, plus);
  }
  std::istringstream is(text.substr(colon + 1));
  std::string tok;
  while (std::getline(is, tok, ',')) {
    try {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(tok, &used);
      if (used != tok.size()) return std::nullopt;
      spec.d.push_back(v);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (spec.d.empty()) return std::nullopt;
  return spec;
}

std::unique_ptr<dsl::OperatorDef> make_op(const OpSpec& spec) {
  // Only the implicit-GEMM design lowers a fused epilogue.
  if (spec.epi.any() && spec.kind != "implicit_conv") return nullptr;
  if (spec.kind == "matmul") {
    if (spec.d.size() != 3 || spec.d[0] <= 0 || spec.d[1] <= 0 ||
        spec.d[2] <= 0)
      return nullptr;
    return std::make_unique<ops::MatmulOp>(spec.d[0], spec.d[1], spec.d[2]);
  }
  const bool winograd = spec.kind == "winograd";
  if (spec.d.size() != (winograd ? std::size_t{9} : std::size_t{8}))
    return nullptr;
  const ops::ConvShape s = shape_of(spec.d);
  if (!conv_dims_sane(s)) return nullptr;
  if (spec.kind == "explicit_conv") {
    if (!ops::ExplicitConvOp::applicable(s)) return nullptr;
    return std::make_unique<ops::ExplicitConvOp>(s);
  }
  if (spec.kind == "implicit_conv") {
    if (!ops::ImplicitConvOp::applicable(s)) return nullptr;
    return std::make_unique<ops::ImplicitConvOp>(s, spec.epi);
  }
  if (winograd) {
    if (!ops::WinogradPlan::applicable(s)) return nullptr;
    const std::int64_t m = spec.d[8];
    if (m != 2 && m != 4) return nullptr;
    return std::make_unique<ops::WinogradGemmOp>(s, m);
  }
  if (spec.kind == "bwd_data") {
    if (s.stride != 1 || !ops::ConvBwdDataOp::applicable(s)) return nullptr;
    return std::make_unique<ops::ConvBwdDataOp>(s);
  }
  if (spec.kind == "bwd_filter") {
    if (s.stride != 1 || !ops::ConvBwdFilterOp::applicable(s)) return nullptr;
    return std::make_unique<ops::ConvBwdFilterOp>(s);
  }
  return nullptr;
}

FuzzReport fuzz_schedules(const FuzzOptions& opts) {
  FuzzReport rep;
  std::mt19937_64 rng(opts.seed);
  sim::SimConfig cfg;
  cfg.sanitize.enabled = opts.sanitize;
  const sched::Scheduler sched(cfg);
  while (rep.cases_run < opts.cases) {
    const OpSpec spec = draw_spec(rng, opts);
    const std::unique_ptr<dsl::OperatorDef> op = make_op(spec);
    if (op == nullptr) continue;  // inapplicable draw; redraw
    ++rep.shapes;
    std::vector<sched::Candidate> cands;
    try {
      cands = sched.candidates(*op);
    } catch (const CheckError& e) {
      rep.failures.push_back(
          {"validator", spec.to_string(), "", e.what(), repro_line(spec, "")});
      continue;
    }
    if (opts.log) {
      std::ostringstream os;
      os << spec.to_string() << ": " << cands.size() << " candidates ("
         << rep.cases_run << "/" << opts.cases << " cases)";
      opts.log(os.str());
    }
    if (cands.empty()) continue;
    sim::CoreGroup cg(cfg);
    const dsl::BoundTensors bt = rt::bind_tensors(cg, *op);
    for (const sched::Candidate& cand : cands) {
      if (rep.cases_run >= opts.cases) break;
      ++rep.cases_run;
      Outcome o =
          run_one(*op, cand.strategy, cand.program, cg, bt, opts.tolerance);
      if (o.kind.empty() && opts.replay_diff)
        o = replay_diff_one(*op, cand.program, cfg);
      if (o.kind.empty()) continue;
      FuzzFailure f;
      f.kind = o.kind;
      f.detail = o.detail;
      f.strategy = cand.strategy.serialize();
      OpSpec small = spec;
      if (o.kind == "mismatch")
        minimize(small, cand.strategy, o.kind, cfg, opts.tolerance,
                 &f.detail);
      f.op = small.to_string();
      f.repro = repro_line(small, f.strategy);
      rep.failures.push_back(std::move(f));
      if (opts.log) opts.log("FAIL [" + f.kind + "] " + f.repro);
    }
  }
  return rep;
}

FuzzReport replay(const std::string& op_spec, const std::string& strategy,
                  const FuzzOptions& opts) {
  FuzzReport rep;
  rep.shapes = 1;
  const std::optional<OpSpec> spec = OpSpec::parse(op_spec);
  if (!spec) {
    rep.failures.push_back({"check", op_spec, strategy,
                            "malformed --op spec", repro_line({}, strategy)});
    return rep;
  }
  const std::unique_ptr<dsl::OperatorDef> op = make_op(*spec);
  if (op == nullptr) {
    rep.failures.push_back({"check", op_spec, strategy,
                            "spec fails the operator's applicability test",
                            repro_line(*spec, strategy)});
    return rep;
  }
  const std::optional<dsl::Strategy> strat = dsl::Strategy::parse(strategy);
  if (!strat) {
    rep.failures.push_back({"check", op_spec, strategy,
                            "malformed --strategy text",
                            repro_line(*spec, strategy)});
    return rep;
  }
  sim::SimConfig cfg;
  cfg.sanitize.enabled = opts.sanitize;
  sched::Candidate cand;
  try {
    cand = tune::build_candidate(*op, *strat, cfg);
  } catch (const CheckError& e) {
    rep.failures.push_back({"check", op_spec, strategy, e.what(),
                            repro_line(*spec, strategy)});
    return rep;
  }
  const std::vector<std::string> verrs = validate_ir(cand.program, cfg);
  if (!verrs.empty()) {
    std::string detail = "IR validation failed:";
    for (const std::string& e : verrs) detail += "\n  - " + e;
    rep.failures.push_back({"validator", op_spec, strategy, detail,
                            repro_line(*spec, strategy)});
    return rep;
  }
  rep.cases_run = 1;
  sim::CoreGroup cg(cfg);
  const dsl::BoundTensors bt = rt::bind_tensors(cg, *op);
  Outcome o = run_one(*op, *strat, cand.program, cg, bt, opts.tolerance);
  if (o.kind.empty() && opts.replay_diff)
    o = replay_diff_one(*op, cand.program, cfg);
  if (!o.kind.empty())
    rep.failures.push_back({o.kind, op_spec, strategy, o.detail,
                            repro_line(*spec, strategy)});
  return rep;
}

}  // namespace swatop::check
