// Static IR validator: structural sanity of a lowered (and optimized)
// program, run by the scheduler after lower+optimize so malformed programs
// are rejected before they reach the interpreter or the C emitter. The
// validator is the static half of the correctness layer; the simulator
// sanitizers (SimConfig::sanitize) are the dynamic half.
#pragma once

#include <string>
#include <vector>

#include "ir/node.hpp"
#include "sim/config.hpp"

namespace swatop::check {

/// Validate a program, returning every problem found (empty = valid):
///   - SPM buffer references (zero / DMA / gemm operands) to buffers never
///     allocated, or used before their SpmAlloc in program order;
///   - duplicate or non-positive SpmAlloc;
///   - aggregate SPM footprint over the machine's capacity;
///   - DmaWait on a reply slot no DMA in the program can issue, or slots
///     outside the reply table (reply expressions are evaluated over all
///     parity assignments of the loop variables, which covers the
///     double-buffering pass's `base + 2*s + (v % 2)` remapping);
///   - For extents that can evaluate <= 0 (outer loop variables at 0);
///   - gemm nodes without SPM bindings (DMA inference never ran).
std::vector<std::string> validate_ir(const ir::StmtPtr& root,
                                     const sim::SimConfig& cfg);

/// Throws swatop::CheckError listing every problem when validation fails.
void validate_ir_or_throw(const ir::StmtPtr& root, const sim::SimConfig& cfg);

}  // namespace swatop::check
