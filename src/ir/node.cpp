#include "ir/node.hpp"

#include "common/check.hpp"

namespace swatop::ir {

StmtPtr make_seq(std::vector<StmtPtr> body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Seq;
  s->body = std::move(body);
  return s;
}

StmtPtr make_for(std::string var, Expr extent, StmtPtr body,
                 bool reduction) {
  SWATOP_CHECK(!var.empty()) << "for loop without variable";
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::For;
  s->var = std::move(var);
  s->extent = std::move(extent);
  s->for_body = std::move(body);
  s->reduction = reduction;
  return s;
}

StmtPtr make_if(Expr cond, StmtPtr then_s, StmtPtr else_s) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::If;
  s->cond = std::move(cond);
  s->then_s = std::move(then_s);
  s->else_s = std::move(else_s);
  return s;
}

StmtPtr make_spm_alloc(std::string name, std::int64_t floats,
                       bool double_buffered) {
  SWATOP_CHECK(floats > 0) << "SPM alloc of " << floats << " floats";
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::SpmAlloc;
  s->buf_name = std::move(name);
  s->buf_floats = floats;
  s->double_buffered = double_buffered;
  return s;
}

StmtPtr make_spm_zero(std::string buf, Expr off, Expr floats) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::SpmZero;
  s->buf_name = std::move(buf);
  s->zero_off = std::move(off);
  s->zero_floats = std::move(floats);
  return s;
}

StmtPtr make_dma(StmtKind get_or_put, DmaAttrs attrs) {
  SWATOP_CHECK(get_or_put == StmtKind::DmaGet ||
               get_or_put == StmtKind::DmaPut)
      << "make_dma with non-DMA kind";
  auto s = std::make_shared<Stmt>();
  s->kind = get_or_put;
  s->dma = std::move(attrs);
  return s;
}

StmtPtr make_dma_wait(Expr reply) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::DmaWait;
  s->wait_reply = std::move(reply);
  return s;
}

StmtPtr make_gemm(GemmAttrs attrs) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Gemm;
  s->gemm = std::move(attrs);
  return s;
}

StmtPtr make_comment(std::string text) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Comment;
  s->text = std::move(text);
  return s;
}

StmtPtr deep_copy(const StmtPtr& s) {
  if (s == nullptr) return nullptr;
  auto n = std::make_shared<Stmt>(*s);
  n->body.clear();
  for (const StmtPtr& c : s->body) n->body.push_back(deep_copy(c));
  n->for_body = deep_copy(s->for_body);
  n->then_s = deep_copy(s->then_s);
  n->else_s = deep_copy(s->else_s);
  return n;
}

void seq_push(StmtPtr& seq, StmtPtr child) {
  SWATOP_CHECK(seq != nullptr && seq->kind == StmtKind::Seq)
      << "seq_push on non-Seq";
  seq->body.push_back(std::move(child));
}

}  // namespace swatop::ir
