// Static analyses over the statement IR used by the optimizer passes, the
// scheduler's validity pruning, and the cost model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/node.hpp"

namespace swatop::ir {

/// Per-CPE SPM floats the program allocates (double-buffered allocations
/// count twice), including the 32-byte alignment the runtime applies.
std::int64_t spm_footprint(const StmtPtr& s);

/// All loop variables, outermost first along each path.
std::vector<std::string> loop_vars(const StmtPtr& s);

/// Pointers to every Gemm node (pre- or post-inference).
std::vector<Stmt*> find_gemms(const StmtPtr& s);

/// Pointers to every DMA get/put node.
std::vector<Stmt*> find_dmas(const StmtPtr& s);

/// Number of Gemm executions when all loop extents evaluate under `env`
/// extended with each loop var bound over its range; loop extents that
/// depend on outer vars are evaluated at iteration 0 of those vars (this is
/// the static approximation the model-based tuner relies on).
std::int64_t static_gemm_count(const StmtPtr& s, Env env = {});

/// True if the statement subtree contains a node of the given kind.
bool contains_kind(const StmtPtr& s, StmtKind k);

}  // namespace swatop::ir
