// Statement IR: the abstract syntax tree the scheduler lowers schedule
// strategies into (Sec. 4.4). Nodes are For / If / Seq / SPM allocation /
// DMA get-put-wait / GEMM, each carrying attribute expressions; schedule
// transformations and the IR optimizer work by mutating this tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace swatop::ir {

/// Size of the reply-word table every lowered program may address. Shared
/// by the interpreter (its completion-time table), the double-buffering
/// pass (which remaps reply slots into the prefetch range) and the C
/// emitter (the generated `swReplyWord reply[...]` declaration) -- the
/// three must agree or a schedule that is legal for one layer silently
/// corrupts another.
inline constexpr std::int64_t kMaxReplySlots = 256;

/// First reply slot owned by the double-buffering pass. Slots below this
/// are the DMA-inference operand streams (one per tensor operand); the
/// pass maps stream slot `s` with parity `p` to `kPrefetchReplyBase +
/// 2*s + p`.
inline constexpr std::int64_t kPrefetchReplyBase = 100;

enum class StmtKind {
  Seq,
  For,
  If,
  SpmAlloc,
  SpmZero,
  DmaGet,
  DmaPut,
  DmaWait,
  Gemm,
  Comment,
};

enum class Direction { MemToSpm, SpmToMem };

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

/// A 2D matrix view into a named main-memory tensor: element (i, j) lives at
/// float offset base + i*stride_r + j*stride_c; the view spans rows x cols
/// valid elements. Views are attached to GEMM operands by lowering and moved
/// onto DMA nodes by DMA inference.
struct ViewAttrs {
  std::string tensor;
  Expr base;
  std::int64_t stride_r = 1;
  std::int64_t stride_c = 0;
  Expr rows;  ///< valid rows (may be a boundary min())
  Expr cols;  ///< valid cols
};

/// Elementwise epilogue fused into the GEMM's C store path: while the
/// output tile streams from SPM to memory, apply
///   bias   : += bias_tensor[channel0 + local output-channel index]
///   res    : += res view element at the tile's (row, col)
///   relu   : max(x, 0) last
/// Lowering attaches this to the GemmAttrs; DMA inference moves it onto the
/// final C DmaPut (rejecting schedules that put partial sums). The order
/// bias -> residual -> relu matches the unfused graph passes bitwise.
struct EpilogueAttrs {
  bool bias = false;
  bool residual = false;
  bool relu = false;
  /// True when the C tile's SPM rows run over output channels (kernel
  /// variant vectorizes M); false when channels run over columns. Decides
  /// which tile index selects the bias element.
  bool channels_on_rows = false;
  /// First output channel covered by this GEMM's C tile (absolute index
  /// into the bias tensor).
  Expr channel0;
  /// Residual operand view; same rows/cols as the C view, unpadded output
  /// strides. Tensor name is looked up in the bound tensors ("res").
  ViewAttrs res;

  bool any() const { return bias || residual || relu; }
};

/// GEMM statement: C[c_buf] += alpha * op(A[a_buf]) x op(B[b_buf]) on SPM
/// tiles, dims padded to primitive validity; `a/b/c` keep the memory views
/// until DMA inference consumes them and fills the buffer bindings.
struct GemmAttrs {
  // Primitive dims. Constants under the lightweight-padding boundary
  // strategy; min() expressions under parameter switching.
  Expr M, N, K;
  float alpha = 1.0f;
  int variant = 0;  ///< isa::KernelVariant index

  // Memory views (pre-inference).
  ViewAttrs a, b, c;

  // SPM bindings (post-inference). Offsets include double-buffer parity.
  std::string a_buf, b_buf, c_buf;
  Expr a_off, b_off, c_off;

  /// Fused elementwise tail; applied by the C store, not the GEMM itself.
  EpilogueAttrs epi;
};

/// DMA node (the paper's DMA_CPE after inference): move the view's valid
/// rows x cols region between main memory and the SPM tile grid. The SPM
/// tile is (rows_p x cols_p) split 8x8 across CPEs, each local tile stored
/// column-major with leading dimension rows_p/8.
struct DmaAttrs {
  ViewAttrs view;
  /// Tile grid dims (divisible by the mesh). Constants under lightweight
  /// padding; the same min() expressions as the gemm dims under parameter
  /// switching, where the grid shrinks with the boundary tile.
  Expr rows_p;
  Expr cols_p;
  std::string spm_buf;
  Expr spm_off;  ///< offset within the buffer (double-buffer parity)
  Expr reply;    ///< reply-word slot id
  Direction dir = Direction::MemToSpm;
  bool scatter = true;  ///< 8x8 scatter vs replicate to every CPE
  /// True when view-row blocks map to mesh row ids (the natural
  /// orientation); false when the view was transposed to feed a row-major
  /// kernel operand, in which case view-row blocks map to column ids.
  bool rows_to_rid = true;
  /// Fused elementwise tail (DmaPut of a GEMM output only); moved here
  /// from GemmAttrs by DMA inference.
  EpilogueAttrs epi;
};

struct Stmt {
  StmtKind kind = StmtKind::Seq;

  // Seq
  std::vector<StmtPtr> body;

  // For: for (var = 0; var < extent; ++var) for_body
  std::string var;
  Expr extent;
  StmtPtr for_body;
  bool prefetched = false;  ///< marker: double-buffering applied here
  bool reduction = false;   ///< iterations accumulate into the gemm output

  // If
  Expr cond;
  StmtPtr then_s;
  StmtPtr else_s;

  // SpmAlloc / SpmZero
  std::string buf_name;
  std::int64_t buf_floats = 0;   ///< per-CPE floats (before doubling)
  bool double_buffered = false;  ///< SpmAlloc: two halves
  Expr zero_off;                 ///< SpmZero: offset
  Expr zero_floats;              ///< SpmZero: count

  // DmaGet / DmaPut
  DmaAttrs dma;

  // DmaWait
  Expr wait_reply;

  // Gemm
  GemmAttrs gemm;

  // Comment
  std::string text;
};

// -- constructors ------------------------------------------------------------
StmtPtr make_seq(std::vector<StmtPtr> body = {});
StmtPtr make_for(std::string var, Expr extent, StmtPtr body,
                 bool reduction = false);
StmtPtr make_if(Expr cond, StmtPtr then_s, StmtPtr else_s = nullptr);
StmtPtr make_spm_alloc(std::string name, std::int64_t floats,
                       bool double_buffered = false);
StmtPtr make_spm_zero(std::string buf, Expr off, Expr floats);
StmtPtr make_dma(StmtKind get_or_put, DmaAttrs attrs);
StmtPtr make_dma_wait(Expr reply);
StmtPtr make_gemm(GemmAttrs attrs);
StmtPtr make_comment(std::string text);

/// Deep structural copy (expressions are shared; they are immutable).
StmtPtr deep_copy(const StmtPtr& s);

/// Append a child to a Seq (creating the body vector as needed).
void seq_push(StmtPtr& seq, StmtPtr child);

}  // namespace swatop::ir
