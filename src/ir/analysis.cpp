#include "ir/analysis.hpp"

#include "common/math_util.hpp"
#include "ir/mutator.hpp"

namespace swatop::ir {

std::int64_t spm_footprint(const StmtPtr& s) {
  std::int64_t total = 0;
  visit(s, [&](const StmtPtr& n) {
    if (n->kind == StmtKind::SpmAlloc) {
      const std::int64_t one = align_up(n->buf_floats, 8);
      total += n->double_buffered ? 2 * one : one;
    }
  });
  return total;
}

std::vector<std::string> loop_vars(const StmtPtr& s) {
  std::vector<std::string> vars;
  visit(s, [&](const StmtPtr& n) {
    if (n->kind == StmtKind::For) vars.push_back(n->var);
  });
  return vars;
}

std::vector<Stmt*> find_gemms(const StmtPtr& s) {
  std::vector<Stmt*> out;
  visit(s, [&](const StmtPtr& n) {
    if (n->kind == StmtKind::Gemm) out.push_back(n.get());
  });
  return out;
}

std::vector<Stmt*> find_dmas(const StmtPtr& s) {
  std::vector<Stmt*> out;
  visit(s, [&](const StmtPtr& n) {
    if (n->kind == StmtKind::DmaGet || n->kind == StmtKind::DmaPut)
      out.push_back(n.get());
  });
  return out;
}

namespace {

std::int64_t count_rec(const StmtPtr& s, Env& env) {
  if (s == nullptr) return 0;
  switch (s->kind) {
    case StmtKind::Seq: {
      std::int64_t c = 0;
      for (const StmtPtr& b : s->body) c += count_rec(b, env);
      return c;
    }
    case StmtKind::For: {
      const std::int64_t n = eval(s->extent, env);
      env[s->var] = 0;
      const std::int64_t inner = count_rec(s->for_body, env);
      env.erase(s->var);
      return n * inner;
    }
    case StmtKind::If: {
      // Static approximation: assume the then-branch (boundary ifs guard
      // rare alternates; the optimizer keeps the common case in `then`).
      return count_rec(s->then_s, env);
    }
    case StmtKind::Gemm:
      return 1;
    default:
      return 0;
  }
}

}  // namespace

std::int64_t static_gemm_count(const StmtPtr& s, Env env) {
  return count_rec(s, env);
}

bool contains_kind(const StmtPtr& s, StmtKind k) {
  bool found = false;
  visit(s, [&](const StmtPtr& n) { found = found || n->kind == k; });
  return found;
}

}  // namespace swatop::ir
