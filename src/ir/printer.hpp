// Human-readable dump of the statement IR, used by tests and debugging.
#pragma once

#include <string>

#include "ir/node.hpp"

namespace swatop::ir {

std::string print(const StmtPtr& s);

}  // namespace swatop::ir
