#include "ir/mutator.hpp"

#include "common/check.hpp"

namespace swatop::ir {

void visit(const StmtPtr& s, const std::function<void(const StmtPtr&)>& fn) {
  if (s == nullptr) return;
  fn(s);
  for (const StmtPtr& c : s->body) visit(c, fn);
  visit(s->for_body, fn);
  visit(s->then_s, fn);
  visit(s->else_s, fn);
}

StmtPtr transform(StmtPtr s, const std::function<StmtPtr(StmtPtr)>& fn) {
  if (s == nullptr) return nullptr;
  if (!s->body.empty()) {
    std::vector<StmtPtr> nb;
    nb.reserve(s->body.size());
    for (StmtPtr& c : s->body) {
      StmtPtr t = transform(std::move(c), fn);
      if (t != nullptr) nb.push_back(std::move(t));
    }
    s->body = std::move(nb);
  }
  if (s->for_body != nullptr) {
    StmtPtr t = transform(std::move(s->for_body), fn);
    SWATOP_CHECK(t != nullptr) << "cannot delete the body of a For";
    s->for_body = std::move(t);
  }
  if (s->then_s != nullptr) s->then_s = transform(std::move(s->then_s), fn);
  if (s->else_s != nullptr) s->else_s = transform(std::move(s->else_s), fn);
  return fn(std::move(s));
}

}  // namespace swatop::ir
