// Traversal and mutation utilities over the statement IR.
#pragma once

#include <functional>

#include "ir/node.hpp"

namespace swatop::ir {

/// Pre-order visit of every statement node.
void visit(const StmtPtr& s, const std::function<void(const StmtPtr&)>& fn);

/// Post-order rewrite: children are transformed first, then `fn` is applied
/// to the (possibly updated) node. Returning a different StmtPtr replaces
/// the node; returning the argument keeps it. `fn` may return nullptr to
/// delete the node (only valid inside a Seq).
StmtPtr transform(StmtPtr s, const std::function<StmtPtr(StmtPtr)>& fn);

}  // namespace swatop::ir
