#include "ir/printer.hpp"

#include <sstream>

namespace swatop::ir {

namespace {

void print_view(std::ostringstream& os, const ViewAttrs& v) {
  os << v.tensor << "[base=" << to_string(v.base) << ", " << to_string(v.rows)
     << "x" << to_string(v.cols) << ", sr=" << v.stride_r
     << ", sc=" << v.stride_c << "]";
}

void print_rec(std::ostringstream& os, const StmtPtr& s, int depth) {
  if (s == nullptr) return;
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (s->kind) {
    case StmtKind::Seq:
      for (const StmtPtr& c : s->body) print_rec(os, c, depth);
      break;
    case StmtKind::For:
      os << pad << "for " << s->var << " in [0, " << to_string(s->extent)
         << ")" << (s->prefetched ? "  // prefetched" : "") << " {\n";
      print_rec(os, s->for_body, depth + 1);
      os << pad << "}\n";
      break;
    case StmtKind::If:
      os << pad << "if (" << to_string(s->cond) << ") {\n";
      print_rec(os, s->then_s, depth + 1);
      if (s->else_s != nullptr) {
        os << pad << "} else {\n";
        print_rec(os, s->else_s, depth + 1);
      }
      os << pad << "}\n";
      break;
    case StmtKind::SpmAlloc:
      os << pad << "spm_alloc " << s->buf_name << "[" << s->buf_floats << "]"
         << (s->double_buffered ? " x2 (double buffered)" : "") << "\n";
      break;
    case StmtKind::SpmZero:
      os << pad << "spm_zero " << s->buf_name << " + "
         << to_string(s->zero_off) << ", " << to_string(s->zero_floats)
         << "\n";
      break;
    case StmtKind::DmaGet:
    case StmtKind::DmaPut:
      os << pad << (s->kind == StmtKind::DmaGet ? "dma_get " : "dma_put ");
      print_view(os, s->dma.view);
      os << (s->kind == StmtKind::DmaGet ? " -> " : " <- ") << s->dma.spm_buf
         << " + " << to_string(s->dma.spm_off) << " (tile "
         << to_string(s->dma.rows_p) << "x" << to_string(s->dma.cols_p)
         << ", reply " << to_string(s->dma.reply)
         << (s->dma.scatter ? ", scatter" : ", replicate") << ")";
      if (s->dma.epi.any()) {
        os << "  // epilogue:";
        if (s->dma.epi.bias)
          os << " bias@" << to_string(s->dma.epi.channel0);
        if (s->dma.epi.residual) {
          os << " add ";
          print_view(os, s->dma.epi.res);
        }
        if (s->dma.epi.relu) os << " relu";
      }
      os << "\n";
      break;
    case StmtKind::DmaWait:
      os << pad << "dma_wait " << to_string(s->wait_reply) << "\n";
      break;
    case StmtKind::Gemm: {
      const GemmAttrs& g = s->gemm;
      os << pad << "gemm_op M=" << to_string(g.M) << " N=" << to_string(g.N)
         << " K=" << to_string(g.K) << " variant=" << g.variant;
      if (!g.a_buf.empty()) {
        os << " A=" << g.a_buf << "+" << to_string(g.a_off) << " B=" << g.b_buf
           << "+" << to_string(g.b_off) << " C=" << g.c_buf << "+"
           << to_string(g.c_off);
      } else {
        os << " A=";
        print_view(os, g.a);
        os << " B=";
        print_view(os, g.b);
        os << " C=";
        print_view(os, g.c);
      }
      os << "\n";
      break;
    }
    case StmtKind::Comment:
      os << pad << "// " << s->text << "\n";
      break;
  }
}

}  // namespace

std::string print(const StmtPtr& s) {
  std::ostringstream os;
  print_rec(os, s, 0);
  return os.str();
}

}  // namespace swatop::ir
