// Integer expression AST used throughout the IR: loop bounds, tensor
// offsets, boundary min() sizes, double-buffer parities.
//
// Expressions are immutable shared trees. Address expressions of DL
// operators are affine in the enclosing loop variables (Sec. 4.5.2), which
// is what makes DMA inference and auto-prefetch address inference decidable;
// min/select appear only through boundary processing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

namespace swatop::ir {

enum class ExprKind {
  Const,
  Var,
  Add,
  Sub,
  Mul,
  FloorDiv,
  Mod,
  Min,
  Max,
  Select,  ///< a != 0 ? b : c
  Lt,      ///< a < b (0/1)
  Ge,      ///< a >= b (0/1)
};

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

struct ExprNode {
  ExprKind kind = ExprKind::Const;
  std::int64_t value = 0;  ///< Const payload
  std::string name;        ///< Var payload
  Expr a, b, c;            ///< operands
};

/// Environment binding variable names to values.
using Env = std::unordered_map<std::string, std::int64_t>;

// -- constructors (with local constant folding) -----------------------------
Expr cst(std::int64_t v);
Expr var(std::string name);
Expr add(Expr a, Expr b);
Expr sub(Expr a, Expr b);
Expr mul(Expr a, Expr b);
Expr floordiv(Expr a, Expr b);
Expr mod(Expr a, Expr b);
Expr min2(Expr a, Expr b);
Expr max2(Expr a, Expr b);
Expr select(Expr cond, Expr then_e, Expr else_e);
Expr lt(Expr a, Expr b);
Expr ge(Expr a, Expr b);

// Operator sugar for readable lowering code.
inline Expr operator+(Expr a, Expr b) { return add(std::move(a), std::move(b)); }
inline Expr operator-(Expr a, Expr b) { return sub(std::move(a), std::move(b)); }
inline Expr operator*(Expr a, Expr b) { return mul(std::move(a), std::move(b)); }
inline Expr operator+(Expr a, std::int64_t b) { return add(std::move(a), cst(b)); }
inline Expr operator*(Expr a, std::int64_t b) { return mul(std::move(a), cst(b)); }

// -- queries -----------------------------------------------------------------

/// Evaluate under `env`; throws CheckError on an unbound variable.
std::int64_t eval(const Expr& e, const Env& env);

/// True if the expression mentions `name`.
bool uses_var(const Expr& e, const std::string& name);

/// Replace every occurrence of variable `name` with `repl`.
Expr substitute(const Expr& e, const std::string& name, const Expr& repl);

/// True if `e` is a constant (after folding).
bool is_const(const Expr& e);
std::int64_t as_cst(const Expr& e);

std::string to_string(const Expr& e);

}  // namespace swatop::ir
