#include "ir/expr.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace swatop::ir {

namespace {

Expr make(ExprKind k, Expr a = nullptr, Expr b = nullptr, Expr c = nullptr) {
  auto n = std::make_shared<ExprNode>();
  n->kind = k;
  n->a = std::move(a);
  n->b = std::move(b);
  n->c = std::move(c);
  return n;
}

bool both_const(const Expr& a, const Expr& b) {
  return a->kind == ExprKind::Const && b->kind == ExprKind::Const;
}

}  // namespace

Expr cst(std::int64_t v) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::Const;
  n->value = v;
  return n;
}

Expr var(std::string name) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::Var;
  n->name = std::move(name);
  return n;
}

Expr add(Expr a, Expr b) {
  if (both_const(a, b)) return cst(a->value + b->value);
  if (a->kind == ExprKind::Const && a->value == 0) return b;
  if (b->kind == ExprKind::Const && b->value == 0) return a;
  return make(ExprKind::Add, std::move(a), std::move(b));
}

Expr sub(Expr a, Expr b) {
  if (both_const(a, b)) return cst(a->value - b->value);
  if (b->kind == ExprKind::Const && b->value == 0) return a;
  return make(ExprKind::Sub, std::move(a), std::move(b));
}

Expr mul(Expr a, Expr b) {
  if (both_const(a, b)) return cst(a->value * b->value);
  if (a->kind == ExprKind::Const && a->value == 1) return b;
  if (b->kind == ExprKind::Const && b->value == 1) return a;
  if ((a->kind == ExprKind::Const && a->value == 0) ||
      (b->kind == ExprKind::Const && b->value == 0))
    return cst(0);
  return make(ExprKind::Mul, std::move(a), std::move(b));
}

Expr floordiv(Expr a, Expr b) {
  if (both_const(a, b)) {
    SWATOP_CHECK(b->value != 0) << "division by zero in expression";
    return cst(a->value / b->value);
  }
  if (b->kind == ExprKind::Const && b->value == 1) return a;
  return make(ExprKind::FloorDiv, std::move(a), std::move(b));
}

Expr mod(Expr a, Expr b) {
  if (both_const(a, b)) {
    SWATOP_CHECK(b->value != 0) << "mod by zero in expression";
    return cst(a->value % b->value);
  }
  return make(ExprKind::Mod, std::move(a), std::move(b));
}

Expr min2(Expr a, Expr b) {
  if (both_const(a, b)) return cst(std::min(a->value, b->value));
  return make(ExprKind::Min, std::move(a), std::move(b));
}

Expr max2(Expr a, Expr b) {
  if (both_const(a, b)) return cst(std::max(a->value, b->value));
  return make(ExprKind::Max, std::move(a), std::move(b));
}

Expr select(Expr cond, Expr then_e, Expr else_e) {
  if (cond->kind == ExprKind::Const)
    return cond->value != 0 ? then_e : else_e;
  return make(ExprKind::Select, std::move(cond), std::move(then_e),
              std::move(else_e));
}

Expr lt(Expr a, Expr b) {
  if (both_const(a, b)) return cst(a->value < b->value ? 1 : 0);
  return make(ExprKind::Lt, std::move(a), std::move(b));
}

Expr ge(Expr a, Expr b) {
  if (both_const(a, b)) return cst(a->value >= b->value ? 1 : 0);
  return make(ExprKind::Ge, std::move(a), std::move(b));
}

std::int64_t eval(const Expr& e, const Env& env) {
  SWATOP_CHECK(e != nullptr) << "eval of null expression";
  switch (e->kind) {
    case ExprKind::Const:
      return e->value;
    case ExprKind::Var: {
      auto it = env.find(e->name);
      SWATOP_CHECK(it != env.end()) << "unbound variable '" << e->name << "'";
      return it->second;
    }
    case ExprKind::Add:
      return eval(e->a, env) + eval(e->b, env);
    case ExprKind::Sub:
      return eval(e->a, env) - eval(e->b, env);
    case ExprKind::Mul:
      return eval(e->a, env) * eval(e->b, env);
    case ExprKind::FloorDiv: {
      const std::int64_t d = eval(e->b, env);
      SWATOP_CHECK(d != 0) << "division by zero";
      return eval(e->a, env) / d;
    }
    case ExprKind::Mod: {
      const std::int64_t d = eval(e->b, env);
      SWATOP_CHECK(d != 0) << "mod by zero";
      return eval(e->a, env) % d;
    }
    case ExprKind::Min:
      return std::min(eval(e->a, env), eval(e->b, env));
    case ExprKind::Max:
      return std::max(eval(e->a, env), eval(e->b, env));
    case ExprKind::Select:
      return eval(e->a, env) != 0 ? eval(e->b, env) : eval(e->c, env);
    case ExprKind::Lt:
      return eval(e->a, env) < eval(e->b, env) ? 1 : 0;
    case ExprKind::Ge:
      return eval(e->a, env) >= eval(e->b, env) ? 1 : 0;
  }
  SWATOP_UNREACHABLE("bad expr kind");
}

bool uses_var(const Expr& e, const std::string& name) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::Var) return e->name == name;
  return uses_var(e->a, name) || uses_var(e->b, name) || uses_var(e->c, name);
}

Expr substitute(const Expr& e, const std::string& name, const Expr& repl) {
  if (e == nullptr) return e;
  switch (e->kind) {
    case ExprKind::Const:
      return e;
    case ExprKind::Var:
      return e->name == name ? repl : e;
    default:
      break;
  }
  const Expr a = substitute(e->a, name, repl);
  const Expr b = substitute(e->b, name, repl);
  const Expr c = substitute(e->c, name, repl);
  switch (e->kind) {
    case ExprKind::Add: return add(a, b);
    case ExprKind::Sub: return sub(a, b);
    case ExprKind::Mul: return mul(a, b);
    case ExprKind::FloorDiv: return floordiv(a, b);
    case ExprKind::Mod: return mod(a, b);
    case ExprKind::Min: return min2(a, b);
    case ExprKind::Max: return max2(a, b);
    case ExprKind::Select: return select(a, b, c);
    case ExprKind::Lt: return lt(a, b);
    case ExprKind::Ge: return ge(a, b);
    default:
      SWATOP_UNREACHABLE("bad expr kind in substitute");
  }
}

bool is_const(const Expr& e) { return e != nullptr && e->kind == ExprKind::Const; }

std::int64_t as_cst(const Expr& e) {
  SWATOP_CHECK(is_const(e)) << "expression is not constant: " << to_string(e);
  return e->value;
}

namespace {
const char* op_text(ExprKind k) {
  switch (k) {
    case ExprKind::Add: return " + ";
    case ExprKind::Sub: return " - ";
    case ExprKind::Mul: return "*";
    case ExprKind::FloorDiv: return "/";
    case ExprKind::Mod: return "%";
    case ExprKind::Lt: return " < ";
    case ExprKind::Ge: return " >= ";
    default: return "?";
  }
}
}  // namespace

std::string to_string(const Expr& e) {
  if (e == nullptr) return "<null>";
  std::ostringstream os;
  switch (e->kind) {
    case ExprKind::Const:
      os << e->value;
      break;
    case ExprKind::Var:
      os << e->name;
      break;
    case ExprKind::Min:
      os << "min(" << to_string(e->a) << ", " << to_string(e->b) << ")";
      break;
    case ExprKind::Max:
      os << "max(" << to_string(e->a) << ", " << to_string(e->b) << ")";
      break;
    case ExprKind::Select:
      os << "(" << to_string(e->a) << " ? " << to_string(e->b) << " : "
         << to_string(e->c) << ")";
      break;
    default:
      os << "(" << to_string(e->a) << op_text(e->kind) << to_string(e->b)
         << ")";
      break;
  }
  return os.str();
}

}  // namespace swatop::ir
