// Shared convolution shape descriptor. Convolutions are 'valid' (stride 1,
// no implicit padding): callers pass input dims already padded, so
// Ro = Ri - Kr + 1 and Co = Ci - Kc + 1.
#pragma once

#include <cstdint>
#include <string>

namespace swatop::ops {

struct ConvShape {
  std::int64_t batch = 1;   ///< B
  std::int64_t ni = 0;      ///< input channels
  std::int64_t no = 0;      ///< output channels
  std::int64_t ri = 0;      ///< input rows (already padded)
  std::int64_t ci = 0;      ///< input cols (already padded)
  std::int64_t kr = 3;      ///< kernel rows
  std::int64_t kc = 3;      ///< kernel cols
  std::int64_t stride = 1;  ///< spatial stride (both dims)

  std::int64_t ro() const { return (ri - kr) / stride + 1; }
  std::int64_t co() const { return (ci - kc) / stride + 1; }

  /// Direct-convolution MACs * 2 (the flop count every method's efficiency
  /// is normalized to, hence Winograd's > 100% efficiencies).
  std::int64_t flops() const {
    return 2 * batch * ni * no * ro() * co() * kr * kc;
  }

  std::string to_string() const;
};

}  // namespace swatop::ops
