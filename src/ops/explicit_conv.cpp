#include "ops/explicit_conv.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"

namespace swatop::ops {

ExplicitConvOp::ExplicitConvOp(const ConvShape& shape)
    : MatmulOp(shape.no, shape.batch * shape.ro() * shape.co(),
               shape.ni * shape.kr * shape.kc),
      shape_(shape) {
  a_name_ = "wmat";
  b_name_ = "dcol";
  c_name_ = "outmat";
}

std::string ExplicitConvOp::name() const {
  return "explicit_conv[" + shape_.to_string() + "]";
}

void ExplicitConvOp::im2col(sim::CoreGroup& cg, sim::MainMemory::Addr in,
                            sim::MainMemory::Addr dcol, const ConvShape& s) {
  const std::int64_t B = s.batch, Ni = s.ni, Ci = s.ci;
  const std::int64_t Ro = s.ro(), Co = s.co();
  const std::int64_t K = Ni * s.kr * s.kc;
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t ro = 0; ro < Ro; ++ro) {
      for (std::int64_t co = 0; co < Co; ++co) {
        const std::int64_t j = (b * Ro + ro) * Co + co;
        for (std::int64_t kr = 0; kr < s.kr; ++kr) {
          for (std::int64_t kc = 0; kc < s.kc; ++kc) {
            for (std::int64_t ni = 0; ni < Ni; ++ni) {
              const std::int64_t kk = (kr * s.kc + kc) * Ni + ni;
              const float v = cg.mem().read(
                  in + (((ro * s.stride + kr) * Ni + ni) * Ci +
                        (co * s.stride + kc)) *
                           B +
                       b);
              cg.mem().write(dcol + kk + j * K, v);
            }
          }
        }
      }
    }
  }
}

void ExplicitConvOp::charge_pre_post(sim::CoreGroup& cg, const ConvShape& s) {
  const sim::SimConfig& cfg = cg.config();
  const std::int64_t txn =
      static_cast<std::int64_t>(cfg.dram_transaction_bytes);
  const std::int64_t B = s.batch;
  const std::int64_t K = s.ni * s.kr * s.kc;
  const std::int64_t N = B * s.ro() * s.co();

  // im2col reads the input Kr*Kc times in runs of B contiguous floats, and
  // writes the K x N column matrix contiguously.
  sim::DmaCost pre;
  pre.latency_cycles = cfg.dma_latency_cycles;
  const std::int64_t read_runs = K * N / B;
  const std::int64_t run_bytes = B * static_cast<std::int64_t>(sizeof(float));
  const std::int64_t tx_per_run = ceil_div(run_bytes + txn / 2, txn);
  pre.bytes_requested = K * N * static_cast<std::int64_t>(sizeof(float));
  pre.transactions = read_runs * tx_per_run +
                     ceil_div(K * N * 4, txn);  // + contiguous write
  pre.bytes_requested += K * N * 4;
  pre.bytes_wasted = pre.transactions * txn - pre.bytes_requested;
  if (pre.bytes_wasted < 0) pre.bytes_wasted = 0;
  pre.transfer_cycles =
      static_cast<double>(pre.transactions * txn) / cfg.dma_bytes_per_cycle();
  cg.charge_dma_cost_sync(pre);

  // Output re-layout: read outmat contiguously, write the canonical output
  // tensor in runs of B.
  sim::DmaCost post;
  post.latency_cycles = cfg.dma_latency_cycles;
  const std::int64_t out_floats = s.no * N;
  const std::int64_t write_runs = out_floats / B;
  post.bytes_requested = 2 * out_floats * 4;
  post.transactions =
      ceil_div(out_floats * 4, txn) + write_runs * tx_per_run;
  post.bytes_wasted = post.transactions * txn - post.bytes_requested;
  if (post.bytes_wasted < 0) post.bytes_wasted = 0;
  post.transfer_cycles =
      static_cast<double>(post.transactions * txn) / cfg.dma_bytes_per_cycle();
  cg.charge_dma_cost_sync(post);
}

double ExplicitConvOp::pre_post_cycles(const ConvShape& s,
                                       const sim::SimConfig& cfg) {
  sim::CoreGroup cg(cfg);
  charge_pre_post(cg, s);
  return cg.now();
}

void ExplicitConvOp::fill_inputs(sim::CoreGroup& cg,
                                 const dsl::BoundTensors& bt,
                                 const dsl::Strategy&) const {
  const std::int64_t Ni = shape_.ni, No = shape_.no;
  const std::int64_t K = Ni * shape_.kr * shape_.kc;
  // Generate a canonical input tensor and weights, then materialize the
  // im2col matrix and the weight matrix the GEMM consumes.
  std::vector<float> in(static_cast<std::size_t>(shape_.ri * Ni * shape_.ci *
                                                 shape_.batch));
  Prng rng(7);
  for (float& x : in) x = rng.next();
  std::vector<float> w(static_cast<std::size_t>(shape_.kr * shape_.kc * Ni *
                                                No));
  Prng wrng(13);
  for (float& x : w) x = wrng.next();

  // wmat: column-major No x K; element (no, kk) with kk = ((kr*Kc+kc)*Ni+ni).
  auto wmat = cg.mem().view(bt.at(a_name_), No * K);
  for (std::int64_t kk = 0; kk < K; ++kk)
    for (std::int64_t no = 0; no < No; ++no)
      wmat[static_cast<std::size_t>(no + kk * No)] =
          w[static_cast<std::size_t>(kk * No + no)];

  // dcol via the functional im2col on a scratch copy of `in` in the arena.
  const sim::MainMemory::Addr in_addr =
      cg.mem().alloc(static_cast<std::int64_t>(in.size()), "in_scratch");
  cg.mem().copy_in(in_addr, in);
  im2col(cg, in_addr, bt.at(b_name_), shape_);
}

double ExplicitConvOp::check_output(sim::CoreGroup& cg,
                                    const dsl::BoundTensors& bt,
                                    const dsl::Strategy&) const {
  // The GEMM result must equal the direct convolution, column j of outmat
  // being output pixel (b, ro, co).
  const std::int64_t Ni = shape_.ni, No = shape_.no;
  std::vector<float> in(static_cast<std::size_t>(shape_.ri * Ni * shape_.ci *
                                                 shape_.batch));
  Prng rng(7);
  for (float& x : in) x = rng.next();
  std::vector<float> w(static_cast<std::size_t>(shape_.kr * shape_.kc * Ni *
                                                No));
  Prng wrng(13);
  for (float& x : w) x = wrng.next();
  std::vector<float> ref(static_cast<std::size_t>(
      shape_.ro() * No * shape_.co() * shape_.batch));
  reference_conv(in.data(), w.data(), ref.data(), shape_);

  const std::int64_t Ro = shape_.ro(), Co = shape_.co();
  auto got = cg.mem().view(bt.at(c_name_), No * N_);
  double m = 0.0;
  for (std::int64_t b = 0; b < shape_.batch; ++b) {
    for (std::int64_t ro = 0; ro < Ro; ++ro) {
      for (std::int64_t co = 0; co < Co; ++co) {
        const std::int64_t j = (b * Ro + ro) * Co + co;
        for (std::int64_t no = 0; no < No; ++no) {
          const double d = std::abs(
              static_cast<double>(got[static_cast<std::size_t>(no + j * No)]) -
              static_cast<double>(
                  ref[static_cast<std::size_t>(((ro * No + no) * Co + co) *
                                                   shape_.batch +
                                               b)]));
          if (d > m) m = d;
        }
      }
    }
  }
  return m;
}

}  // namespace swatop::ops
