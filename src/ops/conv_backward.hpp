// Training-direction convolutions, tensorized the same way the forward
// implicit-GEMM design is (an extension beyond the paper's evaluation; the
// swDNN library the paper compares against exists for exactly these
// training workloads).
//
// Backward-data:   dIn[ri][ni][ci][b]  = sum_{kr,kc,no}
//                      dOutPad[ri+kr][no][ci+kc][b] * W[Kr-1-kr][Kc-1-kc][ni][no]
//   -- a full correlation with flipped filters and swapped channel roles,
//   implemented on a zero-padded gradient tensor so every GEMM is regular.
//
// Backward-filter: dW[kr][kc][ni][no] = sum_{b,ro,co}
//                      in[ro+kr][ni][co+kc][b] * dOut[ro][no][co][b]
//   -- per (kr, kc) a GEMM whose *reduction* dimension is the fused
//   (co, b) range swept by outer reduction loops over ro and column tiles.
//
// Tensor layouts match the forward operator: activations/gradients are
// [r][channel][c][b], filters are [kr][kc][ni][no].
#pragma once

#include "dsl/dsl.hpp"
#include "ops/conv_common.hpp"

namespace swatop::ops {

/// Gradient w.r.t. the input. The bound tensor "dout_pad" is the output
/// gradient zero-padded by (kr-1, kc-1) on each spatial border (the fill
/// hook materializes it from a dense gradient).
class ConvBwdDataOp : public dsl::OperatorDef {
 public:
  explicit ConvBwdDataOp(const ConvShape& shape);

  static bool applicable(const ConvShape& s) { return s.no >= 32; }

  std::string name() const override;
  dsl::ScheduleSpace space() const override;
  ir::StmtPtr lower(const dsl::Strategy& s) const override;
  std::vector<dsl::TensorSpec> tensors() const override;
  std::int64_t flops() const override { return shape_.flops(); }
  void fill_inputs(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                   const dsl::Strategy& s) const override;
  double check_output(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                      const dsl::Strategy& s) const override;

  const ConvShape& shape() const { return shape_; }
  /// Padded gradient spatial dims.
  std::int64_t rp() const { return shape_.ro() + 2 * (shape_.kr - 1); }
  std::int64_t cp() const { return shape_.co() + 2 * (shape_.kc - 1); }

 private:
  ConvShape shape_;
};

/// Gradient w.r.t. the filter.
class ConvBwdFilterOp : public dsl::OperatorDef {
 public:
  explicit ConvBwdFilterOp(const ConvShape& shape);

  static bool applicable(const ConvShape& s) {
    return s.ni >= 32 && s.no >= 32;
  }

  std::string name() const override;
  dsl::ScheduleSpace space() const override;
  ir::StmtPtr lower(const dsl::Strategy& s) const override;
  std::vector<dsl::TensorSpec> tensors() const override;
  std::int64_t flops() const override { return shape_.flops(); }
  void fill_inputs(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                   const dsl::Strategy& s) const override;
  double check_output(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                      const dsl::Strategy& s) const override;

  const ConvShape& shape() const { return shape_; }

 private:
  ConvShape shape_;
};

/// Naive references (layouts as above; dout dense, not padded).
void reference_conv_bwd_data(const float* dout, const float* w, float* din,
                             const ConvShape& s);
void reference_conv_bwd_filter(const float* in, const float* dout, float* dw,
                               const ConvShape& s);

}  // namespace swatop::ops
