// Host-side tensors used by references, input generation and output checks.
#pragma once

#include <cstdint>
#include <vector>

namespace swatop::ops {

/// Deterministic pseudo-random floats in [-1, 1) (xorshift-based; keeps
/// functional tests reproducible without <random> engine differences).
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : s_(seed) {}
  float next();

 private:
  std::uint64_t s_;
};

/// Dense row-major-on-dims host tensor; dims[0] is the slowest dimension.
class HostTensor {
 public:
  explicit HostTensor(std::vector<std::int64_t> dims);

  std::int64_t size() const {
    return static_cast<std::int64_t>(data_.size());
  }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  void fill_random(Prng& rng);
  void fill(float v);

 private:
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;
  std::vector<std::int64_t> dims_;
  std::vector<float> data_;
};

/// max |a - b| over two equally sized buffers.
double max_abs_diff(const float* a, const float* b, std::int64_t n);

}  // namespace swatop::ops
