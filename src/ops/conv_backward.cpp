#include "ops/conv_backward.hpp"

#include "common/check.hpp"
#include "isa/kernel_gen.hpp"
#include "ops/matmul.hpp"
#include "common/math_util.hpp"
#include "ops/tensor.hpp"
#include "sched/lower.hpp"

namespace swatop::ops {

namespace ir = swatop::ir;

// ---------------------------------------------------------------------------
// References.

void reference_conv_bwd_data(const float* dout, const float* w, float* din,
                             const ConvShape& s) {
  const std::int64_t B = s.batch, Ni = s.ni, No = s.no, Ci = s.ci;
  const std::int64_t Ro = s.ro(), Co = s.co();
  for (std::int64_t i = 0; i < s.ri * Ni * Ci * B; ++i) din[i] = 0.0f;
  for (std::int64_t ro = 0; ro < Ro; ++ro) {
    for (std::int64_t co = 0; co < Co; ++co) {
      for (std::int64_t kr = 0; kr < s.kr; ++kr) {
        for (std::int64_t kc = 0; kc < s.kc; ++kc) {
          for (std::int64_t ni = 0; ni < Ni; ++ni) {
            for (std::int64_t no = 0; no < No; ++no) {
              const float wv =
                  w[((kr * s.kc + kc) * Ni + ni) * No + no];
              for (std::int64_t b = 0; b < B; ++b) {
                din[(((ro + kr) * Ni + ni) * Ci + (co + kc)) * B + b] +=
                    dout[((ro * No + no) * Co + co) * B + b] * wv;
              }
            }
          }
        }
      }
    }
  }
}

void reference_conv_bwd_filter(const float* in, const float* dout, float* dw,
                               const ConvShape& s) {
  const std::int64_t B = s.batch, Ni = s.ni, No = s.no, Ci = s.ci;
  const std::int64_t Ro = s.ro(), Co = s.co();
  for (std::int64_t i = 0; i < s.kr * s.kc * Ni * No; ++i) dw[i] = 0.0f;
  for (std::int64_t kr = 0; kr < s.kr; ++kr) {
    for (std::int64_t kc = 0; kc < s.kc; ++kc) {
      for (std::int64_t ni = 0; ni < Ni; ++ni) {
        for (std::int64_t no = 0; no < No; ++no) {
          float acc = 0.0f;
          for (std::int64_t ro = 0; ro < Ro; ++ro)
            for (std::int64_t co = 0; co < Co; ++co)
              for (std::int64_t b = 0; b < B; ++b)
                acc += in[(((ro + kr) * Ni + ni) * Ci + (co + kc)) * B + b] *
                       dout[((ro * No + no) * Co + co) * B + b];
          dw[((kr * s.kc + kc) * Ni + ni) * No + no] = acc;
        }
      }
    }
  }
}

namespace {

/// Deterministic host gradients/activations shared by fill and check.
std::vector<float> host_dout(const ConvShape& s) {
  std::vector<float> v(static_cast<std::size_t>(s.ro() * s.no * s.co() *
                                                s.batch));
  Prng rng(23);
  for (float& x : v) x = rng.next();
  return v;
}

std::vector<float> host_w(const ConvShape& s) {
  std::vector<float> v(
      static_cast<std::size_t>(s.kr * s.kc * s.ni * s.no));
  Prng rng(13);
  for (float& x : v) x = rng.next();
  return v;
}

std::vector<float> host_in(const ConvShape& s) {
  std::vector<float> v(static_cast<std::size_t>(s.ri * s.ni * s.ci *
                                                s.batch));
  Prng rng(7);
  for (float& x : v) x = rng.next();
  return v;
}

std::vector<std::int64_t> fused_tile_menu(std::int64_t extent,
                                          std::int64_t batch) {
  std::vector<std::int64_t> out;
  for (std::int64_t f : {1, 2, 4, 8, 16, 32}) {
    if (f > align_up(extent, 8)) continue;
    if ((f * batch) % 8 != 0) continue;
    out.push_back(f);
  }
  if (out.empty()) out.push_back(align_up(extent, 8));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Backward-data.

ConvBwdDataOp::ConvBwdDataOp(const ConvShape& shape) : shape_(shape) {
  SWATOP_CHECK(shape.ro() > 0 && shape.co() > 0)
      << "kernel larger than input: " << shape.to_string();
  SWATOP_CHECK(shape.stride == 1)
      << "backward kernels are implemented for stride 1";
}

std::string ConvBwdDataOp::name() const {
  return "conv_bwd_data[" + shape_.to_string() + "]";
}

dsl::ScheduleSpace ConvBwdDataOp::space() const {
  dsl::ScheduleSpace sp;
  sp.add(dsl::FactorVar{
      "Tm", MatmulOp::tile_candidates(shape_.ni, 32, {32, 64, 128})});
  sp.add(dsl::FactorVar{
      "Tk", MatmulOp::tile_candidates(shape_.no, 8, {16, 32, 64, 128})});
  sp.add(dsl::FactorVar{"Tc", fused_tile_menu(shape_.ci, shape_.batch)});
  sp.add(dsl::ChoiceVar{"order",
                        {"rcmuvk", "rcuvkm", "rcmkuv", "rmcuvk"}});
  sp.add(dsl::ChoiceVar{"variant",
                        {"0", "1", "2", "3", "4", "5", "6", "7"}});
  sp.add(dsl::ChoiceVar{"boundary", {"pad", "switch"}});
  return sp;
}

ir::StmtPtr ConvBwdDataOp::lower(const dsl::Strategy& s) const {
  const std::int64_t B = shape_.batch, Ni = shape_.ni, No = shape_.no;
  const std::int64_t Ci = shape_.ci, Ri = shape_.ri;
  const std::int64_t Kr = shape_.kr, Kc = shape_.kc;
  const std::int64_t Cp = cp();

  const std::int64_t Tm = s.factor("Tm");
  const std::int64_t Tk = s.factor("Tk");
  const std::int64_t Tc = s.factor("Tc");
  const int variant = std::stoi(s.choice("variant"));
  const bool vec_m = isa::KernelVariant::from_index(variant).vec ==
                     isa::VecDim::M;
  const bool switch_mode = s.choice("boundary") == "switch";

  const std::int64_t Npad = Tc * B;
  if (Npad % 8 != 0) return nullptr;
  if (!vec_m && (Npad / 8) % 4 != 0) return nullptr;

  const opt::TiledDim dm = opt::make_tiled("m_o", Ni, Tm);
  const opt::TiledDim dk = opt::make_tiled("k_o", No, Tk);
  const opt::TiledDim dc = opt::make_tiled("c_o", Ci, Tc);
  if (switch_mode) {
    if (!dm.ragged && !dk.ragged && !dc.ragged) return nullptr;
    if (!opt::switch_legal(dm, 8, vec_m ? 4 : 1)) return nullptr;
    if (!opt::switch_legal(dk, 8, 1)) return nullptr;
    if (dc.ragged) {
      const std::int64_t nr = dc.remainder() * B;
      if (nr % 8 != 0) return nullptr;
      if (!vec_m && (nr / 8) % 4 != 0) return nullptr;
    }
  }

  // Strides.
  const std::int64_t dp_no = Cp * B, dp_p = No * Cp * B;  // dout_pad
  const std::int64_t w_ni = No, w_kc = Ni * No, w_kr = Kc * Ni * No;
  const std::int64_t di_ni = Ci * B, di_ri = Ni * Ci * B;  // din

  ir::GemmAttrs g;
  g.variant = variant;
  g.M = switch_mode ? dm.valid() : ir::cst(Tm);
  g.K = switch_mode ? dk.valid() : ir::cst(Tk);
  g.N = switch_mode ? ir::mul(dc.valid(), ir::cst(B)) : ir::cst(Npad);

  const ir::Expr r = ir::var("r"), u = ir::var("u"), v = ir::var("v");
  const ir::Expr uf = ir::sub(ir::cst(Kr - 1), u);  // flipped filter row
  const ir::Expr vf = ir::sub(ir::cst(Kc - 1), v);

  // A: transposed filter slice, rows = ni (M), cols = no (K).
  g.a = {"w",
         ir::add(ir::add(ir::mul(uf, ir::cst(w_kr)), ir::mul(vf, ir::cst(w_kc))),
                 ir::add(ir::mul(dm.base(), ir::cst(w_ni)), dk.base())),
         w_ni, 1, dm.valid(), dk.valid()};
  // B: padded gradient slice, rows = no (K), cols = fused (ci, b).
  g.b = {"dout_pad",
         ir::add(ir::add(ir::mul(ir::add(r, u), ir::cst(dp_p)),
                         ir::mul(dk.base(), ir::cst(dp_no))),
                 ir::mul(ir::add(dc.base(), v), ir::cst(B))),
         dp_no, 1, dk.valid(), ir::mul(dc.valid(), ir::cst(B))};
  // C: input-gradient slice, rows = ni (M), cols = fused (ci, b).
  g.c = {"din",
         ir::add(ir::add(ir::mul(r, ir::cst(di_ri)),
                         ir::mul(dm.base(), ir::cst(di_ni))),
                 ir::mul(dc.base(), ir::cst(B))),
         di_ni, 1, dm.valid(), ir::mul(dc.valid(), ir::cst(B))};

  const std::vector<std::pair<char, sched::LoopSpec>> dims = {
      {'r', {"r", ir::cst(Ri), false}},
      {'c', {"c_o", ir::cst(dc.count), false}},
      {'m', {"m_o", ir::cst(dm.count), false}},
      {'u', {"u", ir::cst(Kr), true}},
      {'v', {"v", ir::cst(Kc), true}},
      {'k', {"k_o", ir::cst(dk.count), true}},
  };
  return sched::build_nest(sched::order_loops(s.choice("order"), dims),
                           ir::make_gemm(g));
}

std::vector<dsl::TensorSpec> ConvBwdDataOp::tensors() const {
  return {{"dout_pad", rp() * shape_.no * cp() * shape_.batch, false},
          {"w", shape_.kr * shape_.kc * shape_.ni * shape_.no, false},
          {"din", shape_.ri * shape_.ni * shape_.ci * shape_.batch, true}};
}

void ConvBwdDataOp::fill_inputs(sim::CoreGroup& cg,
                                const dsl::BoundTensors& bt,
                                const dsl::Strategy&) const {
  const ConvShape& s = shape_;
  const std::int64_t B = s.batch, No = s.no;
  const std::int64_t Ro = s.ro(), Co = s.co(), Cp = cp();
  const std::vector<float> dout = host_dout(s);
  // Pad by (kr-1, kc-1) on each border.
  auto pad = cg.mem().view(bt.at("dout_pad"), rp() * No * Cp * B);
  std::fill(pad.begin(), pad.end(), 0.0f);
  for (std::int64_t ro = 0; ro < Ro; ++ro)
    for (std::int64_t no = 0; no < No; ++no)
      for (std::int64_t co = 0; co < Co; ++co)
        for (std::int64_t b = 0; b < B; ++b)
          pad[static_cast<std::size_t>(
              (((ro + s.kr - 1) * No + no) * Cp + (co + s.kc - 1)) * B + b)] =
              dout[static_cast<std::size_t>(((ro * No + no) * Co + co) * B +
                                            b)];
  const std::vector<float> w = host_w(s);
  cg.mem().copy_in(bt.at("w"), w);
}

double ConvBwdDataOp::check_output(sim::CoreGroup& cg,
                                   const dsl::BoundTensors& bt,
                                   const dsl::Strategy&) const {
  const ConvShape& s = shape_;
  const std::vector<float> dout = host_dout(s);
  const std::vector<float> w = host_w(s);
  std::vector<float> ref(static_cast<std::size_t>(s.ri * s.ni * s.ci *
                                                  s.batch));
  reference_conv_bwd_data(dout.data(), w.data(), ref.data(), s);
  auto got = cg.mem().view(bt.at("din"),
                           static_cast<std::int64_t>(ref.size()));
  return max_abs_diff(got.data(), ref.data(),
                      static_cast<std::int64_t>(ref.size()));
}

// ---------------------------------------------------------------------------
// Backward-filter.

ConvBwdFilterOp::ConvBwdFilterOp(const ConvShape& shape) : shape_(shape) {
  SWATOP_CHECK(shape.ro() > 0 && shape.co() > 0)
      << "kernel larger than input: " << shape.to_string();
  SWATOP_CHECK(shape.stride == 1)
      << "backward kernels are implemented for stride 1";
}

std::string ConvBwdFilterOp::name() const {
  return "conv_bwd_filter[" + shape_.to_string() + "]";
}

dsl::ScheduleSpace ConvBwdFilterOp::space() const {
  dsl::ScheduleSpace sp;
  sp.add(dsl::FactorVar{
      "Tni", MatmulOp::tile_candidates(shape_.ni, 32, {32, 64, 128})});
  sp.add(dsl::FactorVar{
      "Tno", MatmulOp::tile_candidates(shape_.no, 32, {32, 64, 128})});
  sp.add(dsl::FactorVar{"Tc", fused_tile_menu(shape_.co(), shape_.batch)});
  sp.add(dsl::ChoiceVar{"order",
                        {"uvmnrc", "uvrcmn", "muvnrc", "uvmrcn"}});
  sp.add(dsl::ChoiceVar{"variant",
                        {"0", "1", "2", "3", "4", "5", "6", "7"}});
  sp.add(dsl::ChoiceVar{"boundary", {"pad", "switch"}});
  return sp;
}

ir::StmtPtr ConvBwdFilterOp::lower(const dsl::Strategy& s) const {
  const std::int64_t B = shape_.batch, Ni = shape_.ni, No = shape_.no;
  const std::int64_t Ci = shape_.ci, Kr = shape_.kr, Kc = shape_.kc;
  const std::int64_t Ro = shape_.ro(), Co = shape_.co();

  const std::int64_t Tni = s.factor("Tni");
  const std::int64_t Tno = s.factor("Tno");
  const std::int64_t Tc = s.factor("Tc");
  const int variant = std::stoi(s.choice("variant"));
  const bool vec_m = isa::KernelVariant::from_index(variant).vec ==
                     isa::VecDim::M;
  const bool switch_mode = s.choice("boundary") == "switch";

  // The fused (co, b) range is the GEMM *reduction* (K) dimension.
  const std::int64_t Kpad = Tc * B;
  if (Kpad % 8 != 0) return nullptr;

  const opt::TiledDim dm = opt::make_tiled("m_o", Ni, Tni);
  const opt::TiledDim dn = opt::make_tiled("n_o", No, Tno);
  const opt::TiledDim dc = opt::make_tiled("c_o", Co, Tc);
  if (switch_mode) {
    if (!dm.ragged && !dn.ragged && !dc.ragged) return nullptr;
    if (!opt::switch_legal(dm, 8, vec_m ? 4 : 1)) return nullptr;
    if (!opt::switch_legal(dn, 8, vec_m ? 1 : 4)) return nullptr;
    if (dc.ragged && (dc.remainder() * B) % 8 != 0) return nullptr;
  }

  const std::int64_t in_ni = Ci * B, in_ri = Ni * Ci * B;
  const std::int64_t do_no = Co * B, do_ro = No * Co * B;
  const std::int64_t w_ni = No, w_kc = Ni * No, w_kr = Kc * Ni * No;

  ir::GemmAttrs g;
  g.variant = variant;
  g.M = switch_mode ? dm.valid() : ir::cst(Tni);
  g.N = switch_mode ? dn.valid() : ir::cst(Tno);
  g.K = switch_mode ? ir::mul(dc.valid(), ir::cst(B)) : ir::cst(Kpad);

  const ir::Expr r = ir::var("r"), u = ir::var("u"), v = ir::var("v");

  // A: activation slice, rows = ni (M), cols = fused (co, b) (K).
  g.a = {"in",
         ir::add(ir::add(ir::mul(ir::add(r, u), ir::cst(in_ri)),
                         ir::mul(dm.base(), ir::cst(in_ni))),
                 ir::mul(ir::add(dc.base(), v), ir::cst(B))),
         in_ni, 1, dm.valid(), ir::mul(dc.valid(), ir::cst(B))};
  // B: gradient slice, rows = fused (K), cols = no (N).
  g.b = {"dout",
         ir::add(ir::add(ir::mul(r, ir::cst(do_ro)),
                         ir::mul(dn.base(), ir::cst(do_no))),
                 ir::mul(dc.base(), ir::cst(B))),
         1, do_no, ir::mul(dc.valid(), ir::cst(B)), dn.valid()};
  // C: filter gradient, rows = ni (M), cols = no (N).
  g.c = {"dw",
         ir::add(ir::add(ir::mul(u, ir::cst(w_kr)), ir::mul(v, ir::cst(w_kc))),
                 ir::add(ir::mul(dm.base(), ir::cst(w_ni)), dn.base())),
         w_ni, 1, dm.valid(), dn.valid()};

  const std::vector<std::pair<char, sched::LoopSpec>> dims = {
      {'u', {"u", ir::cst(Kr), false}},
      {'v', {"v", ir::cst(Kc), false}},
      {'m', {"m_o", ir::cst(dm.count), false}},
      {'n', {"n_o", ir::cst(dn.count), false}},
      {'r', {"r", ir::cst(Ro), true}},
      {'c', {"c_o", ir::cst(dc.count), true}},
  };
  return sched::build_nest(sched::order_loops(s.choice("order"), dims),
                           ir::make_gemm(g));
}

std::vector<dsl::TensorSpec> ConvBwdFilterOp::tensors() const {
  return {{"in", shape_.ri * shape_.ni * shape_.ci * shape_.batch, false},
          {"dout", shape_.ro() * shape_.no * shape_.co() * shape_.batch,
           false},
          {"dw", shape_.kr * shape_.kc * shape_.ni * shape_.no, true}};
}

void ConvBwdFilterOp::fill_inputs(sim::CoreGroup& cg,
                                  const dsl::BoundTensors& bt,
                                  const dsl::Strategy&) const {
  cg.mem().copy_in(bt.at("in"), host_in(shape_));
  cg.mem().copy_in(bt.at("dout"), host_dout(shape_));
}

double ConvBwdFilterOp::check_output(sim::CoreGroup& cg,
                                     const dsl::BoundTensors& bt,
                                     const dsl::Strategy&) const {
  const ConvShape& s = shape_;
  const std::vector<float> in = host_in(s);
  const std::vector<float> dout = host_dout(s);
  std::vector<float> ref(static_cast<std::size_t>(s.kr * s.kc * s.ni *
                                                  s.no));
  reference_conv_bwd_filter(in.data(), dout.data(), ref.data(), s);
  auto got = cg.mem().view(bt.at("dw"),
                           static_cast<std::int64_t>(ref.size()));
  return max_abs_diff(got.data(), ref.data(),
                      static_cast<std::int64_t>(ref.size()));
}

}  // namespace swatop::ops
