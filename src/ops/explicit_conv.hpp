// Explicit-GEMM convolution (Fig. 2 left): im2col expands the input into a
// column matrix, the convolution becomes one large GEMM
//   outmat (No x B*Ro*Co) = wmat (No x Ni*Kr*Kc) x dcol (Ni*Kr*Kc x B*Ro*Co),
// and the result is re-laid out into the canonical output tensor. The GEMM
// core reuses the matmul schedule space; the im2col / re-layout passes are
// priced separately (they are what caps this method's efficiency in Fig. 8).
#pragma once

#include "dsl/dsl.hpp"
#include "ops/conv_common.hpp"
#include "ops/matmul.hpp"

namespace swatop::ops {

class ExplicitConvOp : public MatmulOp {
 public:
  explicit ExplicitConvOp(const ConvShape& shape);

  static bool applicable(const ConvShape&) { return true; }

  std::string name() const override;
  /// Direct-convolution flops equal the GEMM flops here, but keep the
  /// canonical definition for efficiency reporting.
  std::int64_t flops() const override { return shape_.flops(); }

  void fill_inputs(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                   const dsl::Strategy& s) const override;
  double check_output(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                      const dsl::Strategy& s) const override;

  const ConvShape& shape() const { return shape_; }

  /// im2col + output re-layout cycles (the pre/post passes around the
  /// tuned GEMM), charged to `cg`'s clock.
  static void charge_pre_post(sim::CoreGroup& cg, const ConvShape& s);

  /// Convenience: pre/post cycles on a scratch clock.
  static double pre_post_cycles(const ConvShape& s,
                                const sim::SimConfig& cfg);

  /// Functional im2col: expand `in` ([ri][ni][ci][b]) into `dcol`
  /// (column-major Ni*Kr*Kc x B*Ro*Co), host-side loops on the arena.
  static void im2col(sim::CoreGroup& cg, sim::MainMemory::Addr in,
                     sim::MainMemory::Addr dcol, const ConvShape& s);

 private:
  ConvShape shape_;
};

}  // namespace swatop::ops
