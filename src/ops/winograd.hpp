// Winograd convolution F(2x2, 3x3) (Fig. 2 middle): 4x4 input tiles and the
// 3x3 filters are transformed, the 16 element-wise products become 16
// independent GEMMs
//   M_t (No x P) = U_t (No x Ni) x V_t (Ni x P),   t = 0..15,
// and the inverse transform produces the 2x2 output tiles. The batched GEMM
// is the tuned core (an extra non-reduction t loop around a matmul-style
// schedule space); the transforms are priced pre/post passes.
#pragma once

#include "dsl/dsl.hpp"
#include "ops/conv_common.hpp"

namespace swatop::ops {

/// Tiling geometry of F(m x m, 3x3) over a convolution shape; m = 2 is the
/// paper's 16-multiplication design, m = 4 the 36-multiplication F(4x4)
/// variant with a bigger arithmetic saving (and looser fp32 accuracy).
struct WinogradPlan {
  ConvShape shape;
  std::int64_t m = 2;        ///< output tile size (2 or 4)
  std::int64_t tiles_r = 0;  ///< output tile rows (ceil(Ro / m))
  std::int64_t tiles_c = 0;
  std::int64_t P = 0;  ///< batch * tiles_r * tiles_c

  explicit WinogradPlan(const ConvShape& s, std::int64_t m = 2);

  /// Input tile edge (m + 2) and GEMM batch count (tile^2).
  std::int64_t tile() const { return m + 2; }
  std::int64_t T() const { return tile() * tile(); }

  static bool applicable(const ConvShape& s) {
    return s.kr == 3 && s.kc == 3 && s.stride == 1 && s.ro() >= 2 &&
           s.co() >= 2;
  }

  /// GEMM flops of the T() multiplications (less than the direct-conv
  /// flops; that gap is Winograd's arithmetic saving).
  std::int64_t gemm_flops() const {
    return 2 * T() * shape.no * shape.ni * P;
  }
};

/// The tuned batched-GEMM core.
class WinogradGemmOp : public dsl::OperatorDef {
 public:
  explicit WinogradGemmOp(const ConvShape& shape, std::int64_t m = 2);

  std::string name() const override;
  dsl::ScheduleSpace space() const override;
  ir::StmtPtr lower(const dsl::Strategy& s) const override;
  std::vector<dsl::TensorSpec> tensors() const override;
  /// Reported against the direct-convolution flop count (Fig. 8's > 100%
  /// efficiencies come from exactly this convention).
  std::int64_t flops() const override { return plan_.shape.flops(); }
  void fill_inputs(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                   const dsl::Strategy& s) const override;
  double check_output(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                      const dsl::Strategy& s) const override;

  const WinogradPlan& plan() const { return plan_; }

  /// Charge the input/filter transform (pre) and inverse transform (post)
  /// costs to a core group's clock.
  static void charge_pre_post(sim::CoreGroup& cg, const WinogradPlan& p);
  static double pre_post_cycles(const WinogradPlan& p,
                                const sim::SimConfig& cfg);

  // Functional transforms (host loops over the arena), used by tests and
  // the fill/check hooks, for both F(2x2) and F(4x4). Layouts: in
  // [ri][ni][ci][b]; U [t][ni][no] (column-major No x Ni per t); V
  // [t][p][ni] (column-major Ni x P per t); Mt [t][p][no] (column-major
  // No x P per t); out [ro][no][co][b].
  static void transform_input(sim::CoreGroup& cg, sim::MainMemory::Addr in,
                              sim::MainMemory::Addr V, const WinogradPlan& p);
  static void transform_filter(sim::CoreGroup& cg, sim::MainMemory::Addr w,
                               sim::MainMemory::Addr U, const WinogradPlan& p);
  static void inverse_transform(sim::CoreGroup& cg, sim::MainMemory::Addr Mt,
                                sim::MainMemory::Addr out,
                                const WinogradPlan& p);

 private:
  WinogradPlan plan_;
};

}  // namespace swatop::ops
