#include "ops/tensor.hpp"

#include <cmath>

#include "common/check.hpp"

namespace swatop::ops {

float Prng::next() {
  // xorshift64*
  s_ ^= s_ >> 12;
  s_ ^= s_ << 25;
  s_ ^= s_ >> 27;
  const std::uint64_t r = s_ * 0x2545F4914F6CDD1Dull;
  // Map the top 24 bits to [-1, 1).
  const double u =
      static_cast<double>(r >> 40) / static_cast<double>(1ull << 24);
  return static_cast<float>(2.0 * u - 1.0);
}

HostTensor::HostTensor(std::vector<std::int64_t> dims)
    : dims_(std::move(dims)) {
  std::int64_t n = 1;
  for (std::int64_t d : dims_) {
    SWATOP_CHECK(d > 0) << "non-positive tensor dim " << d;
    n *= d;
  }
  data_.assign(static_cast<std::size_t>(n), 0.0f);
}

std::int64_t HostTensor::offset(
    std::initializer_list<std::int64_t> idx) const {
  SWATOP_CHECK(idx.size() == dims_.size()) << "tensor rank mismatch";
  std::int64_t off = 0;
  std::size_t i = 0;
  for (std::int64_t v : idx) {
    SWATOP_CHECK(v >= 0 && v < dims_[i])
        << "index " << v << " out of dim " << dims_[i];
    off = off * dims_[i] + v;
    ++i;
  }
  return off;
}

float& HostTensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[static_cast<std::size_t>(offset(idx))];
}

float HostTensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(offset(idx))];
}

void HostTensor::fill_random(Prng& rng) {
  for (float& v : data_) v = rng.next();
}

void HostTensor::fill(float v) {
  for (float& x : data_) x = v;
}

double max_abs_diff(const float* a, const float* b, std::int64_t n) {
  double m = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = std::fabs(static_cast<double>(a[i]) -
                               static_cast<double>(b[i]));
    if (d > m) m = d;
  }
  return m;
}

}  // namespace swatop::ops
