#include "ops/reference.hpp"

#include <sstream>

namespace swatop::ops {

std::string ConvShape::to_string() const {
  std::ostringstream os;
  os << "B=" << batch << " Ni=" << ni << " No=" << no << " " << ri << "x"
     << ci << " k" << kr << "x" << kc;
  if (stride != 1) os << " s" << stride;
  return os.str();
}

void reference_gemm(const float* A, const float* B, float* C, std::int64_t M,
                    std::int64_t N, std::int64_t K) {
  for (std::int64_t j = 0; j < N; ++j) {
    for (std::int64_t i = 0; i < M; ++i) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < K; ++k)
        acc += A[i + k * M] * B[k + j * K];
      C[i + j * M] = acc;
    }
  }
}

void reference_conv(const float* in, const float* w, float* out,
                    const ConvShape& s) {
  const std::int64_t B = s.batch, Ni = s.ni, No = s.no, Ci = s.ci;
  const std::int64_t Ro = s.ro(), Co = s.co();
  auto in_at = [&](std::int64_t ri, std::int64_t ni, std::int64_t ci,
                   std::int64_t b) {
    return in[((ri * Ni + ni) * Ci + ci) * B + b];
  };
  auto w_at = [&](std::int64_t kr, std::int64_t kc, std::int64_t ni,
                  std::int64_t no) {
    return w[((kr * s.kc + kc) * Ni + ni) * No + no];
  };
  for (std::int64_t ro = 0; ro < Ro; ++ro) {
    for (std::int64_t no = 0; no < No; ++no) {
      for (std::int64_t co = 0; co < Co; ++co) {
        for (std::int64_t b = 0; b < B; ++b) {
          float acc = 0.0f;
          for (std::int64_t kr = 0; kr < s.kr; ++kr)
            for (std::int64_t kc = 0; kc < s.kc; ++kc)
              for (std::int64_t ni = 0; ni < Ni; ++ni)
                acc += in_at(ro * s.stride + kr, ni, co * s.stride + kc, b) *
                       w_at(kr, kc, ni, no);
          out[((ro * No + no) * Co + co) * B + b] = acc;
        }
      }
    }
  }
}

void reference_bias_add(float* t, const float* bias, std::int64_t rows,
                        std::int64_t channels, std::int64_t cols,
                        std::int64_t batch) {
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < channels; ++c) {
      float* row = t + (r * channels + c) * cols * batch;
      const float b = bias[c];
      for (std::int64_t i = 0; i < cols * batch; ++i) row[i] += b;
    }
}

void reference_relu(float* t, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    if (t[i] < 0.0f) t[i] = 0.0f;
}

void reference_maxpool2x2(const float* in, float* out, std::int64_t rows,
                          std::int64_t channels, std::int64_t cols,
                          std::int64_t batch) {
  const std::int64_t ro = rows / 2, co = cols / 2;
  auto in_at = [&](std::int64_t r, std::int64_t c, std::int64_t col,
                   std::int64_t b) {
    return in[((r * channels + c) * cols + col) * batch + b];
  };
  for (std::int64_t r = 0; r < ro; ++r)
    for (std::int64_t c = 0; c < channels; ++c)
      for (std::int64_t col = 0; col < co; ++col)
        for (std::int64_t b = 0; b < batch; ++b) {
          const float m0 = in_at(2 * r, c, 2 * col, b);
          const float m1 = in_at(2 * r, c, 2 * col + 1, b);
          const float m2 = in_at(2 * r + 1, c, 2 * col, b);
          const float m3 = in_at(2 * r + 1, c, 2 * col + 1, b);
          float m = m0 > m1 ? m0 : m1;
          if (m2 > m) m = m2;
          if (m3 > m) m = m3;
          out[((r * channels + c) * co + col) * batch + b] = m;
        }
}

void reference_eltwise_add(const float* a, const float* b, float* out,
                           std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void reference_pad(const float* in, float* out, std::int64_t rows,
                   std::int64_t channels, std::int64_t cols,
                   std::int64_t batch, std::int64_t pad) {
  const std::int64_t rp = rows + 2 * pad, cp = cols + 2 * pad;
  for (std::int64_t i = 0; i < rp * channels * cp * batch; ++i) out[i] = 0.0f;
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < channels; ++c)
      for (std::int64_t col = 0; col < cols; ++col)
        for (std::int64_t b = 0; b < batch; ++b)
          out[(((r + pad) * channels + c) * cp + (col + pad)) * batch + b] =
              in[((r * channels + c) * cols + col) * batch + b];
}

}  // namespace swatop::ops
