#include "ops/reference.hpp"

#include <sstream>

namespace swatop::ops {

std::string ConvShape::to_string() const {
  std::ostringstream os;
  os << "B=" << batch << " Ni=" << ni << " No=" << no << " " << ri << "x"
     << ci << " k" << kr << "x" << kc;
  if (stride != 1) os << " s" << stride;
  return os.str();
}

void reference_gemm(const float* A, const float* B, float* C, std::int64_t M,
                    std::int64_t N, std::int64_t K) {
  for (std::int64_t j = 0; j < N; ++j) {
    for (std::int64_t i = 0; i < M; ++i) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < K; ++k)
        acc += A[i + k * M] * B[k + j * K];
      C[i + j * M] = acc;
    }
  }
}

void reference_conv(const float* in, const float* w, float* out,
                    const ConvShape& s) {
  const std::int64_t B = s.batch, Ni = s.ni, No = s.no, Ci = s.ci;
  const std::int64_t Ro = s.ro(), Co = s.co();
  auto in_at = [&](std::int64_t ri, std::int64_t ni, std::int64_t ci,
                   std::int64_t b) {
    return in[((ri * Ni + ni) * Ci + ci) * B + b];
  };
  auto w_at = [&](std::int64_t kr, std::int64_t kc, std::int64_t ni,
                  std::int64_t no) {
    return w[((kr * s.kc + kc) * Ni + ni) * No + no];
  };
  for (std::int64_t ro = 0; ro < Ro; ++ro) {
    for (std::int64_t no = 0; no < No; ++no) {
      for (std::int64_t co = 0; co < Co; ++co) {
        for (std::int64_t b = 0; b < B; ++b) {
          float acc = 0.0f;
          for (std::int64_t kr = 0; kr < s.kr; ++kr)
            for (std::int64_t kc = 0; kc < s.kc; ++kc)
              for (std::int64_t ni = 0; ni < Ni; ++ni)
                acc += in_at(ro * s.stride + kr, ni, co * s.stride + kc, b) *
                       w_at(kr, kc, ni, no);
          out[((ro * No + no) * Co + co) * B + b] = acc;
        }
      }
    }
  }
}

}  // namespace swatop::ops
