#include "ops/matmul.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "isa/kernel_gen.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "sched/lower.hpp"

namespace swatop::ops {

namespace ir = swatop::ir;

MatmulOp::MatmulOp(std::int64_t M, std::int64_t N, std::int64_t K)
    : M_(M), N_(N), K_(K) {
  SWATOP_CHECK(M > 0 && N > 0 && K > 0)
      << "matmul dims (" << M << "," << N << "," << K << ")";
}

std::string MatmulOp::name() const {
  return "matmul_" + std::to_string(M_) + "x" + std::to_string(N_) + "x" +
         std::to_string(K_);
}

std::vector<std::int64_t> MatmulOp::tile_candidates(
    std::int64_t extent, std::int64_t align,
    const std::vector<std::int64_t>& menu) {
  const std::int64_t cap = align_up(extent, align);
  std::vector<std::int64_t> out;
  for (std::int64_t f : menu)
    if (f <= cap) out.push_back(f);
  if (out.empty()) out.push_back(cap);
  return out;
}

dsl::ScheduleSpace MatmulOp::space() const {
  dsl::ScheduleSpace sp;
  sp.add(dsl::FactorVar{"Tm", tile_candidates(M_, 32, {32, 64, 128, 256})});
  sp.add(dsl::FactorVar{"Tn", tile_candidates(N_, 32, {32, 64, 128, 256})});
  sp.add(dsl::FactorVar{"Tk", tile_candidates(K_, 8, {8, 16, 32, 64, 128})});
  sp.add(dsl::ChoiceVar{"order", {"mnk", "nmk", "mkn", "kmn"}});
  sp.add(dsl::ChoiceVar{"variant",
                        {"0", "1", "2", "3", "4", "5", "6", "7"}});
  sp.add(dsl::ChoiceVar{"boundary", {"pad", "switch"}});
  return sp;
}

ir::StmtPtr MatmulOp::lower(const dsl::Strategy& s) const {
  const std::int64_t Tm = s.factor("Tm");
  const std::int64_t Tn = s.factor("Tn");
  const std::int64_t Tk = s.factor("Tk");
  const int variant = std::stoi(s.choice("variant"));
  const bool vec_m = isa::KernelVariant::from_index(variant).vec ==
                     isa::VecDim::M;
  const bool switch_mode = s.choice("boundary") == "switch";

  const opt::TiledDim dm = opt::make_tiled("m_o", M_, Tm);
  const opt::TiledDim dn = opt::make_tiled("n_o", N_, Tn);
  const opt::TiledDim dk = opt::make_tiled("k_o", K_, Tk);

  if (switch_mode) {
    // Parameter switching only differs from padding at ragged boundaries,
    // and is only legal when every remainder keeps the primitive valid.
    if (!dm.ragged && !dn.ragged && !dk.ragged) return nullptr;
    if (!opt::switch_legal(dm, 8, vec_m ? 4 : 1)) return nullptr;
    if (!opt::switch_legal(dn, 8, vec_m ? 1 : 4)) return nullptr;
    if (!opt::switch_legal(dk, 8, 1)) return nullptr;
  }

  ir::GemmAttrs g;
  g.variant = variant;
  g.M = switch_mode ? dm.valid() : ir::cst(Tm);
  g.N = switch_mode ? dn.valid() : ir::cst(Tn);
  g.K = switch_mode ? dk.valid() : ir::cst(Tk);

  g.a = {a_name_, ir::add(dm.base(), ir::mul(dk.base(), ir::cst(M_))), 1, M_,
         dm.valid(), dk.valid()};
  g.b = {b_name_, ir::add(dk.base(), ir::mul(dn.base(), ir::cst(K_))), 1, K_,
         dk.valid(), dn.valid()};
  g.c = {c_name_, ir::add(dm.base(), ir::mul(dn.base(), ir::cst(M_))), 1, M_,
         dm.valid(), dn.valid()};

  const std::vector<std::pair<char, sched::LoopSpec>> dims = {
      {'m', {"m_o", ir::cst(dm.count), false}},
      {'n', {"n_o", ir::cst(dn.count), false}},
      {'k', {"k_o", ir::cst(dk.count), true}},
  };
  return sched::build_nest(sched::order_loops(s.choice("order"), dims),
                           ir::make_gemm(g));
}

std::vector<dsl::TensorSpec> MatmulOp::tensors() const {
  return {{a_name_, M_ * K_, false},
          {b_name_, K_ * N_, false},
          {c_name_, M_ * N_, true}};
}

void MatmulOp::fill_inputs(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                           const dsl::Strategy&) const {
  Prng rng(42);
  auto a = cg.mem().view(bt.at(a_name_), M_ * K_);
  for (float& v : a) v = rng.next();
  auto b = cg.mem().view(bt.at(b_name_), K_ * N_);
  for (float& v : b) v = rng.next();
}

double MatmulOp::check_output(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                              const dsl::Strategy&) const {
  std::vector<float> A(static_cast<std::size_t>(M_ * K_));
  std::vector<float> B(static_cast<std::size_t>(K_ * N_));
  std::vector<float> C(static_cast<std::size_t>(M_ * N_));
  cg.mem().copy_out(bt.at(a_name_), A);
  cg.mem().copy_out(bt.at(b_name_), B);
  reference_gemm(A.data(), B.data(), C.data(), M_, N_, K_);
  auto got = cg.mem().view(bt.at(c_name_), M_ * N_);
  return max_abs_diff(got.data(), C.data(), M_ * N_);
}

}  // namespace swatop::ops
