#include "ops/implicit_conv.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "isa/kernel_gen.hpp"
#include "ops/matmul.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "sched/lower.hpp"

namespace swatop::ops {

namespace ir = swatop::ir;

ImplicitConvOp::ImplicitConvOp(const ConvShape& shape, dsl::EpilogueSpec epi)
    : shape_(shape), epi_(epi) {
  SWATOP_CHECK(shape.ro() > 0 && shape.co() > 0)
      << "kernel larger than input: " << shape.to_string();
  SWATOP_CHECK(epi.out_pad >= 0) << "negative output padding";
}

std::string ImplicitConvOp::name() const {
  std::string n = "implicit_conv[" + shape_.to_string() + "]";
  // The epilogue changes the lowering, the tensor set and the winner, so it
  // must be part of the signature (and hence the schedule-cache key).
  if (epi_.any()) n += "+epi[" + epi_.tag() + "]";
  return n;
}

dsl::ScheduleSpace ImplicitConvOp::space() const {
  const std::int64_t B = shape_.batch;
  dsl::ScheduleSpace sp;
  sp.add(dsl::FactorVar{
      "Tno", MatmulOp::tile_candidates(shape_.no, 32, {32, 64, 128, 256})});
  sp.add(dsl::FactorVar{
      "Tni", MatmulOp::tile_candidates(shape_.ni, 32, {32, 64, 128})});
  // Output-column fusion factor: the GEMM N dim is Tco * B; keep candidates
  // whose padded N satisfies the mesh constraint. A strided convolution
  // cannot fuse output columns (consecutive co values are `stride * B`
  // apart in the input, breaking the affine fused view), so Tco = 1.
  std::vector<std::int64_t> tco;
  const auto menu = shape_.stride == 1
                        ? std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64}
                        : std::vector<std::int64_t>{1};
  for (std::int64_t f : menu) {
    if (f > align_up(shape_.co(), 8)) continue;
    if ((f * B) % 8 != 0) continue;
    tco.push_back(f);
  }
  if (tco.empty() && shape_.stride == 1)
    tco.push_back(align_up(shape_.co(), 8));
  if (tco.empty()) tco.push_back(1);
  sp.add(dsl::FactorVar{"Tco", tco});
  sp.add(dsl::ChoiceVar{"wlayout", {"no_major", "ni_major"}});
  sp.add(dsl::ChoiceVar{"order",
                        {"rcouvi", "rcoiuv", "rcuvio", "rouvci"}});
  sp.add(dsl::ChoiceVar{"variant",
                        {"0", "1", "2", "3", "4", "5", "6", "7"}});
  sp.add(dsl::ChoiceVar{"boundary", {"pad", "switch"}});
  sp.set_epilogue(epi_);
  return sp;
}

ir::StmtPtr ImplicitConvOp::lower(const dsl::Strategy& s) const {
  const std::int64_t B = shape_.batch, Ni = shape_.ni, No = shape_.no;
  const std::int64_t Ci = shape_.ci, Kr = shape_.kr, Kc = shape_.kc;
  const std::int64_t Ro = shape_.ro(), Co = shape_.co();
  const std::int64_t S = shape_.stride;
  if (S != 1 && s.factor("Tco") != 1) return nullptr;

  const std::int64_t Tno = s.factor("Tno");
  const std::int64_t Tni = s.factor("Tni");
  const std::int64_t Tco = s.factor("Tco");
  const int variant = std::stoi(s.choice("variant"));
  const bool vec_m = isa::KernelVariant::from_index(variant).vec ==
                     isa::VecDim::M;
  const bool switch_mode = s.choice("boundary") == "switch";
  const bool ni_major = s.choice("wlayout") == "ni_major";

  // Padded N must satisfy the primitive constraints up front.
  const std::int64_t Npad = Tco * B;
  if (Npad % 8 != 0) return nullptr;
  if (!vec_m && (Npad / 8) % 4 != 0) return nullptr;

  const opt::TiledDim dno = opt::make_tiled("o_o", No, Tno);
  const opt::TiledDim dni = opt::make_tiled("i_o", Ni, Tni);
  const opt::TiledDim dco = opt::make_tiled("c_o", Co, Tco);

  if (switch_mode) {
    if (!dno.ragged && !dni.ragged && !dco.ragged) return nullptr;
    if (!opt::switch_legal(dno, 8, vec_m ? 4 : 1)) return nullptr;
    if (!opt::switch_legal(dni, 8, 1)) return nullptr;
    if (dco.ragged) {
      const std::int64_t nr = dco.remainder() * B;
      if (nr % 8 != 0) return nullptr;
      if (!vec_m && (nr / 8) % 4 != 0) return nullptr;
    }
  }

  // Strides of the fixed layouts.
  const std::int64_t in_ni = Ci * B, in_ri = Ni * Ci * B;
  const std::int64_t w_no = ni_major ? Ni : 1;
  const std::int64_t w_ni = ni_major ? 1 : No;
  const std::int64_t w_kc = Ni * No, w_kr = Kc * Ni * No;
  // Output strides honour the fused border: with out_pad = p the tile is
  // stored at (r + p, co + p) of the [ro+2p][no][co+2p][b] tensor, which
  // keeps the fused (co, b) columns contiguous (stride 1) and only changes
  // the channel/row strides and a constant base shift.
  const std::int64_t P = epi_.out_pad;
  const std::int64_t out_no = (Co + 2 * P) * B;
  const std::int64_t out_ro = No * out_no;
  const std::int64_t out_shift = P * out_ro + P * B;

  ir::GemmAttrs g;
  g.variant = variant;
  g.M = switch_mode ? dno.valid() : ir::cst(Tno);
  g.K = switch_mode ? dni.valid() : ir::cst(Tni);
  g.N = switch_mode ? ir::mul(dco.valid(), ir::cst(B)) : ir::cst(Npad);

  const ir::Expr u = ir::var("u"), v = ir::var("v"), r = ir::var("r");

  // A: weight slice, rows = no, cols = ni.
  g.a = {"w",
         ir::add(ir::add(ir::mul(u, ir::cst(w_kr)), ir::mul(v, ir::cst(w_kc))),
                 ir::add(ir::mul(dno.base(), ir::cst(w_no)),
                         ir::mul(dni.base(), ir::cst(w_ni)))),
         w_no, w_ni, dno.valid(), dni.valid()};
  // B: input slice, rows = ni (stride Ci*B), cols = fused (co, b), stride 1.
  // The input position is (r*S + u, co*S + v); column fusion is only legal
  // at S = 1 (elsewhere Tco = 1, so the fused range is just the batch).
  g.b = {"in",
         ir::add(ir::add(ir::mul(ir::add(ir::mul(r, ir::cst(S)), u),
                                 ir::cst(in_ri)),
                         ir::mul(dni.base(), ir::cst(in_ni))),
                 ir::mul(ir::add(ir::mul(dco.base(), ir::cst(S)), v),
                         ir::cst(B))),
         in_ni, 1, dni.valid(), ir::mul(dco.valid(), ir::cst(B))};
  // C: output slice, rows = no (stride (Co+2p)*B), cols = fused (co, b).
  g.c = {"out",
         ir::add(ir::add(ir::mul(r, ir::cst(out_ro)),
                         ir::mul(dno.base(), ir::cst(out_no))),
                 ir::add(ir::mul(dco.base(), ir::cst(B)),
                         ir::cst(out_shift))),
         out_no, 1, dno.valid(), ir::mul(dco.valid(), ir::cst(B))};

  if (epi_.compute()) {
    g.epi.bias = epi_.bias;
    g.epi.residual = epi_.residual;
    g.epi.relu = epi_.relu;
    // Natural C orientation: output channels run over the view rows (DMA
    // inference flips this when the kernel variant transposes C).
    g.epi.channels_on_rows = true;
    if (epi_.bias) g.epi.channel0 = dno.base();
    if (epi_.residual) {
      // The residual tensor has the *unpadded* output layout.
      const std::int64_t res_no = Co * B, res_ro = No * Co * B;
      g.epi.res = {"res",
                   ir::add(ir::add(ir::mul(r, ir::cst(res_ro)),
                                   ir::mul(dno.base(), ir::cst(res_no))),
                           ir::mul(dco.base(), ir::cst(B))),
                   res_no, 1, dno.valid(), ir::mul(dco.valid(), ir::cst(B))};
    }
  }

  const std::vector<std::pair<char, sched::LoopSpec>> dims = {
      {'r', {"r", ir::cst(Ro), false}},
      {'c', {"c_o", ir::cst(dco.count), false}},
      {'o', {"o_o", ir::cst(dno.count), false}},
      {'u', {"u", ir::cst(Kr), true}},
      {'v', {"v", ir::cst(Kc), true}},
      {'i', {"i_o", ir::cst(dni.count), true}},
  };
  return sched::build_nest(sched::order_loops(s.choice("order"), dims),
                           ir::make_gemm(g));
}

std::vector<dsl::TensorSpec> ImplicitConvOp::tensors() const {
  std::vector<dsl::TensorSpec> t = {
      {"in", shape_.ri * shape_.ni * shape_.ci * shape_.batch, false},
      {"w", shape_.kr * shape_.kc * shape_.ni * shape_.no, false},
      {"out", ro_p() * shape_.no * co_p() * shape_.batch, true}};
  if (epi_.bias) t.push_back({"bias", shape_.no, false});
  if (epi_.residual)
    t.push_back(
        {"res", shape_.ro() * shape_.no * shape_.co() * shape_.batch, false});
  return t;
}

void ImplicitConvOp::fill_inputs(sim::CoreGroup& cg,
                                 const dsl::BoundTensors& bt,
                                 const dsl::Strategy& s) const {
  const std::int64_t Ni = shape_.ni, No = shape_.no;
  Prng rng(7);
  auto in = cg.mem().view(bt.at("in"),
                          shape_.ri * Ni * shape_.ci * shape_.batch);
  for (float& x : in) x = rng.next();

  if (epi_.bias) {
    auto b = cg.mem().view(bt.at("bias"), No);
    Prng brng(17);
    for (float& x : b) x = brng.next();
  }
  if (epi_.residual) {
    auto res = cg.mem().view(bt.at("res"), shape_.ro() * No * shape_.co() *
                                               shape_.batch);
    Prng rrng(19);
    for (float& x : res) x = rrng.next();
  }

  // Weights are generated in the canonical [kr][kc][ni][no] order and
  // written in the strategy's chosen layout.
  const bool ni_major = s.choice("wlayout") == "ni_major";
  auto w = cg.mem().view(bt.at("w"), shape_.kr * shape_.kc * Ni * No);
  Prng wrng(13);
  for (std::int64_t kr = 0; kr < shape_.kr; ++kr) {
    for (std::int64_t kc = 0; kc < shape_.kc; ++kc) {
      for (std::int64_t ni = 0; ni < Ni; ++ni) {
        for (std::int64_t no = 0; no < No; ++no) {
          const float val = wrng.next();
          const std::int64_t base = (kr * shape_.kc + kc) * Ni * No;
          const std::int64_t off =
              ni_major ? base + no * Ni + ni : base + ni * No + no;
          w[static_cast<std::size_t>(off)] = val;
        }
      }
    }
  }
}

double ImplicitConvOp::check_output(sim::CoreGroup& cg,
                                    const dsl::BoundTensors& bt,
                                    const dsl::Strategy&) const {
  const std::int64_t Ni = shape_.ni, No = shape_.no;
  // Regenerate the canonical host inputs from the same seeds.
  std::vector<float> in(static_cast<std::size_t>(shape_.ri * Ni * shape_.ci *
                                                 shape_.batch));
  Prng rng(7);
  for (float& x : in) x = rng.next();
  std::vector<float> w(static_cast<std::size_t>(shape_.kr * shape_.kc * Ni *
                                                No));
  Prng wrng(13);
  for (float& x : w) x = wrng.next();

  std::vector<float> ref(static_cast<std::size_t>(
      shape_.ro() * No * shape_.co() * shape_.batch));
  reference_conv(in.data(), w.data(), ref.data(), shape_);

  if (epi_.compute()) {
    // Same order as the fused store: bias, residual-add, relu.
    std::vector<float> bias(static_cast<std::size_t>(No));
    if (epi_.bias) {
      Prng brng(17);
      for (float& x : bias) x = brng.next();
    }
    std::vector<float> res(ref.size());
    if (epi_.residual) {
      Prng rrng(19);
      for (float& x : res) x = rrng.next();
    }
    const std::int64_t Co = shape_.co(), B = shape_.batch;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const std::int64_t no =
          (static_cast<std::int64_t>(i) / (Co * B)) % No;
      if (epi_.bias) ref[i] += bias[static_cast<std::size_t>(no)];
      if (epi_.residual) ref[i] += res[i];
      if (epi_.relu) ref[i] = std::max(ref[i], 0.0f);
    }
  }

  if (epi_.out_pad == 0) {
    auto got = cg.mem().view(bt.at("out"),
                             static_cast<std::int64_t>(ref.size()));
    return max_abs_diff(got.data(), ref.data(),
                        static_cast<std::int64_t>(ref.size()));
  }
  // Padded output: the schedule owns the interior only (the border is
  // pre-zeroed by the consumer), so compare element-wise at the padded
  // offsets.
  const std::int64_t P = epi_.out_pad, Co = shape_.co(), B = shape_.batch;
  const std::int64_t Wp = co_p();
  auto got = cg.mem().view(bt.at("out"), ro_p() * No * Wp * B);
  double worst = 0.0;
  for (std::int64_t r = 0; r < shape_.ro(); ++r) {
    for (std::int64_t no = 0; no < No; ++no) {
      for (std::int64_t c = 0; c < Co; ++c) {
        for (std::int64_t b = 0; b < B; ++b) {
          const std::int64_t raw = ((r * No + no) * Co + c) * B + b;
          const std::int64_t pad =
              (((r + P) * No + no) * Wp + (c + P)) * B + b;
          const double d = std::abs(
              static_cast<double>(got[static_cast<std::size_t>(pad)]) -
              static_cast<double>(ref[static_cast<std::size_t>(raw)]));
          worst = std::max(worst, d);
        }
      }
    }
  }
  return worst;
}

}  // namespace swatop::ops
