#include "ops/implicit_conv.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "isa/kernel_gen.hpp"
#include "ops/matmul.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "sched/lower.hpp"

namespace swatop::ops {

namespace ir = swatop::ir;

ImplicitConvOp::ImplicitConvOp(const ConvShape& shape) : shape_(shape) {
  SWATOP_CHECK(shape.ro() > 0 && shape.co() > 0)
      << "kernel larger than input: " << shape.to_string();
}

std::string ImplicitConvOp::name() const {
  return "implicit_conv[" + shape_.to_string() + "]";
}

dsl::ScheduleSpace ImplicitConvOp::space() const {
  const std::int64_t B = shape_.batch;
  dsl::ScheduleSpace sp;
  sp.add(dsl::FactorVar{
      "Tno", MatmulOp::tile_candidates(shape_.no, 32, {32, 64, 128, 256})});
  sp.add(dsl::FactorVar{
      "Tni", MatmulOp::tile_candidates(shape_.ni, 32, {32, 64, 128})});
  // Output-column fusion factor: the GEMM N dim is Tco * B; keep candidates
  // whose padded N satisfies the mesh constraint. A strided convolution
  // cannot fuse output columns (consecutive co values are `stride * B`
  // apart in the input, breaking the affine fused view), so Tco = 1.
  std::vector<std::int64_t> tco;
  const auto menu = shape_.stride == 1
                        ? std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64}
                        : std::vector<std::int64_t>{1};
  for (std::int64_t f : menu) {
    if (f > align_up(shape_.co(), 8)) continue;
    if ((f * B) % 8 != 0) continue;
    tco.push_back(f);
  }
  if (tco.empty() && shape_.stride == 1)
    tco.push_back(align_up(shape_.co(), 8));
  if (tco.empty()) tco.push_back(1);
  sp.add(dsl::FactorVar{"Tco", tco});
  sp.add(dsl::ChoiceVar{"wlayout", {"no_major", "ni_major"}});
  sp.add(dsl::ChoiceVar{"order",
                        {"rcouvi", "rcoiuv", "rcuvio", "rouvci"}});
  sp.add(dsl::ChoiceVar{"variant",
                        {"0", "1", "2", "3", "4", "5", "6", "7"}});
  sp.add(dsl::ChoiceVar{"boundary", {"pad", "switch"}});
  return sp;
}

ir::StmtPtr ImplicitConvOp::lower(const dsl::Strategy& s) const {
  const std::int64_t B = shape_.batch, Ni = shape_.ni, No = shape_.no;
  const std::int64_t Ci = shape_.ci, Kr = shape_.kr, Kc = shape_.kc;
  const std::int64_t Ro = shape_.ro(), Co = shape_.co();
  const std::int64_t S = shape_.stride;
  if (S != 1 && s.factor("Tco") != 1) return nullptr;

  const std::int64_t Tno = s.factor("Tno");
  const std::int64_t Tni = s.factor("Tni");
  const std::int64_t Tco = s.factor("Tco");
  const int variant = std::stoi(s.choice("variant"));
  const bool vec_m = isa::KernelVariant::from_index(variant).vec ==
                     isa::VecDim::M;
  const bool switch_mode = s.choice("boundary") == "switch";
  const bool ni_major = s.choice("wlayout") == "ni_major";

  // Padded N must satisfy the primitive constraints up front.
  const std::int64_t Npad = Tco * B;
  if (Npad % 8 != 0) return nullptr;
  if (!vec_m && (Npad / 8) % 4 != 0) return nullptr;

  const opt::TiledDim dno = opt::make_tiled("o_o", No, Tno);
  const opt::TiledDim dni = opt::make_tiled("i_o", Ni, Tni);
  const opt::TiledDim dco = opt::make_tiled("c_o", Co, Tco);

  if (switch_mode) {
    if (!dno.ragged && !dni.ragged && !dco.ragged) return nullptr;
    if (!opt::switch_legal(dno, 8, vec_m ? 4 : 1)) return nullptr;
    if (!opt::switch_legal(dni, 8, 1)) return nullptr;
    if (dco.ragged) {
      const std::int64_t nr = dco.remainder() * B;
      if (nr % 8 != 0) return nullptr;
      if (!vec_m && (nr / 8) % 4 != 0) return nullptr;
    }
  }

  // Strides of the fixed layouts.
  const std::int64_t in_ni = Ci * B, in_ri = Ni * Ci * B;
  const std::int64_t w_no = ni_major ? Ni : 1;
  const std::int64_t w_ni = ni_major ? 1 : No;
  const std::int64_t w_kc = Ni * No, w_kr = Kc * Ni * No;
  const std::int64_t out_no = Co * B, out_ro = No * Co * B;

  ir::GemmAttrs g;
  g.variant = variant;
  g.M = switch_mode ? dno.valid() : ir::cst(Tno);
  g.K = switch_mode ? dni.valid() : ir::cst(Tni);
  g.N = switch_mode ? ir::mul(dco.valid(), ir::cst(B)) : ir::cst(Npad);

  const ir::Expr u = ir::var("u"), v = ir::var("v"), r = ir::var("r");

  // A: weight slice, rows = no, cols = ni.
  g.a = {"w",
         ir::add(ir::add(ir::mul(u, ir::cst(w_kr)), ir::mul(v, ir::cst(w_kc))),
                 ir::add(ir::mul(dno.base(), ir::cst(w_no)),
                         ir::mul(dni.base(), ir::cst(w_ni)))),
         w_no, w_ni, dno.valid(), dni.valid()};
  // B: input slice, rows = ni (stride Ci*B), cols = fused (co, b), stride 1.
  // The input position is (r*S + u, co*S + v); column fusion is only legal
  // at S = 1 (elsewhere Tco = 1, so the fused range is just the batch).
  g.b = {"in",
         ir::add(ir::add(ir::mul(ir::add(ir::mul(r, ir::cst(S)), u),
                                 ir::cst(in_ri)),
                         ir::mul(dni.base(), ir::cst(in_ni))),
                 ir::mul(ir::add(ir::mul(dco.base(), ir::cst(S)), v),
                         ir::cst(B))),
         in_ni, 1, dni.valid(), ir::mul(dco.valid(), ir::cst(B))};
  // C: output slice, rows = no (stride Co*B), cols = fused (co, b).
  g.c = {"out",
         ir::add(ir::add(ir::mul(r, ir::cst(out_ro)),
                         ir::mul(dno.base(), ir::cst(out_no))),
                 ir::mul(dco.base(), ir::cst(B))),
         out_no, 1, dno.valid(), ir::mul(dco.valid(), ir::cst(B))};

  const std::vector<std::pair<char, sched::LoopSpec>> dims = {
      {'r', {"r", ir::cst(Ro), false}},
      {'c', {"c_o", ir::cst(dco.count), false}},
      {'o', {"o_o", ir::cst(dno.count), false}},
      {'u', {"u", ir::cst(Kr), true}},
      {'v', {"v", ir::cst(Kc), true}},
      {'i', {"i_o", ir::cst(dni.count), true}},
  };
  return sched::build_nest(sched::order_loops(s.choice("order"), dims),
                           ir::make_gemm(g));
}

std::vector<dsl::TensorSpec> ImplicitConvOp::tensors() const {
  return {
      {"in", shape_.ri * shape_.ni * shape_.ci * shape_.batch, false},
      {"w", shape_.kr * shape_.kc * shape_.ni * shape_.no, false},
      {"out", shape_.ro() * shape_.no * shape_.co() * shape_.batch, true}};
}

void ImplicitConvOp::fill_inputs(sim::CoreGroup& cg,
                                 const dsl::BoundTensors& bt,
                                 const dsl::Strategy& s) const {
  const std::int64_t Ni = shape_.ni, No = shape_.no;
  Prng rng(7);
  auto in = cg.mem().view(bt.at("in"),
                          shape_.ri * Ni * shape_.ci * shape_.batch);
  for (float& x : in) x = rng.next();

  // Weights are generated in the canonical [kr][kc][ni][no] order and
  // written in the strategy's chosen layout.
  const bool ni_major = s.choice("wlayout") == "ni_major";
  auto w = cg.mem().view(bt.at("w"), shape_.kr * shape_.kc * Ni * No);
  Prng wrng(13);
  for (std::int64_t kr = 0; kr < shape_.kr; ++kr) {
    for (std::int64_t kc = 0; kc < shape_.kc; ++kc) {
      for (std::int64_t ni = 0; ni < Ni; ++ni) {
        for (std::int64_t no = 0; no < No; ++no) {
          const float val = wrng.next();
          const std::int64_t base = (kr * shape_.kc + kc) * Ni * No;
          const std::int64_t off =
              ni_major ? base + no * Ni + ni : base + ni * No + no;
          w[static_cast<std::size_t>(off)] = val;
        }
      }
    }
  }
}

double ImplicitConvOp::check_output(sim::CoreGroup& cg,
                                    const dsl::BoundTensors& bt,
                                    const dsl::Strategy&) const {
  const std::int64_t Ni = shape_.ni, No = shape_.no;
  // Regenerate the canonical host inputs from the same seeds.
  std::vector<float> in(static_cast<std::size_t>(shape_.ri * Ni * shape_.ci *
                                                 shape_.batch));
  Prng rng(7);
  for (float& x : in) x = rng.next();
  std::vector<float> w(static_cast<std::size_t>(shape_.kr * shape_.kc * Ni *
                                                No));
  Prng wrng(13);
  for (float& x : w) x = wrng.next();

  std::vector<float> ref(static_cast<std::size_t>(
      shape_.ro() * No * shape_.co() * shape_.batch));
  reference_conv(in.data(), w.data(), ref.data(), shape_);
  auto got = cg.mem().view(bt.at("out"),
                           static_cast<std::int64_t>(ref.size()));
  return max_abs_diff(got.data(), ref.data(),
                      static_cast<std::int64_t>(ref.size()));
}

}  // namespace swatop::ops
