// Implicit-GEMM convolution (Alg. 2 / Fig. 2 right): the direct convolution
// loop nest with the innermost loops replaced by GEMM micro-kernels. Per
// output row and kernel offset, a (No x Ni) weight slice multiplies a
// (Ni x Tco*B) input slice -- the batch dimension and a tile of output
// columns fuse into the GEMM N dimension (the paper's loop fusion that
// enlarges a GEMM dim), which is what makes the channel-major interleaved
// layouts below affine and DMA-friendly.
//
// Tensor layouts:
//   in  [ri][ni][ci][b]                (ci and b adjacent => N fusion)
//   w   [kr][kc][ni][no]  ("no_major") or [kr][kc][no][ni] ("ni_major"),
//                                       a layout-transformation choice
//   out [ro][no][co][b]
#pragma once

#include "dsl/dsl.hpp"
#include "ops/conv_common.hpp"

namespace swatop::ops {

class ImplicitConvOp : public dsl::OperatorDef {
 public:
  /// `epi` fuses an elementwise tail (bias / residual-add / relu, applied
  /// in that order) into the C store path and/or stores into a
  /// zero-padded output border (`out_pad`). Extra tensors: "bias" (No
  /// floats) when epi.bias, "res" (unpadded output size) when
  /// epi.residual; "out" grows to the padded extent when epi.out_pad > 0.
  /// The padded border itself is owned by the caller (pre-zeroed once);
  /// the schedule only writes the interior.
  explicit ImplicitConvOp(const ConvShape& shape,
                          dsl::EpilogueSpec epi = {});

  /// Implicit CONV needs enough input channels to feed the K dimension
  /// (the paper excludes each network's first layer for this reason).
  static bool applicable(const ConvShape& s) { return s.ni >= 32; }

  std::string name() const override;
  dsl::ScheduleSpace space() const override;
  ir::StmtPtr lower(const dsl::Strategy& s) const override;
  std::vector<dsl::TensorSpec> tensors() const override;
  std::int64_t flops() const override { return shape_.flops(); }
  void fill_inputs(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                   const dsl::Strategy& s) const override;
  double check_output(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                      const dsl::Strategy& s) const override;

  const ConvShape& shape() const { return shape_; }
  const dsl::EpilogueSpec& epilogue() const { return epi_; }

 private:
  /// Padded output spatial dims (identical to the raw dims without pad).
  std::int64_t ro_p() const { return shape_.ro() + 2 * epi_.out_pad; }
  std::int64_t co_p() const { return shape_.co() + 2 * epi_.out_pad; }

  ConvShape shape_;
  dsl::EpilogueSpec epi_;
};

}  // namespace swatop::ops
