#include "ops/winograd.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "isa/kernel_gen.hpp"
#include "ops/matmul.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "sched/lower.hpp"

namespace swatop::ops {

namespace ir = swatop::ir;

namespace {

// Winograd minimal-filtering matrices [Lavin & Gray, CVPR'16].
// F(2x2, 3x3): 4x4 input tiles, 16 products.
constexpr double kBT2[4][4] = {
    {1, 0, -1, 0}, {0, 1, 1, 0}, {0, -1, 1, 0}, {0, 1, 0, -1}};
constexpr double kG2[4][3] = {
    {1, 0, 0}, {0.5, 0.5, 0.5}, {0.5, -0.5, 0.5}, {0, 0, 1}};
constexpr double kAT2[2][4] = {{1, 1, 1, 0}, {0, 1, -1, -1}};

// F(4x4, 3x3): 6x6 input tiles, 36 products.
constexpr double kBT4[6][6] = {
    {4, 0, -5, 0, 1, 0},  {0, -4, -4, 1, 1, 0}, {0, 4, -4, -1, 1, 0},
    {0, -2, -1, 2, 1, 0}, {0, 2, -1, -2, 1, 0}, {0, 4, 0, -5, 0, 1}};
constexpr double kG4[6][3] = {
    {1.0 / 4, 0, 0},
    {-1.0 / 6, -1.0 / 6, -1.0 / 6},
    {-1.0 / 6, 1.0 / 6, -1.0 / 6},
    {1.0 / 24, 1.0 / 12, 1.0 / 6},
    {1.0 / 24, -1.0 / 12, 1.0 / 6},
    {0, 0, 1}};
constexpr double kAT4[4][6] = {{1, 1, 1, 1, 1, 0},
                               {0, 1, -1, 2, -2, 0},
                               {0, 1, 1, 4, 4, 0},
                               {0, 1, -1, 8, -8, 1}};

/// Row-major view of the transform matrices for a plan.
struct Matrices {
  const double* bt;  ///< tile x tile
  const double* g;   ///< tile x 3
  const double* at;  ///< m x tile
};

Matrices matrices_for(std::int64_t m) {
  if (m == 2) return {&kBT2[0][0], &kG2[0][0], &kAT2[0][0]};
  SWATOP_CHECK(m == 4) << "Winograd output tile must be 2 or 4, got " << m;
  return {&kBT4[0][0], &kG4[0][0], &kAT4[0][0]};
}

/// out(rows_a x cols_b) = A(rows_a x inner) * B(inner x cols_b), row-major.
void matmul_rm(const double* A, const double* B, double* out,
               std::int64_t rows_a, std::int64_t inner,
               std::int64_t cols_b) {
  for (std::int64_t i = 0; i < rows_a; ++i) {
    for (std::int64_t j = 0; j < cols_b; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < inner; ++k)
        acc += A[i * inner + k] * B[k * cols_b + j];
      out[i * cols_b + j] = acc;
    }
  }
}

/// out = A * D * A^T for row-major A (rows x cols) and D (cols x cols).
void sandwich(const double* A, const double* D, double* out,
              std::int64_t rows, std::int64_t cols) {
  std::vector<double> tmp(static_cast<std::size_t>(rows * cols));
  matmul_rm(A, D, tmp.data(), rows, cols, cols);  // tmp = A * D
  // out = tmp * A^T: out[i][j] = sum_k tmp[i][k] * A[j][k].
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < rows; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < cols; ++k)
        acc += tmp[static_cast<std::size_t>(i * cols + k)] * A[j * cols + k];
      out[i * rows + j] = acc;
    }
  }
}

/// Charge a bulk re-layout pass: `read_floats` read and `write_floats`
/// written through SPM (both in long contiguous runs), plus a compute term
/// of `flops` spread over the whole cluster.
void charge_pass(sim::CoreGroup& cg, std::int64_t read_floats,
                 std::int64_t write_floats, double flops) {
  const sim::SimConfig& cfg = cg.config();
  const std::int64_t txn =
      static_cast<std::int64_t>(cfg.dram_transaction_bytes);
  sim::DmaCost c;
  c.latency_cycles = cfg.dma_latency_cycles;
  c.bytes_requested = (read_floats + write_floats) * 4;
  c.transactions = ceil_div(read_floats * 4, txn) +
                   ceil_div(write_floats * 4, txn);
  c.bytes_wasted = c.transactions * txn - c.bytes_requested;
  if (c.bytes_wasted < 0) c.bytes_wasted = 0;
  c.transfer_cycles =
      static_cast<double>(c.transactions * txn) / cfg.dma_bytes_per_cycle();
  cg.charge_dma_cost_sync(c);
  cg.advance_compute(flops / cfg.peak_flops_per_cycle());
}

}  // namespace

WinogradPlan::WinogradPlan(const ConvShape& s, std::int64_t m_) : shape(s) {
  SWATOP_CHECK(applicable(s))
      << "Winograd F(mxm,3x3) not applicable to " << s.to_string();
  SWATOP_CHECK(m_ == 2 || m_ == 4)
      << "Winograd output tile must be 2 or 4, got " << m_;
  m = m_;
  tiles_r = ceil_div(s.ro(), m);
  tiles_c = ceil_div(s.co(), m);
  P = s.batch * tiles_r * tiles_c;
}

WinogradGemmOp::WinogradGemmOp(const ConvShape& shape, std::int64_t m)
    : plan_(shape, m) {}

std::string WinogradGemmOp::name() const {
  return "winograd" + std::to_string(plan_.m) + "_conv[" +
         plan_.shape.to_string() + "]";
}

dsl::ScheduleSpace WinogradGemmOp::space() const {
  dsl::ScheduleSpace sp;
  sp.add(dsl::FactorVar{"Tm", MatmulOp::tile_candidates(plan_.shape.no, 32,
                                                        {32, 64, 128})});
  sp.add(dsl::FactorVar{
      "Tn", MatmulOp::tile_candidates(plan_.P, 32, {32, 64, 128, 256})});
  sp.add(dsl::FactorVar{"Tk", MatmulOp::tile_candidates(plan_.shape.ni, 8,
                                                        {16, 32, 64, 128})});
  sp.add(dsl::ChoiceVar{"order", {"mnk", "nmk", "mkn"}});
  sp.add(dsl::ChoiceVar{"variant",
                        {"0", "1", "2", "3", "4", "5", "6", "7"}});
  sp.add(dsl::ChoiceVar{"boundary", {"pad", "switch"}});
  return sp;
}

ir::StmtPtr WinogradGemmOp::lower(const dsl::Strategy& s) const {
  const std::int64_t No = plan_.shape.no, Ni = plan_.shape.ni, P = plan_.P;
  const std::int64_t Tm = s.factor("Tm");
  const std::int64_t Tn = s.factor("Tn");
  const std::int64_t Tk = s.factor("Tk");
  const int variant = std::stoi(s.choice("variant"));
  const bool vec_m = isa::KernelVariant::from_index(variant).vec ==
                     isa::VecDim::M;
  const bool switch_mode = s.choice("boundary") == "switch";

  const opt::TiledDim dm = opt::make_tiled("m_o", No, Tm);
  const opt::TiledDim dn = opt::make_tiled("n_o", P, Tn);
  const opt::TiledDim dk = opt::make_tiled("k_o", Ni, Tk);
  if (switch_mode) {
    if (!dm.ragged && !dn.ragged && !dk.ragged) return nullptr;
    if (!opt::switch_legal(dm, 8, vec_m ? 4 : 1)) return nullptr;
    if (!opt::switch_legal(dn, 8, vec_m ? 1 : 4)) return nullptr;
    if (!opt::switch_legal(dk, 8, 1)) return nullptr;
  }

  ir::GemmAttrs g;
  g.variant = variant;
  g.M = switch_mode ? dm.valid() : ir::cst(Tm);
  g.N = switch_mode ? dn.valid() : ir::cst(Tn);
  g.K = switch_mode ? dk.valid() : ir::cst(Tk);

  const ir::Expr t = ir::var("t");
  // U: (No x Ni) column-major per t.
  g.a = {"U",
         ir::add(ir::mul(t, ir::cst(No * Ni)),
                 ir::add(dm.base(), ir::mul(dk.base(), ir::cst(No)))),
         1, No, dm.valid(), dk.valid()};
  // V: (Ni x P) column-major per t.
  g.b = {"V",
         ir::add(ir::mul(t, ir::cst(Ni * P)),
                 ir::add(dk.base(), ir::mul(dn.base(), ir::cst(Ni)))),
         1, Ni, dk.valid(), dn.valid()};
  // Mt: (No x P) column-major per t.
  g.c = {"Mt",
         ir::add(ir::mul(t, ir::cst(No * P)),
                 ir::add(dm.base(), ir::mul(dn.base(), ir::cst(No)))),
         1, No, dm.valid(), dn.valid()};

  const std::vector<std::pair<char, sched::LoopSpec>> dims = {
      {'m', {"m_o", ir::cst(dm.count), false}},
      {'n', {"n_o", ir::cst(dn.count), false}},
      {'k', {"k_o", ir::cst(dk.count), true}},
  };
  std::vector<sched::LoopSpec> loops = {{"t", ir::cst(plan_.T()), false}};
  for (const auto& l : sched::order_loops(s.choice("order"), dims))
    loops.push_back(l);
  return sched::build_nest(loops, ir::make_gemm(g));
}

std::vector<dsl::TensorSpec> WinogradGemmOp::tensors() const {
  const std::int64_t No = plan_.shape.no, Ni = plan_.shape.ni, P = plan_.P;
  const std::int64_t T = plan_.T();
  return {{"U", T * No * Ni, false},
          {"V", T * Ni * P, false},
          {"Mt", T * No * P, true}};
}

void WinogradGemmOp::charge_pre_post(sim::CoreGroup& cg,
                                     const WinogradPlan& p) {
  const ConvShape& s = p.shape;
  const double T = static_cast<double>(p.T());
  // Input transform: the overlapping tiles read ~T/(m^2)x the input volume,
  // write T * Ni * P; two tile x tile sandwiches per channel tile.
  charge_pass(cg, p.T() * s.ni * p.P, p.T() * s.ni * p.P,
              static_cast<double>(p.P) * static_cast<double>(s.ni) * 8.0 * T);
  // Filter transform: small.
  charge_pass(cg, s.ni * s.no * 9, p.T() * s.ni * s.no,
              static_cast<double>(s.ni) * static_cast<double>(s.no) * 5.0 *
                  T);
  // Inverse transform: read T * No * P, write the output tensor.
  charge_pass(cg, p.T() * s.no * p.P, s.no * s.ro() * s.co() * s.batch,
              static_cast<double>(p.P) * static_cast<double>(s.no) * 3.0 * T);
}

double WinogradGemmOp::pre_post_cycles(const WinogradPlan& p,
                                       const sim::SimConfig& cfg) {
  sim::CoreGroup cg(cfg);
  charge_pre_post(cg, p);
  return cg.now();
}

void WinogradGemmOp::transform_input(sim::CoreGroup& cg,
                                     sim::MainMemory::Addr in,
                                     sim::MainMemory::Addr V,
                                     const WinogradPlan& p) {
  const ConvShape& s = p.shape;
  const std::int64_t B = s.batch, Ni = s.ni, Ci = s.ci, Ri = s.ri;
  const std::int64_t tile = p.tile(), T = p.T();
  const Matrices mats = matrices_for(p.m);
  std::vector<double> d(static_cast<std::size_t>(tile * tile));
  std::vector<double> v(static_cast<std::size_t>(tile * tile));
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t tr = 0; tr < p.tiles_r; ++tr) {
      for (std::int64_t tc = 0; tc < p.tiles_c; ++tc) {
        const std::int64_t pid = (b * p.tiles_r + tr) * p.tiles_c + tc;
        for (std::int64_t ni = 0; ni < Ni; ++ni) {
          for (std::int64_t i = 0; i < tile; ++i) {
            for (std::int64_t j = 0; j < tile; ++j) {
              const std::int64_t ri = p.m * tr + i, ci = p.m * tc + j;
              d[static_cast<std::size_t>(i * tile + j)] =
                  (ri < Ri && ci < Ci)
                      ? cg.mem().read(in + ((ri * Ni + ni) * Ci + ci) * B + b)
                      : 0.0;
            }
          }
          sandwich(mats.bt, d.data(), v.data(), tile, tile);
          for (std::int64_t t = 0; t < T; ++t)
            cg.mem().write(V + t * Ni * p.P + ni + pid * Ni,
                           static_cast<float>(
                               v[static_cast<std::size_t>(t)]));
        }
      }
    }
  }
}

void WinogradGemmOp::transform_filter(sim::CoreGroup& cg,
                                      sim::MainMemory::Addr w,
                                      sim::MainMemory::Addr U,
                                      const WinogradPlan& p) {
  const ConvShape& s = p.shape;
  const std::int64_t Ni = s.ni, No = s.no;
  const std::int64_t tile = p.tile(), T = p.T();
  const Matrices mats = matrices_for(p.m);
  std::vector<double> g(9), tmp(static_cast<std::size_t>(tile * 3)),
      u(static_cast<std::size_t>(tile * tile));
  for (std::int64_t no = 0; no < No; ++no) {
    for (std::int64_t ni = 0; ni < Ni; ++ni) {
      for (int kr = 0; kr < 3; ++kr)
        for (int kc = 0; kc < 3; ++kc)
          g[static_cast<std::size_t>(kr * 3 + kc)] =
              cg.mem().read(w + ((kr * 3 + kc) * Ni + ni) * No + no);
      matmul_rm(mats.g, g.data(), tmp.data(), tile, 3, 3);  // G * g
      // u = tmp * G^T.
      for (std::int64_t i = 0; i < tile; ++i) {
        for (std::int64_t j = 0; j < tile; ++j) {
          double acc = 0.0;
          for (int k = 0; k < 3; ++k)
            acc += tmp[static_cast<std::size_t>(i * 3 + k)] *
                   mats.g[j * 3 + k];
          u[static_cast<std::size_t>(i * tile + j)] = acc;
        }
      }
      for (std::int64_t t = 0; t < T; ++t)
        cg.mem().write(U + t * No * Ni + no + ni * No,
                       static_cast<float>(u[static_cast<std::size_t>(t)]));
    }
  }
}

void WinogradGemmOp::inverse_transform(sim::CoreGroup& cg,
                                       sim::MainMemory::Addr Mt,
                                       sim::MainMemory::Addr out,
                                       const WinogradPlan& p) {
  const ConvShape& s = p.shape;
  const std::int64_t B = s.batch, No = s.no;
  const std::int64_t Ro = s.ro(), Co = s.co();
  const std::int64_t tile = p.tile(), T = p.T(), m = p.m;
  const Matrices mats = matrices_for(p.m);
  std::vector<double> mm(static_cast<std::size_t>(T));
  std::vector<double> tmp(static_cast<std::size_t>(m * tile));
  std::vector<double> y(static_cast<std::size_t>(m * m));
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t tr = 0; tr < p.tiles_r; ++tr) {
      for (std::int64_t tc = 0; tc < p.tiles_c; ++tc) {
        const std::int64_t pid = (b * p.tiles_r + tr) * p.tiles_c + tc;
        for (std::int64_t no = 0; no < No; ++no) {
          for (std::int64_t t = 0; t < T; ++t)
            mm[static_cast<std::size_t>(t)] =
                cg.mem().read(Mt + t * No * p.P + no + pid * No);
          matmul_rm(mats.at, mm.data(), tmp.data(), m, tile, tile);
          // y = tmp * AT^T.
          for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < m; ++j) {
              double acc = 0.0;
              for (std::int64_t k = 0; k < tile; ++k)
                acc += tmp[static_cast<std::size_t>(i * tile + k)] *
                       mats.at[j * tile + k];
              y[static_cast<std::size_t>(i * m + j)] = acc;
            }
          }
          for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < m; ++j) {
              const std::int64_t ro = m * tr + i, co = m * tc + j;
              if (ro >= Ro || co >= Co) continue;
              cg.mem().write(
                  out + ((ro * No + no) * Co + co) * B + b,
                  static_cast<float>(y[static_cast<std::size_t>(i * m + j)]));
            }
          }
        }
      }
    }
  }
}

void WinogradGemmOp::fill_inputs(sim::CoreGroup& cg,
                                 const dsl::BoundTensors& bt,
                                 const dsl::Strategy&) const {
  const ConvShape& s = plan_.shape;
  std::vector<float> in(static_cast<std::size_t>(s.ri * s.ni * s.ci *
                                                 s.batch));
  Prng rng(7);
  for (float& x : in) x = rng.next();
  std::vector<float> w(static_cast<std::size_t>(9 * s.ni * s.no));
  Prng wrng(13);
  for (float& x : w) x = wrng.next();

  const sim::MainMemory::Addr in_addr =
      cg.mem().alloc(static_cast<std::int64_t>(in.size()), "in_scratch");
  cg.mem().copy_in(in_addr, in);
  const sim::MainMemory::Addr w_addr =
      cg.mem().alloc(static_cast<std::int64_t>(w.size()), "w_scratch");
  cg.mem().copy_in(w_addr, w);
  transform_input(cg, in_addr, bt.at("V"), plan_);
  transform_filter(cg, w_addr, bt.at("U"), plan_);
}

double WinogradGemmOp::check_output(sim::CoreGroup& cg,
                                    const dsl::BoundTensors& bt,
                                    const dsl::Strategy&) const {
  const ConvShape& s = plan_.shape;
  // Inverse-transform the computed Mt and compare against direct conv.
  const std::int64_t out_floats = s.ro() * s.no * s.co() * s.batch;
  const sim::MainMemory::Addr out_addr =
      cg.mem().alloc(out_floats, "wino_out");
  inverse_transform(cg, bt.at("Mt"), out_addr, plan_);

  std::vector<float> in(static_cast<std::size_t>(s.ri * s.ni * s.ci *
                                                 s.batch));
  Prng rng(7);
  for (float& x : in) x = rng.next();
  std::vector<float> w(static_cast<std::size_t>(9 * s.ni * s.no));
  Prng wrng(13);
  for (float& x : w) x = wrng.next();
  std::vector<float> ref(static_cast<std::size_t>(out_floats));
  reference_conv(in.data(), w.data(), ref.data(), s);
  auto got = cg.mem().view(out_addr, out_floats);
  return max_abs_diff(got.data(), ref.data(), out_floats);
}

}  // namespace swatop::ops
