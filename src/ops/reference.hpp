// Naive reference implementations (the MAC nest of Alg. 1) used to validate
// every tensorized schedule functionally.
#pragma once

#include <cstdint>

#include "ops/conv_common.hpp"

namespace swatop::ops {

/// C = A x B, all column-major with leading dims = rows.
/// A is M x K, B is K x N, C is M x N.
void reference_gemm(const float* A, const float* B, float* C, std::int64_t M,
                    std::int64_t N, std::int64_t K);

/// Direct convolution. Layouts match the swATOP operator tensors:
///   in  [ri][ni][ci][b]   (channel-major, batch innermost)
///   w   [kr][kc][ni][no]  (output channel innermost)
///   out [ro][no][co][b]
void reference_conv(const float* in, const float* w, float* out,
                    const ConvShape& s);

// Naive elementwise / pooling kernels over the canonical activation layout
// [rows][channels][cols][batch] -- the per-layer passes a whole-network
// forward pass needs between convolutions (graph/ reference check; also
// available to the schedule fuzzer as ground truth).

/// t[r][c][col][b] += bias[c], in place.
void reference_bias_add(float* t, const float* bias, std::int64_t rows,
                        std::int64_t channels, std::int64_t cols,
                        std::int64_t batch);

/// t[i] = max(t[i], 0) over n floats, in place.
void reference_relu(float* t, std::int64_t n);

/// 2x2 / stride-2 spatial max pool: in [rows][ch][cols][b] (rows and cols
/// even) -> out [rows/2][ch][cols/2][b].
void reference_maxpool2x2(const float* in, float* out, std::int64_t rows,
                          std::int64_t channels, std::int64_t cols,
                          std::int64_t batch);

/// out[i] = a[i] + b[i] over n floats (residual shortcuts).
void reference_eltwise_add(const float* a, const float* b, float* out,
                           std::int64_t n);

/// Zero-pad a border of `pad` rows/cols on each side: in [rows][ch][cols][b]
/// -> out [rows + 2*pad][ch][cols + 2*pad][b].
void reference_pad(const float* in, float* out, std::int64_t rows,
                   std::int64_t channels, std::int64_t cols,
                   std::int64_t batch, std::int64_t pad);

}  // namespace swatop::ops
