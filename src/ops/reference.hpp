// Naive reference implementations (the MAC nest of Alg. 1) used to validate
// every tensorized schedule functionally.
#pragma once

#include <cstdint>

#include "ops/conv_common.hpp"

namespace swatop::ops {

/// C = A x B, all column-major with leading dims = rows.
/// A is M x K, B is K x N, C is M x N.
void reference_gemm(const float* A, const float* B, float* C, std::int64_t M,
                    std::int64_t N, std::int64_t K);

/// Direct convolution. Layouts match the swATOP operator tensors:
///   in  [ri][ni][ci][b]   (channel-major, batch innermost)
///   w   [kr][kc][ni][no]  (output channel innermost)
///   out [ro][no][co][b]
void reference_conv(const float* in, const float* w, float* out,
                    const ConvShape& s);

}  // namespace swatop::ops
