// Matrix multiplication operator: C = A x B with column-major operands.
// The schedule space covers the split factors of all three dims, four loop
// orders, the eight kernel variants, and both boundary strategies -- the
// Listing 2 / Table 2 workload of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsl/dsl.hpp"

namespace swatop::ops {

class MatmulOp : public dsl::OperatorDef {
 public:
  MatmulOp(std::int64_t M, std::int64_t N, std::int64_t K);

  std::string name() const override;
  dsl::ScheduleSpace space() const override;
  ir::StmtPtr lower(const dsl::Strategy& s) const override;
  std::vector<dsl::TensorSpec> tensors() const override;
  std::int64_t flops() const override { return 2 * M_ * N_ * K_; }
  void fill_inputs(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                   const dsl::Strategy& s) const override;
  double check_output(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                      const dsl::Strategy& s) const override;

  std::int64_t m() const { return M_; }
  std::int64_t n() const { return N_; }
  std::int64_t k() const { return K_; }

  /// Tile-factor menu for an extent: entries of `menu` no larger than the
  /// extent rounded up to `align`; guaranteed non-empty.
  static std::vector<std::int64_t> tile_candidates(
      std::int64_t extent, std::int64_t align,
      const std::vector<std::int64_t>& menu);

 protected:
  /// Tensor names; subclasses (explicit convolution) re-target them.
  std::string a_name_ = "A";
  std::string b_name_ = "B";
  std::string c_name_ = "C";

  std::int64_t M_, N_, K_;
};

}  // namespace swatop::ops
