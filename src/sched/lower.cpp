#include "sched/lower.hpp"

#include "common/check.hpp"

namespace swatop::sched {

ir::StmtPtr build_nest(const std::vector<LoopSpec>& loops,
                       ir::StmtPtr innermost) {
  ir::StmtPtr cur = ir::make_seq({std::move(innermost)});
  for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
    cur = ir::make_seq(
        {ir::make_for(it->var, it->extent, std::move(cur), it->reduction)});
  }
  return cur;
}

std::vector<LoopSpec> order_loops(
    const std::string& order,
    const std::vector<std::pair<char, LoopSpec>>& dims) {
  std::vector<LoopSpec> out;
  out.reserve(order.size());
  for (char c : order) {
    bool found = false;
    for (const auto& [key, spec] : dims) {
      if (key == c) {
        out.push_back(spec);
        found = true;
        break;
      }
    }
    SWATOP_CHECK(found) << "loop order letter '" << c << "' not declared";
  }
  SWATOP_CHECK(out.size() == dims.size())
      << "loop order '" << order << "' does not cover all dims";
  return out;
}

}  // namespace swatop::sched
