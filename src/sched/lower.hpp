// Shared lowering machinery: operator definitions turn a schedule strategy
// into a loop nest around a single GEMM statement using these helpers
// (Sec. 4.3's loop transformation -- split factors become tiled dims, the
// reorder choice becomes the nest order).
#pragma once

#include <string>
#include <vector>

#include "ir/node.hpp"
#include "opt/boundary.hpp"

namespace swatop::sched {

/// One loop of the nest, outermost first.
struct LoopSpec {
  std::string var;
  ir::Expr extent;
  bool reduction = false;
};

/// Build Seq{ loops[0] { loops[1] { ... { innermost } } } }.
ir::StmtPtr build_nest(const std::vector<LoopSpec>& loops,
                       ir::StmtPtr innermost);

/// Loop order permutations are given as strings over dim letters (e.g.
/// "mnk"); this expands one into a LoopSpec order given per-letter specs.
std::vector<LoopSpec> order_loops(
    const std::string& order,
    const std::vector<std::pair<char, LoopSpec>>& dims);

}  // namespace swatop::sched
