#include "sched/scheduler.hpp"

namespace swatop::sched {

std::int64_t Scheduler::space_size(const dsl::OperatorDef& op) const {
  return op.space().size();
}

std::vector<Candidate> Scheduler::candidates(
    const dsl::OperatorDef& op, const SchedulerOptions& opts) const {
  std::vector<Candidate> out;
  const dsl::ScheduleSpace space = op.space();
  for (const dsl::Strategy& s : space.enumerate()) {
    ir::StmtPtr prog = op.lower(s);
    if (prog == nullptr) continue;  // structurally invalid assignment
    opt::OptOptions o = opts.opt;
    o.prefetch = opts.opt.prefetch && op.prefetch_enabled(s);
    if (!opt::optimize(prog, cfg_, o)) continue;  // pruned
    out.push_back({s, std::move(prog), o.prefetch});
    if (opts.max_candidates > 0 &&
        static_cast<std::int64_t>(out.size()) >= opts.max_candidates)
      break;
  }
  return out;
}

}  // namespace swatop::sched
