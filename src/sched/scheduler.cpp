#include "sched/scheduler.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "check/validate_ir.hpp"

namespace swatop::sched {

namespace {

std::size_t resolve_threads(int requested, std::size_t work) {
  if (work < 2) return 1;
  std::size_t n = requested > 0
                      ? static_cast<std::size_t>(requested)
                      : static_cast<std::size_t>(
                            std::thread::hardware_concurrency());
  if (n == 0) n = 1;
  return n < work ? n : work;
}

}  // namespace

std::int64_t Scheduler::space_size(const dsl::OperatorDef& op) const {
  return op.space().size();
}

std::vector<Candidate> Scheduler::candidates(
    const dsl::OperatorDef& op, const SchedulerOptions& opts) const {
  const dsl::ScheduleSpace space = op.space();
  const std::vector<dsl::Strategy> strategies = space.enumerate();

  const std::size_t nthreads =
      opts.max_candidates > 0
          ? 1  // the cap bounds lowering work: keep the early-exit loop
          : resolve_threads(opts.num_threads, strategies.size());

  auto build = [&](const dsl::Strategy& s) -> std::optional<Candidate> {
    ir::StmtPtr prog = op.lower(s);
    if (prog == nullptr) return std::nullopt;  // structurally invalid
    opt::OptOptions o = opts.opt;
    o.prefetch = opts.opt.prefetch && op.prefetch_enabled(s);
    if (!opt::optimize(prog, cfg_, o)) return std::nullopt;  // pruned
    // A candidate that survives pruning must be well-formed: a validation
    // failure here is a lowering or optimizer bug, not an invalid strategy,
    // so it throws instead of silently dropping the candidate.
    check::validate_ir_or_throw(prog, cfg_);
    return Candidate{s, std::move(prog), o.prefetch};
  };

  std::vector<Candidate> out;
  if (nthreads <= 1) {
    for (const dsl::Strategy& s : strategies) {
      std::optional<Candidate> c = build(s);
      if (!c) continue;
      out.push_back(std::move(*c));
      if (opts.max_candidates > 0 &&
          static_cast<std::int64_t>(out.size()) >= opts.max_candidates)
        break;
    }
    return out;
  }

  // Fan the independent lower+optimize work across a pool (the same
  // pattern as BlackBoxTuner::tune); slots keep enumeration order so the
  // result is bit-identical to the serial sweep.
  std::vector<std::optional<Candidate>> slots(strategies.size());
  std::atomic<std::size_t> next{0};
  // build() can throw (the IR validator flags lowering/optimizer bugs);
  // an exception escaping a worker would terminate the process, so the
  // first one is captured and rethrown on the calling thread.
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(nthreads);
  for (std::size_t w = 0; w < nthreads; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < strategies.size();
           i = next.fetch_add(1)) {
        try {
          slots[i] = build(strategies[i]);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);

  for (std::optional<Candidate>& c : slots)
    if (c) out.push_back(std::move(*c));
  return out;
}

}  // namespace swatop::sched
