// The scheduler (Sec. 4.3): traverses the schedule space an operator
// definition declares, lowers every strategy to IR, runs the IR optimizer
// pipeline, and keeps the candidates that survive validity pruning (SPM
// budget, primitive divisibility).
#pragma once

#include <cstdint>
#include <vector>

#include "dsl/dsl.hpp"
#include "ir/node.hpp"
#include "opt/pass_manager.hpp"
#include "sim/config.hpp"

namespace swatop::sched {

struct Candidate {
  dsl::Strategy strategy;
  ir::StmtPtr program;     ///< optimized IR, ready for the runtime
  bool prefetch = false;   ///< double buffering applied
};

struct SchedulerOptions {
  opt::OptOptions opt;
  /// Cap on returned candidates (0 = unlimited); applied after pruning, by
  /// enumeration order, and reported so benches can note truncation.
  std::int64_t max_candidates = 0;
  /// Worker threads for the lower+optimize sweep and the tuner's cost-model
  /// ranking (0 = hardware concurrency, 1 = serial). The candidate list and
  /// the tuner's pick are identical at any thread count: results keep
  /// enumeration order and ties break by the first index. A positive
  /// max_candidates forces the serial path, because its purpose is to bound
  /// the lowering work itself.
  int num_threads = 0;
};

class Scheduler {
 public:
  explicit Scheduler(const sim::SimConfig& cfg) : cfg_(cfg) {}

  /// Raw size of the operator's schedule space (before pruning).
  std::int64_t space_size(const dsl::OperatorDef& op) const;

  /// All valid optimized candidates.
  std::vector<Candidate> candidates(
      const dsl::OperatorDef& op,
      const SchedulerOptions& opts = SchedulerOptions{}) const;

 private:
  sim::SimConfig cfg_;
};

}  // namespace swatop::sched
